// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding named experiment end to end —
// dataset synthesis, federated training with the attack and defense grid of
// that artifact, and metric computation — and prints the paper-style rows
// on the first iteration.
//
// Profiles: REPRO_PROFILE=quick (default) keeps every structural parameter
// of the paper (100 clients, 10 per round, 20% attackers, Dirichlet
// heterogeneity) while shrinking per-round synthesis work; REPRO_PROFILE=full
// uses the paper's |S| = 50, 3-seed averaging and the full test sets.
package repro_test

import (
	"io"
	"os"
	"testing"

	"repro"
)

func benchProfile() string {
	if p := os.Getenv("REPRO_PROFILE"); p != "" {
		return p
	}
	return "quick"
}

// benchExperiment runs one named paper artifact per iteration, emitting its
// rows to stdout on the first iteration so bench logs double as the
// reproduction record.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if i == 0 {
			w = os.Stdout
		}
		if err := repro.RunExperiment(id, benchProfile(), w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II: ASR and maximum accuracy for every
// dataset × defense × attack cell at β = 0.5 with 20% attackers.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFigure4 regenerates Fig. 4: defense pass rates on the
// selection-based defenses (mKrum, Bulyan) for all datasets and attacks.
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates Fig. 5: ASR as a function of the Dirichlet
// heterogeneity β under Bulyan on Fashion and CIFAR.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates Fig. 6: ASR as a function of the attacker
// proportion (10/20/30%) under mKrum and TRmean on Fashion.
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Fig. 7: the per-epoch convergence of the DFA
// synthesis objectives during local training.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable3 regenerates Table III: trained vs static (non-trained)
// synthesis ablation of both DFA variants.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table IV: the distance-based regularization
// ablation of Eq. 3.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFigure8 regenerates Fig. 8: DFA's synthetic data vs an attacker
// training on real data.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Fig. 9: REFD vs Bulyan accuracy under both
// DFA variants across heterogeneity levels (i.i.d. and β = 0.9/0.5/0.1).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates Fig. 10: global model accuracy of all five
// defenses (including REFD) against all five attacks.
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkRandomWeights regenerates the Section III-B motivating
// experiment: the naive random-weights attack almost never passes the
// selection defenses.
func BenchmarkRandomWeights(b *testing.B) { benchExperiment(b, "randomweights") }

// BenchmarkSampleSize regenerates the Section IV-A |S| sensitivity check
// (|S| ∈ {20, 50, 100}).
func BenchmarkSampleSize(b *testing.B) { benchExperiment(b, "samplesize") }

// BenchmarkSybilEvasion runs the Section III-A extension: DFA against the
// FoolsGold Sybil defense with identical vs noise-perturbed attacker copies.
func BenchmarkSybilEvasion(b *testing.B) { benchExperiment(b, "sybil") }

// BenchmarkAdaptiveAlpha runs the Section V future-work extension: REFD's
// fixed α = 1 vs the per-round adaptive α.
func BenchmarkAdaptiveAlpha(b *testing.B) { benchExperiment(b, "adaptivealpha") }

// BenchmarkTextDFA runs the Section VI future-work extension: DFA against a
// recurrent text classifier via embedding-space synthesis.
func BenchmarkTextDFA(b *testing.B) { benchExperiment(b, "textdfa") }
