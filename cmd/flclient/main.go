// Command flclient joins a networked federation as either an honest trainer
// or an adversary. Benign clients own a Dirichlet shard of the synthetic
// dataset; malicious clients run one of the reproduction's attacks —
// including the data-free DFA variants, which need nothing but the models
// the server broadcasts.
//
// Example:
//
//	flclient -addr localhost:7070 -role benign -shard 0 -of 6
//	flclient -addr localhost:7070 -role dfa-g
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flclient", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	dsName := fs.String("dataset", "fashion-sim", "dataset spec (must match the server)")
	role := fs.String("role", "benign", "benign, dfa-r, dfa-g, lie, fang, minmax, minsum, random, freerider, signflip")
	shard := fs.Int("shard", 0, "benign: this client's shard index")
	of := fs.Int("of", 6, "benign: total number of benign shards")
	beta := fs.Float64("beta", 0.5, "benign: Dirichlet heterogeneity (<=0 for i.i.d.)")
	lr := fs.Float64("lr", 0.05, "benign: local learning rate")
	samples := fs.Int("samples", 20, "DFA: synthetic set size |S|")
	seed := fs.Int64("seed", 1, "random seed (benign shards must share the server's dataset seed)")
	timeout := fs.Duration("timeout", 60*time.Second, "connection timeout")
	federation := fs.String("federation", "", "federation ID to join on a multi-tenant host (empty = the host's sole federation, which is what a single-tenant server serves)")
	codecToken := fs.String("codec", "", "update codec to negotiate at join, as a codec spec token: raw, fp16, int8, optionally with ,topk=<frac> and ,ef — must match the server's -codec (empty = legacy dense updates)")
	opsAddr := fs.String("ops-addr", "", "serve this client's ops endpoint over HTTP at this address, e.g. :9091: Prometheus metrics at /metrics (rounds trained, local training time, update coordinates) and pprof under /debug/pprof/ (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	codecSpec, err := codec.ParseSpec(*codecToken)
	if err != nil {
		return err
	}

	spec, err := dataset.SpecByName(*dsName)
	if err != nil {
		return err
	}
	train, _ := dataset.Generate(spec, *seed)
	newModel := modelFactory(spec)
	rng := rand.New(rand.NewSource(*seed + int64(*shard)*7919 + 17))

	trainer, err := buildTrainer(*role, spec, train, newModel, rng, *shard, *of, *beta, *lr, *samples)
	if err != nil {
		return err
	}
	if *opsAddr != "" {
		reg := telemetry.NewRegistry()
		ct := newCountingTrainer(trainer, reg, *role)
		trainer = ct
		bound, shutdown, err := telemetry.ServeOps(*opsAddr, telemetry.NewOpsMux(reg))
		if err != nil {
			return err
		}
		defer func() { _ = shutdown() }()
		fmt.Printf("flclient: ops endpoint at http://%s/metrics\n", bound)
	}

	client, err := flnet.DialFederation(*addr, *federation, trainer, *timeout, codecSpec)
	if err != nil {
		var rej *flnet.CodecRejectedError
		if errors.As(err, &rej) {
			return fmt.Errorf("server refused codec %q before round start: %s (retry with a matching -codec)", rej.Codec, rej.Reason)
		}
		var jrej *flnet.JoinRejectedError
		if errors.As(err, &jrej) {
			switch jrej.Code {
			case flnet.RejectAdmission:
				return fmt.Errorf("host's join queue for federation %q is full: %s (retry after a backoff)", jrej.Federation, jrej.Reason)
			case flnet.RejectUnknownFederation:
				return fmt.Errorf("host serves no federation %q: %s (check -federation)", jrej.Federation, jrej.Reason)
			}
			return fmt.Errorf("join rejected (%s): %s", jrej.Code, jrej.Reason)
		}
		return err
	}
	negotiated := codecSpec.String()
	if negotiated == "" {
		negotiated = "none"
	}
	fedLabel := *federation
	if fedLabel == "" {
		fedLabel = "default"
	}
	fmt.Printf("flclient: joined federation %s as client %d (role=%s codec=%s)\n", fedLabel, client.ID, *role, negotiated)
	final, err := client.Run()
	if err != nil {
		return err
	}
	fmt.Printf("flclient: training finished, received final model with %d weights\n", len(final))
	return nil
}

// countingTrainer wraps a Trainer with the client-side instruments served
// on -ops-addr: rounds trained, failures, local training time, and update
// coordinates produced. Pure observation — the wrapped trainer's outputs
// pass through untouched.
type countingTrainer struct {
	inner  flnet.Trainer
	rounds *telemetry.Counter
	fails  *telemetry.Counter
	dur    *telemetry.Histogram
	coords *telemetry.Counter
}

func newCountingTrainer(inner flnet.Trainer, reg *telemetry.Registry, role string) *countingTrainer {
	labels := []telemetry.Label{{Key: "role", Value: role}}
	return &countingTrainer{
		inner: inner,
		rounds: reg.Counter("flclient_rounds_total",
			"Rounds this client trained successfully.", labels...),
		fails: reg.Counter("flclient_train_failures_total",
			"Local training attempts that returned an error.", labels...),
		dur: reg.Histogram("flclient_train_seconds",
			"Wall-clock duration of one local training call.", labels...),
		coords: reg.Counter("flclient_update_coords_total",
			"Update coordinates produced across all rounds.", labels...),
	}
}

func (t *countingTrainer) Train(round int, global, prevGlobal []float64) ([]float64, int, error) {
	start := telemetry.Nanos()
	weights, n, err := t.inner.Train(round, global, prevGlobal)
	t.dur.ObserveNanos(telemetry.Nanos() - start)
	if err != nil {
		t.fails.Inc()
		return weights, n, err
	}
	t.rounds.Inc()
	t.coords.Add(int64(len(weights)))
	return weights, n, err
}

func buildTrainer(role string, spec dataset.Spec, train *dataset.Dataset,
	newModel func(rng *rand.Rand) *nn.Network, rng *rand.Rand,
	shard, of int, beta, lr float64, samples int) (flnet.Trainer, error) {

	if role == "benign" {
		if shard < 0 || shard >= of {
			return nil, fmt.Errorf("flclient: shard %d out of range [0,%d)", shard, of)
		}
		prng := rand.New(rand.NewSource(int64(of) * 31))
		var shards [][]int
		if beta > 0 {
			shards = dataset.PartitionDirichlet(prng, train.Labels, of, beta)
		} else {
			shards = dataset.PartitionIID(prng, train.Len(), of)
		}
		return flnet.NewBenignTrainer(train, shards[shard], newModel, lr, 1, 16, rng), nil
	}

	dfaCfg := core.DFAConfig{
		Classes:         spec.Classes,
		ImgC:            spec.Channels,
		ImgSize:         spec.Size,
		SampleCount:     samples,
		SynthesisEpochs: 5,
		RegLambda:       1,
		Trained:         true,
	}
	var atk fl.Attack
	var err error
	switch role {
	case "dfa-r":
		atk, err = core.NewDFAR(dfaCfg)
	case "dfa-g":
		atk, err = core.NewDFAG(dfaCfg)
	case "lie":
		atk = attack.LIE{}
	case "fang":
		atk = attack.Fang{}
	case "minmax":
		atk = attack.MinMax{}
	case "minsum":
		atk = attack.MinSum{}
	case "random":
		atk = attack.RandomWeights{}
	case "freerider":
		atk = attack.FreeRider{NoiseStd: 1e-3}
	case "signflip":
		atk = attack.SignFlip{}
	default:
		return nil, fmt.Errorf("flclient: unknown role %q", role)
	}
	if err != nil {
		return nil, err
	}
	return flnet.NewAttackTrainer(atk, newModel, rng, 50), nil
}

func modelFactory(spec dataset.Spec) func(rng *rand.Rand) *nn.Network {
	switch spec.Name {
	case "cifar-sim", "svhn-sim":
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewDeepCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	default:
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	}
}
