package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"repro/internal/analysis"
)

// vetConfig is the package description the go vet driver hands a -vettool
// in a .cfg file (cmd/go's vet protocol). Only the fields fllint needs are
// decoded.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package under the go vet driver protocol: the
// cfg file carries the package's source files and the export-data table
// for its imports — the same substrate the standalone loader builds with
// `go list -export`.
func runVetUnit(cfgPath string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, nil, fmt.Errorf("fllint: vet cfg %s: %w", cfgPath, err)
	}
	// fllint computes no cross-package facts, but the driver requires the
	// output file to exist; write it before any early return.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, token.NewFileSet(), nil
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, token.NewFileSet(), nil
		}
		return nil, nil, err
	}
	return analysis.Run([]*analysis.Package{pkg}, analyzers), pkg.Fset, nil
}
