// Command fllint runs the repro's invariant analyzers (determinism,
// runkey, poolescape, nanjson — see internal/analysis) over Go packages.
//
// Standalone:
//
//	go run ./cmd/fllint ./...             # whole repo, all analyzers
//	go run ./cmd/fllint -checks runkey ./internal/experiment
//
// As a go vet tool (unitchecker-compatible driver protocol):
//
//	go build -o /tmp/fllint ./cmd/fllint
//	go vet -vettool=/tmp/fllint ./...
//
// Exit status is 0 when no violations are found, 1 otherwise. A deliberate
// violation is exempted in place with //lint:allow <analyzer> <reason>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// The go vet driver probes tools with -V=full before handing them a
	// .cfg file; answer both before normal flag parsing so the same binary
	// serves standalone and -vettool use.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("%s version fllint-v1\n", os.Args[0])
		return
	}
	// The driver's second probe: -flags must print a JSON description of
	// the tool's flags so cmd/go can validate pass-through vet flags.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		out, _ := json.Marshal([]jsonFlag{
			{Name: "checks", Bool: false, Usage: "comma-separated analyzer subset (default: all)"},
			{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
		})
		fmt.Printf("%s\n", out)
		return
	}
	checks := flag.String("checks", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON")
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fatal(err)
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, fset, err := runVetUnit(args[0], analyzers)
		if err != nil {
			fatal(err)
		}
		// The vet driver surfaces the tool's stderr on nonzero exit.
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, args...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, analyzers)
	if *asJSON {
		type jsonDiag struct {
			Position string `json:"position"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			var pos string
			if len(pkgs) > 0 {
				pos = pkgs[0].Fset.Position(d.Pos).String()
			}
			out[i] = jsonDiag{Position: pos, Analyzer: d.Analyzer, Message: d.Message}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fllint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fllint [-checks a,b] [-json] [packages...]

fllint machine-checks the repro's reproducibility invariants. Analyzers:

`)
	for _, a := range analysis.All() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fllint:", err)
	os.Exit(2)
}
