package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildFllint compiles the fllint binary into a scratch dir once per test.
func buildFllint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fllint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/fllint: %v\n%s", err, out)
	}
	return bin
}

// TestVetToolProbe checks the -V=full handshake the go vet driver uses to
// identify a vettool: "name version stamp" on one line.
func TestVetToolProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the fllint binary")
	}
	bin := buildFllint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("fllint -V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) != 3 || fields[1] != "version" {
		t.Fatalf("fllint -V=full = %q; want \"<name> version <stamp>\"", out)
	}
}

// TestVetToolMode runs fllint under the real go vet driver — the .cfg
// protocol, export-data import resolution, vetx output files — against
// the packages whose invariants it checks, and expects a clean pass.
func TestVetToolMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds fllint and runs go vet over real packages")
	}
	bin := buildFllint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"../../internal/experiment", "../../internal/report", "../../internal/forensics")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool=fllint: %v\n%s", err, out.String())
	}
}

// TestStandaloneClean runs the standalone loader path over the same
// packages and expects exit 0 — the same contract CI enforces repo-wide.
func TestStandaloneClean(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the fllint binary")
	}
	bin := buildFllint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("fllint ./...: %v\n%s", err, out)
	}
}
