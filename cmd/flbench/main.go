// Command flbench regenerates the paper's tables and figures.
//
// Usage:
//
//	flbench -exp table2            # one artifact, quick profile
//	flbench -exp all -profile full # the whole evaluation, paper settings
//	flbench -exp all -store run.jsonl          # journal cells as they finish
//	flbench -exp all -store run.jsonl -resume  # skip cells a killed run completed
//	flbench -exp all -store shared.jsonl -worker  # drain the grid cooperatively
//	flbench -list                  # enumerate artifacts
//
// With -store, every completed grid cell is appended to a durable JSONL
// run store; re-running with -resume replays those cells instead of
// recomputing them, so an interrupted sweep finishes only its missing work.
//
// With -worker, the store becomes a shared work-claiming substrate: start
// the same command N times (any mix of machines sharing the filesystem)
// and the processes split the grid between them, each claiming cells under
// crash-tolerant leases, adopting cells other workers finished, and
// reclaiming the leases of workers that died mid-cell.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flbench", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id (see -list) or \"all\"")
	profile := fs.String("profile", "quick", "scaling profile: quick or full")
	storePath := fs.String("store", "", "JSONL run-store path; completed cells are journaled for resume (empty = off)")
	resume := fs.Bool("resume", false, "replay cells already present in -store instead of recomputing them")
	worker := fs.Bool("worker", false, "drain the grid cooperatively with other -worker processes sharing -store, claiming cells under crash-tolerant leases (implies resume semantics)")
	owner := fs.String("owner", "", "worker name recorded in lease records (diagnostics only; default hostname-pid)")
	progress := fs.Bool("progress", false, "stream per-cell completion lines with ETA to stderr")
	opsAddr := fs.String("ops-addr", "", "serve the sweep's ops endpoint over HTTP at this address, e.g. :9090: Prometheus metrics at /metrics (cells, lease protocol, kernel pool) and pprof under /debug/pprof/ (empty = off)")
	dash := fs.Bool("dash", false, "mount the embedded operator dashboard at /dash/ on the ops endpoint: fleet panel over the sweep metrics, plus replay/diff when -dash-replay is set (defaults -ops-addr to 127.0.0.1:0 when unset)")
	dashReplay := fs.String("dash-replay", "", "comma-separated journal paths (audit journals or run stores) to load into the dashboard's time-travel/diff tab (requires -dash)")
	threads := fs.Int("threads", 0, "kernel worker-pool size for training/defense compute (0 = GOMAXPROCS); never changes results")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range repro.Experiments() {
			fmt.Println(id)
		}
		return nil
	}
	if *resume && *storePath == "" {
		return fmt.Errorf("-resume requires -store")
	}
	if *worker && *storePath == "" {
		return fmt.Errorf("-worker requires -store")
	}
	if *owner != "" && !*worker {
		return fmt.Errorf("-owner requires -worker")
	}
	if *dashReplay != "" && !*dash {
		return fmt.Errorf("-dash-replay requires -dash")
	}
	if *dash && *opsAddr == "" {
		*opsAddr = "127.0.0.1:0"
	}
	opts := repro.RunOptions{
		Profile:    *profile,
		StorePath:  *storePath,
		Resume:     *resume,
		Worker:     *worker,
		Owner:      *owner,
		Threads:    *threads,
		OpsAddr:    *opsAddr,
		Dash:       *dash,
		DashReplay: *dashReplay,
	}
	if *dash {
		// The hint goes to stderr with the progress stream; stdout stays
		// the paper-table surface.
		opts.OnOpsBound = func(addr string) { report.DashboardHint(os.Stderr, addr) }
	}
	if *progress {
		opts.Progress = repro.ProgressWriter(os.Stderr)
	}
	ids := repro.Experiments()
	if *expID != "all" {
		ids = []string{*expID}
	}
	for _, id := range ids {
		start := time.Now()
		if err := repro.RunExperimentOpts(id, opts, os.Stdout); err != nil {
			return err
		}
		fmt.Printf("## %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
