// Command flbench regenerates the paper's tables and figures.
//
// Usage:
//
//	flbench -exp table2            # one artifact, quick profile
//	flbench -exp all -profile full # the whole evaluation, paper settings
//	flbench -list                  # enumerate artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flbench", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id (see -list) or \"all\"")
	profile := fs.String("profile", "quick", "scaling profile: quick or full")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range repro.Experiments() {
			fmt.Println(id)
		}
		return nil
	}
	ids := repro.Experiments()
	if *expID != "all" {
		ids = []string{*expID}
	}
	for _, id := range ids {
		start := time.Now()
		if err := repro.RunExperiment(id, *profile, os.Stdout); err != nil {
			return err
		}
		fmt.Printf("## %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
