package main

// Acceptance tests for the new scenario axes: flsim must reach the
// production-participation cells end-to-end (config → experiment →
// engine), deterministically, with a participation trace and a real final
// accuracy.

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
)

// tinyCell is a cell that exercises the full flsim pipeline in
// milliseconds.
func tinyCell() repro.Config {
	return repro.Config{
		Dataset:      "tiny-sim",
		Attack:       "signflip",
		Defense:      "mkrum",
		Beta:         0.5,
		Seed:         1,
		TotalClients: 10,
		PerRound:     4,
		Rounds:       4,
		EvalLimit:    40,
		SampleCount:  4,
		Parallel:     true,
	}
}

// TestBernoulliChurnFedAvgMCell pins the first acceptance scenario:
// Bernoulli sampling + dropout + FedAvgM runs end-to-end through the flsim
// entry point with a deterministic, internally consistent participation
// trace and a non-NaN final accuracy.
func TestBernoulliChurnFedAvgMCell(t *testing.T) {
	cfg := tinyCell()
	cfg.Sampler = "bernoulli"
	cfg.SampleRate = 0.5
	cfg.DropoutProb = 0.3
	cfg.StragglerProb = 0.1
	cfg.ServerOpt = "fedavgm"

	out, err := runConfig(cfg, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out.FinalAcc) {
		t.Fatal("final accuracy is NaN")
	}
	if len(out.Trace) != cfg.Rounds {
		t.Fatalf("trace has %d rounds, want %d", len(out.Trace), cfg.Rounds)
	}
	lost := 0
	for _, rs := range out.Trace {
		if rs.Responded != rs.Selected-rs.Dropped-rs.Straggled {
			t.Fatalf("round %d: inconsistent trace %+v", rs.Round, rs)
		}
		lost += rs.Dropped + rs.Straggled
	}
	if lost == 0 {
		t.Fatal("churn scenario produced no dropped/straggled clients")
	}

	again, err := runConfig(cfg, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Trace, again.Trace) {
		t.Fatal("participation trace is not deterministic under a fixed seed")
	}
	if out.FinalAcc != again.FinalAcc {
		t.Fatal("final accuracy is not deterministic under a fixed seed")
	}
}

// TestAsyncBufferedCell pins the second acceptance scenario: an
// async-buffered cell runs end-to-end through the flsim entry point,
// aggregating on buffer fills, deterministically, with a non-NaN final
// accuracy.
func TestAsyncBufferedCell(t *testing.T) {
	cfg := tinyCell()
	cfg.AsyncBuffer = 3
	cfg.AsyncMaxDelay = 2

	out, err := runConfig(cfg, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out.FinalAcc) {
		t.Fatal("final accuracy is NaN")
	}
	totalAggs := 0
	for _, rs := range out.Trace {
		totalAggs += rs.Aggregations
	}
	if totalAggs == 0 {
		t.Fatal("async cell never aggregated")
	}

	again, err := runConfig(cfg, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Trace, again.Trace) {
		t.Fatal("async trace is not deterministic under a fixed seed")
	}
}

// TestForensicsCell pins the forensics acceptance path end-to-end through
// the flsim entry point: -forensics plus -audit produce a detection
// summary that reconciles with the trace, a non-empty JSONL audit journal,
// and results bit-identical to the forensics-off twin.
func TestForensicsCell(t *testing.T) {
	cfg := tinyCell()
	cfg.AttackerFrac = 0.3
	cfg.Forensics = true
	cfg.AuditPath = filepath.Join(t.TempDir(), "audit.jsonl")

	out, err := runConfig(cfg, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := out.Detection
	if d == nil {
		t.Fatal("forensics cell produced no detection summary")
	}
	if d.Aggregations != cfg.Rounds {
		t.Fatalf("audited %d aggregations, want %d", d.Aggregations, cfg.Rounds)
	}
	passed := 0
	for _, rs := range out.Trace {
		passed += rs.PassedMalicious
	}
	if d.Confusion.FN != passed {
		t.Fatalf("audit FN %d != trace passed-malicious %d", d.Confusion.FN, passed)
	}
	if fi, err := os.Stat(cfg.AuditPath); err != nil || fi.Size() == 0 {
		t.Fatalf("audit journal missing or empty: %v", err)
	}

	off := cfg
	off.Forensics = false
	off.AuditPath = ""
	plain, err := runConfig(off, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.FinalAcc != out.FinalAcc || !reflect.DeepEqual(plain.Trace, out.Trace) {
		t.Fatal("forensics changed the run's results")
	}
}

// TestMillionClientPopulationCell pins the production-scale acceptance
// criterion end-to-end through the flsim entry point: a round over
// TotalClients = 1,000,000 virtual clients completes (shards materialized
// lazily for the participants only), with scattered sub-percent attacker
// placement and hierarchical aggregation, deterministically.
func TestMillionClientPopulationCell(t *testing.T) {
	cfg := tinyCell()
	cfg.TotalClients = 1000000
	cfg.PerRound = 6
	cfg.Rounds = 2
	cfg.AttackerFrac = 0.001
	cfg.Population = "virtual"
	cfg.Placement = "scatter"
	cfg.Groups = 2

	out, err := runConfig(cfg, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out.FinalAcc) {
		t.Fatal("final accuracy is NaN")
	}
	if len(out.Trace) != cfg.Rounds {
		t.Fatalf("trace has %d rounds, want %d", len(out.Trace), cfg.Rounds)
	}
	for _, rs := range out.Trace {
		if rs.Selected != cfg.PerRound {
			t.Fatalf("round %d selected %d clients, want %d", rs.Round, rs.Selected, cfg.PerRound)
		}
	}

	again, err := runConfig(cfg, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Trace, again.Trace) || out.FinalAcc != again.FinalAcc {
		t.Fatal("million-client cell is not deterministic under a fixed seed")
	}
}
