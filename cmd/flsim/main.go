// Command flsim runs a single federated-learning poisoning simulation with
// explicit parameters and prints the per-round accuracy timeline plus the
// paper's metrics (clean accuracy, acc_m, ASR, DPR).
//
// Example:
//
//	flsim -dataset cifar-sim -attack dfa-g -defense bulyan -beta 0.5 -rounds 20
//	flsim -attack dfa-r -store run.jsonl -resume   # free re-print of a journaled run
//	flsim -sampler bernoulli -dropout 0.2 -server-opt fedavgm   # cross-device churn
//	flsim -async-buffer 5 -async-delay 2           # FedBuff-style buffered aggregation
//	flsim -population virtual -total-clients 1000000 -per-round 50 \
//	      -placement scatter -frac 0.001 -groups 10   # production-scale lazy population
//	flsim -defense refd -forensics -forensics-addr :8790 -audit audit.jsonl
//	                                               # audit every defense decision, live metrics over HTTP
//	flsim -trace trace.json -ops-addr :9090        # per-phase Chrome trace + Prometheus/pprof ops endpoint
//	flsim -attack dfa-r -defense krum -dash        # live operator dashboard (prints its /dash/ URL on stderr)
//	flsim -dash -dash-replay audit.jsonl,run.jsonl # … with the time-travel/diff tab over finished runs
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flsim", flag.ContinueOnError)
	cfg := repro.Config{Parallel: true}
	fs.StringVar(&cfg.Dataset, "dataset", "fashion-sim", "dataset: fashion-sim, cifar-sim, svhn-sim, tiny-sim")
	fs.StringVar(&cfg.Attack, "attack", "dfa-r", "attack: none, random, labelflip, lie, fang, minmax, minsum, dfa-r, dfa-g, dfa-r-static, dfa-g-static, real-data")
	fs.StringVar(&cfg.Defense, "defense", "mkrum", "defense: fedavg, median, trmean, krum, mkrum, bulyan, refd")
	fs.Float64Var(&cfg.Beta, "beta", 0.5, "Dirichlet heterogeneity (<=0 for i.i.d.)")
	fs.Float64Var(&cfg.AttackerFrac, "frac", 0.2, "fraction of malicious clients")
	fs.IntVar(&cfg.Rounds, "rounds", 15, "federated rounds")
	fs.IntVar(&cfg.TotalClients, "clients", 100, "total clients N")
	fs.IntVar(&cfg.TotalClients, "total-clients", 100, "alias for -clients (population-scale cookbook spelling)")
	fs.IntVar(&cfg.PerRound, "per-round", 10, "clients selected per round K")
	fs.IntVar(&cfg.SampleCount, "samples", 50, "DFA synthetic set size |S|")
	fs.IntVar(&cfg.SynthesisEpochs, "synth-epochs", 0, "DFA synthesis epochs E (0 = paper default)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	fs.IntVar(&cfg.EvalLimit, "eval-limit", 500, "test samples per evaluation (0 = all)")
	fs.BoolVar(&cfg.NoReg, "no-reg", false, "disable the distance-based regularization L_d")
	fs.StringVar(&cfg.Partition, "partition", "label", "shard assignment: label (Dirichlet label skew / i.i.d. by beta), quantity (Dirichlet shard-size skew)")
	fs.StringVar(&cfg.Sampler, "sampler", "uniform", "per-round selection: uniform (K of N), bernoulli (per-client probability), weighted (by shard size)")
	fs.Float64Var(&cfg.SampleRate, "sample-rate", 0, "bernoulli participation probability (0 = K/N)")
	fs.Float64Var(&cfg.DropoutProb, "dropout", 0, "per-selection probability a client is unavailable for the round")
	fs.Float64Var(&cfg.StragglerProb, "straggler", 0, "per-selection probability a client misses the round deadline")
	fs.StringVar(&cfg.ServerOpt, "server-opt", "plain", "server optimizer: plain, lr (server learning rate), fedavgm (server momentum)")
	fs.Float64Var(&cfg.ServerLR, "server-lr", 0, "server learning rate for -server-opt lr/fedavgm (0 = 1)")
	fs.Float64Var(&cfg.ServerMomentum, "server-momentum", 0, "FedAvgM velocity decay (0 = 0.9)")
	fs.IntVar(&cfg.AsyncBuffer, "async-buffer", 0, "FedBuff-style async aggregation buffer size B (0 = synchronous rounds)")
	fs.IntVar(&cfg.AsyncMaxDelay, "async-delay", 0, "max simulated update arrival delay in rounds for async mode (0 = 2)")
	fs.StringVar(&cfg.Population, "population", "eager", "client-population backend: eager (all shards up front), virtual (lazy O(active)-memory population for N up to 10^6)")
	fs.IntVar(&cfg.MeanShard, "mean-shard", 0, "virtual population's expected per-client shard size in samples (0 = 32)")
	fs.IntVar(&cfg.PopCache, "pop-cache", 0, "virtual population's LRU shard-materialization cache in shards (0 = max(4*K, 64)); memory only, never results")
	fs.StringVar(&cfg.Placement, "placement", "first", "attacker placement: first (legacy first-K IDs), scatter (seeded spread), sybil (contiguous burst-join block), sizecorr (proportional to shard size)")
	fs.IntVar(&cfg.Groups, "groups", 0, "hierarchical aggregation with this many group aggregators (0 = flat server)")
	fs.StringVar(&cfg.GroupDefense, "group-defense", "", "per-group tier-1 rule for -groups (empty = same as -defense)")
	fs.StringVar(&cfg.Codec, "codec", "none", "update compression: none, raw (lossless transport reshaping), fp16 (half-precision deltas), int8 (block-scaled stochastic 8-bit deltas)")
	fs.Float64Var(&cfg.TopK, "topk", 0, "keep only this fraction of largest-magnitude delta coordinates per update, in (0,1) (0 = dense; requires -codec)")
	fs.BoolVar(&cfg.ErrorFeedback, "error-feedback", false, "carry each round's quantization/sparsification residual into the client's next update (requires a lossy -codec)")
	fs.BoolVar(&cfg.Forensics, "forensics", false, "audit every defense decision and stream detection metrics (TPR/FPR/AUC vs ground truth)")
	fs.StringVar(&cfg.AuditPath, "audit", "", "JSONL audit-journal path: one line per aggregation with per-update fingerprints, decisions and scores (implies -forensics)")
	fs.StringVar(&cfg.ForensicsAddr, "forensics-addr", "", "serve live detection metrics over HTTP at this address for the run's duration, e.g. :8790 (implies -forensics)")
	fs.IntVar(&cfg.ForensicsRing, "forensics-ring", 0, "in-memory round-audit ring size for the HTTP endpoint (0 = 64)")
	fs.IntVar(&cfg.ForensicsReservoir, "forensics-reservoir", 0, "score-pair reservoir bound for cumulative AUC/TPR@FPR (0 = 4096); memory only, metrics stay deterministic")
	fs.StringVar(&cfg.TracePath, "trace", "", "write the run's per-round/per-phase spans as a Chrome trace-event JSON file, loadable in Perfetto or chrome://tracing (implies telemetry; never changes results)")
	fs.StringVar(&cfg.TraceJournal, "trace-journal", "", "append the run's spans to a JSONL trace journal at this path (implies telemetry)")
	fs.StringVar(&cfg.OpsAddr, "ops-addr", "", "serve the ops endpoint over HTTP at this address for the run's duration, e.g. :9090: Prometheus metrics at /metrics, pprof under /debug/pprof/, forensics JSON under /forensics/ when enabled (implies telemetry)")
	fs.BoolVar(&cfg.Dash, "dash", false, "mount the embedded operator dashboard at /dash/ on the ops endpoint, with live SSE streaming of the forensics feed (implies -forensics; defaults -ops-addr to 127.0.0.1:0 when unset)")
	fs.StringVar(&cfg.DashReplay, "dash-replay", "", "comma-separated journal paths (audit journals or run stores) to load into the dashboard's time-travel/diff tab (requires -dash)")
	storePath := fs.String("store", "", "JSONL run-store path; the completed run is journaled for resume (empty = off)")
	resume := fs.Bool("resume", false, "replay the run from -store if already journaled instead of recomputing it")
	threads := fs.Int("threads", 0, "kernel worker-pool size for training/defense compute (0 = GOMAXPROCS); never changes results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *storePath == "" {
		return fmt.Errorf("-resume requires -store")
	}
	if cfg.Dash {
		if cfg.OpsAddr == "" {
			cfg.OpsAddr = "127.0.0.1:0"
		}
		// The hint goes to stderr so piped stdout keeps its machine shape.
		cfg.OnOpsBound = func(addr string) { report.DashboardHint(os.Stderr, addr) }
	}

	start := time.Now()
	out, err := runConfig(cfg, *storePath, *resume, *threads)
	if err != nil {
		return err
	}
	fmt.Printf("dataset=%s attack=%s defense=%s beta=%g frac=%g rounds=%d seed=%d\n",
		out.Config.Dataset, out.Config.Attack, out.Config.Defense,
		out.Config.Beta, out.Config.AttackerFrac, out.Config.Rounds, out.Config.Seed)
	for i, acc := range out.AccTimeline {
		if !math.IsNaN(acc) {
			fmt.Printf("round %3d  accuracy %.4f\n", i+1, acc)
		}
	}
	var selected, dropped, straggled, responded, aggs int
	for _, rs := range out.Trace {
		selected += rs.Selected
		dropped += rs.Dropped
		straggled += rs.Straggled
		responded += rs.Responded
		aggs += rs.Aggregations
	}
	// The normalized config canonicalizes the legacy sampler to "".
	samplerName := out.Config.Sampler
	if samplerName == "" {
		samplerName = "uniform"
	}
	if dropped+straggled > 0 || out.Config.AsyncBuffer > 0 || out.Config.Sampler != "" {
		fmt.Printf("participation: sampler=%s selected=%d dropped=%d straggled=%d responded=%d aggregations=%d\n",
			samplerName, selected, dropped, straggled, responded, aggs)
	}
	if out.Config.Population != "" {
		placement := out.Config.Placement
		if placement == "" {
			placement = "first"
		}
		fmt.Printf("population: backend=%s N=%d mean-shard=%d placement=%s groups=%d\n",
			out.Config.Population, out.Config.TotalClients, out.Config.MeanShard,
			placement, out.Config.Groups)
	}
	if out.Config.Codec != "" {
		fmt.Printf("codec: %s topk=%g error-feedback=%t\n",
			out.Config.Codec, out.Config.TopK, out.Config.ErrorFeedback)
	}
	if d := out.Detection; d != nil {
		na := func(v float64) string {
			if math.IsNaN(v) {
				return "N/A"
			}
			return fmt.Sprintf("%.3f", v)
		}
		fmt.Printf("detection: aggregations=%d zero_sel=%d TPR=%s FPR=%s precision=%s F1=%s AUC=%s TPR@1%%FPR=%s score=%s\n",
			d.Aggregations, d.ZeroSelectionRounds, na(d.TPR), na(d.FPR),
			na(d.Precision), na(d.F1), na(d.AUC), na(d.TPRAt1FPR), d.ScoreName)
	}
	dpr := "N/A"
	if !math.IsNaN(out.DPR) {
		dpr = fmt.Sprintf("%.2f%%", out.DPR)
	}
	fmt.Printf("clean_acc=%.2f%% acc_m=%.2f%% final=%.2f%% ASR=%.2f%% DPR=%s elapsed=%v\n",
		out.CleanAcc*100, out.MaxAcc*100, out.FinalAcc*100, out.ASR, dpr,
		time.Since(start).Round(time.Millisecond))
	return nil
}

// runConfig executes the single configuration, optionally journaling it to
// (and resuming it from) a durable run store, with the kernel worker pool
// pinned to threads when positive.
func runConfig(cfg repro.Config, storePath string, resume bool, threads int) (*repro.Outcome, error) {
	return repro.RunConfigOpts(cfg, repro.RunOptions{StorePath: storePath, Resume: resume, Threads: threads})
}
