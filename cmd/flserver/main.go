// Command flserver runs the networked federation server: it waits for a
// population of TCP clients, drives the paper's round loop with the chosen
// robust-aggregation defense, evaluates the global model each round, and
// distributes the final weights.
//
// Example (three terminals):
//
//	flserver -addr :7070 -clients 8 -per-round 4 -rounds 10 -defense mkrum
//	flclient -addr localhost:7070 -role benign -shard 0 -of 6
//	flclient -addr localhost:7070 -role dfa-r
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/experiment"
	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/forensics"
	"repro/internal/nn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	dsName := fs.String("dataset", "fashion-sim", "dataset spec (fashion-sim, cifar-sim, svhn-sim, tiny-sim)")
	defName := fs.String("defense", "mkrum", "defense: fedavg, median, trmean, krum, mkrum, bulyan, foolsgold, refd")
	clients := fs.Int("clients", 8, "population size to wait for")
	perRound := fs.Int("per-round", 4, "clients selected per round")
	rounds := fs.Int("rounds", 10, "federated rounds")
	fproxy := fs.Int("f", 2, "server's assumed attackers per round")
	refPerClass := fs.Int("ref-per-class", 20, "REFD reference samples per class")
	rejectX := fs.Int("reject", 2, "REFD rejections per round")
	timeout := fs.Duration("timeout", 30*time.Second, "per-round client deadline")
	handshake := fs.Duration("handshake-timeout", 5*time.Second, "per-connection join handshake deadline")
	acceptTimeout := fs.Duration("accept-timeout", 0, "overall join-phase deadline (0 = wait forever)")
	seed := fs.Int64("seed", 1, "random seed")
	checkpoint := fs.String("checkpoint", "", "path for atomic per-round global-model checkpoints (empty = off)")
	sampler := fs.String("sampler", "uniform", "per-round selection: uniform (K of N), bernoulli (per-client probability)")
	sampleRate := fs.Float64("sample-rate", 0, "bernoulli participation probability (0 = K/N)")
	dropout := fs.Float64("dropout", 0, "simulated per-selection dropout probability")
	straggler := fs.Float64("straggler", 0, "simulated per-selection deadline-miss probability")
	serverOpt := fs.String("server-opt", "plain", "server optimizer: plain, lr, fedavgm")
	serverLR := fs.Float64("server-lr", 0, "server learning rate for -server-opt lr/fedavgm (0 = 1)")
	serverMomentum := fs.Float64("server-momentum", 0, "FedAvgM velocity decay (0 = 0.9)")
	asyncBuffer := fs.Int("async-buffer", 0, "FedBuff-style async aggregation buffer size B (0 = synchronous)")
	asyncDelay := fs.Int("async-delay", 0, "max simulated update arrival delay in rounds for async mode (0 = 2)")
	forensicsAddr := fs.String("forensics-addr", "", "serve live defense-decision audit metrics over HTTP at this address, e.g. :8790 (empty = off)")
	auditPath := fs.String("audit", "", "JSONL audit-journal path for per-round defense decisions and update fingerprints (empty = off)")
	codecToken := fs.String("codec", "", "update codec served to clients, as a codec spec token: raw, fp16, int8, optionally with ,topk=<frac> and ,ef — e.g. int8,topk=0.1,ef (empty = legacy dense updates only; legacy clients are always served)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	codecSpec, err := codec.ParseSpec(*codecToken)
	if err != nil {
		return err
	}
	// The scenario flags share experiment.Config's normalization and
	// mapping, so flsim and flserver cannot drift. Weighted sampling needs
	// per-client shard sizes, which only the clients know in the networked
	// deployment, so it stays simulator-only.
	scfg := experiment.Config{
		Dataset:        *dsName,
		TotalClients:   *clients,
		PerRound:       *perRound,
		Sampler:        *sampler,
		SampleRate:     *sampleRate,
		DropoutProb:    *dropout,
		StragglerProb:  *straggler,
		ServerOpt:      *serverOpt,
		ServerLR:       *serverLR,
		ServerMomentum: *serverMomentum,
		AsyncBuffer:    *asyncBuffer,
		AsyncMaxDelay:  *asyncDelay,
	}
	if err := scfg.Normalize(); err != nil {
		return err
	}
	if scfg.Sampler == "weighted" {
		return fmt.Errorf("weighted sampling needs client shard sizes the networked server does not know; use uniform or bernoulli")
	}
	scenario := experiment.BuildScenario(scfg, nil)

	spec, err := dataset.SpecByName(*dsName)
	if err != nil {
		return err
	}
	_, test := dataset.Generate(spec, *seed)
	newModel := modelFactory(spec)

	var agg fl.Aggregator
	if *defName == "refd" {
		ref, err := core.BalancedReference(test, *refPerClass)
		if err != nil {
			return err
		}
		agg, err = core.NewREFD(ref, newModel, 1, *rejectX)
		if err != nil {
			return err
		}
	} else {
		agg, err = defense.ByName(*defName, *fproxy)
		if err != nil {
			return err
		}
	}

	// The networked server has no ground-truth Malicious flags, so the
	// collector provides decision auditing (who was filtered, with what
	// score and fingerprint) rather than TPR/FPR joins.
	var observer fl.AggregationObserver
	var col *forensics.Collector
	if *forensicsAddr != "" || *auditPath != "" {
		var err error
		col, err = forensics.NewCollector(forensics.Options{
			Defense:   agg.Name(),
			Seed:      *seed,
			AuditPath: *auditPath,
		})
		if err != nil {
			return err
		}
		defer col.Close() // idempotent; the success path closes and checks below
		if *forensicsAddr != "" {
			bound, shutdown, err := col.Serve(*forensicsAddr)
			if err != nil {
				return err
			}
			defer func() { _ = shutdown() }()
			fmt.Printf("flserver: forensics metrics at http://%s/metrics\n", bound)
		}
		observer = col
	}

	srv, err := flnet.NewServer(flnet.ServerConfig{
		MinClients:       *clients,
		PerRound:         *perRound,
		Rounds:           *rounds,
		RoundTimeout:     *timeout,
		HandshakeTimeout: *handshake,
		AcceptTimeout:    *acceptTimeout,
		Seed:             *seed,
		CheckpointPath:   *checkpoint,
		DatasetName:      spec.Name,
		ModelName:        "paper-cnn",
		Scenario:         scenario,
		Observer:         observer,
		Codec:            codecSpec.String(),
	}, agg, newModel, test)
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer lis.Close()
	serveCodec := codecSpec.String()
	if serveCodec == "" {
		serveCodec = "none"
	}
	fmt.Printf("flserver: listening on %s, waiting for %d clients (defense=%s dataset=%s codec=%s)\n",
		lis.Addr(), *clients, *defName, spec.Name, serveCodec)

	res, err := srv.Serve(lis)
	if err != nil {
		return err
	}
	for _, rr := range res.Rounds {
		acc := "n/a"
		if !math.IsNaN(rr.Accuracy) {
			acc = fmt.Sprintf("%.4f", rr.Accuracy)
		}
		churn := ""
		if rr.Dropped+rr.Straggled > 0 {
			churn = fmt.Sprintf("  dropped %d  straggled %d", rr.Dropped, rr.Straggled)
		}
		fmt.Printf("round %3d  selected %d  responded %d%s  accuracy %s\n",
			rr.Round+1, rr.Selected, rr.Responded, churn, acc)
	}
	fmt.Printf("final accuracy %.4f (max %.4f)\n", res.FinalAccuracy, res.MaxAccuracy)
	if col != nil {
		// A lost audit line must not pass silently: fail the process if any
		// journal append or the final sync failed.
		if err := col.Close(); err != nil {
			return fmt.Errorf("forensics audit: %w", err)
		}
	}
	return nil
}

func modelFactory(spec dataset.Spec) func(rng *rand.Rand) *nn.Network {
	switch spec.Name {
	case "cifar-sim", "svhn-sim":
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewDeepCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	default:
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	}
}
