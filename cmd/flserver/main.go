// Command flserver runs the networked federation server: it waits for a
// population of TCP clients, drives the paper's round loop with the chosen
// robust-aggregation defense, evaluates the global model each round, and
// distributes the final weights.
//
// Example (three terminals):
//
//	flserver -addr :7070 -clients 8 -per-round 4 -rounds 10 -defense mkrum
//	flclient -addr localhost:7070 -role benign -shard 0 -of 6
//	flclient -addr localhost:7070 -role dfa-r
//
// Multi-tenant: -federations serves several independent federations over
// one listener, each with its own defense, round state and checkpoint.
// Clients pick theirs with -federation:
//
//	flserver -addr :7070 -federations alpha=mkrum,beta=refd -clients 4
//	flclient -addr localhost:7070 -federation alpha -role benign -shard 0 -of 4
//
// Observability: -ops-addr (alias -forensics-addr) serves the unified ops
// endpoint — Prometheus metrics at /metrics with per-federation labels,
// pprof under /debug/pprof/, and the defense-decision audit JSON under
// /forensics/ (single-tenant) or /forensics/<id>/ (multi-tenant):
//
//	flserver -addr :7070 -federations alpha,beta -ops-addr :9090
//	curl localhost:9090/metrics                  # flnet_joins_total{federation="alpha"} …
//
// The embedded operator dashboard rides the same listener: -dash mounts it
// at /dash/ with one live tab per federation (SSE-streamed decision audits,
// score histograms, fingerprint scatter) plus the fleet panel, and
// -dash-replay loads past audit journals or run stores into its
// time-travel/diff tab:
//
//	flserver -addr :7070 -federations alpha,beta -ops-addr :9090 -dash
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/experiment"
	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/forensics"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("flserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	dsName := fs.String("dataset", "fashion-sim", "dataset spec (fashion-sim, cifar-sim, svhn-sim, tiny-sim)")
	defName := fs.String("defense", "mkrum", "defense: fedavg, median, trmean, krum, mkrum, bulyan, foolsgold, refd")
	clients := fs.Int("clients", 8, "population size to wait for")
	perRound := fs.Int("per-round", 4, "clients selected per round")
	rounds := fs.Int("rounds", 10, "federated rounds")
	fproxy := fs.Int("f", 2, "server's assumed attackers per round")
	refPerClass := fs.Int("ref-per-class", 20, "REFD reference samples per class")
	rejectX := fs.Int("reject", 2, "REFD rejections per round")
	timeout := fs.Duration("timeout", 30*time.Second, "per-round client deadline")
	handshake := fs.Duration("handshake-timeout", 5*time.Second, "per-connection join handshake deadline")
	acceptTimeout := fs.Duration("accept-timeout", 0, "overall join-phase deadline (0 = wait forever)")
	seed := fs.Int64("seed", 1, "random seed")
	checkpoint := fs.String("checkpoint", "", "path for atomic per-round global-model checkpoints (empty = off)")
	sampler := fs.String("sampler", "uniform", "per-round selection: uniform (K of N), bernoulli (per-client probability)")
	sampleRate := fs.Float64("sample-rate", 0, "bernoulli participation probability (0 = K/N)")
	dropout := fs.Float64("dropout", 0, "simulated per-selection dropout probability")
	straggler := fs.Float64("straggler", 0, "simulated per-selection deadline-miss probability")
	serverOpt := fs.String("server-opt", "plain", "server optimizer: plain, lr, fedavgm")
	serverLR := fs.Float64("server-lr", 0, "server learning rate for -server-opt lr/fedavgm (0 = 1)")
	serverMomentum := fs.Float64("server-momentum", 0, "FedAvgM velocity decay (0 = 0.9)")
	asyncBuffer := fs.Int("async-buffer", 0, "FedBuff-style async aggregation buffer size B (0 = synchronous)")
	asyncDelay := fs.Int("async-delay", 0, "max simulated update arrival delay in rounds for async mode (0 = 2)")
	var opsAddr string
	fs.StringVar(&opsAddr, "ops-addr", "", "serve the unified ops endpoint over HTTP at this address, e.g. :9090: Prometheus metrics at /metrics (per-federation labels when multi-tenant), pprof under /debug/pprof/, forensics JSON under /forensics/ — or /forensics/<id>/ with -federations (empty = off)")
	fs.StringVar(&opsAddr, "forensics-addr", "", "alias for -ops-addr: the forensics endpoint is unified with the ops plane; the decision-audit JSON lives under /forensics/ and /metrics is Prometheus text")
	auditPath := fs.String("audit", "", "JSONL audit-journal path for per-round defense decisions and update fingerprints (empty = off)")
	dash := fs.Bool("dash", false, "mount the embedded operator dashboard at /dash/ on the ops endpoint: live SSE-streamed decision audits per federation, fleet metrics panel, and replay/diff when -dash-replay is set (defaults -ops-addr to 127.0.0.1:0 when unset)")
	dashReplay := fs.String("dash-replay", "", "comma-separated journal paths (audit journals or run stores) to load into the dashboard's time-travel/diff tab (requires -dash)")
	codecToken := fs.String("codec", "", "update codec served to clients, as a codec spec token: raw, fp16, int8, optionally with ,topk=<frac> and ,ef — e.g. int8,topk=0.1,ef (empty = legacy dense updates only; legacy clients are always served)")
	federations := fs.String("federations", "", "serve several federations over one listener, as comma-separated id or id=defense entries, e.g. alpha=mkrum,beta=refd (empty = single-tenant; entries without =defense use -defense)")
	pendingJoins := fs.Int("pending-joins", 0, "multi-tenant admission control: per-federation bound on handshakes queued for admission; joins beyond it are rejected with a typed retryable error (0 = max(clients, 16))")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *federations == "" && *pendingJoins != 0 {
		return fmt.Errorf("-pending-joins requires -federations (the single-tenant server admits inline and never queues)")
	}
	if *dashReplay != "" && !*dash {
		return fmt.Errorf("-dash-replay requires -dash")
	}
	if *dash && opsAddr == "" {
		opsAddr = "127.0.0.1:0"
	}
	codecSpec, err := codec.ParseSpec(*codecToken)
	if err != nil {
		return err
	}
	// The scenario flags share experiment.Config's normalization and
	// mapping, so flsim and flserver cannot drift. Weighted sampling needs
	// per-client shard sizes, which only the clients know in the networked
	// deployment, so it stays simulator-only.
	scfg := experiment.Config{
		Dataset:        *dsName,
		TotalClients:   *clients,
		PerRound:       *perRound,
		Sampler:        *sampler,
		SampleRate:     *sampleRate,
		DropoutProb:    *dropout,
		StragglerProb:  *straggler,
		ServerOpt:      *serverOpt,
		ServerLR:       *serverLR,
		ServerMomentum: *serverMomentum,
		AsyncBuffer:    *asyncBuffer,
		AsyncMaxDelay:  *asyncDelay,
	}
	if err := scfg.Normalize(); err != nil {
		return err
	}
	if scfg.Sampler == "weighted" {
		return fmt.Errorf("weighted sampling needs client shard sizes the networked server does not know; use uniform or bernoulli")
	}
	scenario := experiment.BuildScenario(scfg, nil)

	spec, err := dataset.SpecByName(*dsName)
	if err != nil {
		return err
	}
	_, test := dataset.Generate(spec, *seed)
	newModel := modelFactory(spec)

	buildAgg := func(name string) (fl.Aggregator, error) {
		if name == "refd" {
			ref, err := core.BalancedReference(test, *refPerClass)
			if err != nil {
				return nil, err
			}
			return core.NewREFD(ref, newModel, 1, *rejectX)
		}
		return defense.ByName(name, *fproxy)
	}
	cfg := flnet.ServerConfig{
		MinClients:       *clients,
		PerRound:         *perRound,
		Rounds:           *rounds,
		RoundTimeout:     *timeout,
		HandshakeTimeout: *handshake,
		AcceptTimeout:    *acceptTimeout,
		PendingJoins:     *pendingJoins,
		Seed:             *seed,
		CheckpointPath:   *checkpoint,
		DatasetName:      spec.Name,
		ModelName:        "paper-cnn",
		Scenario:         scenario,
		Codec:            codecSpec.String(),
	}

	if *federations != "" {
		return runHost(hostOptions{
			list:       *federations,
			base:       cfg,
			buildAgg:   buildAgg,
			defense:    *defName,
			auditPath:  *auditPath,
			opsAddr:    opsAddr,
			addr:       *addr,
			dash:       *dash,
			dashReplay: *dashReplay,
		}, newModel, test)
	}

	agg, err := buildAgg(*defName)
	if err != nil {
		return err
	}

	// The ops endpoint and the forensics JSON share one mux: Prometheus
	// owns /metrics, the decision-audit analytics live under /forensics/.
	var reg *telemetry.Registry
	if opsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterPoolGauges(reg, tensor.Workers, tensor.InUse)
		cfg.Metrics = reg
	}

	// The networked server has no ground-truth Malicious flags, so the
	// collector provides decision auditing (who was filtered, with what
	// score and fingerprint) rather than TPR/FPR joins.
	var col *forensics.Collector
	if opsAddr != "" || *auditPath != "" {
		var err error
		col, err = forensics.NewCollector(forensics.Options{
			Defense:   agg.Name(),
			Seed:      *seed,
			AuditPath: *auditPath,
		})
		if err != nil {
			return err
		}
		defer col.Close() // idempotent; the success path closes and checks below
		cfg.Observer = col
	}
	if opsAddr != "" {
		mux := telemetry.NewOpsMux(reg)
		if col != nil {
			col.Mount(mux, "/forensics")
			mux.Handle("/rounds", http.RedirectHandler("/forensics/rounds", http.StatusPermanentRedirect))
		}
		if *dash {
			var feds []string
			if col != nil {
				feds = []string{"/forensics"}
			}
			if err := mountDashboard(mux, "fl server — "+*defName, feds, *dashReplay, col != nil); err != nil {
				return err
			}
		}
		bound, shutdown, err := telemetry.ServeOps(opsAddr, mux)
		if err != nil {
			return err
		}
		defer func() {
			// A drain failure is a real fault (stuck SSE subscribers, a
			// listener that died mid-run); surface it unless the run itself
			// already failed.
			if cerr := shutdown(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("ops shutdown: %w", cerr)
			}
		}()
		fmt.Printf("flserver: ops endpoint at http://%s/metrics (forensics JSON under /forensics/)\n", bound)
		if *dash {
			report.DashboardHint(os.Stdout, bound)
		}
	}

	srv, err := flnet.NewServer(cfg, agg, newModel, test)
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer lis.Close()
	serveCodec := codecSpec.String()
	if serveCodec == "" {
		serveCodec = "none"
	}
	fmt.Printf("flserver: listening on %s, waiting for %d clients (defense=%s dataset=%s codec=%s)\n",
		lis.Addr(), *clients, *defName, spec.Name, serveCodec)

	res, err := srv.Serve(lis)
	if err != nil {
		return err
	}
	printResult("", res)
	if col != nil {
		// A lost audit line must not pass silently: fail the process if any
		// journal append or the final sync failed.
		if err := col.Close(); err != nil {
			return fmt.Errorf("forensics audit: %w", err)
		}
	}
	return nil
}

// hostOptions carries the flag-derived configuration of a multi-tenant run.
type hostOptions struct {
	list       string
	base       flnet.ServerConfig
	buildAgg   func(string) (fl.Aggregator, error)
	defense    string
	auditPath  string
	opsAddr    string
	addr       string
	dash       bool
	dashReplay string
}

// runHost serves several federations over one listener. Each entry of the
// -federations list becomes an independent Federation: its own defense,
// round state, checkpoint file (suffix "-<id>") and audit journal (same
// suffix). With -ops-addr, one shared registry carries every federation's
// instruments under federation="<id>" labels on a single /metrics endpoint,
// and each tenant's forensics JSON mounts under /forensics/<id>/ — which is
// exactly the prefix list the dashboard turns into per-federation tabs.
func runHost(opt hostOptions, newModel func(rng *rand.Rand) *nn.Network, test *dataset.Dataset) (retErr error) {
	var reg *telemetry.Registry
	var mux *http.ServeMux
	if opt.opsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterPoolGauges(reg, tensor.Workers, tensor.InUse)
		mux = telemetry.NewOpsMux(reg)
	}
	type tenant struct {
		fed *flnet.Federation
		col *forensics.Collector
	}
	host := flnet.NewHost()
	var tenants []tenant
	var fedPrefixes []string
	ids := map[string]bool{}
	for _, entry := range strings.Split(opt.list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, defName, hasDef := strings.Cut(entry, "=")
		id = strings.TrimSpace(id)
		if id == "" {
			return fmt.Errorf("-federations entry %q has no federation id", entry)
		}
		if ids[id] {
			return fmt.Errorf("-federations names federation %q twice", id)
		}
		ids[id] = true
		if !hasDef || strings.TrimSpace(defName) == "" {
			defName = opt.defense
		} else {
			defName = strings.TrimSpace(defName)
		}
		agg, err := opt.buildAgg(defName)
		if err != nil {
			return fmt.Errorf("federation %q: %w", id, err)
		}
		cfg := opt.base
		if cfg.CheckpointPath != "" {
			cfg.CheckpointPath += "-" + id
		}
		cfg.Metrics = reg
		var col *forensics.Collector
		if opt.auditPath != "" || opt.opsAddr != "" {
			perFedAudit := ""
			if opt.auditPath != "" {
				perFedAudit = opt.auditPath + "-" + id
			}
			col, err = forensics.NewCollector(forensics.Options{
				Defense:   agg.Name(),
				Seed:      cfg.Seed,
				AuditPath: perFedAudit,
			})
			if err != nil {
				return fmt.Errorf("federation %q: %w", id, err)
			}
			defer col.Close()
			cfg.Observer = col
			if mux != nil {
				col.Mount(mux, "/forensics/"+id)
				fedPrefixes = append(fedPrefixes, "/forensics/"+id)
			}
		}
		fed, err := flnet.NewFederation(id, cfg, agg, newModel, test)
		if err != nil {
			return fmt.Errorf("federation %q: %w", id, err)
		}
		if err := host.Add(fed); err != nil {
			return err
		}
		tenants = append(tenants, tenant{fed: fed, col: col})
		fmt.Printf("flserver: federation %s (defense=%s)\n", id, defName)
	}
	if len(tenants) == 0 {
		return fmt.Errorf("-federations lists no federations")
	}
	if mux != nil {
		if opt.dash {
			if err := mountDashboard(mux, "fl host — "+opt.list, fedPrefixes, opt.dashReplay, len(fedPrefixes) > 0); err != nil {
				return err
			}
		}
		bound, shutdown, err := telemetry.ServeOps(opt.opsAddr, mux)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := shutdown(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("ops shutdown: %w", cerr)
			}
		}()
		fmt.Printf("flserver: ops endpoint at http://%s/metrics (per-federation forensics JSON under /forensics/<id>/)\n", bound)
		if opt.dash {
			report.DashboardHint(os.Stdout, bound)
		}
	}

	lis, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	defer lis.Close()
	fmt.Printf("flserver: hosting %d federations on %s, waiting for %d clients each\n",
		len(tenants), lis.Addr(), opt.base.MinClients)
	go func() {
		if err := host.Serve(lis); err != nil {
			fmt.Fprintln(os.Stderr, "flserver: host:", err)
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, len(tenants))
	for i, tn := range tenants {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := tn.fed.Run()
			if err != nil {
				errs[i] = fmt.Errorf("federation %q: %w", tn.fed.ID(), err)
				return
			}
			printResult(tn.fed.ID()+"  ", res)
			if tn.col != nil {
				if err := tn.col.Close(); err != nil {
					errs[i] = fmt.Errorf("federation %q forensics audit: %w", tn.fed.ID(), err)
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// mountDashboard mounts the embedded operator dashboard on the ops mux:
// one live tab per federation forensics prefix, the fleet metrics panel,
// and — when replaySpec names journals — the time-travel/diff tab.
func mountDashboard(mux *http.ServeMux, title string, feds []string, replaySpec string, live bool) error {
	replayRuns, err := experiment.LoadDashReplay(replaySpec)
	if err != nil {
		return err
	}
	if len(replayRuns) > 0 {
		forensics.NewReplay(replayRuns).Mount(mux, dashboard.Prefix+"/api/replay")
	}
	dashboard.Mount(mux, dashboard.Config{
		Title:       title,
		Federations: feds,
		Fleet:       true,
		Replay:      len(replayRuns) > 0,
		Live:        live,
	})
	return nil
}

// printResult writes the per-round reports and final metrics, each line
// prefixed (multi-tenant runs prefix the federation ID so interleaved
// output stays attributable).
func printResult(prefix string, res *flnet.ServerResult) {
	for _, rr := range res.Rounds {
		acc := "n/a"
		if !math.IsNaN(rr.Accuracy) {
			acc = fmt.Sprintf("%.4f", rr.Accuracy)
		}
		churn := ""
		if rr.Dropped+rr.Straggled > 0 {
			churn = fmt.Sprintf("  dropped %d  straggled %d", rr.Dropped, rr.Straggled)
		}
		fmt.Printf("%sround %3d  selected %d  responded %d%s  accuracy %s\n",
			prefix, rr.Round+1, rr.Selected, rr.Responded, churn, acc)
	}
	fmt.Printf("%sfinal accuracy %.4f (max %.4f)\n", prefix, res.FinalAccuracy, res.MaxAccuracy)
}

func modelFactory(spec dataset.Spec) func(rng *rand.Rand) *nn.Network {
	switch spec.Name {
	case "cifar-sim", "svhn-sim":
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewDeepCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	default:
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	}
}
