// Command flserver runs the networked federation server: it waits for a
// population of TCP clients, drives the paper's round loop with the chosen
// robust-aggregation defense, evaluates the global model each round, and
// distributes the final weights.
//
// Example (three terminals):
//
//	flserver -addr :7070 -clients 8 -per-round 4 -rounds 10 -defense mkrum
//	flclient -addr localhost:7070 -role benign -shard 0 -of 6
//	flclient -addr localhost:7070 -role dfa-r
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/nn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	dsName := fs.String("dataset", "fashion-sim", "dataset spec (fashion-sim, cifar-sim, svhn-sim, tiny-sim)")
	defName := fs.String("defense", "mkrum", "defense: fedavg, median, trmean, krum, mkrum, bulyan, foolsgold, refd")
	clients := fs.Int("clients", 8, "population size to wait for")
	perRound := fs.Int("per-round", 4, "clients selected per round")
	rounds := fs.Int("rounds", 10, "federated rounds")
	fproxy := fs.Int("f", 2, "server's assumed attackers per round")
	refPerClass := fs.Int("ref-per-class", 20, "REFD reference samples per class")
	rejectX := fs.Int("reject", 2, "REFD rejections per round")
	timeout := fs.Duration("timeout", 30*time.Second, "per-round client deadline")
	seed := fs.Int64("seed", 1, "random seed")
	checkpoint := fs.String("checkpoint", "", "path for atomic per-round global-model checkpoints (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := dataset.SpecByName(*dsName)
	if err != nil {
		return err
	}
	_, test := dataset.Generate(spec, *seed)
	newModel := modelFactory(spec)

	var agg fl.Aggregator
	if *defName == "refd" {
		ref, err := core.BalancedReference(test, *refPerClass)
		if err != nil {
			return err
		}
		agg, err = core.NewREFD(ref, newModel, 1, *rejectX)
		if err != nil {
			return err
		}
	} else {
		agg, err = defense.ByName(*defName, *fproxy)
		if err != nil {
			return err
		}
	}

	srv, err := flnet.NewServer(flnet.ServerConfig{
		MinClients:     *clients,
		PerRound:       *perRound,
		Rounds:         *rounds,
		RoundTimeout:   *timeout,
		Seed:           *seed,
		CheckpointPath: *checkpoint,
		DatasetName:    spec.Name,
		ModelName:      "paper-cnn",
	}, agg, newModel, test)
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer lis.Close()
	fmt.Printf("flserver: listening on %s, waiting for %d clients (defense=%s dataset=%s)\n",
		lis.Addr(), *clients, *defName, spec.Name)

	res, err := srv.Serve(lis)
	if err != nil {
		return err
	}
	for _, rr := range res.Rounds {
		acc := "n/a"
		if !math.IsNaN(rr.Accuracy) {
			acc = fmt.Sprintf("%.4f", rr.Accuracy)
		}
		fmt.Printf("round %3d  responded %d  accuracy %s\n", rr.Round+1, rr.Responded, acc)
	}
	fmt.Printf("final accuracy %.4f (max %.4f)\n", res.FinalAccuracy, res.MaxAccuracy)
	return nil
}

func modelFactory(spec dataset.Spec) func(rng *rand.Rand) *nn.Network {
	switch spec.Name {
	case "cifar-sim", "svhn-sim":
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewDeepCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	default:
		return func(rng *rand.Rand) *nn.Network {
			return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	}
}
