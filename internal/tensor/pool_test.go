package tensor

import "testing"

// TestPoolRecycles checks that storage handed out after a Reset reuses the
// previous cycle's slabs and arrives zeroed.
func TestPoolRecycles(t *testing.T) {
	p := NewPool()
	a := p.Get(100)
	for i := range a {
		a[i] = 1
	}
	b := p.GetTensor(4, 25)
	b.Fill(2)
	p.Reset()
	a2 := p.Get(100)
	if &a[0] != &a2[0] {
		t.Error("Get after Reset did not reuse the slab")
	}
	for i, v := range a2 {
		if v != 0 {
			t.Fatalf("recycled storage not zeroed at %d: %v", i, v)
		}
	}
	b2 := p.GetTensor(4, 25)
	if &b.Data[0] != &b2.Data[0] {
		t.Error("GetTensor after Reset did not reuse the slab")
	}
	for i, v := range b2.Data {
		if v != 0 {
			t.Fatalf("recycled tensor not zeroed at %d: %v", i, v)
		}
	}
	if b2.Shape[0] != 4 || b2.Shape[1] != 25 {
		t.Fatalf("recycled tensor shape %v", b2.Shape)
	}
}

// TestPoolSteadyStateZeroAlloc checks that a repeated allocation pattern
// stops allocating once the slabs are sized.
func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	p := NewPool()
	cycle := func() {
		p.Reset()
		_ = p.GetTensor(16, 8, 8, 8)
		_ = p.Get(3000)
		_ = p.GetTensor(2, 5)
		_ = p.Get(minSlab + 1) // larger than one slab
	}
	cycle() // warm up: size the slabs
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs > 0 {
		t.Errorf("steady-state cycle allocates %v times per run", allocs)
	}
}

// TestPoolNilFallsBack checks nil pools behave like plain allocation.
func TestPoolNilFallsBack(t *testing.T) {
	var p *Pool
	s := p.Get(10)
	if len(s) != 10 {
		t.Fatalf("nil pool Get len %d", len(s))
	}
	tt := p.GetTensor(2, 3)
	if tt.Len() != 6 {
		t.Fatalf("nil pool GetTensor len %d", tt.Len())
	}
	p.Reset() // must not panic
}

// TestPoolDistinctRegions checks two Gets in one cycle never alias.
func TestPoolDistinctRegions(t *testing.T) {
	p := NewPool()
	a := p.Get(50)
	b := p.Get(50)
	a[49] = 1
	if b[0] != 0 {
		t.Fatal("pool regions alias")
	}
	for i := range b {
		b[i] = 2
	}
	if a[49] != 1 {
		t.Fatal("pool regions alias")
	}
}
