//go:build amd64 && !purego

package tensor

import "sync"

// AVX2+FMA fast path: the three product variants are lowered onto one 4×8
// register-tile microkernel (gemm_amd64.s) over zero-padded packed panels.
// Packing fixes the depth-ascending accumulation order per output element,
// so the SIMD path is — like the scalar path — bit-identical for any worker
// count; versus the scalar path it differs only by the fused rounding of
// hardware FMA.

//go:noescape
func dgemmKernel4x8(k int, a, b, c *float64)

func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

var simdOn = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidx(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if c1&osxsave == 0 || c1&avx == 0 || c1&fma == 0 {
		return false
	}
	if xa, _ := xgetbv0(); xa&6 != 6 {
		return false // OS does not save XMM/YMM state
	}
	_, b7, _, _ := cpuidx(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// packBufs recycles packing panels across GEMM calls; sync.Pool keeps the
// steady state allocation-free while staying safe for concurrent workers.
var packBufs = sync.Pool{New: func() any { s := make([]float64, 0, 8192); return &s }}

func getPackBuf(n int) *[]float64 {
	p := packBufs.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// packB8 packs B_eff (k×n) into zero-padded 8-column panels, tile-major:
// pb[(t2*k+p)*8+c] = B_eff[p][8*t2+c]. transB selects B_eff = bᵀ with b
// stored n×k.
func packB8(pb, b []float64, k, n int, transB bool) {
	nt := (n + 7) / 8
	if transB {
		for t2 := 0; t2 < nt; t2++ {
			j0 := t2 * 8
			for c := 0; c < 8; c++ {
				j := j0 + c
				dst := pb[t2*k*8+c:]
				if j >= n {
					for p := 0; p < k; p++ {
						dst[p*8] = 0
					}
					continue
				}
				src := b[j*k : j*k+k]
				for p := 0; p < k; p++ {
					dst[p*8] = src[p]
				}
			}
		}
		return
	}
	for t2 := 0; t2 < nt; t2++ {
		j0 := t2 * 8
		w := n - j0
		if w > 8 {
			w = 8
		}
		for p := 0; p < k; p++ {
			dst := pb[(t2*k+p)*8 : (t2*k+p)*8+8]
			src := b[p*n+j0 : p*n+j0+w]
			copy(dst[:w], src)
			for c := w; c < 8; c++ {
				dst[c] = 0
			}
		}
	}
}

// packA4 packs the 4-row tile starting at row i0 of A_eff (m×k) into
// pa[p*4+r] = A_eff[i0+r][p], zero-padding rows past m. transA selects
// A_eff = aᵀ with a stored k×m.
func packA4(pa, a []float64, i0, m, k int, transA bool) {
	rows := m - i0
	if rows > 4 {
		rows = 4
	}
	if transA {
		for p := 0; p < k; p++ {
			src := a[p*m+i0:]
			dst := pa[p*4 : p*4+4]
			for r := 0; r < rows; r++ {
				dst[r] = src[r]
			}
			for r := rows; r < 4; r++ {
				dst[r] = 0
			}
		}
		return
	}
	for r := 0; r < rows; r++ {
		src := a[(i0+r)*k : (i0+r)*k+k]
		for p := 0; p < k; p++ {
			pa[p*4+r] = src[p]
		}
	}
	for r := rows; r < 4; r++ {
		for p := 0; p < k; p++ {
			pa[p*4+r] = 0
		}
	}
}

// gemmSIMD computes rows of C (m×n) = A_eff·B_eff via the packed 4×8
// microkernel; acc accumulates onto the existing C values.
func gemmSIMD(c, a, b []float64, m, k, n int, transA, transB, acc bool) {
	nt := (n + 7) / 8
	pbp := getPackBuf(nt * k * 8)
	pb := *pbp
	packB8(pb, b, k, n, transB)
	tiles := rowTiles(m)
	grain := tileGrain(k, n)
	if ChunkCount(tiles, grain) <= 1 {
		simdRowTiles(c, a, pb, m, k, n, transA, acc, 0, tiles)
	} else {
		ParallelFor(tiles, grain, func(lo, hi int) {
			simdRowTiles(c, a, pb, m, k, n, transA, acc, lo, hi)
		})
	}
	packBufs.Put(pbp)
}

// simdRowTiles runs the 4-row tiles [lo, hi) of the packed-panel product.
func simdRowTiles(c, a, pb []float64, m, k, n int, transA, acc bool, lo, hi int) {
	nt := (n + 7) / 8
	pap := getPackBuf(k * 4)
	pa := *pap
	var ct [32]float64
	for t := lo; t < hi; t++ {
		i0 := t * 4
		rows := m - i0
		if rows > 4 {
			rows = 4
		}
		packA4(pa, a, i0, m, k, transA)
		for t2 := 0; t2 < nt; t2++ {
			j0 := t2 * 8
			w := n - j0
			if w > 8 {
				w = 8
			}
			if acc {
				for r := 0; r < rows; r++ {
					copy(ct[r*8:r*8+w], c[(i0+r)*n+j0:(i0+r)*n+j0+w])
					for cc := w; cc < 8; cc++ {
						ct[r*8+cc] = 0
					}
				}
				for r := rows; r < 4; r++ {
					for cc := 0; cc < 8; cc++ {
						ct[r*8+cc] = 0
					}
				}
			} else {
				ct = [32]float64{}
			}
			dgemmKernel4x8(k, &pa[0], &pb[t2*k*8], &ct[0])
			for r := 0; r < rows; r++ {
				copy(c[(i0+r)*n+j0:(i0+r)*n+j0+w], ct[r*8:r*8+w])
			}
		}
	}
	packBufs.Put(pap)
}

// simdWorthIt reports whether the packing overhead of the SIMD path is
// amortized for this problem shape.
func simdWorthIt(m, k, n int) bool {
	return simdOn && m*k*n >= 2048
}

//go:noescape
func avxSqDistBlocks(a, b, sums *float64, blocks int)

//go:noescape
func avxDotBlocks(a, b, sums *float64, blocks int)

//go:noescape
func avxAddBlocks(dst, src *float64, blocks int)

func sqDistSIMD(a, b []float64) float64 {
	blocks := len(a) >> 4
	var sums [4]float64
	avxSqDistBlocks(&a[0], &b[0], &sums[0], blocks)
	s := ((sums[0] + sums[1]) + sums[2]) + sums[3]
	return s + sqDistScalar(a, b, blocks<<4)
}

func dotSIMD(a, b []float64) float64 {
	blocks := len(a) >> 4
	var sums [4]float64
	avxDotBlocks(&a[0], &b[0], &sums[0], blocks)
	s := ((sums[0] + sums[1]) + sums[2]) + sums[3]
	return s + dotScalar(a, b, blocks<<4)
}

func addSIMD(dst, src []float64) {
	blocks := len(dst) >> 4
	avxAddBlocks(&dst[0], &src[0], blocks)
	addScalar(dst, src, blocks<<4)
}
