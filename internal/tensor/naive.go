package tensor

import "fmt"

// This file retains the original scalar-loop matrix kernels as reference
// implementations. The optimized kernels in gemm.go are validated against
// them by randomized equivalence tests; they are exported so other packages'
// tests can cross-check their own lowerings (e.g. im2col convolution)
// against a known-good slow path.

// NaiveMatMul computes the matrix product of a (m×k) and b (k×n) into a new
// m×n tensor with the straightforward triple loop.
func NaiveMatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 tensors, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// NaiveMatMulTransA computes aᵀ·b where a is k×m and b is k×n, yielding m×n,
// with the straightforward triple loop.
func NaiveMatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// NaiveMatMulTransB computes a·bᵀ where a is m×k and b is n×k, yielding m×n,
// with the straightforward triple loop.
func NaiveMatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}
