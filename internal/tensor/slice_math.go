package tensor

// Flat-slice math kernels shared by the vector layer: squared distance and
// dot product (SIMD-accelerated where available, falling back to unrolled
// scalar loops) and element-wise addition (bit-identical on every path).
// These are the primitives the shared distance-matrix service and the
// aggregation rules are built on.

import "fmt"

func checkSameLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: %s length mismatch %d vs %d", op, len(a), len(b)))
	}
}

// SqDistSlice returns the squared Euclidean distance between a and b.
func SqDistSlice(a, b []float64) float64 {
	checkSameLen("SqDistSlice", a, b)
	if simdOn && len(a) >= 64 {
		return sqDistSIMD(a, b)
	}
	return sqDistScalar(a, b, 0)
}

// DotSlice returns the inner product of a and b.
func DotSlice(a, b []float64) float64 {
	checkSameLen("DotSlice", a, b)
	if simdOn && len(a) >= 64 {
		return dotSIMD(a, b)
	}
	return dotScalar(a, b, 0)
}

// AddSlice performs dst += src element-wise. The SIMD and scalar paths are
// bit-identical: addition is purely element-wise.
func AddSlice(dst, src []float64) {
	checkSameLen("AddSlice", dst, src)
	if simdOn && len(dst) >= 64 {
		addSIMD(dst, src)
		return
	}
	addScalar(dst, src, 0)
}

// sqDistScalar accumulates the squared distance of a[i:] vs b[i:] with four
// independent chains.
func sqDistScalar(a, b []float64, i int) float64 {
	var s0, s1, s2, s3 float64
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return ((s0 + s1) + s2) + s3
}

func dotScalar(a, b []float64, i int) float64 {
	var s0, s1, s2, s3 float64
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

func addScalar(dst, src []float64, i int) {
	for ; i < len(dst); i++ {
		dst[i] += src[i]
	}
}
