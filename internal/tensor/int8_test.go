package tensor

import (
	"math/rand"
	"testing"
)

// TestInt8BlockDotsScalarSIMD checks the dispatched kernel against the
// scalar reference bit-for-bit across block counts and adversarial values
// (including the extremes ±127, where VPMADDWD pair sums peak).
func TestInt8BlockDotsScalarSIMD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, blocks := range []int{1, 2, 3, 7, 16} {
		n := blocks * Int8Block
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
		}
		// Saturate one block with the extreme magnitude product.
		for i := 0; i < Int8Block && i < n; i++ {
			a[i], b[i] = -127, -127
		}
		got := make([]int64, blocks)
		want := make([]int64, blocks)
		Int8BlockDots(a, b, got)
		int8BlockDotsScalar(a, b, want)
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("blocks=%d: block %d: dispatched %d, scalar %d", blocks, k, got[k], want[k])
			}
		}
	}
}

// TestInt8BlockDotsKnown pins a hand-computable case.
func TestInt8BlockDotsKnown(t *testing.T) {
	a := make([]int8, Int8Block)
	b := make([]int8, Int8Block)
	for i := range a {
		a[i] = 2
		b[i] = 3
	}
	out := make([]int64, 1)
	Int8BlockDots(a, b, out)
	if want := int64(6 * Int8Block); out[0] != want {
		t.Fatalf("Int8BlockDots = %d, want %d", out[0], want)
	}
}

// TestInt8Dot covers the tail helper against a direct sum.
func TestInt8Dot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 5, 255, 300} {
		a := make([]int8, n)
		b := make([]int8, n)
		var want int64
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
			want += int64(a[i]) * int64(b[i])
		}
		if got := Int8Dot(a, b); got != want {
			t.Fatalf("n=%d: Int8Dot = %d, want %d", n, got, want)
		}
	}
}

func BenchmarkInt8BlockDots(b *testing.B) {
	const blocks = 64 // 16k elements
	x := make([]int8, blocks*Int8Block)
	y := make([]int8, blocks*Int8Block)
	for i := range x {
		x[i] = int8(i%255 - 127)
		y[i] = int8((i*7)%255 - 127)
	}
	out := make([]int64, blocks)
	b.SetBytes(int64(2 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Int8BlockDots(x, y, out)
	}
}
