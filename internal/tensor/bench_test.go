package tensor

import (
	"math/rand"
	"testing"
)

func benchMat(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	x := New(m, k)
	y := New(k, n)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchMat(b, 64, 64, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMat(b, 256, 256, 10) }

func BenchmarkMatMulTransA(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := New(64, 256)
	y := New(64, 10)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransA(x, y)
	}
}

func BenchmarkAxpyInPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(27000)
	y := New(27000)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AxpyInPlace(0.001, y)
	}
}
