//go:build !amd64 || purego

package tensor

// Non-amd64 (or purego) builds always use the scalar blocked kernels.

var simdOn = false

func simdWorthIt(m, k, n int) bool { return false }

func gemmSIMD(c, a, b []float64, m, k, n int, transA, transB, acc bool) {
	panic("tensor: gemmSIMD unavailable")
}

func sqDistSIMD(a, b []float64) float64 { panic("tensor: sqDistSIMD unavailable") }

func dotSIMD(a, b []float64) float64 { panic("tensor: dotSIMD unavailable") }

func addSIMD(dst, src []float64) { panic("tensor: addSIMD unavailable") }
