package tensor

import "fmt"

// Int8Block is the fixed block length of the int8 kernel family. The update
// codec quantizes float64 deltas to int8 with one scale factor per
// Int8Block-element block; the geometry kernels below produce the exact
// per-block integer dot products that, combined with those scales, yield
// quantized-domain distances. 256 elements keep the AVX2 int32 accumulator
// far from overflow (|a·b| ≤ 127²·256 < 2^23 per lane) while amortizing the
// horizontal reduction.
const Int8Block = 256

// Int8BlockDots writes, for each full Int8Block-long block of a and b, the
// exact integer dot product of that block into out: out[k] = Σ a[i]*b[i]
// over i in [k*Int8Block, (k+1)*Int8Block). Exactly len(out) blocks are
// processed; a and b must cover them. Any tail beyond the last full block is
// the caller's to handle (see Int8Dot). Integer sums are exact, so the SIMD
// and scalar paths are bit-identical by construction.
func Int8BlockDots(a, b []int8, out []int64) {
	need := len(out) * Int8Block
	if len(a) < need || len(b) < need {
		panic(fmt.Sprintf("tensor: Int8BlockDots needs %d elements, have %d/%d", need, len(a), len(b)))
	}
	if len(out) == 0 {
		return
	}
	if simdOn {
		avxInt8BlockDots(&a[0], &b[0], len(out), &out[0])
		return
	}
	int8BlockDotsScalar(a, b, out)
}

// int8BlockDotsScalar is the portable block-dot kernel. Integer addition is
// associative, so any summation order gives the same result as the SIMD
// path.
func int8BlockDotsScalar(a, b []int8, out []int64) {
	for k := range out {
		lo := k * Int8Block
		var s int64
		for i := lo; i < lo+Int8Block; i++ {
			s += int64(a[i]) * int64(b[i])
		}
		out[k] = s
	}
}

// Int8Dot returns the exact integer dot product of a tail segment (or any
// short run) of two int8 vectors. The codec uses it for the final partial
// block when the dimension is not a multiple of Int8Block.
func Int8Dot(a, b []int8) int64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Int8Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s int64
	for i := range a {
		s += int64(a[i]) * int64(b[i])
	}
	return s
}
