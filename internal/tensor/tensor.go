// Package tensor implements a small dense-tensor library used as the
// numerical substrate of the reproduction: row-major float64 tensors with the
// element-wise, matrix and convolution operations required to train the
// paper's CNN classifiers and the DFA generator networks.
//
// The package is deliberately minimal: shapes are explicit, there is no
// broadcasting beyond what the neural-network layers need, and all operations
// are deterministic given a seeded *rand.Rand.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 tensor. The zero value is an empty
// tensor; use New or the constructors below to create usable tensors.
type Tensor struct {
	// Shape holds the extent of every dimension, outermost first.
	Shape []int
	// Data holds the elements in row-major order; len(Data) == product(Shape).
	Data []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly product(shape) elements.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape. The element count must match;
// the underlying data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.Shape))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= t.Shape[d] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[d] + i
	}
	return off
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillUniform fills t with samples drawn uniformly from [lo, hi).
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// FillNormal fills t with Gaussian samples of the given mean and standard
// deviation.
func (t *Tensor) FillNormal(rng *rand.Rand, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = mean + rng.NormFloat64()*std
	}
}

// AddInPlace adds o to t element-wise. Shapes must have equal element counts.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: add shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AxpyInPlace performs t += a*o element-wise.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: axpy shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxIndex returns the index of the largest element (ties resolve to the
// first occurrence). It panics on an empty tensor.
func (t *Tensor) MaxIndex() int {
	if len(t.Data) == 0 {
		panic("tensor: MaxIndex of empty tensor")
	}
	best, bestV := 0, t.Data[0]
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Norm2 returns the Euclidean norm of all elements.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether two tensors have identical shapes and element-wise
// difference within eps.
func Equal(a, b *Tensor, eps float64) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > eps {
			return false
		}
	}
	return true
}

// The matrix kernels (MatMul, MatMulTransA, MatMulTransB and their Into /
// accumulate variants) live in gemm.go; the original scalar loops are
// retained in naive.go as reference implementations for equivalence tests.
