package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package-level worker pool bounds the total number of goroutines the
// kernel layer (GEMM row blocks, convolution batch fan-out, distance-matrix
// rows, …) may run concurrently, across every simultaneous caller. It is a
// semaphore rather than a fixed set of worker goroutines so that nested
// parallel sections (a parallel GEMM inside a concurrently trained client)
// degrade gracefully: when no slot is free the work runs inline in the
// calling goroutine instead of queueing, which makes deadlock impossible and
// keeps the machine at the configured width.
var poolWidth atomic.Int64

// SetWorkers sets the kernel worker-pool size. n <= 0 resets it to
// runtime.GOMAXPROCS(0). The setting is process-global: it bounds the
// combined parallelism of all tensor kernels and of the helpers built on
// ParallelFor (client training, evaluation, defense scoring).
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	poolWidth.Store(int64(n))
}

// Workers returns the current kernel worker-pool size.
func Workers() int {
	if w := poolWidth.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// slots is the global concurrency budget: a counting semaphore sized lazily
// from Workers(). extraSlots tracks how many helper goroutines beyond the
// calling one are currently running; a helper may start only while the count
// is below Workers()-1.
var extraSlots atomic.Int64

func acquireSlot() bool {
	for {
		cur := extraSlots.Load()
		if cur >= int64(Workers()-1) {
			return false
		}
		if extraSlots.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseSlot() { extraSlots.Add(-1) }

// InUse reports how many helper goroutines beyond their callers are
// currently running — the pool's instantaneous occupancy, for telemetry
// gauges. Purely observational; the value is stale the moment it returns.
func InUse() int { return int(extraSlots.Load()) }

// FanOut runs fn in up to workers goroutines: fn(0) in the calling
// goroutine and fn(w) for w = 1.. in one helper goroutine per slot
// acquired from the same global budget the kernel helpers draw from, so
// the -threads pin bounds the process's total compute goroutines. When the
// budget is exhausted some worker indices never run, so fn must
// cooperatively drain a shared work queue (e.g. an atomic counter) and use
// its index only to select per-worker state. Coarse fan-outs — client
// training, evaluation, defense scoring — are built on this.
func FanOut(workers int, fn func(worker int)) {
	var wg sync.WaitGroup
	for w := 1; w < workers && acquireSlot(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer releaseSlot()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// chunkPlan splits [0, n) into contiguous chunks of at least minGrain
// indices, capped at the worker count. It returns the chunk count and size.
func chunkPlan(n, minGrain int) (chunks, size int) {
	if minGrain < 1 {
		minGrain = 1
	}
	workers := Workers()
	if workers <= 1 || n < 2*minGrain {
		return 1, n
	}
	chunks = (n + minGrain - 1) / minGrain
	if chunks > workers {
		chunks = workers
	}
	size = (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	return chunks, size
}

// ChunkCount returns the number of chunks ParallelForChunks will split
// [0, n) into under the current worker-pool size, so callers can stage one
// scratch buffer per chunk before fanning out.
func ChunkCount(n, minGrain int) int {
	if n <= 0 {
		return 0
	}
	chunks, _ := chunkPlan(n, minGrain)
	return chunks
}

// ParallelFor splits the index range [0, n) into contiguous chunks and runs
// fn(lo, hi) on up to Workers() goroutines (including the caller). Chunks
// are at least minGrain indices long; when n < 2*minGrain or only one worker
// is configured the whole range runs inline. fn must write only to
// disjoint, index-addressed outputs: the decomposition into chunks must not
// influence the result, which keeps every kernel built on ParallelFor
// bit-identical regardless of the worker count.
func ParallelFor(n, minGrain int, fn func(lo, hi int)) {
	ParallelForChunks(n, minGrain, func(lo, hi, _ int) { fn(lo, hi) })
}

// ParallelForChunks is ParallelFor with the chunk index passed to fn, so
// each chunk can use a pre-staged scratch buffer (see ChunkCount). Chunk
// indices are dense in [0, ChunkCount(n, minGrain)).
func ParallelForChunks(n, minGrain int, fn func(lo, hi, chunk int)) {
	ParallelForChunksCap(n, minGrain, int(^uint(0)>>1), fn)
}

// ParallelForChunksCap is ParallelForChunks with the chunk count clamped to
// maxChunks, so a caller that staged buffers under an earlier ChunkCount
// reading stays safe even if the worker-pool size grows concurrently.
func ParallelForChunksCap(n, minGrain, maxChunks int, fn func(lo, hi, chunk int)) {
	if n <= 0 {
		return
	}
	chunks, size := chunkPlan(n, minGrain)
	if chunks > maxChunks {
		chunks = maxChunks
		if chunks < 1 {
			chunks = 1
		}
		size = (n + chunks - 1) / chunks
		chunks = (n + size - 1) / size
	}
	if chunks == 1 {
		fn(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if acquireSlot() {
			wg.Add(1)
			go func(lo, hi, c int) {
				defer wg.Done()
				defer releaseSlot()
				fn(lo, hi, c)
			}(lo, hi, c)
		} else {
			fn(lo, hi, c)
		}
	}
	fn(0, size, 0)
	wg.Wait()
}
