package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapesAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"scalar-ish", []int{1}, 1},
		{"vector", []int{7}, 7},
		{"matrix", []int{3, 4}, 12},
		{"image", []int{3, 16, 16}, 768},
		{"batch", []int{2, 3, 4, 5}, 120},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr := New(tc.shape...)
			if tr.Len() != tc.want {
				t.Fatalf("Len() = %d, want %d", tr.Len(), tc.want)
			}
			for _, v := range tr.Data {
				if v != 0 {
					t.Fatalf("New tensor not zero-filled: %v", v)
				}
			}
		})
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(3, 0)
}

func TestFromSliceAndAt(t *testing.T) {
	tr := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := tr.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := tr.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	tr.Set(42, 1, 0)
	if got := tr.At(1, 0); got != 42 {
		t.Errorf("after Set, At(1,0) = %v, want 42", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	tr := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tr.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data[0] = 99
	b.Shape[0] = 4
	if a.Data[0] != 1 || a.Shape[0] != 2 {
		t.Fatal("Clone shares state with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 10
	if a.Data[0] != 10 {
		t.Fatal("Reshape should share underlying data")
	}
	if b.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v, want 6", b.At(2, 1))
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reshaping 6 elements to 4")
		}
	}()
	a.Reshape(2, 2)
}

func TestFillAndZero(t *testing.T) {
	a := New(4)
	a.Fill(2.5)
	if a.Sum() != 10 {
		t.Fatalf("Sum after Fill = %v, want 10", a.Sum())
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatalf("Sum after Zero = %v, want 0", a.Sum())
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(1000)
	a.FillUniform(rng, -0.5, 0.5)
	for _, v := range a.Data {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform sample %v out of [-0.5, 0.5)", v)
		}
	}
	if m := a.Sum() / 1000; math.Abs(m) > 0.05 {
		t.Errorf("uniform mean %v too far from 0", m)
	}
}

func TestFillNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(20000)
	a.FillNormal(rng, 1.0, 2.0)
	mean := a.Sum() / float64(a.Len())
	if math.Abs(mean-1.0) > 0.1 {
		t.Errorf("normal mean %v, want ~1.0", mean)
	}
	varSum := 0.0
	for _, v := range a.Data {
		varSum += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varSum / float64(a.Len()))
	if math.Abs(std-2.0) > 0.1 {
		t.Errorf("normal std %v, want ~2.0", std)
	}
}

func TestAddScaleAxpy(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.AddInPlace(b)
	want := []float64{5, 7, 9}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.ScaleInPlace(2)
	for i, w := range want {
		if a.Data[i] != 2*w {
			t.Fatalf("ScaleInPlace[%d] = %v, want %v", i, a.Data[i], 2*w)
		}
	}
	a.AxpyInPlace(-2, b)
	wantAxpy := []float64{2, 4, 6}
	for i, w := range wantAxpy {
		if a.Data[i] != w {
			t.Fatalf("AxpyInPlace[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
}

func TestMaxIndex(t *testing.T) {
	tests := []struct {
		name string
		data []float64
		want int
	}{
		{"simple", []float64{1, 5, 3}, 1},
		{"first", []float64{9, 5, 3}, 0},
		{"last", []float64{1, 5, 30}, 2},
		{"tie-first", []float64{7, 7, 7}, 0},
		{"negative", []float64{-3, -1, -2}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr := FromSlice(tc.data, len(tc.data))
			if got := tr.MaxIndex(); got != tc.want {
				t.Fatalf("MaxIndex() = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestNorm2(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if got := a.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner-dimension mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulTransposeConsistency checks that the fused transpose products
// agree with explicit transposition followed by MatMul.
func TestMatMulTransposeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 5)
	b := New(4, 6)
	a.FillNormal(rng, 0, 1)
	b.FillNormal(rng, 0, 1)

	at := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := MatMul(at, b)
	got := MatMulTransA(a, b)
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}

	c := New(5, 7)
	d := New(6, 7)
	c.FillNormal(rng, 0, 1)
	d.FillNormal(rng, 0, 1)
	dt := New(7, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			dt.Set(d.At(i, j), j, i)
		}
	}
	want2 := MatMul(c, dt)
	got2 := MatMulTransB(c, d)
	if !Equal(got2, want2, 1e-12) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

// Property: matmul with identity returns the original matrix.
func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 2 + rng.Intn(5)
		a := New(m, n)
		a.FillNormal(rng, 0, 1)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		return Equal(MatMul(a, id), a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A+B)·C == A·C + B·C (distributivity of MatMul).
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 2+rng.Intn(4), 2+rng.Intn(4), 2+rng.Intn(4)
		a := New(m, k)
		b := New(m, k)
		c := New(k, n)
		a.FillNormal(rng, 0, 1)
		b.FillNormal(rng, 0, 1)
		c.FillNormal(rng, 0, 1)
		sum := a.Clone()
		sum.AddInPlace(b)
		lhs := MatMul(sum, c)
		rhs := MatMul(a, c)
		rhs.AddInPlace(MatMul(b, c))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(2, 3), New(3, 2), 1) {
		t.Fatal("Equal must require identical shapes")
	}
	if Equal(New(2), New(2, 1), 1) {
		t.Fatal("Equal must require identical ranks")
	}
}
