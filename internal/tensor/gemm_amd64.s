//go:build amd64 && !purego

#include "textflag.h"

// func dgemmKernel4x8(k int, a, b, c *float64)
//
// Computes the 4×8 register tile c += aᵀ·b over the packed panels
//   a: [k][4]  (column of the A row-tile at each depth step)
//   b: [k][8]  (row of the B col-tile at each depth step)
//   c: [4][8]  contiguous, preloaded with the initial tile values.
//
// Accumulation runs in ascending depth order with one FMA chain per output
// element, so results are identical for any row/col tiling of the caller.
TEXT ·dgemmKernel4x8(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX

	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD 64(DX), Y2
	VMOVUPD 96(DX), Y3
	VMOVUPD 128(DX), Y4
	VMOVUPD 160(DX), Y5
	VMOVUPD 192(DX), Y6
	VMOVUPD 224(DX), Y7

	TESTQ CX, CX
	JZ    done

loop:
	VMOVUPD (DI), Y8        // b[p][0:4]
	VMOVUPD 32(DI), Y9      // b[p][4:8]

	VBROADCASTSD (SI), Y10  // a[p][0]
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1

	VBROADCASTSD 8(SI), Y10 // a[p][1]
	VFMADD231PD  Y8, Y10, Y2
	VFMADD231PD  Y9, Y10, Y3

	VBROADCASTSD 16(SI), Y10 // a[p][2]
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5

	VBROADCASTSD 24(SI), Y10 // a[p][3]
	VFMADD231PD  Y8, Y10, Y6
	VFMADD231PD  Y9, Y10, Y7

	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func avxSqDistBlocks(a, b, sums *float64, blocks int)
//
// Accumulates the squared distance of blocks*16 elements into sums[0:4]
// (four independent lane groups; the caller reduces and handles the tail).
TEXT ·avxSqDistBlocks(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ sums+16(FP), DX
	MOVQ blocks+24(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	TESTQ CX, CX
	JZ    sqdone

sqloop:
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VSUBPD  (DI), Y4, Y4
	VSUBPD  32(DI), Y5, Y5
	VSUBPD  64(DI), Y6, Y6
	VSUBPD  96(DI), Y7, Y7
	VFMADD231PD Y4, Y4, Y0
	VFMADD231PD Y5, Y5, Y1
	VFMADD231PD Y6, Y6, Y2
	VFMADD231PD Y7, Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  sqloop

sqdone:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func avxDotBlocks(a, b, sums *float64, blocks int)
//
// Accumulates the dot product of blocks*16 elements into sums[0:4].
TEXT ·avxDotBlocks(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ sums+16(FP), DX
	MOVQ blocks+24(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	TESTQ CX, CX
	JZ    dotdone

dotloop:
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  dotloop

dotdone:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func avxAddBlocks(dst, src *float64, blocks int)
//
// dst[i] += src[i] for blocks*16 elements. Pure element-wise addition, so
// the result is bit-identical to the scalar loop.
TEXT ·avxAddBlocks(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), SI
	MOVQ src+8(FP), DI
	MOVQ blocks+16(FP), CX

	TESTQ CX, CX
	JZ    adddone

addloop:
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VADDPD  (DI), Y4, Y4
	VADDPD  32(DI), Y5, Y5
	VADDPD  64(DI), Y6, Y6
	VADDPD  96(DI), Y7, Y7
	VMOVUPD Y4, (SI)
	VMOVUPD Y5, 32(SI)
	VMOVUPD Y6, 64(SI)
	VMOVUPD Y7, 96(SI)
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  addloop

adddone:
	VZEROUPPER
	RET

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
