//go:build amd64 && !purego

package tensor

// avxInt8BlockDots computes `blocks` exact 256-element int8 block dot
// products: out[k] = Σ a[k*256+i]*b[k*256+i]. Products are widened to int16
// lanes (VPMOVSXBW), pair-summed into int32 (VPMADDWD) — bounded by
// 2·127²·8 per lane pair, far below overflow — and reduced to one int64 per
// block, so the result is the exact integer sum.
//
//go:noescape
func avxInt8BlockDots(a, b *int8, blocks int, out *int64)
