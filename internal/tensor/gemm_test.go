package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// relDiff returns the largest element-wise difference between a and b
// relative to the magnitude of the values involved.
func relDiff(t *testing.T, a, b *Tensor) float64 {
	t.Helper()
	if len(a.Data) != len(b.Data) {
		t.Fatalf("length mismatch %d vs %d", len(a.Data), len(b.Data))
	}
	worst := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		scale := math.Max(1, math.Max(math.Abs(a.Data[i]), math.Abs(b.Data[i])))
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	t.FillNormal(rng, 0, 1)
	return t
}

// TestGEMMEquivalence checks the blocked kernels against the retained naive
// references over randomized shapes, including single-row/column edges and
// shapes not divisible by the 4×4 tile.
func TestGEMMEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {1, 7, 1}, {4, 4, 4}, {5, 3, 9}, {8, 16, 10}, {13, 29, 7}, {64, 9, 33}, {31, 77, 12}}
	for i := 0; i < 20; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		if d := relDiff(t, MatMul(a, b), NaiveMatMul(a, b)); d > 1e-9 {
			t.Errorf("MatMul %v rel diff %g", s, d)
		}
		at := randTensor(rng, k, m)
		if d := relDiff(t, MatMulTransA(at, b), NaiveMatMulTransA(at, b)); d > 1e-9 {
			t.Errorf("MatMulTransA %v rel diff %g", s, d)
		}
		bt := randTensor(rng, n, k)
		if d := relDiff(t, MatMulTransB(a, bt), NaiveMatMulTransB(a, bt)); d > 1e-9 {
			t.Errorf("MatMulTransB %v rel diff %g", s, d)
		}
	}
}

// TestGEMMAccumulate checks that the accumulate variants add the product on
// top of the destination's existing values.
func TestGEMMAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 9, 13, 6
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	init := randTensor(rng, m, n)

	dst := init.Clone()
	MatMulAccInto(dst, a, b)
	want := NaiveMatMul(a, b)
	want.AddInPlace(init)
	if d := relDiff(t, dst, want); d > 1e-9 {
		t.Errorf("MatMulAccInto rel diff %g", d)
	}

	at := randTensor(rng, k, m)
	dst = init.Clone()
	MatMulTransAAccInto(dst, at, b)
	want = NaiveMatMulTransA(at, b)
	want.AddInPlace(init)
	if d := relDiff(t, dst, want); d > 1e-9 {
		t.Errorf("MatMulTransAAccInto rel diff %g", d)
	}

	bt := randTensor(rng, n, k)
	dst = init.Clone()
	MatMulTransBAccInto(dst, a, bt)
	want = NaiveMatMulTransB(a, bt)
	want.AddInPlace(init)
	if d := relDiff(t, dst, want); d > 1e-9 {
		t.Errorf("MatMulTransBAccInto rel diff %g", d)
	}
}

// TestGEMMScalarPathEquivalence re-runs the randomized equivalence checks
// with the SIMD fast path disabled, so the scalar blocked kernels stay
// covered on machines where the fast path would otherwise always win.
func TestGEMMScalarPathEquivalence(t *testing.T) {
	old := simdOn
	simdOn = false
	defer func() { simdOn = old }()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		m, k, n := 1+rng.Intn(30), 1+rng.Intn(30), 1+rng.Intn(30)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		if d := relDiff(t, MatMul(a, b), NaiveMatMul(a, b)); d > 1e-9 {
			t.Errorf("scalar MatMul %dx%dx%d rel diff %g", m, k, n, d)
		}
		at := randTensor(rng, k, m)
		if d := relDiff(t, MatMulTransA(at, b), NaiveMatMulTransA(at, b)); d > 1e-9 {
			t.Errorf("scalar MatMulTransA %dx%dx%d rel diff %g", m, k, n, d)
		}
		bt := randTensor(rng, n, k)
		if d := relDiff(t, MatMulTransB(a, bt), NaiveMatMulTransB(a, bt)); d > 1e-9 {
			t.Errorf("scalar MatMulTransB %dx%dx%d rel diff %g", m, k, n, d)
		}
	}
}

// TestGEMMWorkerCountInvariance asserts the parallel row partitioning is
// invisible in the output bits: any worker count produces the identical
// result, which the federated determinism guarantee rests on.
func TestGEMMWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 67, 33)
	b := randTensor(rng, 33, 21)
	defer SetWorkers(0)
	SetWorkers(1)
	serial := MatMul(a, b)
	for _, w := range []int{2, 3, 8, 64} {
		SetWorkers(w)
		got := MatMul(a, b)
		for i := range got.Data {
			if got.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d: element %d = %v, want %v (bit-exact)", w, i, got.Data[i], serial.Data[i])
			}
		}
	}
}

// TestMatMulIntoShapeChecks exercises the destination validation.
func TestMatMulIntoShapeChecks(t *testing.T) {
	a := New(3, 4)
	b := New(4, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong destination shape")
		}
	}()
	MatMulInto(New(3, 4), a, b)
}

// TestParallelForCoversRange checks every index is visited exactly once for
// a variety of range/grain combinations.
func TestParallelForCoversRange(t *testing.T) {
	defer SetWorkers(0)
	for _, workers := range []int{1, 2, 5} {
		SetWorkers(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 100} {
				counts := make([]int32, n)
				ParallelFor(n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						counts[i]++
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, c)
					}
				}
			}
		}
	}
}
