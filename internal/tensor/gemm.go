package tensor

import "fmt"

// Blocked, register-tiled matrix kernels. All three product shapes
// (A·B, Aᵀ·B, A·Bᵀ) share the same structure: the output is partitioned
// into 4×4 register tiles, each tile accumulates over the shared dimension
// in ascending order, and row-tile blocks are distributed over the package
// worker pool for large problems.
//
// Determinism: every output element is produced by exactly one goroutine and
// its accumulation order over the shared dimension is fixed (ascending, one
// register chain per element), so results are bit-identical for any worker
// count — and bit-identical to the retained naive kernels up to the sign of
// zero (the naive loops skip zero operands, the tiled ones add ±0).

// parGrainMACs is the minimum number of multiply-accumulates a worker chunk
// should amortize before the row loop is worth fanning out.
const parGrainMACs = 1 << 15

// rowTiles returns the number of 4-row tiles covering m rows.
func rowTiles(m int) int { return (m + 3) / 4 }

// tileGrain converts the per-tile MAC count into a ParallelFor grain.
func tileGrain(k, n int) int {
	macs := 4 * k * n
	if macs <= 0 {
		return 1
	}
	g := parGrainMACs / macs
	if g < 1 {
		g = 1
	}
	return g
}

func checkRank2(op string, a, b *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s needs rank-2 tensors, got %v and %v", op, a.Shape, b.Shape))
	}
}

func checkDst(op string, dst *Tensor, m, n int) {
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n || len(dst.Data) != m*n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.Shape, m, n))
	}
}

// MatMul computes the matrix product of a (m×k) and b (k×n) into a new m×n
// tensor. Both arguments must be rank-2.
func MatMul(a, b *Tensor) *Tensor {
	checkRank2("MatMul", a, b)
	out := New(a.Shape[0], b.Shape[1])
	return MatMulInto(out, a, b)
}

// MatMulInto computes dst = a·b where a is m×k, b is k×n and dst is a
// preallocated m×n tensor, and returns dst. dst is overwritten.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	checkRank2("MatMulInto", a, b)
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	checkDst("MatMulInto", dst, m, n)
	GemmNN(dst.Data, a.Data, b.Data, m, k, n, false)
	return dst
}

// MatMulAccInto computes dst += a·b with the shapes of MatMulInto and
// returns dst. Each output element is accumulated onto its existing value in
// ascending order of the shared dimension, matching element-wise incremental
// accumulation bit for bit.
func MatMulAccInto(dst, a, b *Tensor) *Tensor {
	checkRank2("MatMulAccInto", a, b)
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	checkDst("MatMulAccInto", dst, m, n)
	GemmNN(dst.Data, a.Data, b.Data, m, k, n, true)
	return dst
}

// MatMulTransA computes aᵀ·b where a is k×m and b is k×n, yielding m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	checkRank2("MatMulTransA", a, b)
	out := New(a.Shape[1], b.Shape[1])
	return MatMulTransAInto(out, a, b)
}

// MatMulTransAInto computes dst = aᵀ·b where a is k×m, b is k×n and dst is
// a preallocated m×n tensor, and returns dst.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	return matMulTransAInto(dst, a, b, false)
}

// MatMulTransAAccInto computes dst += aᵀ·b with the shapes of
// MatMulTransAInto and returns dst.
func MatMulTransAAccInto(dst, a, b *Tensor) *Tensor {
	return matMulTransAInto(dst, a, b, true)
}

func matMulTransAInto(dst, a, b *Tensor, acc bool) *Tensor {
	checkRank2("MatMulTransAInto", a, b)
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	checkDst("MatMulTransAInto", dst, m, n)
	GemmTN(dst.Data, a.Data, b.Data, m, k, n, acc)
	return dst
}

// MatMulTransB computes a·bᵀ where a is m×k and b is n×k, yielding m×n.
func MatMulTransB(a, b *Tensor) *Tensor {
	checkRank2("MatMulTransB", a, b)
	out := New(a.Shape[0], b.Shape[0])
	return MatMulTransBInto(out, a, b)
}

// MatMulTransBInto computes dst = a·bᵀ where a is m×k, b is n×k and dst is
// a preallocated m×n tensor, and returns dst.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	return matMulTransBInto(dst, a, b, false)
}

// MatMulTransBAccInto computes dst += a·bᵀ with the shapes of
// MatMulTransBInto and returns dst.
func MatMulTransBAccInto(dst, a, b *Tensor) *Tensor {
	return matMulTransBInto(dst, a, b, true)
}

func matMulTransBInto(dst, a, b *Tensor, acc bool) *Tensor {
	checkRank2("MatMulTransBInto", a, b)
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	checkDst("MatMulTransBInto", dst, m, n)
	GemmNT(dst.Data, a.Data, b.Data, m, k, n, acc)
	return dst
}

func checkRaw(op string, c, a, b []float64, am, an, bm, bn, m, n int) {
	if len(a) < am*an || len(b) < bm*bn || len(c) < m*n {
		panic(fmt.Sprintf("tensor: %s slice lengths %d/%d/%d too short for %dx%d · %dx%d",
			op, len(a), len(b), len(c), am, an, bm, bn))
	}
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("tensor: %s empty output %dx%d", op, m, n))
	}
}

// GemmNN computes the row-major product C (m×n) = A (m×k) · B (k×n) over
// raw slices, accumulating onto C's existing values when acc is set. The
// raw Gemm entry points are the header-free core used by the neural-network
// layers; the MatMul* wrappers add tensor shape checking on top.
func GemmNN(c, a, b []float64, m, k, n int, acc bool) {
	checkRaw("GemmNN", c, a, b, m, k, k, n, m, n)
	if simdWorthIt(m, k, n) {
		gemmSIMD(c, a, b, m, k, n, false, false, acc)
		return
	}
	if ChunkCount(rowTiles(m), tileGrain(k, n)) <= 1 {
		gemmNN(c, a, b, k, n, 0, m, acc) // no closure on the serial path
		return
	}
	ParallelFor(rowTiles(m), tileGrain(k, n), func(lo, hi int) {
		gemmNN(c, a, b, k, n, lo*4, min(hi*4, m), acc)
	})
}

// GemmTN computes C (m×n) = Aᵀ·B for row-major A (k×m) and B (k×n) over
// raw slices, accumulating onto C when acc is set.
func GemmTN(c, a, b []float64, m, k, n int, acc bool) {
	checkRaw("GemmTN", c, a, b, k, m, k, n, m, n)
	if simdWorthIt(m, k, n) {
		gemmSIMD(c, a, b, m, k, n, true, false, acc)
		return
	}
	if ChunkCount(rowTiles(m), tileGrain(k, n)) <= 1 {
		gemmTN(c, a, b, k, m, n, 0, m, acc)
		return
	}
	ParallelFor(rowTiles(m), tileGrain(k, n), func(lo, hi int) {
		gemmTN(c, a, b, k, m, n, lo*4, min(hi*4, m), acc)
	})
}

// GemmNT computes C (m×n) = A·Bᵀ for row-major A (m×k) and B (n×k) over
// raw slices, accumulating onto C when acc is set.
func GemmNT(c, a, b []float64, m, k, n int, acc bool) {
	checkRaw("GemmNT", c, a, b, m, k, n, k, m, n)
	if simdWorthIt(m, k, n) {
		gemmSIMD(c, a, b, m, k, n, false, true, acc)
		return
	}
	if ChunkCount(rowTiles(m), tileGrain(k, n)) <= 1 {
		gemmNT(c, a, b, k, n, 0, m, acc)
		return
	}
	ParallelFor(rowTiles(m), tileGrain(k, n), func(lo, hi int) {
		gemmNT(c, a, b, k, n, lo*4, min(hi*4, m), acc)
	})
}

// gemmNN computes rows [i0, i1) of C = A·B (or C += A·B when acc is set)
// for row-major A (lda = k), B (ldb = n), C (ldc = n).
func gemmNN(c, a, b []float64, k, n, i0, i1 int, acc bool) {
	n4 := n &^ 3
	for i := i0; i < i1; i += 4 {
		if i+4 <= i1 {
			a0 := a[i*k : i*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k]
			c0 := c[i*n : i*n+n]
			c1 := c[(i+1)*n : (i+1)*n+n]
			c2 := c[(i+2)*n : (i+2)*n+n]
			c3 := c[(i+3)*n : (i+3)*n+n]
			for j := 0; j < n4; j += 4 {
				var s00, s01, s02, s03 float64
				var s10, s11, s12, s13 float64
				var s20, s21, s22, s23 float64
				var s30, s31, s32, s33 float64
				if acc {
					s00, s01, s02, s03 = c0[j], c0[j+1], c0[j+2], c0[j+3]
					s10, s11, s12, s13 = c1[j], c1[j+1], c1[j+2], c1[j+3]
					s20, s21, s22, s23 = c2[j], c2[j+1], c2[j+2], c2[j+3]
					s30, s31, s32, s33 = c3[j], c3[j+1], c3[j+2], c3[j+3]
				}
				for p := 0; p < k; p++ {
					bp := b[p*n+j : p*n+j+4]
					b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
					av := a0[p]
					s00 += av * b0
					s01 += av * b1
					s02 += av * b2
					s03 += av * b3
					av = a1[p]
					s10 += av * b0
					s11 += av * b1
					s12 += av * b2
					s13 += av * b3
					av = a2[p]
					s20 += av * b0
					s21 += av * b1
					s22 += av * b2
					s23 += av * b3
					av = a3[p]
					s30 += av * b0
					s31 += av * b1
					s32 += av * b2
					s33 += av * b3
				}
				c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
				c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
				c2[j], c2[j+1], c2[j+2], c2[j+3] = s20, s21, s22, s23
				c3[j], c3[j+1], c3[j+2], c3[j+3] = s30, s31, s32, s33
			}
			for j := n4; j < n; j++ {
				var s0, s1, s2, s3 float64
				if acc {
					s0, s1, s2, s3 = c0[j], c1[j], c2[j], c3[j]
				}
				for p := 0; p < k; p++ {
					bv := b[p*n+j]
					s0 += a0[p] * bv
					s1 += a1[p] * bv
					s2 += a2[p] * bv
					s3 += a3[p] * bv
				}
				c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
			}
			continue
		}
		for ; i < i1; i++ {
			ar := a[i*k : i*k+k]
			cr := c[i*n : i*n+n]
			for j := 0; j < n4; j += 4 {
				var s0, s1, s2, s3 float64
				if acc {
					s0, s1, s2, s3 = cr[j], cr[j+1], cr[j+2], cr[j+3]
				}
				for p := 0; p < k; p++ {
					bp := b[p*n+j : p*n+j+4]
					av := ar[p]
					s0 += av * bp[0]
					s1 += av * bp[1]
					s2 += av * bp[2]
					s3 += av * bp[3]
				}
				cr[j], cr[j+1], cr[j+2], cr[j+3] = s0, s1, s2, s3
			}
			for j := n4; j < n; j++ {
				var s float64
				if acc {
					s = cr[j]
				}
				for p := 0; p < k; p++ {
					s += ar[p] * b[p*n+j]
				}
				cr[j] = s
			}
		}
	}
}

// gemmTN computes rows [i0, i1) of C = Aᵀ·B (or C += Aᵀ·B when acc is set)
// for row-major A (k×m), B (k×n), C (m×n).
func gemmTN(c, a, b []float64, k, m, n, i0, i1 int, acc bool) {
	n4 := n &^ 3
	for i := i0; i < i1; i += 4 {
		if i+4 <= i1 {
			c0 := c[i*n : i*n+n]
			c1 := c[(i+1)*n : (i+1)*n+n]
			c2 := c[(i+2)*n : (i+2)*n+n]
			c3 := c[(i+3)*n : (i+3)*n+n]
			for j := 0; j < n4; j += 4 {
				var s00, s01, s02, s03 float64
				var s10, s11, s12, s13 float64
				var s20, s21, s22, s23 float64
				var s30, s31, s32, s33 float64
				if acc {
					s00, s01, s02, s03 = c0[j], c0[j+1], c0[j+2], c0[j+3]
					s10, s11, s12, s13 = c1[j], c1[j+1], c1[j+2], c1[j+3]
					s20, s21, s22, s23 = c2[j], c2[j+1], c2[j+2], c2[j+3]
					s30, s31, s32, s33 = c3[j], c3[j+1], c3[j+2], c3[j+3]
				}
				for p := 0; p < k; p++ {
					ap := a[p*m+i : p*m+i+4]
					bp := b[p*n+j : p*n+j+4]
					b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
					av := ap[0]
					s00 += av * b0
					s01 += av * b1
					s02 += av * b2
					s03 += av * b3
					av = ap[1]
					s10 += av * b0
					s11 += av * b1
					s12 += av * b2
					s13 += av * b3
					av = ap[2]
					s20 += av * b0
					s21 += av * b1
					s22 += av * b2
					s23 += av * b3
					av = ap[3]
					s30 += av * b0
					s31 += av * b1
					s32 += av * b2
					s33 += av * b3
				}
				c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
				c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
				c2[j], c2[j+1], c2[j+2], c2[j+3] = s20, s21, s22, s23
				c3[j], c3[j+1], c3[j+2], c3[j+3] = s30, s31, s32, s33
			}
			for j := n4; j < n; j++ {
				var s0, s1, s2, s3 float64
				if acc {
					s0, s1, s2, s3 = c0[j], c1[j], c2[j], c3[j]
				}
				for p := 0; p < k; p++ {
					ap := a[p*m+i : p*m+i+4]
					bv := b[p*n+j]
					s0 += ap[0] * bv
					s1 += ap[1] * bv
					s2 += ap[2] * bv
					s3 += ap[3] * bv
				}
				c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
			}
			continue
		}
		for ; i < i1; i++ {
			cr := c[i*n : i*n+n]
			for j := 0; j < n4; j += 4 {
				var s0, s1, s2, s3 float64
				if acc {
					s0, s1, s2, s3 = cr[j], cr[j+1], cr[j+2], cr[j+3]
				}
				for p := 0; p < k; p++ {
					av := a[p*m+i]
					bp := b[p*n+j : p*n+j+4]
					s0 += av * bp[0]
					s1 += av * bp[1]
					s2 += av * bp[2]
					s3 += av * bp[3]
				}
				cr[j], cr[j+1], cr[j+2], cr[j+3] = s0, s1, s2, s3
			}
			for j := n4; j < n; j++ {
				var s float64
				if acc {
					s = cr[j]
				}
				for p := 0; p < k; p++ {
					s += a[p*m+i] * b[p*n+j]
				}
				cr[j] = s
			}
		}
	}
}

// gemmNT computes rows [i0, i1) of C = A·Bᵀ (or C += A·Bᵀ when acc is set)
// for row-major A (m×k), B (n×k), C (m×n): every output element is the dot
// product of two contiguous rows.
func gemmNT(c, a, b []float64, k, n, i0, i1 int, acc bool) {
	n4 := n &^ 3
	for i := i0; i < i1; i += 4 {
		if i+4 <= i1 {
			a0 := a[i*k : i*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k]
			c0 := c[i*n : i*n+n]
			c1 := c[(i+1)*n : (i+1)*n+n]
			c2 := c[(i+2)*n : (i+2)*n+n]
			c3 := c[(i+3)*n : (i+3)*n+n]
			for j := 0; j < n4; j += 4 {
				b0 := b[j*k : j*k+k]
				b1 := b[(j+1)*k : (j+1)*k+k]
				b2 := b[(j+2)*k : (j+2)*k+k]
				b3 := b[(j+3)*k : (j+3)*k+k]
				var s00, s01, s02, s03 float64
				var s10, s11, s12, s13 float64
				var s20, s21, s22, s23 float64
				var s30, s31, s32, s33 float64
				if acc {
					s00, s01, s02, s03 = c0[j], c0[j+1], c0[j+2], c0[j+3]
					s10, s11, s12, s13 = c1[j], c1[j+1], c1[j+2], c1[j+3]
					s20, s21, s22, s23 = c2[j], c2[j+1], c2[j+2], c2[j+3]
					s30, s31, s32, s33 = c3[j], c3[j+1], c3[j+2], c3[j+3]
				}
				for p := 0; p < k; p++ {
					bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
					av := a0[p]
					s00 += av * bv0
					s01 += av * bv1
					s02 += av * bv2
					s03 += av * bv3
					av = a1[p]
					s10 += av * bv0
					s11 += av * bv1
					s12 += av * bv2
					s13 += av * bv3
					av = a2[p]
					s20 += av * bv0
					s21 += av * bv1
					s22 += av * bv2
					s23 += av * bv3
					av = a3[p]
					s30 += av * bv0
					s31 += av * bv1
					s32 += av * bv2
					s33 += av * bv3
				}
				c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
				c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
				c2[j], c2[j+1], c2[j+2], c2[j+3] = s20, s21, s22, s23
				c3[j], c3[j+1], c3[j+2], c3[j+3] = s30, s31, s32, s33
			}
			for j := n4; j < n; j++ {
				bj := b[j*k : j*k+k]
				var s0, s1, s2, s3 float64
				if acc {
					s0, s1, s2, s3 = c0[j], c1[j], c2[j], c3[j]
				}
				for p := 0; p < k; p++ {
					bv := bj[p]
					s0 += a0[p] * bv
					s1 += a1[p] * bv
					s2 += a2[p] * bv
					s3 += a3[p] * bv
				}
				c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
			}
			continue
		}
		for ; i < i1; i++ {
			ar := a[i*k : i*k+k]
			cr := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				bj := b[j*k : j*k+k]
				var s float64
				if acc {
					s = cr[j]
				}
				for p := 0; p < k; p++ {
					s += ar[p] * bj[p]
				}
				cr[j] = s
			}
		}
	}
}
