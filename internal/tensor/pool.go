package tensor

// Pool is a grow-only scratch arena for the tensors a forward/backward pass
// allocates and immediately discards: activations, im2col buffers, gradient
// temporaries. Get and GetTensor hand out zeroed storage carved from large
// reusable slabs; Reset recycles everything at once. After the first pass
// has sized the slabs, a training step that allocates the same sequence of
// scratch tensors performs zero heap allocation.
//
// Ownership rules:
//
//   - A Pool is owned by a single goroutine; it is not safe for concurrent
//     use. Concurrent workers (training clients, evaluators, defense
//     scorers) each own their own Pool.
//   - Storage returned by Get/GetTensor is valid only until the next Reset.
//     Nothing that outlives a training step — parameters, gradients,
//     optimizer state, returned weight vectors — may live in a Pool.
//   - A nil *Pool is valid and falls back to plain heap allocation, so
//     pool-aware code needs no branching at call sites.
type Pool struct {
	slabs   [][]float64
	cur     int // slab currently being carved
	off     int // carve offset into slabs[cur]
	fresh   int // slabs[fresh:] were allocated this cycle and are still zero
	hdrs    []Tensor
	hdrOff  int
	dims    []int
	dimsOff int
}

// minSlab is the minimum slab size in float64s (128 KiB).
const minSlab = 1 << 14

// NewPool returns an empty scratch arena.
func NewPool() *Pool { return &Pool{} }

// Reset recycles every slab, header and shape handed out since the previous
// Reset. All previously returned storage becomes invalid.
func (p *Pool) Reset() {
	if p == nil {
		return
	}
	p.cur, p.off = 0, 0
	p.fresh = len(p.slabs)
	p.hdrOff = 0
	p.dimsOff = 0
}

// Get returns a zeroed []float64 of length n, valid until the next Reset.
// On a nil Pool it simply allocates.
func (p *Pool) Get(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	for p.cur < len(p.slabs) {
		s := p.slabs[p.cur]
		if len(s)-p.off >= n {
			out := s[p.off : p.off+n : p.off+n]
			p.off += n
			if p.cur < p.fresh {
				clear(out)
			}
			return out
		}
		p.cur++
		p.off = 0
	}
	size := n
	if size < minSlab {
		size = minSlab
	}
	s := make([]float64, size)
	p.slabs = append(p.slabs, s)
	p.cur = len(p.slabs) - 1
	p.off = n
	return s[:n:n]
}

// GetTensor returns a zeroed tensor of the given shape whose storage,
// header and shape slice all live in the arena, valid until the next Reset.
func (p *Pool) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic("tensor: Pool.GetTensor invalid shape")
		}
		n *= s
	}
	if p == nil {
		// Construct inline (rather than via New) so the varargs slice does
		// not escape at pooled call sites.
		t := &Tensor{Shape: make([]int, len(shape)), Data: make([]float64, n)}
		copy(t.Shape, shape)
		return t
	}
	t := p.header()
	t.Shape = p.shape(len(shape))
	copy(t.Shape, shape)
	t.Data = p.Get(n)
	return t
}

// GetView returns a tensor header of the given shape over existing storage
// (no copy). On a pooled header the view is valid until the next Reset; on
// a nil Pool it allocates a plain header.
func (p *Pool) GetView(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic("tensor: Pool.GetView shape does not match data length")
	}
	if p == nil {
		t := &Tensor{Shape: make([]int, len(shape)), Data: data}
		copy(t.Shape, shape)
		return t
	}
	t := p.header()
	t.Shape = p.shape(len(shape))
	copy(t.Shape, shape)
	t.Data = data
	return t
}

// header carves a Tensor header from the header arena. Slabs of headers are
// never reallocated, so previously returned pointers stay valid for the
// whole cycle even as the arena grows.
func (p *Pool) header() *Tensor {
	const hdrSlab = 64
	if p.hdrOff == len(p.hdrs) {
		if cap(p.hdrs) == len(p.hdrs) {
			// Replace, don't grow in place: old headers keep pointing into
			// the old backing array, which stays alive until Reset.
			old := p.hdrs
			p.hdrs = make([]Tensor, 0, len(old)*2+hdrSlab)
			p.hdrOff = 0
		}
		p.hdrs = p.hdrs[:p.hdrOff+1]
	}
	t := &p.hdrs[p.hdrOff]
	p.hdrOff++
	t.Shape, t.Data = nil, nil
	return t
}

func (p *Pool) shape(n int) []int {
	if p.dimsOff+n > len(p.dims) {
		if p.dimsOff+n > cap(p.dims) {
			old := p.dims
			p.dims = make([]int, 0, len(old)*2+256)
			p.dimsOff = 0
		}
		p.dims = p.dims[:p.dimsOff+n]
	}
	out := p.dims[p.dimsOff : p.dimsOff+n : p.dimsOff+n]
	p.dimsOff += n
	return out
}
