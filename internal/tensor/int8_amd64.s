//go:build amd64 && !purego

#include "textflag.h"

// func avxInt8BlockDots(a, b *int8, blocks int, out *int64)
//
// One 256-element block per outer iteration: 16 inner steps each load 16
// int8 lanes from a and b, sign-extend to int16 (VPMOVSXBW), multiply and
// pair-sum into 8 int32 lanes (VPMADDWD), and accumulate (VPADDD). Lane
// magnitude is bounded by 16 pair-sums of 2*127^2 < 2^19, so the int32
// accumulator cannot overflow. The block reduction widens the 8 int32 lanes
// to int64 before the final adds, keeping the sum exact.
TEXT ·avxInt8BlockDots(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ blocks+16(FP), CX
	MOVQ out+24(FP), DX

	TESTQ CX, CX
	JZ    i8done

i8block:
	VPXOR Y0, Y0, Y0
	MOVQ  $16, AX

i8inner:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD  Y2, Y1, Y3
	VPADDD    Y3, Y0, Y0
	ADDQ      $16, SI
	ADDQ      $16, DI
	DECQ      AX
	JNZ       i8inner

	// Reduce 8 int32 lanes to one exact int64.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0   // 4 int32 partials
	VPMOVSXDQ    X0, Y2       // widen to 4 int64
	VEXTRACTI128 $1, Y2, X3
	VPADDQ       X3, X2, X2   // 2 int64 partials
	VPSHUFD      $0xEE, X2, X4
	VPADDQ       X4, X2, X2
	MOVQ         X2, BX
	MOVQ         BX, (DX)
	ADDQ         $8, DX

	DECQ CX
	JNZ  i8block

i8done:
	VZEROUPPER
	RET
