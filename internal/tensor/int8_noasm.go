//go:build !amd64 || purego

package tensor

// avxInt8BlockDots is unreachable on this build: simdOn is constant false,
// so Int8BlockDots always takes the scalar path.
func avxInt8BlockDots(a, b *int8, blocks int, out *int64) {
	panic("tensor: avxInt8BlockDots unavailable without AVX2")
}
