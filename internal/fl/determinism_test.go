package fl

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// runTiny executes one tiny simulation under the given parallelism settings
// and returns the Result.
func runTiny(t *testing.T, parallel bool, workers int) *Result {
	t.Helper()
	tensor.SetWorkers(workers)
	train, test, shards, newModel := tinySetup(t, 7)
	cfg := tinyConfig()
	cfg.Parallel = parallel
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{reportSelection: true}, zeroAttack{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelDeterminism locks in the guarantee the parallel compute core
// is built around: an identical Config with Parallel on or off — at any
// worker-pool width — produces a bit-identical Result (accuracy timeline,
// DPR counters). Parallelism must never change the science.
func TestParallelDeterminism(t *testing.T) {
	defer tensor.SetWorkers(0)
	ref := runTiny(t, false, 1)
	if math.IsNaN(ref.FinalAccuracy) {
		t.Fatal("reference run produced no evaluation")
	}
	for _, tc := range []struct {
		name     string
		parallel bool
		workers  int
	}{
		{"parallel-2", true, 2},
		{"parallel-4", true, 4},
		{"parallel-16", true, 16},
		{"serial-wide-pool", false, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runTiny(t, tc.parallel, tc.workers)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("result differs from serial reference:\n got: %+v\nwant: %+v", got, ref)
			}
		})
	}
}
