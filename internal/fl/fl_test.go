package fl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
)

func tinySetup(t *testing.T, seed int64) (*dataset.Dataset, *dataset.Dataset, [][]int, func(*rand.Rand) *nn.Network) {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, seed)
	rng := rand.New(rand.NewSource(seed))
	shards := dataset.PartitionIID(rng, train.Len(), 12)
	newModel := func(r *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(r, spec.Channels, spec.Size, spec.Classes)
	}
	return train, test, shards, newModel
}

func tinyConfig() Config {
	return Config{
		TotalClients: 12,
		PerRound:     4,
		AttackerFrac: 0.25,
		Rounds:       6,
		LocalEpochs:  1,
		BatchSize:    8,
		LR:           0.05,
		Seed:         1,
		EvalEvery:    1,
	}
}

// meanAggregator is a minimal test double implementing Aggregator with
// selection reporting.
type meanAggregator struct{ reportSelection bool }

func (meanAggregator) Name() string { return "mean" }

func (m meanAggregator) Aggregate(_ []float64, updates []Update) ([]float64, Selection, error) {
	out := make([]float64, len(updates[0].Weights))
	for _, u := range updates {
		for i, w := range u.Weights {
			out[i] += w
		}
	}
	for i := range out {
		out[i] /= float64(len(updates))
	}
	if !m.reportSelection {
		return out, Selection{}, nil
	}
	return out, SelectAll(len(updates)), nil
}

// zeroAttack submits all-zero weight vectors (maximally destructive under
// plain averaging, trivially detectable by robust rules).
type zeroAttack struct{}

func (zeroAttack) Name() string { return "zero" }

func (zeroAttack) Craft(ctx *AttackContext) ([][]float64, error) {
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		out[i] = make([]float64, len(ctx.Global))
	}
	return out, nil
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.TotalClients = 0 },
		func(c *Config) { c.PerRound = 0 },
		func(c *Config) { c.PerRound = 99 },
		func(c *Config) { c.AttackerFrac = 0.7 },
		func(c *Config) { c.AttackerFrac = -0.1 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.LocalEpochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.EvalEvery = 0 },
	}
	for i, mutate := range bad {
		cfg := tinyConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestNewSimulationErrors(t *testing.T) {
	train, test, shards, newModel := tinySetup(t, 3)
	cfg := tinyConfig()
	if _, err := NewSimulation(cfg, train, test, shards[:3], newModel, meanAggregator{}, nil); err == nil {
		t.Fatal("expected error for shard count mismatch")
	}
	if _, err := NewSimulation(cfg, train, test, shards, newModel, nil, nil); err == nil {
		t.Fatal("expected error for nil aggregator")
	}
	badCfg := cfg
	badCfg.Rounds = 0
	if _, err := NewSimulation(badCfg, train, test, shards, newModel, meanAggregator{}, nil); err == nil {
		t.Fatal("expected error for invalid config")
	}
}

func TestCleanRunLearns(t *testing.T) {
	train, test, shards, newModel := tinySetup(t, 3)
	cfg := tinyConfig()
	cfg.Rounds = 10
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sim.NumAttackers() != 0 {
		t.Fatalf("clean run has %d attackers, want 0", sim.NumAttackers())
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAccuracy < 0.5 {
		t.Fatalf("clean federation should learn: max accuracy %.3f", res.MaxAccuracy)
	}
	if len(res.Rounds) != 10 {
		t.Fatalf("got %d round stats, want 10", len(res.Rounds))
	}
	if res.DPRKnown {
		t.Fatal("no-selection aggregator should leave DPRKnown false")
	}
	if !math.IsNaN(res.DPR()) {
		t.Fatal("DPR should be NaN without selection reporting")
	}
}

func TestAttackDegradesUndefendedRun(t *testing.T) {
	train, test, shards, newModel := tinySetup(t, 4)
	cfg := tinyConfig()
	cfg.Rounds = 10

	clean, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}

	attacked, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, zeroAttack{})
	if err != nil {
		t.Fatal(err)
	}
	if attacked.NumAttackers() != 3 {
		t.Fatalf("attackers = %d, want 3 (25%% of 12)", attacked.NumAttackers())
	}
	attackedRes, err := attacked.Run()
	if err != nil {
		t.Fatal(err)
	}
	if attackedRes.MaxAccuracy >= cleanRes.MaxAccuracy {
		t.Fatalf("zero attack under plain averaging should reduce accuracy: clean %.3f, attacked %.3f",
			cleanRes.MaxAccuracy, attackedRes.MaxAccuracy)
	}
	if attackedRes.MaliciousSubmitted == 0 {
		t.Fatal("no malicious updates recorded")
	}
}

func TestDPRAccounting(t *testing.T) {
	train, test, shards, newModel := tinySetup(t, 5)
	cfg := tinyConfig()
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{reportSelection: true}, zeroAttack{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.DPRKnown {
		t.Fatal("selection-reporting aggregator should set DPRKnown")
	}
	// The test aggregator selects everything, so DPR must be exactly 100%.
	if res.MaliciousSubmitted > 0 && res.DPR() != 100 {
		t.Fatalf("DPR = %v, want 100", res.DPR())
	}
	for _, rs := range res.Rounds {
		if rs.PassedMalicious != rs.SelectedMalicious {
			t.Fatalf("round %d: passed %d != selected %d under select-all aggregator",
				rs.Round, rs.PassedMalicious, rs.SelectedMalicious)
		}
	}
}

func TestDeterminismAndParallelEquivalence(t *testing.T) {
	run := func(parallel bool) *Result {
		train, test, shards, newModel := tinySetup(t, 6)
		cfg := tinyConfig()
		cfg.Parallel = parallel
		sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, zeroAttack{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(false)
	b := run(false)
	c := run(true)
	if a.MaxAccuracy != b.MaxAccuracy || a.FinalAccuracy != b.FinalAccuracy {
		t.Fatal("same seed should reproduce identical results")
	}
	// Client work is independent, so parallel scheduling must not change
	// the outcome either.
	if a.MaxAccuracy != c.MaxAccuracy || a.FinalAccuracy != c.FinalAccuracy {
		t.Fatal("parallel execution changed the result")
	}
}

func TestASRFormula(t *testing.T) {
	if got := ASR(80, 40); got != 50 {
		t.Fatalf("ASR(80,40) = %v, want 50", got)
	}
	if got := ASR(50, 50); got != 0 {
		t.Fatalf("ASR(50,50) = %v, want 0", got)
	}
	if got := ASR(0, 10); got != 0 {
		t.Fatalf("ASR with zero clean accuracy = %v, want 0", got)
	}
	// Negative ASR is possible when the attacked run beats the baseline.
	if got := ASR(50, 55); got != -10 {
		t.Fatalf("ASR(50,55) = %v, want -10", got)
	}
}

func TestEvaluateBounds(t *testing.T) {
	_, test, _, newModel := tinySetup(t, 7)
	model := newModel(rand.New(rand.NewSource(1)))
	accSeq := Evaluate(model, test, 0, false)
	accPar := Evaluate(model, test, 0, true)
	if accSeq < 0 || accSeq > 1 {
		t.Fatalf("accuracy %v out of range", accSeq)
	}
	if accSeq != accPar {
		t.Fatalf("parallel evaluation %v != sequential %v", accPar, accSeq)
	}
	accLim := Evaluate(model, test, 10, false)
	if accLim < 0 || accLim > 1 {
		t.Fatalf("limited accuracy %v out of range", accLim)
	}
	if got := Evaluate(model, test.Subset(nil), 0, false); got != 0 {
		t.Fatalf("empty dataset accuracy = %v, want 0", got)
	}
}

func TestBenignClientTrains(t *testing.T) {
	train, _, shards, newModel := tinySetup(t, 8)
	rng := rand.New(rand.NewSource(2))
	model := newModel(rng)
	global := model.WeightVector()
	c := NewBenignClient(0, train, shards[0], model, 0.05, 1, 8, rng)
	if c.ID() != 0 {
		t.Fatalf("ID = %d", c.ID())
	}
	if c.NumSamples() != len(shards[0]) {
		t.Fatalf("NumSamples = %d, want %d", c.NumSamples(), len(shards[0]))
	}
	u, err := c.Train(global)
	if err != nil {
		t.Fatal(err)
	}
	if u.Malicious {
		t.Fatal("benign update flagged malicious")
	}
	changed := false
	for i := range u.Weights {
		if u.Weights[i] != global[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("training produced identical weights")
	}
	// Wrong-length global must error.
	if _, err := c.Train(global[:10]); err == nil {
		t.Fatal("expected error for truncated global vector")
	}
}
