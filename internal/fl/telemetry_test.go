package fl

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// runTinyTelemetry executes one tiny simulation (lossy codec on, so the
// encode phase and wire-size accounting run) with the given telemetry.
func runTinyTelemetry(t *testing.T, tel *telemetry.EngineTelemetry) *Result {
	t.Helper()
	tensor.SetWorkers(1)
	train, test, shards, newModel := tinySetup(t, 7)
	cfg := tinyConfig()
	cfg.Codec = codec.Spec{Quant: codec.Int8, TopK: 0.25, EF: true}
	cfg.Telemetry = tel
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{reportSelection: true}, zeroAttack{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTelemetryOnOffBitIdentical locks in the telemetry discipline on the
// in-process transport: a fixed-seed run with full telemetry (metrics,
// tracer, defense distance hook) is bit-identical to the same run with
// telemetry nil. Observation must never touch the RNG streams, the update
// set or the summation order.
func TestTelemetryOnOffBitIdentical(t *testing.T) {
	defer tensor.SetWorkers(0)
	off := runTinyTelemetry(t, nil)
	if math.IsNaN(off.FinalAccuracy) {
		t.Fatal("reference run produced no evaluation")
	}

	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(0)
	telemetry.SetDistanceHook(reg, tr)
	defer telemetry.ClearDistanceHook()
	on := runTinyTelemetry(t, telemetry.NewEngineTelemetry(reg, tr, ""))

	if !reflect.DeepEqual(on, off) {
		t.Fatalf("telemetry changed the result:\n got: %+v\nwant: %+v", on, off)
	}

	// The instrumented run must actually have recorded: rounds counted,
	// spans buffered, bytes attributed to the codec frames it encoded.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fl_rounds_total 6",
		`fl_phase_seconds_count{phase="aggregate"} 6`,
		"fl_codec_frames_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in metrics:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fl_codec_bytes_in_total 0\n") {
		t.Errorf("codec bytes not accounted:\n%s", out)
	}
	if tr.Len() == 0 {
		t.Error("tracer buffered no spans")
	}
}

// staticTransport returns the same preallocated updates every round, so the
// allocation test measures the engine loop itself rather than training.
type staticTransport struct{ updates []Update }

func (s staticTransport) Collect(_ int, ids []int, _, _ []float64) ([]Update, error) {
	return s.updates[:len(ids)], nil
}

// reuseAggregator aggregates into a caller-owned buffer (no per-round
// allocation of its own).
type reuseAggregator struct{ out []float64 }

func (reuseAggregator) Name() string { return "reuse" }

func (a reuseAggregator) Aggregate(_ []float64, updates []Update) ([]float64, Selection, error) {
	for i := range a.out {
		a.out[i] = 0
	}
	for _, u := range updates {
		for i, w := range u.Weights {
			a.out[i] += w
		}
	}
	for i := range a.out {
		a.out[i] /= float64(len(updates))
	}
	return a.out, Selection{}, nil
}

// allocEngine builds a minimal engine over static stubs with the given
// round count and telemetry.
func allocEngine(rounds int, tel *telemetry.EngineTelemetry) (*Engine, []float64) {
	const dim = 32
	updates := make([]Update, 4)
	for i := range updates {
		w := make([]float64, dim)
		for j := range w {
			w[j] = float64(i + j)
		}
		updates[i] = Update{ClientID: i, Weights: w, NumSamples: 1}
	}
	eng := &Engine{
		TotalClients: 8,
		PerRound:     4,
		Rounds:       rounds,
		Seed:         3,
		Transport:    staticTransport{updates},
		Aggregator:   reuseAggregator{out: make([]float64, dim)},
		Telemetry:    tel,
	}
	return eng, make([]float64, dim)
}

// perRoundAllocs measures the marginal heap allocations of one engine round
// (total allocations of a long run minus a short run, per extra round), so
// fixed Run setup costs cancel out.
func perRoundAllocs(t *testing.T, tel *telemetry.EngineTelemetry) float64 {
	t.Helper()
	const short, long = 1, 201
	run := func(rounds int) float64 {
		eng, initial := allocEngine(rounds, tel)
		return testing.AllocsPerRun(10, func() {
			if _, _, err := eng.Run(initial); err != nil {
				t.Fatal(err)
			}
		})
	}
	return (run(long) - run(short)) / float64(long-short)
}

// TestEngineTelemetryDisabledZeroAlloc pins the engine loop's disabled-path
// allocation budget: with Telemetry nil, a warm round performs only the
// engine's own bookkeeping allocations (selection sample, responder list,
// stats append). The bound would break if the instrumentation ever grew an
// allocating disabled path (a defer closure, a formatted span name); the
// companion instrument-layer proof of exactly zero is
// telemetry.TestDisabledTelemetryZeroAlloc.
func TestEngineTelemetryDisabledZeroAlloc(t *testing.T) {
	disabled := perRoundAllocs(t, nil)
	// The uninstrumented engine round allocates: sampler permutation (2),
	// responder append (1), result append amortization (<1). Anything past
	// 6 means the disabled telemetry path started allocating.
	if disabled > 6 {
		t.Errorf("disabled-telemetry round allocates %.2f times, budget 6", disabled)
	}

	reg := telemetry.NewRegistry()
	enabled := perRoundAllocs(t, telemetry.NewEngineTelemetry(reg, nil, ""))
	// Metrics-only telemetry is atomics all the way down: enabling it must
	// not add allocations either.
	if enabled > disabled+0.5 {
		t.Errorf("metrics-only telemetry allocates: %.2f/round enabled vs %.2f/round disabled", enabled, disabled)
	}
}

// BenchmarkEngineRoundTelemetry measures the telemetry overhead on the
// engine's round loop over static stubs — the number BENCH_8.json records.
// The end-to-end overhead on a real training round is far smaller still,
// since client training dominates.
func BenchmarkEngineRoundTelemetry(b *testing.B) {
	bench := func(b *testing.B, tel *telemetry.EngineTelemetry) {
		eng, initial := allocEngine(100, tel)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Run(initial); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { bench(b, nil) })
	b.Run("metrics", func(b *testing.B) {
		bench(b, telemetry.NewEngineTelemetry(telemetry.NewRegistry(), nil, ""))
	})
	b.Run("metrics+trace", func(b *testing.B) {
		bench(b, telemetry.NewEngineTelemetry(telemetry.NewRegistry(), telemetry.NewTracer(0), ""))
	})
}

// BenchmarkSimulationRoundsTelemetry is BenchmarkSimulationRounds with full
// telemetry attached — the realistic overhead measurement (training and
// evaluation dominate; telemetry must stay within the 2% budget).
func BenchmarkSimulationRoundsTelemetry(b *testing.B) {
	sim := benchSetup(b, true)
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(0)
	telemetry.SetDistanceHook(reg, tr)
	defer telemetry.ClearDistanceHook()
	sim.cfg.Telemetry = telemetry.NewEngineTelemetry(reg, tr, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
