package fl

// Engine scenario tests: the pluggable participation axes (samplers, churn,
// server optimizers, async buffering) must be deterministic, correctly
// traced in RoundStats, and must leave the global model untouched on
// zero-responder rounds. Legacy-shape bit-compatibility is covered by
// TestParallelDeterminism.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// runScenario executes one tiny simulation under the given scenario.
func runScenario(t *testing.T, sc Scenario) *Result {
	t.Helper()
	train, test, shards, newModel := tinySetup(t, 7)
	cfg := tinyConfig()
	cfg.Scenario = sc
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{reportSelection: true}, zeroAttack{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestUniformSamplerMatchesLegacyStream pins the bit-compatibility
// guarantee the refactor rests on: the default sampler consumes the
// selection RNG exactly like the pre-engine `selRng.Perm(N)[:K]` loop.
func TestUniformSamplerMatchesLegacyStream(t *testing.T) {
	const seed, total, k, rounds = 3, 17, 5, 8
	legacy := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	engine := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	s := UniformSampler{K: k}
	for r := 0; r < rounds; r++ {
		want := legacy.Perm(total)[:k]
		got := s.Sample(engine, r, total)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: sampler %v, legacy %v", r, got, want)
		}
	}
}

func TestWeightedSamplerShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := WeightedSampler{K: 6, Weights: []float64{100, 0, 1, 1, 50, 3, 0, 2, 8, 4}}
	ids := s.Sample(rng, 0, 10)
	if len(ids) != 6 {
		t.Fatalf("selected %d, want 6", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= 10 {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("id %d selected twice", id)
		}
		seen[id] = true
	}
	// Sampling is without replacement even when all remaining weight is 0.
	zero := WeightedSampler{K: 3, Weights: make([]float64, 5)}
	ids = zero.Sample(rand.New(rand.NewSource(1)), 0, 5)
	if len(ids) != 3 {
		t.Fatalf("zero-weight fallback selected %d, want 3", len(ids))
	}
}

func TestServerOptimizers(t *testing.T) {
	global := []float64{1, 2}
	agg := []float64{3, 0}
	if got := (PlainApply{}).Apply(global, agg); &got[0] != &agg[0] {
		t.Fatal("PlainApply must return the aggregate slice unchanged")
	}
	got := ServerLRApply{Eta: 0.5}.Apply(global, agg)
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("ServerLRApply = %v, want [2 1]", got)
	}
	m := NewFedAvgM(1, 0.5)
	first := m.Apply(global, agg) // v = [2 -2], w = [3 0]
	if first[0] != 3 || first[1] != 0 {
		t.Fatalf("FedAvgM first step = %v, want [3 0]", first)
	}
	second := m.Apply(first, []float64{3, 0}) // pseudo-grad 0, v decays to [1 -1]
	if second[0] != 4 || second[1] != -1 {
		t.Fatalf("FedAvgM must carry momentum: got %v, want [4 -1]", second)
	}
}

// TestChurnScenarioDeterministicTrace runs Bernoulli sampling + churn +
// FedAvgM twice and checks the participation trace is non-trivial,
// internally consistent, and bit-identical across runs.
func TestChurnScenarioDeterministicTrace(t *testing.T) {
	sc := Scenario{
		Sampler:       BernoulliSampler{P: 0.5},
		Participation: RandomChurn{DropoutProb: 0.3, StragglerProb: 0.2},
		ServerOpt:     NewFedAvgM(1, 0.9),
	}
	a := runScenario(t, sc)
	sc.ServerOpt = NewFedAvgM(1, 0.9) // fresh velocity for the second run
	b := runScenario(t, sc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed should reproduce the trace:\n a: %+v\n b: %+v", a, b)
	}
	if math.IsNaN(a.FinalAccuracy) {
		t.Fatal("final accuracy must be evaluated")
	}
	var lost, varied int
	for _, rs := range a.Rounds {
		if rs.Dropped+rs.Straggled > 0 {
			lost++
		}
		if rs.Selected != tinyConfig().PerRound {
			varied++
		}
		if rs.Responded != rs.Selected-rs.Dropped-rs.Straggled {
			t.Fatalf("round %d: responded %d != selected %d - dropped %d - straggled %d",
				rs.Round, rs.Responded, rs.Selected, rs.Dropped, rs.Straggled)
		}
	}
	if lost == 0 {
		t.Fatal("churn model never dropped or straggled a client")
	}
	if varied == 0 {
		t.Fatal("bernoulli sampler never varied the selection size")
	}
}

// TestZeroResponderRoundsLeaveGlobalUnchanged drives every selection into
// dropout: the engine must record the empty rounds and never move the
// global model.
func TestZeroResponderRoundsLeaveGlobalUnchanged(t *testing.T) {
	train, test, shards, newModel := tinySetup(t, 7)
	cfg := tinyConfig()
	cfg.Scenario = Scenario{Participation: RandomChurn{DropoutProb: 1}}
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := sim.GlobalWeights()
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	after := sim.GlobalWeights()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("zero-responder rounds must not move the global model")
	}
	if len(res.Rounds) != cfg.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(res.Rounds), cfg.Rounds)
	}
	for _, rs := range res.Rounds {
		if rs.Responded != 0 || rs.Aggregations != 0 {
			t.Fatalf("round %d: responded %d aggregations %d, want 0/0", rs.Round, rs.Responded, rs.Aggregations)
		}
		if rs.Dropped != rs.Selected {
			t.Fatalf("round %d: dropped %d != selected %d", rs.Round, rs.Dropped, rs.Selected)
		}
	}
	if math.IsNaN(res.FinalAccuracy) {
		t.Fatal("empty rounds are still evaluated")
	}
}

// TestAsyncBufferedAggregation checks the FedBuff-style mode: updates
// arrive with simulated delays, aggregations fire on buffer fills (plus the
// final partial flush), the DPR accounting still works, and the run is
// deterministic.
func TestAsyncBufferedAggregation(t *testing.T) {
	sc := Scenario{Async: &AsyncConfig{Buffer: 6, MaxDelay: 2}}
	a := runScenario(t, sc)
	b := runScenario(t, sc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("async mode must be deterministic under a fixed seed")
	}
	if math.IsNaN(a.FinalAccuracy) {
		t.Fatal("final accuracy must be evaluated")
	}
	totalAggs, totalResponded := 0, 0
	for _, rs := range a.Rounds {
		totalAggs += rs.Aggregations
		totalResponded += rs.Responded
	}
	if totalAggs == 0 {
		t.Fatal("async run never aggregated")
	}
	// Every dispatched update is delivered by the horizon clamp, so the
	// flush count must cover all responders: full buffers plus one final
	// partial flush at most.
	minAggs := totalResponded / 6
	if rem := totalResponded % 6; rem > 0 {
		minAggs++
	}
	if totalAggs != minAggs {
		t.Fatalf("aggregations %d, want %d for %d responders with buffer 6", totalAggs, minAggs, totalResponded)
	}
	if !a.DPRKnown || a.MaliciousSubmitted == 0 {
		t.Fatal("async mode must keep the DPR accounting")
	}
	if a.DPR() != 100 {
		t.Fatalf("select-all aggregator DPR = %v, want 100", a.DPR())
	}
}

// TestAsyncLearns sanity-checks that staleness discounting still lets a
// clean async federation learn.
func TestAsyncLearns(t *testing.T) {
	train, test, shards, newModel := tinySetup(t, 3)
	cfg := tinyConfig()
	cfg.Rounds = 10
	cfg.Scenario = Scenario{Async: &AsyncConfig{Buffer: 4, MaxDelay: 1}}
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAccuracy < 0.5 {
		t.Fatalf("async clean federation should learn: max accuracy %.3f", res.MaxAccuracy)
	}
}

// TestAsyncResumeRejected pins the engine's guard: async in-flight state is
// not checkpointable, so resuming mid-run must fail loudly.
func TestAsyncResumeRejected(t *testing.T) {
	eng := &Engine{
		TotalClients: 4,
		PerRound:     2,
		Rounds:       3,
		StartRound:   1,
		Scenario:     Scenario{Async: &AsyncConfig{Buffer: 2}},
		Transport:    transportFunc(func(int, []int, []float64, []float64) ([]Update, error) { return nil, nil }),
		Aggregator:   meanAggregator{},
	}
	if _, _, err := eng.Run([]float64{0}); err == nil {
		t.Fatal("async resume must be rejected")
	}
}

// transportFunc adapts a function to the Transport interface.
type transportFunc func(round int, ids []int, global, prev []float64) ([]Update, error)

func (f transportFunc) Collect(round int, ids []int, global, prev []float64) ([]Update, error) {
	return f(round, ids, global, prev)
}

func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{Sampler: UniformSampler{K: 0}},
		{Sampler: BernoulliSampler{P: 0}},
		{Sampler: BernoulliSampler{P: 1.5}},
		{Sampler: WeightedSampler{K: 0}},
		{Sampler: WeightedSampler{K: 2, Weights: []float64{1, -1}}},
		{Participation: RandomChurn{DropoutProb: -0.1}},
		{Participation: RandomChurn{DropoutProb: 0.7, StragglerProb: 0.7}},
		{ServerOpt: ServerLRApply{Eta: 0}},
		{ServerOpt: NewFedAvgM(0, 0.9)},
		{ServerOpt: NewFedAvgM(1, 1)},
		{Async: &AsyncConfig{Buffer: 0}},
		{Async: &AsyncConfig{Buffer: 2, MaxDelay: -1}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("scenario %d should fail validation", i)
		}
	}
	good := Scenario{
		Sampler:       BernoulliSampler{P: 0.2},
		Participation: RandomChurn{DropoutProb: 0.1, StragglerProb: 0.1},
		ServerOpt:     NewFedAvgM(1, 0.9),
		Async:         &AsyncConfig{Buffer: 3, MaxDelay: 2},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}
