package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Scenario bundles the pluggable participation and aggregation axes of the
// round engine. The zero value reproduces the paper's fixed federation
// shape bit-exactly: uniform K-of-N selection, full participation, plain
// synchronous FedAvg-style application of the aggregate.
type Scenario struct {
	// Sampler selects the participating clients each round; nil means
	// uniform K-of-N selection (K = the engine's PerRound), which consumes
	// the selection RNG stream exactly as the pre-engine round loops did.
	Sampler ClientSampler
	// Participation models per-selection churn; nil means every selected
	// client responds (and the participation RNG stream is never consumed).
	Participation ParticipationModel
	// ServerOpt post-processes the robust aggregate into the next global
	// model; nil means plain application (the aggregate becomes the global).
	ServerOpt ServerOptimizer
	// Async, when non-nil, switches the engine to FedBuff-style buffered
	// aggregation: updates arrive with simulated delays and the server
	// aggregates whenever Buffer of them are queued, discounting stale
	// updates. Nil means the legacy synchronous round structure.
	Async *AsyncConfig
}

// Validate reports scenario configuration errors.
func (sc Scenario) Validate() error {
	type validator interface{ Validate() error }
	for _, v := range []interface{}{sc.Sampler, sc.Participation, sc.ServerOpt} {
		if val, ok := v.(validator); ok {
			if err := val.Validate(); err != nil {
				return err
			}
		}
	}
	if sc.Async != nil {
		if sc.Async.Buffer <= 0 {
			return errors.New("fl: async Buffer must be positive")
		}
		if sc.Async.MaxDelay < 0 {
			return errors.New("fl: async MaxDelay must be non-negative")
		}
	}
	return nil
}

// ClientSampler selects the client IDs that participate in one round.
// Implementations must be deterministic functions of the provided RNG so
// identical seeds reproduce identical participation traces.
type ClientSampler interface {
	// Name returns the sampler's display name.
	Name() string
	// Sample returns the participating client IDs (subset of 0..total-1).
	// An empty return is legal and yields a round with no responders.
	Sample(rng *rand.Rand, round, total int) []int
}

// UniformSampler selects K of N clients uniformly without replacement. Its
// RNG consumption (one Perm(total) per round) is bit-compatible with the
// pre-engine round loops of fl.Simulation and flnet.Server, so fixed-seed
// runs select the same clients per round as before the refactor.
type UniformSampler struct {
	// K is the number of clients selected per round.
	K int
}

// Name implements ClientSampler.
func (s UniformSampler) Name() string { return fmt.Sprintf("uniform-%d", s.K) }

// Validate reports configuration errors.
func (s UniformSampler) Validate() error {
	if s.K <= 0 {
		return errors.New("fl: uniform sampler K must be positive")
	}
	return nil
}

// Sample implements ClientSampler.
func (s UniformSampler) Sample(rng *rand.Rand, _, total int) []int {
	k := s.K
	if k > total {
		k = total
	}
	return rng.Perm(total)[:k]
}

// BernoulliSampler implements Poisson-style per-client sampling: every
// client independently participates with probability P, the cross-device
// model of production federations (and of DP-FL analyses). The number of
// participants varies round to round and may be zero.
type BernoulliSampler struct {
	// P is the per-client participation probability.
	P float64
}

// Name implements ClientSampler.
func (s BernoulliSampler) Name() string { return fmt.Sprintf("bernoulli-%g", s.P) }

// Validate reports configuration errors.
func (s BernoulliSampler) Validate() error {
	if s.P <= 0 || s.P > 1 {
		return fmt.Errorf("fl: bernoulli sampler P %v outside (0, 1]", s.P)
	}
	return nil
}

// Sample implements ClientSampler.
func (s BernoulliSampler) Sample(rng *rand.Rand, _, total int) []int {
	var ids []int
	for i := 0; i < total; i++ {
		if rng.Float64() < s.P {
			ids = append(ids, i)
		}
	}
	return ids
}

// WeightedSampler selects K of N clients without replacement with
// probability proportional to per-client weights (typically shard sizes, so
// data-rich clients are contacted more often). Clients without a weight
// entry count as weight 1.
type WeightedSampler struct {
	// K is the number of clients selected per round.
	K int
	// Weights holds one non-negative weight per client.
	Weights []float64
}

// Name implements ClientSampler.
func (s WeightedSampler) Name() string { return fmt.Sprintf("weighted-%d", s.K) }

// Validate reports configuration errors.
func (s WeightedSampler) Validate() error {
	if s.K <= 0 {
		return errors.New("fl: weighted sampler K must be positive")
	}
	for i, w := range s.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("fl: weighted sampler weight %d is %v", i, w)
		}
	}
	return nil
}

func (s WeightedSampler) weight(i int) float64 {
	if i < len(s.Weights) {
		return s.Weights[i]
	}
	return 1
}

// Sample implements ClientSampler: K successive weighted draws, each over
// the clients not yet chosen.
func (s WeightedSampler) Sample(rng *rand.Rand, _, total int) []int {
	k := s.K
	if k > total {
		k = total
	}
	chosen := make([]bool, total)
	ids := make([]int, 0, k)
	for len(ids) < k {
		sum := 0.0
		for i := 0; i < total; i++ {
			if !chosen[i] {
				sum += s.weight(i)
			}
		}
		pick := -1
		if sum > 0 {
			u := rng.Float64() * sum
			for i := 0; i < total; i++ {
				if chosen[i] {
					continue
				}
				u -= s.weight(i)
				if u < 0 {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			// All remaining weight is zero (or a degenerate draw): fall back
			// to a uniform choice over the unchosen clients.
			r := rng.Intn(total - len(ids))
			for i := 0; i < total; i++ {
				if chosen[i] {
					continue
				}
				if r == 0 {
					pick = i
					break
				}
				r--
			}
		}
		chosen[pick] = true
		ids = append(ids, pick)
	}
	return ids
}

// ClientFate is the participation outcome of one selected client.
type ClientFate int

const (
	// FateResponds means the client delivers its update before the deadline.
	FateResponds ClientFate = iota
	// FateDropped means the client was unavailable for the round (device
	// offline, battery policy, network partition) and never trained.
	FateDropped
	// FateStraggled means the client trained but missed the round deadline,
	// so its update is discarded — the in-process analogue of a flnet client
	// exceeding ServerConfig.RoundTimeout over real sockets.
	FateStraggled
)

// String returns the fate's display name.
func (f ClientFate) String() string {
	switch f {
	case FateResponds:
		return "responds"
	case FateDropped:
		return "dropped"
	case FateStraggled:
		return "straggled"
	default:
		return fmt.Sprintf("fate(%d)", int(f))
	}
}

// ParticipationModel decides, per selected client per round, whether the
// client's update actually reaches the server in time.
type ParticipationModel interface {
	// Name returns the model's display name.
	Name() string
	// Outcome returns the fate of one selected client this round.
	Outcome(rng *rand.Rand, round, client int) ClientFate
}

// FullParticipation is the legacy behaviour: every selected client responds.
// It consumes no randomness, keeping the zero-value Scenario bit-compatible
// with the pre-engine round loops.
type FullParticipation struct{}

// Name implements ParticipationModel.
func (FullParticipation) Name() string { return "full" }

// Outcome implements ParticipationModel.
func (FullParticipation) Outcome(*rand.Rand, int, int) ClientFate { return FateResponds }

// RandomChurn drops each selected client with DropoutProb and turns it into
// a deadline-missing straggler with StragglerProb, independently per
// selection. Both fates yield no update; they are tracked separately in the
// round trace because they model different production failure modes.
type RandomChurn struct {
	// DropoutProb is the per-selection probability of unavailability.
	DropoutProb float64
	// StragglerProb is the per-selection probability of missing the deadline.
	StragglerProb float64
}

// Name implements ParticipationModel.
func (m RandomChurn) Name() string {
	return fmt.Sprintf("churn-d%g-s%g", m.DropoutProb, m.StragglerProb)
}

// Validate reports configuration errors.
func (m RandomChurn) Validate() error {
	if m.DropoutProb < 0 || m.StragglerProb < 0 || m.DropoutProb+m.StragglerProb > 1 {
		return fmt.Errorf("fl: churn probabilities (%v, %v) invalid", m.DropoutProb, m.StragglerProb)
	}
	return nil
}

// Outcome implements ParticipationModel. One uniform draw per selection
// keeps the trace reproducible regardless of which fate wins.
func (m RandomChurn) Outcome(rng *rand.Rand, _, _ int) ClientFate {
	u := rng.Float64()
	switch {
	case u < m.DropoutProb:
		return FateDropped
	case u < m.DropoutProb+m.StragglerProb:
		return FateStraggled
	default:
		return FateResponds
	}
}

// ServerOptimizer turns the robust aggregate into the next global model.
// Implementations may keep state across rounds (momentum); a fresh instance
// must be used per run.
type ServerOptimizer interface {
	// Name returns the optimizer's display name.
	Name() string
	// Apply combines the current global weights with the round's aggregate
	// and returns the next global weights.
	Apply(global, aggregated []float64) []float64
}

// PlainApply is the legacy behaviour: the aggregate becomes the global
// model unchanged (bit-exactly — the aggregate slice is returned as-is).
type PlainApply struct{}

// Name implements ServerOptimizer.
func (PlainApply) Name() string { return "plain" }

// Apply implements ServerOptimizer.
func (PlainApply) Apply(_, aggregated []float64) []float64 { return aggregated }

// ServerLRApply applies the aggregate as a pseudo-gradient with a server
// learning rate: w' = w + η·(agg − w). η = 1 recovers plain application;
// η < 1 damps each round's movement, a standard stabilizer under partial
// participation.
type ServerLRApply struct {
	// Eta is the server learning rate.
	Eta float64
}

// Name implements ServerOptimizer.
func (o ServerLRApply) Name() string { return fmt.Sprintf("server-lr-%g", o.Eta) }

// Validate reports configuration errors.
func (o ServerLRApply) Validate() error {
	if o.Eta <= 0 {
		return fmt.Errorf("fl: server learning rate %v must be positive", o.Eta)
	}
	return nil
}

// Apply implements ServerOptimizer.
func (o ServerLRApply) Apply(global, aggregated []float64) []float64 {
	out := make([]float64, len(global))
	for i := range global {
		out[i] = global[i] + o.Eta*(aggregated[i]-global[i])
	}
	return out
}

// FedAvgM is server momentum (Hsu et al.): the round's pseudo-gradient
// accumulates into a velocity buffer, v ← β·v + (agg − w), and the global
// moves along the velocity, w' = w + η·v. Momentum smooths the noisy
// per-round updates of tiny sampling fractions.
type FedAvgM struct {
	// Eta is the server learning rate.
	Eta float64
	// Momentum is the velocity decay β.
	Momentum float64

	velocity []float64
}

// NewFedAvgM constructs a server-momentum optimizer.
func NewFedAvgM(eta, momentum float64) *FedAvgM {
	return &FedAvgM{Eta: eta, Momentum: momentum}
}

// Name implements ServerOptimizer.
func (o *FedAvgM) Name() string { return fmt.Sprintf("fedavgm-%g-%g", o.Eta, o.Momentum) }

// Validate reports configuration errors.
func (o *FedAvgM) Validate() error {
	if o.Eta <= 0 {
		return fmt.Errorf("fl: FedAvgM learning rate %v must be positive", o.Eta)
	}
	if o.Momentum < 0 || o.Momentum >= 1 {
		return fmt.Errorf("fl: FedAvgM momentum %v outside [0, 1)", o.Momentum)
	}
	return nil
}

// Apply implements ServerOptimizer.
func (o *FedAvgM) Apply(global, aggregated []float64) []float64 {
	if len(o.velocity) != len(global) {
		o.velocity = make([]float64, len(global))
	}
	out := make([]float64, len(global))
	for i := range global {
		o.velocity[i] = o.Momentum*o.velocity[i] + (aggregated[i] - global[i])
		out[i] = global[i] + o.Eta*o.velocity[i]
	}
	return out
}

// AsyncConfig parameterizes FedBuff-style buffered asynchronous
// aggregation: every collected update is assigned a simulated arrival delay
// of 0..MaxDelay engine steps, and the server aggregates whenever Buffer
// updates have arrived. An update that is τ steps stale when aggregated is
// discounted toward the current global by 1/√(1+τ) (FedBuff's staleness
// weight), expressed as a virtual full weight vector so every robust
// Aggregator of the reproduction works unmodified in async mode.
type AsyncConfig struct {
	// Buffer is B, the number of buffered updates that triggers an
	// aggregation. At the final step any partial buffer is flushed so the
	// run ends on the freshest model the arrived updates support.
	Buffer int
	// MaxDelay bounds the simulated arrival delay in engine steps; delays
	// that would land past the horizon are delivered at the final step.
	MaxDelay int
}
