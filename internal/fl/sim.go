package fl

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config holds the simulation parameters of Section IV-A.
type Config struct {
	// TotalClients is N, the population size (paper: 100).
	TotalClients int
	// PerRound is K, the number of clients selected each round (paper: 10).
	PerRound int
	// AttackerFrac is the fraction of malicious clients (paper: 0.2).
	AttackerFrac float64
	// Rounds is R, the number of global training rounds.
	Rounds int
	// LocalEpochs is the number of local epochs per round (paper: 1).
	LocalEpochs int
	// BatchSize is the local minibatch size.
	BatchSize int
	// LR is the global uniform learning rate η.
	LR float64
	// Seed drives all simulation randomness.
	Seed int64
	// EvalEvery evaluates the global model every EvalEvery rounds (1 =
	// every round, which the ASR metric assumes).
	EvalEvery int
	// EvalLimit caps the number of test samples per evaluation (0 = all).
	EvalLimit int
	// Parallel trains the selected clients concurrently.
	Parallel bool
	// Scenario selects the participation and aggregation axes (client
	// sampler, churn model, server optimizer, sync/async). The zero value
	// reproduces the paper's fixed federation shape bit-exactly.
	Scenario Scenario
	// Observer, when non-nil, receives every aggregation decision — the
	// forensics audit hook. Pure observation: it never changes results.
	Observer AggregationObserver
	// Codec, when enabled, compresses every client update before
	// aggregation (see Engine.Codec). The zero value reproduces the
	// uncompressed path bit-exactly.
	Codec codec.Spec
	// Telemetry, when non-nil, receives per-round/per-phase spans and codec
	// byte counts (see Engine.Telemetry). Pure observation: a fixed-seed
	// run is bit-identical with it enabled or nil.
	Telemetry *telemetry.EngineTelemetry
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.TotalClients <= 0:
		return errors.New("fl: TotalClients must be positive")
	case c.PerRound <= 0 || c.PerRound > c.TotalClients:
		return fmt.Errorf("fl: PerRound %d out of range (1..%d)", c.PerRound, c.TotalClients)
	case c.AttackerFrac < 0 || c.AttackerFrac > 0.5:
		// The threat model caps attackers at 50% of clients.
		return fmt.Errorf("fl: AttackerFrac %v outside [0, 0.5]", c.AttackerFrac)
	case c.Rounds <= 0:
		return errors.New("fl: Rounds must be positive")
	case c.LocalEpochs <= 0:
		return errors.New("fl: LocalEpochs must be positive")
	case c.BatchSize <= 0:
		return errors.New("fl: BatchSize must be positive")
	case c.LR <= 0:
		return errors.New("fl: LR must be positive")
	case c.EvalEvery <= 0:
		return errors.New("fl: EvalEvery must be positive")
	}
	if err := c.Codec.Validate(); err != nil {
		return err
	}
	return c.Scenario.Validate()
}

// Simulation wires a dataset, a model architecture, an aggregation rule and
// optionally an attack into the federated round loop.
//
// Client training runs on a bounded worker pool: each worker owns one model
// replica with an attached scratch arena, both reused across clients and
// rounds, so per-round cost does not include model construction and the
// steady-state training path does not allocate. A client's result depends
// only on the global weights and its private randomness, never on which
// worker trains it, so Parallel changes wall-clock only — see
// TestParallelDeterminism.
type Simulation struct {
	cfg        Config
	train      *dataset.Dataset
	test       *dataset.Dataset
	shards     [][]int
	malicious  []bool
	newModel   func(rng *rand.Rand) *nn.Network
	aggregator Aggregator
	attack     Attack

	clients []*BenignClient
	global  *nn.Network
	workers []*nn.Network
	eval    *Evaluator
}

// NewSimulation constructs a simulation. shards assigns training-sample
// indices to each of cfg.TotalClients clients (see dataset.PartitionDirichlet);
// attack may be nil for a clean run. The first ⌊AttackerFrac·N⌋ client IDs
// are designated malicious; because selection each round is uniform, which
// IDs carry the flag is immaterial.
func NewSimulation(cfg Config, train, test *dataset.Dataset, shards [][]int,
	newModel func(rng *rand.Rand) *nn.Network, agg Aggregator, attack Attack) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shards) != cfg.TotalClients {
		return nil, fmt.Errorf("fl: %d shards for %d clients", len(shards), cfg.TotalClients)
	}
	if agg == nil {
		return nil, errors.New("fl: aggregator must not be nil")
	}
	s := &Simulation{
		cfg:        cfg,
		train:      train,
		test:       test,
		shards:     shards,
		newModel:   newModel,
		aggregator: agg,
		attack:     attack,
	}
	numAttackers := int(float64(cfg.TotalClients) * cfg.AttackerFrac)
	if attack == nil {
		numAttackers = 0
	}
	s.malicious = make([]bool, cfg.TotalClients)
	for i := 0; i < numAttackers; i++ {
		s.malicious[i] = true
	}
	s.clients = make([]*BenignClient, cfg.TotalClients)
	for i := 0; i < cfg.TotalClients; i++ {
		if s.malicious[i] {
			continue
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + 1))
		// Clients hold no model of their own; the worker pool's reused
		// replicas are passed in per round via TrainWith.
		s.clients[i] = NewBenignClient(i, train, shards[i], nil, cfg.LR, cfg.LocalEpochs, cfg.BatchSize, rng)
	}
	s.global = newModel(rand.New(rand.NewSource(cfg.Seed)))
	s.eval = NewEvaluator(test, cfg.EvalLimit)
	return s, nil
}

// ensureWorkers grows the training worker pool to n reusable model
// replicas, each with its own scratch arena. The replica weights are fully
// overwritten at the start of every client's training, so the constructor
// randomness is irrelevant.
func (s *Simulation) ensureWorkers(n int) {
	for len(s.workers) < n {
		m := s.newModel(rand.New(rand.NewSource(s.cfg.Seed)))
		m.SetScratch(tensor.NewPool())
		s.workers = append(s.workers, m)
	}
}

// GlobalWeights returns a copy of the current global weight vector.
func (s *Simulation) GlobalWeights() []float64 {
	return s.global.WeightVector()
}

// NumAttackers returns the number of malicious clients in the population.
func (s *Simulation) NumAttackers() int {
	n := 0
	for _, m := range s.malicious {
		if m {
			n++
		}
	}
	return n
}

// simTransport exposes the simulation's bounded worker-pool training as an
// engine Transport.
type simTransport struct{ s *Simulation }

// Collect implements Transport.
func (t simTransport) Collect(_ int, ids []int, global, _ []float64) ([]Update, error) {
	return t.s.trainBenign(ids, global)
}

// Run executes the configured number of rounds on the shared round engine
// and returns the result. The zero-value Scenario reproduces the
// pre-engine loop bit-identically (see TestParallelDeterminism).
func (s *Simulation) Run() (*Result, error) {
	eng := &Engine{
		TotalClients: s.cfg.TotalClients,
		PerRound:     s.cfg.PerRound,
		Rounds:       s.cfg.Rounds,
		EvalEvery:    s.cfg.EvalEvery,
		Seed:         s.cfg.Seed,
		Scenario:     s.cfg.Scenario,
		Transport:    simTransport{s},
		Aggregator:   s.aggregator,
		Attack:       s.attack,
		Malicious:    s.malicious,
		NewModel:     s.newModel,
		Observer:     s.cfg.Observer,
		Codec:        s.cfg.Codec,
		Telemetry:    s.cfg.Telemetry,
		// Attackers report a plausible sample count (the mean benign shard
		// size) so weighted aggregation cannot trivially expose them.
		AttackSamples: s.meanShardSize(),
		Evaluate: func(weights []float64) (float64, error) {
			if err := s.global.SetWeightVector(weights); err != nil {
				return 0, err
			}
			return s.eval.Accuracy(s.global, s.cfg.Parallel), nil
		},
	}
	res, final, err := eng.Run(s.global.WeightVector())
	if err != nil {
		return nil, err
	}
	if err := s.global.SetWeightVector(final); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Simulation) meanShardSize() int {
	total, n := 0, 0
	for i, c := range s.clients {
		if s.malicious[i] || c == nil {
			continue
		}
		total += c.NumSamples()
		n++
	}
	if n == 0 {
		return 1
	}
	return total / n
}

// trainBenign trains the selected benign clients on the bounded worker
// pool: at most tensor.Workers() goroutines run, each owning one reused
// model replica and arena. Serial and parallel execution produce identical
// updates.
func (s *Simulation) trainBenign(ids []int, global []float64) ([]Update, error) {
	updates := make([]Update, len(ids))
	if len(ids) == 0 {
		return updates, nil
	}
	workers := 1
	if s.cfg.Parallel {
		workers = tensor.Workers()
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	s.ensureWorkers(workers)

	if workers <= 1 {
		model := s.workers[0]
		for i, id := range ids {
			u, err := s.clients[id].TrainWith(global, model)
			if err != nil {
				return nil, err
			}
			updates[i] = u
		}
		return updates, nil
	}

	// Workers drain a shared counter within the global slot budget, so the
	// -threads pin bounds the total compute goroutines.
	errs := make([]error, len(ids))
	var next atomic.Int64
	tensor.FanOut(workers, func(w int) {
		model := s.workers[w]
		for {
			i := int(next.Add(1)) - 1
			if i >= len(ids) {
				return
			}
			updates[i], errs[i] = s.clients[ids[i]].TrainWith(global, model)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return updates, nil
}
