package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config holds the simulation parameters of Section IV-A.
type Config struct {
	// TotalClients is N, the population size (paper: 100).
	TotalClients int
	// PerRound is K, the number of clients selected each round (paper: 10).
	PerRound int
	// AttackerFrac is the fraction of malicious clients (paper: 0.2).
	AttackerFrac float64
	// Rounds is R, the number of global training rounds.
	Rounds int
	// LocalEpochs is the number of local epochs per round (paper: 1).
	LocalEpochs int
	// BatchSize is the local minibatch size.
	BatchSize int
	// LR is the global uniform learning rate η.
	LR float64
	// Seed drives all simulation randomness.
	Seed int64
	// EvalEvery evaluates the global model every EvalEvery rounds (1 =
	// every round, which the ASR metric assumes).
	EvalEvery int
	// EvalLimit caps the number of test samples per evaluation (0 = all).
	EvalLimit int
	// Parallel trains the selected clients concurrently.
	Parallel bool
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.TotalClients <= 0:
		return errors.New("fl: TotalClients must be positive")
	case c.PerRound <= 0 || c.PerRound > c.TotalClients:
		return fmt.Errorf("fl: PerRound %d out of range (1..%d)", c.PerRound, c.TotalClients)
	case c.AttackerFrac < 0 || c.AttackerFrac > 0.5:
		// The threat model caps attackers at 50% of clients.
		return fmt.Errorf("fl: AttackerFrac %v outside [0, 0.5]", c.AttackerFrac)
	case c.Rounds <= 0:
		return errors.New("fl: Rounds must be positive")
	case c.LocalEpochs <= 0:
		return errors.New("fl: LocalEpochs must be positive")
	case c.BatchSize <= 0:
		return errors.New("fl: BatchSize must be positive")
	case c.LR <= 0:
		return errors.New("fl: LR must be positive")
	case c.EvalEvery <= 0:
		return errors.New("fl: EvalEvery must be positive")
	}
	return nil
}

// Simulation wires a dataset, a model architecture, an aggregation rule and
// optionally an attack into the federated round loop.
//
// Client training runs on a bounded worker pool: each worker owns one model
// replica with an attached scratch arena, both reused across clients and
// rounds, so per-round cost does not include model construction and the
// steady-state training path does not allocate. A client's result depends
// only on the global weights and its private randomness, never on which
// worker trains it, so Parallel changes wall-clock only — see
// TestParallelDeterminism.
type Simulation struct {
	cfg        Config
	train      *dataset.Dataset
	test       *dataset.Dataset
	shards     [][]int
	malicious  []bool
	newModel   func(rng *rand.Rand) *nn.Network
	aggregator Aggregator
	attack     Attack

	clients []*BenignClient
	global  *nn.Network
	workers []*nn.Network
	eval    *Evaluator
}

// NewSimulation constructs a simulation. shards assigns training-sample
// indices to each of cfg.TotalClients clients (see dataset.PartitionDirichlet);
// attack may be nil for a clean run. The first ⌊AttackerFrac·N⌋ client IDs
// are designated malicious; because selection each round is uniform, which
// IDs carry the flag is immaterial.
func NewSimulation(cfg Config, train, test *dataset.Dataset, shards [][]int,
	newModel func(rng *rand.Rand) *nn.Network, agg Aggregator, attack Attack) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shards) != cfg.TotalClients {
		return nil, fmt.Errorf("fl: %d shards for %d clients", len(shards), cfg.TotalClients)
	}
	if agg == nil {
		return nil, errors.New("fl: aggregator must not be nil")
	}
	s := &Simulation{
		cfg:        cfg,
		train:      train,
		test:       test,
		shards:     shards,
		newModel:   newModel,
		aggregator: agg,
		attack:     attack,
	}
	numAttackers := int(float64(cfg.TotalClients) * cfg.AttackerFrac)
	if attack == nil {
		numAttackers = 0
	}
	s.malicious = make([]bool, cfg.TotalClients)
	for i := 0; i < numAttackers; i++ {
		s.malicious[i] = true
	}
	s.clients = make([]*BenignClient, cfg.TotalClients)
	for i := 0; i < cfg.TotalClients; i++ {
		if s.malicious[i] {
			continue
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + 1))
		// Clients hold no model of their own; the worker pool's reused
		// replicas are passed in per round via TrainWith.
		s.clients[i] = NewBenignClient(i, train, shards[i], nil, cfg.LR, cfg.LocalEpochs, cfg.BatchSize, rng)
	}
	s.global = newModel(rand.New(rand.NewSource(cfg.Seed)))
	s.eval = NewEvaluator(test, cfg.EvalLimit)
	return s, nil
}

// ensureWorkers grows the training worker pool to n reusable model
// replicas, each with its own scratch arena. The replica weights are fully
// overwritten at the start of every client's training, so the constructor
// randomness is irrelevant.
func (s *Simulation) ensureWorkers(n int) {
	for len(s.workers) < n {
		m := s.newModel(rand.New(rand.NewSource(s.cfg.Seed)))
		m.SetScratch(tensor.NewPool())
		s.workers = append(s.workers, m)
	}
}

// GlobalWeights returns a copy of the current global weight vector.
func (s *Simulation) GlobalWeights() []float64 {
	return s.global.WeightVector()
}

// NumAttackers returns the number of malicious clients in the population.
func (s *Simulation) NumAttackers() int {
	n := 0
	for _, m := range s.malicious {
		if m {
			n++
		}
	}
	return n
}

// Run executes the configured number of rounds and returns the result.
func (s *Simulation) Run() (*Result, error) {
	selRng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5DEECE66D))
	atkRng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x2545F4914F6CDD1D))
	res := &Result{MaxAccuracy: 0, FinalAccuracy: math.NaN()}

	global := s.global.WeightVector()
	prevGlobal := append([]float64(nil), global...)
	totalAttackers := s.NumAttackers()

	for round := 0; round < s.cfg.Rounds; round++ {
		selected := selRng.Perm(s.cfg.TotalClients)[:s.cfg.PerRound]

		var benignIDs, attackerIDs []int
		for _, id := range selected {
			if s.malicious[id] {
				attackerIDs = append(attackerIDs, id)
			} else {
				benignIDs = append(benignIDs, id)
			}
		}

		benignUpdates, err := s.trainBenign(benignIDs, global)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}

		updates := benignUpdates
		if len(attackerIDs) > 0 && s.attack != nil {
			benignVecs := make([][]float64, len(benignUpdates))
			for i, u := range benignUpdates {
				benignVecs[i] = u.Weights
			}
			ctx := &AttackContext{
				Round:          round,
				Global:         global,
				PrevGlobal:     prevGlobal,
				BenignUpdates:  benignVecs,
				NumAttackers:   len(attackerIDs),
				NumSelected:    s.cfg.PerRound,
				TotalClients:   s.cfg.TotalClients,
				TotalAttackers: totalAttackers,
				NewModel:       s.newModel,
				Rng:            atkRng,
			}
			malVecs, err := s.attack.Craft(ctx)
			if err != nil {
				return nil, fmt.Errorf("round %d: attack %s: %w", round, s.attack.Name(), err)
			}
			if len(malVecs) != len(attackerIDs) {
				return nil, fmt.Errorf("round %d: attack returned %d vectors for %d attackers", round, len(malVecs), len(attackerIDs))
			}
			// Attackers report a plausible sample count (the mean benign
			// shard size) so weighted aggregation cannot trivially expose
			// them.
			meanN := s.meanShardSize()
			for i, id := range attackerIDs {
				if len(malVecs[i]) != len(global) {
					return nil, fmt.Errorf("round %d: malicious vector %d has length %d, want %d", round, i, len(malVecs[i]), len(global))
				}
				updates = append(updates, Update{
					ClientID:   id,
					Weights:    malVecs[i],
					NumSamples: meanN,
					Malicious:  true,
				})
			}
		}

		newGlobal, selectedIdx, err := s.aggregator.Aggregate(global, updates)
		if err != nil {
			return nil, fmt.Errorf("round %d: defense %s: %w", round, s.aggregator.Name(), err)
		}
		if len(newGlobal) != len(global) {
			return nil, fmt.Errorf("round %d: defense returned %d weights, want %d", round, len(newGlobal), len(global))
		}

		stats := RoundStats{Round: round, Accuracy: math.NaN(), SelectedMalicious: len(attackerIDs), PassedMalicious: -1}
		if selectedIdx != nil {
			res.DPRKnown = true
			passed := 0
			for _, idx := range selectedIdx {
				if idx < 0 || idx >= len(updates) {
					return nil, fmt.Errorf("round %d: defense selected out-of-range update %d", round, idx)
				}
				if updates[idx].Malicious {
					passed++
				}
			}
			stats.PassedMalicious = passed
			res.MaliciousPassed += passed
		}
		res.MaliciousSubmitted += len(attackerIDs)

		prevGlobal = global
		global = newGlobal
		if err := s.global.SetWeightVector(global); err != nil {
			return nil, err
		}

		if (round+1)%s.cfg.EvalEvery == 0 || round == s.cfg.Rounds-1 {
			acc := s.eval.Accuracy(s.global, s.cfg.Parallel)
			stats.Accuracy = acc
			if acc > res.MaxAccuracy {
				res.MaxAccuracy = acc
			}
			res.FinalAccuracy = acc
		}
		res.Rounds = append(res.Rounds, stats)
	}
	return res, nil
}

func (s *Simulation) meanShardSize() int {
	total, n := 0, 0
	for i, c := range s.clients {
		if s.malicious[i] || c == nil {
			continue
		}
		total += c.NumSamples()
		n++
	}
	if n == 0 {
		return 1
	}
	return total / n
}

// trainBenign trains the selected benign clients on the bounded worker
// pool: at most tensor.Workers() goroutines run, each owning one reused
// model replica and arena. Serial and parallel execution produce identical
// updates.
func (s *Simulation) trainBenign(ids []int, global []float64) ([]Update, error) {
	updates := make([]Update, len(ids))
	if len(ids) == 0 {
		return updates, nil
	}
	workers := 1
	if s.cfg.Parallel {
		workers = tensor.Workers()
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	s.ensureWorkers(workers)

	if workers <= 1 {
		model := s.workers[0]
		for i, id := range ids {
			u, err := s.clients[id].TrainWith(global, model)
			if err != nil {
				return nil, err
			}
			updates[i] = u
		}
		return updates, nil
	}

	// Workers drain a shared counter within the global slot budget, so the
	// -threads pin bounds the total compute goroutines.
	errs := make([]error, len(ids))
	var next atomic.Int64
	tensor.FanOut(workers, func(w int) {
		model := s.workers[w]
		for {
			i := int(next.Add(1)) - 1
			if i >= len(ids) {
				return
			}
			updates[i], errs[i] = s.clients[ids[i]].TrainWith(global, model)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return updates, nil
}
