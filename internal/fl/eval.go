package fl

import (
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// evalBatch is the forward-pass batch size used during evaluation.
const evalBatch = 64

// Evaluate returns the model's top-1 accuracy on the first limit samples of
// the dataset (limit <= 0 means all). When parallel is true the evaluation
// batches are spread over the available CPUs, each worker using its own
// model clone so no layer state is shared.
func Evaluate(model *nn.Network, ds *dataset.Dataset, limit int, parallel bool) float64 {
	n := ds.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	if n == 0 {
		return 0
	}
	type chunk struct{ start, end int }
	var chunks []chunk
	for start := 0; start < n; start += evalBatch {
		end := start + evalBatch
		if end > n {
			end = n
		}
		chunks = append(chunks, chunk{start, end})
	}

	countCorrect := func(m *nn.Network, c chunk) int {
		idx := make([]int, c.end-c.start)
		for i := range idx {
			idx[i] = c.start + i
		}
		x, labels := ds.Batch(idx)
		preds := nn.Predict(m.Forward(x, false))
		correct := 0
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
		}
		return correct
	}

	if !parallel || len(chunks) == 1 {
		correct := 0
		for _, c := range chunks {
			correct += countCorrect(model, c)
		}
		return float64(correct) / float64(n)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	work := make(chan chunk)
	results := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := model.Clone()
			for c := range work {
				results <- countCorrect(m, c)
			}
		}()
	}
	go func() {
		for _, c := range chunks {
			work <- c
		}
		close(work)
		wg.Wait()
		close(results)
	}()
	correct := 0
	for r := range results {
		correct += r
	}
	return float64(correct) / float64(n)
}
