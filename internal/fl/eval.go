package fl

import (
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// evalBatch is the forward-pass batch size used during evaluation.
const evalBatch = 64

// Evaluator measures top-1 accuracy over a dataset with persistent
// per-worker model clones and scratch arenas, so the per-round evaluations
// of a simulation reuse their buffers instead of cloning the model and
// reallocating activations every round. The evaluated weights are copied
// into each worker clone, never shared, so workers hold no common layer
// state.
type Evaluator struct {
	ds      *dataset.Dataset
	limit   int
	workers []*evalWorker
}

type evalWorker struct {
	model *nn.Network
	idx   []int
	preds []int
}

// NewEvaluator creates an evaluator over the first limit samples of ds
// (limit <= 0 means all). Worker clones are created lazily from the first
// evaluated model.
func NewEvaluator(ds *dataset.Dataset, limit int) *Evaluator {
	return &Evaluator{ds: ds, limit: limit}
}

func (e *Evaluator) ensureWorkers(model *nn.Network, n int) {
	for len(e.workers) < n {
		clone := model.Clone()
		clone.SetScratch(tensor.NewPool())
		e.workers = append(e.workers, &evalWorker{model: clone})
	}
}

// syncWeights copies src's parameters into dst (architectures must match).
func syncWeights(dst, src *nn.Network) {
	dp, sp := dst.Params(), src.Params()
	for i := range sp {
		copy(dp[i].Data, sp[i].Data)
	}
}

// countCorrect evaluates samples [start, end) and returns the number of
// correct top-1 predictions.
func (w *evalWorker) countCorrect(ds *dataset.Dataset, start, end int) int {
	w.idx = w.idx[:0]
	for i := start; i < end; i++ {
		w.idx = append(w.idx, i)
	}
	x, labels := ds.Batch(w.idx)
	w.model.ResetScratch()
	w.preds = nn.PredictInto(w.preds, w.model.Forward(x, false))
	correct := 0
	for i, p := range w.preds {
		if p == labels[i] {
			correct++
		}
	}
	return correct
}

// Accuracy returns model's top-1 accuracy on the evaluator's dataset. When
// parallel is true the evaluation batches are spread over the kernel worker
// pool; the result is identical either way, because each batch contributes
// an integer count.
func (e *Evaluator) Accuracy(model *nn.Network, parallel bool) float64 {
	n := e.ds.Len()
	if e.limit > 0 && e.limit < n {
		n = e.limit
	}
	if n == 0 {
		return 0
	}
	chunks := (n + evalBatch - 1) / evalBatch
	workers := 1
	if parallel {
		workers = tensor.Workers()
	}
	if workers > chunks {
		workers = chunks
	}
	e.ensureWorkers(model, workers)
	for _, w := range e.workers[:workers] {
		syncWeights(w.model, model)
	}

	if workers <= 1 {
		w := e.workers[0]
		correct := 0
		for start := 0; start < n; start += evalBatch {
			end := start + evalBatch
			if end > n {
				end = n
			}
			correct += w.countCorrect(e.ds, start, end)
		}
		return float64(correct) / float64(n)
	}

	// Workers drain a shared chunk counter within the global slot budget,
	// keeping the total compute goroutines within the -threads pin.
	results := make([]int, chunks)
	var next atomic.Int64
	tensor.FanOut(workers, func(wi int) {
		w := e.workers[wi]
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			start := c * evalBatch
			end := start + evalBatch
			if end > n {
				end = n
			}
			results[c] = w.countCorrect(e.ds, start, end)
		}
	})
	correct := 0
	for _, r := range results {
		correct += r
	}
	return float64(correct) / float64(n)
}

// Evaluate returns the model's top-1 accuracy on the first limit samples of
// the dataset (limit <= 0 means all). It is the one-shot form of Evaluator;
// simulations hold an Evaluator so per-round evaluations reuse their worker
// clones and arenas.
func Evaluate(model *nn.Network, ds *dataset.Dataset, limit int, parallel bool) float64 {
	return NewEvaluator(ds, limit).Accuracy(model, parallel)
}
