package fl

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
)

func benchSetup(b *testing.B, parallel bool) *Simulation {
	b.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 1)
	rng := rand.New(rand.NewSource(1))
	shards := dataset.PartitionIID(rng, train.Len(), 20)
	newModel := func(r *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(r, spec.Channels, spec.Size, spec.Classes)
	}
	cfg := Config{
		TotalClients: 20,
		PerRound:     8,
		Rounds:       3,
		LocalEpochs:  1,
		BatchSize:    8,
		LR:           0.05,
		Seed:         1,
		EvalEvery:    1,
		EvalLimit:    128,
		Parallel:     parallel,
	}
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// BenchmarkSimulationRounds measures a short clean federated run — client
// selection, worker-pool local training, aggregation and evaluation — the
// end-to-end hot loop of every grid cell.
func BenchmarkSimulationRounds(b *testing.B) {
	sim := benchSetup(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainBenignRound measures one round of worker-pool client
// training in isolation.
func BenchmarkTrainBenignRound(b *testing.B) {
	sim := benchSetup(b, true)
	global := sim.GlobalWeights()
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.trainBenign(ids, global); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures the persistent evaluator on a reused model.
func BenchmarkEvaluate(b *testing.B) {
	sim := benchSetup(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.eval.Accuracy(sim.global, true)
	}
}
