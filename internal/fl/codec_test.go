package fl

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/tensor"
)

// runTinyCodec executes one tiny simulation with the given update codec and
// parallelism settings.
func runTinyCodec(t *testing.T, spec codec.Spec, parallel bool, workers int) *Result {
	t.Helper()
	tensor.SetWorkers(workers)
	train, test, shards, newModel := tinySetup(t, 7)
	cfg := tinyConfig()
	cfg.Parallel = parallel
	cfg.Codec = spec
	sim, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{reportSelection: true}, zeroAttack{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCodecRawBitIdentical locks in the lossless contract: the raw codec
// reshapes transport only, so a run with Codec raw is bit-identical to the
// same run with the codec off — the check cell the acceptance criteria pin.
func TestCodecRawBitIdentical(t *testing.T) {
	defer tensor.SetWorkers(0)
	off := runTinyCodec(t, codec.Spec{}, false, 1)
	if math.IsNaN(off.FinalAccuracy) {
		t.Fatal("reference run produced no evaluation")
	}
	raw := runTinyCodec(t, codec.Spec{Quant: codec.Raw}, false, 1)
	if !reflect.DeepEqual(raw, off) {
		t.Fatalf("raw codec changed the result:\n got: %+v\nwant: %+v", raw, off)
	}
}

// TestCodecLossyDeterminism: a lossy codec changes the numbers (documented
// tolerance), but never the determinism — repeat runs and any worker-pool
// width produce bit-identical results, because stochastic rounding draws
// from per-(client,round) streams, not from shared state.
func TestCodecLossyDeterminism(t *testing.T) {
	defer tensor.SetWorkers(0)
	spec := codec.Spec{Quant: codec.Int8, TopK: 0.25, EF: true}
	ref := runTinyCodec(t, spec, false, 1)
	if math.IsNaN(ref.FinalAccuracy) {
		t.Fatal("reference run produced no evaluation")
	}
	for _, tc := range []struct {
		name     string
		parallel bool
		workers  int
	}{
		{"repeat-serial", false, 1},
		{"parallel-4", true, 4},
		{"parallel-16", true, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runTinyCodec(t, spec, tc.parallel, tc.workers)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("lossy codec run not deterministic:\n got: %+v\nwant: %+v", got, ref)
			}
		})
	}
}

// TestCodecConfigValidate: simulation construction rejects malformed codec
// specs instead of failing rounds in.
func TestCodecConfigValidate(t *testing.T) {
	train, test, shards, newModel := tinySetup(t, 7)
	cfg := tinyConfig()
	cfg.Codec = codec.Spec{Quant: codec.Raw, EF: true} // EF needs a lossy codec
	if _, err := NewSimulation(cfg, train, test, shards, newModel, meanAggregator{}, zeroAttack{}); err == nil {
		t.Fatal("expected codec validation error")
	}
}
