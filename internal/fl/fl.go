// Package fl implements the federated-learning framework of the paper's
// experimental setup (Section II-A and IV-A): a population of clients, a
// central server that selects a subset per round, local training on private
// shards, pluggable robust aggregation, and the metric accounting for
// attack success rate (ASR) and defense pass rate (DPR).
package fl

import (
	"math"
	"math/rand"

	"repro/internal/nn"
)

// Update is one client's submission for a round: the full local model weight
// vector w_i(t+1) (Eq. 1) plus the metadata the server legitimately knows.
type Update struct {
	// ClientID identifies the submitting client.
	ClientID int
	// Weights is the flat local model weight vector.
	Weights []float64
	// NumSamples is the client's reported training-set size n_i (Eq. 2).
	NumSamples int
	// Malicious marks updates crafted by the adversary. The server never
	// reads this field; it exists purely for metric accounting.
	Malicious bool
}

// Aggregator is a server-side aggregation rule, possibly Byzantine-robust.
type Aggregator interface {
	// Name returns the defense's display name.
	Name() string
	// Aggregate combines the round's updates into new global weights.
	// For selection-based defenses (Krum-family, REFD) the second return
	// value lists the indices of updates included in the aggregate, which
	// drives the DPR metric; statistics-based defenses (median, trimmed
	// mean) return nil because "passing" is undefined for them (Eq. 5
	// discussion in the paper).
	Aggregate(global []float64, updates []Update) (newGlobal []float64, selected []int, err error)
}

// AttackContext is everything the adversary may see in one round. The
// fields mirror Table I of the paper: DFA uses only the global models and
// task metadata, whereas the baseline attacks additionally read the benign
// updates oracle.
type AttackContext struct {
	// Round is the current round index, starting at 0.
	Round int
	// Global is the current global weight vector w(t).
	Global []float64
	// PrevGlobal is the previous round's global weight vector w(t−1); equal
	// to Global in round 0.
	PrevGlobal []float64
	// BenignUpdates holds the weight vectors of this round's benign
	// updates. Only knowledge-assuming baseline attacks (LIE, Fang,
	// Min-Max/Min-Sum) may read it; DFA must not.
	BenignUpdates [][]float64
	// NumAttackers is the number of malicious clients selected this round.
	NumAttackers int
	// NumSelected is the total number of clients selected this round.
	NumSelected int
	// TotalClients and TotalAttackers describe the whole population.
	TotalClients, TotalAttackers int
	// NewModel constructs a model with the experiment's architecture; the
	// adversary legitimately knows the architecture because the server
	// distributes the model.
	NewModel func(rng *rand.Rand) *nn.Network
	// Rng is the adversary's private randomness source.
	Rng *rand.Rand
}

// Attack crafts the adversary's submissions for a round.
type Attack interface {
	// Name returns the attack's display name.
	Name() string
	// Craft returns one malicious weight vector per selected attacker. The
	// paper allows all attackers to submit the same update; implementations
	// may instead add small perturbations to evade Sybil defenses.
	Craft(ctx *AttackContext) ([][]float64, error)
}

// ASR computes the attack success rate of Eq. 4: the relative accuracy drop
// from the clean (no attack, no defense) accuracy to the best accuracy the
// global model reached under attack, in percent.
func ASR(cleanAcc, maxAttackedAcc float64) float64 {
	if cleanAcc == 0 {
		return 0
	}
	return (cleanAcc - maxAttackedAcc) / cleanAcc * 100
}

// RoundStats records what happened in a single round, including the
// participation trace of the engine's sampler and churn model.
type RoundStats struct {
	// Round is the round index.
	Round int
	// Accuracy is the global model's test accuracy after aggregation, in
	// [0, 1]; NaN when the round was not evaluated.
	Accuracy float64
	// SelectedMalicious is the number of malicious clients selected.
	SelectedMalicious int
	// PassedMalicious is the number of malicious updates the defense let
	// into the aggregate (−1 when the defense does not report selection).
	PassedMalicious int
	// Selected is the number of clients the sampler picked this round.
	Selected int
	// Dropped counts selected clients the participation model made
	// unavailable (they never trained).
	Dropped int
	// Straggled counts selected clients that trained but missed the round
	// deadline, so their update was discarded.
	Straggled int
	// Responded is the number of updates produced this round (crafted
	// malicious updates included). In sync mode they all reach the round's
	// aggregation; in async mode they are dispatched into the delay buffer
	// and may aggregate in a later round.
	Responded int
	// Aggregations is the number of server aggregations applied this round:
	// 1 per synchronous round with responders, 0 for a zero-responder
	// round, and the number of buffer flushes in async mode.
	Aggregations int
}

// Result aggregates a full simulation run.
type Result struct {
	// Rounds holds per-round statistics.
	Rounds []RoundStats
	// MaxAccuracy is the paper's acc_m: the best evaluated accuracy over
	// the run, in [0, 1].
	MaxAccuracy float64
	// FinalAccuracy is the accuracy after the last round.
	FinalAccuracy float64
	// MaliciousSubmitted and MaliciousPassed accumulate the DPR numerator
	// and denominator of Eq. 5 over all rounds.
	MaliciousSubmitted, MaliciousPassed int
	// DPRKnown reports whether the defense exposes selection (mKrum,
	// Bulyan, REFD); when false DPR is undefined ("N/A" in the paper).
	DPRKnown bool
}

// DPR returns the defense pass rate of Eq. 5 in percent, or NaN when the
// defense does not report selection or no attacker was ever selected.
func (r *Result) DPR() float64 {
	if !r.DPRKnown || r.MaliciousSubmitted == 0 {
		return math.NaN()
	}
	return float64(r.MaliciousPassed) / float64(r.MaliciousSubmitted) * 100
}
