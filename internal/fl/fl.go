// Package fl implements the federated-learning framework of the paper's
// experimental setup (Section II-A and IV-A): a population of clients, a
// central server that selects a subset per round, local training on private
// shards, pluggable robust aggregation, and the metric accounting for
// attack success rate (ASR) and defense pass rate (DPR).
package fl

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/codec"
	"repro/internal/nn"
)

// Update is one client's submission for a round: the full local model weight
// vector w_i(t+1) (Eq. 1) plus the metadata the server legitimately knows.
type Update struct {
	// ClientID identifies the submitting client.
	ClientID int
	// Weights is the flat local model weight vector.
	Weights []float64
	// NumSamples is the client's reported training-set size n_i (Eq. 2).
	NumSamples int
	// Malicious marks updates crafted by the adversary. The server never
	// reads this field; it exists purely for metric accounting.
	Malicious bool
	// Frame is the compressed form of the update when a codec is active
	// (Weights then holds the reconstruction the server decoded from it).
	// Codec-aware defenses read geometry from it; everything else ignores
	// it and sees only the reconstructed Weights.
	Frame *codec.Frame
}

// Selection is the uniform per-round decision report of an aggregation
// rule: which updates entered the aggregate, with what weight, and — for
// score-producing defenses — the raw per-update score the decision was cut
// from. It is the seam the forensics subsystem audits: every field indexes
// the round's updates slice positionally.
type Selection struct {
	// Accepted lists the indices of updates included in the aggregate; it
	// drives the DPR metric (Eq. 5). nil means the defense does not report
	// selection (median, trimmed mean — "N/A" in the paper); an empty
	// non-nil slice means the defense rejected every update this round.
	Accepted []int
	// Weights holds one aggregation weight per update for weighted rules
	// (FoolsGold); nil means uniform weighting over Accepted.
	Weights []float64
	// Scores holds one benignness score per update for score-producing
	// defenses (REFD's D-score, FoolsGold's logit weight, the Krum family's
	// negated neighbour distance). Higher always means "more benign", so
	// downstream ROC sweeps need no per-defense orientation. nil when the
	// rule produces no scores.
	Scores []float64
	// ScoreName names the Scores semantic ("dscore", "foolsgold-weight",
	// "neg-krum-distance"); empty when Scores is nil.
	ScoreName string
	// Groups attributes each update to the group-tier aggregator that
	// consumed it under hierarchical aggregation; nil for flat rules.
	Groups []int
	// Distances, when non-nil, is the round's pairwise squared-distance
	// matrix over the update weight vectors, shared by distance-based rules
	// (Krum family, Bulyan) so forensic fingerprinting does not recompute
	// the O(n²·d) geometry the defense already paid for.
	Distances [][]float64
}

// Known reports whether the defense exposed its accept/reject decisions.
func (s Selection) Known() bool { return s.Accepted != nil }

// ScoreRanks maps raw benignness scores onto their average ranks
// normalized to (0, 1] (ties share their average rank). Rank order — all
// an ROC sweep consumes — is preserved, while the score scale disappears;
// it is the probability-integral transform that makes scores from
// different contexts (hierarchy groups with different geometries, rounds
// at different training stages) poolable into one sweep.
func ScoreRanks(scores []float64) []float64 {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[order[j]] == scores[order[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			out[order[k]] = avg / float64(n)
		}
		i = j
	}
	return out
}

// SelectAll returns a Selection accepting all n updates, the report of
// rules that aggregate everything while still exposing their decision.
func SelectAll(n int) Selection {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return Selection{Accepted: idx}
}

// Aggregator is a server-side aggregation rule, possibly Byzantine-robust.
type Aggregator interface {
	// Name returns the defense's display name.
	Name() string
	// Aggregate combines the round's updates into new global weights and
	// reports the rule's Selection. Selection-based defenses (Krum-family,
	// Bulyan, FoolsGold, REFD) fill Accepted (which drives the DPR metric)
	// plus their weights/scores; statistics-based defenses (median, trimmed
	// mean) return a zero Selection because "passing" is undefined for them
	// (Eq. 5 discussion in the paper).
	Aggregate(global []float64, updates []Update) (newGlobal []float64, sel Selection, err error)
}

// AggregationObserver receives every server aggregation decision: the
// round's updates (whose Malicious flags are the simulator's ground truth),
// the defense's Selection, and the global weights the updates were judged
// against. A zero-responder or all-filtered round is reported too — with an
// empty updates slice or an empty Accepted — so audit streams never skip
// rounds silently. Implementations are called from the engine goroutine,
// synchronously, once per aggregation (async buffer flushes included).
type AggregationObserver interface {
	ObserveAggregation(round int, global []float64, updates []Update, sel Selection)
}

// AttackContext is everything the adversary may see in one round. The
// fields mirror Table I of the paper: DFA uses only the global models and
// task metadata, whereas the baseline attacks additionally read the benign
// updates oracle.
type AttackContext struct {
	// Round is the current round index, starting at 0.
	Round int
	// Global is the current global weight vector w(t).
	Global []float64
	// PrevGlobal is the previous round's global weight vector w(t−1); equal
	// to Global in round 0.
	PrevGlobal []float64
	// BenignUpdates holds the weight vectors of this round's benign
	// updates. Only knowledge-assuming baseline attacks (LIE, Fang,
	// Min-Max/Min-Sum) may read it; DFA must not.
	BenignUpdates [][]float64
	// NumAttackers is the number of malicious clients selected this round.
	NumAttackers int
	// NumSelected is the total number of clients selected this round.
	NumSelected int
	// TotalClients and TotalAttackers describe the whole population.
	TotalClients, TotalAttackers int
	// NewModel constructs a model with the experiment's architecture; the
	// adversary legitimately knows the architecture because the server
	// distributes the model.
	NewModel func(rng *rand.Rand) *nn.Network
	// Rng is the adversary's private randomness source.
	Rng *rand.Rand
}

// Attack crafts the adversary's submissions for a round.
type Attack interface {
	// Name returns the attack's display name.
	Name() string
	// Craft returns one malicious weight vector per selected attacker. The
	// paper allows all attackers to submit the same update; implementations
	// may instead add small perturbations to evade Sybil defenses.
	Craft(ctx *AttackContext) ([][]float64, error)
}

// ASR computes the attack success rate of Eq. 4: the relative accuracy drop
// from the clean (no attack, no defense) accuracy to the best accuracy the
// global model reached under attack, in percent.
func ASR(cleanAcc, maxAttackedAcc float64) float64 {
	if cleanAcc == 0 {
		return 0
	}
	return (cleanAcc - maxAttackedAcc) / cleanAcc * 100
}

// RoundStats records what happened in a single round, including the
// participation trace of the engine's sampler and churn model.
type RoundStats struct {
	// Round is the round index.
	Round int
	// Accuracy is the global model's test accuracy after aggregation, in
	// [0, 1]; NaN when the round was not evaluated.
	Accuracy float64
	// SelectedMalicious is the number of malicious clients selected.
	SelectedMalicious int
	// PassedMalicious is the number of malicious updates the defense let
	// into the aggregate (−1 when the defense does not report selection).
	PassedMalicious int
	// Selected is the number of clients the sampler picked this round.
	Selected int
	// Dropped counts selected clients the participation model made
	// unavailable (they never trained).
	Dropped int
	// Straggled counts selected clients that trained but missed the round
	// deadline, so their update was discarded.
	Straggled int
	// Responded is the number of updates produced this round (crafted
	// malicious updates included). In sync mode they all reach the round's
	// aggregation; in async mode they are dispatched into the delay buffer
	// and may aggregate in a later round.
	Responded int
	// Aggregations is the number of server aggregations applied this round:
	// 1 per synchronous round with responders, 0 for a zero-responder
	// round, and the number of buffer flushes in async mode.
	Aggregations int
}

// Result aggregates a full simulation run.
type Result struct {
	// Rounds holds per-round statistics.
	Rounds []RoundStats
	// MaxAccuracy is the paper's acc_m: the best evaluated accuracy over
	// the run, in [0, 1].
	MaxAccuracy float64
	// FinalAccuracy is the accuracy after the last round.
	FinalAccuracy float64
	// MaliciousSubmitted and MaliciousPassed accumulate the DPR numerator
	// and denominator of Eq. 5 over all rounds.
	MaliciousSubmitted, MaliciousPassed int
	// DPRKnown reports whether the defense exposes selection (mKrum,
	// Bulyan, REFD); when false DPR is undefined ("N/A" in the paper).
	DPRKnown bool
}

// DPR returns the defense pass rate of Eq. 5 in percent, or NaN when the
// defense does not report selection or no attacker was ever selected.
func (r *Result) DPR() float64 {
	if !r.DPRKnown || r.MaliciousSubmitted == 0 {
		return math.NaN()
	}
	return float64(r.MaliciousPassed) / float64(r.MaliciousSubmitted) * 100
}
