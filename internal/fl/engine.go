package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/codec"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// Transport abstracts how the engine obtains updates from a set of clients:
// in-process worker-pool training (fl.Simulation) or real socket
// round-trips (flnet.Server). The engine has already applied sampling and
// the simulated participation model; Collect receives only the clients
// expected to respond, and may return fewer updates when the transport
// itself loses clients (real stragglers missing a network deadline).
type Transport interface {
	// Collect obtains updates from ids, training from global (with prev
	// available to adversarial trainers). Clients that fail to deliver in
	// time are simply absent from the returned slice.
	Collect(round int, ids []int, global, prev []float64) ([]Update, error)
}

// Engine is the single federated round loop shared by every transport. It
// owns client selection, the participation model, attack-context
// construction, aggregation, the server optimizer, DPR/ASR metric
// accounting, evaluation cadence, previous-global tracking, the async
// update buffer, and the per-round checkpoint hook. fl.Simulation and
// flnet.Server are thin adapters over it.
//
// With the zero-value Scenario the engine consumes its RNG streams exactly
// as the two pre-engine round loops did, so fixed-seed runs reproduce the
// pre-refactor results bit-identically (see TestParallelDeterminism).
type Engine struct {
	// TotalClients is N, the population size.
	TotalClients int
	// PerRound is K, the default uniform sampler's selection size.
	PerRound int
	// Rounds is the number of engine steps.
	Rounds int
	// StartRound skips rounds before it, replaying the selection and
	// participation RNG streams so a checkpoint-resumed run selects the same
	// clients per round as an uninterrupted one (sync mode only).
	StartRound int
	// EvalEvery evaluates every EvalEvery rounds (<= 0 means every round);
	// the final round is always evaluated.
	EvalEvery int
	// Seed derives every engine RNG stream.
	Seed int64

	// Scenario selects the sampler, participation model, server optimizer
	// and sync/async aggregation mode.
	Scenario Scenario

	// Transport produces updates for the responding clients.
	Transport Transport
	// Aggregator is the server's (possibly Byzantine-robust) rule.
	Aggregator Aggregator

	// Attack, when non-nil, crafts updates for the responding clients
	// flagged in Malicious — the simulator's server-side adversary. Nil when
	// adversaries live behind the transport (flnet), in which case every
	// responder is contacted through Collect.
	Attack Attack
	// Malicious flags the adversary-controlled client IDs (may be nil).
	Malicious []bool
	// IsMalicious, when non-nil, replaces the Malicious slice lookup with an
	// O(1) predicate so population-scale runs never hold O(N) flag storage
	// (see internal/population's placement models). Requires TotalAttackers.
	IsMalicious func(id int) bool
	// TotalAttackers overrides the Malicious scan when positive — the
	// population-wide attacker count the AttackContext reports. Required
	// alongside IsMalicious, which cannot be cheaply counted.
	TotalAttackers int
	// NewModel hands the attack the experiment's architecture.
	NewModel func(rng *rand.Rand) *nn.Network
	// AttackSamples is the plausible n_i crafted updates report.
	AttackSamples int

	// Observer, when non-nil, receives every aggregation decision (updates,
	// Selection, global weights) — the forensics audit hook. Zero-responder
	// rounds are reported with an empty updates slice so detection metrics
	// record them instead of silently skipping.
	Observer AggregationObserver

	// Codec, when enabled, compresses every update the round produced
	// before aggregation: each update gains a codec frame and its Weights
	// are replaced by the frame's reconstruction, so the simulator
	// exercises exactly the lossy view a compressed socket run gives the
	// server. Updates that already carry a frame (decoded off the wire by
	// the flnet transport) pass through untouched.
	Codec codec.Spec

	// Evaluate measures the global model's accuracy; nil disables
	// evaluation (the flnet server without a test set).
	Evaluate func(weights []float64) (float64, error)
	// OnRound, when non-nil, runs after every completed round with the
	// round's stats, the current and previous global weights and the running
	// maximum accuracy — the checkpoint hook.
	OnRound func(stats RoundStats, weights, prev []float64, maxAcc float64) error

	// InitialMax seeds the running maximum accuracy (checkpoint resume).
	InitialMax float64
	// InitialPrev overrides the initial previous-global vector (checkpoint
	// resume hands the w(t−1) an uninterrupted run would have had).
	InitialPrev []float64

	// Halt, when non-nil, is polled at every round boundary; returning true
	// stops the loop before the next round starts, keeping all completed
	// results — the graceful-drain hook. A drained run is indistinguishable
	// from one configured with fewer rounds: no round is ever cut mid-flight.
	Halt func() bool

	// Telemetry, when non-nil, receives per-round and per-phase spans and
	// the codec byte counts. Pure observation: it never touches the RNG
	// streams, the update set or the summation order, so a fixed-seed run is
	// bit-identical with telemetry enabled or nil (see
	// TestTelemetryOnOffBitIdentical), and the nil path costs nothing.
	Telemetry *telemetry.EngineTelemetry
}

// pendingUpdate is one in-flight update in async mode.
type pendingUpdate struct {
	u Update
	// dispatched is the engine step the client trained at.
	dispatched int
	// base is the global weight vector the client trained from (shared by
	// all updates dispatched the same step).
	base []float64
}

// Run executes the engine from the given initial global weights and returns
// the result together with the final global weight vector.
func (e *Engine) Run(initial []float64) (*Result, []float64, error) {
	if e.Transport == nil {
		return nil, nil, errors.New("fl: engine transport must not be nil")
	}
	if e.Aggregator == nil {
		return nil, nil, errors.New("fl: engine aggregator must not be nil")
	}
	if err := e.Scenario.Validate(); err != nil {
		return nil, nil, err
	}
	sampler := e.Scenario.Sampler
	if sampler == nil {
		sampler = UniformSampler{K: e.PerRound}
	}
	part := e.Scenario.Participation
	if part == nil {
		part = FullParticipation{}
	}
	opt := e.Scenario.ServerOpt
	if opt == nil {
		opt = PlainApply{}
	}
	async := e.Scenario.Async
	if async != nil && e.StartRound > 0 {
		return nil, nil, errors.New("fl: async mode cannot resume mid-run (in-flight updates are not checkpointed)")
	}
	evalEvery := e.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	// Three independent streams so new axes never perturb the legacy ones:
	// selRng and atkRng keep their pre-engine seeds (bit-compatibility),
	// partRng and asyncRng are consumed only by non-default scenarios.
	selRng := rand.New(rand.NewSource(e.Seed ^ 0x5DEECE66D))
	atkRng := rand.New(rand.NewSource(e.Seed ^ 0x2545F4914F6CDD1D))
	partRng := rand.New(rand.NewSource(e.Seed ^ 0x6A09E667F3BCC909))
	asyncRng := rand.New(rand.NewSource(e.Seed ^ 0x3C6EF372FE94F82A))

	// Replay the streams a checkpoint-resumed run consumed before the
	// checkpoint, so it selects the same clients as an uninterrupted one.
	for r := 0; r < e.StartRound; r++ {
		for _, id := range sampler.Sample(selRng, r, e.TotalClients) {
			_ = part.Outcome(partRng, r, id)
		}
	}

	isMalicious := e.IsMalicious
	if isMalicious == nil {
		isMalicious = func(id int) bool { return id < len(e.Malicious) && e.Malicious[id] }
	}
	totalAttackers := e.TotalAttackers
	if totalAttackers == 0 {
		for _, m := range e.Malicious {
			if m {
				totalAttackers++
			}
		}
	}

	if err := e.Codec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("fl: codec: %w", err)
	}
	// NewEncoder returns nil for a disabled spec; with EF enabled it also
	// carries per-client residuals across rounds, so it must live for the
	// whole run.
	enc := codec.NewEncoder(e.Codec)

	res := &Result{MaxAccuracy: e.InitialMax, FinalAccuracy: math.NaN()}
	global := initial
	prev := append([]float64(nil), global...)
	if len(e.InitialPrev) == len(global) && e.StartRound > 0 {
		prev = e.InitialPrev
	}

	var arrivals [][]pendingUpdate
	var buffer []pendingUpdate
	if async != nil {
		arrivals = make([][]pendingUpdate, e.Rounds)
	}

	for round := e.StartRound; round < e.Rounds; round++ {
		if e.Halt != nil && e.Halt() {
			break
		}
		// Spans use explicit End calls (not defer) so the telemetry-nil path
		// stays allocation-free; error returns may drop an open span, which
		// is fine — the run is over.
		roundSpan := e.Telemetry.Round()
		spSelect := e.Telemetry.Phase(telemetry.PhaseSelect)
		selected := sampler.Sample(selRng, round, e.TotalClients)
		stats := RoundStats{
			Round:           round,
			Accuracy:        math.NaN(),
			PassedMalicious: -1,
			Selected:        len(selected),
		}

		var responders []int
		for _, id := range selected {
			switch part.Outcome(partRng, round, id) {
			case FateDropped:
				stats.Dropped++
			case FateStraggled:
				stats.Straggled++
			default:
				responders = append(responders, id)
			}
		}

		var benignIDs, attackerIDs []int
		if e.Attack != nil {
			for _, id := range responders {
				if isMalicious(id) {
					attackerIDs = append(attackerIDs, id)
				} else {
					benignIDs = append(benignIDs, id)
				}
			}
		} else {
			benignIDs = responders
		}
		stats.SelectedMalicious = len(attackerIDs)
		spSelect.End()

		spCollect := e.Telemetry.Phase(telemetry.PhaseCollect)
		e.Telemetry.AddBytesOut(8 * len(global) * len(benignIDs))
		updates, err := e.Transport.Collect(round, benignIDs, global, prev)
		spCollect.End()
		if err != nil {
			return nil, nil, fmt.Errorf("round %d: %w", round, err)
		}

		if len(attackerIDs) > 0 && e.Attack != nil {
			spAttack := e.Telemetry.Phase(telemetry.PhaseAttack)
			benignVecs := make([][]float64, len(updates))
			for i, u := range updates {
				benignVecs[i] = u.Weights
			}
			ctx := &AttackContext{
				Round:          round,
				Global:         global,
				PrevGlobal:     prev,
				BenignUpdates:  benignVecs,
				NumAttackers:   len(attackerIDs),
				NumSelected:    len(selected),
				TotalClients:   e.TotalClients,
				TotalAttackers: totalAttackers,
				NewModel:       e.NewModel,
				Rng:            atkRng,
			}
			malVecs, err := e.Attack.Craft(ctx)
			spAttack.End()
			if err != nil {
				return nil, nil, fmt.Errorf("round %d: attack %s: %w", round, e.Attack.Name(), err)
			}
			if len(malVecs) != len(attackerIDs) {
				return nil, nil, fmt.Errorf("round %d: attack returned %d vectors for %d attackers", round, len(malVecs), len(attackerIDs))
			}
			for i, id := range attackerIDs {
				if len(malVecs[i]) != len(global) {
					return nil, nil, fmt.Errorf("round %d: malicious vector %d has length %d, want %d", round, i, len(malVecs[i]), len(global))
				}
				updates = append(updates, Update{
					ClientID:   id,
					Weights:    malVecs[i],
					NumSamples: e.AttackSamples,
					Malicious:  true,
				})
			}
		}
		// Compress the round's submissions: attackers ride the same wire
		// format as everyone else, and the server's view of each update
		// becomes the frame's reconstruction — exactly what a compressed
		// socket run would decode. Updates that already carry a frame
		// (flnet decoded them off the wire) pass through untouched.
		if enc != nil {
			spEncode := e.Telemetry.Phase(telemetry.PhaseEncode)
			for i := range updates {
				if updates[i].Frame != nil {
					continue
				}
				f := enc.Encode(updates[i].ClientID, round, global, updates[i].Weights)
				updates[i].Frame = f
				updates[i].Weights = f.Reconstruct(global)
				e.Telemetry.AddBytesIn(codec.WireSize(f))
			}
			spEncode.End()
		}
		if e.Telemetry != nil {
			// Frames entering aggregation this round, whether encoded here or
			// decoded off the wire by the flnet transport (which accounts the
			// real wire bytes itself — byte ownership never overlaps).
			frames := 0
			for i := range updates {
				if updates[i].Frame != nil {
					frames++
				}
			}
			e.Telemetry.AddFrames(frames)
		}
		res.MaliciousSubmitted += len(attackerIDs)
		stats.Responded = len(updates)

		if async == nil {
			if len(updates) > 0 {
				if err := e.applyAggregation(round, updates, &global, &prev, opt, &stats, res); err != nil {
					return nil, nil, err
				}
			} else if e.Observer != nil {
				// A zero-responder round must be recorded (as a zero-selection
				// round) rather than silently skipped, mirroring the engine's
				// own trace. The Selection stays zero: the defense never ran,
				// so no accept/reject decision exists to report.
				e.Observer.ObserveAggregation(round, global, nil, Selection{})
			}
		} else {
			if len(updates) > 0 {
				base := append([]float64(nil), global...)
				for _, u := range updates {
					at := round + asyncRng.Intn(async.MaxDelay+1)
					if at >= e.Rounds {
						at = e.Rounds - 1
					}
					arrivals[at] = append(arrivals[at], pendingUpdate{u: u, dispatched: round, base: base})
				}
			}
			buffer = append(buffer, arrivals[round]...)
			arrivals[round] = nil
			for len(buffer) >= async.Buffer || (round == e.Rounds-1 && len(buffer) > 0) {
				n := async.Buffer
				if n > len(buffer) {
					n = len(buffer)
				}
				batch := buffer[:n:n]
				buffer = buffer[n:]
				virt := make([]Update, len(batch))
				for i, p := range batch {
					// Staleness-discounted virtual weight vector: the
					// client's movement away from the global it trained
					// from, scaled by FedBuff's 1/√(1+τ), re-anchored at
					// the current global.
					discount := 1 / math.Sqrt(1+float64(round-p.dispatched))
					w := make([]float64, len(global))
					for j := range w {
						w[j] = global[j] + discount*(p.u.Weights[j]-p.base[j])
					}
					virt[i] = Update{
						ClientID:   p.u.ClientID,
						Weights:    w,
						NumSamples: p.u.NumSamples,
						Malicious:  p.u.Malicious,
					}
				}
				if err := e.applyAggregation(round, virt, &global, &prev, opt, &stats, res); err != nil {
					return nil, nil, err
				}
			}
			if e.Observer != nil && len(updates) == 0 && stats.Aggregations == 0 {
				// Same contract as the synchronous branch: an engine step
				// that produced no updates and flushed no buffer is recorded
				// as a zero-selection round, never skipped.
				e.Observer.ObserveAggregation(round, global, nil, Selection{})
			}
		}

		if e.Evaluate != nil && ((round+1)%evalEvery == 0 || round == e.Rounds-1) {
			spEval := e.Telemetry.Phase(telemetry.PhaseEval)
			acc, err := e.Evaluate(global)
			spEval.End()
			if err != nil {
				return nil, nil, err
			}
			stats.Accuracy = acc
			if acc > res.MaxAccuracy {
				res.MaxAccuracy = acc
			}
			res.FinalAccuracy = acc
		}
		res.Rounds = append(res.Rounds, stats)
		if e.OnRound != nil {
			spCkpt := e.Telemetry.Phase(telemetry.PhaseCheckpoint)
			err := e.OnRound(stats, global, prev, res.MaxAccuracy)
			spCkpt.End()
			if err != nil {
				return nil, nil, err
			}
		}
		roundSpan.End()
	}
	return res, global, nil
}

// applyAggregation runs one server aggregation: the robust rule, the DPR
// accounting for selection-reporting defenses, the audit observer and the
// server optimizer.
func (e *Engine) applyAggregation(round int, updates []Update, global, prev *[]float64, opt ServerOptimizer, stats *RoundStats, res *Result) error {
	spAgg := e.Telemetry.Phase(telemetry.PhaseAggregate)
	newGlobal, sel, err := e.Aggregator.Aggregate(*global, updates)
	spAgg.End()
	if err != nil {
		return fmt.Errorf("round %d: defense %s: %w", round, e.Aggregator.Name(), err)
	}
	if len(newGlobal) != len(*global) {
		return fmt.Errorf("round %d: defense returned %d weights, want %d", round, len(newGlobal), len(*global))
	}
	if sel.Known() {
		res.DPRKnown = true
		passed := 0
		for _, idx := range sel.Accepted {
			if idx < 0 || idx >= len(updates) {
				return fmt.Errorf("round %d: defense selected out-of-range update %d", round, idx)
			}
			if updates[idx].Malicious {
				passed++
			}
		}
		if stats.PassedMalicious < 0 {
			stats.PassedMalicious = 0
		}
		stats.PassedMalicious += passed
		res.MaliciousPassed += passed
	}
	if e.Observer != nil {
		e.Observer.ObserveAggregation(round, *global, updates, sel)
	}
	spOpt := e.Telemetry.Phase(telemetry.PhaseServerOpt)
	next := opt.Apply(*global, newGlobal)
	spOpt.End()
	if len(next) != len(*global) {
		return fmt.Errorf("round %d: server optimizer %s returned %d weights, want %d", round, opt.Name(), len(next), len(*global))
	}
	*prev = *global
	*global = next
	stats.Aggregations++
	return nil
}
