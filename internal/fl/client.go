package fl

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BenignClient owns a private data shard and faithfully executes local
// training (Eq. 1): initialize from the global model, run LocalEpochs of
// minibatch SGD on the shard, and return the resulting weights.
//
// A client does not have to own a model: the simulation's bounded worker
// pool passes a reused per-worker model (with its scratch arena) to
// TrainWith, so a 100-client population does not hold 100 model replicas.
// Standalone clients (the network protocol, examples) construct one with a
// model and call Train.
type BenignClient struct {
	id          int
	data        *dataset.Dataset
	shard       []int
	model       *nn.Network
	opt         *nn.SGD
	localEpochs int
	batchSize   int
	rng         *rand.Rand
	scratch     []int
}

// NewBenignClient creates a client training on data[shard]. model may be
// nil when every caller provides the model via TrainWith; a non-nil model
// is owned by the client and gets a scratch arena attached.
func NewBenignClient(id int, data *dataset.Dataset, shard []int, model *nn.Network, lr float64, localEpochs, batchSize int, rng *rand.Rand) *BenignClient {
	if model != nil && model.Scratch() == nil {
		model.SetScratch(tensor.NewPool())
	}
	return &BenignClient{
		id:          id,
		data:        data,
		shard:       append([]int(nil), shard...),
		model:       model,
		opt:         nn.NewSGD(lr, 0),
		localEpochs: localEpochs,
		batchSize:   batchSize,
		rng:         rng,
		scratch:     make([]int, len(shard)),
	}
}

// ID returns the client identifier.
func (c *BenignClient) ID() int { return c.id }

// NumSamples returns the client's shard size n_i.
func (c *BenignClient) NumSamples() int { return len(c.shard) }

// Train runs local training from the given global weights on the client's
// own model and returns the client's update.
func (c *BenignClient) Train(global []float64) (Update, error) {
	return c.TrainWith(global, c.model)
}

// TrainWith runs local training from the given global weights on the
// provided model (typically a reused worker model). The model's parameters
// are fully overwritten before training, so which worker trains which
// client never influences the result; the client's private randomness
// drives the shard shuffle exactly as if it owned the model.
func (c *BenignClient) TrainWith(global []float64, model *nn.Network) (Update, error) {
	if err := model.SetWeightVector(global); err != nil {
		return Update{}, err
	}
	copy(c.scratch, c.shard)
	for e := 0; e < c.localEpochs; e++ {
		c.rng.Shuffle(len(c.scratch), func(i, j int) {
			c.scratch[i], c.scratch[j] = c.scratch[j], c.scratch[i]
		})
		for start := 0; start < len(c.scratch); start += c.batchSize {
			end := start + c.batchSize
			if end > len(c.scratch) {
				end = len(c.scratch)
			}
			x, labels := c.data.Batch(c.scratch[start:end])
			nn.TrainBatch(model, c.opt, x, labels)
		}
	}
	return Update{
		ClientID:   c.id,
		Weights:    model.WeightVector(),
		NumSamples: len(c.shard),
	}, nil
}
