package fl

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// BenignClient owns a private data shard and faithfully executes local
// training (Eq. 1): initialize from the global model, run LocalEpochs of
// minibatch SGD on the shard, and return the resulting weights.
type BenignClient struct {
	id          int
	data        *dataset.Dataset
	shard       []int
	model       *nn.Network
	opt         *nn.SGD
	localEpochs int
	batchSize   int
	rng         *rand.Rand
	scratch     []int
}

// NewBenignClient creates a client training on data[shard].
func NewBenignClient(id int, data *dataset.Dataset, shard []int, model *nn.Network, lr float64, localEpochs, batchSize int, rng *rand.Rand) *BenignClient {
	return &BenignClient{
		id:          id,
		data:        data,
		shard:       append([]int(nil), shard...),
		model:       model,
		opt:         nn.NewSGD(lr, 0),
		localEpochs: localEpochs,
		batchSize:   batchSize,
		rng:         rng,
		scratch:     make([]int, len(shard)),
	}
}

// ID returns the client identifier.
func (c *BenignClient) ID() int { return c.id }

// NumSamples returns the client's shard size n_i.
func (c *BenignClient) NumSamples() int { return len(c.shard) }

// Train runs local training from the given global weights and returns the
// client's update.
func (c *BenignClient) Train(global []float64) (Update, error) {
	if err := c.model.SetWeightVector(global); err != nil {
		return Update{}, err
	}
	copy(c.scratch, c.shard)
	for e := 0; e < c.localEpochs; e++ {
		c.rng.Shuffle(len(c.scratch), func(i, j int) {
			c.scratch[i], c.scratch[j] = c.scratch[j], c.scratch[i]
		})
		for start := 0; start < len(c.scratch); start += c.batchSize {
			end := start + c.batchSize
			if end > len(c.scratch) {
				end = len(c.scratch)
			}
			x, labels := c.data.Batch(c.scratch[start:end])
			nn.TrainBatch(c.model, c.opt, x, labels)
		}
	}
	return Update{
		ClientID:   c.id,
		Weights:    c.model.WeightVector(),
		NumSamples: len(c.shard),
	}, nil
}
