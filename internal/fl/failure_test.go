package fl

// Failure-injection tests: the round loop must surface malformed behaviour
// from attacks and defenses as errors instead of corrupting the global
// model or the metrics.

import (
	"errors"
	"testing"
)

// brokenAttack returns the wrong number of malicious vectors.
type brokenAttack struct{ count int }

func (brokenAttack) Name() string { return "broken" }

func (a brokenAttack) Craft(ctx *AttackContext) ([][]float64, error) {
	out := make([][]float64, a.count)
	for i := range out {
		out[i] = make([]float64, len(ctx.Global))
	}
	return out, nil
}

// shortAttack returns vectors of the wrong length.
type shortAttack struct{}

func (shortAttack) Name() string { return "short" }

func (shortAttack) Craft(ctx *AttackContext) ([][]float64, error) {
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		out[i] = make([]float64, 3)
	}
	return out, nil
}

// errorAttack always fails.
type errorAttack struct{}

func (errorAttack) Name() string { return "error" }

func (errorAttack) Craft(*AttackContext) ([][]float64, error) {
	return nil, errors.New("synthesizer exploded")
}

// badLengthAggregator returns a wrong-length global vector.
type badLengthAggregator struct{}

func (badLengthAggregator) Name() string { return "badlength" }

func (badLengthAggregator) Aggregate(_ []float64, updates []Update) ([]float64, Selection, error) {
	return make([]float64, 3), Selection{}, nil
}

// badSelectionAggregator reports an out-of-range selected index.
type badSelectionAggregator struct{}

func (badSelectionAggregator) Name() string { return "badselection" }

func (badSelectionAggregator) Aggregate(_ []float64, updates []Update) ([]float64, Selection, error) {
	out := make([]float64, len(updates[0].Weights))
	return out, Selection{Accepted: []int{len(updates) + 5}}, nil
}

// errorAggregator always fails.
type errorAggregator struct{}

func (errorAggregator) Name() string { return "erroragg" }

func (errorAggregator) Aggregate(_ []float64, _ []Update) ([]float64, Selection, error) {
	return nil, Selection{}, errors.New("server meltdown")
}

func mustSim(t *testing.T, agg Aggregator, atk Attack) *Simulation {
	t.Helper()
	train, test, shards, newModel := tinySetup(t, 42)
	cfg := tinyConfig()
	cfg.Rounds = 4
	// Guarantee attacker participation quickly.
	cfg.AttackerFrac = 0.5
	sim, err := NewSimulation(cfg, train, test, shards, newModel, agg, atk)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestAttackCountMismatchFailsRound(t *testing.T) {
	sim := mustSim(t, meanAggregator{}, brokenAttack{count: 99})
	if _, err := sim.Run(); err == nil {
		t.Fatal("expected error for wrong malicious vector count")
	}
}

func TestAttackVectorLengthMismatchFailsRound(t *testing.T) {
	sim := mustSim(t, meanAggregator{}, shortAttack{})
	if _, err := sim.Run(); err == nil {
		t.Fatal("expected error for wrong malicious vector length")
	}
}

func TestAttackErrorPropagates(t *testing.T) {
	sim := mustSim(t, meanAggregator{}, errorAttack{})
	_, err := sim.Run()
	if err == nil {
		t.Fatal("expected attack error to propagate")
	}
}

func TestAggregatorLengthMismatchFailsRound(t *testing.T) {
	sim := mustSim(t, badLengthAggregator{}, nil)
	if _, err := sim.Run(); err == nil {
		t.Fatal("expected error for wrong aggregate length")
	}
}

func TestAggregatorBadSelectionFailsRound(t *testing.T) {
	sim := mustSim(t, badSelectionAggregator{}, zeroAttack{})
	if _, err := sim.Run(); err == nil {
		t.Fatal("expected error for out-of-range selection index")
	}
}

func TestAggregatorErrorPropagates(t *testing.T) {
	sim := mustSim(t, errorAggregator{}, nil)
	if _, err := sim.Run(); err == nil {
		t.Fatal("expected aggregator error to propagate")
	}
}
