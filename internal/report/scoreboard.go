package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"repro/internal/experiment"
)

// DetectionScoreboard writes the cross-defense detection-quality table:
// one row per (defense, attack, attacker fraction) cell carrying the
// forensics subsystem's ROC metrics (AUC, TPR at a 1% false-positive
// budget) next to the operating rates and the paper's DPR, so detection
// quality can be read against the endpoint metric it explains. Cells
// without a forensics summary render as N/A.
func DetectionScoreboard(w io.Writer, outs []*experiment.Outcome) error {
	rows := append([]*experiment.Outcome(nil), outs...)
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i].Config, rows[j].Config
		if a.Defense != b.Defense {
			return a.Defense < b.Defense
		}
		if a.Attack != b.Attack {
			return a.Attack < b.Attack
		}
		return a.AttackerFrac > b.AttackerFrac
	})
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "defense\tattack\tattacker%%\tAUC\tTPR@1%%FPR\tTPR%%\tFPR%%\tF1\tDPR%%\n")
	na := func(v float64) string {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "N/A"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, o := range rows {
		auc, tprAt, tpr, fpr, f1 := math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		if d := o.Detection; d != nil {
			auc, tprAt, f1 = d.AUC, d.TPRAt1FPR, d.F1
			tpr, fpr = d.TPR*100, d.FPR*100
		}
		fmt.Fprintf(tw, "%s\t%s\t%g\t%s\t%s\t%s\t%s\t%s\t%s\n",
			o.Config.Defense, o.Config.Attack, o.Config.AttackerFrac*100,
			na(auc), na(tprAt), na(tpr), na(fpr), na(f1), na(o.DPR))
	}
	return tw.Flush()
}
