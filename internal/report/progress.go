package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/experiment"
)

// Progress returns a grid progress callback that streams one line per
// completed cell to w: cells-done/total, the cell's identity, whether it
// was replayed from the run store or failed, and the estimated time
// remaining. The runner serializes event delivery, so the callback needs
// no locking.
func Progress(w io.Writer) func(experiment.ProgressEvent) {
	return func(ev experiment.ProgressEvent) {
		cell := cellLabel(ev.Config)
		status := ""
		switch {
		case ev.Err != nil:
			status = fmt.Sprintf(" FAILED: %v", ev.Err)
		case ev.Skipped:
			status = " (resumed from store)"
		}
		eta := ""
		if ev.ETA > 0 {
			eta = fmt.Sprintf(" eta %s", ev.ETA.Round(time.Second))
		}
		fmt.Fprintf(w, "[%d/%d] %s%s elapsed %s%s\n",
			ev.Done, ev.Total, cell, status, ev.Elapsed.Round(time.Millisecond), eta)
	}
}

// cellLabel identifies a grid cell for humans. Beyond the headline
// dataset/attack/defense/beta, it appends whichever parameters
// distinguish cells in the paper's single-axis sweeps (attacker fraction,
// |S|, regularization, perturbation, seed), so lines stay unique in grids
// like samplesize or fig6 where the headline fields are constant.
func cellLabel(c experiment.Config) string {
	label := fmt.Sprintf("%s/%s/%s beta=%g", c.Dataset, c.Attack, c.Defense, c.Beta)
	if c.AttackerFrac > 0 {
		label += fmt.Sprintf(" frac=%g", c.AttackerFrac)
	}
	if c.SampleCount > 0 {
		label += fmt.Sprintf(" |S|=%d", c.SampleCount)
	}
	if c.NoReg {
		label += " noreg"
	}
	if c.PerturbStd > 0 {
		label += fmt.Sprintf(" perturb=%g", c.PerturbStd)
	}
	if c.Seed != 1 {
		label += fmt.Sprintf(" seed=%d", c.Seed)
	}
	return label
}
