package report

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/experiment"
)

// DashboardHint writes the one-time startup line pointing the operator at
// the embedded dashboard, from the ops listener's resolved address — so an
// ephemeral ":0" bind prints its real port. An unspecified host (":9090",
// "0.0.0.0:…", "[::]:…") is rewritten to localhost: that is the URL a
// browser on the operator's machine can actually open.
func DashboardHint(w io.Writer, bound string) {
	if host, port, err := net.SplitHostPort(bound); err == nil {
		if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
			bound = net.JoinHostPort("localhost", port)
		}
	}
	fmt.Fprintf(w, "dashboard: http://%s/dash/\n", bound)
}

// Progress returns a grid progress callback that streams one line per
// completed cell to w: cells-done/total, the cell's identity, whether it
// was replayed from the run store or failed, and the estimated time
// remaining. When the runner carries sweep telemetry, each line also
// reports this worker's fleet contribution: cells it executed, its
// throughput, and claim attempts lost to other workers' live leases. The
// runner serializes event delivery, so the callback needs no locking.
func Progress(w io.Writer) func(experiment.ProgressEvent) {
	return func(ev experiment.ProgressEvent) {
		cell := cellLabel(ev.Config)
		status := ""
		switch {
		case ev.Err != nil:
			status = fmt.Sprintf(" FAILED: %v", ev.Err)
		case ev.Remote:
			status = " (completed by another worker)"
		case ev.Skipped:
			status = " (resumed from store)"
		}
		eta := ""
		if ev.ETA > 0 {
			eta = fmt.Sprintf(" eta %s", ev.ETA.Round(time.Second))
		}
		fleet := ""
		if ev.WorkerCells > 0 {
			fleet = fmt.Sprintf(" worker %d cells %.1f/min", ev.WorkerCells, ev.CellsPerMin)
			if ev.LeaseConflicts > 0 {
				fleet += fmt.Sprintf(" conflicts %d", ev.LeaseConflicts)
			}
		}
		fmt.Fprintf(w, "[%d/%d] %s%s elapsed %s%s%s\n",
			ev.Done, ev.Total, cell, status, ev.Elapsed.Round(time.Millisecond), eta, fleet)
	}
}

// cellLabel identifies a grid cell for humans. Beyond the headline
// dataset/attack/defense/beta, it appends whichever parameters distinguish
// cells in single-axis sweeps — the paper's (attacker fraction, |S|,
// regularization, perturbation, seed), the engine's scenario axes
// (partition, sampler, churn, server optimizer, async) and the population
// axes (backend, placement, hierarchy) — so progress/ETA lines stay unique
// in grids like samplesize, participation or productionscale where the
// headline fields are constant.
func cellLabel(c experiment.Config) string {
	label := fmt.Sprintf("%s/%s/%s beta=%g", c.Dataset, c.Attack, c.Defense, c.Beta)
	if c.AttackerFrac > 0 {
		label += fmt.Sprintf(" frac=%g", c.AttackerFrac)
	}
	if c.SampleCount > 0 {
		label += fmt.Sprintf(" |S|=%d", c.SampleCount)
	}
	if c.NoReg {
		label += " noreg"
	}
	if c.PerturbStd > 0 {
		label += fmt.Sprintf(" perturb=%g", c.PerturbStd)
	}
	if c.Partition != "" {
		label += " part=" + c.Partition
	}
	if c.Sampler != "" {
		label += fmt.Sprintf(" samp=%s", c.Sampler)
		if c.SampleRate > 0 {
			label += fmt.Sprintf(":%g", c.SampleRate)
		}
	}
	if c.DropoutProb > 0 || c.StragglerProb > 0 {
		label += fmt.Sprintf(" churn=%g/%g", c.DropoutProb, c.StragglerProb)
	}
	if c.ServerOpt != "" {
		label += " sopt=" + c.ServerOpt
	}
	if c.AsyncBuffer > 0 {
		label += fmt.Sprintf(" async=%d", c.AsyncBuffer)
	}
	if c.Population != "" {
		label += fmt.Sprintf(" pop=%s:N=%d", c.Population, c.TotalClients)
	}
	if c.Placement != "" {
		label += " place=" + c.Placement
	}
	if c.Groups > 0 {
		label += fmt.Sprintf(" groups=%d", c.Groups)
	}
	if c.Seed != 1 {
		label += fmt.Sprintf(" seed=%d", c.Seed)
	}
	return label
}
