package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/forensics"
)

func detectionOutcome(defense, attack string, frac, auc, tprAt, tpr, fpr float64) *experiment.Outcome {
	return &experiment.Outcome{
		Config: experiment.Config{
			Dataset: "fashion-sim", Attack: attack, Defense: defense,
			Beta: 0.5, AttackerFrac: frac, Seed: 1, Rounds: 12, Forensics: true,
		},
		CleanAcc: 0.85, MaxAcc: 0.8, FinalAcc: 0.79, ASR: 5, DPR: 40,
		Detection: &forensics.Summary{
			Defense: defense, ScoreName: "dscore",
			Aggregations: 12, DecisionRounds: 12,
			Confusion: forensics.Confusion{TP: 8, FP: 2, TN: 90, FN: 2},
			TPR:       tpr, FPR: fpr, Precision: 0.8, F1: 0.8,
			AUC: auc, TPRAt1FPR: tprAt, ScorePairs: 120, ReservoirLen: 120,
		},
	}
}

func TestDetectionScoreboard(t *testing.T) {
	outs := []*experiment.Outcome{
		detectionOutcome("refd", "minmax", 0.01, 0.91, 0.55, 0.8, 0.02),
		detectionOutcome("mkrum", "minmax", 0.2, 0.77, 0.30, 0.6, 0.25),
		sampleOutcomes()[1], // no forensics: must render as N/A, not crash
	}
	var buf bytes.Buffer
	if err := DetectionScoreboard(&buf, outs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("scoreboard has %d lines, want header + 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "AUC") || !strings.Contains(lines[0], "TPR@1%FPR") {
		t.Fatalf("header missing detection columns: %s", lines[0])
	}
	// Sorted by defense: median (no forensics) < mkrum < refd.
	if !strings.HasPrefix(lines[1], "median") || !strings.HasPrefix(lines[2], "mkrum") || !strings.HasPrefix(lines[3], "refd") {
		t.Fatalf("rows out of order:\n%s", out)
	}
	if !strings.Contains(lines[3], "0.91") || !strings.Contains(lines[3], "0.55") {
		t.Fatalf("refd row missing AUC/TPR@1%%FPR: %s", lines[3])
	}
	if !strings.Contains(lines[1], "N/A") {
		t.Fatalf("forensics-off row should render N/A: %s", lines[1])
	}
}

func TestRecordDetectionColumns(t *testing.T) {
	r := FromOutcome(detectionOutcome("refd", "minmax", 0.01, 0.913, 0.55, 0.8, 0.021))
	if r.DetectionAUC == nil || *r.DetectionAUC != 0.91 {
		t.Fatalf("DetectionAUC = %v", r.DetectionAUC)
	}
	if r.DetectionTPRPct == nil || *r.DetectionTPRPct != 80 {
		t.Fatalf("DetectionTPRPct = %v", r.DetectionTPRPct)
	}
	if r.DetectionFPRPct == nil || *r.DetectionFPRPct != 2.1 {
		t.Fatalf("DetectionFPRPct = %v", r.DetectionFPRPct)
	}
	// NaN metrics (no scores) map to nil, and forensics-off rows stay bare.
	nan := detectionOutcome("mkrum", "lie", 0.2, math.NaN(), math.NaN(), 0.5, 0.1)
	rn := FromOutcome(nan)
	if rn.DetectionAUC != nil || rn.DetectionTPRAt1FPR != nil {
		t.Fatalf("NaN detection metrics should map to nil: %+v", rn)
	}
	off := FromOutcome(sampleOutcomes()[0])
	if off.DetectionAUC != nil || off.DetectionTPRPct != nil {
		t.Fatal("forensics-off record grew detection fields")
	}
}
