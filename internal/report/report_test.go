package report

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"repro/internal/experiment"
)

func sampleOutcomes() []*experiment.Outcome {
	return []*experiment.Outcome{
		{
			Config: experiment.Config{
				Dataset: "fashion-sim", Attack: "dfa-r", Defense: "mkrum",
				Beta: 0.5, AttackerFrac: 0.2, Seed: 1, Rounds: 12,
			},
			CleanAcc: 0.855, MaxAcc: 0.70, FinalAcc: 0.65, ASR: 18.128, DPR: 75.0,
		},
		{
			Config: experiment.Config{
				Dataset: "cifar-sim", Attack: "lie", Defense: "median",
				Beta: 0.1, AttackerFrac: 0.2, Seed: 2, Rounds: 12,
			},
			CleanAcc: 0.66, MaxAcc: 0.52, FinalAcc: 0.50, ASR: 21.2121, DPR: math.NaN(),
		},
		{
			Config: experiment.Config{
				Dataset: "fashion-sim", Attack: "dfa-r", Defense: "mkrum",
				Beta: 0.5, AttackerFrac: 0.001, Seed: 1, Rounds: 12,
				TotalClients: 100000, Sampler: "bernoulli", DropoutProb: 0.2,
				Partition: "quantity", AsyncBuffer: 5,
				Population: "virtual", Placement: "scatter", Groups: 5,
			},
			CleanAcc: 0.85, MaxAcc: 0.84, FinalAcc: 0.83, ASR: 1.18, DPR: math.NaN(),
		},
	}
}

func TestFromOutcome(t *testing.T) {
	outs := sampleOutcomes()
	r := FromOutcome(outs[0])
	if r.Dataset != "fashion-sim" || r.Attack != "dfa-r" || r.Defense != "mkrum" {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.CleanAccPct != 85.5 || r.MaxAccPct != 70 {
		t.Fatalf("accuracy conversion wrong: %+v", r)
	}
	if r.ASRPct != 18.13 {
		t.Fatalf("ASR rounding wrong: %v", r.ASRPct)
	}
	if r.DPRPct == nil || *r.DPRPct != 75 {
		t.Fatalf("DPR wrong: %v", r.DPRPct)
	}
	r2 := FromOutcome(outs[1])
	if r2.DPRPct != nil {
		t.Fatal("NaN DPR should map to nil")
	}
	// Scenario and population axes flatten into the record so grid rows
	// stay distinguishable.
	r3 := FromOutcome(outs[2])
	if r3.Sampler != "bernoulli" || r3.DropoutProb != 0.2 || r3.Partition != "quantity" ||
		r3.AsyncBuffer != 5 || r3.TotalClients != 100000 ||
		r3.Population != "virtual" || r3.Placement != "scatter" || r3.Groups != 5 {
		t.Fatalf("scenario/population axes lost in flattening: %+v", r3)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleOutcomes()); err != nil {
		t.Fatal(err)
	}
	records, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("round trip lost records: %d", len(records))
	}
	if records[0].ASRPct != 18.13 || records[1].DPRPct != nil {
		t.Fatalf("round trip changed values: %+v", records)
	}
	if records[2].Population != "virtual" || records[2].Groups != 5 {
		t.Fatalf("population axes lost in JSON round trip: %+v", records[2])
	}
	// Legacy-shaped rows must not grow the new keys (omitempty contract) —
	// including after Normalize, which fills TotalClients with the paper's
	// default 100 (omitempty alone cannot hide a non-zero int).
	legacyOut := sampleOutcomes()[0]
	if err := legacyOut.Config.Normalize(); err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := WriteJSON(&legacy, []*experiment.Outcome{legacyOut}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"population", "placement", "groups", "sampler", "partition", "asyncBuffer", "totalClients"} {
		if strings.Contains(legacy.String(), `"`+key+`"`) {
			t.Fatalf("legacy row leaks %q: %s", key, legacy.String())
		}
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleOutcomes()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want header + 3", len(rows))
	}
	if rows[0][0] != "dataset" || rows[0][11] != "dpr_pct" || rows[0][20] != "groups" || rows[0][len(rows[0])-1] != "detection_fpr_pct" {
		t.Fatalf("header wrong: %v", rows[0])
	}
	if rows[1][10] != "18.13" {
		t.Fatalf("ASR cell = %q", rows[1][10])
	}
	if rows[1][11] != "75.00" {
		t.Fatalf("DPR cell = %q", rows[1][11])
	}
	if rows[2][11] != "" {
		t.Fatalf("undefined DPR should be empty, got %q", rows[2][11])
	}
	// The scenario/population columns carry the distinguishing axes.
	idx := map[string]int{}
	for i, name := range rows[0] {
		idx[name] = i
	}
	if rows[3][idx["sampler"]] != "bernoulli" || rows[3][idx["population"]] != "virtual" ||
		rows[3][idx["placement"]] != "scatter" || rows[3][idx["groups"]] != "5" ||
		rows[3][idx["total_clients"]] != "100000" || rows[3][idx["async_buffer"]] != "5" {
		t.Fatalf("population/scenario columns wrong: %v", rows[3])
	}
}
