// Package report serializes experiment outcomes for downstream analysis:
// JSON for tooling, CSV for spreadsheets/plotting, and a stable text table
// for terminals. A reproduction is only useful if its numbers can leave the
// process, so the CLIs route their results through this package.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/experiment"
)

// Record is the flattened, serialization-friendly form of one outcome.
// Beyond the paper's headline axes it carries the engine's scenario axes
// (partition, sampler, churn, async) and the population axes (backend,
// placement, hierarchy), so rows of the participation and productionscale
// grids stay distinguishable in exported JSON/CSV. The scenario and
// population fields are omitempty: legacy-shaped rows serialize exactly as
// before.
type Record struct {
	Dataset      string  `json:"dataset"`
	Attack       string  `json:"attack"`
	Defense      string  `json:"defense"`
	Beta         float64 `json:"beta"`
	AttackerFrac float64 `json:"attackerFrac"`
	Seed         int64   `json:"seed"`
	Rounds       int     `json:"rounds"`
	CleanAccPct  float64 `json:"cleanAccPct"`
	MaxAccPct    float64 `json:"maxAccPct"`
	FinalAccPct  float64 `json:"finalAccPct"`
	ASRPct       float64 `json:"asrPct"`
	// DPRPct is nil when the defense does not report selection ("N/A").
	DPRPct *float64 `json:"dprPct"`

	// Scenario axes (PR 3); zero values are the paper's fixed shape.
	Partition     string  `json:"partition,omitempty"`
	Sampler       string  `json:"sampler,omitempty"`
	DropoutProb   float64 `json:"dropoutProb,omitempty"`
	StragglerProb float64 `json:"stragglerProb,omitempty"`
	AsyncBuffer   int     `json:"asyncBuffer,omitempty"`

	// Population axes; zero values are the eager 100-client federation.
	// TotalClients is filled only when it distinguishes the row — a
	// non-default N or any virtual population — because Normalize defaults
	// it to the paper's 100, which omitempty alone could not hide on
	// legacy-shaped rows.
	TotalClients int    `json:"totalClients,omitempty"`
	Population   string `json:"population,omitempty"`
	Placement    string `json:"placement,omitempty"`
	Groups       int    `json:"groups,omitempty"`

	// Detection-quality columns (the forensics subsystem); nil when the run
	// did not enable forensics, so legacy rows serialize exactly as before.
	DetectionAUC       *float64 `json:"detectionAUC,omitempty"`
	DetectionTPRAt1FPR *float64 `json:"detectionTprAt1pctFpr,omitempty"`
	DetectionTPRPct    *float64 `json:"detectionTprPct,omitempty"`
	DetectionFPRPct    *float64 `json:"detectionFprPct,omitempty"`
}

// paperTotalClients is Normalize's default population size; rows carrying
// it (and no virtual population) match the legacy serialized shape.
const paperTotalClients = 100

// FromOutcome flattens an outcome into a Record.
func FromOutcome(o *experiment.Outcome) Record {
	r := Record{
		Dataset:       o.Config.Dataset,
		Attack:        o.Config.Attack,
		Defense:       o.Config.Defense,
		Beta:          o.Config.Beta,
		AttackerFrac:  o.Config.AttackerFrac,
		Seed:          o.Config.Seed,
		Rounds:        o.Config.Rounds,
		CleanAccPct:   round2(o.CleanAcc * 100),
		MaxAccPct:     round2(o.MaxAcc * 100),
		FinalAccPct:   round2(o.FinalAcc * 100),
		ASRPct:        round2(o.ASR),
		Partition:     o.Config.Partition,
		Sampler:       o.Config.Sampler,
		DropoutProb:   o.Config.DropoutProb,
		StragglerProb: o.Config.StragglerProb,
		AsyncBuffer:   o.Config.AsyncBuffer,
		Population:    o.Config.Population,
		Placement:     o.Config.Placement,
		Groups:        o.Config.Groups,
	}
	if o.Config.Population != "" || (o.Config.TotalClients != 0 && o.Config.TotalClients != paperTotalClients) {
		r.TotalClients = o.Config.TotalClients
	}
	if !math.IsNaN(o.DPR) {
		dpr := round2(o.DPR)
		r.DPRPct = &dpr
	}
	if d := o.Detection; d != nil {
		r.DetectionAUC = optRound2(d.AUC)
		r.DetectionTPRAt1FPR = optRound2(d.TPRAt1FPR)
		r.DetectionTPRPct = optRound2(d.TPR * 100)
		r.DetectionFPRPct = optRound2(d.FPR * 100)
	}
	return r
}

// optRound2 rounds v to two decimals as a nullable pointer (nil for NaN).
func optRound2(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	r := round2(v)
	return &r
}

// recordJSON is Record's one serialization shape, with every NaN-able
// float as a nullable pointer (encoding/json rejects NaN; the run-store
// convention is NaN→null). Finite values serialize byte-identically to the
// old raw-float shape, so legacy rows are unchanged; the omitempty floats
// collapse both 0 and NaN to omission, which is exactly the legacy shape
// for their zero defaults.
type recordJSON struct {
	Dataset      string   `json:"dataset"`
	Attack       string   `json:"attack"`
	Defense      string   `json:"defense"`
	Beta         *float64 `json:"beta"`
	AttackerFrac *float64 `json:"attackerFrac"`
	Seed         int64    `json:"seed"`
	Rounds       int      `json:"rounds"`
	CleanAccPct  *float64 `json:"cleanAccPct"`
	MaxAccPct    *float64 `json:"maxAccPct"`
	FinalAccPct  *float64 `json:"finalAccPct"`
	ASRPct       *float64 `json:"asrPct"`
	DPRPct       *float64 `json:"dprPct"`

	Partition     string   `json:"partition,omitempty"`
	Sampler       string   `json:"sampler,omitempty"`
	DropoutProb   *float64 `json:"dropoutProb,omitempty"`
	StragglerProb *float64 `json:"stragglerProb,omitempty"`
	AsyncBuffer   int      `json:"asyncBuffer,omitempty"`

	TotalClients int    `json:"totalClients,omitempty"`
	Population   string `json:"population,omitempty"`
	Placement    string `json:"placement,omitempty"`
	Groups       int    `json:"groups,omitempty"`

	DetectionAUC       *float64 `json:"detectionAUC,omitempty"`
	DetectionTPRAt1FPR *float64 `json:"detectionTprAt1pctFpr,omitempty"`
	DetectionTPRPct    *float64 `json:"detectionTprPct,omitempty"`
	DetectionFPRPct    *float64 `json:"detectionFprPct,omitempty"`
}

// nanGuard encodes a possibly-NaN float as a nullable pointer.
func nanGuard(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// omitGuard is nanGuard for omitempty fields: zero (the omitted legacy
// default) and non-finite values both collapse to omission.
func omitGuard(v float64) *float64 {
	if v == 0 {
		return nil
	}
	return nanGuard(v)
}

// unguard decodes a nullable float; null means the writer guarded a NaN.
func unguard(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON implements json.Marshaler with the nullable-float shape: an
// unevaluated or N/A metric (NaN) exports as null instead of failing the
// entire write at the end of a long sweep.
func (r Record) MarshalJSON() ([]byte, error) {
	return json.Marshal(recordJSON{
		Dataset:            r.Dataset,
		Attack:             r.Attack,
		Defense:            r.Defense,
		Beta:               nanGuard(r.Beta),
		AttackerFrac:       nanGuard(r.AttackerFrac),
		Seed:               r.Seed,
		Rounds:             r.Rounds,
		CleanAccPct:        nanGuard(r.CleanAccPct),
		MaxAccPct:          nanGuard(r.MaxAccPct),
		FinalAccPct:        nanGuard(r.FinalAccPct),
		ASRPct:             nanGuard(r.ASRPct),
		DPRPct:             r.DPRPct,
		Partition:          r.Partition,
		Sampler:            r.Sampler,
		DropoutProb:        omitGuard(r.DropoutProb),
		StragglerProb:      omitGuard(r.StragglerProb),
		AsyncBuffer:        r.AsyncBuffer,
		TotalClients:       r.TotalClients,
		Population:         r.Population,
		Placement:          r.Placement,
		Groups:             r.Groups,
		DetectionAUC:       r.DetectionAUC,
		DetectionTPRAt1FPR: r.DetectionTPRAt1FPR,
		DetectionTPRPct:    r.DetectionTPRPct,
		DetectionFPRPct:    r.DetectionFPRPct,
	})
}

// UnmarshalJSON implements json.Unmarshaler: null metrics decode to NaN,
// and omitted omitempty floats decode to their zero defaults.
func (r *Record) UnmarshalJSON(data []byte) error {
	var raw recordJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	zero := func(p *float64) float64 {
		if p == nil {
			return 0
		}
		return *p
	}
	*r = Record{
		Dataset:            raw.Dataset,
		Attack:             raw.Attack,
		Defense:            raw.Defense,
		Beta:               unguard(raw.Beta),
		AttackerFrac:       unguard(raw.AttackerFrac),
		Seed:               raw.Seed,
		Rounds:             raw.Rounds,
		CleanAccPct:        unguard(raw.CleanAccPct),
		MaxAccPct:          unguard(raw.MaxAccPct),
		FinalAccPct:        unguard(raw.FinalAccPct),
		ASRPct:             unguard(raw.ASRPct),
		DPRPct:             raw.DPRPct,
		Partition:          raw.Partition,
		Sampler:            raw.Sampler,
		DropoutProb:        zero(raw.DropoutProb),
		StragglerProb:      zero(raw.StragglerProb),
		AsyncBuffer:        raw.AsyncBuffer,
		TotalClients:       raw.TotalClients,
		Population:         raw.Population,
		Placement:          raw.Placement,
		Groups:             raw.Groups,
		DetectionAUC:       raw.DetectionAUC,
		DetectionTPRAt1FPR: raw.DetectionTPRAt1FPR,
		DetectionTPRPct:    raw.DetectionTPRPct,
		DetectionFPRPct:    raw.DetectionFPRPct,
	}
	return nil
}

func round2(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	return math.Round(v*100) / 100
}

// WriteJSON writes the outcomes as a JSON array.
func WriteJSON(w io.Writer, outs []*experiment.Outcome) error {
	records := make([]Record, len(outs))
	for i, o := range outs {
		records[i] = FromOutcome(o)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// csvHeader is the stable column order of WriteCSV; the scenario and
// population columns are appended after the paper metrics so existing
// column indices are preserved.
var csvHeader = []string{
	"dataset", "attack", "defense", "beta", "attacker_frac", "seed",
	"rounds", "clean_acc_pct", "max_acc_pct", "final_acc_pct", "asr_pct", "dpr_pct",
	"partition", "sampler", "dropout_prob", "straggler_prob", "async_buffer",
	"total_clients", "population", "placement", "groups",
	"detection_auc", "detection_tpr_1pct_fpr", "detection_tpr_pct", "detection_fpr_pct",
}

// WriteCSV writes the outcomes as CSV with a header row; an undefined DPR
// is encoded as an empty cell.
func WriteCSV(w io.Writer, outs []*experiment.Outcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, o := range outs {
		r := FromOutcome(o)
		dpr := ""
		if r.DPRPct != nil {
			dpr = strconv.FormatFloat(*r.DPRPct, 'f', 2, 64)
		}
		totalClients := ""
		if r.TotalClients > 0 {
			totalClients = strconv.Itoa(r.TotalClients)
		}
		optCell := func(p *float64) string {
			if p == nil {
				return ""
			}
			return strconv.FormatFloat(*p, 'f', 2, 64)
		}
		row := []string{
			r.Dataset, r.Attack, r.Defense,
			strconv.FormatFloat(r.Beta, 'g', -1, 64),
			strconv.FormatFloat(r.AttackerFrac, 'g', -1, 64),
			strconv.FormatInt(r.Seed, 10),
			strconv.Itoa(r.Rounds),
			strconv.FormatFloat(r.CleanAccPct, 'f', 2, 64),
			strconv.FormatFloat(r.MaxAccPct, 'f', 2, 64),
			strconv.FormatFloat(r.FinalAccPct, 'f', 2, 64),
			strconv.FormatFloat(r.ASRPct, 'f', 2, 64),
			dpr,
			r.Partition, r.Sampler,
			strconv.FormatFloat(r.DropoutProb, 'g', -1, 64),
			strconv.FormatFloat(r.StragglerProb, 'g', -1, 64),
			strconv.Itoa(r.AsyncBuffer),
			totalClients,
			r.Population, r.Placement,
			strconv.Itoa(r.Groups),
			optCell(r.DetectionAUC),
			optCell(r.DetectionTPRAt1FPR),
			optCell(r.DetectionTPRPct),
			optCell(r.DetectionFPRPct),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJSON parses records previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return records, nil
}
