// Package report serializes experiment outcomes for downstream analysis:
// JSON for tooling, CSV for spreadsheets/plotting, and a stable text table
// for terminals. A reproduction is only useful if its numbers can leave the
// process, so the CLIs route their results through this package.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/experiment"
)

// Record is the flattened, serialization-friendly form of one outcome.
type Record struct {
	Dataset      string  `json:"dataset"`
	Attack       string  `json:"attack"`
	Defense      string  `json:"defense"`
	Beta         float64 `json:"beta"`
	AttackerFrac float64 `json:"attackerFrac"`
	Seed         int64   `json:"seed"`
	Rounds       int     `json:"rounds"`
	CleanAccPct  float64 `json:"cleanAccPct"`
	MaxAccPct    float64 `json:"maxAccPct"`
	FinalAccPct  float64 `json:"finalAccPct"`
	ASRPct       float64 `json:"asrPct"`
	// DPRPct is nil when the defense does not report selection ("N/A").
	DPRPct *float64 `json:"dprPct"`
}

// FromOutcome flattens an outcome into a Record.
func FromOutcome(o *experiment.Outcome) Record {
	r := Record{
		Dataset:      o.Config.Dataset,
		Attack:       o.Config.Attack,
		Defense:      o.Config.Defense,
		Beta:         o.Config.Beta,
		AttackerFrac: o.Config.AttackerFrac,
		Seed:         o.Config.Seed,
		Rounds:       o.Config.Rounds,
		CleanAccPct:  round2(o.CleanAcc * 100),
		MaxAccPct:    round2(o.MaxAcc * 100),
		FinalAccPct:  round2(o.FinalAcc * 100),
		ASRPct:       round2(o.ASR),
	}
	if !math.IsNaN(o.DPR) {
		dpr := round2(o.DPR)
		r.DPRPct = &dpr
	}
	return r
}

func round2(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	return math.Round(v*100) / 100
}

// WriteJSON writes the outcomes as a JSON array.
func WriteJSON(w io.Writer, outs []*experiment.Outcome) error {
	records := make([]Record, len(outs))
	for i, o := range outs {
		records[i] = FromOutcome(o)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// csvHeader is the stable column order of WriteCSV.
var csvHeader = []string{
	"dataset", "attack", "defense", "beta", "attacker_frac", "seed",
	"rounds", "clean_acc_pct", "max_acc_pct", "final_acc_pct", "asr_pct", "dpr_pct",
}

// WriteCSV writes the outcomes as CSV with a header row; an undefined DPR
// is encoded as an empty cell.
func WriteCSV(w io.Writer, outs []*experiment.Outcome) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, o := range outs {
		r := FromOutcome(o)
		dpr := ""
		if r.DPRPct != nil {
			dpr = strconv.FormatFloat(*r.DPRPct, 'f', 2, 64)
		}
		row := []string{
			r.Dataset, r.Attack, r.Defense,
			strconv.FormatFloat(r.Beta, 'g', -1, 64),
			strconv.FormatFloat(r.AttackerFrac, 'g', -1, 64),
			strconv.FormatInt(r.Seed, 10),
			strconv.Itoa(r.Rounds),
			strconv.FormatFloat(r.CleanAccPct, 'f', 2, 64),
			strconv.FormatFloat(r.MaxAccPct, 'f', 2, 64),
			strconv.FormatFloat(r.FinalAccPct, 'f', 2, 64),
			strconv.FormatFloat(r.ASRPct, 'f', 2, 64),
			dpr,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJSON parses records previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return records, nil
}
