package forensics

import (
	"encoding/json"
	"sync"
)

// DefaultStreamBuffer is the per-subscriber queue depth when Subscribe is
// given no explicit bound. At one audit per aggregation a browser that
// stalls for 64 rounds starts losing the oldest events, never round N's
// aggregation itself.
const DefaultStreamBuffer = 64

// StreamEvent is one live-feed item: the audit's ring cursor (total
// aggregations observed when it landed, so cursors are dense and strictly
// increasing) and its encoded jsonRoundAudit bytes. The byte slice is
// marshaled once per aggregation and shared read-only by every subscriber.
type StreamEvent struct {
	Cursor uint64
	Data   []byte
}

// subscriber is one live-feed consumer: a bounded queue the broadcast side
// never blocks on, plus a drop counter for the events the queue shed.
type subscriber struct {
	ch      chan StreamEvent
	dropped int
	once    sync.Once
}

// shut closes the queue exactly once, whichever of cancel and Collector
// shutdown gets there first.
func (s *subscriber) shut() { s.once.Do(func() { close(s.ch) }) }

// Subscribe attaches a live-feed consumer. It returns the backlog — every
// ring entry with cursor > since, oldest first, so a reconnecting client
// resumes without a gap as long as the outage fits in the ring — a channel
// delivering each subsequent aggregation, and a cancel function that
// detaches the subscriber and closes the channel. buf bounds the queue
// (<= 0 selects DefaultStreamBuffer); when it fills, the oldest queued
// event is dropped in favor of the new one, so a slow consumer sees the
// freshest rounds and the engine never waits.
func (c *Collector) Subscribe(since uint64, buf int) ([]StreamEvent, <-chan StreamEvent, func()) {
	if buf <= 0 {
		buf = DefaultStreamBuffer
	}
	sub := &subscriber{ch: make(chan StreamEvent, buf)}
	c.mu.Lock()
	backlog := c.backlogLocked(since)
	c.subs = append(c.subs, sub)
	c.mu.Unlock()
	cancel := func() {
		c.mu.Lock()
		for i, s := range c.subs {
			if s == sub {
				c.subs = append(c.subs[:i], c.subs[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		// Safe to close outside the lock: broadcasts only send under the
		// lock, and the subscriber is no longer reachable from c.subs.
		sub.shut()
	}
	return backlog, sub.ch, cancel
}

// Subscribers reports the attached live-feed consumers — the leak check
// tests run after disconnect churn.
func (c *Collector) Subscribers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}

// EventsSince returns the ring entries with cursor > since (oldest first)
// and the current head cursor: the incremental poll behind
// GET /rounds?since=. A poller that carries the returned cursor forward
// fetches each audit exactly once while the ring covers its polling gap.
func (c *Collector) EventsSince(since uint64) ([]StreamEvent, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backlogLocked(since), uint64(c.aggs)
}

// backlogLocked marshals the ring entries newer than since, oldest first.
// Cursors are derived, not stored: the ring holds the last len(ring) of
// c.aggs total audits, so oldest-first entry i carries cursor
// aggs − len(ring) + i + 1.
func (c *Collector) backlogLocked(since uint64) []StreamEvent {
	total := uint64(c.aggs)
	n := uint64(len(c.ring))
	var out []StreamEvent
	emit := func(i int, ra RoundAudit) {
		cur := total - n + uint64(i) + 1
		if cur <= since {
			return
		}
		data, err := json.Marshal(auditToJSON(ra))
		if err != nil {
			return
		}
		out = append(out, StreamEvent{Cursor: cur, Data: data})
	}
	if len(c.ring) < c.opts.Ring {
		for i, ra := range c.ring {
			emit(i, ra)
		}
		return out
	}
	i := 0
	for _, ra := range c.ring[c.next:] {
		emit(i, ra)
		i++
	}
	for _, ra := range c.ring[:c.next] {
		emit(i, ra)
		i++
	}
	return out
}

// broadcastLocked fans one freshly observed audit out to every subscriber.
// Called by ObserveAggregation with c.mu held, immediately after the ring
// insert, so the event cursor is exactly c.aggs. With no subscribers it
// returns before touching the audit — the no-dashboard hot path must stay
// allocation-free (regression-tested by TestBroadcastNoSubscribersZeroAlloc).
func (c *Collector) broadcastLocked(ra RoundAudit) {
	if len(c.subs) == 0 {
		return
	}
	data, err := json.Marshal(auditToJSON(ra))
	if err != nil {
		return
	}
	ev := StreamEvent{Cursor: uint64(c.aggs), Data: data}
	for _, sub := range c.subs {
		select {
		case sub.ch <- ev:
			continue
		default:
		}
		// Queue full: shed the oldest queued event, keep the newest — a
		// stalled browser loses history it can refetch via ?since, and the
		// engine never blocks here.
		select {
		case <-sub.ch:
			sub.dropped++
		default:
		}
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
		}
	}
}

// closeStreamLocked detaches every subscriber; callers close the returned
// subscribers' channels after releasing c.mu.
func (c *Collector) closeStreamLocked() []*subscriber {
	subs := c.subs
	c.subs = nil
	return subs
}
