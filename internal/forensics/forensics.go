// Package forensics audits every defense decision the round engine makes
// and turns the stream into detection-quality analytics. The paper (and
// most of the poisoning literature) evaluates attacks and defenses only
// through endpoint metrics — DPR/ASR and accuracy — but production-regime
// conclusions hinge on *detection quality*: how often a defense filters
// actual attackers versus benign clients, especially at sub-1% attacker
// fractions where a single false positive per round dwarfs the attacker
// population (Shejwalkar et al., "Back to the Drawing Board").
//
// The subsystem has three layers:
//
//   - per-update fingerprints: cheap geometric summaries (update norm,
//     cosine to the round mean, nearest/median neighbour distance) that
//     make per-round update behaviour legible, reusing the pairwise
//     distance matrix a distance-based defense already computed
//     (fl.Selection.Distances) so fingerprinting is nearly free;
//   - a streaming detection-metrics engine joining each defense decision
//     (fl.Selection) against the ground-truth Malicious flags to maintain
//     per-round and cumulative TPR/FPR/precision/F1, plus online ROC/AUC
//     over the score vectors of score-producing defenses (REFD, FoolsGold,
//     the Krum family) in O(K log K) per round with bounded memory;
//   - sinks: an in-memory ring of recent round audits, a JSONL audit
//     journal (internal/persist), and an HTTP endpoint serving the live
//     metrics as JSON.
//
// Everything here is pure observation: attaching a Collector to an engine
// never changes aggregation results, metric accounting, or RNG streams.
package forensics

import (
	"math"
	"sort"

	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/vec"
)

// Fingerprint is the cheap geometric summary of one update in one round.
// All four signals are functions of the round's update set and the global
// model the updates were trained from; none require ground truth, so they
// are computable in a real deployment.
type Fingerprint struct {
	// L2 is ‖w_i − w(t)‖₂, the update's displacement from the global model.
	// Boosted or scaled updates (LIE, Min-Max at large γ) stand out here.
	L2 float64 `json:"l2"`
	// CosMean is the cosine similarity between the update's displacement
	// and the round's mean displacement. Direction-flipping attacks
	// (sign-flip, DFA-R at high λ) sit near −1, colluding copies near +1.
	CosMean float64 `json:"cosMean"`
	// MinNeighbor is the Euclidean distance to the nearest other update.
	// Near-zero values expose Sybil near-duplicates.
	MinNeighbor float64 `json:"minNeighbor"`
	// MedNeighbor is the square root of the median squared distance to the
	// other updates — the robust "how far from the crowd" signal Krum-style
	// defenses threshold on.
	MedNeighbor float64 `json:"medNeighbor"`
}

// Fingerprints computes the fingerprint of every update. dist, when it is
// the round's n×n pairwise squared-distance matrix (a distance-based
// defense exported it via Selection.Distances), is reused; otherwise the
// matrix is computed once here via the shared distance-matrix service.
// Per-update results are pure functions of the inputs, so the parallel
// fan-out never changes a bit.
func Fingerprints(global []float64, updates []fl.Update, dist [][]float64) []Fingerprint {
	n := len(updates)
	fps := make([]Fingerprint, n)
	if n == 0 {
		return fps
	}
	// Mean displacement of the round, computed once.
	meanDelta := make([]float64, len(global))
	for _, u := range updates {
		for j, w := range u.Weights {
			meanDelta[j] += w
		}
	}
	inv := 1 / float64(n)
	for j, g := range global {
		meanDelta[j] = meanDelta[j]*inv - g
	}
	mdNorm := math.Sqrt(tensor.DotSlice(meanDelta, meanDelta))

	if len(dist) != n {
		vs := make([][]float64, n)
		for i, u := range updates {
			vs[i] = u.Weights
		}
		dist = vec.SqDistMatrix(vs)
	}

	tensor.ParallelFor(n, 1, func(lo, hi int) {
		row := make([]float64, 0, n-1)
		for i := lo; i < hi; i++ {
			w := updates[i].Weights
			var dot, sq float64
			for j, g := range global {
				d := w[j] - g
				dot += d * meanDelta[j]
				sq += d * d
			}
			l2 := math.Sqrt(sq)
			fp := Fingerprint{L2: l2}
			if l2 > 0 && mdNorm > 0 {
				fp.CosMean = dot / (l2 * mdNorm)
			}
			if n > 1 {
				row = row[:0]
				for j := 0; j < n; j++ {
					if j != i {
						row = append(row, dist[i][j])
					}
				}
				sort.Float64s(row)
				fp.MinNeighbor = math.Sqrt(row[0])
				m := len(row)
				if m%2 == 1 {
					fp.MedNeighbor = math.Sqrt(row[m/2])
				} else {
					fp.MedNeighbor = math.Sqrt(0.5 * (row[m/2-1] + row[m/2]))
				}
			}
			fps[i] = fp
		}
	})
	return fps
}
