package forensics

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
)

// jf encodes a possibly-NaN float for JSON as a nullable pointer, the
// run-store convention (encoding/json rejects NaN).
func jf(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// jsonRoundMetrics is the serialization shape of RoundMetrics.
type jsonRoundMetrics struct {
	Round         int  `json:"round"`
	Seq           int  `json:"seq"`
	Updates       int  `json:"updates"`
	Malicious     int  `json:"malicious"`
	Known         bool `json:"known"`
	ZeroSelection bool `json:"zeroSelection"`
	Confusion     `json:"confusion"`
	TPR           *float64 `json:"tpr"`
	FPR           *float64 `json:"fpr"`
	Precision     *float64 `json:"precision"`
	F1            *float64 `json:"f1"`
	AUC           *float64 `json:"auc"`
}

func metricsToJSON(m RoundMetrics) jsonRoundMetrics {
	return jsonRoundMetrics{
		Round:         m.Round,
		Seq:           m.Seq,
		Updates:       m.Updates,
		Malicious:     m.Malicious,
		Known:         m.Known,
		ZeroSelection: m.ZeroSelection,
		Confusion:     m.Confusion,
		TPR:           jf(m.TPR()),
		FPR:           jf(m.FPR()),
		Precision:     jf(m.Precision()),
		F1:            jf(m.F1()),
		AUC:           jf(m.AUC),
	}
}

// jsonRoundAudit is the serialization shape of RoundAudit: the audit
// journal's line payload and the /rounds endpoint's element.
type jsonRoundAudit struct {
	RoundAudit
	Metrics jsonRoundMetrics `json:"metrics"`
}

func auditToJSON(ra RoundAudit) jsonRoundAudit {
	return jsonRoundAudit{RoundAudit: ra, Metrics: metricsToJSON(ra.Metrics)}
}

// Mount registers the live detection analytics under prefix on mux:
//
//	GET <prefix>/metrics  → {"cumulative": Summary, "current": RoundMetrics|null}
//	GET <prefix>/rounds   → [RoundAudit…] (the in-memory ring, oldest first)
//
// All responses are application/json; NaN-able metrics are null. Mounting
// under a prefix (canonically "/forensics") lets the forensics surface share
// one ops mux with the Prometheus /metrics endpoint without a route clash.
func (c *Collector) Mount(mux *http.ServeMux, prefix string) {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v) // client went away; nothing to do
	}
	mux.HandleFunc(prefix+"/metrics", func(w http.ResponseWriter, r *http.Request) {
		rounds := c.Rounds()
		var current *jsonRoundMetrics
		if len(rounds) > 0 {
			m := metricsToJSON(rounds[len(rounds)-1].Metrics)
			current = &m
		}
		writeJSON(w, struct {
			Cumulative Summary           `json:"cumulative"`
			Current    *jsonRoundMetrics `json:"current"`
		}{c.Summary(), current})
	})
	mux.HandleFunc(prefix+"/rounds", func(w http.ResponseWriter, r *http.Request) {
		rounds := c.Rounds()
		out := make([]jsonRoundAudit, len(rounds))
		for i, ra := range rounds {
			out[i] = auditToJSON(ra)
		}
		writeJSON(w, out)
	})
}

// Handler serves the standalone forensics endpoint: the analytics live under
// /forensics/ (the canonical routes shared with the unified ops endpoint),
// with permanent redirects from the legacy top-level /metrics and /rounds so
// existing scrapers keep working.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Mount(mux, "/forensics")
	mux.Handle("/metrics", http.RedirectHandler("/forensics/metrics", http.StatusPermanentRedirect))
	mux.Handle("/rounds", http.RedirectHandler("/forensics/rounds", http.StatusPermanentRedirect))
	return mux
}

// Serve starts the live metrics endpoint on addr (e.g. ":8790", or ":0"
// for an ephemeral port). It returns the bound address and a shutdown
// function; the server itself runs in a background goroutine for the
// lifetime of the run.
func (c *Collector) Serve(addr string) (string, func() error, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: c.Handler()}
	go func() { _ = srv.Serve(lis) }()
	return lis.Addr().String(), srv.Close, nil
}
