package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"repro/internal/telemetry"
)

// jf encodes a possibly-NaN float for JSON as a nullable pointer, the
// run-store convention (encoding/json rejects NaN).
func jf(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// fv decodes a nullable float back to its in-memory NaN form.
func fv(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// jsonFingerprint is Fingerprint's serialization shape: every component is
// nullable, since a zero-length or zero-norm update makes the cosine (and
// with one update, the neighbor distances) NaN.
type jsonFingerprint struct {
	L2          *float64 `json:"l2"`
	CosMean     *float64 `json:"cosMean"`
	MinNeighbor *float64 `json:"minNeighbor"`
	MedNeighbor *float64 `json:"medNeighbor"`
}

// MarshalJSON guards the fingerprint's NaN-able floats as nulls — the
// persistence-boundary convention nanjson enforces. Finite fingerprints
// render byte-identically to the raw struct, so existing journals keep
// their format.
func (f Fingerprint) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonFingerprint{jf(f.L2), jf(f.CosMean), jf(f.MinNeighbor), jf(f.MedNeighbor)})
}

// UnmarshalJSON inverts MarshalJSON, restoring nulls to NaN.
func (f *Fingerprint) UnmarshalJSON(b []byte) error {
	var j jsonFingerprint
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*f = Fingerprint{L2: fv(j.L2), CosMean: fv(j.CosMean), MinNeighbor: fv(j.MinNeighbor), MedNeighbor: fv(j.MedNeighbor)}
	return nil
}

// jsonRoundMetrics is the serialization shape of RoundMetrics.
type jsonRoundMetrics struct {
	Round         int  `json:"round"`
	Seq           int  `json:"seq"`
	Updates       int  `json:"updates"`
	Malicious     int  `json:"malicious"`
	Known         bool `json:"known"`
	ZeroSelection bool `json:"zeroSelection"`
	Confusion     `json:"confusion"`
	TPR           *float64 `json:"tpr"`
	FPR           *float64 `json:"fpr"`
	Precision     *float64 `json:"precision"`
	F1            *float64 `json:"f1"`
	AUC           *float64 `json:"auc"`
}

func metricsToJSON(m RoundMetrics) jsonRoundMetrics {
	return jsonRoundMetrics{
		Round:         m.Round,
		Seq:           m.Seq,
		Updates:       m.Updates,
		Malicious:     m.Malicious,
		Known:         m.Known,
		ZeroSelection: m.ZeroSelection,
		Confusion:     m.Confusion,
		TPR:           jf(m.TPR()),
		FPR:           jf(m.FPR()),
		Precision:     jf(m.Precision()),
		F1:            jf(m.F1()),
		AUC:           jf(m.AUC),
	}
}

// metricsFromJSON inverts metricsToJSON: the decode side the replay
// service needs to reconstruct a RoundAudit from its journal payload.
// Nullable metrics come back as NaN; the ratio metrics (TPR, FPR, …) are
// methods over the decoded Confusion, so only AUC is carried explicitly.
func metricsFromJSON(m jsonRoundMetrics) RoundMetrics {
	rm := RoundMetrics{
		Round:         m.Round,
		Seq:           m.Seq,
		Updates:       m.Updates,
		Malicious:     m.Malicious,
		Known:         m.Known,
		ZeroSelection: m.ZeroSelection,
		Confusion:     m.Confusion,
		AUC:           math.NaN(),
	}
	if m.AUC != nil {
		rm.AUC = *m.AUC
	}
	return rm
}

// jsonRoundAudit is the serialization shape of RoundAudit: the audit
// journal's line payload and the /rounds endpoint's element.
type jsonRoundAudit struct {
	RoundAudit
	Metrics jsonRoundMetrics `json:"metrics"`
}

func auditToJSON(ra RoundAudit) jsonRoundAudit {
	return jsonRoundAudit{RoundAudit: ra, Metrics: metricsToJSON(ra.Metrics)}
}

func auditFromJSON(ja jsonRoundAudit) RoundAudit {
	ra := ja.RoundAudit
	ra.Metrics = metricsFromJSON(ja.Metrics)
	return ra
}

// jsonHeaders marks a response as uncacheable JSON. Every endpoint here
// reports live, per-round state; a cached 200 would show an operator a
// stale detection picture, so no-store is part of the contract.
func jsonHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
}

// Mount registers the live detection analytics under prefix on mux:
//
//	GET <prefix>/metrics         → {"cumulative": Summary, "current": RoundMetrics|null}
//	GET <prefix>/rounds          → [RoundAudit…] (the in-memory ring, oldest first)
//	GET <prefix>/rounds?since=N  → {"cursor": C, "rounds": [{"cursor": n, "audit": RoundAudit}…]}
//	GET <prefix>/stream          → text/event-stream of RoundAudit events (see ServeSSE)
//
// All JSON responses are uncacheable; NaN-able metrics are null. Mounting
// under a prefix (canonically "/forensics") lets the forensics surface share
// one ops mux with the Prometheus /metrics endpoint without a route clash.
func (c *Collector) Mount(mux *http.ServeMux, prefix string) {
	mux.HandleFunc(prefix+"/metrics", func(w http.ResponseWriter, r *http.Request) {
		rounds := c.Rounds()
		var current *jsonRoundMetrics
		if len(rounds) > 0 {
			m := metricsToJSON(rounds[len(rounds)-1].Metrics)
			current = &m
		}
		jsonHeaders(w)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct { // single write; client-gone needs no cleanup
			Cumulative Summary           `json:"cumulative"`
			Current    *jsonRoundMetrics `json:"current"`
		}{c.Summary(), current})
	})
	mux.HandleFunc(prefix+"/rounds", func(w http.ResponseWriter, r *http.Request) {
		if s := r.URL.Query().Get("since"); s != "" {
			since, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "forensics: since must be an unsigned integer", http.StatusBadRequest)
				return
			}
			c.serveRoundsSince(w, since)
			return
		}
		jsonHeaders(w)
		// Element-wise writes so a disconnected poller aborts the loop
		// instead of burning CPU re-marshaling the rest of the ring.
		rounds := c.Rounds()
		if _, err := io.WriteString(w, "["); err != nil {
			return
		}
		for i, ra := range rounds {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return
				}
			}
			b, err := json.Marshal(auditToJSON(ra))
			if err != nil {
				return
			}
			if _, err := w.Write(b); err != nil {
				return
			}
		}
		_, _ = io.WriteString(w, "]\n")
	})
	mux.HandleFunc(prefix+"/stream", c.ServeSSE)
}

// serveRoundsSince answers the incremental form of /rounds: the audits
// with cursor > since plus the head cursor the poller carries forward.
func (c *Collector) serveRoundsSince(w http.ResponseWriter, since uint64) {
	events, cursor := c.EventsSince(since)
	jsonHeaders(w)
	if _, err := fmt.Fprintf(w, "{\"cursor\":%d,\"rounds\":[", cursor); err != nil {
		return
	}
	for i, ev := range events {
		sep := ""
		if i > 0 {
			sep = ","
		}
		if _, err := fmt.Fprintf(w, "%s{\"cursor\":%d,\"audit\":", sep, ev.Cursor); err != nil {
			return
		}
		if _, err := w.Write(ev.Data); err != nil {
			return
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return
		}
	}
	_, _ = io.WriteString(w, "]}\n")
}

// ServeSSE streams every aggregation as one Server-Sent Event:
//
//	id: <cursor>
//	event: round
//	data: <jsonRoundAudit>
//
// Resumption follows the SSE contract: the client's Last-Event-ID header
// (or an explicit ?since=N) selects the backlog cursor, so EventSource's
// automatic reconnect replays missed rounds from the ring. The
// subscription queue is bounded with drop-oldest backpressure — a stalled
// browser loses old events (refetchable via /rounds?since=), never the
// engine's time. The handler exits when the client disconnects, the
// server's base context is cancelled (graceful shutdown), or the
// collector closes.
func (c *Collector) ServeSSE(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "forensics: streaming unsupported", http.StatusNotImplemented)
		return
	}
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "forensics: since must be an unsigned integer", http.StatusBadRequest)
			return
		}
		since = v
	} else if s := r.Header.Get("Last-Event-ID"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			since = v
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	backlog, ch, cancel := c.Subscribe(since, 0)
	defer cancel()
	for _, ev := range backlog {
		if !writeSSE(w, ev) {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if !writeSSE(w, ev) {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, ev StreamEvent) bool {
	_, err := fmt.Fprintf(w, "id: %d\nevent: round\ndata: %s\n\n", ev.Cursor, ev.Data)
	return err == nil
}

// Handler serves the standalone forensics endpoint: the analytics live under
// /forensics/ (the canonical routes shared with the unified ops endpoint),
// with permanent redirects from the legacy top-level /metrics and /rounds so
// existing scrapers keep working.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Mount(mux, "/forensics")
	mux.Handle("/metrics", http.RedirectHandler("/forensics/metrics", http.StatusPermanentRedirect))
	mux.Handle("/rounds", http.RedirectHandler("/forensics/rounds", http.StatusPermanentRedirect))
	return mux
}

// Serve starts the live metrics endpoint on addr (e.g. ":8790", or ":0"
// for an ephemeral port). It returns the bound address and a shutdown
// function; the server itself runs in a background goroutine for the
// lifetime of the run. Shutdown drains gracefully — in-flight pollers
// finish and SSE subscribers see their contexts cancelled — and reports
// real serve/drain errors (see telemetry.ServeOps).
func (c *Collector) Serve(addr string) (string, func() error, error) {
	return telemetry.ServeOps(addr, c.Handler())
}
