package forensics

import (
	"math"
	"testing"

	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/vec"
)

func mkUpdates(mal []bool, vs ...[]float64) []fl.Update {
	us := make([]fl.Update, len(vs))
	for i, v := range vs {
		us[i] = fl.Update{ClientID: i, Weights: v, NumSamples: 10}
		if mal != nil {
			us[i].Malicious = mal[i]
		}
	}
	return us
}

func TestFingerprintsGeometry(t *testing.T) {
	global := []float64{0, 0}
	us := mkUpdates(nil,
		[]float64{1, 0},  // along the mean direction
		[]float64{2, 0},  // same direction, farther
		[]float64{-3, 0}, // flipped
	)
	fps := Fingerprints(global, us, nil)
	if len(fps) != 3 {
		t.Fatalf("got %d fingerprints", len(fps))
	}
	if fps[0].L2 != 1 || fps[1].L2 != 2 || fps[2].L2 != 3 {
		t.Fatalf("L2 = %v %v %v, want 1 2 3", fps[0].L2, fps[1].L2, fps[2].L2)
	}
	// Mean delta = (0, 0): all updates sum to (0,0), so CosMean is 0 by the
	// zero-norm guard.
	for i, fp := range fps {
		if fp.CosMean != 0 {
			t.Fatalf("update %d CosMean = %v, want 0 against zero mean", i, fp.CosMean)
		}
	}
	// Neighbour distances: |1−2| = 1 is 0's nearest; its median over {1, 4}
	// is sqrt((1+16)/2).
	if fps[0].MinNeighbor != 1 {
		t.Fatalf("MinNeighbor = %v, want 1", fps[0].MinNeighbor)
	}
	wantMed := math.Sqrt((1.0 + 16.0) / 2)
	if math.Abs(fps[0].MedNeighbor-wantMed) > 1e-12 {
		t.Fatalf("MedNeighbor = %v, want %v", fps[0].MedNeighbor, wantMed)
	}

	// A non-degenerate mean: drop the flipped update.
	us2 := us[:2]
	fps2 := Fingerprints(global, us2, nil)
	if math.Abs(fps2[0].CosMean-1) > 1e-12 || math.Abs(fps2[1].CosMean-1) > 1e-12 {
		t.Fatalf("aligned updates should have CosMean 1, got %v %v", fps2[0].CosMean, fps2[1].CosMean)
	}
}

func TestFingerprintsReuseDistanceMatrix(t *testing.T) {
	global := make([]float64, 5)
	us := mkUpdates(nil,
		[]float64{1, 2, 3, 4, 5},
		[]float64{5, 4, 3, 2, 1},
		[]float64{0, 1, 0, 1, 0},
		[]float64{2, 2, 2, 2, 2},
	)
	vs := make([][]float64, len(us))
	for i, u := range us {
		vs[i] = u.Weights
	}
	fresh := Fingerprints(global, us, nil)
	reused := Fingerprints(global, us, vec.SqDistMatrix(vs))
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("update %d: reused matrix changed the fingerprint: %+v vs %+v", i, fresh[i], reused[i])
		}
	}
	// A wrong-size matrix (stale geometry from another round) must be
	// ignored, not indexed out of range.
	bad := Fingerprints(global, us, vec.SqDistMatrix(vs[:2]))
	for i := range fresh {
		if fresh[i] != bad[i] {
			t.Fatalf("update %d: wrong-size matrix not recomputed", i)
		}
	}
}

// TestFingerprintsWorkerInvariant pins the audit-reproducibility contract:
// the parallel fan-out over updates never changes a bit of the output.
func TestFingerprintsWorkerInvariant(t *testing.T) {
	global := make([]float64, 64)
	var vs [][]float64
	x := 1.0
	for i := 0; i < 24; i++ {
		v := make([]float64, 64)
		for j := range v {
			x = math.Mod(x*997.13+float64(i+j), 17)
			v[j] = x
		}
		vs = append(vs, v)
	}
	us := mkUpdates(nil, vs...)
	prev := tensor.Workers()
	defer tensor.SetWorkers(prev)
	tensor.SetWorkers(1)
	one := Fingerprints(global, us, nil)
	tensor.SetWorkers(8)
	eight := Fingerprints(global, us, nil)
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("update %d: fingerprints differ across worker counts: %+v vs %+v", i, one[i], eight[i])
		}
	}
}

func TestFingerprintsSingleUpdate(t *testing.T) {
	fps := Fingerprints([]float64{0}, mkUpdates(nil, []float64{3}), nil)
	if fps[0].L2 != 3 || fps[0].MinNeighbor != 0 || fps[0].MedNeighbor != 0 {
		t.Fatalf("single-update fingerprint = %+v", fps[0])
	}
	if got := Fingerprints(nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty round should produce no fingerprints, got %d", len(got))
	}
}
