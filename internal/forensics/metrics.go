package forensics

import (
	"encoding/json"
	"math"
	"sort"
)

// Confusion is the per-decision confusion matrix of a defense viewed as a
// malicious-update detector: "positive" means malicious, "detected" means
// rejected. A malicious update the defense let into the aggregate is a
// false negative — exactly the DPR numerator, so cumulative FN reconciles
// with fl.Result.MaliciousPassed on synchronous selection-reporting runs.
type Confusion struct {
	// TP counts malicious updates the defense rejected.
	TP int `json:"tp"`
	// FP counts benign updates the defense rejected.
	FP int `json:"fp"`
	// TN counts benign updates the defense accepted.
	TN int `json:"tn"`
	// FN counts malicious updates the defense accepted (DPR's "passed").
	FN int `json:"fn"`
}

func (c *Confusion) add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

func ratio(num, den int) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}

// TPR is the true-positive rate TP/(TP+FN): the fraction of malicious
// updates filtered. NaN when no malicious update was observed.
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// FPR is the false-positive rate FP/(FP+TN): the fraction of benign
// updates wrongly filtered — the production cost of a defense.
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// Precision is TP/(TP+FP): of everything rejected, how much was actually
// malicious.
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// F1 is the harmonic mean of precision and TPR.
func (c Confusion) F1() float64 { return ratio(2*c.TP, 2*c.TP+c.FP+c.FN) }

// RoundMetrics is the detection snapshot of one aggregation.
type RoundMetrics struct {
	// Round is the engine round; Seq distinguishes multiple aggregations in
	// one round (async buffer flushes).
	Round, Seq int
	// Updates and Malicious count the aggregation's inputs.
	Updates, Malicious int
	// Known reports whether the defense exposed its selection; the
	// confusion matrix is meaningful only when it did.
	Known bool
	// ZeroSelection marks a round with no responders or with every update
	// rejected — recorded, never skipped, so streaks of dead rounds are
	// visible in the audit stream.
	ZeroSelection bool
	Confusion
	// AUC is this round's ROC area over the defense's score vector; NaN
	// when the defense produced no scores or the round lacked one of the
	// two classes.
	AUC float64
}

// scorePair is one (suspicion, ground truth) observation. Suspicion is the
// negated Selection score, so higher = more suspicious and ROC sweeps run
// in one orientation for every defense.
type scorePair struct {
	suspicion float64
	malicious bool
}

// detectionAUC is the Mann-Whitney ROC area of the suspicion scores with
// average-rank tie handling: the probability a uniformly random malicious
// update out-scores a uniformly random benign one. O(K log K). NaN when a
// class is missing. pairs is left unmodified.
func detectionAUC(pairs []scorePair) float64 {
	pos, neg := 0, 0
	for _, p := range pairs {
		if p.malicious {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return math.NaN()
	}
	sorted := append([]scorePair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].suspicion < sorted[j].suspicion })
	// Sum of malicious ranks, averaging ranks across ties.
	rankSum := 0.0
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].suspicion == sorted[i].suspicion {
			j++
		}
		avgRank := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if sorted[k].malicious {
				rankSum += avgRank
			}
		}
		i = j
	}
	return (rankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
}

// rocPoint is one vertex of the ROC curve.
type rocPoint struct {
	FPR float64 `json:"fpr"`
	TPR float64 `json:"tpr"`
}

// rocCurve sweeps every distinct suspicion threshold (descending) and
// returns the ROC vertices from (0,0) to (1,1). O(K log K). nil when a
// class is missing.
func rocCurve(pairs []scorePair) []rocPoint {
	pos, neg := 0, 0
	for _, p := range pairs {
		if p.malicious {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil
	}
	sorted := append([]scorePair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].suspicion > sorted[j].suspicion })
	curve := []rocPoint{{0, 0}}
	tp, fp := 0, 0
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].suspicion == sorted[i].suspicion {
			if sorted[j].malicious {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, rocPoint{float64(fp) / float64(neg), float64(tp) / float64(pos)})
		i = j
	}
	return curve
}

// tprAtFPR returns the best achievable TPR at a false-positive budget —
// the Shejwalkar-style production operating point (e.g. "TPR at 1% FPR").
// NaN when a class is missing.
func tprAtFPR(pairs []scorePair, budget float64) float64 {
	curve := rocCurve(pairs)
	if curve == nil {
		return math.NaN()
	}
	best := 0.0
	for _, pt := range curve {
		if pt.FPR <= budget && pt.TPR > best {
			best = pt.TPR
		}
	}
	return best
}

// Summary is the cumulative detection report of a run.
type Summary struct {
	// Defense names the audited aggregation rule.
	Defense string
	// ScoreName names the score semantic of the ROC metrics; empty when the
	// defense produced no scores.
	ScoreName string
	// Aggregations counts observed aggregations; DecisionRounds those with
	// a known selection; ZeroSelectionRounds those with no responders or an
	// all-filtered selection.
	Aggregations, DecisionRounds, ZeroSelectionRounds int
	// Updates and MaliciousSeen count the audited inputs.
	Updates, MaliciousSeen int
	// Confusion is the cumulative confusion matrix over decision rounds.
	Confusion Confusion
	// TPR/FPR/Precision/F1 are the cumulative rates (NaN-guarded).
	TPR, FPR, Precision, F1 float64
	// AUC is the cumulative ROC area over the score-pair reservoir, and
	// TPRAt1FPR the best TPR at a 1% false-positive budget — the two
	// scoreboard columns of the detection sweep. Both NaN without scores.
	AUC, TPRAt1FPR float64
	// ScorePairs counts all (score, truth) pairs observed; ReservoirLen how
	// many the bounded reservoir currently holds.
	ScorePairs, ReservoirLen int
}

// summaryJSON is Summary's one serialization shape — shared by the run
// store, the audit journal and the HTTP endpoint — with every NaN-able
// rate as a nullable pointer (encoding/json rejects NaN).
type summaryJSON struct {
	Defense             string    `json:"defense"`
	ScoreName           string    `json:"scoreName,omitempty"`
	Aggregations        int       `json:"aggregations"`
	DecisionRounds      int       `json:"decisionRounds"`
	ZeroSelectionRounds int       `json:"zeroSelectionRounds"`
	Updates             int       `json:"updates"`
	MaliciousSeen       int       `json:"maliciousSeen"`
	Confusion           Confusion `json:"confusion"`
	TPR                 *float64  `json:"tpr"`
	FPR                 *float64  `json:"fpr"`
	Precision           *float64  `json:"precision"`
	F1                  *float64  `json:"f1"`
	AUC                 *float64  `json:"auc"`
	TPRAt1FPR           *float64  `json:"tprAt1pctFpr"`
	ScorePairs          int       `json:"scorePairs"`
	ReservoirLen        int       `json:"reservoirLen"`
}

// MarshalJSON implements json.Marshaler with the nullable-rate shape.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{
		Defense:             s.Defense,
		ScoreName:           s.ScoreName,
		Aggregations:        s.Aggregations,
		DecisionRounds:      s.DecisionRounds,
		ZeroSelectionRounds: s.ZeroSelectionRounds,
		Updates:             s.Updates,
		MaliciousSeen:       s.MaliciousSeen,
		Confusion:           s.Confusion,
		TPR:                 jf(s.TPR),
		FPR:                 jf(s.FPR),
		Precision:           jf(s.Precision),
		F1:                  jf(s.F1),
		AUC:                 jf(s.AUC),
		TPRAt1FPR:           jf(s.TPRAt1FPR),
		ScorePairs:          s.ScorePairs,
		ReservoirLen:        s.ReservoirLen,
	})
}

// UnmarshalJSON implements json.Unmarshaler: null rates decode to NaN.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var raw summaryJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	nan := func(p *float64) float64 {
		if p == nil {
			return math.NaN()
		}
		return *p
	}
	*s = Summary{
		Defense:             raw.Defense,
		ScoreName:           raw.ScoreName,
		Aggregations:        raw.Aggregations,
		DecisionRounds:      raw.DecisionRounds,
		ZeroSelectionRounds: raw.ZeroSelectionRounds,
		Updates:             raw.Updates,
		MaliciousSeen:       raw.MaliciousSeen,
		Confusion:           raw.Confusion,
		TPR:                 nan(raw.TPR),
		FPR:                 nan(raw.FPR),
		Precision:           nan(raw.Precision),
		F1:                  nan(raw.F1),
		AUC:                 nan(raw.AUC),
		TPRAt1FPR:           nan(raw.TPRAt1FPR),
		ScorePairs:          raw.ScorePairs,
		ReservoirLen:        raw.ReservoirLen,
	}
	return nil
}

// splitmix64 is the deterministic hash behind the reservoir's replacement
// draws, so a fixed-seed run keeps a bit-identical reservoir (time- and
// math/rand-free).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
