package forensics

// Time-travel tests: loading a live-written audit journal back as a
// ReplayRun, the seek/step window API, and two-run diffing with
// null-propagating deltas.

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

// writeAuditJournal runs a collector over a synthetic stream and returns
// the journal path — the fixture both replay tests load.
func writeAuditJournal(t *testing.T, rounds, benign, malicious int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	c, err := NewCollector(Options{Defense: "stub", AuditPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		feedRound(c, r, benign, malicious)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAuditJournal(t *testing.T) {
	path := writeAuditJournal(t, 5, 3, 1)
	run, err := LoadAuditJournal(path, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	if run.Name != "fixture" || run.Source != "audit-journal" {
		t.Fatalf("run identity = %q/%q", run.Name, run.Source)
	}
	if len(run.Rounds) != 5 {
		t.Fatalf("loaded %d rounds, want 5", len(run.Rounds))
	}
	for i, rr := range run.Rounds {
		if rr.Audit.Round != i {
			t.Fatalf("round %d out of order: audit says %d", i, rr.Audit.Round)
		}
		if len(rr.Audit.Records) != 4 {
			t.Fatalf("round %d has %d records, want 4", i, len(rr.Audit.Records))
		}
		// Audit journals carry no accuracy timeline.
		if !math.IsNaN(rr.Accuracy) {
			t.Fatalf("round %d accuracy = %v, want NaN", i, rr.Accuracy)
		}
		// The metrics decode must restore ratios through the confusion, not
		// stored copies: the separable fixture filters every attacker.
		if got := rr.Audit.Metrics.TPR(); got != 1 {
			t.Fatalf("round %d replayed TPR = %v, want 1", i, got)
		}
	}
	if _, err := LoadAuditJournal(filepath.Join(t.TempDir(), "missing.jsonl"), "x"); err == nil {
		t.Fatal("loading a missing journal should fail")
	}
}

func TestReplayRoundsSeekStep(t *testing.T) {
	path := writeAuditJournal(t, 10, 2, 1)
	run, err := LoadAuditJournal(path, "seek")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	NewReplay([]ReplayRun{run}).Mount(mux, "/api/replay")
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var runs []struct {
		Name   string `json:"name"`
		Source string `json:"source"`
		Rounds int    `json:"rounds"`
	}
	if code := get("/api/replay/runs", &runs); code != http.StatusOK {
		t.Fatalf("/runs status %d", code)
	}
	if len(runs) != 1 || runs[0].Name != "seek" || runs[0].Rounds != 10 {
		t.Fatalf("runs listing = %+v", runs)
	}

	var page struct {
		Run    string `json:"run"`
		Total  int    `json:"total"`
		From   int    `json:"from"`
		Rounds []struct {
			Audit jsonRoundAudit `json:"audit"`
		} `json:"rounds"`
	}
	if code := get("/api/replay/rounds?run=seek&from=4&n=3", &page); code != http.StatusOK {
		t.Fatalf("/rounds status %d", code)
	}
	if page.Total != 10 || page.From != 4 || len(page.Rounds) != 3 {
		t.Fatalf("seek window = %+v", page)
	}
	if page.Rounds[0].Audit.Round != 4 || page.Rounds[2].Audit.Round != 6 {
		t.Fatalf("window rounds [%d, %d], want [4, 6]", page.Rounds[0].Audit.Round, page.Rounds[2].Audit.Round)
	}
	// Seeking past the end clamps to an empty window, never a panic or 500.
	if code := get("/api/replay/rounds?run=seek&from=99&n=5", &page); code != http.StatusOK {
		t.Fatalf("past-end status %d", code)
	}
	if len(page.Rounds) != 0 {
		t.Fatalf("past-end window returned %d rounds", len(page.Rounds))
	}
	if code := get("/api/replay/rounds?run=nope", &page); code != http.StatusNotFound {
		t.Fatalf("unknown run status %d, want 404", code)
	}
	if code := get("/api/replay/rounds?run=seek&from=-1", &page); code != http.StatusBadRequest {
		t.Fatalf("negative seek status %d, want 400", code)
	}
}

func TestReplayDiff(t *testing.T) {
	// Run A filters its attacker every round; run B has no attackers and a
	// shorter history, so the diff must align on min length and report the
	// overhang.
	pathA := writeAuditJournal(t, 6, 3, 1)
	pathB := writeAuditJournal(t, 4, 3, 0)
	runA, err := LoadAuditJournal(pathA, "a")
	if err != nil {
		t.Fatal(err)
	}
	runB, err := LoadAuditJournal(pathB, "b")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	NewReplay([]ReplayRun{runA, runB}).Mount(mux, "/api/replay")
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/replay/diff?a=a&b=b")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var diff struct {
		A       string `json:"a"`
		B       string `json:"b"`
		Aligned int    `json:"aligned"`
		AExtra  int    `json:"aExtra"`
		BExtra  int    `json:"bExtra"`
		Rounds  []struct {
			Index int      `json:"index"`
			A     diffSide `json:"a"`
			B     diffSide `json:"b"`
			Delta struct {
				TPR      *float64 `json:"tpr"`
				Accuracy *float64 `json:"accuracy"`
			} `json:"delta"`
		} `json:"rounds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	if diff.Aligned != 4 || diff.AExtra != 2 || diff.BExtra != 0 {
		t.Fatalf("alignment = %d aligned, %d/%d extra, want 4, 2/0", diff.Aligned, diff.AExtra, diff.BExtra)
	}
	row := diff.Rounds[0]
	if row.A.TPR == nil || *row.A.TPR != 1 {
		t.Fatalf("run A round 0 TPR = %v, want 1", row.A.TPR)
	}
	// Run B saw no attackers, so its TPR is 0/0 — null — and the delta must
	// propagate the null rather than fabricate a number.
	if row.B.TPR != nil {
		t.Fatalf("run B round 0 TPR = %v, want null", *row.B.TPR)
	}
	if row.Delta.TPR != nil {
		t.Fatalf("TPR delta = %v, want null (one side unmeasured)", *row.Delta.TPR)
	}
	// Neither journal carries accuracy, so the accuracy delta is null too.
	if row.Delta.Accuracy != nil {
		t.Fatal("accuracy delta should be null for audit-journal sources")
	}
	if row.A.Accepted != 3 || row.A.Rejected != 1 {
		t.Fatalf("run A decisions = %d/%d, want 3 accepted 1 rejected", row.A.Accepted, row.A.Rejected)
	}

	resp2, err := http.Get(srv.URL + "/api/replay/diff?a=a&b=missing")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown diff side status %d, want 404", resp2.StatusCode)
	}
}

// TestFingerprintJSONRoundTrip pins the nanjson-mandated codec: finite
// fingerprints render exactly as the raw struct used to, and NaN components
// become nulls that decode back to NaN.
func TestFingerprintJSONRoundTrip(t *testing.T) {
	fin := Fingerprint{L2: 1.5, CosMean: -0.25, MinNeighbor: 0.125, MedNeighbor: 2}
	b, err := json.Marshal(fin)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"l2":1.5,"cosMean":-0.25,"minNeighbor":0.125,"medNeighbor":2}`
	if string(b) != want {
		t.Fatalf("finite fingerprint encodes as %s, want %s", b, want)
	}
	var back Fingerprint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != fin {
		t.Fatalf("round trip drifted: %+v vs %+v", back, fin)
	}

	nan := Fingerprint{L2: 3, CosMean: math.NaN(), MinNeighbor: math.Inf(1), MedNeighbor: math.NaN()}
	b, err = json.Marshal(nan)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"l2":3,"cosMean":null,"minNeighbor":null,"medNeighbor":null}` {
		t.Fatalf("NaN fingerprint encodes as %s", b)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.L2 != 3 || !math.IsNaN(back.CosMean) || !math.IsNaN(back.MinNeighbor) || !math.IsNaN(back.MedNeighbor) {
		t.Fatalf("NaN round trip = %+v", back)
	}
}
