package forensics

// Live-feed tests: cursor math on the ring, backlog + live subscription
// semantics, drop-oldest backpressure, the zero-allocation no-subscriber
// hot path, SSE framing and Last-Event-ID resumption, and the -race hammer
// that pins the observation-only contract under concurrent polling.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventsSinceCursor(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub", Ring: 8})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		feedRound(c, r, 2, 1)
	}
	events, cursor := c.EventsSince(0)
	if cursor != 5 || len(events) != 5 {
		t.Fatalf("since 0: cursor %d with %d events, want 5/5", cursor, len(events))
	}
	for i, ev := range events {
		if ev.Cursor != uint64(i+1) {
			t.Fatalf("event %d carries cursor %d, want %d", i, ev.Cursor, i+1)
		}
		var audit jsonRoundAudit
		if err := json.Unmarshal(ev.Data, &audit); err != nil {
			t.Fatalf("event %d payload: %v", i, err)
		}
		if audit.Round != i {
			t.Fatalf("event %d is round %d, want %d", i, audit.Round, i)
		}
	}
	events, cursor = c.EventsSince(3)
	if cursor != 5 || len(events) != 2 || events[0].Cursor != 4 || events[1].Cursor != 5 {
		t.Fatalf("since 3: cursor %d, events %+v", cursor, events)
	}
	if events, _ := c.EventsSince(5); len(events) != 0 {
		t.Fatalf("since head: %d events, want none", len(events))
	}
}

// TestEventsSinceRingOverflow pins the derived-cursor arithmetic once the
// ring has wrapped: the oldest surviving entry's cursor is total − ring + 1,
// and a poller whose gap outran the ring simply gets the whole ring (the
// missed middle is gone, not misnumbered).
func TestEventsSinceRingOverflow(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub", Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		feedRound(c, r, 2, 1)
	}
	events, cursor := c.EventsSince(0)
	if cursor != 10 || len(events) != 4 {
		t.Fatalf("cursor %d with %d events, want 10/4", cursor, len(events))
	}
	for i, ev := range events {
		want := uint64(7 + i)
		if ev.Cursor != want {
			t.Fatalf("wrapped event %d carries cursor %d, want %d", i, ev.Cursor, want)
		}
		var audit jsonRoundAudit
		if err := json.Unmarshal(ev.Data, &audit); err != nil {
			t.Fatal(err)
		}
		if audit.Round != int(want)-1 {
			t.Fatalf("cursor %d maps to round %d, want %d", ev.Cursor, audit.Round, want-1)
		}
	}
}

func TestSubscribeBacklogAndLive(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	feedRound(c, 0, 2, 1)
	feedRound(c, 1, 2, 1)
	backlog, ch, cancel := c.Subscribe(0, 0)
	if len(backlog) != 2 || backlog[0].Cursor != 1 || backlog[1].Cursor != 2 {
		t.Fatalf("backlog %+v, want cursors 1,2", backlog)
	}
	if got := c.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d, want 1", got)
	}
	feedRound(c, 2, 2, 1)
	select {
	case ev := <-ch:
		if ev.Cursor != 3 {
			t.Fatalf("live event cursor %d, want 3", ev.Cursor)
		}
	case <-time.After(time.Second):
		t.Fatal("no live event delivered")
	}
	cancel()
	if got := c.Subscribers(); got != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", got)
	}
	if _, open := <-ch; open {
		t.Fatal("cancel should close the subscription channel")
	}
	cancel() // idempotent
}

// TestSubscriberDropOldest pins the backpressure contract: a stalled
// consumer's queue sheds its oldest events, keeps the newest, and the
// producer never blocks.
func TestSubscriberDropOldest(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	_, ch, cancel := c.Subscribe(0, 2)
	defer cancel()
	for r := 0; r < 5; r++ {
		feedRound(c, r, 2, 1)
	}
	// Queue depth 2 after 5 events: the two newest survive.
	want := []uint64{4, 5}
	for i, w := range want {
		select {
		case ev := <-ch:
			if ev.Cursor != w {
				t.Fatalf("queued event %d carries cursor %d, want %d", i, ev.Cursor, w)
			}
		default:
			t.Fatalf("queue holds fewer than %d events", len(want))
		}
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected extra queued event with cursor %d", ev.Cursor)
	default:
	}
	c.mu.Lock()
	dropped := c.subs[0].dropped
	c.mu.Unlock()
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
}

// TestBroadcastNoSubscribersZeroAlloc is the acceptance regression for the
// no-dashboard hot path: with nobody subscribed, the per-aggregation
// broadcast must not allocate (no marshal, no event construction).
func TestBroadcastNoSubscribersZeroAlloc(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	feedRound(c, 0, 3, 1)
	ra := c.Rounds()[0]
	allocs := testing.AllocsPerRun(200, func() {
		c.mu.Lock()
		c.broadcastLocked(ra)
		c.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("no-subscriber broadcast allocates %.1f objects per round, want 0", allocs)
	}
}

// readSSEEvent consumes one id/event/data frame from an SSE stream.
func readSSEEvent(t *testing.T, r *bufio.Reader) (id string, data string) {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended mid-frame: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if data != "" {
				return id, data
			}
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, "event: "):
			if ev := strings.TrimPrefix(line, "event: "); ev != "round" {
				t.Fatalf("unexpected SSE event type %q", ev)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

func TestServeSSERoundTrip(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	feedRound(c, 0, 2, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	req, err := http.NewRequest("GET", srv.URL+"/forensics/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control %q, want no-store", cc)
	}
	br := bufio.NewReader(resp.Body)
	id, data := readSSEEvent(t, br)
	if id != "1" {
		t.Fatalf("backlog event id %q, want 1", id)
	}
	var audit jsonRoundAudit
	if err := json.Unmarshal([]byte(data), &audit); err != nil {
		t.Fatalf("backlog payload: %v\n%s", err, data)
	}
	if audit.Round != 0 || len(audit.Records) != 3 {
		t.Fatalf("backlog audit = round %d with %d records", audit.Round, len(audit.Records))
	}

	// A live aggregation lands as the next frame.
	feedRound(c, 1, 2, 1)
	id, data = readSSEEvent(t, br)
	if id != "2" {
		t.Fatalf("live event id %q, want 2", id)
	}
	if err := json.Unmarshal([]byte(data), &audit); err != nil || audit.Round != 1 {
		t.Fatalf("live payload round %d (err %v)", audit.Round, err)
	}
}

// TestServeSSEResume pins Last-Event-ID semantics: a reconnecting client
// presenting the last cursor it saw receives only the newer backlog.
func TestServeSSEResume(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		feedRound(c, r, 2, 1)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	req, err := http.NewRequest("GET", srv.URL+"/forensics/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if id, _ := readSSEEvent(t, br); id != "3" {
		t.Fatalf("resumed stream starts at id %q, want 3", id)
	}
	if id, _ := readSSEEvent(t, br); id != "4" {
		t.Fatalf("second resumed event id %q, want 4", id)
	}
}

// TestJSONEndpointsUncacheable is the header satellite: every forensics
// JSON response reports live state and must carry Cache-Control: no-store.
func TestJSONEndpointsUncacheable(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	feedRound(c, 0, 2, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	for _, path := range []string{"/forensics/metrics", "/forensics/rounds", "/forensics/rounds?since=0"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("%s: Cache-Control %q, want no-store", path, cc)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q, want application/json", path, ct)
		}
	}
}

func TestRoundsSinceEndpoint(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		feedRound(c, r, 2, 1)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	var got struct {
		Cursor uint64 `json:"cursor"`
		Rounds []struct {
			Cursor uint64         `json:"cursor"`
			Audit  jsonRoundAudit `json:"audit"`
		} `json:"rounds"`
	}
	resp, err := http.Get(srv.URL + "/forensics/rounds?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Cursor != 3 || len(got.Rounds) != 2 {
		t.Fatalf("cursor %d with %d rounds, want 3/2", got.Cursor, len(got.Rounds))
	}
	if got.Rounds[0].Cursor != 2 || got.Rounds[0].Audit.Round != 1 {
		t.Fatalf("first incremental round = %+v", got.Rounds[0])
	}
	// Malformed cursors are a client error, not a panic.
	resp2, err := http.Get(srv.URL + "/forensics/rounds?since=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status %d, want 400", resp2.StatusCode)
	}
}

// TestStreamHammerObservationOnly is the -race satellite: N goroutines
// hammer the metrics endpoint, the incremental poll and the SSE stream —
// with connect/disconnect churn — while the engine streams aggregations.
// The hammered collector must end bit-identical to an unpolled twin fed the
// same fixed-seed stream, and no subscriber may leak once the pollers
// disconnect.
func TestStreamHammerObservationOnly(t *testing.T) {
	const rounds = 150
	hammered, err := NewCollector(Options{Defense: "stub", Seed: 42, Ring: 16})
	if err != nil {
		t.Fatal(err)
	}
	twin, err := NewCollector(Options{Defense: "stub", Seed: 42, Ring: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(hammered.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { // metrics scraper
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/forensics/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { // incremental poller carrying its cursor forward
			defer wg.Done()
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/forensics/rounds?since=%d", srv.URL, cursor))
				if err != nil {
					continue
				}
				var page struct {
					Cursor uint64 `json:"cursor"`
				}
				if json.NewDecoder(resp.Body).Decode(&page) == nil {
					cursor = page.Cursor
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { // SSE churn: connect, read a little, disconnect, repeat
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/forensics/stream")
				if err != nil {
					continue
				}
				io.CopyN(io.Discard, resp.Body, 256)
				resp.Body.Close()
			}
		}()
	}

	for r := 0; r < rounds; r++ {
		feedRound(hammered, r, 5, 2)
		feedRound(twin, r, 5, 2)
	}
	close(stop)
	wg.Wait()
	srv.Close() // drains in-flight handlers; SSE subscribers see the disconnect

	if a, b := hammered.Summary(), twin.Summary(); a != b {
		t.Fatalf("polling perturbed the detection summary:\n%+v\n%+v", a, b)
	}
	ra, rb := hammered.Rounds(), twin.Rounds()
	if len(ra) != len(rb) {
		t.Fatalf("ring lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Metrics != rb[i].Metrics {
			t.Fatalf("ring entry %d differs: %+v vs %+v", i, ra[i].Metrics, rb[i].Metrics)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for hammered.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber leak: %d still attached after disconnect churn", hammered.Subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCollectorCloseEndsSubscriptions: Close must shut every live feed so
// attached SSE handlers return instead of blocking shutdown.
func TestCollectorCloseEndsSubscriptions(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	_, ch, cancel := c.Subscribe(0, 0)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("Close delivered an event instead of closing the feed")
		}
	case <-time.After(time.Second):
		t.Fatal("subscription channel still open after Close")
	}
	cancel() // must stay safe after Close
	if got := c.Subscribers(); got != 0 {
		t.Fatalf("subscribers after Close = %d", got)
	}
}
