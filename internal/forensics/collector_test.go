package forensics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/fl"
	"repro/internal/persist"
)

// feedRound pushes one synthetic aggregation into c: benign updates score
// high, malicious low, and the defense accepts exactly the benign ones.
func feedRound(c *Collector, round, benign, malicious int) {
	var updates []fl.Update
	var scores []float64
	var accepted []int
	for i := 0; i < benign; i++ {
		updates = append(updates, fl.Update{ClientID: i, Weights: []float64{1, float64(i)}, NumSamples: 1})
		scores = append(scores, 10+float64(i))
		accepted = append(accepted, i)
	}
	for i := 0; i < malicious; i++ {
		updates = append(updates, fl.Update{ClientID: 1000 + i, Weights: []float64{-5, 0}, NumSamples: 1, Malicious: true})
		scores = append(scores, float64(i))
	}
	c.ObserveAggregation(round, []float64{0, 0}, updates, fl.Selection{
		Accepted: accepted, Scores: scores, ScoreName: "test-score",
	})
}

func TestCollectorStreamsConfusionAndAUC(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		feedRound(c, r, 4, 2)
	}
	s := c.Summary()
	if s.Aggregations != 5 || s.DecisionRounds != 5 {
		t.Fatalf("rounds = %d/%d, want 5/5", s.Aggregations, s.DecisionRounds)
	}
	if s.Confusion.TP != 10 || s.Confusion.TN != 20 || s.Confusion.FP != 0 || s.Confusion.FN != 0 {
		t.Fatalf("confusion = %+v", s.Confusion)
	}
	if s.TPR != 1 || s.FPR != 0 {
		t.Fatalf("TPR/FPR = %v/%v, want 1/0", s.TPR, s.FPR)
	}
	if s.AUC != 1 || s.TPRAt1FPR != 1 {
		t.Fatalf("AUC = %v TPR@1%%FPR = %v, want 1/1 for separable scores", s.AUC, s.TPRAt1FPR)
	}
	if s.ScorePairs != 30 || s.ReservoirLen != 30 {
		t.Fatalf("pairs = %d reservoir = %d, want 30/30", s.ScorePairs, s.ReservoirLen)
	}
	if s.MaliciousSeen != 10 || s.Updates != 30 {
		t.Fatalf("updates = %d malicious = %d", s.Updates, s.MaliciousSeen)
	}
}

// TestCollectorZeroSelectionRounds is the all-filtered / zero-responder
// regression: both degenerate round shapes must be recorded as
// zero-selection rounds with NaN-guarded rates — never skipped, never a
// division by zero.
func TestCollectorZeroSelectionRounds(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	// Zero responders: the engine reports an empty round with a zero
	// Selection — the defense never ran, so no decision is claimed.
	c.ObserveAggregation(0, []float64{0}, nil, fl.Selection{})
	// All filtered: updates exist, none accepted.
	us := mkUpdates([]bool{true, false}, []float64{1}, []float64{2})
	c.ObserveAggregation(1, []float64{0}, us, fl.Selection{Accepted: []int{}})
	s := c.Summary()
	if s.ZeroSelectionRounds != 2 {
		t.Fatalf("zero-selection rounds = %d, want 2", s.ZeroSelectionRounds)
	}
	if s.Aggregations != 2 || s.DecisionRounds != 1 {
		t.Fatalf("aggregations = %d decisions = %d, want 2/1 (no decision on the zero-responder round)", s.Aggregations, s.DecisionRounds)
	}
	if s.Confusion.TP != 1 || s.Confusion.FP != 1 {
		t.Fatalf("all-filtered confusion = %+v, want TP=1 FP=1", s.Confusion)
	}
	// TPR = 1/1 (the attacker was filtered), FPR = 1/1 (so was the benign).
	if s.TPR != 1 || s.FPR != 1 {
		t.Fatalf("rates = %v/%v, want 1/1", s.TPR, s.FPR)
	}
	rounds := c.Rounds()
	if len(rounds) != 2 || !rounds[0].ZeroSelection || !rounds[1].ZeroSelection {
		t.Fatalf("ring should mark both rounds zero-selection: %+v", rounds)
	}
}

func TestCollectorUnknownSelection(t *testing.T) {
	c, err := NewCollector(Options{Defense: "trmean"})
	if err != nil {
		t.Fatal(err)
	}
	us := mkUpdates([]bool{true, false}, []float64{1}, []float64{2})
	c.ObserveAggregation(0, []float64{0}, us, fl.Selection{})
	s := c.Summary()
	if s.Aggregations != 1 || s.DecisionRounds != 0 {
		t.Fatalf("non-selecting defense: aggregations %d decisions %d, want 1/0", s.Aggregations, s.DecisionRounds)
	}
	if (s.Confusion != Confusion{}) {
		t.Fatalf("confusion should stay empty, got %+v", s.Confusion)
	}
	if !math.IsNaN(s.TPR) || !math.IsNaN(s.AUC) {
		t.Fatalf("undecided metrics should be NaN, got TPR=%v AUC=%v", s.TPR, s.AUC)
	}
}

// TestCollectorBoundedMemory pins the production heap contract: the ring
// and the reservoir never exceed their caps, no matter how many rounds or
// score pairs stream through — the property that keeps a 100k-client
// detection sweep inside the lazy population's heap bounds.
func TestCollectorBoundedMemory(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub", Ring: 8, ReservoirCap: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 500; r++ {
		feedRound(c, r, 6, 2)
	}
	if len(c.Rounds()) != 8 {
		t.Fatalf("ring grew to %d, cap 8", len(c.Rounds()))
	}
	s := c.Summary()
	if s.ReservoirLen != 64 {
		t.Fatalf("reservoir grew to %d, cap 64", s.ReservoirLen)
	}
	if s.ScorePairs != 500*8 {
		t.Fatalf("pairs seen = %d, want 4000", s.ScorePairs)
	}
	// The ring holds the newest rounds.
	rounds := c.Rounds()
	if rounds[0].Round != 492 || rounds[7].Round != 499 {
		t.Fatalf("ring window [%d, %d], want [492, 499]", rounds[0].Round, rounds[7].Round)
	}
	// The reservoir still separates the classes perfectly.
	if s.AUC != 1 {
		t.Fatalf("reservoir AUC = %v, want 1", s.AUC)
	}
}

// TestCollectorDeterministicReservoir: identical streams with identical
// seeds keep bit-identical reservoirs (and therefore metrics); a different
// seed may sample differently but stays within bounds.
func TestCollectorDeterministicReservoir(t *testing.T) {
	mk := func(seed int64) Summary {
		c, err := NewCollector(Options{Defense: "stub", ReservoirCap: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 100; r++ {
			feedRound(c, r, 5, 1)
		}
		return c.Summary()
	}
	a, b := mk(11), mk(11)
	if a != b {
		t.Fatalf("same seed produced different summaries:\n%+v\n%+v", a, b)
	}
}

func TestCollectorAsyncSeq(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	feedRound(c, 3, 2, 0)
	feedRound(c, 3, 2, 0) // second buffer flush in the same engine step
	rounds := c.Rounds()
	if rounds[0].Seq != 0 || rounds[1].Seq != 1 {
		t.Fatalf("async flush sequence = %d, %d, want 0, 1", rounds[0].Seq, rounds[1].Seq)
	}
}

func TestCollectorAuditJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	c, err := NewCollector(Options{Defense: "stub", AuditPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		feedRound(c, r, 3, 1)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 3 {
		t.Fatalf("journal has %d entries, want 3", j.Len())
	}
	var entry jsonRoundAudit
	ok, err := j.Lookup("r00000001.0000", &entry)
	if err != nil || !ok {
		t.Fatalf("round 1 audit missing: %v", err)
	}
	if entry.Round != 1 || len(entry.Records) != 4 {
		t.Fatalf("journaled audit = round %d with %d records", entry.Round, len(entry.Records))
	}
	mal := 0
	for _, rec := range entry.Records {
		if rec.Malicious {
			mal++
			if rec.Accepted {
				t.Fatal("journal shows the rejected attacker as accepted")
			}
		}
		if rec.Score == nil {
			t.Fatal("scored defense should journal per-update scores")
		}
	}
	if mal != 1 {
		t.Fatalf("journaled %d malicious records, want 1", mal)
	}
	if entry.Metrics.TPR == nil || *entry.Metrics.TPR != 1 {
		t.Fatalf("journaled round TPR = %v, want 1", entry.Metrics.TPR)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		feedRound(c, r, 4, 1)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("%s: %v\n%s", path, err, body)
		}
	}

	// The canonical routes live under /forensics/; the legacy top-level
	// paths answer with permanent redirects that http.Get follows, so both
	// spellings must serve the same JSON.
	for _, prefix := range []string{"/forensics", ""} {
		var metrics struct {
			Cumulative Summary           `json:"cumulative"`
			Current    *jsonRoundMetrics `json:"current"`
		}
		get(prefix+"/metrics", &metrics)
		if metrics.Cumulative.Aggregations != 4 {
			t.Fatalf("cumulative aggregations = %d, want 4", metrics.Cumulative.Aggregations)
		}
		if metrics.Cumulative.AUC != 1 {
			t.Fatalf("cumulative AUC = %v, want 1", metrics.Cumulative.AUC)
		}
		if metrics.Current == nil || metrics.Current.Round != 3 {
			t.Fatalf("current round = %+v, want round 3", metrics.Current)
		}

		var rounds []jsonRoundAudit
		get(prefix+"/rounds", &rounds)
		if len(rounds) != 4 || len(rounds[0].Records) != 5 {
			t.Fatalf("rounds endpoint returned %d rounds", len(rounds))
		}
	}

	// The legacy paths must redirect (not duplicate) so scrapers migrate.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noRedirect.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPermanentRedirect {
		t.Fatalf("/metrics status %d, want %d", resp.StatusCode, http.StatusPermanentRedirect)
	}
	if loc := resp.Header.Get("Location"); loc != "/forensics/metrics" {
		t.Fatalf("/metrics redirects to %q, want /forensics/metrics", loc)
	}
}

func TestServeEphemeral(t *testing.T) {
	c, err := NewCollector(Options{Defense: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	feedRound(c, 0, 2, 1)
	addr, shutdown, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
