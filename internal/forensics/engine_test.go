package forensics

// Engine-integration tests over the in-process transport: the audit
// stream must reconcile with the engine's own DPR accounting, stay a pure
// observer (bit-identical results on/off), and record all-filtered rounds.

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/vec"
)

func tinySim(t *testing.T, seed int64, agg fl.Aggregator, atk fl.Attack, obs fl.AggregationObserver) *fl.Simulation {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, seed)
	shards := dataset.PartitionIID(rand.New(rand.NewSource(seed)), train.Len(), 12)
	newModel := func(r *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(r, spec.Channels, spec.Size, spec.Classes)
	}
	cfg := fl.Config{
		TotalClients: 12,
		PerRound:     6,
		AttackerFrac: 0.25,
		Rounds:       5,
		LocalEpochs:  1,
		BatchSize:    8,
		LR:           0.05,
		Seed:         seed,
		EvalEvery:    1,
		EvalLimit:    64,
		Observer:     obs,
	}
	sim, err := fl.NewSimulation(cfg, train, test, shards, newModel, agg, atk)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// strongAttack submits far-out updates a Krum-family defense reliably
// rejects, so the reconciliation test sees both filtered and passed cases
// deterministically.
type strongAttack struct{}

func (strongAttack) Name() string { return "strong" }

func (strongAttack) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		v := make([]float64, len(ctx.Global))
		for j := range v {
			v[j] = 50
		}
		out[i] = v
	}
	return out, nil
}

// TestAuditReconcilesWithDPR pins the acceptance contract: on a
// synchronous selection-reporting run, cumulative FN equals the engine's
// MaliciousPassed and TP+FN equals MaliciousSubmitted.
func TestAuditReconcilesWithDPR(t *testing.T) {
	col, err := NewCollector(Options{Defense: "mkrum", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim := tinySim(t, 42, defense.MultiKrum{F: 2}, strongAttack{}, col)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.DPRKnown || res.MaliciousSubmitted == 0 {
		t.Fatalf("fixture produced no attacked selection rounds: %+v", res)
	}
	s := col.Summary()
	if s.Confusion.FN != res.MaliciousPassed {
		t.Fatalf("audit FN %d != engine MaliciousPassed %d", s.Confusion.FN, res.MaliciousPassed)
	}
	if got := s.Confusion.TP + s.Confusion.FN; got != res.MaliciousSubmitted {
		t.Fatalf("audit TP+FN %d != engine MaliciousSubmitted %d", got, res.MaliciousSubmitted)
	}
	if s.ScoreName != "neg-krum-distance" {
		t.Fatalf("score name %q", s.ScoreName)
	}
	if s.Aggregations != len(res.Rounds) {
		t.Fatalf("audited %d aggregations over %d rounds", s.Aggregations, len(res.Rounds))
	}
	// The obvious 50-vector outliers must be perfectly separable for Krum.
	if s.AUC != 1 {
		t.Fatalf("AUC = %v, want 1 for far-out attackers", s.AUC)
	}
}

// TestObserverIsPure pins that attaching forensics changes nothing: the
// run's metrics are bit-identical with and without the collector.
func TestObserverIsPure(t *testing.T) {
	run := func(obs fl.AggregationObserver) *fl.Result {
		sim := tinySim(t, 7, defense.MultiKrum{F: 2}, strongAttack{}, obs)
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	col, err := NewCollector(Options{Defense: "mkrum"})
	if err != nil {
		t.Fatal(err)
	}
	with := run(col)
	without := run(nil)
	if with.MaxAccuracy != without.MaxAccuracy || with.FinalAccuracy != without.FinalAccuracy {
		t.Fatalf("forensics changed accuracies: %v/%v vs %v/%v",
			with.MaxAccuracy, with.FinalAccuracy, without.MaxAccuracy, without.FinalAccuracy)
	}
	if with.MaliciousPassed != without.MaliciousPassed || with.MaliciousSubmitted != without.MaliciousSubmitted {
		t.Fatal("forensics changed DPR accounting")
	}
	for i := range with.Rounds {
		if with.Rounds[i] != without.Rounds[i] {
			t.Fatalf("round %d trace differs: %+v vs %+v", i, with.Rounds[i], without.Rounds[i])
		}
	}
}

// TestAsyncZeroResponderRoundsRecorded pins the observer contract in
// async-buffered mode: an engine step that produces no updates and
// flushes no buffer must still reach the audit stream as a zero-selection
// round, exactly like the synchronous branch.
func TestAsyncZeroResponderRoundsRecorded(t *testing.T) {
	col, err := NewCollector(Options{Defense: "mkrum"})
	if err != nil {
		t.Fatal(err)
	}
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 11)
	shards := dataset.PartitionIID(rand.New(rand.NewSource(11)), train.Len(), 12)
	newModel := func(r *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(r, spec.Channels, spec.Size, spec.Classes)
	}
	cfg := fl.Config{
		TotalClients: 12,
		PerRound:     4,
		Rounds:       3,
		LocalEpochs:  1,
		BatchSize:    8,
		LR:           0.05,
		Seed:         11,
		EvalEvery:    1,
		EvalLimit:    40,
		Observer:     col,
		Scenario: fl.Scenario{
			// Every selected client drops, so no update ever enters the
			// async buffer and no flush ever fires.
			Participation: fl.RandomChurn{DropoutProb: 1},
			Async:         &fl.AsyncConfig{Buffer: 2, MaxDelay: 1},
		},
	}
	asim, err := fl.NewSimulation(cfg, train, test, shards, newModel, defense.MultiKrum{F: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := asim.Run(); err != nil {
		t.Fatal(err)
	}
	s := col.Summary()
	if s.Aggregations != cfg.Rounds || s.ZeroSelectionRounds != cfg.Rounds {
		t.Fatalf("async dead rounds: audited %d aggregations, %d zero-selection; want %d/%d",
			s.Aggregations, s.ZeroSelectionRounds, cfg.Rounds, cfg.Rounds)
	}
	if s.DecisionRounds != 0 || s.Updates != 0 {
		t.Fatalf("dead rounds should carry no decisions or updates: %+v", s)
	}
}

// rejectAll is the all-filtered defense: it reports a known-but-empty
// selection and keeps the global model.
type rejectAll struct{}

func (rejectAll) Name() string { return "rejectall" }

func (rejectAll) Aggregate(global []float64, _ []fl.Update) ([]float64, fl.Selection, error) {
	return vec.Clone(global), fl.Selection{Accepted: []int{}}, nil
}

// TestAllFilteredRoundsRecorded is the satellite regression over the
// in-process transport: a defense that rejects every update must yield a
// completed run with DPR 0 (not NaN, not a panic), untouched global
// weights, and one zero-selection audit entry per round.
func TestAllFilteredRoundsRecorded(t *testing.T) {
	col, err := NewCollector(Options{Defense: "rejectall"})
	if err != nil {
		t.Fatal(err)
	}
	sim := tinySim(t, 9, rejectAll{}, strongAttack{}, col)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.DPRKnown {
		t.Fatal("empty selection is still a known selection")
	}
	if res.MaliciousPassed != 0 {
		t.Fatalf("all-filtered run passed %d malicious updates", res.MaliciousPassed)
	}
	if res.MaliciousSubmitted > 0 && res.DPR() != 0 {
		t.Fatalf("DPR = %v, want 0", res.DPR())
	}
	s := col.Summary()
	if s.ZeroSelectionRounds != s.Aggregations || s.Aggregations != len(res.Rounds) {
		t.Fatalf("zero-selection rounds %d of %d aggregations over %d rounds",
			s.ZeroSelectionRounds, s.Aggregations, len(res.Rounds))
	}
	if s.Confusion.TN != 0 || s.Confusion.FN != 0 {
		t.Fatalf("all-filtered run accepted something: %+v", s.Confusion)
	}
	if s.Confusion.TP == 0 || s.Confusion.FP == 0 {
		t.Fatalf("rejections not recorded: %+v", s.Confusion)
	}
	// Every accuracy is the untouched initial model's: max == final.
	if res.MaxAccuracy != res.FinalAccuracy {
		t.Fatalf("global moved under an all-filtered defense: %v vs %v", res.MaxAccuracy, res.FinalAccuracy)
	}
}
