package forensics

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/fl"
	"repro/internal/persist"
)

// AuditRecord is the per-update line of the audit stream: the defense's
// decision on one update joined with its fingerprint and the ground truth.
type AuditRecord struct {
	// ClientID identifies the submitting client.
	ClientID int `json:"client"`
	// Malicious is the simulator's ground truth (always false over real
	// sockets, where the server cannot know).
	Malicious bool `json:"malicious,omitempty"`
	// Decided reports whether the defense exposed a selection at all;
	// Accepted is meaningful only when it did.
	Decided bool `json:"decided"`
	// Accepted reports whether the update entered the aggregate.
	Accepted bool `json:"accepted"`
	// Group is the hierarchical group-tier aggregator that consumed the
	// update, or −1 under flat aggregation.
	Group int `json:"group"`
	// Weight is the aggregation weight for weighted rules (nil otherwise).
	Weight *float64 `json:"weight,omitempty"`
	// Score is the defense's benignness score (nil for unscored rules).
	Score *float64 `json:"score,omitempty"`
	// Fingerprint is the update's geometric summary.
	Fingerprint Fingerprint `json:"fingerprint"`
}

// RoundAudit is one aggregation's full audit entry: every update's record
// plus the aggregation's detection metrics.
type RoundAudit struct {
	// Round and Seq identify the aggregation (Seq > 0 only for async
	// buffer flushes after the first in a round).
	Round int `json:"round"`
	Seq   int `json:"seq"`
	// Defense names the rule that made the decisions.
	Defense string `json:"defense"`
	// ScoreName names the score semantic, when the rule produced scores.
	ScoreName string `json:"scoreName,omitempty"`
	// ZeroSelection marks a no-responder or all-filtered aggregation.
	ZeroSelection bool `json:"zeroSelection,omitempty"`
	// Records holds one entry per update, in submission order.
	Records []AuditRecord `json:"records"`
	// Metrics is the aggregation's detection snapshot.
	Metrics RoundMetrics `json:"-"`
}

// Options configures a Collector. The zero value of every bound selects a
// default, so Options{Defense: name} is a working configuration.
type Options struct {
	// Defense names the audited rule (display only).
	Defense string
	// Ring bounds the in-memory round-audit ring (0 = 64). The ring is what
	// the HTTP /rounds endpoint serves.
	Ring int
	// ReservoirCap bounds the cumulative score-pair reservoir the AUC and
	// TPR@FPR metrics are computed over (0 = 4096). With R pairs kept, a
	// 1M-client run's forensic state stays O(R + Ring·K) regardless of
	// rounds — inside the lazy population's heap bounds.
	ReservoirCap int
	// Seed derives the reservoir's deterministic replacement draws, so a
	// fixed-seed run reproduces its metrics bit-identically.
	Seed int64
	// AuditPath, when non-empty, journals every RoundAudit as one JSONL
	// line (internal/persist.Journal: crash-tolerant, resumable).
	AuditPath string
}

// Collector implements fl.AggregationObserver: it fingerprints every
// update, joins the defense's Selection against ground truth, streams the
// detection metrics, and fans the audit entries out to the configured
// sinks. Safe for concurrent use (the engine writes, HTTP handlers read).
type Collector struct {
	mu   sync.Mutex
	opts Options

	journal    *persist.Journal
	journalErr error

	// Streaming state.
	aggs, decided, zeroSel int
	updates, malicious     int
	cum                    Confusion
	scoreName              string
	pairsSeen              int
	reservoir              []scorePair
	lastRound, lastSeq     int
	haveRound              bool

	// ring holds the most recent RoundAudits; next is the write cursor.
	ring []RoundAudit
	next int

	// subs are the live-feed subscribers (see stream.go). Empty for every
	// run without a dashboard attached, in which case the broadcast path
	// is a single length check.
	subs []*subscriber
}

var _ fl.AggregationObserver = (*Collector)(nil)

// NewCollector builds a collector, opening the audit journal when
// configured.
func NewCollector(opts Options) (*Collector, error) {
	if opts.Ring < 0 || opts.ReservoirCap < 0 {
		return nil, fmt.Errorf("forensics: negative bounds (%d, %d)", opts.Ring, opts.ReservoirCap)
	}
	if opts.Ring == 0 {
		opts.Ring = 64
	}
	if opts.ReservoirCap == 0 {
		opts.ReservoirCap = 4096
	}
	c := &Collector{opts: opts, ring: make([]RoundAudit, 0, opts.Ring)}
	if opts.AuditPath != "" {
		// Streaming mode: the audit journal grows with run length, so the
		// replay map of the run-store journal would be an unbounded leak
		// and a per-aggregation fsync a stall on the engine goroutine.
		j, err := persist.OpenJournalStream(opts.AuditPath)
		if err != nil {
			return nil, err
		}
		c.journal = j
	}
	return c, nil
}

// ObserveAggregation implements fl.AggregationObserver.
func (c *Collector) ObserveAggregation(round int, global []float64, updates []fl.Update, sel fl.Selection) {
	fps := Fingerprints(global, updates, sel.Distances)

	c.mu.Lock()
	defer c.mu.Unlock()

	seq := 0
	if c.haveRound && round == c.lastRound {
		seq = c.lastSeq + 1
	}
	c.haveRound, c.lastRound, c.lastSeq = true, round, seq

	accepted := make([]bool, len(updates))
	for _, idx := range sel.Accepted {
		if idx >= 0 && idx < len(updates) {
			accepted[idx] = true
		}
	}
	rm := RoundMetrics{
		Round:         round,
		Seq:           seq,
		Updates:       len(updates),
		Known:         sel.Known(),
		ZeroSelection: len(updates) == 0 || (sel.Known() && len(sel.Accepted) == 0),
		AUC:           math.NaN(),
	}
	for _, u := range updates {
		if u.Malicious {
			rm.Malicious++
		}
	}
	if rm.Known {
		for i, u := range updates {
			switch {
			case u.Malicious && accepted[i]:
				rm.FN++
			case u.Malicious:
				rm.TP++
			case accepted[i]:
				rm.TN++
			default:
				rm.FP++
			}
		}
		c.decided++
		c.cum.add(rm.Confusion)
	}
	if rm.ZeroSelection {
		c.zeroSel++
	}
	c.aggs++
	c.updates += rm.Updates
	c.malicious += rm.Malicious

	scored := len(sel.Scores) == len(updates) && len(updates) > 0
	if scored {
		if c.scoreName == "" {
			c.scoreName = sel.ScoreName
		}
		pairs := make([]scorePair, len(updates))
		for i, u := range updates {
			pairs[i] = scorePair{suspicion: -sel.Scores[i], malicious: u.Malicious}
		}
		rm.AUC = detectionAUC(pairs)
		// The cumulative reservoir pools pairs across rounds, but raw score
		// scales drift with training (Krum distances and D-scores shrink as
		// updates converge), which would let a benign early round outrank a
		// malicious late one. Rank-normalize within the round first — the
		// same transform the hierarchy applies across groups; per-round AUC
		// above is rank-invariant and needs no transform.
		for i, rank := range fl.ScoreRanks(sel.Scores) {
			c.offer(scorePair{suspicion: 1 - rank, malicious: updates[i].Malicious})
		}
	}

	records := make([]AuditRecord, len(updates))
	for i, u := range updates {
		rec := AuditRecord{
			ClientID:    u.ClientID,
			Malicious:   u.Malicious,
			Decided:     rm.Known,
			Accepted:    rm.Known && accepted[i],
			Group:       -1,
			Fingerprint: fps[i],
		}
		if len(sel.Groups) == len(updates) {
			rec.Group = sel.Groups[i]
		}
		if len(sel.Weights) == len(updates) {
			rec.Weight = jf(sel.Weights[i])
		}
		if scored {
			rec.Score = jf(sel.Scores[i])
		}
		records[i] = rec
	}
	ra := RoundAudit{
		Round:         round,
		Seq:           seq,
		Defense:       c.opts.Defense,
		ScoreName:     sel.ScoreName,
		ZeroSelection: rm.ZeroSelection,
		Records:       records,
		Metrics:       rm,
	}
	if len(c.ring) < c.opts.Ring {
		c.ring = append(c.ring, ra)
	} else {
		c.ring[c.next] = ra
	}
	c.next = (c.next + 1) % c.opts.Ring

	if c.journal != nil && c.journalErr == nil {
		key := fmt.Sprintf("r%08d.%04d", round, seq)
		if err := c.journal.Append(key, auditToJSON(ra)); err != nil {
			c.journalErr = err
		}
	}

	c.broadcastLocked(ra)
}

// offer streams one score pair into the bounded reservoir (Algorithm R
// with deterministic splitmix draws).
func (c *Collector) offer(p scorePair) {
	i := c.pairsSeen
	c.pairsSeen++
	if len(c.reservoir) < c.opts.ReservoirCap {
		c.reservoir = append(c.reservoir, p)
		return
	}
	j := int(splitmix64(uint64(c.opts.Seed)+uint64(i)) % uint64(i+1))
	if j < c.opts.ReservoirCap {
		c.reservoir[j] = p
	}
}

// Summary returns the cumulative detection report.
func (c *Collector) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Summary{
		Defense:             c.opts.Defense,
		ScoreName:           c.scoreName,
		Aggregations:        c.aggs,
		DecisionRounds:      c.decided,
		ZeroSelectionRounds: c.zeroSel,
		Updates:             c.updates,
		MaliciousSeen:       c.malicious,
		Confusion:           c.cum,
		TPR:                 c.cum.TPR(),
		FPR:                 c.cum.FPR(),
		Precision:           c.cum.Precision(),
		F1:                  c.cum.F1(),
		AUC:                 detectionAUC(c.reservoir),
		TPRAt1FPR:           tprAtFPR(c.reservoir, 0.01),
		ScorePairs:          c.pairsSeen,
		ReservoirLen:        len(c.reservoir),
	}
}

// Rounds returns the ring's audits, oldest first.
func (c *Collector) Rounds() []RoundAudit {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RoundAudit, 0, len(c.ring))
	if len(c.ring) < c.opts.Ring {
		return append(out, c.ring...)
	}
	out = append(out, c.ring[c.next:]...)
	return append(out, c.ring[:c.next]...)
}

// Err surfaces the first audit-journal failure; audit loss must not pass
// silently, but it also must not abort a training round mid-flight, so the
// engine keeps running and the caller checks after.
func (c *Collector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journalErr
}

// Close releases the audit journal and ends every live-feed subscription
// (their channels close, so attached SSE handlers finish), returning any
// recorded write failure.
func (c *Collector) Close() error {
	c.mu.Lock()
	j, err := c.journal, c.journalErr
	c.journal = nil
	subs := c.closeStreamLocked()
	c.mu.Unlock()
	for _, s := range subs {
		s.shut()
	}
	if j != nil {
		if cerr := j.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
