package forensics

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/persist"
)

// ReplayRound is one replayable aggregation: the audit itself plus the
// global-model accuracy at that round when the source recorded one
// (run-store Outcomes carry an accuracy timeline; audit journals do not).
type ReplayRound struct {
	Audit    RoundAudit
	Accuracy float64 // NaN when the source has none
}

// ReplayRun is a finished run loaded for time-travel: an ordered round
// sequence with a display name and the source kind it came from.
type ReplayRun struct {
	Name   string
	Source string // "audit-journal" or "run-store"
	Rounds []ReplayRound
}

// LoadAuditJournal loads a PR-5 JSONL audit journal as a ReplayRun. Lines
// are the journal's jsonRoundAudit payloads keyed r%08d.%04d; entries come
// back in (round, seq) order regardless of file order, and a torn final
// line is tolerated exactly as the live journal's replay would tolerate it.
func LoadAuditJournal(path, name string) (ReplayRun, error) {
	entries, err := persist.ReadEntries(path)
	if err != nil {
		return ReplayRun{}, err
	}
	run := ReplayRun{Name: name, Source: "audit-journal"}
	for _, e := range entries {
		var ja jsonRoundAudit
		if err := json.Unmarshal(e.Payload, &ja); err != nil {
			return ReplayRun{}, fmt.Errorf("forensics: audit journal %s entry %s: %w", path, e.Key, err)
		}
		run.Rounds = append(run.Rounds, ReplayRound{Audit: auditFromJSON(ja), Accuracy: math.NaN()})
	}
	sort.SliceStable(run.Rounds, func(i, j int) bool {
		a, b := run.Rounds[i].Audit, run.Rounds[j].Audit
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Seq < b.Seq
	})
	return run, nil
}

// Replay serves loaded runs for the dashboard's time-travel and diff
// modes. It is immutable after construction, so handlers need no locking.
type Replay struct {
	runs   []ReplayRun
	byName map[string]int
}

// NewReplay indexes runs by name (later duplicates win, matching the
// last-wins convention of the run store itself).
func NewReplay(runs []ReplayRun) *Replay {
	rp := &Replay{runs: runs, byName: make(map[string]int, len(runs))}
	for i, r := range runs {
		rp.byName[r.Name] = i
	}
	return rp
}

// Runs returns the loaded runs (for callers assembling dashboard config).
func (rp *Replay) Runs() []ReplayRun { return rp.runs }

// jsonReplayRound is the wire shape of one replayed round.
type jsonReplayRound struct {
	Audit    jsonRoundAudit `json:"audit"`
	Accuracy *float64       `json:"accuracy"`
}

func replayRoundToJSON(rr ReplayRound) jsonReplayRound {
	return jsonReplayRound{Audit: auditToJSON(rr.Audit), Accuracy: jf(rr.Accuracy)}
}

// diffSide is one run's metric snapshot at an aligned round index.
type diffSide struct {
	Round    int      `json:"round"`
	TPR      *float64 `json:"tpr"`
	FPR      *float64 `json:"fpr"`
	AUC      *float64 `json:"auc"`
	Accuracy *float64 `json:"accuracy"`
	Accepted int      `json:"accepted"`
	Rejected int      `json:"rejected"`
}

func diffSideOf(rr ReplayRound) diffSide {
	m := rr.Audit.Metrics
	acc, rej := 0, 0
	for _, rec := range rr.Audit.Records {
		if !rec.Decided {
			continue
		}
		if rec.Accepted {
			acc++
		} else {
			rej++
		}
	}
	return diffSide{
		Round:    m.Round,
		TPR:      jf(m.TPR()),
		FPR:      jf(m.FPR()),
		AUC:      jf(m.AUC),
		Accuracy: jf(rr.Accuracy),
		Accepted: acc,
		Rejected: rej,
	}
}

// delta subtracts metric pointers, propagating null: a delta exists only
// when both sides measured the value.
func delta(a, b *float64) *float64 {
	if a == nil || b == nil {
		return nil
	}
	d := *a - *b
	return &d
}

// Mount registers the replay API under prefix on mux:
//
//	GET <prefix>/runs                 → [{"name", "source", "rounds"}…]
//	GET <prefix>/rounds?run=&from=&n= → {"run", "total", "from", "rounds": […]} (seek/step)
//	GET <prefix>/diff?a=&b=           → per-index aligned metric deltas
func (rp *Replay) Mount(mux *http.ServeMux, prefix string) {
	writeJSON := func(w http.ResponseWriter, v any) {
		jsonHeaders(w)
		_ = json.NewEncoder(w).Encode(v) // single write; client-gone needs no cleanup
	}
	mux.HandleFunc(prefix+"/runs", func(w http.ResponseWriter, r *http.Request) {
		type runInfo struct {
			Name   string `json:"name"`
			Source string `json:"source"`
			Rounds int    `json:"rounds"`
		}
		out := make([]runInfo, len(rp.runs))
		for i, run := range rp.runs {
			out[i] = runInfo{Name: run.Name, Source: run.Source, Rounds: len(run.Rounds)}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc(prefix+"/rounds", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := rp.byName[r.URL.Query().Get("run")]
		if !ok {
			http.Error(w, "forensics: unknown replay run", http.StatusNotFound)
			return
		}
		run := rp.runs[idx]
		from, n := 0, len(run.Rounds)
		if s := r.URL.Query().Get("from"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "forensics: from must be a non-negative integer", http.StatusBadRequest)
				return
			}
			from = v
		}
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "forensics: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		if from > len(run.Rounds) {
			from = len(run.Rounds)
		}
		end := from + n
		if end > len(run.Rounds) {
			end = len(run.Rounds)
		}
		rounds := make([]jsonReplayRound, 0, end-from)
		for _, rr := range run.Rounds[from:end] {
			rounds = append(rounds, replayRoundToJSON(rr))
		}
		writeJSON(w, struct {
			Run    string            `json:"run"`
			Total  int               `json:"total"`
			From   int               `json:"from"`
			Rounds []jsonReplayRound `json:"rounds"`
		}{run.Name, len(run.Rounds), from, rounds})
	})
	mux.HandleFunc(prefix+"/diff", func(w http.ResponseWriter, r *http.Request) {
		ai, aok := rp.byName[r.URL.Query().Get("a")]
		bi, bok := rp.byName[r.URL.Query().Get("b")]
		if !aok || !bok {
			http.Error(w, "forensics: diff needs two known runs (a=, b=)", http.StatusNotFound)
			return
		}
		a, b := rp.runs[ai], rp.runs[bi]
		n := len(a.Rounds)
		if len(b.Rounds) < n {
			n = len(b.Rounds)
		}
		type diffRow struct {
			Index int      `json:"index"`
			A     diffSide `json:"a"`
			B     diffSide `json:"b"`
			Delta struct {
				TPR      *float64 `json:"tpr"`
				FPR      *float64 `json:"fpr"`
				AUC      *float64 `json:"auc"`
				Accuracy *float64 `json:"accuracy"`
			} `json:"delta"`
		}
		rows := make([]diffRow, n)
		for i := 0; i < n; i++ {
			sa, sb := diffSideOf(a.Rounds[i]), diffSideOf(b.Rounds[i])
			row := diffRow{Index: i, A: sa, B: sb}
			row.Delta.TPR = delta(sa.TPR, sb.TPR)
			row.Delta.FPR = delta(sa.FPR, sb.FPR)
			row.Delta.AUC = delta(sa.AUC, sb.AUC)
			row.Delta.Accuracy = delta(sa.Accuracy, sb.Accuracy)
			rows[i] = row
		}
		writeJSON(w, struct {
			A       string    `json:"a"`
			B       string    `json:"b"`
			Aligned int       `json:"aligned"`
			AExtra  int       `json:"aExtra"`
			BExtra  int       `json:"bExtra"`
			Rounds  []diffRow `json:"rounds"`
		}{a.Name, b.Name, n, len(a.Rounds) - n, len(b.Rounds) - n, rows})
	})
}
