package forensics

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/nn"
)

// benchRound builds a production-shaped round: K updates of dimension d.
func benchRound(k, d int) ([]float64, []fl.Update, fl.Selection) {
	rng := rand.New(rand.NewSource(1))
	global := make([]float64, d)
	updates := make([]fl.Update, k)
	scores := make([]float64, k)
	accepted := make([]int, 0, k)
	for i := range updates {
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		mal := i%10 == 0
		updates[i] = fl.Update{ClientID: i, Weights: w, NumSamples: 32, Malicious: mal}
		scores[i] = rng.Float64()
		if !mal {
			accepted = append(accepted, i)
		}
	}
	return global, updates, fl.Selection{Accepted: accepted, Scores: scores, ScoreName: "bench"}
}

// BenchmarkFingerprints50x10k measures the raw fingerprint cost of a
// 50-update round at a 10k-parameter model without a shared distance
// matrix — the worst case (REFD-style defenses that never computed one).
func BenchmarkFingerprints50x10k(b *testing.B) {
	global, updates, _ := benchRound(50, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fingerprints(global, updates, nil)
	}
}

// BenchmarkObserveAggregation50x10k measures the full per-round forensic
// pipeline — fingerprints, confusion join, round ROC, reservoir, ring —
// for the same 50×10k round.
func BenchmarkObserveAggregation50x10k(b *testing.B) {
	global, updates, sel := benchRound(50, 10000)
	c, err := NewCollector(Options{Defense: "bench", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ObserveAggregation(i, global, updates, sel)
	}
}

// benchSim builds the flsim bench cell (mkrum under attack) with or
// without the forensics observer, for the ≤5% round-latency acceptance
// bound recorded in BENCH_5.json.
func benchSim(b *testing.B, obs fl.AggregationObserver) *fl.Simulation {
	b.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 1)
	shards := dataset.PartitionIID(rand.New(rand.NewSource(1)), train.Len(), 20)
	newModel := func(r *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(r, spec.Channels, spec.Size, spec.Classes)
	}
	cfg := fl.Config{
		TotalClients: 20,
		PerRound:     8,
		AttackerFrac: 0.25,
		Rounds:       3,
		LocalEpochs:  1,
		BatchSize:    8,
		LR:           0.05,
		Seed:         1,
		EvalEvery:    1,
		EvalLimit:    128,
		Parallel:     true,
		Observer:     obs,
	}
	sim, err := fl.NewSimulation(cfg, train, test, shards, newModel, defense.MultiKrum{F: 2}, benchAttack{})
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

type benchAttack struct{}

func (benchAttack) Name() string { return "bench" }

func (benchAttack) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		v := make([]float64, len(ctx.Global))
		for j := range v {
			v[j] = 10
		}
		out[i] = v
	}
	return out, nil
}

// BenchmarkEngineRoundsForensicsOff is the baseline flsim bench cell:
// three attacked mKrum rounds, no observer.
func BenchmarkEngineRoundsForensicsOff(b *testing.B) {
	sim := benchSim(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRoundsForensicsOn is the same cell with the full
// forensic pipeline attached (fingerprints reuse mKrum's distance
// matrix). The ratio to ForensicsOff is the acceptance overhead.
func BenchmarkEngineRoundsForensicsOn(b *testing.B) {
	col, err := NewCollector(Options{Defense: "mkrum", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sim := benchSim(b, col)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
