package forensics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func pairsOf(suspicion []float64, mal []bool) []scorePair {
	ps := make([]scorePair, len(suspicion))
	for i := range ps {
		ps[i] = scorePair{suspicion: suspicion[i], malicious: mal[i]}
	}
	return ps
}

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 3, FP: 1, TN: 9, FN: 1}
	if got := c.TPR(); got != 0.75 {
		t.Fatalf("TPR = %v, want 0.75", got)
	}
	if got := c.FPR(); got != 0.1 {
		t.Fatalf("FPR = %v, want 0.1", got)
	}
	if got := c.Precision(); got != 0.75 {
		t.Fatalf("Precision = %v, want 0.75", got)
	}
	if got := c.F1(); got != 0.75 {
		t.Fatalf("F1 = %v, want 0.75", got)
	}
	// Zero denominators must yield NaN, not a division panic — the
	// all-filtered / zero-responder regression.
	zero := Confusion{}
	for name, v := range map[string]float64{
		"TPR": zero.TPR(), "FPR": zero.FPR(), "Precision": zero.Precision(), "F1": zero.F1(),
	} {
		if !math.IsNaN(v) {
			t.Fatalf("%s of empty confusion = %v, want NaN", name, v)
		}
	}
}

func TestDetectionAUC(t *testing.T) {
	mal := []bool{true, true, false, false}
	// Perfect separation: malicious strictly more suspicious.
	if got := detectionAUC(pairsOf([]float64{5, 4, 1, 0}, mal)); got != 1 {
		t.Fatalf("separable AUC = %v, want 1", got)
	}
	// Inverted scores.
	if got := detectionAUC(pairsOf([]float64{0, 1, 4, 5}, mal)); got != 0 {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
	// All tied: chance level via average ranks.
	if got := detectionAUC(pairsOf([]float64{2, 2, 2, 2}, mal)); got != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
	// Single-class inputs are undefined.
	if got := detectionAUC(pairsOf([]float64{1, 2}, []bool{true, true})); !math.IsNaN(got) {
		t.Fatalf("single-class AUC = %v, want NaN", got)
	}
	if got := detectionAUC(nil); !math.IsNaN(got) {
		t.Fatalf("empty AUC = %v, want NaN", got)
	}
	// A half-right ranking: one of two attackers below one benign update.
	got := detectionAUC(pairsOf([]float64{5, 1, 3, 0}, mal))
	if got != 0.75 {
		t.Fatalf("partial AUC = %v, want 0.75", got)
	}
}

func TestTPRAtFPR(t *testing.T) {
	// 2 malicious at suspicion {9, 7}, 10 benign at {8, 6, 5, …}: catching
	// the first attacker costs 0 FP, the second costs 1 of 10 benign (10%).
	susp := []float64{9, 7, 8, 6, 5, 4.5, 4, 3.5, 3, 2.5, 2, 1.5}
	mal := []bool{true, true, false, false, false, false, false, false, false, false, false, false}
	ps := pairsOf(susp, mal)
	if got := tprAtFPR(ps, 0.01); got != 0.5 {
		t.Fatalf("TPR@1%%FPR = %v, want 0.5", got)
	}
	if got := tprAtFPR(ps, 0.10); got != 1 {
		t.Fatalf("TPR@10%%FPR = %v, want 1", got)
	}
	if got := tprAtFPR(nil, 0.01); !math.IsNaN(got) {
		t.Fatalf("TPR@FPR of empty = %v, want NaN", got)
	}
}

func TestROCCurveEndpoints(t *testing.T) {
	ps := pairsOf([]float64{3, 1, 2, 0}, []bool{true, false, true, false})
	curve := rocCurve(ps)
	if len(curve) == 0 {
		t.Fatal("no curve")
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("curve starts at %+v, want (0,0)", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve ends at %+v, want (1,1)", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v", i, curve)
		}
	}
}

// TestSummaryJSONRoundTrip pins the one shared serialization shape (run
// store, audit journal, HTTP): NaN rates travel as null and come back as
// NaN; everything else is bit-exact.
func TestSummaryJSONRoundTrip(t *testing.T) {
	s := Summary{
		Defense: "refd", ScoreName: "dscore",
		Aggregations: 7, DecisionRounds: 6, ZeroSelectionRounds: 1,
		Updates: 70, MaliciousSeen: 9,
		Confusion: Confusion{TP: 5, FP: 2, TN: 59, FN: 4},
		TPR:       5.0 / 9, FPR: 2.0 / 61, Precision: 5.0 / 7, F1: 10.0 / 16,
		AUC: math.NaN(), TPRAt1FPR: math.NaN(),
		ScorePairs: 70, ReservoirLen: 70,
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"auc":null`) {
		t.Fatalf("NaN AUC should serialize as null: %s", raw)
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.AUC) || !math.IsNaN(back.TPRAt1FPR) {
		t.Fatalf("null rates should decode to NaN: %+v", back)
	}
	back.AUC, back.TPRAt1FPR = 0, 0
	s.AUC, s.TPRAt1FPR = 0, 0
	if back != s {
		t.Fatalf("round trip drifted:\n%+v\n%+v", s, back)
	}
}
