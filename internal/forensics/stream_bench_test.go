package forensics

// Dashboard streaming benches, recorded in BENCH_9.json: the broadcast fan-
// out at 0/1/4 subscribers, end-to-end SSE delivery latency over a real
// HTTP connection, and the engine-round cell under sustained polling (the
// ≤2% acceptance budget against the ForensicsOn baseline).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// benchBroadcast measures broadcastLocked with n attached subscribers whose
// queues are never drained — steady-state drop-oldest, the worst case for
// the fan-out (every send walks the full shed-retry path).
func benchBroadcast(b *testing.B, n int) {
	c, err := NewCollector(Options{Defense: "bench", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	global, updates, sel := benchRound(50, 100)
	c.ObserveAggregation(0, global, updates, sel)
	ra := c.Rounds()[0]
	for i := 0; i < n; i++ {
		_, _, cancel := c.Subscribe(0, 8)
		defer cancel()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.mu.Lock()
		c.broadcastLocked(ra)
		c.mu.Unlock()
	}
}

func BenchmarkBroadcastSubscribers0(b *testing.B) { benchBroadcast(b, 0) }
func BenchmarkBroadcastSubscribers1(b *testing.B) { benchBroadcast(b, 1) }
func BenchmarkBroadcastSubscribers4(b *testing.B) { benchBroadcast(b, 4) }

// BenchmarkSSEDeliveryLatency measures one aggregation's end-to-end trip:
// ObserveAggregation on the engine side → SSE frame parsed off a real HTTP
// connection. Per-op time IS the delivery latency.
func BenchmarkSSEDeliveryLatency(b *testing.B) {
	c, err := NewCollector(Options{Defense: "bench", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/forensics/stream")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	global, updates, sel := benchRound(50, 100)
	readFrame := func() {
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				b.Fatal(err)
			}
			if line == "\n" {
				return
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ObserveAggregation(i, global, updates, sel)
		readFrame()
	}
}

// benchPolledSim is the sustained-consumer engine cell: the ForensicsOn
// bench with the HTTP endpoint served and concurrent consumers attached for
// the whole run — a metrics scraper and a cursor-carrying /rounds?since
// poller at 20× the embedded page's cadence, plus (when sse is set) a
// persistent SSE subscriber receiving every round event. Served via
// col.Serve so shutdown cancels the open SSE request (httptest.Server.Close
// would block on it forever).
func benchPolledSim(b *testing.B, sse bool) {
	col, err := NewCollector(Options{Defense: "mkrum", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sim := benchSim(b, col)
	addr, shutdownHTTP, err := col.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	// The embedded page polls at 1 s; 50 ms here is 20× more aggressive.
	const pollEvery = 50 * time.Millisecond
	hammer.Add(1)
	go func() { // metrics scraper
		defer hammer.Done()
		tick := time.NewTicker(pollEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			resp, err := http.Get("http://" + addr + "/forensics/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	hammer.Add(1)
	go func() { // cursor-carrying incremental poller, as the page's JS does
		defer hammer.Done()
		tick := time.NewTicker(pollEvery)
		defer tick.Stop()
		since := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			resp, err := http.Get(fmt.Sprintf("http://%s/forensics/rounds?since=%d", addr, since))
			if err != nil {
				continue
			}
			var env struct {
				Cursor int `json:"cursor"`
			}
			if json.NewDecoder(resp.Body).Decode(&env) == nil {
				since = env.Cursor
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	if sse {
		hammer.Add(1)
		go func() { // persistent SSE subscriber; drains until shutdown cancels
			defer hammer.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + "/forensics/stream")
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	if err := shutdownHTTP(); err != nil {
		b.Fatal(err)
	}
	hammer.Wait()
}

// BenchmarkEngineRoundsSustainedPolling vs BenchmarkEngineRoundsForensicsOn
// is the sustained-polling acceptance ratio (budget ≤2%): HTTP consumers
// polling for the whole run, no SSE subscriber.
func BenchmarkEngineRoundsSustainedPolling(b *testing.B) { benchPolledSim(b, false) }

// BenchmarkEngineRoundsDashboardStreamed adds the persistent SSE subscriber:
// every aggregation is marshaled and pushed as a live event. The delta over
// SustainedPolling is the per-event streaming cost — a fixed per-round price
// (~µs), which only looks large against this cell's ~2ms artificial rounds.
func BenchmarkEngineRoundsDashboardStreamed(b *testing.B) { benchPolledSim(b, true) }
