package defense

import (
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/vec"
)

// sybilRound builds a round with diverse benign updates and identical
// (colluding) Sybil updates, all relative to the given global model.
func sybilRound(rng *rand.Rand, global []float64, nBenign, nSybil int) []fl.Update {
	var us []fl.Update
	id := 0
	for i := 0; i < nBenign; i++ {
		w := make([]float64, len(global))
		for d := range w {
			w[d] = global[d] + rng.NormFloat64()
		}
		us = append(us, fl.Update{ClientID: id, Weights: w, NumSamples: 10})
		id++
	}
	sybil := make([]float64, len(global))
	for d := range sybil {
		sybil[d] = global[d] + 5 // shared malicious direction
	}
	for i := 0; i < nSybil; i++ {
		us = append(us, fl.Update{ClientID: id, Weights: vec.Clone(sybil), NumSamples: 10, Malicious: true})
		id++
	}
	return us
}

func TestFoolsGoldDownweightsSybils(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	global := make([]float64, 30)
	fg := NewFoolsGold(1)
	// Run several rounds so histories accumulate; Sybils share a direction
	// every round while benign clients move diversely.
	var lastSelected []int
	var updates []fl.Update
	for round := 0; round < 4; round++ {
		updates = sybilRound(rng, global, 6, 3)
		out, sel, err := fg.Aggregate(global, updates)
		if err != nil {
			t.Fatal(err)
		}
		global = out
		lastSelected = sel.Accepted
	}
	// After history accumulates, the identical Sybils must be excluded (or
	// at minimum not all selected) while benign diversity keeps benign
	// clients in.
	sybilSelected := 0
	benignSelected := 0
	for _, idx := range lastSelected {
		if updates[idx].Malicious {
			sybilSelected++
		} else {
			benignSelected++
		}
	}
	if sybilSelected > 0 {
		t.Fatalf("FoolsGold selected %d colluding Sybils after history accumulated", sybilSelected)
	}
	if benignSelected < 5 {
		t.Fatalf("FoolsGold kept only %d of 6 benign clients", benignSelected)
	}
}

func TestFoolsGoldKeepsDiverseClients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	global := make([]float64, 20)
	fg := NewFoolsGold(1)
	us := sybilRound(rng, global, 8, 0) // no Sybils at all
	out, sel, err := fg.Aggregate(global, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) < 7 {
		t.Fatalf("FoolsGold should keep diverse benign clients, selected %d/8", len(sel.Accepted))
	}
	if len(out) != len(global) {
		t.Fatalf("aggregate length %d", len(out))
	}
}

func TestFoolsGoldEmptyRound(t *testing.T) {
	fg := NewFoolsGold(0) // kappa defaulted
	if fg.Kappa != 1 {
		t.Fatalf("kappa default = %v, want 1", fg.Kappa)
	}
	if _, _, err := fg.Aggregate(nil, nil); err == nil {
		t.Fatal("expected error for empty round")
	}
}

func TestFoolsGoldAllIdenticalFallsBack(t *testing.T) {
	global := []float64{1, 2, 3}
	w := []float64{2, 3, 4}
	us := []fl.Update{
		{ClientID: 0, Weights: vec.Clone(w), NumSamples: 1},
		{ClientID: 1, Weights: vec.Clone(w), NumSamples: 1},
		{ClientID: 2, Weights: vec.Clone(w), NumSamples: 1},
	}
	fg := NewFoolsGold(1)
	out, sel, err := fg.Aggregate(global, us)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Accepted == nil || len(sel.Accepted) != 0 {
		t.Fatalf("all-identical round should report an empty selection, got %v", sel.Accepted)
	}
	if len(sel.Scores) != len(us) || sel.ScoreName != "foolsgold-weight" {
		t.Fatalf("degenerate round should still report scores, got %v (%q)", sel.Scores, sel.ScoreName)
	}
	for i := range global {
		if out[i] != global[i] {
			t.Fatal("degenerate round should keep the global model")
		}
	}
}

func TestCosineMatrix(t *testing.T) {
	cs := vec.CosineMatrix([][]float64{{1, 0}, {1, 0}, {0, 1}, {-1, 0}, {0, 0}})
	if got := cs[0][1]; got != 1 {
		t.Fatalf("cosine of identical = %v", got)
	}
	if got := cs[0][2]; got != 0 {
		t.Fatalf("cosine of orthogonal = %v", got)
	}
	if got := cs[0][3]; got != -1 {
		t.Fatalf("cosine of opposite = %v", got)
	}
	if got := cs[0][4]; got != 0 {
		t.Fatalf("cosine with zero vector = %v", got)
	}
	if got := cs[3][0]; got != -1 {
		t.Fatalf("cosine matrix not symmetric: %v", got)
	}
}
