package defense

import (
	"math/rand"
	"testing"

	"repro/internal/fl"
)

// benchUpdates builds a paper-shaped round: 10 updates of DeepCNN size
// (≈27k parameters).
func benchUpdates(n, dim int) []fl.Update {
	rng := rand.New(rand.NewSource(1))
	us := make([]fl.Update, n)
	for i := range us {
		w := make([]float64, dim)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		us[i] = fl.Update{ClientID: i, Weights: w, NumSamples: 50}
	}
	return us
}

func benchAggregator(b *testing.B, agg fl.Aggregator) {
	b.Helper()
	us := benchUpdates(10, 27000)
	global := make([]float64, 27000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := agg.Aggregate(global, us); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFedAvg(b *testing.B)      { benchAggregator(b, FedAvg{}) }
func BenchmarkMedian(b *testing.B)      { benchAggregator(b, Median{}) }
func BenchmarkTrimmedMean(b *testing.B) { benchAggregator(b, TrimmedMean{Trim: 2}) }
func BenchmarkMultiKrum(b *testing.B)   { benchAggregator(b, MultiKrum{F: 2}) }
func BenchmarkBulyan(b *testing.B)      { benchAggregator(b, Bulyan{F: 2}) }
