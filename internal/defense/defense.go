// Package defense implements the server-side robust aggregation rules the
// paper evaluates (Section II-C and IV-A): FedAvg (attack-free baseline),
// coordinate-wise Median and Trimmed mean (Yin et al.), Krum and
// Multi-Krum (Blanchard et al.), and Bulyan (El Mhamdi et al.).
//
// Every rule implements fl.Aggregator. Selection-based rules (Krum family,
// Bulyan) report which updates entered the aggregate so the harness can
// compute the paper's defense pass rate (Eq. 5), and the Krum family
// additionally exposes its per-update scores (negated, so higher = more
// benign) and the shared pairwise distance matrix for forensic reuse;
// purely statistical rules return a zero Selection, which the harness
// reports as "N/A".
package defense

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/telemetry"
	"repro/internal/fl"
	"repro/internal/vec"
)

var errNoUpdates = errors.New("defense: no updates to aggregate")

func updateVectors(updates []fl.Update) [][]float64 {
	vs := make([][]float64, len(updates))
	for i, u := range updates {
		vs[i] = u.Weights
	}
	return vs
}

// FedAvg is the paper's Eq. 2: the sample-count-weighted average of all
// updates. It applies no filtering and is the aggregation rule used for the
// clean "no attack, no defense" accuracy baseline.
type FedAvg struct{}

var _ fl.Aggregator = FedAvg{}

// Name implements fl.Aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate implements fl.Aggregator. FedAvg applies no filtering, so it
// reports no Selection (Accepted nil, DPR "N/A") — reporting "all accepted"
// would redefine the paper's DPR semantics for the attack-free baseline.
func (FedAvg) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	if len(updates) == 0 {
		return nil, fl.Selection{}, errNoUpdates
	}
	weights := make([]float64, len(updates))
	for i, u := range updates {
		n := u.NumSamples
		if n <= 0 {
			n = 1
		}
		weights[i] = float64(n)
	}
	return vec.WeightedMean(updateVectors(updates), weights), fl.Selection{}, nil
}

// Median is the coordinate-wise median aggregation of Yin et al.
type Median struct{}

var _ fl.Aggregator = Median{}

// Name implements fl.Aggregator.
func (Median) Name() string { return "median" }

// Aggregate implements fl.Aggregator.
func (Median) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	if len(updates) == 0 {
		return nil, fl.Selection{}, errNoUpdates
	}
	return vec.Median(updateVectors(updates)), fl.Selection{}, nil
}

// TrimmedMean is the coordinate-wise trimmed mean of Yin et al.: the Trim
// largest and smallest values of every coordinate are discarded before
// averaging. Trim is normally the server's assumed number of attackers per
// round; when a round has too few updates the trim is reduced to keep at
// least one value.
type TrimmedMean struct {
	// Trim is the number of values removed from each end per coordinate.
	Trim int
}

var _ fl.Aggregator = TrimmedMean{}

// Name implements fl.Aggregator.
func (TrimmedMean) Name() string { return "trmean" }

// Aggregate implements fl.Aggregator.
func (t TrimmedMean) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	if len(updates) == 0 {
		return nil, fl.Selection{}, errNoUpdates
	}
	trim := t.Trim
	if trim < 0 {
		return nil, fl.Selection{}, fmt.Errorf("defense: negative trim %d", trim)
	}
	for 2*trim >= len(updates) {
		trim--
	}
	return vec.TrimmedMean(updateVectors(updates), trim), fl.Selection{}, nil
}

// roundSqDist returns the round's pairwise squared-distance geometry:
// computed in the compressed domain when every update carries a compatible
// codec frame (sparse·dense dots over pooled scratch, exact int8 block
// dots — see internal/codec), from the dense weight vectors otherwise.
// Both paths are bit-deterministic at any worker count; compressed-domain
// distances are over deltas, which pairwise equal weight distances up to
// FP rounding — the documented codec-on semantics.
// Timing reports through the process-global telemetry distance hook — the
// aggregators are pure functions of the updates with no injection seam, and
// this one routine is the geometry they all share.
func roundSqDist(updates []fl.Update, vs [][]float64) [][]float64 {
	sp := telemetry.DistanceSpan()
	m := sqDistGeometry(updates, vs)
	sp.End()
	return m
}

func sqDistGeometry(updates []fl.Update, vs [][]float64) [][]float64 {
	frames := make([]*codec.Frame, len(updates))
	for i := range updates {
		if updates[i].Frame == nil {
			return vec.SqDistMatrix(vs)
		}
		frames[i] = updates[i].Frame
	}
	if m := codec.SqDistMatrix(frames); m != nil {
		return m
	}
	return vec.SqDistMatrix(vs)
}

// krumScores returns, for every update, the sum of squared distances to its
// n−f−2 nearest neighbours (Blanchard et al.), given the round's pairwise
// squared-distance matrix (callers share the geometry via roundSqDist —
// Selection.Distances, forensic fingerprints). The neighbour count is
// clamped to [1, n−1] so small rounds still produce a usable score.
func krumScores(dist [][]float64, f int) []float64 {
	n := len(dist)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return krumScoresFrom(dist, idx, f)
}

// negate returns the element-wise negation of scores: the Krum family's
// Selection.Scores convention is "higher = more benign", the opposite of
// the raw summed-distance score.
func negate(scores []float64) []float64 {
	out := make([]float64, len(scores))
	for i, s := range scores {
		out[i] = -s
	}
	return out
}

// krumScoresFrom scores the subset of updates given by idx against each
// other using a precomputed pairwise squared-distance matrix, so iterative
// selections (Bulyan) re-score without recomputing any distance.
func krumScoresFrom(dist [][]float64, idx []int, f int) []float64 {
	n := len(idx)
	neighbours := n - f - 2
	if neighbours < 1 {
		neighbours = 1
	}
	if neighbours > n-1 {
		neighbours = n - 1
	}
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		di := dist[idx[i]]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, di[idx[j]])
			}
		}
		sort.Float64s(row)
		s := 0.0
		for k := 0; k < neighbours; k++ {
			s += row[k]
		}
		scores[i] = s
	}
	return scores
}

// MultiKrum implements Krum and its multi-update extension mKrum: updates
// are scored by the summed squared distance to their nearest neighbours and
// the M lowest-scoring updates are averaged. M = 1 is plain Krum; the paper
// uses mKrum with M = n − F, interpolating between Krum and averaging.
type MultiKrum struct {
	// F is the server's assumed number of Byzantine updates per round.
	F int
	// M is the number of updates selected; 0 means n − F.
	M int
}

var _ fl.Aggregator = MultiKrum{}

// Name implements fl.Aggregator.
func (k MultiKrum) Name() string {
	if k.M == 1 {
		return "krum"
	}
	return "mkrum"
}

// Aggregate implements fl.Aggregator.
func (k MultiKrum) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	n := len(updates)
	if n == 0 {
		return nil, fl.Selection{}, errNoUpdates
	}
	m := k.M
	if m <= 0 {
		m = n - k.F
	}
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	vs := updateVectors(updates)
	dist := roundSqDist(updates, vs)
	scores := krumScores(dist, k.F)
	order := argsort(scores)
	selected := append([]int(nil), order[:m]...)
	chosen := make([][]float64, m)
	for i, idx := range selected {
		chosen[i] = vs[idx]
	}
	sel := fl.Selection{
		Accepted:  selected,
		Scores:    negate(scores),
		ScoreName: "neg-krum-distance",
		Distances: dist,
	}
	return vec.Mean(chosen), sel, nil
}

// Bulyan implements the two-stage defense of El Mhamdi et al.: first an
// iterative Multi-Krum selection of θ = n − 2F updates, then for every
// coordinate the average of the β = θ − 2F values closest to the
// coordinate median. Both counts are clamped for small rounds.
type Bulyan struct {
	// F is the server's assumed number of Byzantine updates per round.
	F int
}

var _ fl.Aggregator = Bulyan{}

// Name implements fl.Aggregator.
func (Bulyan) Name() string { return "bulyan" }

// Aggregate implements fl.Aggregator.
func (b Bulyan) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	n := len(updates)
	if n == 0 {
		return nil, fl.Selection{}, errNoUpdates
	}
	theta := n - 2*b.F
	if theta < 1 {
		theta = 1
	}
	vs := updateVectors(updates)

	// Stage 1: iterative Krum selection of theta updates. The O(n²·d)
	// pairwise distances are computed once (compressed-domain when the
	// round's frames allow); each iteration re-scores the shrinking
	// remainder from the shared matrix.
	dist := roundSqDist(updates, vs)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var selected []int
	for len(selected) < theta {
		scores := krumScoresFrom(dist, remaining, b.F)
		best := 0
		for i, s := range scores {
			if s < scores[best] {
				best = i
			}
		}
		selected = append(selected, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}

	// Stage 2: coordinate-wise trimmed average around the median of the
	// selected updates. The column buffers are reused across coordinates.
	beta := theta - 2*b.F
	if beta < 1 {
		beta = 1
	}
	dim := len(vs[0])
	out := make([]float64, dim)
	type kv struct{ dev, val float64 }
	col := make([]kv, theta)
	vals := make([]float64, theta)
	med := make([]float64, theta)
	for d := 0; d < dim; d++ {
		for i, idx := range selected {
			vals[i] = vs[idx][d]
		}
		m := medianOf(vals, med)
		for i, v := range vals {
			dev := v - m
			if dev < 0 {
				dev = -dev
			}
			col[i] = kv{dev, v}
		}
		// Insertion sort: the column is tiny (θ ≤ the round size) and
		// sort.Slice here costs allocations and indirect calls per
		// coordinate across the full model dimension.
		for i := 1; i < theta; i++ {
			e := col[i]
			j := i - 1
			for ; j >= 0 && col[j].dev > e.dev; j-- {
				col[j+1] = col[j]
			}
			col[j+1] = e
		}
		s := 0.0
		for i := 0; i < beta; i++ {
			s += col[i].val
		}
		out[d] = s / float64(beta)
	}
	// No Scores: the iterative stage-1 selection re-scores a shrinking set,
	// so no single per-update score vector describes the decision. The
	// shared distance matrix is still exported for forensic reuse.
	return out, fl.Selection{Accepted: selected, Distances: dist}, nil
}

// medianOf returns the median of vals using tmp (same length) as sort
// scratch; vals itself is left untouched.
func medianOf(vals, tmp []float64) float64 {
	copy(tmp, vals)
	vec.SortSmall(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return 0.5 * (tmp[n/2-1] + tmp[n/2])
}

func argsort(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	return order
}

// ByName resolves a defense by its canonical name; f is the server's assumed
// per-round attacker count used by the robust rules.
func ByName(name string, f int) (fl.Aggregator, error) {
	switch name {
	case "fedavg", "none":
		return FedAvg{}, nil
	case "median":
		return Median{}, nil
	case "trmean", "trimmedmean":
		return TrimmedMean{Trim: f}, nil
	case "krum":
		return MultiKrum{F: f, M: 1}, nil
	case "mkrum":
		return MultiKrum{F: f}, nil
	case "bulyan":
		return Bulyan{F: f}, nil
	case "foolsgold":
		return NewFoolsGold(1), nil
	default:
		return nil, fmt.Errorf("defense: unknown defense %q", name)
	}
}
