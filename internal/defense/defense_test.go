package defense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fl"
	"repro/internal/vec"
)

func mkUpdates(vs [][]float64, malicious []bool) []fl.Update {
	us := make([]fl.Update, len(vs))
	for i, v := range vs {
		us[i] = fl.Update{ClientID: i, Weights: v, NumSamples: 10}
		if malicious != nil {
			us[i].Malicious = malicious[i]
		}
	}
	return us
}

// cluster returns nBenign vectors near the origin plus nMal outliers, each
// placed in a *different* direction at the given offset so they do not
// collude (see TestKrumColludersCanPass for the colluding case).
func cluster(rng *rand.Rand, dim, nBenign, nMal int, offset float64) ([]fl.Update, []bool) {
	var vs [][]float64
	var mal []bool
	for i := 0; i < nBenign; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64() * 0.1
		}
		vs = append(vs, v)
		mal = append(mal, false)
	}
	for i := 0; i < nMal; i++ {
		v := make([]float64, dim)
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		for d := range v {
			v[d] = sign*offset*float64(i+1) + rng.NormFloat64()*0.1
		}
		vs = append(vs, v)
		mal = append(mal, true)
	}
	return mkUpdates(vs, mal), mal
}

// TestKrumColludersCanPass documents the collusion weakness the paper's
// attacks exploit: when all attackers submit (nearly) identical updates,
// their mutual distances are tiny, so in late iterations of Bulyan's
// selection an attacker pair can out-score the remaining benign updates.
// This is expected behaviour of the defense, not a bug in this package.
func TestKrumColludersCanPass(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var vs [][]float64
	for i := 0; i < 8; i++ {
		v := make([]float64, 20)
		for d := range v {
			v[d] = rng.NormFloat64() * 0.5
		}
		vs = append(vs, v)
	}
	for i := 0; i < 2; i++ {
		v := make([]float64, 20)
		for d := range v {
			v[d] = 3 + rng.NormFloat64()*0.001 // colluding near-duplicates
		}
		vs = append(vs, v)
	}
	us := mkUpdates(vs, []bool{false, false, false, false, false, false, false, false, true, true})
	_, sel, err := Bulyan{F: 2}.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 6 {
		t.Fatalf("selected %d, want 6", len(sel.Accepted))
	}
	// No assertion that attackers are excluded — with near-duplicate
	// colluders they may legitimately pass; the test only pins that the
	// selection machinery stays well-formed in this regime.
	seen := map[int]bool{}
	for _, idx := range sel.Accepted {
		if idx < 0 || idx >= len(us) || seen[idx] {
			t.Fatalf("malformed selection %v", sel.Accepted)
		}
		seen[idx] = true
	}
}

func TestFedAvgWeighted(t *testing.T) {
	us := []fl.Update{
		{Weights: []float64{0, 0}, NumSamples: 1},
		{Weights: []float64{10, 10}, NumSamples: 3},
	}
	got, sel, err := FedAvg{}.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Known() {
		t.Fatal("FedAvg should not report selection")
	}
	if got[0] != 7.5 || got[1] != 7.5 {
		t.Fatalf("FedAvg = %v, want [7.5 7.5]", got)
	}
}

func TestFedAvgNonPositiveSamples(t *testing.T) {
	us := []fl.Update{
		{Weights: []float64{2}, NumSamples: 0},
		{Weights: []float64{4}, NumSamples: -3},
	}
	got, _, err := FedAvg{}.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatalf("FedAvg with clamped samples = %v, want 3", got[0])
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	us := mkUpdates([][]float64{{1}, {2}, {1000}}, nil)
	got, sel, err := Median{}.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Known() {
		t.Fatal("Median should not report selection")
	}
	if got[0] != 2 {
		t.Fatalf("Median = %v, want 2", got[0])
	}
}

func TestTrimmedMeanDropsExtremes(t *testing.T) {
	us := mkUpdates([][]float64{{-1000}, {1}, {2}, {3}, {1000}}, nil)
	got, _, err := TrimmedMean{Trim: 1}.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("TrimmedMean = %v, want 2", got[0])
	}
}

func TestTrimmedMeanClampsForSmallRounds(t *testing.T) {
	us := mkUpdates([][]float64{{1}, {5}}, nil)
	got, _, err := TrimmedMean{Trim: 3}.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatalf("clamped TrimmedMean = %v, want 3", got[0])
	}
}

func TestTrimmedMeanNegativeTrim(t *testing.T) {
	us := mkUpdates([][]float64{{1}}, nil)
	if _, _, err := (TrimmedMean{Trim: -1}).Aggregate(nil, us); err == nil {
		t.Fatal("expected error for negative trim")
	}
}

func TestMultiKrumExcludesOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	us, mal := cluster(rng, 20, 8, 2, 50)
	agg := MultiKrum{F: 2}
	got, sel, err := agg.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 8 {
		t.Fatalf("mKrum selected %d, want n-F=8", len(sel.Accepted))
	}
	for _, idx := range sel.Accepted {
		if mal[idx] {
			t.Fatalf("mKrum selected outlier %d", idx)
		}
	}
	if vec.Norm2(got) > 1 {
		t.Fatalf("mKrum aggregate %v too far from benign cluster", vec.Norm2(got))
	}
}

func TestKrumSelectsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	us, mal := cluster(rng, 10, 7, 3, 30)
	agg := MultiKrum{F: 3, M: 1}
	if agg.Name() != "krum" {
		t.Fatalf("Name = %q, want krum", agg.Name())
	}
	_, sel, err := agg.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 1 {
		t.Fatalf("Krum selected %d updates, want 1", len(sel.Accepted))
	}
	if mal[sel.Accepted[0]] {
		t.Fatal("Krum selected the outlier")
	}
}

func TestBulyanExcludesOutliersAndStaysInHull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	us, mal := cluster(rng, 15, 8, 2, 40)
	agg := Bulyan{F: 2}
	got, sel, err := agg.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 6 { // theta = 10 - 2*2
		t.Fatalf("Bulyan selected %d, want 6", len(sel.Accepted))
	}
	for _, idx := range sel.Accepted {
		if mal[idx] {
			t.Fatalf("Bulyan selected outlier %d", idx)
		}
	}
	if vec.Norm2(got) > 1 {
		t.Fatalf("Bulyan aggregate norm %v too large", vec.Norm2(got))
	}
}

func TestEmptyUpdatesError(t *testing.T) {
	aggs := []fl.Aggregator{FedAvg{}, Median{}, TrimmedMean{Trim: 1}, MultiKrum{F: 1}, Bulyan{F: 1}}
	for _, a := range aggs {
		if _, _, err := a.Aggregate(nil, nil); err == nil {
			t.Errorf("%s: expected error for empty updates", a.Name())
		}
	}
}

func TestSingleUpdateAllDefenses(t *testing.T) {
	us := mkUpdates([][]float64{{1, 2, 3}}, nil)
	aggs := []fl.Aggregator{FedAvg{}, Median{}, TrimmedMean{Trim: 2}, MultiKrum{F: 2}, Bulyan{F: 2}}
	for _, a := range aggs {
		got, _, err := a.Aggregate(nil, us)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		for d, want := range []float64{1, 2, 3} {
			if got[d] != want {
				t.Fatalf("%s: single update aggregate = %v", a.Name(), got)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fedavg", "median", "trmean", "krum", "mkrum", "bulyan"} {
		a, err := ByName(name, 2)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("quantum-shield", 2); err == nil {
		t.Fatal("expected error for unknown defense")
	}
}

// Property: for every statistical defense, each coordinate of the aggregate
// lies within [min, max] of the submitted values for that coordinate —
// the defining robustness property the paper's attacks must work around.
func TestAggregateWithinHullProperty(t *testing.T) {
	aggs := []fl.Aggregator{Median{}, TrimmedMean{Trim: 1}, MultiKrum{F: 1}, Bulyan{F: 1}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		dim := 1 + rng.Intn(5)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = make([]float64, dim)
			for d := range vs[i] {
				vs[i][d] = rng.NormFloat64() * 10
			}
		}
		us := mkUpdates(vs, nil)
		for _, a := range aggs {
			got, _, err := a.Aggregate(nil, us)
			if err != nil {
				return false
			}
			for d := 0; d < dim; d++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for i := range vs {
					lo = math.Min(lo, vs[i][d])
					hi = math.Max(hi, vs[i][d])
				}
				if got[d] < lo-1e-9 || got[d] > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Krum-family selection is permutation-consistent — the same set
// of vectors yields the same selected *vectors* regardless of input order.
func TestMultiKrumPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		agg := MultiKrum{F: 1}
		out1, _, err := agg.Aggregate(nil, mkUpdates(vs, nil))
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, p := range perm {
			shuffled[i] = vs[p]
		}
		out2, _, err := agg.Aggregate(nil, mkUpdates(shuffled, nil))
		if err != nil {
			return false
		}
		return vec.L2Dist(out1, out2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBulyanTrimsCoordinateOutliers checks stage 2: even among selected
// updates, per-coordinate extremes are discarded.
func TestBulyanStage2(t *testing.T) {
	// 5 updates, F=1: theta=3, beta=1 → per coordinate, the single value
	// closest to the median of the selected three.
	us := mkUpdates([][]float64{{0}, {0.1}, {0.2}, {5}, {-5}}, nil)
	got, sel, err := Bulyan{F: 1}.Aggregate(nil, us)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 3 {
		t.Fatalf("selected %d, want 3", len(sel.Accepted))
	}
	if math.Abs(got[0]-0.1) > 0.11 {
		t.Fatalf("Bulyan = %v, want ≈0.1", got[0])
	}
}
