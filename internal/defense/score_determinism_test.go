package defense

// Audit-reproducibility satellite: the exported score vectors (the
// forensics ROC inputs) of FoolsGold and the Krum family must be
// bit-identical at any tensor worker count, so fixed-seed audit journals
// reproduce exactly. The cosine/distance matrices fan rows out over the
// worker pool with a fixed per-element accumulation order; these tests pin
// that property at the Selection seam.

import (
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/tensor"
)

func scoreFixture(seed int64) []fl.Update {
	rng := rand.New(rand.NewSource(seed))
	var updates []fl.Update
	for i := 0; i < 12; i++ {
		w := make([]float64, 400)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		updates = append(updates, fl.Update{ClientID: i, Weights: w, NumSamples: 10})
	}
	// Two colluding near-duplicates so FoolsGold's pardoning path runs.
	dup := make([]float64, 400)
	copy(dup, updates[0].Weights)
	dup[0] += 1e-9
	updates = append(updates, fl.Update{ClientID: 12, Weights: dup, NumSamples: 10, Malicious: true})
	return updates
}

func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := tensor.Workers()
	defer tensor.SetWorkers(prev)
	tensor.SetWorkers(n)
	fn()
}

func foolsGoldScores(t *testing.T, workers, rounds int) [][]float64 {
	t.Helper()
	var out [][]float64
	withWorkers(t, workers, func() {
		fg := NewFoolsGold(1)
		global := make([]float64, 400)
		for r := 0; r < rounds; r++ {
			next, sel, err := fg.Aggregate(global, scoreFixture(int64(100+r)))
			if err != nil {
				t.Fatal(err)
			}
			if sel.ScoreName != "foolsgold-weight" {
				t.Fatalf("score name %q", sel.ScoreName)
			}
			out = append(out, sel.Scores)
			global = next
		}
	})
	return out
}

func TestFoolsGoldScoresWorkerInvariant(t *testing.T) {
	one := foolsGoldScores(t, 1, 3)
	eight := foolsGoldScores(t, 8, 3)
	for r := range one {
		for i := range one[r] {
			if one[r][i] != eight[r][i] {
				t.Fatalf("round %d score %d differs across worker counts: %v vs %v",
					r, i, one[r][i], eight[r][i])
			}
		}
	}
}

func TestKrumScoresWorkerInvariant(t *testing.T) {
	updates := scoreFixture(7)
	var one, eight fl.Selection
	withWorkers(t, 1, func() {
		var err error
		_, one, err = MultiKrum{F: 2}.Aggregate(nil, updates)
		if err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		_, eight, err = MultiKrum{F: 2}.Aggregate(nil, updates)
		if err != nil {
			t.Fatal(err)
		}
	})
	if one.ScoreName != "neg-krum-distance" || len(one.Scores) != len(updates) {
		t.Fatalf("missing Krum scores: %d (%q)", len(one.Scores), one.ScoreName)
	}
	for i := range one.Scores {
		if one.Scores[i] != eight.Scores[i] {
			t.Fatalf("score %d differs across worker counts: %v vs %v", i, one.Scores[i], eight.Scores[i])
		}
	}
	for i := range one.Accepted {
		if one.Accepted[i] != eight.Accepted[i] {
			t.Fatal("selection order differs across worker counts")
		}
	}
}
