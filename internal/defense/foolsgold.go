package defense

import (
	"math"

	"repro/internal/fl"
	"repro/internal/vec"
)

// FoolsGold is the Sybil defense of Fung et al. discussed in Section II-C of
// the paper: clients whose *historical* update directions are suspiciously
// similar (as Sybils controlled by one adversary tend to be) receive low
// aggregation weights. The paper's threat model notes that attackers can
// evade it by adding small perturbation noise to their copies, which the DFA
// implementations support via their PerturbStd option — this implementation
// exists to make that trade-off reproducible.
//
// FoolsGold is stateful across rounds (it accumulates per-client update
// history), so a fresh instance must be used per simulation.
type FoolsGold struct {
	// Kappa is the logit-scaling confidence parameter (Fung et al. use 1).
	Kappa float64

	history map[int][]float64
}

var _ fl.Aggregator = (*FoolsGold)(nil)

// NewFoolsGold returns a FoolsGold aggregator with empty history.
func NewFoolsGold(kappa float64) *FoolsGold {
	if kappa <= 0 {
		kappa = 1
	}
	return &FoolsGold{Kappa: kappa, history: make(map[int][]float64)}
}

// Name implements fl.Aggregator.
func (*FoolsGold) Name() string { return "foolsgold" }

// Aggregate implements fl.Aggregator. The Selection reports the logit
// weights both as Scores (higher = more benign; the ROC input for the
// forensics subsystem) and, normalized, as the actual aggregation Weights.
// Scores are computed per update with a fixed accumulation order, so they
// are bit-identical at any tensor worker count — audit journals reproduce.
func (f *FoolsGold) Aggregate(global []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	n := len(updates)
	if n == 0 {
		return nil, fl.Selection{}, errNoUpdates
	}
	// Accumulate per-client historical update directions (w_i − w(t)).
	// Sparse codec frames scatter-add their k kept coordinates directly —
	// O(k) instead of O(d) per client; the similarity matrix below still
	// runs dense, because histories accumulate across rounds.
	dirs := make([][]float64, n)
	for i, u := range updates {
		hist, ok := f.history[u.ClientID]
		if !ok {
			hist = make([]float64, len(global))
		}
		if u.Frame != nil && u.Frame.IsDelta() {
			u.Frame.AddDelta(hist)
		} else {
			vec.Axpy(hist, 1, vec.Sub(u.Weights, global))
		}
		f.history[u.ClientID] = hist
		dirs[i] = hist
	}
	// Pairwise cosine similarity of histories, via the shared
	// distance-matrix service (norms computed once, rows in parallel).
	cs := vec.CosineMatrix(dirs)
	// Max similarity per client, with the pardoning step of Fung et al.:
	// clients more "aligned" than their most similar peer are pardoned
	// proportionally.
	maxcs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i && cs[i][j] > maxcs[i] {
				maxcs[i] = cs[i][j]
			}
		}
	}
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		w := 1.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			adjusted := cs[i][j]
			if maxcs[j] > 0 && maxcs[i] < maxcs[j] {
				adjusted *= maxcs[i] / maxcs[j] // pardoning
			}
			if adjusted > 1-w {
				w = 1 - adjusted
			}
		}
		weights[i] = clamp01(w)
	}
	// Logit scaling sharpens the cut between Sybils and honest clients.
	for i, w := range weights {
		if w >= 1 {
			weights[i] = 1
			continue
		}
		if w <= 0 {
			weights[i] = 0
			continue
		}
		lw := f.Kappa * (math.Log(w/(1-w)) + 0.5)
		weights[i] = clamp01(lw)
	}
	// Selected = clients with non-zero aggregation weight (for DPR).
	selected := []int{}
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			selected = append(selected, i)
			total += w
		}
	}
	sel := fl.Selection{
		Accepted:  selected,
		Scores:    append([]float64(nil), weights...),
		ScoreName: "foolsgold-weight",
	}
	if total == 0 {
		// Degenerate round: every update looked like a Sybil. Fall back to
		// the current global model (no-op round); the empty Accepted lets
		// DPR and the detection metrics record an all-filtered round rather
		// than skipping it.
		return vec.Clone(global), sel, nil
	}
	norm := make([]float64, n)
	for i, w := range weights {
		norm[i] = w / total
	}
	sel.Weights = norm
	out := make([]float64, len(global))
	for i, u := range updates {
		if weights[i] == 0 {
			continue
		}
		vec.Axpy(out, norm[i], u.Weights)
	}
	return out, sel, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
