package dashboard

// Embedded-UI smoke tests: the go:embed asset tree must serve the page and
// its scripts, and /dash/api/config must echo the mount configuration the
// page bootstraps from.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMountServesEmbeddedAssets(t *testing.T) {
	mux := http.NewServeMux()
	Mount(mux, Config{})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, _ := get(Prefix + "/")
	if code != http.StatusOK {
		t.Fatalf("/dash/ status %d", code)
	}
	for _, want := range []string{"<!doctype html>", "app.js", "style.css"} {
		if !strings.Contains(strings.ToLower(body), want) {
			t.Fatalf("index missing %q:\n%.300s", want, body)
		}
	}
	code, body, hdr := get(Prefix + "/app.js")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/dash/app.js status %d, %d bytes", code, len(body))
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "javascript") {
		t.Fatalf("app.js Content-Type %q", ct)
	}
	if code, _, _ := get(Prefix + "/style.css"); code != http.StatusOK {
		t.Fatalf("/dash/style.css status %d", code)
	}
	if code, _, _ := get(Prefix + "/nope.js"); code != http.StatusNotFound {
		t.Fatalf("missing asset status %d, want 404", code)
	}
}

func TestConfigEndpoint(t *testing.T) {
	mux := http.NewServeMux()
	Mount(mux, Config{
		Federations: []string{"/forensics/alpha", "/forensics/beta"},
		Fleet:       true,
		Live:        true,
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + Prefix + "/api/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control %q, want no-store", cc)
	}
	var got Config
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "fl operator dashboard" {
		t.Fatalf("default title %q", got.Title)
	}
	if len(got.Federations) != 2 || !got.Fleet || !got.Live || got.Replay {
		t.Fatalf("config round trip = %+v", got)
	}
}

// TestConfigFederationsNeverNull pins the page contract: the JS boots with
// cfg.federations.map(...), so an empty list must serialize as [] not null.
func TestConfigFederationsNeverNull(t *testing.T) {
	mux := http.NewServeMux()
	Mount(mux, Config{})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + Prefix + "/api/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), `"federations":null`) {
		t.Fatalf("federations serialized as null: %s", body)
	}
	if !strings.Contains(string(body), `"federations":[]`) {
		t.Fatalf("federations missing from config: %s", body)
	}
}
