// Operator dashboard: vanilla JS + hand-rolled SVG. Data contracts:
//   GET api/config                      → {title, federations, fleet, replay, live}
//   GET <fed>/metrics                   → {cumulative: Summary, current: RoundMetrics|null}
//   GET <fed>/rounds?since=N            → {cursor, rounds: [{cursor, audit}]}
//   SSE <fed>/stream                    → id: cursor / event: round / data: audit JSON
//   GET /metrics.json                   → {families: [{name, type, help, series}]}
//   GET api/replay/{runs,rounds,diff}   → time-travel + diff
"use strict";

const $ = (sel, el) => (el || document).querySelector(sel);
const el = (tag, attrs, ...kids) => {
  const n = document.createElement(tag);
  for (const [k, v] of Object.entries(attrs || {})) {
    if (k === "class") n.className = v;
    else if (k.startsWith("on")) n.addEventListener(k.slice(2), v);
    else n.setAttribute(k, v);
  }
  for (const k of kids) n.append(k);
  return n;
};
const fmt = (v, d) => (v == null || Number.isNaN(v)) ? "–" : v.toFixed(d == null ? 3 : d);
const pct = v => (v == null || Number.isNaN(v)) ? "–" : (100 * v).toFixed(1) + "%";

// ---- SVG helpers -----------------------------------------------------------

const SVGNS = "http://www.w3.org/2000/svg";
function svg(w, h) {
  const s = document.createElementNS(SVGNS, "svg");
  s.setAttribute("viewBox", `0 0 ${w} ${h}`);
  return s;
}
function sEl(parent, tag, attrs) {
  const n = document.createElementNS(SVGNS, tag);
  for (const [k, v] of Object.entries(attrs)) n.setAttribute(k, v);
  parent.append(n);
  return n;
}

// lineChart renders series = [{name, color, points: [y|null per x]}] over a
// shared integer x axis (labels), y clamped to [0,1].
function lineChart(labels, series, W, H) {
  W = W || 460; H = H || 160;
  const padL = 34, padB = 18, padT = 6, padR = 6;
  const s = svg(W, H);
  const iw = W - padL - padR, ih = H - padT - padB;
  const x = i => padL + (labels.length > 1 ? i * iw / (labels.length - 1) : iw / 2);
  const y = v => padT + (1 - Math.max(0, Math.min(1, v))) * ih;
  for (const g of [0, 0.25, 0.5, 0.75, 1]) {
    sEl(s, "line", { x1: padL, y1: y(g), x2: W - padR, y2: y(g), stroke: "#2c3440", "stroke-width": 0.5 });
    sEl(s, "text", { x: padL - 4, y: y(g) + 3, fill: "#7d8794", "font-size": 9, "text-anchor": "end" }).textContent = g;
  }
  const step = Math.max(1, Math.ceil(labels.length / 8));
  labels.forEach((lab, i) => {
    if (i % step) return;
    sEl(s, "text", { x: x(i), y: H - 4, fill: "#7d8794", "font-size": 9, "text-anchor": "middle" }).textContent = lab;
  });
  for (const sr of series) {
    let d = "", pen = false;
    sr.points.forEach((v, i) => {
      if (v == null || Number.isNaN(v)) { pen = false; return; }
      d += (pen ? "L" : "M") + x(i).toFixed(1) + " " + y(v).toFixed(1);
      pen = true;
    });
    if (d) sEl(s, "path", { d, fill: "none", stroke: sr.color, "stroke-width": 1.5 });
  }
  return s;
}

// histogram renders accepted/rejected score distributions with an optional
// threshold line between max-rejected and min-accepted.
function histogram(scores, W, H) {
  W = W || 460; H = H || 160;
  const s = svg(W, H);
  const vals = scores.map(p => p.score);
  if (!vals.length) return s;
  const lo = Math.min(...vals), hi = Math.max(...vals);
  const span = hi - lo || 1;
  const BINS = 24, padB = 16;
  const counts = [];
  for (let i = 0; i < BINS; i++) counts.push({ acc: 0, rej: 0 });
  for (const p of scores) {
    const b = Math.min(BINS - 1, Math.floor((p.score - lo) / span * BINS));
    if (p.accepted) counts[b].acc++; else counts[b].rej++;
  }
  const max = Math.max(...counts.map(c => c.acc + c.rej));
  const bw = W / BINS;
  counts.forEach((c, i) => {
    const hAcc = (H - padB) * c.acc / max, hRej = (H - padB) * c.rej / max;
    if (c.rej) sEl(s, "rect", { x: i * bw + 1, y: H - padB - hRej, width: bw - 2, height: hRej, fill: "#e06c5f" });
    if (c.acc) sEl(s, "rect", { x: i * bw + 1, y: H - padB - hRej - hAcc, width: bw - 2, height: hAcc, fill: "#58c08a" });
  });
  const accScores = scores.filter(p => p.accepted).map(p => p.score);
  const rejScores = scores.filter(p => !p.accepted).map(p => p.score);
  if (accScores.length && rejScores.length) {
    // The defense accepted high (or low) scores; place the threshold midway
    // across the decision boundary when the two classes separate.
    const minAcc = Math.min(...accScores), maxRej = Math.max(...rejScores);
    const thr = maxRej <= minAcc ? (maxRej + minAcc) / 2
      : (Math.max(...accScores) <= Math.min(...rejScores) ? (Math.max(...accScores) + Math.min(...rejScores)) / 2 : null);
    if (thr != null) {
      const tx = (thr - lo) / span * W;
      sEl(s, "line", { x1: tx, y1: 0, x2: tx, y2: H - padB, stroke: "#e0b35f", "stroke-width": 1.5, "stroke-dasharray": "4 3" });
    }
  }
  sEl(s, "text", { x: 2, y: H - 4, fill: "#7d8794", "font-size": 9 }).textContent = fmt(lo);
  sEl(s, "text", { x: W - 2, y: H - 4, fill: "#7d8794", "font-size": 9, "text-anchor": "end" }).textContent = fmt(hi);
  return s;
}

// scatter renders fingerprints: x = L2, y = cosine-to-mean; fill = ground
// truth (when known), outline = defense decision.
function scatter(records, W, H) {
  W = W || 460; H = H || 160;
  const s = svg(W, H);
  const pts = records.map(r => ({
    x: r.fingerprint.l2, y: r.fingerprint.cosMean,
    mal: !!r.malicious, dec: !!r.decided, acc: !!r.accepted,
  })).filter(p => Number.isFinite(p.x) && Number.isFinite(p.y));
  if (!pts.length) return s;
  const xs = pts.map(p => p.x), ys = pts.map(p => p.y);
  const xlo = Math.min(...xs), xhi = Math.max(...xs), ylo = Math.min(...ys), yhi = Math.max(...ys);
  const xspan = xhi - xlo || 1, yspan = yhi - ylo || 1;
  const px = v => 8 + (v - xlo) / xspan * (W - 16);
  const py = v => H - 14 - (v - ylo) / yspan * (H - 22);
  for (const p of pts) {
    sEl(s, "circle", {
      cx: px(p.x).toFixed(1), cy: py(p.y).toFixed(1), r: 3.5,
      fill: p.mal ? "#e06c5f" : "#5db3f0",
      stroke: p.dec ? (p.acc ? "#58c08a" : "#e0b35f") : "none",
      "stroke-width": 1.5, "fill-opacity": 0.8,
    });
  }
  sEl(s, "text", { x: W - 2, y: H - 2, fill: "#7d8794", "font-size": 9, "text-anchor": "end" }).textContent = "‖Δ‖₂ →";
  sEl(s, "text", { x: 2, y: 10, fill: "#7d8794", "font-size": 9 }).textContent = "cos(mean) ↑";
  return s;
}

// ---- round views (shared by live and replay tabs) --------------------------

function kpi(label, value) {
  return el("div", { class: "kpi" }, el("div", { class: "v" }, value), el("div", { class: "l" }, label));
}

function roundViews(rounds, summary) {
  const wrap = el("div", {});
  if (summary) {
    wrap.append(el("div", { class: "panel" }, el("h2", {}, "cumulative detection — " + (summary.defense || "?")),
      el("div", { class: "kpis" },
        kpi("aggregations", String(summary.aggregations)),
        kpi("TPR", pct(summary.tpr)), kpi("FPR", pct(summary.fpr)),
        kpi("precision", pct(summary.precision)), kpi("AUC", fmt(summary.auc)),
        kpi("TPR@1%FPR", pct(summary.tprAt1pctFpr)),
        kpi("malicious seen", String(summary.maliciousSeen)))));
  }
  const labels = rounds.map(a => String(a.round) + (a.seq ? "." + a.seq : ""));
  const m = a => a.metrics || {};
  const timeline = el("div", { class: "panel" }, el("h2", {}, "per-round TPR / FPR / AUC"));
  timeline.append(lineChart(labels, [
    { name: "TPR", color: "#58c08a", points: rounds.map(a => m(a).tpr) },
    { name: "FPR", color: "#e06c5f", points: rounds.map(a => m(a).fpr) },
    { name: "AUC", color: "#5db3f0", points: rounds.map(a => m(a).auc) },
  ]));
  timeline.append(el("div", { class: "legend" },
    el("span", {}, el("i", { style: "background:#58c08a" }), "TPR"),
    el("span", {}, el("i", { style: "background:#e06c5f" }), "FPR"),
    el("span", {}, el("i", { style: "background:#5db3f0" }), "AUC")));
  const last = rounds[rounds.length - 1];
  const hist = el("div", { class: "panel" }, el("h2", {}, "scores — round " + (last ? last.round : "–")));
  const scat = el("div", { class: "panel" }, el("h2", {}, "fingerprints — round " + (last ? last.round : "–")));
  if (last) {
    const scored = (last.records || []).filter(r => r.score != null)
      .map(r => ({ score: r.score, accepted: !!r.accepted }));
    hist.append(scored.length ? histogram(scored) : el("p", { class: "muted" }, "defense produced no scores"));
    hist.append(el("div", { class: "legend" },
      el("span", {}, el("i", { style: "background:#58c08a" }), "accepted"),
      el("span", {}, el("i", { style: "background:#e06c5f" }), "rejected"),
      el("span", {}, el("i", { style: "background:#e0b35f" }), "threshold")));
    scat.append(scatter(last.records || []));
    scat.append(el("div", { class: "legend" },
      el("span", {}, el("i", { style: "background:#e06c5f" }), "malicious"),
      el("span", {}, el("i", { style: "background:#5db3f0" }), "benign"),
      el("span", {}, "outline: accept/reject")));
  } else {
    hist.append(el("p", { class: "muted" }, "no rounds yet"));
  }
  wrap.append(el("div", { class: "row" }, timeline), el("div", { class: "row" }, hist, scat));
  return wrap;
}

// ---- tab machinery ---------------------------------------------------------

let teardown = null; // active tab's cleanup (close SSE, stop timers)
function setStatus(text, cls) {
  const s = $("#status");
  s.textContent = text;
  s.className = "status" + (cls ? " " + cls : "");
}

function activate(btn, fn) {
  for (const b of $("#tabs").children) b.classList.toggle("active", b === btn);
  if (teardown) { teardown(); teardown = null; }
  $("#main").replaceChildren();
  teardown = fn($("#main")) || null;
}

// ---- live federation tab ---------------------------------------------------

function federationTab(prefix, live) {
  return main => {
    const rounds = []; // audits, oldest first, ring-bounded client-side
    let cursor = 0, summary = null, closed = false;
    const view = el("div", {});
    main.append(view);
    const render = () => view.replaceChildren(roundViews(rounds, summary));
    const push = (audit) => {
      rounds.push(audit);
      if (rounds.length > 512) rounds.shift();
    };
    const refreshSummary = async () => {
      try {
        const r = await fetch(prefix + "/metrics");
        summary = (await r.json()).cumulative;
      } catch { /* transient; next tick retries */ }
    };
    const poll = async () => {
      try {
        const r = await fetch(prefix + "/rounds?since=" + cursor);
        const body = await r.json();
        for (const it of body.rounds) push(it.audit);
        cursor = body.cursor;
        if (body.rounds.length) { await refreshSummary(); render(); }
      } catch { setStatus("poll error", "err"); }
    };
    let es = null, timer = null;
    if (live && window.EventSource) {
      es = new EventSource(prefix + "/stream");
      es.addEventListener("round", ev => {
        if (closed) return;
        push(JSON.parse(ev.data));
        cursor = Number(ev.lastEventId) || cursor;
        refreshSummary().then(render);
      });
      es.onopen = () => setStatus("live (sse)", "live");
      es.onerror = () => setStatus("sse reconnecting…", "poll");
    } else {
      timer = setInterval(poll, 1000);
      setStatus("polling", "poll");
    }
    refreshSummary().then(() => poll().then(render));
    return () => { closed = true; if (es) es.close(); if (timer) clearInterval(timer); setStatus(""); };
  };
}

// ---- fleet tab -------------------------------------------------------------

function fleetTab() {
  return main => {
    const panel = el("div", { class: "panel" }, el("h2", {}, "telemetry registry"));
    main.append(el("div", { class: "row" }, panel));
    const body = el("div", {});
    panel.append(body);
    const tick = async () => {
      try {
        const snap = await (await fetch("/metrics.json")).json();
        const tbl = el("table", {}, el("tr", {},
          el("th", {}, "metric"), el("th", {}, "labels"),
          el("th", { class: "num" }, "value"), el("th", { class: "num" }, "count"), el("th", { class: "num" }, "sum (s)")));
        for (const fam of snap.families || []) {
          for (const sr of fam.series || []) {
            tbl.append(el("tr", {},
              el("td", {}, fam.name), el("td", { class: "muted" }, sr.labels || ""),
              el("td", { class: "num" }, sr.value == null ? "" : String(sr.value)),
              el("td", { class: "num" }, sr.count == null ? "" : String(sr.count)),
              el("td", { class: "num" }, sr.sum == null ? "" : sr.sum.toFixed(3))));
          }
        }
        body.replaceChildren(tbl);
        setStatus("fleet: scraping /metrics.json", "live");
      } catch { setStatus("fleet scrape error", "err"); }
    };
    tick();
    const timer = setInterval(tick, 2000);
    return () => { clearInterval(timer); setStatus(""); };
  };
}

// ---- replay / diff tab -----------------------------------------------------

function replayTab() {
  return main => {
    const api = "api/replay";
    const controls = el("div", { class: "controls" });
    const stage = el("div", {});
    main.append(el("div", { class: "panel" }, el("h2", {}, "time-travel"), controls, stage));
    let runs = [], cur = null, idx = 0, windowN = 64;

    const runSel = el("select", {});
    const slider = el("input", { type: "range", min: 0, max: 0, value: 0 });
    const pos = el("span", { class: "muted" }, "–");
    const diffSel = el("select", {});
    controls.append("run:", runSel,
      el("button", { onclick: () => seek(idx - 1) }, "⏴ step"),
      slider, pos,
      el("button", { onclick: () => seek(idx + 1) }, "step ⏵"),
      "diff vs:", diffSel,
      el("button", { onclick: showDiff }, "diff"));

    async function loadRuns() {
      runs = await (await fetch(api + "/runs")).json();
      runSel.replaceChildren(...runs.map(r => el("option", { value: r.name }, `${r.name} (${r.source}, ${r.rounds}r)`)));
      diffSel.replaceChildren(...runs.map(r => el("option", { value: r.name }, r.name)));
      if (runs.length) selectRun(runs[0].name);
      else stage.append(el("p", { class: "muted" }, "no replay runs loaded (-dash-replay)"));
    }
    async function selectRun(name) {
      cur = runs.find(r => r.name === name);
      slider.max = Math.max(0, cur.rounds - 1);
      seek(cur.rounds - 1);
    }
    async function seek(i) {
      if (!cur) return;
      idx = Math.max(0, Math.min(cur.rounds - 1, i));
      slider.value = idx;
      pos.textContent = `${idx + 1}/${cur.rounds}`;
      const from = Math.max(0, idx - windowN + 1);
      const body = await (await fetch(`${api}/rounds?run=${encodeURIComponent(cur.name)}&from=${from}&n=${idx - from + 1}`)).json();
      const audits = body.rounds.map(r => r.audit);
      stage.replaceChildren(roundViews(audits, null));
      const accs = body.rounds.map(r => r.accuracy).filter(a => a != null);
      if (accs.length) {
        const p = el("div", { class: "panel" }, el("h2", {}, "accuracy"));
        p.append(lineChart(audits.map(a => String(a.round)), [
          { name: "acc", color: "#5db3f0", points: body.rounds.map(r => r.accuracy) }]));
        stage.append(el("div", { class: "row" }, p));
      }
    }
    async function showDiff() {
      if (!cur) return;
      const b = diffSel.value;
      const d = await (await fetch(`${api}/diff?a=${encodeURIComponent(cur.name)}&b=${encodeURIComponent(b)}`)).json();
      const tbl = el("table", {}, el("tr", {},
        el("th", {}, "#"), el("th", { class: "num" }, "TPR a"), el("th", { class: "num" }, "TPR b"), el("th", { class: "num" }, "ΔTPR"),
        el("th", { class: "num" }, "FPR a"), el("th", { class: "num" }, "FPR b"), el("th", { class: "num" }, "ΔFPR"),
        el("th", { class: "num" }, "ΔAUC"), el("th", { class: "num" }, "Δacc")));
      const cell = (v, signed) => {
        const td = el("td", { class: "num" }, v == null ? "–" : (signed && v > 0 ? "+" : "") + v.toFixed(3));
        if (signed && v != null && v !== 0) td.classList.add(v > 0 ? "pos" : "neg");
        return td;
      };
      for (const row of d.rounds) {
        tbl.append(el("tr", {}, el("td", {}, String(row.index)),
          cell(row.a.tpr), cell(row.b.tpr), cell(row.delta.tpr, true),
          cell(row.a.fpr), cell(row.b.fpr), cell(row.delta.fpr, true),
          cell(row.delta.auc, true), cell(row.delta.accuracy, true)));
      }
      const note = d.aExtra || d.bExtra
        ? el("p", { class: "muted" }, `aligned ${d.aligned} rounds; ${d.aExtra} extra in a, ${d.bExtra} in b`) : "";
      stage.replaceChildren(el("div", { class: "panel" }, el("h2", {}, `diff: ${d.a} vs ${d.b}`), note, tbl));
    }
    runSel.addEventListener("change", () => selectRun(runSel.value));
    slider.addEventListener("input", () => seek(Number(slider.value)));
    loadRuns().catch(() => stage.append(el("p", { class: "muted" }, "replay API unavailable")));
    return () => setStatus("");
  };
}

// ---- boot ------------------------------------------------------------------

(async () => {
  let cfg;
  try {
    cfg = await (await fetch("api/config")).json();
  } catch {
    $("#main").replaceChildren(el("p", { class: "muted" }, "config unavailable — is the ops server running?"));
    return;
  }
  document.title = cfg.title;
  $("#title").textContent = cfg.title;
  const tabs = $("#tabs");
  const add = (label, fn) => {
    const b = el("button", { onclick: () => activate(b, fn) }, label);
    tabs.append(b);
    return b;
  };
  let first = null;
  for (const fed of cfg.federations || []) {
    const label = fed.replace(/^\/forensics\/?/, "") || "live";
    const b = add(label, federationTab(fed, cfg.live));
    first = first || b;
  }
  if (cfg.fleet) { const b = add("fleet", fleetTab()); first = first || b; }
  if (cfg.replay) { const b = add("replay", replayTab()); first = first || b; }
  if (first) first.click();
  else $("#main").replaceChildren(el("p", { class: "muted" }, "nothing to show: no federations, fleet or replay configured"));
})();
