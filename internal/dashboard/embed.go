package dashboard

import "embed"

// assetFS carries the UI into the binary: index.html bootstraps, app.js
// renders, style.css paints. No build step — the files are served as
// written.
//
//go:embed assets
var assetFS embed.FS
