// Package dashboard serves the embedded operator UI: a zero-dependency
// single page (hand-rolled HTML/JS/SVG, no npm, no CDN) that renders the
// forensics feed, the telemetry fleet view and the replay/diff API in a
// browser. The package deliberately imports nothing outside the standard
// library — the assets are compiled into the binary with go:embed, and the
// fllint zerodep analyzer enforces the import discipline — so every build
// that has the ops mux has the dashboard.
package dashboard

import (
	"encoding/json"
	"io/fs"
	"net/http"
)

// Config tells the UI what data services this process mounted. It is
// served verbatim at <prefix>/api/config; the page adapts its tabs to it.
type Config struct {
	// Title heads the page (defaults to "fl operator dashboard").
	Title string `json:"title"`
	// Federations lists the forensics route prefixes to render, one tab
	// each: ["/forensics"] for a single run, ["/forensics/alpha", …] for a
	// multi-tenant host. Empty hides the live detection tabs.
	Federations []string `json:"federations"`
	// Fleet shows the telemetry panel backed by /metrics.json.
	Fleet bool `json:"fleet"`
	// Replay shows the time-travel/diff tab backed by <prefix>/api/replay.
	Replay bool `json:"replay"`
	// Live enables SSE streaming (federation prefix + "/stream"); when
	// false the page falls back to polling /rounds?since=.
	Live bool `json:"live"`
}

// Prefix is the canonical mount point on the ops mux.
const Prefix = "/dash"

// Mount registers the UI under Prefix on mux: the embedded assets at
// /dash/ and the configuration the page bootstraps from at
// /dash/api/config. Data APIs (forensics routes, /metrics.json, the
// replay service) are mounted by the caller on the same mux.
func Mount(mux *http.ServeMux, cfg Config) {
	if cfg.Title == "" {
		cfg.Title = "fl operator dashboard"
	}
	if cfg.Federations == nil {
		cfg.Federations = []string{}
	}
	sub, err := fs.Sub(assetFS, "assets")
	if err != nil {
		// Impossible with a well-formed embed; fail loud at mount time.
		panic("dashboard: embedded assets missing: " + err.Error())
	}
	fileServer := http.FileServer(http.FS(sub))
	mux.Handle(Prefix+"/", http.StripPrefix(Prefix+"/", fileServer))
	mux.HandleFunc(Prefix+"/api/config", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(cfg)
	})
}
