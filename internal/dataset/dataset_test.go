package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

func TestSpecByName(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"fashion-sim", "fashion-sim"},
		{"fmnist", "fashion-sim"},
		{"cifar", "cifar-sim"},
		{"cifar10", "cifar-sim"},
		{"svhn", "svhn-sim"},
		{"tiny", "tiny-sim"},
	}
	for _, tc := range tests {
		spec, err := SpecByName(tc.in)
		if err != nil {
			t.Fatalf("SpecByName(%q): %v", tc.in, err)
		}
		if spec.Name != tc.want {
			t.Errorf("SpecByName(%q).Name = %q, want %q", tc.in, spec.Name, tc.want)
		}
	}
	if _, err := SpecByName("mnist-prime"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	spec := TinySpec()
	train, test := Generate(spec, 42)
	if train.Len() != spec.TrainN || test.Len() != spec.TestN {
		t.Fatalf("sizes %d/%d, want %d/%d", train.Len(), test.Len(), spec.TrainN, spec.TestN)
	}
	for _, img := range train.Images[:10] {
		if img.Shape[0] != spec.Channels || img.Shape[1] != spec.Size || img.Shape[2] != spec.Size {
			t.Fatalf("image shape %v", img.Shape)
		}
	}
	train2, _ := Generate(spec, 42)
	for i := range train.Images[:20] {
		if train.Labels[i] != train2.Labels[i] {
			t.Fatal("generation not deterministic in labels")
		}
		for j := range train.Images[i].Data {
			if train.Images[i].Data[j] != train2.Images[i].Data[j] {
				t.Fatal("generation not deterministic in pixels")
			}
		}
	}
	train3, _ := Generate(spec, 43)
	same := true
	for j := range train.Images[0].Data {
		if train.Images[0].Data[j] != train3.Images[0].Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first image")
	}
}

func TestGenerateClassBalance(t *testing.T) {
	train, _ := Generate(FashionSpec(), 1)
	counts := train.ClassCounts()
	for c, n := range counts {
		expect := float64(train.Len()) / float64(train.Classes)
		if math.Abs(float64(n)-expect) > expect*0.25 {
			t.Errorf("class %d count %d deviates from uniform %f", c, n, expect)
		}
	}
}

func TestSVHNImbalance(t *testing.T) {
	train, _ := Generate(SVHNSpec(), 1)
	counts := train.ClassCounts()
	// Class 1 should be clearly more common than class 9 (Benford-like skew).
	if counts[1] <= counts[9] {
		t.Errorf("svhn-sim should be imbalanced: class1=%d class9=%d", counts[1], counts[9])
	}
}

func TestBatchAssembly(t *testing.T) {
	train, _ := Generate(TinySpec(), 7)
	x, labels := train.Batch([]int{0, 5, 9})
	if x.Shape[0] != 3 || x.Shape[1] != train.C || x.Shape[2] != train.H || x.Shape[3] != train.W {
		t.Fatalf("batch shape %v", x.Shape)
	}
	per := train.C * train.H * train.W
	for i, j := range []int{0, 5, 9} {
		if labels[i] != train.Labels[j] {
			t.Fatalf("label mismatch at %d", i)
		}
		for k := 0; k < per; k++ {
			if x.Data[i*per+k] != train.Images[j].Data[k] {
				t.Fatalf("pixel mismatch at sample %d", i)
			}
		}
	}
}

func TestBatchEmptyPanics(t *testing.T) {
	train, _ := Generate(TinySpec(), 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty batch")
		}
	}()
	train.Batch(nil)
}

func TestSubset(t *testing.T) {
	train, _ := Generate(TinySpec(), 7)
	sub := train.Subset([]int{1, 3})
	if sub.Len() != 2 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if sub.Labels[0] != train.Labels[1] || sub.Labels[1] != train.Labels[3] {
		t.Fatal("subset labels wrong")
	}
	if sub.Images[0] != train.Images[1] {
		t.Fatal("subset should share image tensors")
	}
}

// TestLearnability is the key substitution check: a small CNN must be able
// to learn the synthetic task well above chance, otherwise attack success
// rates would be meaningless.
func TestLearnability(t *testing.T) {
	spec := TinySpec()
	train, test := Generate(spec, 11)
	rng := rand.New(rand.NewSource(5))
	net := nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	opt := nn.NewSGD(0.05, 0.9)
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < 8; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += 16 {
			end := start + 16
			if end > len(idx) {
				end = len(idx)
			}
			x, labels := train.Batch(idx[start:end])
			nn.TrainBatch(net, opt, x, labels)
		}
	}
	x, labels := test.Batch(seq(test.Len()))
	preds := nn.Predict(net.Forward(x, false))
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(labels))
	if acc < 0.6 {
		t.Fatalf("synthetic task not learnable: accuracy %.2f < 0.6", acc)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestPartitionIID(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shards := PartitionIID(rng, 103, 10)
	total := 0
	seen := make(map[int]bool)
	for _, s := range shards {
		if len(s) < 10 || len(s) > 11 {
			t.Fatalf("iid shard size %d out of balance", len(s))
		}
		for _, idx := range s {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
		total += len(s)
	}
	if total != 103 {
		t.Fatalf("total %d, want 103", total)
	}
}

func TestPartitionDirichletCoversAllSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := make([]int, 500)
	for i := range labels {
		labels[i] = i % 10
	}
	shards := PartitionDirichlet(rng, labels, 20, 0.5)
	seen := make(map[int]bool)
	for _, s := range shards {
		for _, idx := range s {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 500 {
		t.Fatalf("covered %d samples, want 500", len(seen))
	}
	for c, s := range shards {
		if len(s) == 0 {
			t.Fatalf("client %d has no samples after rebalancing", c)
		}
	}
}

// TestDirichletHeterogeneityMonotone verifies the defining property used
// throughout Section IV-D: lower beta produces higher label skew.
func TestDirichletHeterogeneityMonotone(t *testing.T) {
	labels := make([]int, 2000)
	for i := range labels {
		labels[i] = i % 10
	}
	idxOf := func(beta float64) float64 {
		sum := 0.0
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			shards := PartitionDirichlet(rng, labels, 50, beta)
			sum += HeterogeneityIndex(labels, shards, 10)
		}
		return sum / 3
	}
	h01 := idxOf(0.1)
	h05 := idxOf(0.5)
	h09 := idxOf(0.9)
	h100 := idxOf(100)
	if !(h01 > h05 && h05 > h09 && h09 > h100) {
		t.Fatalf("heterogeneity not monotone in beta: h(0.1)=%.3f h(0.5)=%.3f h(0.9)=%.3f h(100)=%.3f",
			h01, h05, h09, h100)
	}
	if h01 < 0.3 {
		t.Errorf("beta=0.1 should be strongly skewed, got %.3f", h01)
	}
	if h100 > 0.2 {
		t.Errorf("beta=100 should be near-iid, got %.3f", h100)
	}
}

func TestPartitionQuantityCoversAllSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shards := PartitionQuantity(rng, 500, 20, 0.5)
	seen := make(map[int]bool)
	for _, s := range shards {
		for _, idx := range s {
			if idx < 0 || idx >= 500 {
				t.Fatalf("index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 500 {
		t.Fatalf("covered %d samples, want 500", len(seen))
	}
	for c, s := range shards {
		if len(s) == 0 {
			t.Fatalf("client %d has no samples after rebalancing", c)
		}
	}
}

// TestPartitionQuantityHeterogeneityMonotone verifies the quantity-skew
// analogue of the Dirichlet monotonicity property: lower beta concentrates
// the data on few clients, leaving many tiny shards whose label
// distributions deviate more from the global one, so HeterogeneityIndex
// rises as beta falls. It also checks the size skew directly.
func TestPartitionQuantityHeterogeneityMonotone(t *testing.T) {
	labels := make([]int, 2000)
	for i := range labels {
		labels[i] = i % 10
	}
	stats := func(beta float64) (hi, maxShare float64) {
		sumHI, sumShare := 0.0, 0.0
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			shards := PartitionQuantity(rng, len(labels), 50, beta)
			sumHI += HeterogeneityIndex(labels, shards, 10)
			largest := 0
			for _, s := range shards {
				if len(s) > largest {
					largest = len(s)
				}
			}
			sumShare += float64(largest) / float64(len(labels))
		}
		return sumHI / 3, sumShare / 3
	}
	h005, share005 := stats(0.05)
	h05, share05 := stats(0.5)
	h100, share100 := stats(100)
	if !(h005 > h05 && h05 > h100) {
		t.Fatalf("quantity-skew heterogeneity not monotone in beta: h(0.05)=%.3f h(0.5)=%.3f h(100)=%.3f",
			h005, h05, h100)
	}
	if !(share005 > share05 && share05 > share100) {
		t.Fatalf("largest-shard share not monotone in beta: %.3f, %.3f, %.3f",
			share005, share05, share100)
	}
	if share100 > 0.1 {
		t.Errorf("beta=100 should be near-balanced, largest share %.3f", share100)
	}
}

func TestPartitionQuantityInvalidArgsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, f := range map[string]func(){
		"clients": func() { PartitionQuantity(rng, 10, 0, 0.5) },
		"beta":    func() { PartitionQuantity(rng, 10, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSampleDirichletIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := []float64{0.1, 0.5, 1, 5}[rng.Intn(4)]
		p := SampleDirichlet(rng, 1+rng.Intn(20), alpha)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleGammaMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, alpha := range []float64{0.3, 1.0, 2.5} {
		sum := 0.0
		n := 20000
		for i := 0; i < n; i++ {
			sum += sampleGamma(rng, alpha)
		}
		mean := sum / float64(n)
		if math.Abs(mean-alpha) > 0.1*math.Max(1, alpha) {
			t.Errorf("gamma(%v) sample mean %.3f, want ~%.3f", alpha, mean, alpha)
		}
	}
}

func TestPartitionDirichletInvalidArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for beta <= 0")
		}
	}()
	PartitionDirichlet(rand.New(rand.NewSource(1)), []int{0, 1}, 2, 0)
}

func TestHeterogeneityIndexEmptyShards(t *testing.T) {
	if got := HeterogeneityIndex([]int{0, 1}, [][]int{{}, {}}, 2); got != 0 {
		t.Fatalf("HeterogeneityIndex of empty shards = %v, want 0", got)
	}
}
