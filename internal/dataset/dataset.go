// Package dataset provides the image-classification substrate of the
// reproduction: synthetic stand-ins for Fashion-MNIST, CIFAR-10 and SVHN,
// plus the Dirichlet-based heterogeneous data partitioning the paper uses to
// emulate non-i.i.d. clients.
//
// The real datasets are not available in an offline, stdlib-only module, so
// each benchmark is replaced by a procedurally generated 10-class image task
// whose *relevant characteristics* are preserved (see DESIGN.md): channel
// count, relative difficulty, intra-class diversity, and — for SVHN — class
// imbalance. Class signatures are smooth mixtures of 2-D sinusoids; samples
// add translation jitter, amplitude scaling and pixel noise.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is an in-memory labelled image collection. Images are CHW tensors
// with pixel values roughly in [−1, 1].
type Dataset struct {
	Images  []*tensor.Tensor
	Labels  []int
	Classes int
	// C, H, W describe every image's shape.
	C, H, W int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Images) }

// Batch assembles the samples at the given indices into a single
// [len(idx), C, H, W] tensor plus the matching label slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	if len(idx) == 0 {
		panic("dataset: Batch of zero indices")
	}
	x := tensor.New(len(idx), d.C, d.H, d.W)
	labels := make([]int, len(idx))
	per := d.C * d.H * d.W
	for i, j := range idx {
		copy(x.Data[i*per:(i+1)*per], d.Images[j].Data)
		labels[i] = d.Labels[j]
	}
	return x, labels
}

// Subset returns a dataset view containing only the samples at the given
// indices. Image tensors are shared with the parent.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		Images:  make([]*tensor.Tensor, len(idx)),
		Labels:  make([]int, len(idx)),
		Classes: d.Classes,
		C:       d.C, H: d.H, W: d.W,
	}
	for i, j := range idx {
		s.Images[i] = d.Images[j]
		s.Labels[i] = d.Labels[j]
	}
	return s
}

// ClassCounts returns the number of samples per class label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, l := range d.Labels {
		counts[l]++
	}
	return counts
}

// Spec describes a synthetic dataset family.
type Spec struct {
	// Name identifies the dataset ("fashion-sim", "cifar-sim", "svhn-sim").
	Name string
	// Channels is 1 for grayscale, 3 for RGB.
	Channels int
	// Size is the square image side length.
	Size int
	// Classes is the number of labels (10 for all paper datasets).
	Classes int
	// TrainN and TestN are the number of generated samples.
	TrainN, TestN int
	// Waves is the number of sinusoidal components per class signature;
	// more waves means higher-frequency, harder-to-learn structure.
	Waves int
	// NoiseStd is the per-pixel Gaussian noise level.
	NoiseStd float64
	// Jitter is the maximum circular translation in pixels (intra-class
	// spatial diversity).
	Jitter int
	// AmpVar is the relative amplitude variation between samples of a class.
	AmpVar float64
	// ClassPrior optionally skews the label distribution (SVHN is slightly
	// imbalanced); nil means uniform.
	ClassPrior []float64
}

// FashionSpec mirrors Fashion-MNIST as used in the paper: grayscale, easy,
// low intra-class diversity, subsampled to 10% (≈6000 train images).
func FashionSpec() Spec {
	return Spec{
		Name:     "fashion-sim",
		Channels: 1,
		Size:     16,
		Classes:  10,
		TrainN:   6000,
		TestN:    1000,
		Waves:    3,
		NoiseStd: 0.25,
		Jitter:   1,
		AmpVar:   0.15,
	}
}

// CIFARSpec mirrors CIFAR-10 as used in the paper: RGB, harder, diverse
// benign updates, subsampled to 10% (≈5000 train images).
func CIFARSpec() Spec {
	return Spec{
		Name:     "cifar-sim",
		Channels: 3,
		Size:     16,
		Classes:  10,
		TrainN:   5000,
		TestN:    1000,
		Waves:    5,
		NoiseStd: 0.6,
		Jitter:   1,
		AmpVar:   0.3,
	}
}

// SVHNSpec mirrors SVHN as used in the paper: RGB digit-like task of medium
// difficulty with a slightly imbalanced class prior, kept at full relative
// size (the paper does not subsample SVHN).
func SVHNSpec() Spec {
	return Spec{
		Name:     "svhn-sim",
		Channels: 3,
		Size:     16,
		Classes:  10,
		TrainN:   7000,
		TestN:    1200,
		Waves:    3,
		NoiseStd: 0.4,
		Jitter:   1,
		AmpVar:   0.2,
		// Street-number digit frequencies are skewed toward low digits
		// (Benford-like), which is the imbalance the paper refers to.
		ClassPrior: []float64{0.07, 0.19, 0.15, 0.12, 0.10, 0.09, 0.08, 0.07, 0.07, 0.06},
	}
}

// TinySpec is a fast 8×8 grayscale task for unit tests.
func TinySpec() Spec {
	return Spec{
		Name:     "tiny-sim",
		Channels: 1,
		Size:     8,
		Classes:  4,
		TrainN:   240,
		TestN:    80,
		Waves:    2,
		NoiseStd: 0.15,
		Jitter:   0,
		AmpVar:   0.1,
	}
}

// SpecByName resolves the canonical dataset specs used by the experiment
// harness.
func SpecByName(name string) (Spec, error) {
	switch name {
	case "fashion-sim", "fashion", "fmnist":
		return FashionSpec(), nil
	case "cifar-sim", "cifar", "cifar10":
		return CIFARSpec(), nil
	case "svhn-sim", "svhn":
		return SVHNSpec(), nil
	case "tiny-sim", "tiny":
		return TinySpec(), nil
	default:
		return Spec{}, fmt.Errorf("dataset: unknown spec %q", name)
	}
}

// classSignature builds the deterministic per-class template: for every
// channel, a sum of Waves random sinusoids drawn from a class-seeded RNG.
func classSignature(spec Spec, class int, seed int64) *tensor.Tensor {
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	rng := rand.New(rand.NewSource(seed ^ int64(class+1)*mix))
	tpl := tensor.New(spec.Channels, spec.Size, spec.Size)
	s := float64(spec.Size)
	for c := 0; c < spec.Channels; c++ {
		for k := 0; k < spec.Waves; k++ {
			amp := 0.5 + rng.Float64()*0.5
			fx := float64(rng.Intn(3)+1) / s * 2 * math.Pi
			fy := float64(rng.Intn(3)+1) / s * 2 * math.Pi
			phase := rng.Float64() * 2 * math.Pi
			sign := 1.0
			if rng.Intn(2) == 0 {
				sign = -1
			}
			for y := 0; y < spec.Size; y++ {
				for x := 0; x < spec.Size; x++ {
					v := sign * amp * math.Sin(fx*float64(x)+fy*float64(y)+phase)
					tpl.Data[(c*spec.Size+y)*spec.Size+x] += v
				}
			}
		}
	}
	// Normalize the template to unit peak so every class has a comparable
	// signal level regardless of how its waves interfered.
	peak := 0.0
	for _, v := range tpl.Data {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak > 0 {
		tpl.ScaleInPlace(0.9 / peak)
	}
	return tpl
}

// Generate builds the train and test splits of the given spec. Generation is
// fully deterministic in (spec, seed).
func Generate(spec Spec, seed int64) (train, test *Dataset) {
	templates := make([]*tensor.Tensor, spec.Classes)
	for c := 0; c < spec.Classes; c++ {
		templates[c] = classSignature(spec, c, seed)
	}
	gen := func(n int, rng *rand.Rand) *Dataset {
		d := &Dataset{
			Images:  make([]*tensor.Tensor, n),
			Labels:  make([]int, n),
			Classes: spec.Classes,
			C:       spec.Channels, H: spec.Size, W: spec.Size,
		}
		for i := 0; i < n; i++ {
			label := drawClass(spec, rng)
			d.Labels[i] = label
			d.Images[i] = renderSample(spec, templates[label], rng)
		}
		return d
	}
	train = gen(spec.TrainN, rand.New(rand.NewSource(seed*2+1)))
	test = gen(spec.TestN, rand.New(rand.NewSource(seed*2+2)))
	return train, test
}

func drawClass(spec Spec, rng *rand.Rand) int {
	if spec.ClassPrior == nil {
		return rng.Intn(spec.Classes)
	}
	u := rng.Float64()
	cum := 0.0
	for c, p := range spec.ClassPrior {
		cum += p
		if u < cum {
			return c
		}
	}
	return spec.Classes - 1
}

func renderSample(spec Spec, tpl *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
	img := tensor.New(spec.Channels, spec.Size, spec.Size)
	dx, dy := 0, 0
	if spec.Jitter > 0 {
		dx = rng.Intn(2*spec.Jitter+1) - spec.Jitter
		dy = rng.Intn(2*spec.Jitter+1) - spec.Jitter
	}
	amp := 1.0
	if spec.AmpVar > 0 {
		amp = 1 + (rng.Float64()*2-1)*spec.AmpVar
	}
	size := spec.Size
	for c := 0; c < spec.Channels; c++ {
		for y := 0; y < size; y++ {
			sy := ((y+dy)%size + size) % size
			for x := 0; x < size; x++ {
				sx := ((x+dx)%size + size) % size
				v := amp*tpl.Data[(c*size+sy)*size+sx] + rng.NormFloat64()*spec.NoiseStd
				img.Data[(c*size+y)*size+x] = v
			}
		}
	}
	return img
}
