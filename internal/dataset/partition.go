package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// PartitionIID splits sample indices uniformly at random into numClients
// equally sized shards (up to remainder).
func PartitionIID(rng *rand.Rand, n, numClients int) [][]int {
	if numClients <= 0 {
		panic(fmt.Sprintf("dataset: numClients %d must be positive", numClients))
	}
	perm := rng.Perm(n)
	shards := make([][]int, numClients)
	for i, idx := range perm {
		c := i % numClients
		shards[c] = append(shards[c], idx)
	}
	return shards
}

// PartitionDirichlet assigns sample indices to clients following the
// label-skew protocol used in the paper (and in Hsu et al.): for every class
// a proportion vector over clients is drawn from Dirichlet(beta) and the
// class's samples are split accordingly. Lower beta means higher
// heterogeneity. Clients that end up empty receive one sample stolen from
// the largest client so the training loop never sees an empty shard.
func PartitionDirichlet(rng *rand.Rand, labels []int, numClients int, beta float64) [][]int {
	if numClients <= 0 {
		panic(fmt.Sprintf("dataset: numClients %d must be positive", numClients))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("dataset: Dirichlet beta %v must be positive", beta))
	}
	classes := 0
	for _, l := range labels {
		if l+1 > classes {
			classes = l + 1
		}
	}
	byClass := make([][]int, classes)
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	shards := make([][]int, numClients)
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		props := SampleDirichlet(rng, numClients, beta)
		// Convert proportions to cumulative counts over this class.
		start := 0
		cum := 0.0
		for c := 0; c < numClients; c++ {
			cum += props[c]
			end := int(math.Round(cum * float64(len(idxs))))
			if c == numClients-1 {
				end = len(idxs)
			}
			if end > len(idxs) {
				end = len(idxs)
			}
			if end > start {
				shards[c] = append(shards[c], idxs[start:end]...)
			}
			start = end
		}
	}
	rebalanceEmpty(rng, shards)
	return shards
}

// PartitionQuantity assigns sample indices to clients following the
// quantity-skew protocol: one proportion vector over clients is drawn from
// Dirichlet(beta) and a random permutation of all samples is sliced
// accordingly, so clients differ in how much data they hold rather than in
// which labels they hold (the complement of PartitionDirichlet's label
// skew). Lower beta means more extreme size imbalance. Clients that end up
// empty receive one sample stolen from the largest client so the training
// loop never sees an empty shard.
func PartitionQuantity(rng *rand.Rand, n, numClients int, beta float64) [][]int {
	if numClients <= 0 {
		panic(fmt.Sprintf("dataset: numClients %d must be positive", numClients))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("dataset: Dirichlet beta %v must be positive", beta))
	}
	perm := rng.Perm(n)
	props := SampleDirichlet(rng, numClients, beta)
	shards := make([][]int, numClients)
	start := 0
	cum := 0.0
	for c := 0; c < numClients; c++ {
		cum += props[c]
		end := int(math.Round(cum * float64(n)))
		if c == numClients-1 {
			end = n
		}
		if end > n {
			end = n
		}
		if end > start {
			shards[c] = append(shards[c], perm[start:end]...)
		}
		start = end
	}
	rebalanceEmpty(rng, shards)
	return shards
}

// rebalanceEmpty moves one sample from the largest shard into every empty
// shard.
func rebalanceEmpty(rng *rand.Rand, shards [][]int) {
	for c := range shards {
		if len(shards[c]) > 0 {
			continue
		}
		largest := 0
		for i := range shards {
			if len(shards[i]) > len(shards[largest]) {
				largest = i
			}
		}
		if len(shards[largest]) <= 1 {
			continue // nothing to steal
		}
		k := rng.Intn(len(shards[largest]))
		shards[c] = append(shards[c], shards[largest][k])
		shards[largest] = append(shards[largest][:k], shards[largest][k+1:]...)
	}
}

// SampleDirichlet draws one sample from a symmetric Dirichlet distribution
// with concentration alpha over dim components.
func SampleDirichlet(rng *rand.Rand, dim int, alpha float64) []float64 {
	out := make([]float64, dim)
	sum := 0.0
	for i := range out {
		out[i] = sampleGamma(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw (possible for very small alpha): put all mass on
		// one random component, which is the correct limiting behaviour.
		out[rng.Intn(dim)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SampleGamma draws from Gamma(alpha, 1); it is the building block of
// SampleDirichlet and of the population package's per-client quantity-skew
// streams.
func SampleGamma(rng *rand.Rand, alpha float64) float64 {
	return sampleGamma(rng, alpha)
}

// sampleGamma draws from Gamma(alpha, 1) using Marsaglia–Tsang, with the
// standard power-of-uniform boost for alpha < 1.
func sampleGamma(rng *rand.Rand, alpha float64) float64 {
	if alpha < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// HeterogeneityIndex quantifies label skew of a partition as the mean
// total-variation distance between each client's label distribution and the
// global label distribution (0 = perfectly i.i.d., →1 = one class per
// client). Used by tests to verify that lower beta yields higher skew.
func HeterogeneityIndex(labels []int, shards [][]int, classes int) float64 {
	global := make([]float64, classes)
	for _, l := range labels {
		global[l]++
	}
	total := float64(len(labels))
	for i := range global {
		global[i] /= total
	}
	sum := 0.0
	counted := 0
	for _, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		local := make([]float64, classes)
		for _, idx := range shard {
			local[labels[idx]]++
		}
		tv := 0.0
		for c := 0; c < classes; c++ {
			tv += math.Abs(local[c]/float64(len(shard)) - global[c])
		}
		sum += tv / 2
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}
