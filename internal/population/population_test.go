package population

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func tinyTrain(t testing.TB) *dataset.Dataset {
	t.Helper()
	train, _ := dataset.Generate(dataset.TinySpec(), 1)
	return train
}

func specs(n int) []Spec {
	return []Spec{
		{Kind: IID, TotalClients: n, Seed: 7, MeanShard: 12},
		{Kind: Label, TotalClients: n, Seed: 7, Beta: 0.5, MeanShard: 12},
		{Kind: Label, TotalClients: n, Seed: 7, Beta: 0.1, MeanShard: 12},
		{Kind: Quantity, TotalClients: n, Seed: 7, Beta: 0.5, MeanShard: 12},
	}
}

func equalShards(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLazyMatchesEager pins the subsystem's core contract: materializing
// client i lazily is bit-identical to slicing the eagerly-partitioned
// population, for every partition kind, for any cache size, and
// independently of materialization order.
func TestLazyMatchesEager(t *testing.T) {
	train := tinyTrain(t)
	const n = 300
	for _, spec := range specs(n) {
		for _, cache := range []int{1, 3, 97, n + 1} {
			s := spec
			s.Cache = cache
			eagerPop, err := New(s, train)
			if err != nil {
				t.Fatal(err)
			}
			eager := eagerPop.MaterializeAll()

			lazy, err := New(s, train)
			if err != nil {
				t.Fatal(err)
			}
			// Touch clients in a scrambled order, with repeats, so cache
			// hits, misses and evictions all occur.
			order := rand.New(rand.NewSource(42)).Perm(n)
			order = append(order, order[:n/2]...)
			for _, id := range order {
				if got := lazy.Shard(id); !equalShards(got, eager[id]) {
					t.Fatalf("kind=%s cache=%d: client %d lazy %v != eager %v",
						s.Kind, cache, id, got, eager[id])
				}
			}
			if got := lazy.CacheLen(); got > cache {
				t.Fatalf("kind=%s: cache holds %d shards, cap %d", s.Kind, got, cache)
			}
		}
	}
}

// TestShardSizeMatchesShard pins ShardSize's O(1) contract against the
// materialized length for every kind.
func TestShardSizeMatchesShard(t *testing.T) {
	train := tinyTrain(t)
	for _, spec := range specs(64) {
		pop, err := New(spec, train)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 64; id++ {
			if got, want := pop.ShardSize(id), len(pop.Shard(id)); got != want {
				t.Fatalf("kind=%s: client %d ShardSize %d != len(Shard) %d", spec.Kind, id, got, want)
			}
		}
	}
}

// TestShardIndicesInRange checks every derived index addresses the dataset.
func TestShardIndicesInRange(t *testing.T) {
	train := tinyTrain(t)
	for _, spec := range specs(128) {
		pop, err := New(spec, train)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 128; id += 7 {
			for _, idx := range pop.Shard(id) {
				if idx < 0 || idx >= train.Len() {
					t.Fatalf("kind=%s: client %d holds out-of-range sample %d", spec.Kind, id, idx)
				}
			}
		}
	}
}

// TestLabelSkewIncreasesWithLowerBeta checks the Label kind actually skews:
// a client's label distribution concentrates as Beta shrinks.
func TestLabelSkewIncreasesWithLowerBeta(t *testing.T) {
	train := tinyTrain(t)
	het := func(beta float64) float64 {
		pop, err := New(Spec{Kind: Label, TotalClients: 200, Seed: 5, Beta: beta, MeanShard: 20}, train)
		if err != nil {
			t.Fatal(err)
		}
		return dataset.HeterogeneityIndex(train.Labels, pop.MaterializeAll(), train.Classes)
	}
	low, high := het(0.05), het(50)
	if low <= high {
		t.Fatalf("beta=0.05 heterogeneity %v should exceed beta=50's %v", low, high)
	}
}

// TestQuantitySkewVariance checks the Quantity kind spreads shard sizes
// while keeping the mean near MeanShard.
func TestQuantitySkewVariance(t *testing.T) {
	train := tinyTrain(t)
	pop, err := New(Spec{Kind: Quantity, TotalClients: 2000, Seed: 5, Beta: 0.3, MeanShard: 30}, train)
	if err != nil {
		t.Fatal(err)
	}
	sum, minSize, maxSize := 0, int(1<<30), 0
	for id := 0; id < 2000; id++ {
		s := pop.ShardSize(id)
		sum += s
		if s < minSize {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	mean := float64(sum) / 2000
	if mean < 20 || mean > 40 {
		t.Fatalf("mean shard size %v too far from MeanShard 30", mean)
	}
	if maxSize < 2*minSize {
		t.Fatalf("quantity skew too flat: min %d max %d", minSize, maxSize)
	}
}

// TestCacheReuse pins the caching contract: repeated access within the
// capacity derives each shard once, and eviction bounds the held set.
func TestCacheReuse(t *testing.T) {
	train := tinyTrain(t)
	pop, err := New(Spec{Kind: IID, TotalClients: 1000, Seed: 3, MeanShard: 8, Cache: 10}, train)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for id := 0; id < 10; id++ {
			pop.Shard(id)
		}
	}
	if got := pop.Derivations(); got != 10 {
		t.Fatalf("working set within capacity derived %d times, want 10", got)
	}
	for id := 0; id < 1000; id++ {
		pop.Shard(id)
	}
	if got := pop.CacheLen(); got != 10 {
		t.Fatalf("cache holds %d shards after sweep, cap 10", got)
	}
}

func TestSpecValidate(t *testing.T) {
	train := tinyTrain(t)
	bad := []Spec{
		{Kind: "mesh", TotalClients: 10, MeanShard: 4},
		{Kind: Label, TotalClients: 10, MeanShard: 4},              // Beta required
		{Kind: Quantity, TotalClients: 10, MeanShard: 4, Beta: -1}, // Beta > 0
		{Kind: IID, TotalClients: 0, MeanShard: 4},                 // N > 0
		{Kind: IID, TotalClients: 10, MeanShard: 0},                // shard > 0
		{Kind: IID, TotalClients: 10, MeanShard: 4, Cache: -1},     // cache >= 0
	}
	for i, s := range bad {
		if _, err := New(s, train); err == nil {
			t.Errorf("spec %d should fail: %+v", i, s)
		}
	}
}

func TestPlacements(t *testing.T) {
	train := tinyTrain(t)
	const n = 10000
	pop, err := New(Spec{Kind: Quantity, TotalClients: n, Seed: 9, Beta: 0.3, MeanShard: 16}, train)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"first", "scatter", "sybil", "sizecorr"} {
		p, err := PlacementByName(name, n, 0.05, 11, pop)
		if err != nil {
			t.Fatal(err)
		}
		// Total must agree with an exhaustive membership scan, and
		// membership must be stable across queries.
		flags := make([]bool, n)
		count := 0
		for id := 0; id < n; id++ {
			flags[id] = p.IsMalicious(id)
			if flags[id] {
				count++
			}
		}
		if got := p.Total(); got != count {
			t.Errorf("%s: Total %d != scan %d", name, got, count)
		}
		for id := 0; id < n; id += 97 {
			if p.IsMalicious(id) != flags[id] {
				t.Errorf("%s: membership of %d not stable", name, id)
			}
		}
		// Every placement should land near the requested 5% fraction.
		if count < n*3/100 || count > n*8/100 {
			t.Errorf("%s: placed %d attackers of %d, want ≈5%%", name, count, n)
		}
	}
	if _, err := PlacementByName("quantum", n, 0.05, 11, pop); err == nil {
		t.Fatal("unknown placement should error")
	}
	if _, err := PlacementByName("sizecorr", n, 0.05, 11, nil); err == nil {
		t.Fatal("sizecorr without a population should error")
	}
}

// TestSybilBurstContiguous pins the burst block shape.
func TestSybilBurstContiguous(t *testing.T) {
	p := NewSybilBurst(1000, 50, 3)
	if p.K != 50 || p.Start < 0 || p.Start+p.K > 1000 {
		t.Fatalf("burst [%d, %d) outside population", p.Start, p.Start+p.K)
	}
	for id := 0; id < 1000; id++ {
		want := id >= p.Start && id < p.Start+p.K
		if p.IsMalicious(id) != want {
			t.Fatalf("burst membership of %d wrong", id)
		}
	}
}

func TestFloydSampler(t *testing.T) {
	s := FloydSampler{K: 50}
	rng := rand.New(rand.NewSource(1))
	ids := s.Sample(rng, 0, 1000000)
	if len(ids) != 50 {
		t.Fatalf("sampled %d ids, want 50", len(ids))
	}
	seen := map[int]bool{}
	last := -1
	for _, id := range ids {
		if id < 0 || id >= 1000000 {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		if id <= last {
			t.Fatalf("ids not sorted: %v", ids)
		}
		seen[id] = true
		last = id
	}
	// Determinism under a fixed stream.
	again := s.Sample(rand.New(rand.NewSource(1)), 0, 1000000)
	if !equalShards(ids, again) {
		t.Fatal("sampling not deterministic for a fixed seed")
	}
	// K > N clamps to a permutation-like full selection.
	small := s.Sample(rng, 0, 8)
	if len(small) != 8 {
		t.Fatalf("K>N should clamp to N, got %d", len(small))
	}
}
