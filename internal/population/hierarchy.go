package population

import (
	"errors"
	"fmt"

	"repro/internal/fl"
)

// Hierarchical is the production two-tier aggregation topology: G group
// aggregators each apply a robust rule to the updates of their group, and
// the server applies a (possibly different) robust rule to the G group
// aggregates. Every existing defense composes unmodified on either tier
// because both tiers speak fl.Aggregator.
//
// Group aggregates are presented to the server tier as virtual updates
// whose NumSamples is the group's total sample count, so sample-weighted
// server rules (FedAvg) recover exactly the flat weighted mean up to
// floating-point re-association.
//
// DPR accounting composes when it can: if every participating group's rule
// reports selection, the malicious updates that "passed" are those selected
// by their group AND belonging to a group the server tier kept (all groups,
// when the server rule is non-selecting). If any group rule is
// non-selecting, per-update attribution is impossible and the hierarchy
// reports no selection (DPR N/A), matching the paper's treatment of
// statistics-based defenses.
type Hierarchical struct {
	// Groups is G, the number of group aggregators.
	Groups int
	// Group is the per-group robust rule, applied sequentially to each
	// group (a single shared instance; stateful rules observe G calls per
	// round).
	Group fl.Aggregator
	// Server is the top-tier robust rule over the G group aggregates.
	Server fl.Aggregator
	// Assign maps a client ID to its group; nil means id mod Groups. The
	// assignment must be a pure function so a client aggregates under the
	// same group every round.
	Assign func(clientID int) int
}

var _ fl.Aggregator = (*Hierarchical)(nil)

// Name implements fl.Aggregator.
func (h *Hierarchical) Name() string {
	return fmt.Sprintf("hier-%d(%s/%s)", h.Groups, h.Group.Name(), h.Server.Name())
}

// Validate reports configuration errors.
func (h *Hierarchical) Validate() error {
	if h.Groups <= 0 {
		return errors.New("population: hierarchical Groups must be positive")
	}
	if h.Group == nil || h.Server == nil {
		return errors.New("population: hierarchical tiers must both be set")
	}
	return nil
}

// group returns the group index of one client ID.
func (h *Hierarchical) group(clientID int) int {
	g := clientID
	if h.Assign != nil {
		g = h.Assign(clientID)
	}
	g %= h.Groups
	if g < 0 {
		g += h.Groups
	}
	return g
}

// Aggregate implements fl.Aggregator. The returned Selection always
// carries the per-update group attribution (Selection.Groups); Accepted is
// composed as described above. Scores are forwarded when every
// participating group produced a score vector of the same kind, but raw
// per-group scores are NOT comparable across groups (a Krum distance
// depends on its group's geometry), so each group's scores are mapped to
// their within-group average ranks normalized to (0, 1] first — the
// probability-integral transform that makes a single pooled ROC sweep
// (the forensics AUC / TPR@FPR reservoir) well-defined. ScoreName gains a
// "rank:" prefix to mark the transform. One blindness is inherent and
// deliberate: ranks are relative to the group, so colluders that fully
// capture a group rank "benign" within it — faithfully reporting that the
// group-tier score channel cannot see full-group capture (neither can the
// group's defense; that is what the server tier exists for, and the
// confusion-matrix channel, which includes the server tier's group
// filtering, does record those attackers as rejected).
func (h *Hierarchical) Aggregate(global []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	if err := h.Validate(); err != nil {
		return nil, fl.Selection{}, err
	}
	if len(updates) == 0 {
		return nil, fl.Selection{}, errors.New("population: no updates to aggregate")
	}

	// Bucket the round's updates by group, remembering each update's index
	// in the caller's slice for DPR attribution.
	buckets := make([][]fl.Update, h.Groups)
	indices := make([][]int, h.Groups)
	groupsAttr := make([]int, len(updates))
	for i, u := range updates {
		g := h.group(u.ClientID)
		buckets[g] = append(buckets[g], u)
		indices[g] = append(indices[g], i)
		groupsAttr[i] = g
	}

	// Tier 1: one robust aggregate per non-empty group.
	var groupUpdates []fl.Update
	var groupPassed [][]int // global update indices each group let through (nil = unknown)
	selectionKnown := true
	scoresKnown := true
	scoreName := ""
	scores := make([]float64, len(updates))
	for g := 0; g < h.Groups; g++ {
		if len(buckets[g]) == 0 {
			continue
		}
		agg, sel, err := h.Group.Aggregate(global, buckets[g])
		if err != nil {
			return nil, fl.Selection{}, fmt.Errorf("population: group %d: %w", g, err)
		}
		samples := 0
		for _, u := range buckets[g] {
			samples += u.NumSamples
		}
		// Virtual group update: negative IDs keep group aggregates disjoint
		// from any real client ID space.
		groupUpdates = append(groupUpdates, fl.Update{
			ClientID:   -(g + 1),
			Weights:    agg,
			NumSamples: samples,
		})
		if len(sel.Scores) == len(buckets[g]) && sel.ScoreName != "" &&
			(scoreName == "" || scoreName == "rank:"+sel.ScoreName) {
			scoreName = "rank:" + sel.ScoreName
			for i, rank := range fl.ScoreRanks(sel.Scores) {
				scores[indices[g][i]] = rank
			}
		} else {
			scoresKnown = false
		}
		if sel.Accepted == nil {
			selectionKnown = false
			groupPassed = append(groupPassed, nil)
			continue
		}
		passed := make([]int, len(sel.Accepted))
		for i, local := range sel.Accepted {
			if local < 0 || local >= len(buckets[g]) {
				return nil, fl.Selection{}, fmt.Errorf("population: group %d selected out-of-range update %d", g, local)
			}
			passed[i] = indices[g][local]
		}
		groupPassed = append(groupPassed, passed)
	}

	// Tier 2: the server's robust rule over the group aggregates.
	final, serverSel, err := h.Server.Aggregate(global, groupUpdates)
	if err != nil {
		return nil, fl.Selection{}, fmt.Errorf("population: server tier: %w", err)
	}
	out := fl.Selection{Groups: groupsAttr}
	if scoresKnown && scoreName != "" {
		out.Scores = scores
		out.ScoreName = scoreName
	}
	if !selectionKnown {
		return final, out, nil
	}
	keep := make([]bool, len(groupUpdates))
	if serverSel.Accepted == nil {
		for i := range keep {
			keep[i] = true
		}
	} else {
		for _, gi := range serverSel.Accepted {
			if gi < 0 || gi >= len(groupUpdates) {
				return nil, fl.Selection{}, fmt.Errorf("population: server tier selected out-of-range group %d", gi)
			}
			keep[gi] = true
		}
	}
	selected := []int{}
	for gi, passed := range groupPassed {
		if keep[gi] {
			selected = append(selected, passed...)
		}
	}
	// Selection is known (possibly empty, which DPR counts as a round where
	// no update passed, unlike the nil "unknown").
	out.Accepted = selected
	return final, out, nil
}
