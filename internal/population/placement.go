package population

import (
	"fmt"
	"sync"
)

// Placement decides which client IDs the adversary controls. It replaces
// the simulator's static "first K clients are malicious" assignment with
// production-relevant models, and answers membership queries in O(1) with
// no O(N) flag storage — the engine asks per responder, never for the whole
// population.
type Placement interface {
	// Name returns the placement's display name.
	Name() string
	// IsMalicious reports whether client id is adversary-controlled.
	IsMalicious(id int) bool
	// Total returns the total number of adversary-controlled clients.
	Total() int
}

// FirstK is the legacy placement: clients 0..K−1 are malicious. Under
// uniform selection which IDs carry the flag is immaterial, which is why
// the paper's simulator could afford it; the other placements exist because
// samplers and topologies that *do* look at IDs (weighted sampling,
// grouping, burst joins) break that symmetry.
type FirstK struct {
	// K is the number of malicious clients.
	K int
}

// Name implements Placement.
func (p FirstK) Name() string { return fmt.Sprintf("first-%d", p.K) }

// IsMalicious implements Placement.
func (p FirstK) IsMalicious(id int) bool { return id < p.K }

// Total implements Placement.
func (p FirstK) Total() int { return p.K }

// Scattered places attackers by a seeded hash coin per client: client id is
// malicious iff hash(Seed, id) < Frac. This is the production-scale model —
// compromised devices are spread arbitrarily through the ID space — and it
// expresses tiny fractions (0.1%, 0.01%) exactly as well as the paper's
// 20%. The exact count is a property of the draw; Total scans the ID space
// once (O(N) time, O(1) memory) and memoizes.
type Scattered struct {
	// N is the population size.
	N int
	// Frac is the per-client compromise probability.
	Frac float64
	// Seed derives the per-client coins.
	Seed int64

	once  sync.Once
	total int
}

// Name implements Placement.
func (p *Scattered) Name() string { return fmt.Sprintf("scatter-%g", p.Frac) }

// IsMalicious implements Placement.
func (p *Scattered) IsMalicious(id int) bool {
	return hashFloat(p.Seed, uint64(id)) < p.Frac
}

// Total implements Placement.
func (p *Scattered) Total() int {
	p.once.Do(func() {
		for id := 0; id < p.N; id++ {
			if p.IsMalicious(id) {
				p.total++
			}
		}
	})
	return p.total
}

// SybilBurst models a Sybil campaign: K fabricated devices enrolled
// together, occupying one contiguous block of the ID space at a seeded
// offset. Under ID-structured topologies (hierarchical groups, weighted
// samplers) a burst concentrates where scattered compromise dilutes.
type SybilBurst struct {
	// Start is the first malicious ID; the block is [Start, Start+K).
	Start int
	// K is the burst size.
	K int
}

// NewSybilBurst places a K-client burst at a seed-derived offset in a
// population of n clients.
func NewSybilBurst(n, k int, seed int64) SybilBurst {
	if k > n {
		k = n
	}
	span := n - k + 1
	start := 0
	if span > 0 {
		start = int(uint64(mix64(uint64(seed), 0x53)) % uint64(span))
	}
	return SybilBurst{Start: start, K: k}
}

// Name implements Placement.
func (p SybilBurst) Name() string { return fmt.Sprintf("sybil-%d@%d", p.K, p.Start) }

// IsMalicious implements Placement.
func (p SybilBurst) IsMalicious(id int) bool { return id >= p.Start && id < p.Start+p.K }

// Total implements Placement.
func (p SybilBurst) Total() int { return p.K }

// SizeCorrelated compromises data-rich clients preferentially: client id is
// malicious with probability Frac·size(id)/MeanShard (clamped to 1), so the
// expected attacker fraction stays Frac while the attackers' collective
// weight under sample-count-weighted aggregation exceeds it — the strongest
// placement against weighted FedAvg.
type SizeCorrelated struct {
	// Pop supplies per-client shard sizes.
	Pop *Population
	// Frac is the mean per-client compromise probability.
	Frac float64
	// Seed derives the per-client coins.
	Seed int64

	once  sync.Once
	total int
}

// Name implements Placement.
func (p *SizeCorrelated) Name() string { return fmt.Sprintf("sizecorr-%g", p.Frac) }

// IsMalicious implements Placement.
func (p *SizeCorrelated) IsMalicious(id int) bool {
	prob := p.Frac * float64(p.Pop.ShardSize(id)) / float64(p.Pop.MeanShardSize())
	return hashFloat(p.Seed, uint64(id)) < prob
}

// Total implements Placement.
func (p *SizeCorrelated) Total() int {
	p.once.Do(func() {
		for id := 0; id < p.Pop.Len(); id++ {
			if p.IsMalicious(id) {
				p.total++
			}
		}
	})
	return p.total
}

// hashFloat maps (seed, id) to a uniform float64 in [0, 1).
func hashFloat(seed int64, id uint64) float64 {
	return float64(uint64(mix64(uint64(seed), id))>>10) / float64(1<<53)
}

// PlacementByName resolves the placement models the experiment config
// exposes. frac is the attacker fraction; pop is required by "sizecorr" and
// supplies N elsewhere.
func PlacementByName(name string, n int, frac float64, seed int64, pop *Population) (Placement, error) {
	k := int(frac * float64(n))
	switch name {
	case "", "first":
		return FirstK{K: k}, nil
	case "scatter":
		return &Scattered{N: n, Frac: frac, Seed: seed}, nil
	case "sybil":
		return NewSybilBurst(n, k, seed), nil
	case "sizecorr":
		if pop == nil {
			return nil, fmt.Errorf("population: sizecorr placement requires a virtual population")
		}
		return &SizeCorrelated{Pop: pop, Frac: frac, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("population: unknown placement %q (known: first, scatter, sybil, sizecorr)", name)
	}
}
