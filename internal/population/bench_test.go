package population

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/defense"
)

func newBenchRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

// millionRun executes rounds of a 1,000,000-client population-backed
// federation with 50 participants per round and returns the population for
// cache inspection.
func millionRun(tb testing.TB, rounds int) *Population {
	tb.Helper()
	train, test, _, newModel := tinySimParts(tb, 100)
	pop, err := New(Spec{Kind: Label, TotalClients: 1000000, Seed: 2, Beta: 0.5, MeanShard: 32, Cache: 200}, train)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := popCfg(1000000, 50, rounds)
	place, err := PlacementByName("scatter", 1000000, 0.001, 7, pop)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := NewSimulation(cfg, train, test, pop, place, newModel, defense.MultiKrum{F: 2}, attackStub{})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		tb.Fatal(err)
	}
	return pop
}

func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// TestMillionClientHeapBounded is the acceptance regression: a round over
// 10⁶ virtual clients must grow the heap by no more than the
// materialization cache and the worker models — never by anything O(N).
// (An O(N) [][]int shard table or per-client state would add tens to
// hundreds of MB and trip the bound.)
func TestMillionClientHeapBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("million-client round in -short mode")
	}
	before := heapAlloc()
	pop := millionRun(t, 2)
	growth := int64(heapAlloc()) - int64(before)
	const bound = 32 << 20
	if growth > bound {
		t.Fatalf("heap grew %d bytes over a 1M-client run, bound %d", growth, bound)
	}
	if got := pop.CacheLen(); got > 200 {
		t.Fatalf("materialization cache holds %d shards, cap 200", got)
	}
}

// BenchmarkPopulationRound1M measures one full federated round over a
// 1,000,000-client lazy population (50 participants, mKrum, scattered
// 0.1% attackers) including engine selection, shard materialization, local
// training and robust aggregation. The recorded numbers live in
// BENCH_4.json.
func BenchmarkPopulationRound1M(b *testing.B) {
	b.ReportAllocs()
	before := heapAlloc()
	var peak uint64
	for i := 0; i < b.N; i++ {
		millionRun(b, 1)
		if h := heapAlloc(); h > peak {
			peak = h
		}
	}
	if peak > before {
		b.ReportMetric(float64(peak-before), "peak-heap-growth-bytes")
	} else {
		b.ReportMetric(0, "peak-heap-growth-bytes")
	}
}

// BenchmarkPopulationShardDerivation measures raw lazy materialization
// throughput with a cold cache (capacity 1 forces a derivation per call).
func BenchmarkPopulationShardDerivation(b *testing.B) {
	train := tinyTrain(b)
	pop, err := New(Spec{Kind: Label, TotalClients: 1 << 30, Seed: 2, Beta: 0.5, MeanShard: 32, Cache: 1}, train)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop.Shard(i % (1 << 30))
	}
}

// BenchmarkPopulationSampler1M measures K-of-N selection at N = 10⁶
// (Floyd's O(K) algorithm; fl.UniformSampler's Perm would allocate 8 MB
// per call at this N).
func BenchmarkPopulationSampler1M(b *testing.B) {
	s := FloydSampler{K: 50}
	rng := newBenchRNG()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng, 0, 1000000)
	}
}
