package population

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/nn"
)

func tinySimParts(t testing.TB, n int) (*dataset.Dataset, *dataset.Dataset, *Population, func(*rand.Rand) *nn.Network) {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 1)
	pop, err := New(Spec{Kind: Label, TotalClients: n, Seed: 2, Beta: 0.5, MeanShard: 12, Cache: 64}, train)
	if err != nil {
		t.Fatal(err)
	}
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	return train, test, pop, newModel
}

func popCfg(n, perRound, rounds int) fl.Config {
	return fl.Config{
		TotalClients: n,
		PerRound:     perRound,
		Rounds:       rounds,
		LocalEpochs:  1,
		BatchSize:    8,
		LR:           0.05,
		Seed:         1,
		EvalEvery:    1,
		EvalLimit:    40,
	}
}

// TestSimulationDeterministic pins that two identically seeded
// population-backed runs produce identical results (the per-(client, round)
// training streams make results independent of scheduling), and that
// serial and parallel execution agree.
func TestSimulationDeterministic(t *testing.T) {
	run := func(parallel bool) *fl.Result {
		train, test, pop, newModel := tinySimParts(t, 5000)
		cfg := popCfg(5000, 6, 3)
		cfg.Parallel = parallel
		place, err := PlacementByName("scatter", 5000, 0.2, 7, pop)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulation(cfg, train, test, pop, place, newModel, defense.MultiKrum{F: 2}, attackStub{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(false), run(false), run(true)
	for _, other := range []*fl.Result{b, c} {
		if a.MaxAccuracy != other.MaxAccuracy || a.FinalAccuracy != other.FinalAccuracy {
			t.Fatalf("runs diverge: %v/%v vs %v/%v",
				a.MaxAccuracy, a.FinalAccuracy, other.MaxAccuracy, other.FinalAccuracy)
		}
		if a.MaliciousSubmitted != other.MaliciousSubmitted {
			t.Fatalf("attacker accounting diverges: %d vs %d", a.MaliciousSubmitted, other.MaliciousSubmitted)
		}
	}
	if math.IsNaN(a.FinalAccuracy) {
		t.Fatal("final accuracy is NaN")
	}
}

// attackStub crafts constant malicious vectors (cheap, deterministic).
type attackStub struct{}

func (attackStub) Name() string { return "stub" }

func (attackStub) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		v := make([]float64, len(ctx.Global))
		for j := range v {
			v[j] = ctx.Global[j] + 0.5
		}
		out[i] = v
	}
	return out, nil
}

// TestSimulationValidation pins constructor errors.
func TestSimulationValidation(t *testing.T) {
	train, test, pop, newModel := tinySimParts(t, 100)
	cfg := popCfg(100, 5, 2)
	if _, err := NewSimulation(cfg, train, test, nil, nil, newModel, defense.FedAvg{}, nil); err == nil {
		t.Fatal("nil population should fail")
	}
	bad := cfg
	bad.TotalClients = 50
	if _, err := NewSimulation(bad, train, test, pop, nil, newModel, defense.FedAvg{}, nil); err == nil {
		t.Fatal("population size mismatch should fail")
	}
	if _, err := NewSimulation(cfg, train, test, pop, nil, newModel, nil, nil); err == nil {
		t.Fatal("nil aggregator should fail")
	}
	if _, err := NewSimulation(cfg, train, test, pop, nil, newModel, defense.FedAvg{}, attackStub{}); err == nil {
		t.Fatal("attack without placement should fail")
	}
}
