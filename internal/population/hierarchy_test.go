package population

import (
	"math"
	"testing"

	"repro/internal/defense"
	"repro/internal/fl"
)

func mkUpdates(vals ...float64) []fl.Update {
	updates := make([]fl.Update, len(vals))
	for i, v := range vals {
		updates[i] = fl.Update{ClientID: i, Weights: []float64{v, -v}, NumSamples: 10}
	}
	return updates
}

// TestHierarchicalFedAvgMatchesFlat pins the associativity sanity check:
// sample-weighted group means under a sample-weighted server mean equal the
// flat weighted mean, up to floating-point re-association.
func TestHierarchicalFedAvgMatchesFlat(t *testing.T) {
	updates := mkUpdates(1, 2, 3, 4, 5, 6, 7)
	updates[2].NumSamples = 40 // uneven weights exercise the weighting path
	global := []float64{0, 0}

	flat, _, err := defense.FedAvg{}.Aggregate(global, updates)
	if err != nil {
		t.Fatal(err)
	}
	h := &Hierarchical{Groups: 3, Group: defense.FedAvg{}, Server: defense.FedAvg{}}
	hier, sel, err := h.Aggregate(global, updates)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Known() {
		t.Fatalf("FedAvg tiers report no selection, got %v", sel.Accepted)
	}
	if len(sel.Groups) != len(updates) {
		t.Fatalf("group attribution missing: %v", sel.Groups)
	}
	for i := range flat {
		if math.Abs(flat[i]-hier[i]) > 1e-9 {
			t.Fatalf("coordinate %d: hierarchical %v != flat %v", i, hier[i], flat[i])
		}
	}
}

// pickLocal is a stub tier rule that selects and averages the updates at
// fixed local indices, so selection plumbing is observable.
type pickLocal struct{ idx []int }

func (p pickLocal) Name() string { return "pick" }

func (p pickLocal) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	var sel []int
	for _, i := range p.idx {
		if i < len(updates) {
			sel = append(sel, i)
		}
	}
	out := make([]float64, len(updates[0].Weights))
	for _, i := range sel {
		for j, w := range updates[i].Weights {
			out[j] += w / float64(len(sel))
		}
	}
	return out, fl.Selection{Accepted: sel}, nil
}

// blendAll is a stub non-selecting tier rule (mean, selection unknown).
type blendAll struct{}

func (blendAll) Name() string { return "blend" }

func (blendAll) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	out := make([]float64, len(updates[0].Weights))
	for _, u := range updates {
		for j, w := range u.Weights {
			out[j] += w / float64(len(updates))
		}
	}
	return out, fl.Selection{}, nil
}

// TestHierarchicalSelectionMapping pins the DPR attribution contract:
// group-local selections map back to caller indices, filtered by the
// server tier's group selection.
func TestHierarchicalSelectionMapping(t *testing.T) {
	// Groups of 2 under id%2: group 0 holds callers {0,2,4,6}, group 1
	// holds {1,3,5}. Each group keeps its first local update.
	updates := mkUpdates(1, 2, 3, 4, 5, 6, 7)

	// Server non-selecting: every group's pass-through unions.
	h := &Hierarchical{Groups: 2, Group: pickLocal{idx: []int{0}}, Server: blendAll{}}
	_, sel, err := h.Aggregate([]float64{0, 0}, updates)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true}
	if len(sel.Accepted) != 2 || !want[sel.Accepted[0]] || !want[sel.Accepted[1]] {
		t.Fatalf("selection %v, want callers {0, 1}", sel.Accepted)
	}

	// Server selecting group 1 only: group 0's passes are filtered out.
	h = &Hierarchical{Groups: 2, Group: pickLocal{idx: []int{0, 1}}, Server: pickLocal{idx: []int{1}}}
	_, sel, err = h.Aggregate([]float64{0, 0}, updates)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 2 || sel.Accepted[0] != 1 || sel.Accepted[1] != 3 {
		t.Fatalf("selection %v, want callers [1 3] (group 1's first two)", sel.Accepted)
	}

	// Non-selecting group tier: attribution impossible, selection unknown.
	h = &Hierarchical{Groups: 2, Group: blendAll{}, Server: pickLocal{idx: []int{0}}}
	_, sel, err = h.Aggregate([]float64{0, 0}, updates)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Known() {
		t.Fatalf("non-selecting group tier must yield unknown selection, got %v", sel.Accepted)
	}
}

// TestHierarchicalRobustTiers runs real robust rules on both tiers and
// checks a coarse poisoning scenario: a Sybil burst that fully captures one
// group (ids 3, 7, 11 all land in group 3 under id mod 4) poisons that
// group's aggregate, but the server tier's mKrum rejects the outlier group,
// so no malicious update reaches the final selection.
func TestHierarchicalRobustTiers(t *testing.T) {
	var updates []fl.Update
	for i := 0; i < 12; i++ {
		v := 1.0 + 0.01*float64(i)
		if i%4 == 3 { // the captured group's members
			v = 1000
		}
		updates = append(updates, fl.Update{
			ClientID: i, Weights: []float64{v, v}, NumSamples: 10, Malicious: v == 1000,
		})
	}
	h := &Hierarchical{Groups: 4, Group: defense.MultiKrum{F: 1}, Server: defense.MultiKrum{F: 1}}
	out, sel, err := h.Aggregate([]float64{0, 0}, updates)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Known() {
		t.Fatal("mKrum tiers must report selection")
	}
	if sel.ScoreName != "rank:neg-krum-distance" || len(sel.Scores) != len(updates) {
		t.Fatalf("mKrum tiers should forward rank-normalized per-group scores, got %q (%d)", sel.ScoreName, len(sel.Scores))
	}
	for i, s := range sel.Scores {
		if s <= 0 || s > 1 {
			t.Fatalf("score %d = %v outside the (0,1] rank range", i, s)
		}
	}
	// Rank normalization must keep the captured group's colluders
	// comparable to benign updates: within every group the malicious 1000s
	// rank by their group-local geometry only.
	for i, s := range sel.Scores {
		if updates[i].Malicious && s > 0.9 {
			t.Fatalf("colluding update %d ranked near-benign (%v) after normalization", i, s)
		}
	}
	for _, i := range sel.Accepted {
		if updates[i].Malicious {
			t.Fatalf("malicious update %d passed the hierarchy", i)
		}
	}
	if math.Abs(out[0]) > 10 {
		t.Fatalf("aggregate %v dominated by malicious updates", out)
	}
}

// TestHierarchicalValidate pins configuration errors.
func TestHierarchicalValidate(t *testing.T) {
	bad := []*Hierarchical{
		{Groups: 0, Group: blendAll{}, Server: blendAll{}},
		{Groups: 2, Server: blendAll{}},
		{Groups: 2, Group: blendAll{}},
	}
	for i, h := range bad {
		if _, _, err := h.Aggregate([]float64{0}, mkUpdates(1, 2)); err == nil {
			t.Errorf("config %d should fail: %+v", i, h)
		}
	}
}
