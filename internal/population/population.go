// Package population represents an N-client cross-device federation in
// O(active clients) memory instead of O(N). Production federated learning
// (Shejwalkar et al., "Back to the Drawing Board") means millions of
// enrolled devices of which a few dozen participate per round; materializing
// every client's data shard up front — the eager [][]int path of
// dataset.Partition* — costs O(N) memory and setup time and caps the
// population sizes the repository can express.
//
// A Population instead *derives* any client's shard on demand from
// (seed, partition spec, client ID): every client owns an independent
// seeded random stream, so materializing client i is a pure function —
// bit-identical no matter when it happens, in which order clients are
// touched, or how small the materialization cache is (see
// TestLazyMatchesEager). An LRU-bounded cache keeps the shards of recently
// active clients so a round over 1,000,000 virtual clients allocates only
// for its PerRound participants.
//
// On top of the population sit the attacker placement models
// (placement.go), which replace the static "first K clients are malicious"
// assignment with production-relevant alternatives, and the hierarchical
// two-tier aggregation topology (hierarchy.go).
package population

import (
	"container/list"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/dataset"
)

// Kind selects the lazy partition protocol.
type Kind string

const (
	// IID draws every client's shard uniformly from the global sample pool.
	IID Kind = "iid"
	// Label gives every client a Dirichlet(Beta) class-preference vector and
	// draws its shard class-first — the per-client dual of the paper's
	// per-class Dirichlet label skew (Hsu et al.), chosen because it is
	// derivable from the client ID alone.
	Label Kind = "label"
	// Quantity skews shard *sizes* by a per-client Gamma(Beta) draw while
	// sampling content uniformly — the lazy analogue of
	// dataset.PartitionQuantity.
	Quantity Kind = "quantity"
)

// Spec describes a virtual population. The triple (Seed, Spec, client ID)
// fully determines every client's shard.
type Spec struct {
	// Kind selects the partition protocol.
	Kind Kind
	// TotalClients is N, the population size.
	TotalClients int
	// Seed derives every per-client stream.
	Seed int64
	// Beta is the Dirichlet/Gamma concentration of the Label and Quantity
	// kinds; lower means more skew. Ignored by IID.
	Beta float64
	// MeanShard is the expected per-client shard size in samples. Virtual
	// clients draw from the global pool with replacement across clients (a
	// million devices cannot hold disjoint slices of a 6000-sample pool), so
	// MeanShard is a free parameter rather than n/N.
	MeanShard int
	// Cache bounds the LRU materialization cache in shards (0 = 256).
	Cache int
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	switch s.Kind {
	case IID:
	case Label, Quantity:
		if s.Beta <= 0 {
			return fmt.Errorf("population: kind %q requires Beta > 0", s.Kind)
		}
	default:
		return fmt.Errorf("population: unknown kind %q (known: iid, label, quantity)", s.Kind)
	}
	if s.TotalClients <= 0 {
		return errors.New("population: TotalClients must be positive")
	}
	if s.MeanShard <= 0 {
		return errors.New("population: MeanShard must be positive")
	}
	if s.Cache < 0 {
		return errors.New("population: Cache must be non-negative")
	}
	return nil
}

// Population lazily materializes per-client shards over one training
// dataset. Safe for concurrent use; Shard results are shared read-only
// slices that callers must not mutate.
type Population struct {
	spec    Spec
	n       int
	classes int
	// byClass pools sample indices per label for the Label kind; only
	// classes that actually occur are drawn from.
	byClass  [][]int
	nonEmpty []int

	mu    sync.Mutex
	cache map[int]*list.Element
	lru   *list.List
	cap   int
	// derivations counts cache misses (test and diagnostics hook).
	derivations int64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	id    int
	shard []int
}

// New builds a population over the training dataset. Memory is
// O(samples + cache), never O(TotalClients).
func New(spec Spec, train *dataset.Dataset) (*Population, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, errors.New("population: empty training dataset")
	}
	p := &Population{
		spec:    spec,
		n:       train.Len(),
		classes: train.Classes,
		cache:   make(map[int]*list.Element),
		lru:     list.New(),
		cap:     spec.Cache,
	}
	if p.cap == 0 {
		p.cap = 256
	}
	if spec.Kind == Label {
		p.byClass = make([][]int, train.Classes)
		for i, l := range train.Labels {
			p.byClass[l] = append(p.byClass[l], i)
		}
		for c, pool := range p.byClass {
			if len(pool) > 0 {
				p.nonEmpty = append(p.nonEmpty, c)
			}
		}
		if len(p.nonEmpty) == 0 {
			return nil, errors.New("population: dataset has no labelled samples")
		}
	}
	return p, nil
}

// Spec returns the population's immutable spec.
func (p *Population) Spec() Spec { return p.spec }

// Len returns N, the population size.
func (p *Population) Len() int { return p.spec.TotalClients }

// MeanShardSize returns the expected per-client shard size.
func (p *Population) MeanShardSize() int { return p.spec.MeanShard }

// clientRNG returns client id's private derivation stream. Streams are
// decorrelated by a SplitMix64 finalizer over (seed, id, stream), so
// neighbouring IDs share no structure.
func (p *Population) clientRNG(id int, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(mix64(uint64(p.spec.Seed), uint64(id)<<8|stream)))
}

// mix64 is the SplitMix64 finalizer over two mixed words: a cheap,
// high-quality hash from (seed, client) to an RNG seed.
func mix64(a, b uint64) int64 {
	x := a ^ (b+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x >> 1) // rand.NewSource ignores sign; keep it non-negative for readability
}

// Per-client stream tags. Shard derivation and shard-size derivation use
// the same stream (size is the first draw); training randomness (see
// Transport) uses a disjoint tag so adding rounds never perturbs shards.
const (
	streamShard = 0x5
	streamTrain = 0x7
)

// ShardSize returns client id's shard size without materializing the shard:
// O(1) for IID/Label (the size is the spec constant) and one Gamma draw for
// Quantity. The value always equals len(Shard(id)).
func (p *Population) ShardSize(id int) int {
	if p.spec.Kind != Quantity {
		return p.spec.MeanShard
	}
	rng := p.clientRNG(id, streamShard)
	return p.quantitySize(rng)
}

// quantitySize draws the Quantity kind's skewed shard size: a Gamma(Beta)
// variate scaled to mean MeanShard, floored at 1 so no client is empty.
func (p *Population) quantitySize(rng *rand.Rand) int {
	g := dataset.SampleGamma(rng, p.spec.Beta)
	size := int(math.Round(g / p.spec.Beta * float64(p.spec.MeanShard)))
	if size < 1 {
		size = 1
	}
	return size
}

// derive materializes client id's shard from its seeded stream. Pure:
// depends only on (spec, dataset shape, id).
func (p *Population) derive(id int) []int {
	rng := p.clientRNG(id, streamShard)
	switch p.spec.Kind {
	case Quantity:
		size := p.quantitySize(rng)
		shard := make([]int, size)
		for i := range shard {
			shard[i] = rng.Intn(p.n)
		}
		return shard
	case Label:
		props := dataset.SampleDirichlet(rng, len(p.nonEmpty), p.spec.Beta)
		shard := make([]int, p.spec.MeanShard)
		for i := range shard {
			c := p.nonEmpty[drawCategorical(rng, props)]
			pool := p.byClass[c]
			shard[i] = pool[rng.Intn(len(pool))]
		}
		return shard
	default: // IID
		shard := make([]int, p.spec.MeanShard)
		for i := range shard {
			shard[i] = rng.Intn(p.n)
		}
		return shard
	}
}

// drawCategorical samples an index proportionally to props (which sum to 1).
func drawCategorical(rng *rand.Rand, props []float64) int {
	u := rng.Float64()
	cum := 0.0
	for i, p := range props {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(props) - 1
}

// Shard returns client id's sample indices, deriving them on first touch
// and serving repeats from the LRU cache. The returned slice is shared:
// callers must treat it as read-only.
func (p *Population) Shard(id int) []int {
	if id < 0 || id >= p.spec.TotalClients {
		panic(fmt.Sprintf("population: client %d outside [0, %d)", id, p.spec.TotalClients))
	}
	p.mu.Lock()
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		shard := el.Value.(*cacheEntry).shard
		p.mu.Unlock()
		return shard
	}
	p.mu.Unlock()

	// Derive outside the lock: derivation is pure, so two goroutines racing
	// on the same ID produce identical slices and either may win the cache.
	shard := p.derive(id)

	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).shard
	}
	p.derivations++
	p.cache[id] = p.lru.PushFront(&cacheEntry{id: id, shard: shard})
	for p.lru.Len() > p.cap {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.cache, oldest.Value.(*cacheEntry).id)
	}
	return shard
}

// Derivations returns the number of cache misses so far (each one shard
// derivation). With a cache at least as large as the working set, repeated
// rounds over the same clients add none.
func (p *Population) Derivations() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.derivations
}

// CacheLen returns the number of currently materialized shards (≤ the LRU
// capacity, the subsystem's memory-bound invariant).
func (p *Population) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// MaterializeAll eagerly derives every client's shard — the O(N) reference
// the lazy path is tested against, and a convenience for small populations
// that want the legacy [][]int shape (e.g. to hand to fl.NewSimulation).
func (p *Population) MaterializeAll() [][]int {
	shards := make([][]int, p.spec.TotalClients)
	for i := range shards {
		shards[i] = p.derive(i)
	}
	return shards
}
