package population

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FloydSampler selects K of N clients uniformly without replacement in
// O(K) time and memory via Floyd's algorithm. fl.UniformSampler's
// rng.Perm(N) is bit-compatible with the paper's loop but allocates O(N)
// per round — 8 MB per round at N = 10⁶ — so population-backed runs default
// to this sampler instead.
type FloydSampler struct {
	// K is the number of clients selected per round.
	K int
}

var _ fl.ClientSampler = FloydSampler{}

// Name implements fl.ClientSampler.
func (s FloydSampler) Name() string { return fmt.Sprintf("floyd-%d", s.K) }

// Validate reports configuration errors.
func (s FloydSampler) Validate() error {
	if s.K <= 0 {
		return errors.New("population: floyd sampler K must be positive")
	}
	return nil
}

// Sample implements fl.ClientSampler. The result is sorted so downstream
// iteration order is deterministic and cache-friendly.
func (s FloydSampler) Sample(rng *rand.Rand, _, total int) []int {
	k := s.K
	if k > total {
		k = total
	}
	chosen := make(map[int]struct{}, k)
	ids := make([]int, 0, k)
	for j := total - k; j < total; j++ {
		t := rng.Intn(j + 1)
		if _, taken := chosen[t]; taken {
			t = j
		}
		chosen[t] = struct{}{}
		ids = append(ids, t)
	}
	sort.Ints(ids)
	return ids
}

// Simulation runs the federated round engine over a virtual population:
// the lazy analogue of fl.Simulation. Per-round memory is O(PerRound)
// participants plus the population's LRU cache — never O(TotalClients).
//
// cfg.AttackerFrac is ignored; the Placement is the authoritative attacker
// assignment. cfg.Scenario composes as in fl.Simulation, except that a nil
// sampler defaults to FloydSampler rather than the O(N) uniform one.
type Simulation struct {
	cfg      fl.Config
	train    *dataset.Dataset
	test     *dataset.Dataset
	pop      *Population
	place    Placement
	newModel func(rng *rand.Rand) *nn.Network
	agg      fl.Aggregator
	attack   fl.Attack

	global  *nn.Network
	workers []*nn.Network
	eval    *fl.Evaluator
}

// NewSimulation wires a population, placement, model factory, aggregation
// rule and optional attack into the shared round engine. place may be nil
// when attack is nil (a clean run).
func NewSimulation(cfg fl.Config, train, test *dataset.Dataset, pop *Population, place Placement,
	newModel func(rng *rand.Rand) *nn.Network, agg fl.Aggregator, attack fl.Attack) (*Simulation, error) {
	cfg.AttackerFrac = 0 // placement is authoritative; keep fl.Config validation happy
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pop == nil {
		return nil, errors.New("population: simulation requires a population")
	}
	if cfg.TotalClients != pop.Len() {
		return nil, fmt.Errorf("population: config TotalClients %d != population size %d", cfg.TotalClients, pop.Len())
	}
	if agg == nil {
		return nil, errors.New("population: aggregator must not be nil")
	}
	if attack != nil && place == nil {
		return nil, errors.New("population: an attacked run requires a placement")
	}
	s := &Simulation{
		cfg:      cfg,
		train:    train,
		test:     test,
		pop:      pop,
		place:    place,
		newModel: newModel,
		agg:      agg,
		attack:   attack,
	}
	s.global = newModel(rand.New(rand.NewSource(cfg.Seed)))
	s.eval = fl.NewEvaluator(test, cfg.EvalLimit)
	return s, nil
}

// GlobalWeights returns a copy of the current global weight vector.
func (s *Simulation) GlobalWeights() []float64 { return s.global.WeightVector() }

// ensureWorkers grows the bounded training worker pool, mirroring
// fl.Simulation: each worker owns one reused model replica with a scratch
// arena.
func (s *Simulation) ensureWorkers(n int) {
	for len(s.workers) < n {
		m := s.newModel(rand.New(rand.NewSource(s.cfg.Seed)))
		m.SetScratch(tensor.NewPool())
		s.workers = append(s.workers, m)
	}
}

// popTransport exposes lazy-materialized client training as an engine
// Transport.
type popTransport struct{ s *Simulation }

// Collect implements fl.Transport: materialize each selected client's shard
// from the population (LRU-cached) and train it on the worker pool. A
// client's training randomness is a pure function of (seed, id, round), so
// results are independent of materialization and scheduling order — the
// lazy analogue of fl.Simulation's persistent per-client RNGs, which cannot
// exist for a million clients.
func (t popTransport) Collect(round int, ids []int, global, _ []float64) ([]fl.Update, error) {
	return t.s.trainBenign(round, ids, global)
}

// trainClient trains one virtual client on one worker model.
func (s *Simulation) trainClient(round, id int, global []float64, model *nn.Network) (fl.Update, error) {
	shard := s.pop.Shard(id)
	rng := rand.New(rand.NewSource(mix64(uint64(s.cfg.Seed)^uint64(round)*0x9E3779B97F4A7C15, uint64(id)<<8|streamTrain)))
	client := fl.NewBenignClient(id, s.train, shard, nil, s.cfg.LR, s.cfg.LocalEpochs, s.cfg.BatchSize, rng)
	return client.TrainWith(global, model)
}

// trainBenign trains the selected clients on the bounded worker pool,
// mirroring fl.Simulation.trainBenign.
func (s *Simulation) trainBenign(round int, ids []int, global []float64) ([]fl.Update, error) {
	updates := make([]fl.Update, len(ids))
	if len(ids) == 0 {
		return updates, nil
	}
	workers := 1
	if s.cfg.Parallel {
		workers = tensor.Workers()
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	s.ensureWorkers(workers)

	if workers <= 1 {
		model := s.workers[0]
		for i, id := range ids {
			u, err := s.trainClient(round, id, global, model)
			if err != nil {
				return nil, err
			}
			updates[i] = u
		}
		return updates, nil
	}

	errs := make([]error, len(ids))
	var next atomic.Int64
	tensor.FanOut(workers, func(w int) {
		model := s.workers[w]
		for {
			i := int(next.Add(1)) - 1
			if i >= len(ids) {
				return
			}
			updates[i], errs[i] = s.trainClient(round, ids[i], global, model)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return updates, nil
}

// Run executes the configured number of rounds on the shared round engine.
func (s *Simulation) Run() (*fl.Result, error) {
	scenario := s.cfg.Scenario
	if scenario.Sampler == nil {
		scenario.Sampler = FloydSampler{K: s.cfg.PerRound}
	}
	eng := &fl.Engine{
		TotalClients: s.cfg.TotalClients,
		PerRound:     s.cfg.PerRound,
		Rounds:       s.cfg.Rounds,
		EvalEvery:    s.cfg.EvalEvery,
		Seed:         s.cfg.Seed,
		Scenario:     scenario,
		Transport:    popTransport{s},
		Aggregator:   s.agg,
		Attack:       s.attack,
		NewModel:     s.newModel,
		Observer:     s.cfg.Observer,
		Codec:        s.cfg.Codec,
		Telemetry:    s.cfg.Telemetry,
		// Attackers report the population's mean shard size so weighted
		// aggregation cannot trivially expose them.
		AttackSamples: s.pop.MeanShardSize(),
		Evaluate: func(weights []float64) (float64, error) {
			if err := s.global.SetWeightVector(weights); err != nil {
				return 0, err
			}
			return s.eval.Accuracy(s.global, s.cfg.Parallel), nil
		},
	}
	if s.attack != nil {
		eng.IsMalicious = s.place.IsMalicious
		eng.TotalAttackers = s.place.Total()
	}
	res, final, err := eng.Run(s.global.WeightVector())
	if err != nil {
		return nil, err
	}
	if err := s.global.SetWeightVector(final); err != nil {
		return nil, err
	}
	return res, nil
}
