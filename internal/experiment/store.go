package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/forensics"
	"repro/internal/persist"
)

// RunStore persists completed runs across process restarts so an
// interrupted grid resumes where it died instead of recomputing every cell.
// Implementations must be safe for concurrent use by the grid workers.
type RunStore interface {
	// Lookup returns the stored outcome for key, if any.
	Lookup(key string) (*Outcome, bool, error)
	// Record durably stores the outcome under key.
	Record(key string, out *Outcome) error
}

// runKey is the canonical identity of one grid cell: a hash of the
// normalized configuration plus the seed-averaging width, so the same cell
// resolves to the same key across processes while any parameter change
// (including AverageSeeds) yields a fresh one.
func runKey(cfg Config, seeds int) (string, error) {
	c := cfg
	if err := c.Normalize(); err != nil {
		return "", err
	}
	// Forensics is pure observation (it never changes a run's results), so
	// it is stripped from the identity: a forensics-on cell resolves to the
	// same stored run as its forensics-off twin, and legacy journals stay
	// byte-for-byte resolvable. A replayed entry from a forensics-off run
	// simply carries no Detection summary.
	c.Forensics = false
	c.ForensicsRing = 0
	c.ForensicsReservoir = 0
	c.AuditPath, c.ForensicsAddr = "", ""
	if seeds < 1 {
		seeds = 1
	}
	// The identity hash must fail loudly on a non-finite parameter: mapping
	// NaN to null here would silently alias distinct configs onto one key.
	raw, err := json.Marshal(c) //lint:allow nanjson key derivation must error on non-finite params, not alias them
	if err != nil {
		return "", fmt.Errorf("experiment: key: %w", err)
	}
	sum := sha256.Sum256(append(raw, []byte(fmt.Sprintf("|seeds=%d", seeds))...))
	return hex.EncodeToString(sum[:]), nil
}

// baselineKey is the journal identity of a clean baseline. It is derived
// from cleanKey — the fields that actually affect a no-attack run — rather
// than the full config hash, so cells that differ only in attack-side
// parameters (SampleCount, NoReg, …) resolve to the same journaled
// baseline no matter which cell's latch computed it. The "baseline|"
// namespace keeps a clean grid cell's own outcome (which carries filled
// CleanAcc/ASR) from colliding with its raw baseline record.
func baselineKey(clean Config) (string, error) {
	if err := clean.Normalize(); err != nil {
		return "", err
	}
	return "baseline|" + clean.cleanKey(), nil
}

// storedOutcome is the JSON shape of an Outcome in the run store. The
// paper's metrics use NaN for "not applicable" (DPR on non-selecting
// defenses, unevaluated rounds), which encoding/json rejects, so every
// NaN-able float travels as a nullable pointer.
type storedOutcome struct {
	Config        Config             `json:"config"`
	CleanAcc      *float64           `json:"cleanAcc"`
	MaxAcc        *float64           `json:"maxAcc"`
	FinalAcc      *float64           `json:"finalAcc"`
	ASR           *float64           `json:"asr"`
	DPR           *float64           `json:"dpr"`
	AccTimeline   []*float64         `json:"accTimeline,omitempty"`
	SynthesisLoss [][]*float64       `json:"synthesisLoss,omitempty"`
	Trace         []storedRound      `json:"trace,omitempty"`
	Detection     *forensics.Summary `json:"detection,omitempty"`
}

// Detection travels as *forensics.Summary directly: Summary owns its own
// NaN-safe JSON shape (Marshal/UnmarshalJSON), shared with the audit
// journal and the HTTP endpoint, so the store cannot drift from them.

// storedRound is the JSON shape of one fl.RoundStats entry; the accuracy
// travels as a nullable pointer because unevaluated rounds carry NaN.
type storedRound struct {
	Round             int      `json:"round"`
	Accuracy          *float64 `json:"acc"`
	SelectedMalicious int      `json:"selMal"`
	PassedMalicious   int      `json:"passMal"`
	Selected          int      `json:"selected"`
	Dropped           int      `json:"dropped"`
	Straggled         int      `json:"straggled"`
	Responded         int      `json:"responded"`
	Aggregations      int      `json:"aggs"`
}

func encFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func decFloat(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

func encFloats(vs []float64) []*float64 {
	if vs == nil {
		return nil
	}
	out := make([]*float64, len(vs))
	for i, v := range vs {
		out[i] = encFloat(v)
	}
	return out
}

func decFloats(ps []*float64) []float64 {
	if ps == nil {
		return nil
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = decFloat(p)
	}
	return out
}

func encodeOutcome(o *Outcome) storedOutcome {
	s := storedOutcome{
		Config:      o.Config,
		CleanAcc:    encFloat(o.CleanAcc),
		MaxAcc:      encFloat(o.MaxAcc),
		FinalAcc:    encFloat(o.FinalAcc),
		ASR:         encFloat(o.ASR),
		DPR:         encFloat(o.DPR),
		AccTimeline: encFloats(o.AccTimeline),
		Detection:   o.Detection,
	}
	if o.SynthesisLoss != nil {
		s.SynthesisLoss = make([][]*float64, len(o.SynthesisLoss))
		for i, round := range o.SynthesisLoss {
			s.SynthesisLoss[i] = encFloats(round)
		}
	}
	if o.Trace != nil {
		s.Trace = make([]storedRound, len(o.Trace))
		for i, rs := range o.Trace {
			s.Trace[i] = storedRound{
				Round:             rs.Round,
				Accuracy:          encFloat(rs.Accuracy),
				SelectedMalicious: rs.SelectedMalicious,
				PassedMalicious:   rs.PassedMalicious,
				Selected:          rs.Selected,
				Dropped:           rs.Dropped,
				Straggled:         rs.Straggled,
				Responded:         rs.Responded,
				Aggregations:      rs.Aggregations,
			}
		}
	}
	return s
}

func decodeOutcome(s storedOutcome) *Outcome {
	o := &Outcome{
		Config:      s.Config,
		CleanAcc:    decFloat(s.CleanAcc),
		MaxAcc:      decFloat(s.MaxAcc),
		FinalAcc:    decFloat(s.FinalAcc),
		ASR:         decFloat(s.ASR),
		DPR:         decFloat(s.DPR),
		AccTimeline: decFloats(s.AccTimeline),
		Detection:   s.Detection,
	}
	if s.SynthesisLoss != nil {
		o.SynthesisLoss = make([][]float64, len(s.SynthesisLoss))
		for i, round := range s.SynthesisLoss {
			o.SynthesisLoss[i] = decFloats(round)
		}
	}
	if s.Trace != nil {
		o.Trace = make([]fl.RoundStats, len(s.Trace))
		for i, sr := range s.Trace {
			o.Trace[i] = fl.RoundStats{
				Round:             sr.Round,
				Accuracy:          decFloat(sr.Accuracy),
				SelectedMalicious: sr.SelectedMalicious,
				PassedMalicious:   sr.PassedMalicious,
				Selected:          sr.Selected,
				Dropped:           sr.Dropped,
				Straggled:         sr.Straggled,
				Responded:         sr.Responded,
				Aggregations:      sr.Aggregations,
			}
		}
	}
	return o
}

// JournalStore is the persist.Journal-backed RunStore: every completed cell
// becomes one durable JSONL line, and reopening the same path resumes from
// whatever the previous process managed to finish.
type JournalStore struct {
	j *persist.Journal
}

// OpenStore opens (creating if needed) the run store at path.
func OpenStore(path string) (*JournalStore, error) {
	j, err := persist.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	return &JournalStore{j: j}, nil
}

// Lookup returns the journaled outcome for key, if present.
func (s *JournalStore) Lookup(key string) (*Outcome, bool, error) {
	var rec storedOutcome
	ok, err := s.j.Lookup(key, &rec)
	if err != nil || !ok {
		return nil, false, err
	}
	return decodeOutcome(rec), true, nil
}

// Record journals the outcome under key.
func (s *JournalStore) Record(key string, out *Outcome) error {
	return s.j.Append(key, encodeOutcome(out))
}

// Len reports the number of journaled runs.
func (s *JournalStore) Len() int { return s.j.Len() }

// Close releases the underlying journal.
func (s *JournalStore) Close() error { return s.j.Close() }
