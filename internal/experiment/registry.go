package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible unit of the paper's evaluation: a table or
// figure, mapped to the grid of runs that regenerates it.
type Experiment struct {
	// ID is the registry key ("table2", "fig5", …).
	ID string
	// Title names the paper artifact.
	Title string
	// Run executes the experiment under the profile and writes the rows the
	// paper reports.
	Run func(r *Runner, p Profile, w io.Writer) error
}

// All returns the registered experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table II: ASR and max accuracy per dataset/defense/attack (β=0.5, 20% attackers)", Run: runTable2},
		{ID: "fig4", Title: "Fig. 4: Defense pass rate (DPR) on mKrum and Bulyan (β=0.5)", Run: runFig4},
		{ID: "fig5", Title: "Fig. 5: ASR vs data heterogeneity β under Bulyan", Run: runFig5},
		{ID: "fig6", Title: "Fig. 6: ASR vs attacker proportion on mKrum and TRmean (Fashion)", Run: runFig6},
		{ID: "fig7", Title: "Fig. 7: DFA local synthesis loss per epoch (Fashion)", Run: runFig7},
		{ID: "table3", Title: "Table III: static vs trained synthesis (ASR/DPR)", Run: runTable3},
		{ID: "table4", Title: "Table IV: distance-regularization ablation (ASR/DPR, Fashion)", Run: runTable4},
		{ID: "fig8", Title: "Fig. 8: synthetic vs real attacker data (ASR)", Run: runFig8},
		{ID: "fig9", Title: "Fig. 9: REFD vs Bulyan accuracy under DFA across heterogeneity", Run: runFig9},
		{ID: "fig10", Title: "Fig. 10: accuracy of all defenses (incl. REFD) against all attacks (β=0.5)", Run: runFig10},
		{ID: "randomweights", Title: "§III-B: random-weights attack DPR (motivating experiment)", Run: runRandomWeights},
		{ID: "samplesize", Title: "§IV-A: |S| sensitivity of DFA (Fashion, mKrum)", Run: runSampleSize},
		{ID: "sybil", Title: "§III-A extension: DFA vs the FoolsGold Sybil defense, with and without perturbation noise", Run: runSybil},
		{ID: "adaptivealpha", Title: "§V extension: fixed vs adaptive REFD α (the paper's future-work direction)", Run: runAdaptiveAlpha},
		{ID: "textdfa", Title: "§VI extension: DFA on text classification (RNN + embedding-space synthesis)", Run: runTextDFA},
		{ID: "participation", Title: "Production extension: DFA-R vs mKrum under cross-device participation (sampler × churn × server optimizer × sync/async)", Run: runParticipation},
		{ID: "productionscale", Title: "Production extension: attacker dilution at cross-device scale (100k-client lazy population, attacker fraction × topology × attack, mKrum)", Run: runProductionScale},
		{ID: "detection", Title: "Forensics extension: detection quality (AUC, TPR@1%FPR) of every defense across attacks and attacker fractions on a 100k-client population", Run: runDetection},
		{ID: "compression", Title: "Transport extension: update compression (fp16/int8/top-k+EF) × attack × defense — does compressed-domain robust aggregation keep its detection quality?", Run: runCompression},
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Canonical component lists of the evaluation section.
var (
	paperDatasets = []string{"fashion-sim", "cifar-sim", "svhn-sim"}
	paperDefenses = []string{"mkrum", "bulyan", "trmean", "median"}
	paperAttacks  = []string{"fang", "lie", "minmax", "dfa-r", "dfa-g"}
)

func fmtPct(v float64) string {
	if math.IsNaN(v) {
		return "N/A"
	}
	return fmt.Sprintf("%.2f", v)
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

func runTable2(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, ds := range paperDatasets {
		for _, def := range paperDefenses {
			for _, atk := range paperAttacks {
				cfgs = append(cfgs, p.Base(ds, atk, def, 0.5))
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tdefense\tattack\tclean_acc%\tacc_m%\tASR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.2f\t%s\n",
			o.Config.Dataset, o.Config.Defense, o.Config.Attack,
			o.CleanAcc*100, o.MaxAcc*100, fmtPct(o.ASR))
	}
	return tw.Flush()
}

func runFig4(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, ds := range paperDatasets {
		for _, def := range []string{"mkrum", "bulyan"} {
			for _, atk := range paperAttacks {
				cfgs = append(cfgs, p.Base(ds, atk, def, 0.5))
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tdefense\tattack\tDPR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			o.Config.Dataset, o.Config.Defense, o.Config.Attack, fmtPct(o.DPR))
	}
	return tw.Flush()
}

func runFig5(r *Runner, p Profile, w io.Writer) error {
	betas := []float64{0.1, 0.5, 0.9}
	var cfgs []Config
	for _, ds := range []string{"fashion-sim", "cifar-sim"} {
		for _, beta := range betas {
			for _, atk := range paperAttacks {
				cfgs = append(cfgs, p.Base(ds, atk, "bulyan", beta))
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tattack\tbeta\tASR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%s\n",
			o.Config.Dataset, o.Config.Attack, o.Config.Beta, fmtPct(o.ASR))
	}
	return tw.Flush()
}

func runFig6(r *Runner, p Profile, w io.Writer) error {
	fracs := []float64{0.1, 0.2, 0.3}
	var cfgs []Config
	for _, def := range []string{"mkrum", "trmean"} {
		for _, frac := range fracs {
			for _, atk := range paperAttacks {
				cfg := p.Base("fashion-sim", atk, def, 0.5)
				cfg.AttackerFrac = frac
				cfgs = append(cfgs, cfg)
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "defense\tattack\tattacker%\tASR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%s\n",
			o.Config.Defense, o.Config.Attack, o.Config.AttackerFrac*100, fmtPct(o.ASR))
	}
	return tw.Flush()
}

func runFig7(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, atk := range []string{"dfa-r", "dfa-g"} {
		for _, def := range paperDefenses {
			cfgs = append(cfgs, p.Base("fashion-sim", atk, def, 0.5))
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "attack\tdefense\tepoch\tmean_synthesis_loss")
	for _, o := range outs {
		if len(o.SynthesisLoss) == 0 {
			continue
		}
		epochs := len(o.SynthesisLoss[0])
		for e := 0; e < epochs; e++ {
			sum, n := 0.0, 0
			for _, round := range o.SynthesisLoss {
				if e < len(round) {
					sum += round[e]
					n++
				}
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.4f\n", o.Config.Attack, o.Config.Defense, e+1, sum/float64(n))
		}
	}
	return tw.Flush()
}

func runTable3(r *Runner, p Profile, w io.Writer) error {
	attacks := []string{"dfa-r", "dfa-r-static", "dfa-g", "dfa-g-static"}
	var cfgs []Config
	for _, ds := range []string{"fashion-sim", "cifar-sim"} {
		for _, atk := range attacks {
			for _, def := range paperDefenses {
				cfgs = append(cfgs, p.Base(ds, atk, def, 0.5))
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tattack\tvariant\tdefense\tASR%\tDPR%")
	for _, o := range outs {
		variant := "trained"
		name := o.Config.Attack
		if len(name) > 7 && name[len(name)-7:] == "-static" {
			variant = "static"
			name = name[:len(name)-7]
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			o.Config.Dataset, name, variant, o.Config.Defense, fmtPct(o.ASR), fmtPct(o.DPR))
	}
	return tw.Flush()
}

func runTable4(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, atk := range []string{"dfa-r", "dfa-g"} {
		for _, noReg := range []bool{false, true} {
			for _, def := range paperDefenses {
				cfg := p.Base("fashion-sim", atk, def, 0.5)
				cfg.NoReg = noReg
				cfgs = append(cfgs, cfg)
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "attack\tregularization\tdefense\tASR%\tDPR%")
	for _, o := range outs {
		reg := "with"
		if o.Config.NoReg {
			reg = "without"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			o.Config.Attack, reg, o.Config.Defense, fmtPct(o.ASR), fmtPct(o.DPR))
	}
	return tw.Flush()
}

func runFig8(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, ds := range []string{"fashion-sim", "cifar-sim"} {
		for _, atk := range []string{"dfa-r", "dfa-g", "real-data"} {
			for _, def := range paperDefenses {
				cfgs = append(cfgs, p.Base(ds, atk, def, 0.5))
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tattack\tdefense\tASR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			o.Config.Dataset, o.Config.Attack, o.Config.Defense, fmtPct(o.ASR))
	}
	return tw.Flush()
}

func runFig9(r *Runner, p Profile, w io.Writer) error {
	// Beta 0 encodes the i.i.d. setting.
	betas := []float64{0, 0.9, 0.5, 0.1}
	var cfgs []Config
	for _, ds := range []string{"fashion-sim", "cifar-sim"} {
		for _, atk := range []string{"dfa-r", "dfa-g"} {
			for _, def := range []string{"bulyan", "refd"} {
				for _, beta := range betas {
					cfgs = append(cfgs, p.Base(ds, atk, def, beta))
				}
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tattack\tdefense\theterogeneity\tacc_m%\tclean_acc%")
	for _, o := range outs {
		het := fmt.Sprintf("beta=%.1f", o.Config.Beta)
		if o.Config.Beta == 0 {
			het = "iid"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2f\t%.2f\n",
			o.Config.Dataset, o.Config.Attack, o.Config.Defense, het, o.MaxAcc*100, o.CleanAcc*100)
	}
	return tw.Flush()
}

func runFig10(r *Runner, p Profile, w io.Writer) error {
	defenses := append(append([]string{}, paperDefenses...), "refd")
	var cfgs []Config
	for _, ds := range []string{"fashion-sim", "cifar-sim"} {
		for _, atk := range paperAttacks {
			for _, def := range defenses {
				cfgs = append(cfgs, p.Base(ds, atk, def, 0.5))
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tattack\tdefense\tacc_m%\tclean_acc%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.2f\n",
			o.Config.Dataset, o.Config.Attack, o.Config.Defense, o.MaxAcc*100, o.CleanAcc*100)
	}
	return tw.Flush()
}

func runRandomWeights(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, ds := range []string{"fashion-sim", "cifar-sim"} {
		for _, def := range []string{"mkrum", "bulyan"} {
			cfgs = append(cfgs, p.Base(ds, "random", def, 0.5))
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "dataset\tdefense\tDPR%\tASR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			o.Config.Dataset, o.Config.Defense, fmtPct(o.DPR), fmtPct(o.ASR))
	}
	return tw.Flush()
}

// runSybil reproduces the Section III-A claim that Sybil defenses such as
// FoolsGold are easily circumvented by adding small perturbation noise to
// the attackers' otherwise identical updates.
func runSybil(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, atk := range []string{"dfa-r", "dfa-g"} {
		for _, perturb := range []float64{0, 1e-3} {
			cfg := p.Base("fashion-sim", atk, "foolsgold", 0.5)
			cfg.PerturbStd = perturb
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "attack\tperturbation\tASR%\tDPR%")
	for _, o := range outs {
		mode := "identical updates"
		if o.Config.PerturbStd > 0 {
			mode = fmt.Sprintf("noise std %g", o.Config.PerturbStd)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			o.Config.Attack, mode, fmtPct(o.ASR), fmtPct(o.DPR))
	}
	return tw.Flush()
}

// runAdaptiveAlpha compares REFD with its fixed α = 1 against the adaptive-α
// variant the paper names as future work, across the attack spectrum.
func runAdaptiveAlpha(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	attacks := []string{"lie", "minmax", "dfa-r", "dfa-g"}
	for _, atk := range attacks {
		for _, def := range []string{"refd", "refd-adaptive"} {
			cfgs = append(cfgs, p.Base("fashion-sim", atk, def, 0.5))
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "attack\tdefense\tacc_m%\tASR%\tDPR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%s\n",
			o.Config.Attack, o.Config.Defense, o.MaxAcc*100, fmtPct(o.ASR), fmtPct(o.DPR))
	}
	return tw.Flush()
}

// participationScenarios are the named production-participation cells the
// engine exposes; each mutates the paper's base fashion/DFA-R/mKrum cell.
var participationScenarios = []struct {
	Name string
	Mut  func(*Config)
}{
	{"sync-uniform", func(*Config) {}},
	{"bernoulli", func(c *Config) { c.Sampler = "bernoulli" }},
	{"bernoulli-churn", func(c *Config) {
		c.Sampler = "bernoulli"
		c.DropoutProb = 0.2
		c.StragglerProb = 0.1
	}},
	{"churn-fedavgm", func(c *Config) {
		c.DropoutProb = 0.2
		c.StragglerProb = 0.1
		c.ServerOpt = "fedavgm"
	}},
	{"async-b5", func(c *Config) { c.AsyncBuffer = 5; c.AsyncMaxDelay = 2 }},
	{"weighted-quantity", func(c *Config) {
		c.Sampler = "weighted"
		c.Partition = "quantity"
	}},
}

func runParticipation(r *Runner, p Profile, w io.Writer) error {
	var cfgs []Config
	for _, sc := range participationScenarios {
		cfg := p.Base("fashion-sim", "dfa-r", "mkrum", 0.5)
		sc.Mut(&cfg)
		cfgs = append(cfgs, cfg)
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "scenario\tclean_acc%\tacc_m%\tASR%\tDPR%\tmean_responded")
	for i, o := range outs {
		responded, rounds := 0, 0
		for _, rs := range o.Trace {
			responded += rs.Responded
			rounds++
		}
		mean := 0.0
		if rounds > 0 {
			mean = float64(responded) / float64(rounds)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\t%s\t%.1f\n",
			participationScenarios[i].Name, o.CleanAcc*100, o.MaxAcc*100,
			fmtPct(o.ASR), fmtPct(o.DPR), mean)
	}
	return tw.Flush()
}

// productionScaleTopologies are the aggregation topologies of the
// productionscale sweep: the paper's flat server and a 5-group hierarchical
// tier (each group runs mKrum over ~10 updates, the server runs mKrum over
// the 5 group aggregates).
var productionScaleTopologies = []struct {
	Name   string
	Groups int
}{
	{"flat", 0},
	{"hier-5", 5},
}

// runProductionScale sweeps attacker fraction × topology × attack over a
// 100,000-client virtual population with scattered attacker placement —
// the Shejwalkar et al. production regime (tiny per-round samples, attacker
// fractions down to 0.01%) the paper's 100-client/20% setup cannot express.
// Shards are materialized lazily, so the sweep's memory stays O(PerRound).
func runProductionScale(r *Runner, p Profile, w io.Writer) error {
	fracs := []float64{0.2, 0.01, 0.001, 0.0001}
	attacks := []string{"dfa-r", "minmax", "labelflip"}
	var cfgs []Config
	for _, frac := range fracs {
		for _, topo := range productionScaleTopologies {
			for _, atk := range attacks {
				cfg := p.Base("fashion-sim", atk, "mkrum", 0.5)
				cfg.TotalClients = 100000
				cfg.PerRound = 50
				cfg.AttackerFrac = frac
				cfg.Population = "virtual"
				cfg.Placement = "scatter"
				cfg.Groups = topo.Groups
				cfgs = append(cfgs, cfg)
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "attacker%\ttopology\tattack\tclean_acc%\tacc_m%\tASR%\tDPR%\tsel_malicious")
	for _, o := range outs {
		selMal := 0
		for _, rs := range o.Trace {
			selMal += rs.SelectedMalicious
		}
		topo := "flat"
		if o.Config.Groups > 0 {
			topo = fmt.Sprintf("hier-%d", o.Config.Groups)
		}
		fmt.Fprintf(tw, "%g\t%s\t%s\t%.2f\t%.2f\t%s\t%s\t%d\n",
			o.Config.AttackerFrac*100, topo, o.Config.Attack,
			o.CleanAcc*100, o.MaxAcc*100, fmtPct(o.ASR), fmtPct(o.DPR), selMal)
	}
	return tw.Flush()
}

// runDetection is the forensics scoreboard sweep: every score-producing or
// selection-reporting defense against the strongest data-free and
// data-holding attacks, from the paper's 20% attacker regime down to the
// 0.1% production regime on a 100,000-client lazy population with
// scattered placement. Endpoint metrics (DPR) stay in the table so the
// Shejwalkar-style detection view (AUC, TPR@1%FPR, TPR/FPR) can be read
// against them: a defense can look strong on DPR while filtering half its
// benign clients, and only the FPR column shows it.
func runDetection(r *Runner, p Profile, w io.Writer) error {
	fracs := []float64{0.2, 0.01, 0.001}
	attacks := []string{"dfa-r", "minmax", "labelflip"}
	defenses := []string{"refd", "mkrum", "foolsgold", "bulyan"}
	var cfgs []Config
	for _, frac := range fracs {
		for _, def := range defenses {
			for _, atk := range attacks {
				cfg := p.Base("fashion-sim", atk, def, 0.5)
				cfg.TotalClients = 100000
				cfg.PerRound = 50
				cfg.AttackerFrac = frac
				cfg.Population = "virtual"
				cfg.Placement = "scatter"
				cfg.Forensics = true
				cfgs = append(cfgs, cfg)
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "attacker%%\tdefense\tattack\tAUC\tTPR@1%%FPR\tTPR%%\tFPR%%\tDPR%%\tzero_sel\n")
	for _, o := range outs {
		auc, tprAt, tpr, fpr := math.NaN(), math.NaN(), math.NaN(), math.NaN()
		zeroSel := 0
		if d := o.Detection; d != nil {
			auc, tprAt = d.AUC, d.TPRAt1FPR
			tpr, fpr = d.TPR*100, d.FPR*100
			zeroSel = d.ZeroSelectionRounds
		}
		fmt.Fprintf(tw, "%g\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\n",
			o.Config.AttackerFrac*100, o.Config.Defense, o.Config.Attack,
			fmtPct(auc), fmtPct(tprAt), fmtPct(tpr), fmtPct(fpr), fmtPct(o.DPR), zeroSel)
	}
	return tw.Flush()
}

// compressionCodecs are the wire configurations of the compression sweep:
// the uncompressed control, half-precision deltas, dense stochastic int8,
// and the aggressive production point — int8 with 10% top-k sparsification
// and error feedback.
var compressionCodecs = []struct {
	Name string
	Mut  func(*Config)
}{
	{"off", func(*Config) {}},
	{"fp16", func(c *Config) { c.Codec = "fp16" }},
	{"int8", func(c *Config) { c.Codec = "int8" }},
	{"int8-top10-ef", func(c *Config) {
		c.Codec = "int8"
		c.TopK = 0.1
		c.ErrorFeedback = true
	}},
}

// runCompression sweeps codec × attack × defense with forensics enabled:
// the question is whether lossy update compression degrades the server's
// ability to tell attackers from benign clients (AUC, TPR@1%FPR) or shifts
// the endpoint metrics (ASR, DPR) — the robust rules aggregate from
// codec reconstructions, with their pairwise geometry computed in the
// compressed domain where the round's frames allow it.
func runCompression(r *Runner, p Profile, w io.Writer) error {
	attacks := []string{"dfa-r", "minmax", "labelflip"}
	defenses := []string{"refd", "mkrum", "foolsgold"}
	var cfgs []Config
	for _, cdc := range compressionCodecs {
		for _, def := range defenses {
			for _, atk := range attacks {
				cfg := p.Base("fashion-sim", atk, def, 0.5)
				cfg.Forensics = true
				cdc.Mut(&cfg)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "codec\tdefense\tattack\tAUC\tTPR@1%%FPR\tASR%%\tDPR%%\tacc_m%%\n")
	for i, o := range outs {
		auc, tprAt := math.NaN(), math.NaN()
		if d := o.Detection; d != nil {
			auc, tprAt = d.AUC, d.TPRAt1FPR
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.2f\n",
			compressionCodecs[i/(len(attacks)*len(defenses))].Name,
			o.Config.Defense, o.Config.Attack,
			fmtPct(auc), fmtPct(tprAt), fmtPct(o.ASR), fmtPct(o.DPR), o.MaxAcc*100)
	}
	return tw.Flush()
}

func runSampleSize(r *Runner, p Profile, w io.Writer) error {
	sizes := []int{20, 50, 100}
	var cfgs []Config
	for _, atk := range []string{"dfa-r", "dfa-g"} {
		for _, s := range sizes {
			cfg := p.Base("fashion-sim", atk, "mkrum", 0.5)
			cfg.SampleCount = s
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := r.RunGrid(cfgs, p.Workers)
	if err != nil {
		return err
	}
	sort.SliceStable(outs, func(i, j int) bool {
		if outs[i].Config.Attack != outs[j].Config.Attack {
			return outs[i].Config.Attack < outs[j].Config.Attack
		}
		return outs[i].Config.SampleCount < outs[j].Config.SampleCount
	})
	tw := newTab(w)
	fmt.Fprintln(tw, "attack\t|S|\tASR%\tDPR%")
	for _, o := range outs {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n",
			o.Config.Attack, o.Config.SampleCount, fmtPct(o.ASR), fmtPct(o.DPR))
	}
	return tw.Flush()
}
