package experiment

// Profile scales the paper's experiments to a compute budget. The paper's
// absolute settings (20+ rounds on a GPU with |S| = 50) are reachable with
// the Full profile; Quick keeps every structural parameter (100 clients, 10
// per round, 20% attackers, Dirichlet heterogeneity) but shrinks the
// per-round synthesis work and the evaluation subset so the whole benchmark
// suite runs in minutes on a laptop.
type Profile struct {
	// Name labels the profile in outputs.
	Name string
	// Rounds is the number of federated rounds per run.
	Rounds int
	// EvalLimit caps test samples per evaluation.
	EvalLimit int
	// SampleCount is |S| for the DFA family.
	SampleCount int
	// SeedCount averages runs over this many seeds (paper: 3).
	SeedCount int
	// Workers bounds grid concurrency (0 = GOMAXPROCS).
	Workers int
}

// QuickProfile is the default: paper-shaped results in minutes.
func QuickProfile() Profile {
	return Profile{
		Name:        "quick",
		Rounds:      12,
		EvalLimit:   320,
		SampleCount: 20,
		SeedCount:   1,
	}
}

// FullProfile mirrors the paper's settings (3-seed averages, |S| = 50).
func FullProfile() Profile {
	return Profile{
		Name:        "full",
		Rounds:      25,
		EvalLimit:   0, // full test set
		SampleCount: 50,
		SeedCount:   3,
	}
}

// ProfileByName resolves "quick" or "full".
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "", "quick":
		return QuickProfile(), true
	case "full":
		return FullProfile(), true
	default:
		return Profile{}, false
	}
}

// Base returns a Config for the given cell with the profile's scaling
// applied. Beta <= 0 selects i.i.d. partitioning.
func (p Profile) Base(ds, atk, def string, beta float64) Config {
	return Config{
		Dataset:     ds,
		Attack:      atk,
		Defense:     def,
		Beta:        beta,
		Seed:        1,
		Rounds:      p.Rounds,
		EvalLimit:   p.EvalLimit,
		SampleCount: p.SampleCount,
		Parallel:    true,
	}
}
