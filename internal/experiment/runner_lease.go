package experiment

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/persist"
)

// Multi-process grid draining. With a LeaseStore, RunGrid becomes one worker
// of a fleet: every cell is leased before execution, results recorded by any
// process are adopted as they appear, and leases whose epoch stalls across
// enough local polls are reclaimed from crashed workers. The store is the
// only coordination channel — workers never talk to each other, and no wall
// clock crosses a process boundary.

func (r *Runner) leasePoll() time.Duration {
	if r.LeasePoll > 0 {
		return r.LeasePoll
	}
	return 500 * time.Millisecond
}

func (r *Runner) leaseExpirePolls() int {
	if r.LeaseExpirePolls > 0 {
		return r.LeaseExpirePolls
	}
	return 5
}

func (r *Runner) leaseRenewEvery() time.Duration {
	if r.LeaseRenewEvery > 0 {
		return r.LeaseRenewEvery
	}
	return time.Second
}

// leaseObserver accumulates one claimer's liveness evidence about one
// foreign lease. Polls are timed locally: an observation only counts when at
// least minGap has passed since the previous one of the same epoch, so a
// tight retry loop cannot fabricate staleness.
type leaseObserver struct {
	epoch uint64
	seen  bool
	polls int
	last  time.Time
}

func (o *leaseObserver) observe(l persist.Lease, minGap time.Duration) {
	now := time.Now()
	if !o.seen || l.Epoch != o.epoch {
		// Fresh epoch: the holder is alive (or new); restart the count.
		o.epoch, o.polls, o.seen, o.last = l.Epoch, 0, true, now
		return
	}
	if now.Sub(o.last) >= minGap {
		o.polls++
		o.last = now
	}
}

// stealEpoch returns the epoch this observer has proven stale (safe to hand
// to TryClaim), or 0 while the evidence is insufficient.
func (o *leaseObserver) stealEpoch(expirePolls int) uint64 {
	if o.seen && o.polls >= expirePolls {
		return o.epoch
	}
	return 0
}

// renewLoop heartbeats a held lease until stop is called. Losing the lease
// (another worker judged us dead) quietly ends the loop: the computation
// continues, and the duplicate-free Record makes the double compute benign.
func (r *Runner) renewLoop(ls LeaseStore, key string) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(r.leaseRenewEvery())
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := ls.Renew(key); err != nil {
					return
				}
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// computeBaselineLeased resolves a clean baseline across the fleet: exactly
// one worker computes it while the others poll for its record — the
// cross-process analogue of the in-process singleflight latch.
func (r *Runner) computeBaselineLeased(ls LeaseStore, key string, clean Config) (float64, error) {
	var obs leaseObserver
	for {
		if err := ls.Refresh(); err != nil {
			return 0, fmt.Errorf("experiment: clean baseline store: %w", err)
		}
		if out, ok, err := ls.Lookup(key); err != nil {
			return 0, fmt.Errorf("experiment: clean baseline store: %w", err)
		} else if ok {
			return out.MaxAcc, nil
		}
		steal := obs.stealEpoch(r.leaseExpirePolls())
		lease, err := ls.TryClaim(key, steal)
		if err == nil {
			r.Telemetry.Claim(steal > 0)
			// The claim transaction replayed the journal tail, so the local
			// view is now current: if the previous holder recorded the result
			// and released between our lookup and our claim, adopt it instead
			// of recomputing.
			if out, ok, lerr := ls.Lookup(key); lerr != nil {
				_ = ls.Release(key)
				return 0, fmt.Errorf("experiment: clean baseline store: %w", lerr)
			} else if ok {
				if rerr := ls.Release(key); rerr != nil {
					return 0, fmt.Errorf("experiment: clean baseline store: %w", rerr)
				}
				return out.MaxAcc, nil
			}
			stop := r.renewLoop(ls, key)
			out, rerr := r.runFn(clean)
			stop()
			if rerr != nil {
				_ = ls.Release(key)
				return 0, fmt.Errorf("experiment: clean baseline: %w", rerr)
			}
			if werr := ls.Record(key, out); werr != nil {
				_ = ls.Release(key)
				return 0, fmt.Errorf("experiment: clean baseline store: %w", werr)
			}
			if err := ls.Release(key); err != nil {
				return 0, fmt.Errorf("experiment: clean baseline store: %w", err)
			}
			return out.MaxAcc, nil
		}
		if !errors.Is(err, persist.ErrLeaseHeld) {
			return 0, fmt.Errorf("experiment: clean baseline lease: %w", err)
		}
		r.Telemetry.Conflict()
		obs.observe(lease, r.leasePoll())
		time.Sleep(r.leasePoll())
	}
}

// leaseScheduler hands grid cells to local workers: it adopts results other
// processes record, claims free cells, and reclaims cells whose holder's
// epoch has provably stalled.
type leaseScheduler struct {
	mu      sync.Mutex
	r       *Runner
	ls      LeaseStore
	keys    []string
	pending []int
	obs     map[string]*leaseObserver
	err     error
}

// next blocks until it can hand the caller a claimed cell index. ok=false
// means the local grid is drained (every cell claimed locally, adopted
// remotely, or the scheduler failed — see err).
func (s *leaseScheduler) next(prog *progressTracker, outcomes []*Outcome) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || len(s.pending) == 0 {
			return 0, false
		}
		if err := s.ls.Refresh(); err != nil {
			s.err = fmt.Errorf("experiment: shared store refresh: %w", err)
			return 0, false
		}
		// Adopt cells other workers finished since the last scan.
		kept := s.pending[:0]
		for _, i := range s.pending {
			out, ok, err := s.ls.Lookup(s.keys[i])
			if err != nil {
				s.err = fmt.Errorf("experiment: shared store: %w", err)
				return 0, false
			}
			if ok {
				outcomes[i] = out
				s.r.Telemetry.Adopt()
				prog.report(out.Config, out, nil, false, true)
				continue
			}
			kept = append(kept, i)
		}
		s.pending = kept
		// Claim the first available cell; observe the holders of the rest.
		adopted := false
		for n, i := range s.pending {
			ob := s.obs[s.keys[i]]
			if ob == nil {
				ob = &leaseObserver{}
				s.obs[s.keys[i]] = ob
			}
			steal := ob.stealEpoch(s.r.leaseExpirePolls())
			lease, err := s.ls.TryClaim(s.keys[i], steal)
			if err == nil {
				// The claim replayed the tail; if the result landed between
				// our scan and our claim, adopt it rather than recompute.
				if out, ok, lerr := s.ls.Lookup(s.keys[i]); lerr != nil {
					_ = s.ls.Release(s.keys[i])
					s.err = fmt.Errorf("experiment: shared store: %w", lerr)
					return 0, false
				} else if ok {
					_ = s.ls.Release(s.keys[i])
					outcomes[i] = out
					s.r.Telemetry.Adopt()
					prog.report(out.Config, out, nil, false, true)
					s.pending = append(s.pending[:n], s.pending[n+1:]...)
					adopted = true
					break // pending mutated; rescan from the top
				}
				s.r.Telemetry.Claim(steal > 0)
				s.pending = append(s.pending[:n], s.pending[n+1:]...)
				return i, true
			}
			if !errors.Is(err, persist.ErrLeaseHeld) {
				s.err = fmt.Errorf("experiment: lease claim: %w", err)
				return 0, false
			}
			s.r.Telemetry.Conflict()
			ob.observe(lease, s.r.leasePoll())
		}
		if len(s.pending) == 0 {
			return 0, false
		}
		if adopted {
			continue // rescan immediately; more cells may be claimable
		}
		// Every remaining cell is leased by another process: wait for its
		// result to appear or its lease to stale out, then rescan.
		s.mu.Unlock()
		time.Sleep(s.r.leasePoll())
		s.mu.Lock()
	}
}

// runGridLeased drains the grid as one worker of a fleet sharing ls. A
// lease-capable store always resumes: recorded cells are the fleet's shared
// ground truth, regardless of r.Resume.
func (r *Runner) runGridLeased(ls LeaseStore, cfgs []Config, keys []string, workers int) ([]*Outcome, error) {
	outcomes := make([]*Outcome, len(cfgs))
	errs := make([]error, len(cfgs))

	if err := ls.Refresh(); err != nil {
		return nil, fmt.Errorf("experiment: shared store refresh: %w", err)
	}
	var pending []int
	for i := range cfgs {
		out, ok, err := ls.Lookup(keys[i])
		if err != nil {
			return nil, fmt.Errorf("experiment: grid cell %d: store: %w", i, err)
		}
		if ok {
			outcomes[i] = out
			continue
		}
		pending = append(pending, i)
	}
	prog := newProgressTracker(r.Progress, len(cfgs), r.Telemetry)
	for i := range cfgs {
		if outcomes[i] != nil {
			prog.report(outcomes[i].Config, outcomes[i], nil, true, false)
		}
	}

	if workers > len(pending) {
		workers = len(pending)
	}
	sched := &leaseScheduler{r: r, ls: ls, keys: keys, pending: pending, obs: make(map[string]*leaseObserver)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := sched.next(prog, outcomes)
				if !ok {
					return
				}
				stop := r.renewLoop(ls, keys[i])
				sp := r.Telemetry.Cell(cellName(cfgs[i]))
				out, err := r.Run(cfgs[i])
				sp.End()
				if err == nil {
					if rerr := ls.Record(keys[i], out); rerr != nil {
						err = fmt.Errorf("store: %w", rerr)
					}
				}
				stop()
				_ = ls.Release(keys[i])
				outcomes[i], errs[i] = out, err
				if err != nil {
					c := cfgs[i]
					_ = c.Normalize() // validated before scheduling
					prog.report(c, nil, err, false, false)
					continue
				}
				prog.report(out.Config, out, nil, false, false)
			}
		}()
	}
	wg.Wait()
	if sched.err != nil {
		return nil, sched.err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: grid cell %d (%s/%s/%s): %w",
				i, cfgs[i].Dataset, cfgs[i].Attack, cfgs[i].Defense, err)
		}
	}
	return outcomes, nil
}
