package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/persist"
)

// countJournalLines counts raw journal lines recorded under key — the
// duplicate detector (the in-memory map last-wins view would hide them).
func countJournalLines(t *testing.T, path, key string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var jl struct {
			Key string `json:"key"`
		}
		if json.Unmarshal(line, &jl) == nil && jl.Key == key {
			n++
		}
	}
	return n
}

// fastLease tunes a Runner's lease knobs for test speed: stalls are
// detected in tens of milliseconds instead of seconds.
func fastLease(r *Runner) {
	r.LeasePoll = 10 * time.Millisecond
	r.LeaseExpirePolls = 3
	r.LeaseRenewEvery = 5 * time.Millisecond
}

// TestWorkersDrainSharedGrid: two worker "processes" (independent Runners
// over independently opened SharedStores on one path) drain one grid
// concurrently. Every cell and the shared baseline must execute exactly once
// fleet-wide, both workers must return the complete grid, and each worker's
// progress events must account for every cell as locally executed, remotely
// completed, or replayed.
func TestWorkersDrainSharedGrid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	cfgs := []Config{
		tinyCfg("lie", "mkrum"),
		tinyCfg("fang", "median"),
		tinyCfg("minmax", "trmean"),
		tinyCfg("random", "fedavg"),
		tinyCfg("signflip", "mkrum"),
		tinyCfg("minsum", "median"),
	}

	var mu sync.Mutex
	executions := make(map[string]int) // attack name (or "none") -> fleet-wide count
	slowFake := func(cfg Config) (*Outcome, error) {
		mu.Lock()
		executions[cfg.Attack]++
		mu.Unlock()
		time.Sleep(20 * time.Millisecond) // force the workers to interleave
		return fakeRun(cfg)
	}

	type result struct {
		outs   []*Outcome
		events []ProgressEvent
		err    error
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		store, err := OpenSharedStore(path, []string{"alice", "bob"}[w])
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		r := NewRunner()
		r.Store = store
		r.runFn = slowFake
		fastLease(r)
		var events []ProgressEvent
		var emu sync.Mutex
		r.Progress = func(ev ProgressEvent) {
			emu.Lock()
			events = append(events, ev)
			emu.Unlock()
		}
		wg.Add(1)
		go func(w int, r *Runner, events *[]ProgressEvent) {
			defer wg.Done()
			outs, err := r.RunGrid(cfgs, 2)
			results[w] = result{outs: outs, events: *events, err: err}
		}(w, r, &events)
	}
	wg.Wait()

	for w, res := range results {
		if res.err != nil {
			t.Fatalf("worker %d: %v", w, res.err)
		}
		if len(res.outs) != len(cfgs) {
			t.Fatalf("worker %d returned %d outcomes, want %d", w, len(res.outs), len(cfgs))
		}
		for i, o := range res.outs {
			if o == nil {
				t.Fatalf("worker %d missing outcome %d", w, i)
			}
			if o.Config.Attack != cfgs[i].Attack {
				t.Fatalf("worker %d outcome %d out of order: %s", w, i, o.Config.Attack)
			}
			if math.IsNaN(o.CleanAcc) || math.IsNaN(o.ASR) {
				t.Fatalf("worker %d outcome %d missing baseline metrics", w, i)
			}
		}
		if len(res.events) != len(cfgs) {
			t.Fatalf("worker %d saw %d progress events, want %d", w, len(res.events), len(cfgs))
		}
		local, remote := 0, 0
		for _, ev := range res.events {
			switch {
			case ev.Remote:
				remote++
			case !ev.Skipped:
				local++
			}
		}
		if local+remote != len(cfgs) {
			t.Fatalf("worker %d events: %d local + %d remote != %d cells", w, local, remote, len(cfgs))
		}
		if local == 0 {
			t.Fatalf("worker %d executed nothing — the grid was not shared", w)
		}
	}
	// Fleet-wide exactly-once: each attacked cell once, plus one baseline.
	for _, cfg := range cfgs {
		if executions[cfg.Attack] != 1 {
			t.Fatalf("cell %s executed %d times fleet-wide, want 1 (all: %v)",
				cfg.Attack, executions[cfg.Attack], executions)
		}
	}
	if executions["none"] != 1 {
		t.Fatalf("clean baseline executed %d times fleet-wide, want 1", executions["none"])
	}
	// The two workers' views of the grid must agree bit-for-bit.
	for i := range cfgs {
		a, b := results[0].outs[i], results[1].outs[i]
		if a.MaxAcc != b.MaxAcc || a.ASR != b.ASR || a.CleanAcc != b.CleanAcc {
			t.Fatalf("cell %d diverges between workers: %+v vs %+v", i, a, b)
		}
	}
}

// TestLeasedGridReclaimsStalledLease: a cell leased by a vanished owner
// (claimed, never renewed, never released) must be reclaimed by a live
// worker once its epoch stalls across enough polls.
func TestLeasedGridReclaimsStalledLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	cfgs := []Config{tinyCfg("lie", "mkrum")}
	key, err := runKey(cfgs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	// The "crashed worker": claims the cell through its own handle and is
	// never heard from again.
	dead, err := persist.OpenShared(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dead.TryClaim(key, "dead-worker", 0); err != nil {
		t.Fatal(err)
	}
	dead.Close()

	store, err := OpenSharedStore(path, "live-worker")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := NewRunner()
	r.Store = store
	r.runFn = fakeRun
	fastLease(r)
	start := time.Now()
	outs, err := r.RunGrid(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] == nil || outs[0].Config.Attack != "lie" {
		t.Fatalf("reclaimed cell outcome: %+v", outs[0])
	}
	// Reclaim requires LeaseExpirePolls observations spaced LeasePoll apart.
	if min := time.Duration(r.LeaseExpirePolls) * r.LeasePoll; time.Since(start) < min {
		t.Fatalf("grid finished in %v — lease stolen without %v of staleness evidence", time.Since(start), min)
	}
}

// TestLeasedGridDoesNotStealLiveLease: while the holder keeps renewing, a
// second worker must wait for its result rather than reclaim, even far past
// the poll budget.
func TestLeasedGridDoesNotStealLiveLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	cfgs := []Config{tinyCfg("lie", "mkrum")}
	key, err := runKey(cfgs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	holder, err := OpenSharedStore(path, "holder")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if _, err := holder.TryClaim(key, 0); err != nil {
		t.Fatal(err)
	}
	// Heartbeat from the holder while the other worker polls.
	stopRenew := make(chan struct{})
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopRenew:
				return
			case <-t.C:
				_ = holder.Renew(key)
			}
		}
	}()

	store, err := OpenSharedStore(path, "waiter")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := NewRunner()
	r.Store = store
	executed := false
	r.runFn = func(cfg Config) (*Outcome, error) {
		if cfg.Attack == "lie" {
			executed = true
		}
		return fakeRun(cfg)
	}
	fastLease(r)

	// After 10× the staleness budget, the holder records the result itself;
	// the waiter must adopt it, not have recomputed it.
	go func() {
		time.Sleep(10 * time.Duration(r.LeaseExpirePolls) * r.LeasePoll)
		out, _ := fakeRun(cfgs[0].normalized(t))
		if err := holder.Record(key, out); err != nil {
			t.Error(err)
		}
		close(stopRenew)
		_ = holder.Release(key)
	}()
	outs, err := r.RunGrid(cfgs, 1)
	<-renewDone
	if err != nil {
		t.Fatal(err)
	}
	if executed {
		t.Fatal("waiter recomputed a cell whose holder was demonstrably alive")
	}
	if outs[0] == nil || outs[0].Config.Attack != "lie" {
		t.Fatalf("adopted outcome: %+v", outs[0])
	}
}

// normalized returns a normalized copy for test fixtures.
func (c Config) normalized(t *testing.T) Config {
	t.Helper()
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSharedStoreRecordDuplicateFree: concurrent Records under one key land
// exactly one journal line — the guarantee that makes lease stealing benign.
func TestSharedStoreRecordDuplicateFree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	out, err := fakeRun(tinyCfg("lie", "mkrum").normalized(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := OpenSharedStore(path, "w")
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			if err := s.Record("cell", out); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if n := countJournalLines(t, path, "cell"); n != 1 {
		t.Fatalf("key recorded %d times, want exactly 1", n)
	}
}
