package experiment

// Dashboard wiring tests: the observation-only contract (bit-identical
// DPR/ASR and run-store keys with the dashboard on or off, even while the
// endpoints are being hammered), config validation, and the replay loader's
// source sniffing over both journal kinds.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestDashboardRunKeyInvariant pins the store contract: the dashboard is
// pure observation, so a dashboard-on cell must hash to the same run key as
// its dashboard-off twin, and the canonical config JSON must not leak the
// new fields.
func TestDashboardRunKeyInvariant(t *testing.T) {
	off := tinyCfg("lie", "mkrum")
	on := tinyCfg("lie", "mkrum")
	on.Dash = true
	on.DashReplay = ""
	on.OpsAddr = "127.0.0.1:0"
	on.OnOpsBound = func(string) {}
	kOff, err := runKey(off, 1)
	if err != nil {
		t.Fatal(err)
	}
	kOn, err := runKey(on, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kOff != kOn {
		t.Fatalf("dashboard changed the run key: %s vs %s", kOff, kOn)
	}
	legacy := tinyCfg("lie", "mkrum")
	if err := legacy.Normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Dash", "DashReplay", "OnOpsBound"} {
		if strings.Contains(string(raw), field) {
			t.Errorf("canonical config JSON leaks dashboard field %s: %s", field, raw)
		}
	}
}

func TestDashboardConfigValidation(t *testing.T) {
	cfg := tinyCfg("lie", "mkrum")
	cfg.DashReplay = "x.jsonl"
	if err := cfg.Normalize(); err == nil {
		t.Fatal("DashReplay without Dash should fail validation")
	}
	cfg = tinyCfg("lie", "mkrum")
	cfg.Dash = true
	if err := cfg.Normalize(); err == nil {
		t.Fatal("Dash without OpsAddr should fail validation")
	}
	cfg = tinyCfg("lie", "mkrum")
	cfg.Dash = true
	cfg.OpsAddr = "127.0.0.1:0"
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Telemetry || !cfg.Forensics {
		t.Fatal("Dash should imply Telemetry and Forensics")
	}
}

// TestDashboardOnOffBitIdentical is the acceptance test's purity half, with
// the hammer attached: while the dashboard-on run executes, goroutines
// pound the dashboard page, the forensics JSON, the incremental poll, the
// JSON metrics snapshot and the SSE stream — and the outcome must still be
// bit-identical to the dashboard-off twin.
func TestDashboardOnOffBitIdentical(t *testing.T) {
	on := tinyCfg("minmax", "mkrum")
	on.Dash = true
	on.OpsAddr = "127.0.0.1:0"
	var addr string
	ready := make(chan struct{})
	on.OnOpsBound = func(a string) { addr = a; close(ready) } // write happens-before close

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ready
		paths := []string{
			"/dash/", "/dash/api/config", "/metrics.json",
			"/forensics/metrics", "/forensics/rounds", "/forensics/rounds?since=0",
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + paths[i%len(paths)])
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Add(1)
	go func() { // SSE churn
		defer wg.Done()
		<-ready
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + "/forensics/stream")
			if err == nil {
				io.CopyN(io.Discard, resp.Body, 128)
				resp.Body.Close()
			}
		}
	}()

	a, err := Run(on)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	off := tinyCfg("minmax", "mkrum")
	b, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-level comparison: NaN (ASR is NaN for untargeted cells) must
	// match NaN, and any real drift must fail.
	same := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if !same(a.MaxAcc, b.MaxAcc) || !same(a.FinalAcc, b.FinalAcc) || !same(a.DPR, b.DPR) || !same(a.ASR, b.ASR) {
		t.Fatalf("dashboard changed results: acc %v/%v vs %v/%v, DPR %v vs %v, ASR %v vs %v",
			a.MaxAcc, a.FinalAcc, b.MaxAcc, b.FinalAcc, a.DPR, b.DPR, a.ASR, b.ASR)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("trace lengths differ")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("round %d trace differs: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestDashboardServesDuringRun verifies the mounted surfaces actually
// answer during a live run: the embedded page, its config endpoint, and the
// replay API when DashReplay names a journal.
func TestDashboardServesDuringRun(t *testing.T) {
	// First produce an audit journal to replay.
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	seedCfg := tinyCfg("lie", "mkrum")
	seedCfg.AuditPath = auditPath
	if _, err := Run(seedCfg); err != nil {
		t.Fatal(err)
	}

	cfg := tinyCfg("lie", "mkrum")
	cfg.Dash = true
	cfg.OpsAddr = "127.0.0.1:0"
	cfg.DashReplay = auditPath

	// OnOpsBound runs synchronously once the listener serves and before the
	// simulation starts, so fetching from inside it is guaranteed to hit a
	// live endpoint (the run itself can finish in milliseconds).
	type fetch struct {
		page, config, runs string
		err                error
	}
	var f fetch
	cfg.OnOpsBound = func(addr string) {
		read := func(path string) string {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				f.err = err
				return ""
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				f.err = fmt.Errorf("%s: status %d", path, resp.StatusCode)
				return ""
			}
			b, _ := io.ReadAll(resp.Body)
			return string(b)
		}
		f.page = read("/dash/")
		f.config = read("/dash/api/config")
		f.runs = read("/dash/api/replay/runs")
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if f.err != nil {
		t.Fatal(f.err)
	}
	if !strings.Contains(f.page, "app.js") {
		t.Fatalf("/dash/ does not serve the embedded page:\n%.200s", f.page)
	}
	var dc struct {
		Federations []string `json:"federations"`
		Live        bool     `json:"live"`
		Replay      bool     `json:"replay"`
		Fleet       bool     `json:"fleet"`
	}
	if err := json.Unmarshal([]byte(f.config), &dc); err != nil {
		t.Fatalf("config: %v\n%s", err, f.config)
	}
	if !dc.Live || !dc.Replay || !dc.Fleet || len(dc.Federations) != 1 || dc.Federations[0] != "/forensics" {
		t.Fatalf("dashboard config = %+v", dc)
	}
	var runs []struct {
		Name   string `json:"name"`
		Rounds int    `json:"rounds"`
	}
	if err := json.Unmarshal([]byte(f.runs), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Rounds != seedCfg.Rounds {
		t.Fatalf("replay runs = %+v, want 1 run with %d rounds", runs, seedCfg.Rounds)
	}
}

// TestLoadDashReplaySniffsSources: one spec mixing a run store and an audit
// journal loads both, each through the right decoder.
func TestLoadDashReplaySniffsSources(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	storePath := filepath.Join(dir, "store.jsonl")

	cfg := tinyCfg("minmax", "mkrum")
	cfg.AuditPath = auditPath
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	key, err := runKey(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Record(key, out); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	runs, err := LoadDashReplay(storePath + " , " + auditPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("loaded %d runs, want 2", len(runs))
	}
	storeRun, auditRun := runs[0], runs[1]
	if storeRun.Source != "run-store" || auditRun.Source != "audit-journal" {
		t.Fatalf("source sniffing = %q/%q", storeRun.Source, auditRun.Source)
	}
	if !strings.HasPrefix(storeRun.Name, "tiny-sim/minmax/mkrum") {
		t.Fatalf("store run name %q", storeRun.Name)
	}
	if len(storeRun.Rounds) != cfg.Rounds || len(auditRun.Rounds) != cfg.Rounds {
		t.Fatalf("round counts %d/%d, want %d each", len(storeRun.Rounds), len(auditRun.Rounds), cfg.Rounds)
	}
	// The store-side replay reconstructs only what the trace honestly
	// knows: TP + FN must equal the selected-malicious count, FP/TN stay
	// zero (FPR null), and accuracy comes from the stored timeline.
	for i, rr := range storeRun.Rounds {
		rs := out.Trace[i]
		m := rr.Audit.Metrics
		if rs.PassedMalicious >= 0 {
			if m.TP+m.FN != rs.SelectedMalicious || m.FN != rs.PassedMalicious {
				t.Fatalf("round %d confusion %+v vs trace %+v", i, m.Confusion, rs)
			}
			if !m.Known {
				t.Fatalf("round %d should be Known", i)
			}
		} else if m.Known {
			t.Fatalf("round %d claims a decision the trace never recorded", i)
		}
		if m.FP != 0 || m.TN != 0 {
			t.Fatalf("round %d fabricated FP/TN: %+v", i, m.Confusion)
		}
		if !math.IsNaN(m.FPR()) {
			t.Fatalf("round %d FPR = %v, want NaN (no benign-rejection data in the trace)", i, m.FPR())
		}
		if rr.Accuracy != out.AccTimeline[i] {
			t.Fatalf("round %d accuracy %v, want timeline %v", i, rr.Accuracy, out.AccTimeline[i])
		}
	}
	// Audit-journal rounds carry full records; store rounds carry none.
	if len(auditRun.Rounds[0].Audit.Records) == 0 {
		t.Fatal("audit replay lost its per-update records")
	}
	if len(storeRun.Rounds[0].Audit.Records) != 0 {
		t.Fatal("store replay fabricated per-update records")
	}

	if runs, err := LoadDashReplay(""); err != nil || len(runs) != 0 {
		t.Fatalf("empty spec = %d runs, err %v", len(runs), err)
	}
	if _, err := LoadDashReplay(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing journal should error")
	}
}
