package experiment

import (
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// fakeRun is a deterministic, config-dependent stand-in for the real
// training pipeline: scheduling tests observe what the grid executes
// without paying for federated rounds.
func fakeRun(cfg Config) (*Outcome, error) {
	h := float64(len(cfg.Attack)*7+len(cfg.Defense)*3) / 100
	return &Outcome{
		Config:      cfg,
		CleanAcc:    math.NaN(),
		MaxAcc:      0.4 + h/10,
		FinalAcc:    0.3 + h/10,
		ASR:         math.NaN(),
		DPR:         math.NaN(),
		AccTimeline: []float64{0.1 + h, 0.2 + h, 0.3 + h},
	}, nil
}

// TestRunGridBaselineSingleflight: a grid of cells sharing one clean key
// must compute the baseline exactly once even when every worker needs it
// concurrently — the singleflight latch replaces the old serial prewarm.
func TestRunGridBaselineSingleflight(t *testing.T) {
	r := NewRunner()
	var cleanRuns, attackRuns atomic.Int64
	r.runFn = func(cfg Config) (*Outcome, error) {
		time.Sleep(5 * time.Millisecond) // force the workers to overlap
		if cfg.Attack == "none" {
			cleanRuns.Add(1)
		} else {
			attackRuns.Add(1)
		}
		return fakeRun(cfg)
	}
	attacks := []string{"lie", "fang", "minmax", "minsum", "random", "signflip"}
	var cfgs []Config
	for _, atk := range attacks {
		cfgs = append(cfgs, tinyCfg(atk, "mkrum"))
	}
	outs, err := r.RunGrid(cfgs, len(cfgs))
	if err != nil {
		t.Fatal(err)
	}
	if got := cleanRuns.Load(); got != 1 {
		t.Fatalf("clean baseline executed %d times under concurrency, want exactly 1", got)
	}
	if got := attackRuns.Load(); got != int64(len(attacks)) {
		t.Fatalf("executed %d attacked cells, want %d", got, len(attacks))
	}
	for i, o := range outs {
		if o.Config.Attack != attacks[i] {
			t.Fatalf("outcome %d out of order: %s", i, o.Config.Attack)
		}
		if math.IsNaN(o.CleanAcc) || math.IsNaN(o.ASR) {
			t.Fatalf("outcome %d missing baseline-derived metrics", i)
		}
	}
}

// TestRunGridStoreResume: a grid re-run against a store holding half the
// cells must execute only the missing half (and no baselines, which are
// journaled too) while returning identical outcomes in input order.
func TestRunGridStoreResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfgs := []Config{
		tinyCfg("lie", "mkrum"),
		tinyCfg("fang", "median"),
		tinyCfg("minmax", "trmean"),
		tinyCfg("random", "fedavg"),
	}

	store1, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner()
	r1.Store = store1
	r1.runFn = fakeRun
	firstHalf, err := r1.RunGrid(cfgs[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	// 2 grid cells + 1 shared clean baseline journaled by the first run.
	if store2.Len() != 3 {
		t.Fatalf("store has %d entries after half the grid, want 3", store2.Len())
	}
	r2 := NewRunner()
	r2.Store = store2
	r2.Resume = true
	var executed atomic.Int64
	r2.runFn = func(cfg Config) (*Outcome, error) {
		executed.Add(1)
		if cfg.Attack == "none" {
			t.Errorf("clean baseline re-executed on resume; should replay from store")
		}
		return fakeRun(cfg)
	}
	outs, err := r2.RunGrid(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 2 {
		t.Fatalf("resume executed %d cells, want only the 2 missing ones", got)
	}
	if len(outs) != len(cfgs) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(cfgs))
	}
	for i, o := range outs {
		if o.Config.Attack != cfgs[i].Attack || o.Config.Defense != cfgs[i].Defense {
			t.Fatalf("outcome %d out of order: %s/%s", i, o.Config.Attack, o.Config.Defense)
		}
	}
	// The replayed cells must match the first run bit-for-bit, including
	// the NaN DPR and the per-round timeline.
	for i := range firstHalf {
		a, b := firstHalf[i], outs[i]
		if a.MaxAcc != b.MaxAcc || a.FinalAcc != b.FinalAcc || a.CleanAcc != b.CleanAcc || a.ASR != b.ASR {
			t.Fatalf("cell %d metrics diverge after replay: %+v vs %+v", i, a, b)
		}
		if !math.IsNaN(b.DPR) {
			t.Fatalf("cell %d NaN DPR lost in the journal roundtrip: %v", i, b.DPR)
		}
		if len(a.AccTimeline) != len(b.AccTimeline) {
			t.Fatalf("cell %d timeline length diverges", i)
		}
		for j := range a.AccTimeline {
			if a.AccTimeline[j] != b.AccTimeline[j] {
				t.Fatalf("cell %d timeline diverges at round %d", i, j)
			}
		}
	}
}

// TestRunGridFullyResumedGrid: with every cell journaled, a re-run
// executes nothing at all.
func TestRunGridFullyResumedGrid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfgs := []Config{tinyCfg("lie", "mkrum"), tinyCfg("fang", "median")}

	store1, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner()
	r1.Store = store1
	r1.runFn = fakeRun
	if _, err := r1.RunGrid(cfgs, 2); err != nil {
		t.Fatal(err)
	}
	store1.Close()

	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2 := NewRunner()
	r2.Store = store2
	r2.Resume = true
	r2.runFn = func(cfg Config) (*Outcome, error) {
		t.Errorf("fully journaled grid executed %s/%s", cfg.Attack, cfg.Defense)
		return fakeRun(cfg)
	}
	outs, err := r2.RunGrid(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0] == nil || outs[1] == nil {
		t.Fatalf("resumed grid returned %v", outs)
	}
}

// TestRunGridProgressEvents: every cell (executed or replayed) produces one
// serialized progress event with monotonically increasing Done.
func TestRunGridProgressEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfgs := []Config{
		tinyCfg("lie", "mkrum"),
		tinyCfg("fang", "median"),
		tinyCfg("minmax", "trmean"),
	}
	store1, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner()
	r1.Store = store1
	r1.runFn = fakeRun
	if _, err := r1.RunGrid(cfgs[:1], 1); err != nil {
		t.Fatal(err)
	}
	store1.Close()

	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2 := NewRunner()
	r2.Store = store2
	r2.Resume = true
	r2.runFn = fakeRun
	var events []ProgressEvent
	r2.Progress = func(ev ProgressEvent) { events = append(events, ev) }
	if _, err := r2.RunGrid(cfgs, 2); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(cfgs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(cfgs))
	}
	skipped := 0
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(cfgs) {
			t.Fatalf("event %d: done %d/%d", i, ev.Done, ev.Total)
		}
		if ev.Outcome == nil {
			t.Fatalf("event %d missing outcome", i)
		}
		if ev.Config.Attack == "" || ev.Config.Dataset == "" {
			t.Fatalf("event %d missing cell identity: %+v", i, ev.Config)
		}
		if ev.Skipped {
			skipped++
		}
	}
	if skipped != 1 {
		t.Fatalf("%d events marked skipped, want 1 (the journaled cell)", skipped)
	}
}

// TestRunnerSeedAveragingTimeline: AverageSeeds must average the per-round
// accuracy timeline element-wise, not keep only the first seed's trace.
func TestRunnerSeedAveragingTimeline(t *testing.T) {
	r := NewRunner()
	r.AverageSeeds = 2
	base := tinyCfg("lie", "mkrum")
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	r.runFn = func(cfg Config) (*Outcome, error) {
		// Seed 0 contributes a flat 0.2 timeline, seed 1 a flat 0.4.
		v := 0.2
		var loss [][]float64
		if cfg.Seed != base.Seed {
			v = 0.4
			loss = [][]float64{{9, 9}}
		} else {
			loss = [][]float64{{1, 2}}
		}
		return &Outcome{
			Config:        cfg,
			MaxAcc:        v,
			FinalAcc:      v,
			DPR:           math.NaN(),
			AccTimeline:   []float64{v, v, v},
			SynthesisLoss: loss,
		}, nil
	}
	out, err := r.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.AccTimeline) != 3 {
		t.Fatalf("timeline length %d", len(out.AccTimeline))
	}
	for i, acc := range out.AccTimeline {
		if math.Abs(acc-0.3) > 1e-12 {
			t.Fatalf("timeline[%d] = %v, want element-wise mean 0.3", i, acc)
		}
	}
	if len(out.SynthesisLoss) != 1 || out.SynthesisLoss[0][0] != 1 {
		t.Fatalf("SynthesisLoss should be the first seed's trace, got %v", out.SynthesisLoss)
	}
}

// TestRunKey: the canonical cell identity must be stable across equivalent
// configs and distinct across any meaningful parameter change.
func TestRunKey(t *testing.T) {
	a := tinyCfg("lie", "mkrum")
	b := a
	ka, err := runKey(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := runKey(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("identical configs must share a key")
	}
	// Normalization canonicalizes before hashing: an alias and its
	// canonical name are the same cell.
	alias := a
	alias.Dataset = "tiny"
	if kalias, _ := runKey(alias, 1); kalias != ka {
		t.Fatal("dataset alias must normalize to the same key")
	}
	c := a
	c.Beta = 0.9
	if kc, _ := runKey(c, 1); kc == ka {
		t.Fatal("different beta must change the key")
	}
	if k2, _ := runKey(a, 2); k2 == ka {
		t.Fatal("different seed-averaging width must change the key")
	}
}

// TestStoreRoundTrip: the journal-backed store survives a reopen and
// preserves NaN metrics via nullable encoding.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fakeRun(tinyCfg("lie", "mkrum"))
	if err != nil {
		t.Fatal(err)
	}
	out.SynthesisLoss = [][]float64{{1.5, 2.5}, {0.5}}
	if err := store.Record("cell-a", out); err != nil {
		t.Fatal(err)
	}
	store.Close()

	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok, err := re.Lookup("cell-a")
	if err != nil || !ok {
		t.Fatalf("lookup after reopen: ok=%v err=%v", ok, err)
	}
	if got.MaxAcc != out.MaxAcc || !math.IsNaN(got.DPR) || !math.IsNaN(got.CleanAcc) {
		t.Fatalf("metrics lost in roundtrip: %+v", got)
	}
	if len(got.SynthesisLoss) != 2 || got.SynthesisLoss[0][1] != 2.5 || got.SynthesisLoss[1][0] != 0.5 {
		t.Fatalf("synthesis loss lost in roundtrip: %v", got.SynthesisLoss)
	}
	if _, ok, _ := re.Lookup("cell-missing"); ok {
		t.Fatal("missing key should not resolve")
	}
}

// TestRunGridRealPipelineWithStore exercises the store path against the
// actual training pipeline (tiny task) end to end: run, reopen, replay.
func TestRunGridRealPipelineWithStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfgs := []Config{tinyCfg("lie", "mkrum")}

	store1, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner()
	r1.Store = store1
	first, err := r1.RunGrid(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	store1.Close()

	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2 := NewRunner()
	r2.Store = store2
	r2.Resume = true
	r2.runFn = func(cfg Config) (*Outcome, error) {
		t.Errorf("journaled real run re-executed: %s/%s", cfg.Attack, cfg.Defense)
		return Run(cfg)
	}
	replayed, err := r2.RunGrid(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if replayed[0].MaxAcc != first[0].MaxAcc || replayed[0].ASR != first[0].ASR {
		t.Fatalf("replayed outcome diverges: %+v vs %+v", replayed[0], first[0])
	}
}
