//go:build crashreclaim

package experiment

import (
	"bufio"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// Crash-tolerant reclaim, end to end across real processes: a worker
// process claims a grid cell and is SIGKILLed mid-cell; a second worker
// must observe the stalled lease, reclaim it, execute the real pipeline,
// and leave exactly one result record whose outcome is bit-identical to a
// direct (storeless) run. Build-tagged because the subprocess re-exec makes
// it unsuitable for every `go test ./...` sweep; CI runs it with
// -tags crashreclaim.

const crashHelperEnv = "EXPERIMENT_CRASH_RECLAIM_HELPER"

// TestCrashReclaimHelper is the worker that "crashes": executed only in the
// re-exec'd subprocess, it claims the target cell, announces the claim on
// stdout, then hangs (never renewing) until the parent kills it.
func TestCrashReclaimHelper(t *testing.T) {
	path := os.Getenv(crashHelperEnv)
	if path == "" {
		t.Skip("helper: run only as a subprocess")
	}
	cfg := tinyCfg("lie", "mkrum")
	key, err := runKey(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenSharedStore(path, "doomed-worker")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.TryClaim(key, 0); err != nil {
		t.Fatal(err)
	}
	os.Stdout.WriteString("CLAIMED\n")
	os.Stdout.Sync()
	select {} // hold the lease without renewing until SIGKILL
}

func TestCrashedWorkerLeaseReclaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	cfg := tinyCfg("lie", "mkrum")
	key, err := runKey(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Spawn the doomed worker: the same test binary re-exec'd into the
	// helper above.
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashReclaimHelper$", "-test.v")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+path)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	claimed := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "CLAIMED" {
				claimed <- true
				return
			}
		}
		claimed <- false
	}()
	select {
	case ok := <-claimed:
		if !ok {
			_ = cmd.Process.Kill()
			t.Fatal("helper exited without claiming the cell")
		}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("helper never claimed the cell")
	}
	// SIGKILL mid-cell: no deferred cleanup, no lease release — the kernel
	// drops the flock, the journal keeps the orphaned lease record.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The survivor: fast staleness detection, real training pipeline.
	store, err := OpenSharedStore(path, "survivor")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := NewRunner()
	r.Store = store
	fastLease(r)
	outs, err := r.RunGrid([]Config{cfg}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] == nil {
		t.Fatal("survivor produced no outcome")
	}

	// Exactly one result record despite the crash and reclaim.
	if n := countJournalLines(t, path, key); n != 1 {
		t.Fatalf("cell recorded %d times after reclaim, want exactly 1", n)
	}

	// Bit-identical to a direct storeless run: determinism makes the
	// reclaimed execution indistinguishable from an undisturbed one.
	direct := NewRunner()
	want, err := direct.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := outs[0]
	same := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	if !same(got.MaxAcc, want.MaxAcc) || !same(got.FinalAcc, want.FinalAcc) ||
		!same(got.CleanAcc, want.CleanAcc) || !same(got.ASR, want.ASR) || !same(got.DPR, want.DPR) {
		t.Fatalf("reclaimed outcome diverges from direct run:\n got %+v\nwant %+v", got, want)
	}
	if len(got.AccTimeline) != len(want.AccTimeline) {
		t.Fatalf("timeline length diverges: %d vs %d", len(got.AccTimeline), len(want.AccTimeline))
	}
	for i := range want.AccTimeline {
		if !same(got.AccTimeline[i], want.AccTimeline[i]) {
			t.Fatalf("timeline diverges at round %d: %v vs %v", i, got.AccTimeline[i], want.AccTimeline[i])
		}
	}
}
