// Package experiment wires datasets, models, attacks and defenses into the
// named experimental configurations of the paper's evaluation (Section IV
// and V). It owns the mapping from human-readable names ("fashion-sim",
// "dfa-r", "bulyan") to concrete components, caches the clean "no attack,
// no defense" accuracy baselines the ASR metric needs, and runs grids of
// configurations concurrently for the benchmark harness.
package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"

	"repro/internal/attack"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/forensics"
	"repro/internal/nn"
	"repro/internal/population"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config describes one simulation run. Zero fields are filled with the
// paper's defaults (scaled to the pure-Go simulator) by Normalize.
type Config struct {
	// Dataset names the task: fashion-sim, cifar-sim, svhn-sim, tiny-sim.
	Dataset string
	// Attack names the adversary: none, random, labelflip, lie, fang,
	// minmax, minsum, dfa-r, dfa-g, dfa-r-static, dfa-g-static, real-data.
	Attack string
	// Defense names the aggregation rule: fedavg, median, trmean, krum,
	// mkrum, bulyan, refd.
	Defense string
	// Beta is the Dirichlet heterogeneity parameter; <= 0 means i.i.d.
	Beta float64
	// AttackerFrac is the fraction of malicious clients (paper: 0.2).
	AttackerFrac float64
	// Seed drives every random component of the run.
	Seed int64

	// TotalClients, PerRound, Rounds, LocalEpochs, BatchSize, LR and
	// EvalLimit configure the federation (see fl.Config).
	TotalClients int
	PerRound     int
	Rounds       int
	LocalEpochs  int
	BatchSize    int
	LR           float64
	EvalLimit    int

	// TrainN and TestN override the dataset spec sizes when positive.
	TrainN, TestN int

	// SampleCount is |S| for the DFA family and the real-data attack.
	SampleCount int
	// SynthesisEpochs is E for the DFA family (paper: 5 for Fashion-MNIST,
	// 10 for CIFAR/SVHN).
	SynthesisEpochs int
	// NoReg disables the distance-based regularization (Table IV ablation).
	NoReg bool
	// PerturbStd adds per-attacker Gaussian noise to the DFA updates, the
	// Section III-A trick for evading Sybil defenses like FoolsGold.
	PerturbStd float64

	// FProxy is the server's assumed per-round attacker count used to
	// parameterize the robust defenses (paper setting: 2 of 10).
	FProxy int
	// RefPerClass sizes REFD's balanced reference set.
	RefPerClass int
	// RejectX is REFD's per-round rejection count (paper: 2).
	RejectX int

	// Parallel trains the selected clients of a round concurrently.
	Parallel bool

	// The participation axes below canonicalize their legacy default to the
	// zero value ("label", "uniform", "plain" normalize to "") and carry
	// omitempty JSON tags, so a legacy-shaped config marshals — and hashes
	// into run-store keys — exactly as it did before the engine existed.

	// Partition selects the shard assignment protocol: "" or "label" (the
	// paper's Dirichlet label skew when Beta > 0, i.i.d. otherwise) or
	// "quantity" (Dirichlet shard-size skew, requires Beta > 0).
	Partition string `json:",omitempty"`
	// Sampler selects per-round participation: "" or "uniform" (K of N,
	// the paper's shape), "bernoulli" (each client independently with
	// probability SampleRate) or "weighted" (K of N, probability
	// proportional to shard size).
	Sampler string `json:",omitempty"`
	// SampleRate is the Bernoulli participation probability (0 = K/N).
	SampleRate float64 `json:",omitempty"`
	// DropoutProb and StragglerProb simulate cross-device churn: each
	// selected client is unavailable (never trains) or misses the round
	// deadline (trains, update discarded) with these probabilities.
	DropoutProb   float64 `json:",omitempty"`
	StragglerProb float64 `json:",omitempty"`
	// ServerOpt post-processes the aggregate: "" or "plain" (the paper's
	// behaviour), "lr" (server learning rate ServerLR) or "fedavgm"
	// (server momentum with rate ServerLR and decay ServerMomentum).
	ServerOpt string `json:",omitempty"`
	// ServerLR is the server learning rate (0 = 1 for lr/fedavgm).
	ServerLR float64 `json:",omitempty"`
	// ServerMomentum is FedAvgM's velocity decay (0 = 0.9).
	ServerMomentum float64 `json:",omitempty"`
	// AsyncBuffer > 0 enables FedBuff-style buffered async aggregation
	// with buffer size B; AsyncMaxDelay bounds the simulated arrival delay
	// in rounds (0 = 2 when async).
	AsyncBuffer   int `json:",omitempty"`
	AsyncMaxDelay int `json:",omitempty"`

	// The population axes below follow the same key-stability contract:
	// defaults canonicalize to zero values and carry omitempty tags, so a
	// legacy-shaped config still marshals — and hashes into run-store keys —
	// exactly as before the population subsystem existed.

	// Population selects the client-population backend: "" or "eager"
	// (every shard materialized up front — the legacy path) or "virtual"
	// (internal/population's lazy O(active)-memory population, the only
	// backend that scales TotalClients to 10⁶).
	Population string `json:",omitempty"`
	// MeanShard is the virtual population's expected per-client shard size
	// in samples (0 = 32; virtual only).
	MeanShard int `json:",omitempty"`
	// PopCache bounds the virtual population's LRU shard-materialization
	// cache in shards (0 = max(4×PerRound, 64)). Pure cache: never changes
	// results, only memory.
	PopCache int `json:",omitempty"`
	// Placement assigns the malicious client IDs: "" or "first" (the legacy
	// first ⌊frac·N⌋ IDs), "scatter" (seeded hash spread through the ID
	// space — the production model, exact at 0.1%/0.01% fractions), "sybil"
	// (one contiguous burst-join block) or "sizecorr" (probability
	// proportional to shard size). Non-default placements require the
	// virtual population.
	Placement string `json:",omitempty"`
	// Groups > 0 switches to hierarchical two-tier aggregation: Groups
	// group aggregators each apply the group rule to their clients' updates
	// and the server applies Defense to the group results. Composes with
	// both population backends.
	Groups int `json:",omitempty"`
	// GroupDefense names the per-group tier-1 rule ("" = Defense).
	GroupDefense string `json:",omitempty"`

	// The forensics axes below are pure observation: enabling them never
	// changes DPR/ASR, accuracies, or any RNG stream, so runKey strips them
	// — a forensics-on cell resolves to the same stored run as its
	// forensics-off twin (TestForensicsRunKeyInvariant).

	// Forensics enables the per-round defense-decision audit pipeline and
	// streaming detection metrics (internal/forensics).
	Forensics bool `json:",omitempty"`
	// ForensicsRing bounds the in-memory round-audit ring (0 = 64).
	ForensicsRing int `json:",omitempty"`
	// ForensicsReservoir bounds the cumulative score-pair reservoir the
	// AUC/TPR@FPR metrics are computed over (0 = 4096).
	ForensicsReservoir int `json:",omitempty"`
	// AuditPath, when non-empty, journals every defense decision to a JSONL
	// audit journal; ForensicsAddr, when non-empty, serves live detection
	// metrics over HTTP for the run's duration. Both imply Forensics and
	// never serialize — an ephemeral path or socket does not identify a run.
	AuditPath     string `json:"-"`
	ForensicsAddr string `json:"-"`

	// The telemetry axes follow the forensics discipline exactly: pure
	// observation (fixed-seed runs are bit-identical with telemetry on or
	// off — TestTelemetryOnOffBitIdentical), and none of them serialize, so
	// a telemetry-on cell resolves to the same stored run as its
	// telemetry-off twin (TestTelemetryRunKeyInvariant).

	// Telemetry enables the runtime metrics registry and per-phase round
	// instrumentation (internal/telemetry) for the run.
	Telemetry bool `json:"-"`
	// OpsAddr, when non-empty, serves the ops endpoint (/metrics Prometheus
	// text, /debug/pprof, and /forensics/* when Forensics is on) over HTTP
	// for the run's duration. Implies Telemetry.
	OpsAddr string `json:"-"`
	// TracePath, when non-empty, writes the run's spans as a Chrome
	// trace-event JSON file (load in Perfetto / chrome://tracing). Implies
	// Telemetry.
	TracePath string `json:"-"`
	// TraceJournal, when non-empty, appends the run's spans to a JSONL
	// journal via the persist append-only stream. Implies Telemetry.
	TraceJournal string `json:"-"`
	// Dash mounts the embedded operator dashboard (internal/dashboard) at
	// /dash/ on the ops endpoint, with live SSE streaming of the forensics
	// feed. Implies Telemetry and Forensics; requires OpsAddr (the
	// dashboard rides the ops listener). Pure observation like the rest of
	// this block: bit-identical on/off, stripped from run-store keys.
	Dash bool `json:"-"`
	// DashReplay lists journal paths (comma-separated; audit journals or
	// run stores) loaded into the dashboard's time-travel/diff tab.
	// Requires Dash.
	DashReplay string `json:"-"`
	// OnOpsBound, when non-nil, receives the ops listener's resolved
	// address once serving — the hook the -dash startup hint prints the
	// dashboard URL through. Never serializes (and must not: a func field
	// would fail the config marshal run keys are derived from).
	//lint:allow runkey runtime callback, json:"-" excluded from the key marshal, no canonical form to normalize
	OnOpsBound func(addr string) `json:"-"`

	// The compression axes below follow the same key-stability contract:
	// defaults canonicalize to zero values and carry omitempty tags, so a
	// legacy-shaped config still marshals — and hashes into run-store keys —
	// exactly as before the update codec existed.

	// Codec names the update-compression quantizer: "" or "none"
	// (uncompressed — bit-identical to the pre-codec pipeline), "raw"
	// (lossless transport reshaping, still bit-identical), "fp16" (half-
	// precision deltas) or "int8" (block-scaled stochastic 8-bit deltas).
	Codec string `json:",omitempty"`
	// TopK keeps only the ⌈TopK·d⌉ largest-magnitude delta coordinates
	// per update, in (0,1); 0 means dense. Requires Codec.
	TopK float64 `json:",omitempty"`
	// ErrorFeedback carries each round's quantization/sparsification
	// residual into the client's next update. Requires a lossy Codec.
	ErrorFeedback bool `json:",omitempty"`
}

// codecSpec maps the config's compression axes onto the codec package's
// spec; zero-valued axes produce the disabled spec.
func (c Config) codecSpec() codec.Spec {
	var kind codec.Kind
	switch c.Codec {
	case "raw":
		kind = codec.Raw
	case "fp16":
		kind = codec.FP16
	case "int8":
		kind = codec.Int8
	default:
		return codec.Spec{}
	}
	return codec.Spec{Quant: kind, TopK: c.TopK, EF: c.ErrorFeedback}
}

// Normalize fills defaults in place and validates the names.
func (c *Config) Normalize() error {
	if c.Dataset == "" {
		c.Dataset = "fashion-sim"
	}
	spec, err := dataset.SpecByName(c.Dataset)
	if err != nil {
		return err
	}
	c.Dataset = spec.Name
	if c.Attack == "" {
		c.Attack = "none"
	}
	if c.Defense == "" {
		c.Defense = "fedavg"
	}
	if c.AttackerFrac == 0 && c.Attack != "none" {
		c.AttackerFrac = 0.2
	}
	if c.TotalClients == 0 {
		c.TotalClients = 100
	}
	if c.PerRound == 0 {
		c.PerRound = 10
	}
	if c.Rounds == 0 {
		c.Rounds = 15
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.EvalLimit == 0 {
		c.EvalLimit = 500
	}
	if c.SampleCount == 0 {
		c.SampleCount = 50
	}
	if c.SynthesisEpochs == 0 {
		if c.Dataset == "fashion-sim" || c.Dataset == "tiny-sim" {
			c.SynthesisEpochs = 5
		} else {
			c.SynthesisEpochs = 10
		}
	}
	if c.FProxy == 0 {
		c.FProxy = 2
	}
	if c.RefPerClass == 0 {
		c.RefPerClass = 20
	}
	if c.RejectX == 0 {
		c.RejectX = 2
	}
	switch c.Partition {
	case "", "label":
		c.Partition = ""
	case "quantity":
	default:
		return fmt.Errorf("experiment: unknown partition %q (known: label, quantity)", c.Partition)
	}
	if c.Partition == "quantity" && c.Beta <= 0 {
		return fmt.Errorf("experiment: quantity partition requires Beta > 0")
	}
	switch c.Sampler {
	case "", "uniform":
		c.Sampler = ""
	case "bernoulli", "weighted":
	default:
		return fmt.Errorf("experiment: unknown sampler %q (known: uniform, bernoulli, weighted)", c.Sampler)
	}
	if c.Sampler == "bernoulli" && c.SampleRate == 0 {
		c.SampleRate = float64(c.PerRound) / float64(c.TotalClients)
	}
	if c.DropoutProb < 0 || c.StragglerProb < 0 || c.DropoutProb+c.StragglerProb > 1 {
		return fmt.Errorf("experiment: churn probabilities (%g, %g) invalid", c.DropoutProb, c.StragglerProb)
	}
	switch c.ServerOpt {
	case "", "plain":
		c.ServerOpt = ""
	case "lr", "fedavgm":
	default:
		return fmt.Errorf("experiment: unknown server optimizer %q (known: plain, lr, fedavgm)", c.ServerOpt)
	}
	if c.ServerOpt != "" && c.ServerLR == 0 {
		c.ServerLR = 1
	}
	if c.ServerOpt == "fedavgm" && c.ServerMomentum == 0 {
		c.ServerMomentum = 0.9
	}
	if c.AsyncBuffer < 0 || c.AsyncMaxDelay < 0 {
		return fmt.Errorf("experiment: async parameters (%d, %d) must be non-negative", c.AsyncBuffer, c.AsyncMaxDelay)
	}
	if c.AsyncBuffer > 0 && c.AsyncMaxDelay == 0 {
		c.AsyncMaxDelay = 2
	}
	switch c.Population {
	case "", "eager":
		c.Population = ""
	case "virtual", "lazy":
		c.Population = "virtual"
	default:
		return fmt.Errorf("experiment: unknown population %q (known: eager, virtual)", c.Population)
	}
	if c.Population == "virtual" {
		if c.MeanShard == 0 {
			c.MeanShard = 32
		}
		if c.AttackerFrac < 0 || c.AttackerFrac > 0.5 {
			return fmt.Errorf("experiment: AttackerFrac %v outside [0, 0.5]", c.AttackerFrac)
		}
		if c.Sampler == "weighted" {
			// Weighted selection holds one weight per client — O(N) state
			// the virtual population exists to avoid.
			return fmt.Errorf("experiment: weighted sampler requires the eager population")
		}
	} else if c.MeanShard != 0 || c.PopCache != 0 {
		return fmt.Errorf("experiment: MeanShard/PopCache require Population=virtual")
	}
	if c.MeanShard < 0 || c.PopCache < 0 {
		return fmt.Errorf("experiment: population parameters (%d, %d) must be non-negative", c.MeanShard, c.PopCache)
	}
	switch c.Placement {
	case "", "first":
		c.Placement = ""
	case "scatter", "sybil", "sizecorr":
		if c.Population != "virtual" {
			return fmt.Errorf("experiment: placement %q requires Population=virtual", c.Placement)
		}
	default:
		return fmt.Errorf("experiment: unknown placement %q (known: first, scatter, sybil, sizecorr)", c.Placement)
	}
	if c.Groups < 0 {
		return fmt.Errorf("experiment: Groups %d must be non-negative", c.Groups)
	}
	if c.GroupDefense != "" && c.Groups == 0 {
		return fmt.Errorf("experiment: GroupDefense requires Groups > 0")
	}
	if c.AuditPath != "" || c.ForensicsAddr != "" {
		c.Forensics = true
	}
	if c.ForensicsRing < 0 || c.ForensicsReservoir < 0 {
		return fmt.Errorf("experiment: forensics bounds (%d, %d) must be non-negative", c.ForensicsRing, c.ForensicsReservoir)
	}
	if !c.Forensics && (c.ForensicsRing != 0 || c.ForensicsReservoir != 0) {
		return fmt.Errorf("experiment: ForensicsRing/ForensicsReservoir require Forensics")
	}
	if c.OpsAddr != "" || c.TracePath != "" || c.TraceJournal != "" {
		c.Telemetry = true
	}
	if c.DashReplay != "" && !c.Dash {
		return fmt.Errorf("experiment: DashReplay requires Dash")
	}
	if c.Dash {
		if c.OpsAddr == "" {
			return fmt.Errorf("experiment: Dash requires OpsAddr (the dashboard rides the ops listener)")
		}
		c.Telemetry = true
		c.Forensics = true
	}
	switch c.Codec {
	case "", "none":
		c.Codec = ""
	case "raw", "fp16", "int8":
	default:
		return fmt.Errorf("experiment: unknown codec %q (known: none, raw, fp16, int8)", c.Codec)
	}
	if c.Codec == "" && (c.TopK != 0 || c.ErrorFeedback) {
		return fmt.Errorf("experiment: TopK/ErrorFeedback require Codec")
	}
	if err := c.codecSpec().Validate(); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}

// cleanKey identifies a clean-baseline run: everything that affects the
// no-attack accuracy.
func (c Config) cleanKey() string {
	key := fmt.Sprintf("%s|beta=%g|seed=%d|rounds=%d|N=%d|K=%d|lr=%g|bs=%d|ep=%d|train=%d|test=%d|eval=%d",
		c.Dataset, c.Beta, c.Seed, c.Rounds, c.TotalClients, c.PerRound, c.LR, c.BatchSize,
		c.LocalEpochs, c.TrainN, c.TestN, c.EvalLimit)
	// The participation/aggregation axes change the clean trajectory too,
	// but the legacy shape must keep its legacy key so pre-engine run
	// stores still resolve their baselines.
	if c.Partition != "" && c.Partition != "label" {
		key += "|part=" + c.Partition
	}
	if c.Sampler != "" && c.Sampler != "uniform" {
		key += fmt.Sprintf("|samp=%s|rate=%g", c.Sampler, c.SampleRate)
	}
	if c.DropoutProb > 0 || c.StragglerProb > 0 {
		key += fmt.Sprintf("|drop=%g|strag=%g", c.DropoutProb, c.StragglerProb)
	}
	if c.ServerOpt != "" && c.ServerOpt != "plain" {
		key += fmt.Sprintf("|sopt=%s|slr=%g|smom=%g", c.ServerOpt, c.ServerLR, c.ServerMomentum)
	}
	if c.AsyncBuffer > 0 {
		key += fmt.Sprintf("|async=%d|delay=%d", c.AsyncBuffer, c.AsyncMaxDelay)
	}
	// The virtual population reshapes every client's shard, so it changes
	// the clean trajectory; PopCache is a pure cache and Placement only
	// matters under attack, so neither joins the key. Groups are stripped
	// from baselines (the paper's acc is flat no-defense FedAvg).
	if c.Population != "" {
		key += fmt.Sprintf("|pop=%s|shard=%d", c.Population, c.MeanShard)
	}
	// The codec reshapes every surviving update (lossy kinds change the
	// clean trajectory; raw is bit-identical but keeping the keys separate
	// is cheaper than proving it per cell), so it joins the baseline key —
	// except for codec-off, which must keep the legacy key.
	if c.Codec != "" {
		key += fmt.Sprintf("|codec=%s|topk=%g|ef=%t", c.Codec, c.TopK, c.ErrorFeedback)
	}
	return key
}

// Outcome reports one run together with its clean baseline and the paper's
// two metrics.
type Outcome struct {
	// Config is the normalized configuration that produced this outcome.
	Config Config
	// CleanAcc is the paper's acc: the no-attack/no-defense accuracy for
	// the same dataset, heterogeneity and seed, in [0, 1].
	CleanAcc float64
	// MaxAcc is acc_m, the best accuracy reached under attack, in [0, 1].
	MaxAcc float64
	// FinalAcc is the accuracy after the last round.
	FinalAcc float64
	// ASR is the attack success rate of Eq. 4, in percent.
	ASR float64
	// DPR is the defense pass rate of Eq. 5 in percent; NaN when the
	// defense does not select ("N/A" in the paper).
	DPR float64
	// AccTimeline holds per-round accuracies (NaN where not evaluated).
	// Under seed averaging it is the element-wise mean across seeds.
	AccTimeline []float64
	// SynthesisLoss holds the DFA per-round per-epoch synthesis losses
	// (Fig. 7); nil for other attacks. Under seed averaging it is the
	// first seed's trace: the loss curves are per-run diagnostics.
	SynthesisLoss [][]float64
	// Trace holds the engine's per-round participation record (selected,
	// dropped, straggled, responded, aggregations). Under seed averaging it
	// is the first seed's trace, like SynthesisLoss.
	Trace []fl.RoundStats
	// Detection is the forensics subsystem's cumulative detection-quality
	// summary (TPR/FPR/F1, AUC, TPR@1%FPR); nil when the run did not enable
	// forensics or was replayed from a forensics-off store entry. Under
	// seed averaging it is the first seed's summary, like SynthesisLoss.
	Detection *forensics.Summary
}

// buildTask resolves the dataset, partition (eager shards or a lazy virtual
// population) and model factory of a config.
type task struct {
	spec  dataset.Spec
	train *dataset.Dataset
	test  *dataset.Dataset
	// shards is the eager per-client partition; nil on the virtual path.
	shards [][]int
	// pop is the lazy virtual population; nil on the eager path.
	pop      *population.Population
	newModel func(rng *rand.Rand) *nn.Network
}

// adversaryShard returns the data shard the data-holding attacks
// (labelflip, real-data) train on: client 0's shard on either path — a
// representative client-sized sample, independently of which IDs the
// placement model actually compromises.
func (tk *task) adversaryShard() []int {
	if tk.pop != nil {
		return tk.pop.Shard(0)
	}
	return tk.shards[0]
}

func buildTask(cfg Config) (*task, error) {
	spec, err := dataset.SpecByName(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	if cfg.TrainN > 0 {
		spec.TrainN = cfg.TrainN
	}
	if cfg.TestN > 0 {
		spec.TestN = cfg.TestN
	}
	train, test := dataset.Generate(spec, cfg.Seed)
	tk := &task{spec: spec, train: train, test: test}
	if cfg.Population == "virtual" {
		kind := population.IID
		switch {
		case cfg.Partition == "quantity":
			kind = population.Quantity
		case cfg.Beta > 0:
			kind = population.Label
		}
		cache := cfg.PopCache
		if cache == 0 {
			cache = 4 * cfg.PerRound
			if cache < 64 {
				cache = 64
			}
		}
		pop, err := population.New(population.Spec{
			Kind:         kind,
			TotalClients: cfg.TotalClients,
			Seed:         cfg.Seed ^ 0x7054,
			Beta:         cfg.Beta,
			MeanShard:    cfg.MeanShard,
			Cache:        cache,
		}, train)
		if err != nil {
			return nil, err
		}
		tk.pop = pop
	} else {
		prng := rand.New(rand.NewSource(cfg.Seed ^ 0x7054))
		switch {
		case cfg.Partition == "quantity":
			tk.shards = dataset.PartitionQuantity(prng, train.Len(), cfg.TotalClients, cfg.Beta)
		case cfg.Beta > 0:
			tk.shards = dataset.PartitionDirichlet(prng, train.Labels, cfg.TotalClients, cfg.Beta)
		default:
			tk.shards = dataset.PartitionIID(prng, train.Len(), cfg.TotalClients)
		}
	}
	switch spec.Name {
	case "cifar-sim", "svhn-sim":
		tk.newModel = func(rng *rand.Rand) *nn.Network {
			return nn.NewDeepCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	default:
		tk.newModel = func(rng *rand.Rand) *nn.Network {
			return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
		}
	}
	return tk, nil
}

// lossTracer is implemented by the DFA attacks to expose Fig. 7 data.
type lossTracer interface {
	LossTrace() [][]float64
}

func buildAttack(cfg Config, tk *task) (fl.Attack, error) {
	dfaCfg := core.DFAConfig{
		Classes:         tk.spec.Classes,
		ImgC:            tk.spec.Channels,
		ImgSize:         tk.spec.Size,
		SampleCount:     cfg.SampleCount,
		SynthesisEpochs: cfg.SynthesisEpochs,
		ClassifierLR:    cfg.LR,
		BatchSize:       cfg.BatchSize,
		RegLambda:       1,
		Trained:         true,
		PerturbStd:      cfg.PerturbStd,
	}
	if cfg.NoReg {
		dfaCfg.RegLambda = 0
	}
	switch cfg.Attack {
	case "none":
		return nil, nil
	case "random":
		return attack.RandomWeights{}, nil
	case "freerider":
		return attack.FreeRider{NoiseStd: 1e-3}, nil
	case "signflip":
		return attack.SignFlip{}, nil
	case "lie":
		return attack.LIE{}, nil
	case "fang":
		return attack.Fang{}, nil
	case "minmax":
		return attack.MinMax{}, nil
	case "minsum":
		return attack.MinSum{}, nil
	case "labelflip":
		return &attack.LabelFlip{
			Data:      tk.train,
			Shard:     tk.adversaryShard(),
			LR:        cfg.LR,
			Epochs:    cfg.LocalEpochs,
			BatchSize: cfg.BatchSize,
		}, nil
	case "dfa-r":
		return core.NewDFAR(dfaCfg)
	case "dfa-g":
		return core.NewDFAG(dfaCfg)
	case "dfa-r-static":
		dfaCfg.Trained = false
		return core.NewDFAR(dfaCfg)
	case "dfa-g-static":
		dfaCfg.Trained = false
		return core.NewDFAG(dfaCfg)
	case "real-data":
		// The adversary's real images follow the same Dirichlet assignment
		// as benign users: it receives the shard of (malicious) client 0.
		return core.NewRealData(dfaCfg, tk.train, tk.adversaryShard())
	default:
		return nil, fmt.Errorf("experiment: unknown attack %q", cfg.Attack)
	}
}

// buildRule resolves one aggregation rule by name with the given assumed
// attacker count f.
func buildRule(cfg Config, tk *task, name string, f int) (fl.Aggregator, error) {
	switch name {
	case "refd":
		ref, err := core.BalancedReference(tk.test, cfg.RefPerClass)
		if err != nil {
			return nil, err
		}
		return core.NewREFD(ref, tk.newModel, 1, cfg.RejectX)
	case "refd-adaptive":
		ref, err := core.BalancedReference(tk.test, cfg.RefPerClass)
		if err != nil {
			return nil, err
		}
		return core.NewAdaptiveREFD(ref, tk.newModel, cfg.RejectX, 0.25, 4)
	default:
		return defense.ByName(name, f)
	}
}

// buildDefense resolves the configured aggregation topology: the flat rule,
// or — with Groups > 0 — the hierarchical two-tier composition of the group
// rule (GroupDefense, defaulting to Defense, with the full FProxy) under a
// server tier running Defense with its assumed attacker count clamped to a
// minority of the Groups aggregates.
func buildDefense(cfg Config, tk *task) (fl.Aggregator, error) {
	if cfg.Groups <= 0 {
		return buildRule(cfg, tk, cfg.Defense, cfg.FProxy)
	}
	groupName := cfg.GroupDefense
	if groupName == "" {
		groupName = cfg.Defense
	}
	group, err := buildRule(cfg, tk, groupName, cfg.FProxy)
	if err != nil {
		return nil, err
	}
	serverF := cfg.FProxy
	if m := (cfg.Groups - 1) / 2; serverF > m {
		serverF = m
	}
	if serverF < 1 {
		serverF = 1
	}
	server, err := buildRule(cfg, tk, cfg.Defense, serverF)
	if err != nil {
		return nil, err
	}
	return &population.Hierarchical{Groups: cfg.Groups, Group: group, Server: server}, nil
}

// BuildScenario maps a normalized config's participation/aggregation axes
// onto the engine's pluggable layers; it is the single flags-to-engine
// mapping shared by the simulator path and cmd/flserver. Legacy defaults
// map to the zero-value Scenario, preserving the pre-engine RNG streams
// bit-exactly. shards supplies the per-client weights of the "weighted"
// sampler and may be nil otherwise.
func BuildScenario(cfg Config, shards [][]int) fl.Scenario {
	var sc fl.Scenario
	switch cfg.Sampler {
	case "bernoulli":
		sc.Sampler = fl.BernoulliSampler{P: cfg.SampleRate}
	case "weighted":
		weights := make([]float64, len(shards))
		for i, s := range shards {
			weights[i] = float64(len(s))
		}
		sc.Sampler = fl.WeightedSampler{K: cfg.PerRound, Weights: weights}
	}
	if cfg.DropoutProb > 0 || cfg.StragglerProb > 0 {
		sc.Participation = fl.RandomChurn{DropoutProb: cfg.DropoutProb, StragglerProb: cfg.StragglerProb}
	}
	switch cfg.ServerOpt {
	case "lr":
		sc.ServerOpt = fl.ServerLRApply{Eta: cfg.ServerLR}
	case "fedavgm":
		// Stateful (velocity buffer): a fresh instance per run.
		sc.ServerOpt = fl.NewFedAvgM(cfg.ServerLR, cfg.ServerMomentum)
	}
	if cfg.AsyncBuffer > 0 {
		sc.Async = &fl.AsyncConfig{Buffer: cfg.AsyncBuffer, MaxDelay: cfg.AsyncMaxDelay}
	}
	return sc
}

// writeChromeTrace exports the tracer's buffered spans as a Chrome
// trace-event JSON file (loadable in Perfetto / chrome://tracing).
func writeChromeTrace(tr *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: trace: %w", err)
	}
	if err := tr.WriteChrome(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("experiment: trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiment: trace: %w", err)
	}
	return nil
}

// Run executes a single configuration without clean-baseline bookkeeping;
// most callers want Runner.Run, which also fills CleanAcc and ASR.
func Run(cfg Config) (out *Outcome, retErr error) {
	// shutdowns collects the run's HTTP endpoint closers; they drain at
	// exit (newest first) and surface their errors — an ops plane that
	// failed to serve or drain is a real fault, not something to discard
	// on the way out.
	type closer struct {
		what string
		fn   func() error
	}
	var shutdowns []closer
	defer func() {
		for i := len(shutdowns) - 1; i >= 0; i-- {
			if cerr := shutdowns[i].fn(); cerr != nil && retErr == nil {
				out, retErr = nil, fmt.Errorf("experiment: %s shutdown: %w", shutdowns[i].what, cerr)
			}
		}
	}()
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	tk, err := buildTask(cfg)
	if err != nil {
		return nil, err
	}
	atk, err := buildAttack(cfg, tk)
	if err != nil {
		return nil, err
	}
	agg, err := buildDefense(cfg, tk)
	if err != nil {
		return nil, err
	}
	var col *forensics.Collector
	if cfg.Forensics {
		col, err = forensics.NewCollector(forensics.Options{
			Defense:      agg.Name(),
			Ring:         cfg.ForensicsRing,
			ReservoirCap: cfg.ForensicsReservoir,
			// A forensics-private seed derivation: the collector consumes no
			// engine RNG stream, so results stay bit-identical to
			// forensics-off runs.
			Seed:      cfg.Seed ^ 0x464F52,
			AuditPath: cfg.AuditPath,
		})
		if err != nil {
			return nil, err
		}
		defer col.Close() // idempotent; the success path closes explicitly
		if cfg.ForensicsAddr != "" {
			_, shutdown, err := col.Serve(cfg.ForensicsAddr)
			if err != nil {
				return nil, fmt.Errorf("experiment: forensics endpoint: %w", err)
			}
			shutdowns = append(shutdowns, closer{"forensics endpoint", shutdown})
		}
	}
	var engTel *telemetry.EngineTelemetry
	var tracer *telemetry.Tracer
	if cfg.Telemetry {
		// Pure observation: the registry, tracer, and distance hook never
		// touch the engine's RNG streams or the aggregation order, so the
		// run stays bit-identical to its telemetry-off twin.
		reg := telemetry.NewRegistry()
		telemetry.RegisterPoolGauges(reg, tensor.Workers, tensor.InUse)
		if cfg.TracePath != "" || cfg.TraceJournal != "" {
			tracer = telemetry.NewTracer(0)
		}
		engTel = telemetry.NewEngineTelemetry(reg, tracer, "")
		telemetry.SetDistanceHook(reg, tracer)
		defer telemetry.ClearDistanceHook()
		if cfg.OpsAddr != "" {
			mux := telemetry.NewOpsMux(reg)
			if col != nil {
				// The ops plane owns /metrics (Prometheus text); the forensics
				// JSON lives under /forensics/* with the legacy /rounds alias
				// redirected there.
				col.Mount(mux, "/forensics")
				mux.Handle("/rounds", http.RedirectHandler("/forensics/rounds", http.StatusPermanentRedirect))
			}
			if cfg.Dash {
				replayRuns, err := LoadDashReplay(cfg.DashReplay)
				if err != nil {
					return nil, err
				}
				if len(replayRuns) > 0 {
					forensics.NewReplay(replayRuns).Mount(mux, dashboard.Prefix+"/api/replay")
				}
				var feds []string
				if col != nil {
					feds = []string{"/forensics"}
				}
				dashboard.Mount(mux, dashboard.Config{
					Title:       "fl run — " + cfg.Dataset + "/" + cfg.Defense,
					Federations: feds,
					Fleet:       true,
					Replay:      len(replayRuns) > 0,
					Live:        col != nil,
				})
			}
			bound, shutdown, err := telemetry.ServeOps(cfg.OpsAddr, mux)
			if err != nil {
				return nil, fmt.Errorf("experiment: ops endpoint: %w", err)
			}
			shutdowns = append(shutdowns, closer{"ops endpoint", shutdown})
			if cfg.OnOpsBound != nil {
				cfg.OnOpsBound(bound)
			}
		}
	}
	flCfg := fl.Config{
		TotalClients: cfg.TotalClients,
		PerRound:     cfg.PerRound,
		AttackerFrac: cfg.AttackerFrac,
		Rounds:       cfg.Rounds,
		LocalEpochs:  cfg.LocalEpochs,
		BatchSize:    cfg.BatchSize,
		LR:           cfg.LR,
		Seed:         cfg.Seed,
		EvalEvery:    1,
		EvalLimit:    cfg.EvalLimit,
		Parallel:     cfg.Parallel,
		Scenario:     BuildScenario(cfg, tk.shards),
		Codec:        cfg.codecSpec(),
		Telemetry:    engTel,
	}
	if col != nil {
		flCfg.Observer = col
	}
	if atk == nil {
		flCfg.AttackerFrac = 0
	}
	var sim interface{ Run() (*fl.Result, error) }
	if tk.pop != nil {
		var place population.Placement
		if atk != nil {
			place, err = population.PlacementByName(cfg.Placement, cfg.TotalClients,
				cfg.AttackerFrac, cfg.Seed^0x506C61, tk.pop)
			if err != nil {
				return nil, err
			}
		}
		sim, err = population.NewSimulation(flCfg, tk.train, tk.test, tk.pop, place, tk.newModel, agg, atk)
	} else {
		sim, err = fl.NewSimulation(flCfg, tk.train, tk.test, tk.shards, tk.newModel, agg, atk)
	}
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if cfg.TracePath != "" {
		if err := writeChromeTrace(tracer, cfg.TracePath); err != nil {
			return nil, err
		}
	}
	if cfg.TraceJournal != "" {
		if err := tracer.WriteJournal(cfg.TraceJournal); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	out = &Outcome{
		Config:   cfg,
		CleanAcc: math.NaN(),
		MaxAcc:   res.MaxAccuracy,
		FinalAcc: res.FinalAccuracy,
		ASR:      math.NaN(),
		DPR:      res.DPR(),
	}
	for _, rs := range res.Rounds {
		out.AccTimeline = append(out.AccTimeline, rs.Accuracy)
	}
	out.Trace = res.Rounds
	if tracer, ok := atk.(lossTracer); ok {
		out.SynthesisLoss = tracer.LossTrace()
	}
	if col != nil {
		s := col.Summary()
		out.Detection = &s
		// A lost audit line is lost evidence: surface it as the run's error
		// rather than shipping a silently incomplete journal.
		if err := col.Close(); err != nil {
			return nil, fmt.Errorf("experiment: forensics audit: %w", err)
		}
	}
	return out, nil
}
