package experiment

// Forensics wiring tests: the observation-only contract (bit-identical
// results and run-store keys with forensics on or off), the fixed-seed
// stability of the detection metrics, and the bounded-heap contract on a
// production-scale population.

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// forensicsCfg is the satellite fixture: REFD against scattered 1%
// attackers on a virtual population, sized so the fixed-seed run selects
// attackers while staying test-fast.
func forensicsCfg() Config {
	cfg := tinyCfg("minmax", "refd")
	cfg.TotalClients = 2000
	cfg.PerRound = 60
	cfg.AttackerFrac = 0.01
	cfg.Population = "virtual"
	cfg.Placement = "scatter"
	cfg.Forensics = true
	return cfg
}

// TestForensicsRunKeyInvariant pins the store contract: forensics is pure
// observation, so a forensics-on cell must hash to the same run key as its
// forensics-off twin — and the legacy config JSON must not leak the new
// fields.
func TestForensicsRunKeyInvariant(t *testing.T) {
	off := tinyCfg("lie", "mkrum")
	on := tinyCfg("lie", "mkrum")
	on.Forensics = true
	on.ForensicsRing = 16
	on.ForensicsReservoir = 256
	on.AuditPath = "/tmp/never-touched.jsonl"
	on.ForensicsAddr = "127.0.0.1:0"
	kOff, err := runKey(off, 1)
	if err != nil {
		t.Fatal(err)
	}
	kOn, err := runKey(on, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kOff != kOn {
		t.Fatalf("forensics changed the run key: %s vs %s", kOff, kOn)
	}

	legacy := tinyCfg("lie", "mkrum")
	if err := legacy.Normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Forensics", "ForensicsRing", "ForensicsReservoir", "AuditPath", "ForensicsAddr"} {
		if strings.Contains(string(raw), field) {
			t.Errorf("legacy config JSON leaks forensics field %s: %s", field, raw)
		}
	}
}

func TestForensicsConfigValidation(t *testing.T) {
	cfg := tinyCfg("lie", "mkrum")
	cfg.ForensicsRing = 8 // without Forensics
	if err := cfg.Normalize(); err == nil {
		t.Fatal("ForensicsRing without Forensics should fail validation")
	}
	cfg = tinyCfg("lie", "mkrum")
	cfg.Forensics = true
	cfg.ForensicsReservoir = -1
	if err := cfg.Normalize(); err == nil {
		t.Fatal("negative reservoir should fail validation")
	}
	// AuditPath implies Forensics.
	cfg = tinyCfg("lie", "mkrum")
	cfg.AuditPath = "x.jsonl"
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Forensics {
		t.Fatal("AuditPath should imply Forensics")
	}
}

// TestForensicsOnOffBitIdentical is the satellite's purity half: enabling
// forensics must leave DPR, accuracies and the whole participation trace
// bit-identical to the forensics-off run.
func TestForensicsOnOffBitIdentical(t *testing.T) {
	on := forensicsCfg()
	off := forensicsCfg()
	off.Forensics = false

	a, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxAcc != b.MaxAcc || a.FinalAcc != b.FinalAcc || a.DPR != b.DPR {
		t.Fatalf("forensics changed results: acc %v/%v vs %v/%v, DPR %v vs %v",
			a.MaxAcc, a.FinalAcc, b.MaxAcc, b.FinalAcc, a.DPR, b.DPR)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("trace lengths differ")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("round %d trace differs: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.Detection == nil {
		t.Fatal("forensics-on run carries no detection summary")
	}
	if b.Detection != nil {
		t.Fatal("forensics-off run carries a detection summary")
	}
}

// TestForensicsAUCStableAcrossRuns is the satellite's stability half: the
// fixed-seed REFD/scattered-1% cell must reproduce its entire detection
// summary — AUC included — bit-identically across runs.
func TestForensicsAUCStableAcrossRuns(t *testing.T) {
	a, err := Run(forensicsCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(forensicsCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Detection == nil || b.Detection == nil {
		t.Fatal("missing detection summaries")
	}
	if a.Detection.MaliciousSeen == 0 {
		t.Fatal("fixture never selected an attacker; detection metrics are vacuous")
	}
	if a.Detection.ScoreName != "dscore" {
		t.Fatalf("score name %q, want dscore", a.Detection.ScoreName)
	}
	if *a.Detection != *b.Detection {
		t.Fatalf("detection summary not stable across runs:\n%+v\n%+v", *a.Detection, *b.Detection)
	}
	if a.Detection.AUC != a.Detection.AUC { // NaN check without importing math
		t.Fatal("AUC undefined despite malicious and benign scores")
	}
}

// TestForensicsHierarchicalReconciles runs the two-tier topology with the
// audit attached: the composed Selection (group-local accepts mapped back
// through the server tier's group keeps) must reconcile with the engine's
// DPR accounting, and every audit record must carry a group attribution.
func TestForensicsHierarchicalReconciles(t *testing.T) {
	cfg := forensicsCfg()
	cfg.Groups = 2
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := out.Detection
	if d == nil {
		t.Fatal("no detection summary")
	}
	passed, submitted := 0, 0
	for _, rs := range out.Trace {
		if rs.PassedMalicious > 0 {
			passed += rs.PassedMalicious
		}
		submitted += rs.SelectedMalicious
	}
	if d.Confusion.FN != passed {
		t.Fatalf("hierarchical audit FN %d != trace passed-malicious %d", d.Confusion.FN, passed)
	}
	if got := d.Confusion.TP + d.Confusion.FN; got != submitted {
		t.Fatalf("hierarchical audit TP+FN %d != selected-malicious %d", got, submitted)
	}
	if d.MaliciousSeen == 0 {
		t.Fatal("fixture never selected an attacker")
	}
}

// TestDetectionStoreRoundTrip pins the journal shape: a stored outcome's
// detection summary survives encode/decode bit-exactly, NaN rates
// included.
func TestDetectionStoreRoundTrip(t *testing.T) {
	out, err := Run(forensicsCfg())
	if err != nil {
		t.Fatal(err)
	}
	if out.Detection == nil {
		t.Fatal("no detection summary")
	}
	dec := decodeOutcome(encodeOutcome(out))
	if dec.Detection == nil {
		t.Fatal("detection summary lost in the store round trip")
	}
	if *dec.Detection != *out.Detection {
		t.Fatalf("detection round trip drifted:\n%+v\n%+v", *out.Detection, *dec.Detection)
	}
}

// TestForensicsHeapBounded100k is the acceptance bound: a forensics-on
// detection cell over a 100k-client lazy population must stay within the
// population subsystem's heap envelope — the ring and reservoir are the
// only forensic state, and both are capped.
func TestForensicsHeapBounded100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-client run in -short mode")
	}
	heap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	cfg := forensicsCfg()
	cfg.TotalClients = 100000
	cfg.PerRound = 50
	cfg.Rounds = 2
	before := heap()
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	growth := int64(heap()) - int64(before)
	const bound = 32 << 20
	if growth > bound {
		t.Fatalf("heap grew %d bytes over a forensics-on 100k-client run, bound %d", growth, bound)
	}
	if out.Detection == nil || out.Detection.Aggregations != cfg.Rounds {
		t.Fatalf("detection summary incomplete: %+v", out.Detection)
	}
}
