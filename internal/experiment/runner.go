package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fl"
	"repro/internal/telemetry"
)

// Runner executes configurations and caches the clean "no attack, no
// defense" accuracy baselines (the acc of Eq. 4), so that a grid of attacked
// runs over one dataset pays for its baseline only once. Baselines are
// deduplicated by a per-key singleflight latch: the first cell that needs a
// baseline computes it while cells with other (or no) baseline needs keep
// running — there is no serial warm-up phase.
type Runner struct {
	mu         sync.Mutex
	cleanCache map[string]*baselineCell
	// AverageSeeds runs every config with this many consecutive seeds and
	// averages the metrics, as the paper averages over three runs.
	// 0 means a single run.
	AverageSeeds int
	// Store, when non-nil, durably journals every completed grid cell and
	// clean baseline, making sweeps crash-resumable.
	Store RunStore
	// Resume, together with Store, replays journaled cells instead of
	// recomputing them: an interrupted RunGrid restarted against the same
	// store executes only the missing cells.
	Resume bool
	// Progress, when non-nil, receives one event per completed grid cell
	// (including cells replayed from the store). Events are delivered
	// serially; the callback does not need its own locking.
	Progress func(ProgressEvent)
	// LeasePoll is how often a worker re-scans the shared store for results
	// and claimable cells when its grid is fully leased out (LeaseStore
	// only). Zero means 500ms.
	LeasePoll time.Duration
	// LeaseExpirePolls is how many consecutive polls must observe a foreign
	// lease at an unchanged epoch before the holder is presumed dead and the
	// lease reclaimed. Liveness is judged purely by these local observations
	// — no wall clock ever crosses a process boundary. Zero means 5.
	LeaseExpirePolls int
	// LeaseRenewEvery is the heartbeat interval at which a worker bumps the
	// epoch of leases it holds; it must be comfortably shorter than
	// LeasePoll*LeaseExpirePolls or healthy workers get robbed. Zero means 1s.
	LeaseRenewEvery time.Duration
	// Telemetry, when non-nil, instruments this worker's sweep: executed
	// cells (count, duration spans), lease claims/conflicts/reclaims, and
	// adopted cells. It also feeds the fleet fields of ProgressEvent. Pure
	// observation — scheduling and results are unaffected.
	Telemetry *telemetry.SweepTelemetry
	// runFn executes a single raw configuration; tests substitute it to
	// observe scheduling without paying for real training.
	runFn func(Config) (*Outcome, error)
}

// baselineCell is the singleflight latch for one clean baseline: the first
// goroutine to arrive computes, everyone else waits on the Once.
type baselineCell struct {
	once sync.Once
	acc  float64
	err  error
}

// ProgressEvent reports the completion of one grid cell.
type ProgressEvent struct {
	// Done and Total count completed and scheduled cells.
	Done, Total int
	// Config identifies the cell, whether it succeeded or failed.
	Config Config
	// Skipped marks a cell replayed from the run store rather than executed.
	Skipped bool
	// Remote marks a cell completed by another worker process draining the
	// same shared store while this sweep was running (Skipped is false:
	// the cell finished during the sweep, it just wasn't ours).
	Remote bool
	// Outcome is the completed cell's result (nil when the cell failed).
	Outcome *Outcome
	// Err is the cell's failure, surfaced as it happens rather than only
	// in RunGrid's aggregate error after the sweep drains.
	Err error
	// Elapsed is the wall-clock time since the grid started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time as remaining cells times
	// the mean wall-clock per completed cell. Cells completed by other
	// worker processes count toward the rate — the remaining work is drained
	// by the whole fleet, so a single worker among N must not project N
	// times the true finish time. Zero when no cell has completed yet or the
	// grid is done.
	ETA time.Duration
	// WorkerCells, CellsPerMin and LeaseConflicts describe this worker's
	// own fleet contribution, read from the Runner's SweepTelemetry: cells
	// it executed (not adopted or replayed), its execution throughput over
	// the sweep so far, and claim attempts lost to live foreign leases. All
	// zero when Runner.Telemetry is nil.
	WorkerCells    int64
	CellsPerMin    float64
	LeaseConflicts int64
}

// NewRunner returns a Runner with an empty baseline cache.
func NewRunner() *Runner {
	return &Runner{cleanCache: make(map[string]*baselineCell), runFn: Run}
}

// CleanAccuracy returns the cached or freshly computed clean baseline
// accuracy for cfg's dataset/heterogeneity/seed. Concurrent callers sharing
// a baseline block only each other: the first computes, the rest wait on
// its latch, and callers with different keys proceed independently.
func (r *Runner) CleanAccuracy(cfg Config) (float64, error) {
	if err := cfg.Normalize(); err != nil {
		return 0, err
	}
	clean := cfg
	clean.Attack = "none"
	clean.Defense = "fedavg"
	clean.AttackerFrac = 0
	// The paper's acc baseline is flat no-defense FedAvg: strip the
	// attack-side placement and the aggregation topology too, so every
	// topology of a cell compares against the same clean run. Forensics is
	// stripped as well — auditing a no-attack FedAvg run yields nothing,
	// and a shared AuditPath must not be double-opened by the baseline.
	clean.Placement = ""
	clean.Groups = 0
	clean.GroupDefense = ""
	clean.Forensics = false
	clean.ForensicsRing = 0
	clean.ForensicsReservoir = 0
	clean.AuditPath, clean.ForensicsAddr = "", ""
	// Telemetry follows the same rule: the baseline is a shared background
	// computation, and a cell's OpsAddr or trace path must not be
	// double-bound by the clean run it happens to trigger.
	clean.Telemetry = false
	clean.OpsAddr, clean.TracePath, clean.TraceJournal = "", "", ""
	// The dashboard rides the ops listener the baseline just gave up, and
	// its bound-address hook belongs to the triggering cell, not to a
	// shared background run.
	clean.Dash, clean.DashReplay, clean.OnOpsBound = false, "", nil
	key := clean.cleanKey()

	r.mu.Lock()
	cell, ok := r.cleanCache[key]
	if !ok {
		cell = &baselineCell{}
		r.cleanCache[key] = cell
	}
	r.mu.Unlock()

	cell.once.Do(func() {
		cell.acc, cell.err = r.computeBaseline(clean)
	})
	if cell.err != nil {
		// Evict the failed cell so a later caller retries instead of
		// replaying a possibly transient error (e.g. a store write
		// failure) forever; successes stay cached.
		r.mu.Lock()
		if r.cleanCache[key] == cell {
			delete(r.cleanCache, key)
		}
		r.mu.Unlock()
	}
	return cell.acc, cell.err
}

// computeBaseline resolves one clean baseline: from the run store when
// resuming, otherwise by running the clean configuration (and journaling
// the result so the next resume skips it).
func (r *Runner) computeBaseline(clean Config) (float64, error) {
	var key string
	if r.Store != nil {
		k, err := baselineKey(clean)
		if err != nil {
			return 0, err
		}
		key = k
		if ls, ok := r.Store.(LeaseStore); ok {
			// Multi-process sweeps singleflight the baseline fleet-wide: one
			// worker leases and computes it, the rest await its record.
			return r.computeBaselineLeased(ls, key, clean)
		}
		if r.Resume {
			if out, ok, err := r.Store.Lookup(key); err != nil {
				return 0, fmt.Errorf("experiment: clean baseline store: %w", err)
			} else if ok {
				return out.MaxAcc, nil
			}
		}
	}
	out, err := r.runFn(clean)
	if err != nil {
		return 0, fmt.Errorf("experiment: clean baseline: %w", err)
	}
	if r.Store != nil {
		if err := r.Store.Record(key, out); err != nil {
			return 0, fmt.Errorf("experiment: clean baseline store: %w", err)
		}
	}
	return out.MaxAcc, nil
}

// Run executes cfg (averaging over seeds when configured) and fills
// CleanAcc and ASR from the matching clean baseline. The per-round
// AccTimeline is averaged element-wise across seeds; SynthesisLoss is the
// first seed's trace (the loss curves of Fig. 7 are per-run diagnostics,
// not averaged quantities).
func (r *Runner) Run(cfg Config) (*Outcome, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	seeds := r.AverageSeeds
	if seeds <= 1 {
		return r.runOne(cfg)
	}
	var agg *Outcome
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)*1000003
		if s > 0 {
			// Forensics follows first-seed semantics like SynthesisLoss:
			// only the first seed's Detection summary is kept, so later
			// seeds skip the whole pipeline — paying per-round
			// fingerprinting for a discarded summary would be waste, and
			// re-running the audit journal against one path would
			// interleave streams under colliding r<round>.<seq> keys.
			// runKey strips these fields, so store identity is unaffected.
			c.Forensics = false
			c.ForensicsRing, c.ForensicsReservoir = 0, 0
			c.AuditPath, c.ForensicsAddr = "", ""
			// Telemetry likewise: the ops listener and trace files are
			// single-bind resources owned by the first seed's run — and with
			// them the dashboard, which rides that listener.
			c.Telemetry = false
			c.OpsAddr, c.TracePath, c.TraceJournal = "", "", ""
			c.Dash, c.DashReplay, c.OnOpsBound = false, "", nil
		}
		out, err := r.runOne(c)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = out
			continue
		}
		agg.CleanAcc += out.CleanAcc
		agg.MaxAcc += out.MaxAcc
		agg.FinalAcc += out.FinalAcc
		agg.ASR += out.ASR
		agg.DPR += out.DPR // NaN propagates, as desired
		for i := range agg.AccTimeline {
			if i < len(out.AccTimeline) {
				agg.AccTimeline[i] += out.AccTimeline[i]
			}
		}
	}
	inv := 1.0 / float64(seeds)
	agg.CleanAcc *= inv
	agg.MaxAcc *= inv
	agg.FinalAcc *= inv
	agg.ASR *= inv
	agg.DPR *= inv
	for i := range agg.AccTimeline {
		agg.AccTimeline[i] *= inv
	}
	agg.Config = cfg
	return agg, nil
}

func (r *Runner) runOne(cfg Config) (*Outcome, error) {
	out, err := r.runFn(cfg)
	if err != nil {
		return nil, err
	}
	clean, err := r.CleanAccuracy(cfg)
	if err != nil {
		return nil, err
	}
	out.CleanAcc = clean
	out.ASR = fl.ASR(clean*100, out.MaxAcc*100)
	return out, nil
}

// progressTracker serializes ProgressEvent delivery and derives the ETA and
// the worker's fleet stats.
type progressTracker struct {
	mu       sync.Mutex
	cb       func(ProgressEvent)
	tel      *telemetry.SweepTelemetry
	total    int
	done     int
	executed int
	remote   int
	start    time.Time
}

func newProgressTracker(cb func(ProgressEvent), total int, tel *telemetry.SweepTelemetry) *progressTracker {
	if cb == nil {
		return nil
	}
	return &progressTracker{cb: cb, tel: tel, total: total, start: time.Now()}
}

func (p *progressTracker) report(cfg Config, out *Outcome, err error, skipped, remote bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	switch {
	case remote:
		p.remote++
	case !skipped:
		p.executed++
	}
	elapsed := time.Since(p.start)
	var eta time.Duration
	// The rate counts cells finished during this sweep by anyone — local
	// workers and other processes alike. elapsed/(executed+remote) is fleet
	// wall-clock per cell, which already amortizes all parallelism; cells
	// replayed at startup (skipped) predate the sweep and carry no rate
	// information.
	if remaining := p.total - p.done; remaining > 0 && p.executed+p.remote > 0 {
		perCell := float64(elapsed) / float64(p.executed+p.remote)
		eta = time.Duration(perCell * float64(remaining))
	}
	ev := ProgressEvent{
		Done:    p.done,
		Total:   p.total,
		Config:  cfg,
		Skipped: skipped,
		Remote:  remote,
		Outcome: out,
		Err:     err,
		Elapsed: elapsed,
		ETA:     eta,
	}
	if p.tel != nil {
		ev.WorkerCells = p.tel.Cells()
		ev.LeaseConflicts = p.tel.Conflicts()
		if mins := elapsed.Minutes(); mins > 0 {
			ev.CellsPerMin = float64(ev.WorkerCells) / mins
		}
	}
	p.cb(ev)
}

// cellName labels one grid cell's execution span on the sweep trace row.
func cellName(c Config) string {
	return c.Dataset + "/" + c.Attack + "/" + c.Defense
}

// RunGrid executes the configurations concurrently (bounded by workers;
// workers <= 0 uses GOMAXPROCS) and returns outcomes in input order. Clean
// baselines are deduplicated in-flight by CleanAccuracy's singleflight
// latch, so the grid starts on all cells immediately instead of prewarming
// baselines serially. With a Store configured, every completed cell is
// journaled; with Resume also set, cells already journaled are returned
// from the store without execution, so a killed sweep re-run against the
// same store completes only the remaining cells.
func (r *Runner) RunGrid(cfgs []Config, workers int) ([]*Outcome, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	seeds := r.AverageSeeds
	if seeds < 1 {
		seeds = 1
	}

	// Resolve cell identities up front; a malformed config fails fast.
	keys := make([]string, len(cfgs))
	if r.Store != nil {
		for i, cfg := range cfgs {
			key, err := runKey(cfg, seeds)
			if err != nil {
				return nil, err
			}
			keys[i] = key
		}
	} else {
		for _, cfg := range cfgs {
			c := cfg
			if err := c.Normalize(); err != nil {
				return nil, err
			}
		}
	}

	// A lease-capable store switches the grid into multi-process draining:
	// cells are claimed before execution, so N workers against one store
	// cover the grid exactly once between them.
	if ls, ok := r.Store.(LeaseStore); ok {
		return r.runGridLeased(ls, cfgs, keys, workers)
	}

	outcomes := make([]*Outcome, len(cfgs))
	errs := make([]error, len(cfgs))

	// Replay journaled cells before scheduling workers.
	var pending []int
	for i := range cfgs {
		if r.Store != nil && r.Resume {
			out, ok, err := r.Store.Lookup(keys[i])
			if err != nil {
				return nil, fmt.Errorf("experiment: grid cell %d: store: %w", i, err)
			}
			if ok {
				outcomes[i] = out
				continue
			}
		}
		pending = append(pending, i)
	}

	if workers > len(pending) {
		workers = len(pending)
	}
	prog := newProgressTracker(r.Progress, len(cfgs), r.Telemetry)
	for i := range cfgs {
		if outcomes[i] != nil {
			prog.report(outcomes[i].Config, outcomes[i], nil, true, false)
		}
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				sp := r.Telemetry.Cell(cellName(cfgs[i]))
				out, err := r.Run(cfgs[i])
				sp.End()
				if err == nil && r.Store != nil {
					if rerr := r.Store.Record(keys[i], out); rerr != nil {
						err = fmt.Errorf("store: %w", rerr)
					}
				}
				outcomes[i], errs[i] = out, err
				if err != nil {
					// Report the normalized config so a cell renders the
					// same whether it executed, failed, or was resumed.
					c := cfgs[i]
					_ = c.Normalize() // validated before scheduling
					prog.report(c, nil, err, false, false)
					continue
				}
				prog.report(out.Config, out, nil, false, false)
			}
		}()
	}
	for _, i := range pending {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: grid cell %d (%s/%s/%s): %w",
				i, cfgs[i].Dataset, cfgs[i].Attack, cfgs[i].Defense, err)
		}
	}
	return outcomes, nil
}
