package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fl"
)

// Runner executes configurations and caches the clean "no attack, no
// defense" accuracy baselines (the acc of Eq. 4), so that a grid of attacked
// runs over one dataset pays for its baseline only once.
type Runner struct {
	mu         sync.Mutex
	cleanCache map[string]float64
	// AverageSeeds runs every config with this many consecutive seeds and
	// averages the metrics, as the paper averages over three runs.
	// 0 means a single run.
	AverageSeeds int
}

// NewRunner returns a Runner with an empty baseline cache.
func NewRunner() *Runner {
	return &Runner{cleanCache: make(map[string]float64)}
}

// CleanAccuracy returns the cached or freshly computed clean baseline
// accuracy for cfg's dataset/heterogeneity/seed.
func (r *Runner) CleanAccuracy(cfg Config) (float64, error) {
	if err := cfg.Normalize(); err != nil {
		return 0, err
	}
	clean := cfg
	clean.Attack = "none"
	clean.Defense = "fedavg"
	clean.AttackerFrac = 0
	key := clean.cleanKey()

	r.mu.Lock()
	if acc, ok := r.cleanCache[key]; ok {
		r.mu.Unlock()
		return acc, nil
	}
	r.mu.Unlock()

	out, err := Run(clean)
	if err != nil {
		return 0, fmt.Errorf("experiment: clean baseline: %w", err)
	}
	r.mu.Lock()
	r.cleanCache[key] = out.MaxAcc
	r.mu.Unlock()
	return out.MaxAcc, nil
}

// Run executes cfg (averaging over seeds when configured) and fills
// CleanAcc and ASR from the matching clean baseline.
func (r *Runner) Run(cfg Config) (*Outcome, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	seeds := r.AverageSeeds
	if seeds <= 1 {
		return r.runOne(cfg)
	}
	var agg *Outcome
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)*1000003
		out, err := r.runOne(c)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = out
			continue
		}
		agg.CleanAcc += out.CleanAcc
		agg.MaxAcc += out.MaxAcc
		agg.FinalAcc += out.FinalAcc
		agg.ASR += out.ASR
		agg.DPR += out.DPR // NaN propagates, as desired
	}
	inv := 1.0 / float64(seeds)
	agg.CleanAcc *= inv
	agg.MaxAcc *= inv
	agg.FinalAcc *= inv
	agg.ASR *= inv
	agg.DPR *= inv
	agg.Config = cfg
	return agg, nil
}

func (r *Runner) runOne(cfg Config) (*Outcome, error) {
	out, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	clean, err := r.CleanAccuracy(cfg)
	if err != nil {
		return nil, err
	}
	out.CleanAcc = clean
	out.ASR = fl.ASR(clean*100, out.MaxAcc*100)
	return out, nil
}

// RunGrid executes the configurations concurrently (bounded by workers;
// workers <= 0 uses GOMAXPROCS) and returns outcomes in input order. Clean
// baselines are computed first so concurrent cells never duplicate them.
func (r *Runner) RunGrid(cfgs []Config, workers int) ([]*Outcome, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	// Warm the baseline cache serially (deduplicated by key).
	seen := make(map[string]bool)
	for _, cfg := range cfgs {
		c := cfg
		if err := c.Normalize(); err != nil {
			return nil, err
		}
		clean := c
		clean.Attack = "none"
		clean.Defense = "fedavg"
		clean.AttackerFrac = 0
		key := clean.cleanKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		seeds := r.AverageSeeds
		if seeds <= 1 {
			seeds = 1
		}
		for s := 0; s < seeds; s++ {
			cs := c
			cs.Seed = c.Seed + int64(s)*1000003
			if _, err := r.CleanAccuracy(cs); err != nil {
				return nil, err
			}
		}
	}

	outcomes := make([]*Outcome, len(cfgs))
	errs := make([]error, len(cfgs))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				outcomes[i], errs[i] = r.Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: grid cell %d (%s/%s/%s): %w",
				i, cfgs[i].Dataset, cfgs[i].Attack, cfgs[i].Defense, err)
		}
	}
	return outcomes, nil
}
