package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/text"
)

// runTextDFA is the Section VI future-work extension: DFA applied to text
// classification. A central RNN classifier is trained on the synthetic
// Markov-chain task; both DFA variants then synthesize adversarial embedding
// sequences against the frozen model, and the poisoned fine-tune's accuracy
// damage is reported. This extension exercises the attack mechanism outside
// the image domain, as the paper's conclusion proposes ("we want to explore
// DFA on different data types, e.g., text").
func runTextDFA(r *Runner, p Profile, w io.Writer) error {
	task := text.NewTask(20, 10, 4, 1)
	rng := rand.New(rand.NewSource(2))
	train := task.Generate(600, rng)
	test := task.Generate(200, rng)

	trainModel := func() *text.RNNClassifier {
		m := text.NewRNNClassifier(rand.New(rand.NewSource(3)), task.Vocab, 8, 16, task.Classes, task.SeqLen)
		epochs := 20
		if p.Name == "full" {
			epochs = 40
		}
		for e := 0; e < epochs; e++ {
			for start := 0; start < train.Len(); start += 32 {
				end := start + 32
				if end > train.Len() {
					end = train.Len()
				}
				m.TrainBatch(train.Seqs[start:end], train.Labels[start:end], 0.1)
			}
		}
		return m
	}

	cfg := text.AttackConfig{
		SampleCount:    p.SampleCount,
		Epochs:         8,
		LR:             0.05,
		FineTuneEpochs: 6,
		FineTuneLR:     0.1,
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "attack\tclean_acc%\tpoisoned_acc%\tdrop%\tsynthesis_loss_first\tsynthesis_loss_last")

	// DFA-R text.
	{
		model := trainModel()
		before := model.Accuracy(test)
		synth, losses, err := text.SynthesizeDFAR(model, cfg, rand.New(rand.NewSource(11)))
		if err != nil {
			return err
		}
		yTilde := rand.New(rand.NewSource(12)).Intn(task.Classes)
		text.Poison(model, synth, yTilde, cfg)
		after := model.Accuracy(test)
		fmt.Fprintf(tw, "dfa-r-text\t%.2f\t%.2f\t%.2f\t%.4f\t%.4f\n",
			before*100, after*100, (before-after)*100, losses[0], losses[len(losses)-1])
	}
	// DFA-G text.
	{
		model := trainModel()
		before := model.Accuracy(test)
		synth, losses, yTilde, err := text.SynthesizeDFAG(model, cfg, rand.New(rand.NewSource(13)))
		if err != nil {
			return err
		}
		text.Poison(model, synth, yTilde, cfg)
		after := model.Accuracy(test)
		fmt.Fprintf(tw, "dfa-g-text\t%.2f\t%.2f\t%.2f\t%.4f\t%.4f\n",
			before*100, after*100, (before-after)*100, losses[0], losses[len(losses)-1])
	}
	return tw.Flush()
}
