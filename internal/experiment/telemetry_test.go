package experiment

// Telemetry wiring tests: the observation-only contract at the experiment
// layer (identical run-store keys and bit-identical outcomes with telemetry
// on or off), the config implications, the trace-export plumbing, and the
// fleet instrumentation of the sweep runner.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryRunKeyInvariant pins the store contract: telemetry is pure
// observation, so a telemetry-on cell must hash to the same run key as its
// telemetry-off twin — and the legacy config JSON must not leak the new
// fields.
func TestTelemetryRunKeyInvariant(t *testing.T) {
	off := tinyCfg("lie", "mkrum")
	on := tinyCfg("lie", "mkrum")
	on.Telemetry = true
	on.OpsAddr = "127.0.0.1:0"
	on.TracePath = "/tmp/never-touched.json"
	on.TraceJournal = "/tmp/never-touched.jsonl"
	kOff, err := runKey(off, 1)
	if err != nil {
		t.Fatal(err)
	}
	kOn, err := runKey(on, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kOff != kOn {
		t.Fatalf("telemetry changed the run key: %s vs %s", kOff, kOn)
	}

	legacy := tinyCfg("lie", "mkrum")
	if err := legacy.Normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Telemetry", "OpsAddr", "TracePath", "TraceJournal"} {
		if strings.Contains(string(raw), field) {
			t.Errorf("legacy config JSON leaks telemetry field %s: %s", field, raw)
		}
	}
}

func TestTelemetryConfigImplication(t *testing.T) {
	for _, set := range []func(*Config){
		func(c *Config) { c.OpsAddr = "127.0.0.1:0" },
		func(c *Config) { c.TracePath = "x.json" },
		func(c *Config) { c.TraceJournal = "x.jsonl" },
	} {
		cfg := tinyCfg("lie", "mkrum")
		set(&cfg)
		if err := cfg.Normalize(); err != nil {
			t.Fatal(err)
		}
		if !cfg.Telemetry {
			t.Fatal("OpsAddr/TracePath/TraceJournal should imply Telemetry")
		}
	}
}

// TestTelemetryRunWiring is the end-to-end check on the single-run path:
// full telemetry (registry, ops endpoint with forensics mounted, Chrome
// trace, span journal) leaves the outcome bit-identical to the plain run,
// and both trace exports land on disk well-formed.
func TestTelemetryRunWiring(t *testing.T) {
	plain, err := Run(tinyCfg("lie", "mkrum"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := tinyCfg("lie", "mkrum")
	cfg.Forensics = true
	cfg.OpsAddr = "127.0.0.1:0"
	cfg.TracePath = filepath.Join(dir, "trace.json")
	cfg.TraceJournal = filepath.Join(dir, "spans.jsonl")
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc != plain.MaxAcc || out.FinalAcc != plain.FinalAcc || out.DPR != plain.DPR {
		t.Fatalf("telemetry changed results: acc %v/%v vs %v/%v, DPR %v vs %v",
			out.MaxAcc, out.FinalAcc, plain.MaxAcc, plain.FinalAcc, out.DPR, plain.DPR)
	}
	for i := range out.Trace {
		if out.Trace[i] != plain.Trace[i] {
			t.Fatalf("round %d trace differs: %+v vs %+v", i, out.Trace[i], plain.Trace[i])
		}
	}

	// The Chrome trace must be a JSON array containing the round and phase
	// spans of a 3-round run.
	raw, err := os.ReadFile(cfg.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not a JSON array: %v", err)
	}
	names := make(map[string]int)
	for _, ev := range events {
		if n, ok := ev["name"].(string); ok {
			names[n]++
		}
	}
	for _, want := range []string{"round", "select", "aggregate", "eval"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q spans (saw %v)", want, names)
		}
	}
	if names["round"] != cfg.Rounds {
		t.Errorf("trace has %d round spans, want %d", names["round"], cfg.Rounds)
	}

	// The span journal must be line-delimited JSON with one record per span.
	journal, err := os.ReadFile(cfg.TraceJournal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(journal)), "\n")
	if len(lines) == 0 {
		t.Fatal("span journal is empty")
	}
	if !strings.Contains(string(journal), `"aggregate"`) {
		t.Error("span journal carries no aggregate span")
	}
}

// TestRunGridFleetTelemetry pins the sweep instrumentation: a grid drained
// with a SweepTelemetry attached reports per-worker throughput through
// ProgressEvent and counts every executed cell on the registry.
func TestRunGridFleetTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRunner()
	r.Telemetry = telemetry.NewSweepTelemetry(reg, nil, "w0")
	r.runFn = func(cfg Config) (*Outcome, error) {
		return &Outcome{Config: cfg, MaxAcc: 0.5}, nil
	}
	var last ProgressEvent
	r.Progress = func(ev ProgressEvent) { last = ev }

	cfgs := []Config{tinyCfg("none", "fedavg"), tinyCfg("lie", "mkrum"), tinyCfg("lie", "trmean")}
	if _, err := r.RunGrid(cfgs, 1); err != nil {
		t.Fatal(err)
	}
	if got := r.Telemetry.Cells(); got != int64(len(cfgs)) {
		t.Fatalf("sweep telemetry counted %d cells, want %d", got, len(cfgs))
	}
	if last.WorkerCells != int64(len(cfgs)) {
		t.Fatalf("final ProgressEvent reports %d worker cells, want %d", last.WorkerCells, len(cfgs))
	}
	if last.CellsPerMin <= 0 {
		t.Fatalf("final ProgressEvent reports throughput %v, want > 0", last.CellsPerMin)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `sweep_cells_total{worker="w0"} 3`) {
		t.Fatalf("registry missing executed-cell count:\n%s", b.String())
	}
}
