package experiment

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/persist"
)

// LeaseStore is a RunStore that additionally supports multi-process work
// claiming: N worker processes drain one grid by leasing cells before
// executing them, so every cell runs exactly once fleet-wide (and at most
// twice under a crash, where bit-identical determinism makes the duplicate
// compute benign — only the first result record lands).
type LeaseStore interface {
	RunStore
	// Owner identifies this process in lease records.
	Owner() string
	// Refresh pulls in results and lease transitions other workers appended.
	Refresh() error
	// TryClaim attempts to lease key for Owner. stealEpoch authorizes
	// reclaiming a lease whose epoch is at most that value (0 = never);
	// contention returns the holder's lease with persist.ErrLeaseHeld.
	TryClaim(key string, stealEpoch uint64) (persist.Lease, error)
	// Renew proves liveness on a held lease; persist.ErrLeaseLost reports it
	// was reclaimed.
	Renew(key string) error
	// Release frees the lease (safe to call even after losing it).
	Release(key string) error
}

// SharedStore is the multi-process RunStore over a persist.SharedJournal:
// the same JSONL cell records as JournalStore (a worker-written store
// resumes fine under the single-owner -resume path and vice versa), plus
// lease records under the "lease|" namespace that never collide with runKey
// or baseline keys.
type SharedStore struct {
	j     *persist.SharedJournal
	owner string
}

// OpenSharedStore opens (creating if needed) the shared run store at path.
// An empty owner derives a hostname-pid identity.
func OpenSharedStore(path, owner string) (*SharedStore, error) {
	if owner == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		owner = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	j, err := persist.OpenShared(path)
	if err != nil {
		return nil, err
	}
	return &SharedStore{j: j, owner: owner}, nil
}

// Owner returns this process's lease identity.
func (s *SharedStore) Owner() string { return s.owner }

// Lookup returns the stored outcome for key in the current view; call
// Refresh to pick up other workers' records.
func (s *SharedStore) Lookup(key string) (*Outcome, bool, error) {
	var rec storedOutcome
	ok, err := s.j.Lookup(key, &rec)
	if err != nil || !ok {
		return nil, false, err
	}
	return decodeOutcome(rec), true, nil
}

// Record stores the outcome under key unless some worker already did: the
// check-then-append runs inside one exclusive-lock transaction, so even a
// worker whose lease was stolen mid-cell cannot produce a duplicate record.
func (s *SharedStore) Record(key string, out *Outcome) error {
	return s.j.Update(func(tx *persist.Tx) error {
		var existing json.RawMessage
		if ok, err := tx.Lookup(key, &existing); err != nil {
			return err
		} else if ok {
			return nil // first record wins; ours is bit-identical anyway
		}
		return tx.Append(key, encodeOutcome(out))
	})
}

// Refresh replays records other workers appended since the last look.
func (s *SharedStore) Refresh() error { return s.j.Refresh() }

// TryClaim leases key for this store's owner (see LeaseStore).
func (s *SharedStore) TryClaim(key string, stealEpoch uint64) (persist.Lease, error) {
	return s.j.TryClaim(key, s.owner, stealEpoch)
}

// Renew proves liveness on a lease this owner holds.
func (s *SharedStore) Renew(key string) error {
	_, err := s.j.Renew(key, s.owner)
	return err
}

// Release frees the lease on key; losing it first is not an error.
func (s *SharedStore) Release(key string) error {
	return s.j.Release(key, s.owner)
}

// Len reports the number of stored runs (lease records excluded, so the
// count is comparable with JournalStore.Len on the same grid).
func (s *SharedStore) Len() int {
	n := 0
	for _, k := range s.j.Keys() {
		if !persist.IsLeaseKey(k) {
			n++
		}
	}
	return n
}

// Close releases the underlying journal.
func (s *SharedStore) Close() error { return s.j.Close() }
