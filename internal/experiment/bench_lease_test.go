package experiment

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// benchGrid is 12 distinct cells (6 attacks x 2 defenses) of the tiny
// pipeline shape.
func benchGrid() []Config {
	attacks := []string{"lie", "fang", "minmax", "minsum", "random", "signflip"}
	defenses := []string{"mkrum", "median"}
	var cfgs []Config
	for _, d := range defenses {
		for _, a := range attacks {
			cfgs = append(cfgs, tinyCfg(a, d))
		}
	}
	return cfgs
}

// BenchmarkLeasedGridDrain drains a 12-cell grid through N in-process
// "workers" — independent Runners over independently opened shared stores
// on one path, the same shape as N flbench -worker processes. Each cell is
// a fixed 5ms sleep, so the benchmark is LATENCY-BOUND by construction: it
// measures how well the lease substrate (claim, renew, adopt, release,
// poll) overlaps waiting, not compute scaling. On a single-CPU machine a
// compute-bound grid cannot speed up with workers; sleeping cells can, and
// any shortfall from ideal N-fold scaling is coordination overhead.
func BenchmarkLeasedGridDrain(b *testing.B) {
	const cellWork = 5 * time.Millisecond
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfgs := benchGrid()
				path := filepath.Join(b.TempDir(), fmt.Sprintf("grid-%d.jsonl", i))
				runners := make([]*Runner, workers)
				for w := range runners {
					store, err := OpenSharedStore(path, fmt.Sprintf("w%d", w))
					if err != nil {
						b.Fatal(err)
					}
					defer store.Close()
					r := NewRunner()
					r.Store = store
					r.runFn = func(cfg Config) (*Outcome, error) {
						time.Sleep(cellWork)
						return fakeRun(cfg)
					}
					fastLease(r)
					runners[w] = r
				}
				b.StartTimer()
				var wg sync.WaitGroup
				errs := make([]error, workers)
				for w, r := range runners {
					wg.Add(1)
					go func(w int, r *Runner) {
						defer wg.Done()
						_, errs[w] = r.RunGrid(cfgs, 1)
					}(w, r)
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkGridStoreOverhead prices the substrate itself: the same 12-cell
// grid with zero-cost cells, drained by one worker, under no store, the
// single-owner journal, and the lease-coordinated shared store. The deltas
// are pure bookkeeping — journal appends, lease claim/release transactions,
// flock round-trips.
func BenchmarkGridStoreOverhead(b *testing.B) {
	run := func(b *testing.B, attach func(r *Runner, path string) error) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfgs := benchGrid()
			path := filepath.Join(b.TempDir(), fmt.Sprintf("grid-%d.jsonl", i))
			r := NewRunner()
			r.runFn = fakeRun
			if err := attach(r, path); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := r.RunGrid(cfgs, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("store=none", func(b *testing.B) {
		run(b, func(r *Runner, path string) error { return nil })
	})
	b.Run("store=journal", func(b *testing.B) {
		run(b, func(r *Runner, path string) error {
			store, err := OpenStore(path)
			if err != nil {
				return err
			}
			b.Cleanup(func() { _ = store.Close() })
			r.Store = store
			return nil
		})
	})
	b.Run("store=shared", func(b *testing.B) {
		run(b, func(r *Runner, path string) error {
			store, err := OpenSharedStore(path, "bench")
			if err != nil {
				return err
			}
			b.Cleanup(func() { _ = store.Close() })
			r.Store = store
			fastLease(r)
			return nil
		})
	})
}
