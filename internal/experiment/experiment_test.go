package experiment

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// tinyCfg returns a configuration that exercises the full pipeline in
// milliseconds.
func tinyCfg(attackName, defenseName string) Config {
	return Config{
		Dataset:         "tiny-sim",
		Attack:          attackName,
		Defense:         defenseName,
		Beta:            0.5,
		Seed:            1,
		TotalClients:    10,
		PerRound:        4,
		Rounds:          3,
		EvalLimit:       40,
		SampleCount:     4,
		SynthesisEpochs: 2,
		RefPerClass:     4,
		Parallel:        true,
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg := Config{}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Dataset != "fashion-sim" || cfg.Attack != "none" || cfg.Defense != "fedavg" {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.TotalClients != 100 || cfg.PerRound != 10 || cfg.SampleCount != 50 {
		t.Fatalf("paper defaults not applied: %+v", cfg)
	}
	if cfg.SynthesisEpochs != 5 {
		t.Fatalf("fashion synthesis epochs = %d, want 5", cfg.SynthesisEpochs)
	}
	cifar := Config{Dataset: "cifar"}
	if err := cifar.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cifar.Dataset != "cifar-sim" {
		t.Fatalf("alias not canonicalized: %q", cifar.Dataset)
	}
	if cifar.SynthesisEpochs != 10 {
		t.Fatalf("cifar synthesis epochs = %d, want 10", cifar.SynthesisEpochs)
	}
	if cfg.AttackerFrac != 0 {
		t.Fatal("clean config should keep AttackerFrac 0")
	}
	attacked := Config{Attack: "lie"}
	if err := attacked.Normalize(); err != nil {
		t.Fatal(err)
	}
	if attacked.AttackerFrac != 0.2 {
		t.Fatalf("attacked AttackerFrac = %v, want paper default 0.2", attacked.AttackerFrac)
	}
}

func TestConfigNormalizeUnknownDataset(t *testing.T) {
	cfg := Config{Dataset: "imagenet"}
	if err := cfg.Normalize(); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestRunUnknownComponents(t *testing.T) {
	bad := tinyCfg("teleport", "mkrum")
	if _, err := Run(bad); err == nil {
		t.Fatal("expected error for unknown attack")
	}
	bad = tinyCfg("lie", "forcefield")
	if _, err := Run(bad); err == nil {
		t.Fatal("expected error for unknown defense")
	}
}

// TestRunAllAttackDefenseCombos smoke-tests every attack and defense name
// the registry exposes, on the tiny task.
func TestRunAllAttackDefenseCombos(t *testing.T) {
	attacks := []string{"none", "random", "labelflip", "lie", "fang", "minmax", "minsum",
		"dfa-r", "dfa-g", "dfa-r-static", "dfa-g-static", "real-data"}
	for _, atk := range attacks {
		out, err := Run(tinyCfg(atk, "mkrum"))
		if err != nil {
			t.Fatalf("attack %s: %v", atk, err)
		}
		if out.MaxAcc < 0 || out.MaxAcc > 1 {
			t.Fatalf("attack %s: max accuracy %v out of range", atk, out.MaxAcc)
		}
		if len(out.AccTimeline) != 3 {
			t.Fatalf("attack %s: timeline length %d", atk, len(out.AccTimeline))
		}
	}
	defenses := []string{"fedavg", "median", "trmean", "krum", "mkrum", "bulyan", "foolsgold", "refd", "refd-adaptive"}
	for _, def := range defenses {
		out, err := Run(tinyCfg("lie", def))
		if err != nil {
			t.Fatalf("defense %s: %v", def, err)
		}
		if out.MaxAcc < 0 || out.MaxAcc > 1 {
			t.Fatalf("defense %s: max accuracy %v out of range", def, out.MaxAcc)
		}
	}
}

// TestNormalizeScenarioDefaults pins the defaults and validation of the
// engine's participation axes.
func TestNormalizeScenarioDefaults(t *testing.T) {
	cfg := Config{}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	// The legacy defaults canonicalize to the zero value so run-store keys
	// of pre-engine configs stay stable.
	if cfg.Partition != "" || cfg.Sampler != "" || cfg.ServerOpt != "" {
		t.Fatalf("legacy scenario defaults must canonicalize to empty: %+v", cfg)
	}
	explicit := Config{Partition: "label", Sampler: "uniform", ServerOpt: "plain"}
	if err := explicit.Normalize(); err != nil {
		t.Fatal(err)
	}
	if explicit.Partition != "" || explicit.Sampler != "" || explicit.ServerOpt != "" {
		t.Fatalf("explicit legacy names must canonicalize to empty: %+v", explicit)
	}
	bern := Config{Sampler: "bernoulli"}
	if err := bern.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := bern.SampleRate, float64(bern.PerRound)/float64(bern.TotalClients); got != want {
		t.Fatalf("bernoulli default rate %v, want K/N = %v", got, want)
	}
	fam := Config{ServerOpt: "fedavgm"}
	if err := fam.Normalize(); err != nil {
		t.Fatal(err)
	}
	if fam.ServerLR != 1 || fam.ServerMomentum != 0.9 {
		t.Fatalf("fedavgm defaults not applied: lr=%v momentum=%v", fam.ServerLR, fam.ServerMomentum)
	}
	async := Config{AsyncBuffer: 4}
	if err := async.Normalize(); err != nil {
		t.Fatal(err)
	}
	if async.AsyncMaxDelay != 2 {
		t.Fatalf("async default delay %d, want 2", async.AsyncMaxDelay)
	}
	bad := []Config{
		{Sampler: "teleport"},
		{ServerOpt: "adamw"},
		{Partition: "vertical"},
		{Partition: "quantity"}, // requires Beta > 0
		{DropoutProb: 0.8, StragglerProb: 0.5},
		{AsyncBuffer: -1},
		{Population: "cloud"},
		{Placement: "scatter"}, // requires Population=virtual
		{Placement: "wormhole", Population: "virtual"},
		{MeanShard: 16}, // requires Population=virtual
		{PopCache: 8},   // requires Population=virtual
		{Groups: -1},
		{GroupDefense: "mkrum"},                      // requires Groups > 0
		{Population: "virtual", Sampler: "weighted"}, // O(N) weights
		{Codec: "zstd"},
		{TopK: 0.1},                         // requires Codec
		{ErrorFeedback: true},               // requires Codec
		{Codec: "raw", ErrorFeedback: true}, // EF needs a lossy codec
		{Codec: "int8", TopK: 1.5},          // TopK outside (0,1)
		{Codec: "fp16", TopK: -0.1},         // TopK outside (0,1)
	}
	for i, b := range bad {
		if err := b.Normalize(); err == nil {
			t.Errorf("config %d should fail normalization: %+v", i, b)
		}
	}
}

// TestCleanKeyScenarioAxes: participation axes change the clean baseline,
// so they must split the baseline cache — while the legacy defaults must
// keep the legacy key.
func TestCleanKeyScenarioAxes(t *testing.T) {
	base := tinyCfg("none", "fedavg")
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	variants := []func(*Config){
		func(c *Config) { c.Sampler = "bernoulli"; c.SampleRate = 0.2 },
		func(c *Config) { c.DropoutProb = 0.3 },
		func(c *Config) { c.ServerOpt = "fedavgm" },
		func(c *Config) { c.AsyncBuffer = 4 },
		func(c *Config) { c.Partition = "quantity" },
		func(c *Config) { c.Population = "virtual" },
		func(c *Config) { c.Population = "virtual"; c.MeanShard = 16 },
		func(c *Config) { c.Codec = "fp16" },
		func(c *Config) { c.Codec = "int8" },
		func(c *Config) { c.Codec = "int8"; c.TopK = 0.1 },
		func(c *Config) { c.Codec = "int8"; c.TopK = 0.1; c.ErrorFeedback = true },
	}
	seen := map[string]bool{base.cleanKey(): true}
	for i, mut := range variants {
		cfg := tinyCfg("none", "fedavg")
		mut(&cfg)
		if err := cfg.Normalize(); err != nil {
			t.Fatal(err)
		}
		key := cfg.cleanKey()
		if seen[key] {
			t.Errorf("variant %d: clean key collides: %s", i, key)
		}
		seen[key] = true
	}
	// The normalized legacy shape must not grow new key segments, so
	// pre-engine run stores still resolve their baselines.
	if key := base.cleanKey(); strings.Contains(key, "samp=") || strings.Contains(key, "sopt=") ||
		strings.Contains(key, "pop=") || strings.Contains(key, "codec=") {
		t.Fatalf("legacy clean key changed: %s", key)
	}
}

// TestRunKeyLegacyStable pins the run-store compatibility contract: a
// legacy-shaped config must marshal — and therefore hash into runKey —
// without any of the new scenario fields, so journals written before the
// engine existed still resolve their cells under -resume.
func TestRunKeyLegacyStable(t *testing.T) {
	cfg := tinyCfg("lie", "mkrum")
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Partition", "Sampler", "SampleRate", "DropoutProb",
		"StragglerProb", "ServerOpt", "ServerLR", "ServerMomentum", "AsyncBuffer", "AsyncMaxDelay",
		"Population", "MeanShard", "PopCache", "Placement", "Groups", "GroupDefense",
		"Codec", "TopK", "ErrorFeedback"} {
		if strings.Contains(string(raw), field) {
			t.Errorf("legacy config JSON leaks new field %s: %s", field, raw)
		}
	}
	scen := tinyCfg("lie", "mkrum")
	scen.Sampler = "bernoulli"
	if err := scen.Normalize(); err != nil {
		t.Fatal(err)
	}
	k1, err := runKey(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := runKey(scen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("scenario config must hash to a different run key")
	}
	comp := tinyCfg("lie", "mkrum")
	comp.Codec = "int8"
	comp.TopK = 0.1
	if err := comp.Normalize(); err != nil {
		t.Fatal(err)
	}
	k3, err := runKey(comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 || k3 == k2 {
		t.Fatal("codec config must hash to a different run key")
	}
}

// TestCodecExperimentRun drives the full experiment path with the lossy
// production codec point (int8 + top-k + error feedback): the run completes,
// canonicalizes its codec axes, and reproduces bit-identically.
func TestCodecExperimentRun(t *testing.T) {
	cfg := tinyCfg("signflip", "mkrum")
	cfg.Codec = "int8"
	cfg.TopK = 0.25
	cfg.ErrorFeedback = true
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc < 0 || out.MaxAcc > 1 {
		t.Fatalf("accuracy %v out of range", out.MaxAcc)
	}
	if out.Config.Codec != "int8" || out.Config.TopK != 0.25 || !out.Config.ErrorFeedback {
		t.Fatalf("codec axes lost in normalization: %+v", out.Config)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc != again.MaxAcc || out.FinalAcc != again.FinalAcc {
		t.Fatalf("codec run not reproducible: %v/%v vs %v/%v",
			out.MaxAcc, out.FinalAcc, again.MaxAcc, again.FinalAcc)
	}
}

// TestVirtualPopulationRuns exercises the lazy-population path end-to-end:
// virtual backend, scattered placement and hierarchical aggregation through
// Run, with the DPR plumbing intact across both tiers.
func TestVirtualPopulationRuns(t *testing.T) {
	cfg := tinyCfg("signflip", "mkrum")
	cfg.TotalClients = 5000
	cfg.PerRound = 8
	cfg.AttackerFrac = 0.2
	cfg.Population = "virtual"
	cfg.Placement = "scatter"
	cfg.Groups = 2
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc < 0 || out.MaxAcc > 1 {
		t.Fatalf("accuracy %v out of range", out.MaxAcc)
	}
	if len(out.Trace) != cfg.Rounds {
		t.Fatalf("trace has %d rounds, want %d", len(out.Trace), cfg.Rounds)
	}
	if out.Config.MeanShard != 32 {
		t.Fatalf("virtual default MeanShard = %d, want 32", out.Config.MeanShard)
	}
	// Determinism: the same virtual config reproduces bit-identically.
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.MaxAcc != out.MaxAcc || again.FinalAcc != out.FinalAcc {
		t.Fatalf("virtual run not deterministic: %v/%v vs %v/%v",
			out.MaxAcc, out.FinalAcc, again.MaxAcc, again.FinalAcc)
	}
}

// TestHierarchicalEagerRuns checks the two-tier topology composes with the
// legacy eager population too (it is a pure aggregator wrapper).
func TestHierarchicalEagerRuns(t *testing.T) {
	cfg := tinyCfg("lie", "mkrum")
	cfg.Groups = 2
	cfg.GroupDefense = "trmean"
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc < 0 || out.MaxAcc > 1 {
		t.Fatalf("accuracy %v out of range", out.MaxAcc)
	}
}

// TestQuantityPartitionRuns exercises the quantity-skew axis end-to-end.
func TestQuantityPartitionRuns(t *testing.T) {
	cfg := tinyCfg("lie", "mkrum")
	cfg.Partition = "quantity"
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc < 0 || out.MaxAcc > 1 {
		t.Fatalf("accuracy %v out of range", out.MaxAcc)
	}
}

func TestDFAExposesSynthesisLoss(t *testing.T) {
	out, err := Run(tinyCfg("dfa-r", "median"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SynthesisLoss) == 0 {
		t.Fatal("DFA-R run should expose synthesis losses for Fig. 7")
	}
	out, err = Run(tinyCfg("lie", "median"))
	if err != nil {
		t.Fatal(err)
	}
	if out.SynthesisLoss != nil {
		t.Fatal("LIE run should not expose synthesis losses")
	}
}

func TestRunnerFillsASRAndCachesBaseline(t *testing.T) {
	r := NewRunner()
	cfg := tinyCfg("lie", "mkrum")
	out, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out.CleanAcc) || math.IsNaN(out.ASR) {
		t.Fatal("Runner.Run must fill CleanAcc and ASR")
	}
	clean1, err := r.CleanAccuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.cleanCache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(r.cleanCache))
	}
	clean2, err := r.CleanAccuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean1 != clean2 || clean1 != out.CleanAcc {
		t.Fatal("baseline cache inconsistent")
	}
}

func TestRunnerSeedAveraging(t *testing.T) {
	r := NewRunner()
	r.AverageSeeds = 2
	out, err := r.Run(tinyCfg("lie", "median"))
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc <= 0 || out.MaxAcc > 1 {
		t.Fatalf("averaged accuracy %v out of range", out.MaxAcc)
	}
	// Two baseline cache entries: one per seed.
	if len(r.cleanCache) != 2 {
		t.Fatalf("cache has %d entries, want 2", len(r.cleanCache))
	}
}

func TestRunGridPreservesOrderAndParallelism(t *testing.T) {
	r := NewRunner()
	cfgs := []Config{
		tinyCfg("lie", "mkrum"),
		tinyCfg("fang", "median"),
		tinyCfg("none", "fedavg"),
	}
	outs, err := r.RunGrid(cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for i := range cfgs {
		if outs[i].Config.Attack != cfgs[i].Attack || outs[i].Config.Defense != cfgs[i].Defense {
			t.Fatalf("outcome %d out of order: %s/%s", i, outs[i].Config.Attack, outs[i].Config.Defense)
		}
	}
}

func TestRunGridPropagatesErrors(t *testing.T) {
	r := NewRunner()
	cfgs := []Config{tinyCfg("lie", "mkrum"), tinyCfg("bogus", "mkrum")}
	if _, err := r.RunGrid(cfgs, 2); err == nil {
		t.Fatal("expected grid error for bogus attack")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table2", "table3", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "randomweights", "samplesize", "sybil", "participation", "compression"} {
		if _, ok := ByID(want); !ok {
			t.Errorf("experiment %q not registered", want)
		}
	}
	if _, ok := ByID("table99"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestProfiles(t *testing.T) {
	q, ok := ProfileByName("quick")
	if !ok || q.Name != "quick" {
		t.Fatal("quick profile missing")
	}
	f, ok := ProfileByName("full")
	if !ok || f.SeedCount != 3 || f.SampleCount != 50 {
		t.Fatalf("full profile should mirror the paper: %+v", f)
	}
	if _, ok := ProfileByName("warp"); ok {
		t.Fatal("unknown profile should not resolve")
	}
	d, ok := ProfileByName("")
	if !ok || d.Name != "quick" {
		t.Fatal("empty profile name should default to quick")
	}
	cfg := q.Base("tiny-sim", "lie", "mkrum", 0.5)
	if cfg.Rounds != q.Rounds || cfg.SampleCount != q.SampleCount || !cfg.Parallel {
		t.Fatalf("Base did not apply profile: %+v", cfg)
	}
}

func TestCleanKeyDistinguishesRuns(t *testing.T) {
	a := tinyCfg("none", "fedavg")
	b := a
	b.Beta = 0.1
	if a.cleanKey() == b.cleanKey() {
		t.Fatal("different beta must produce different clean keys")
	}
	c := a
	c.Seed = 99
	if a.cleanKey() == c.cleanKey() {
		t.Fatal("different seed must produce different clean keys")
	}
	if !strings.Contains(a.cleanKey(), "tiny-sim") {
		t.Fatal("clean key should embed the dataset")
	}
}
