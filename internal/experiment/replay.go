package experiment

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/forensics"
	"repro/internal/persist"
)

// auditKeyRe matches the audit journal's line keys (r%08d.%04d), the
// sniff that tells a PR-5 audit journal apart from a run store.
var auditKeyRe = regexp.MustCompile(`^r\d{8}\.\d{4}$`)

// LoadDashReplay loads the comma-separated journal paths behind the
// -dash-replay flag into replay runs for the dashboard's time-travel/diff
// tab. Each path is sniffed by its first line key: audit journals carry
// r<round>.<seq> keys and replay with full per-update records; run stores
// carry outcome hashes and replay from their stored round traces (see
// outcomeReplayRuns for what that trace can and cannot reconstruct). An
// empty spec returns no runs.
func LoadDashReplay(spec string) ([]forensics.ReplayRun, error) {
	var runs []forensics.ReplayRun
	for _, path := range strings.Split(spec, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		entries, err := persist.ReadEntries(path)
		if err != nil {
			return nil, fmt.Errorf("experiment: dash replay: %w", err)
		}
		if len(entries) == 0 {
			continue
		}
		base := filepath.Base(path)
		if auditKeyRe.MatchString(entries[0].Key) {
			run, err := forensics.LoadAuditJournal(path, base)
			if err != nil {
				return nil, fmt.Errorf("experiment: dash replay: %w", err)
			}
			runs = append(runs, run)
			continue
		}
		outRuns, err := outcomeReplayRuns(entries, base)
		if err != nil {
			return nil, fmt.Errorf("experiment: dash replay %s: %w", path, err)
		}
		runs = append(runs, outRuns...)
	}
	return runs, nil
}

// outcomeReplayRuns converts a run store's outcome records into replay
// runs, one per stored cell. The round trace knows how many malicious
// clients were selected and how many the defense passed, so true/false
// negatives are reconstructible (TP = selMal − passMal, FN = passMal);
// it records nothing about rejected benign clients, so FP/TN stay zero
// and the FPR side of the diff reads null rather than a fabricated 0.
// Defenses that expose no selection report PassedMalicious = −1 — those
// rounds keep an all-zero confusion ("unknown"), again surfacing as null.
func outcomeReplayRuns(entries []persist.Entry, source string) ([]forensics.ReplayRun, error) {
	var runs []forensics.ReplayRun
	seen := map[string]int{} // journal is last-wins: later records replace
	for _, e := range entries {
		if strings.HasPrefix(e.Key, "baseline|") || strings.HasPrefix(e.Key, "lease|") {
			continue
		}
		var rec storedOutcome
		if err := json.Unmarshal(e.Payload, &rec); err != nil {
			return nil, fmt.Errorf("record %s: %w", e.Key, err)
		}
		out := decodeOutcome(rec)
		if len(out.Trace) == 0 {
			continue
		}
		run := forensics.ReplayRun{Name: replayRunName(e.Key, out), Source: "run-store"}
		for i, rs := range out.Trace {
			rm := forensics.RoundMetrics{
				Round:         rs.Round,
				Updates:       rs.Selected,
				Malicious:     rs.SelectedMalicious,
				Known:         rs.PassedMalicious >= 0,
				ZeroSelection: rs.Aggregations == 0,
				AUC:           math.NaN(),
			}
			if rm.Known {
				rm.TP = rs.SelectedMalicious - rs.PassedMalicious
				rm.FN = rs.PassedMalicious
			}
			acc := math.NaN()
			if i < len(out.AccTimeline) {
				acc = out.AccTimeline[i]
			}
			run.Rounds = append(run.Rounds, forensics.ReplayRound{
				Audit: forensics.RoundAudit{
					Round:         rs.Round,
					Defense:       out.Config.Defense,
					ZeroSelection: rm.ZeroSelection,
					Metrics:       rm,
				},
				Accuracy: acc,
			})
		}
		if prev, ok := seen[run.Name]; ok {
			runs[prev] = run
			continue
		}
		seen[run.Name] = len(runs)
		runs = append(runs, run)
	}
	return runs, nil
}

// replayRunName labels a stored cell for the run picker: the experiment
// axes an operator tells cells apart by, plus a key prefix to break ties
// between cells differing only in stripped or unusual axes.
func replayRunName(key string, out *Outcome) string {
	c := out.Config
	name := fmt.Sprintf("%s/%s/%s f=%.2f s=%d", c.Dataset, c.Attack, c.Defense, c.AttackerFrac, c.Seed)
	if len(key) > 8 {
		key = key[:8]
	}
	return name + " [" + key + "]"
}
