package experiment

// Shape tests: slower end-to-end checks that the reproduction exhibits the
// paper's qualitative claims on the real (non-tiny) fashion task. These are
// the invariants EXPERIMENTS.md relies on.

import (
	"testing"
)

func shapeCfg(attackName, defenseName string) Config {
	return Config{
		Dataset:     "fashion-sim",
		Attack:      attackName,
		Defense:     defenseName,
		Beta:        0.5,
		Seed:        7,
		Rounds:      8,
		EvalLimit:   250,
		SampleCount: 10,
		TrainN:      3000,
		Parallel:    true,
	}
}

// TestDFADegradesUndefendedFederation pins the paper's core capability: a
// data-free attacker with 20% of the clients substantially reduces the
// accuracy of an undefended federation.
func TestDFADegradesUndefendedFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	r := NewRunner()
	out, err := r.Run(shapeCfg("dfa-r", "fedavg"))
	if err != nil {
		t.Fatal(err)
	}
	if out.ASR < 10 {
		t.Fatalf("DFA-R vs undefended FedAvg should reach ASR >= 10%%, got %.2f%% (clean %.1f%%, attacked %.1f%%)",
			out.ASR, out.CleanAcc*100, out.MaxAcc*100)
	}
}

// TestREFDBeatsNoDefenseUnderDFAG pins Section V: REFD recovers accuracy
// that an undefended federation loses to DFA-G.
func TestREFDBeatsNoDefenseUnderDFAG(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	r := NewRunner()
	undefended, err := r.Run(shapeCfg("dfa-g", "fedavg"))
	if err != nil {
		t.Fatal(err)
	}
	defended, err := r.Run(shapeCfg("dfa-g", "refd"))
	if err != nil {
		t.Fatal(err)
	}
	if defended.MaxAcc <= undefended.MaxAcc {
		t.Fatalf("REFD (%.1f%%) should beat no defense (%.1f%%) under DFA-G",
			defended.MaxAcc*100, undefended.MaxAcc*100)
	}
	// REFD should bring accuracy within striking distance of the clean
	// baseline (the paper reports near-clean accuracy).
	if defended.MaxAcc < 0.7*defended.CleanAcc {
		t.Fatalf("REFD accuracy %.1f%% too far below clean %.1f%%",
			defended.MaxAcc*100, defended.CleanAcc*100)
	}
}

// TestFoolsGoldPlumbing exercises the extension defense end to end,
// including the Sybil-evasion perturbation plumbed through the config.
func TestFoolsGoldPlumbing(t *testing.T) {
	cfg := tinyCfg("dfa-g", "foolsgold")
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAcc < 0 || out.MaxAcc > 1 {
		t.Fatalf("accuracy %v out of range", out.MaxAcc)
	}
	cfg.PerturbStd = 1e-3
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
