package experiment

import (
	"testing"
	"time"
)

// simulatedCellCost stands in for one federated run when benchmarking the
// scheduler itself rather than the training stack.
const simulatedCellCost = 2 * time.Millisecond

// BenchmarkRunGridScheduling measures the grid engine's wall-clock on a
// sweep with several distinct clean baselines. The seed runner prewarmed
// every baseline serially before the worker pool started; the singleflight
// scheduler overlaps baseline computation with the rest of the grid, so
// with >= 4 workers this benchmark completes in roughly
// ceil(cells/workers) x cost instead of baselines x cost + grid time.
func BenchmarkRunGridScheduling(b *testing.B) {
	var cfgs []Config
	for _, seed := range []int64{1, 2, 3, 4} { // four distinct baselines
		for _, atk := range []string{"lie", "fang", "minmax"} {
			cfg := tinyCfg(atk, "mkrum")
			cfg.Seed = seed
			cfgs = append(cfgs, cfg)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRunner()
		r.runFn = func(cfg Config) (*Outcome, error) {
			time.Sleep(simulatedCellCost)
			return fakeRun(cfg)
		}
		if _, err := r.RunGrid(cfgs, 4); err != nil {
			b.Fatal(err)
		}
	}
}
