package core

import (
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DFAR is the filter-layer variant of the data-free attack (Section III-C).
// For every synthetic sample it draws a static random image A, passes it
// through a trainable convolutional filter layer to obtain image B, and
// optimizes the filter so the frozen global model's prediction for B
// approaches the uniform distribution Y_D = [1/L, …, 1/L]. The |S| resulting
// images, paired with a per-round random class Ỹ, train the adversarial
// classifier with the distance-regularized loss.
type DFAR struct {
	cfg       DFAConfig
	lossTrace [][]float64
}

var _ fl.Attack = (*DFAR)(nil)

// NewDFAR constructs the attack; the config is validated and defaults are
// filled in.
func NewDFAR(cfg DFAConfig) (*DFAR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DFAR{cfg: cfg}, nil
}

// Name implements fl.Attack.
func (a *DFAR) Name() string {
	if !a.cfg.Trained {
		return "dfa-r-static"
	}
	return "dfa-r"
}

// LossTrace returns the per-round, per-epoch synthesis losses (the
// cross-entropy against Y_D averaged over S), the series plotted in Fig. 7.
func (a *DFAR) LossTrace() [][]float64 {
	out := make([][]float64, len(a.lossTrace))
	for i, r := range a.lossTrace {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// Craft implements fl.Attack.
func (a *DFAR) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	cfg := a.cfg
	frozen, err := frozenModel(ctx)
	if err != nil {
		return nil, err
	}
	images := tensor.New(cfg.SampleCount, cfg.ImgC, cfg.ImgSize, cfg.ImgSize)
	per := cfg.ImgC * cfg.ImgSize * cfg.ImgSize
	uniform := nn.UniformTarget(cfg.Classes)
	epochLoss := make([]float64, cfg.SynthesisEpochs)
	// One arena serves the filter network and the frozen model across all
	// samples; it is recycled at every optimization step.
	pool := tensor.NewPool()
	frozen.SetScratch(pool)

	for s := 0; s < cfg.SampleCount; s++ {
		// Static random dummy image A; the filter layer is the only
		// trainable component (Section III-C keeps A and the global model
		// fixed to minimize the trainable parameter count).
		dummy := tensor.New(1, cfg.ImgC, cfg.ImgSize, cfg.ImgSize)
		dummy.FillUniform(ctx.Rng, -1, 1)
		filter := nn.NewConv2D(ctx.Rng, cfg.ImgC, cfg.ImgC, 3, 1, 1)
		fnet := nn.NewNetwork(filter)
		fnet.SetScratch(pool)
		opt := nn.NewSGD(cfg.SynthesisLR, 0.9)

		if cfg.Trained {
			for e := 0; e < cfg.SynthesisEpochs; e++ {
				pool.Reset()
				b := fnet.Forward(dummy, true)
				logits := frozen.Forward(b, true)
				loss, grad := nn.CrossEntropySoft(logits, uniform)
				db := frozen.Backward(grad)
				frozen.ZeroGrads() // the global model is never updated
				fnet.Backward(db)
				opt.Step(fnet)
				epochLoss[e] += loss
			}
		}
		pool.Reset()
		b := fnet.Forward(dummy, false)
		copy(images.Data[s*per:(s+1)*per], b.Data)
	}
	if cfg.Trained {
		for e := range epochLoss {
			epochLoss[e] /= float64(cfg.SampleCount)
		}
		a.lossTrace = append(a.lossTrace, epochLoss)
	}

	// Step 2: pair S with a per-round random class Ỹ and train the
	// adversarial classifier.
	yTilde := ctx.Rng.Intn(cfg.Classes)
	labels := make([]int, cfg.SampleCount)
	for i := range labels {
		labels[i] = yTilde
	}
	w, err := trainAdversary(ctx, cfg, images, labels)
	if err != nil {
		return nil, err
	}
	return replicate(ctx, w, cfg.PerturbStd), nil
}
