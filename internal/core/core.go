// Package core implements the paper's primary contributions: the data-free
// untargeted attacks DFA-R and DFA-G (Section III), their distance-based
// stealth regularization L_d (Eq. 3), the non-trained ("static") ablation
// variants of Table III, the real-data attack variant of Fig. 8, and the
// REFD reference-dataset defense with its D-score (Section V).
//
// Both DFA variants follow the two-step framework of Section III-B:
//
//  1. Malicious image generation — synthesize a set S of |S| images using
//     only the received global model w(t): DFA-R optimizes a convolutional
//     "filter layer" per image so the global model's prediction approaches
//     the uniform distribution Y_D; DFA-G trains a persistent generator
//     network so its outputs are confidently *not* classified as a fixed
//     random class Ỹ.
//  2. Adversarial classifier training — train a local model from w(t) on
//     (S, Ỹ) with the regularized loss F(w, S) + λ·L_d, where
//     L_d = ‖w − w(t)‖² − ‖w(t) − w(t−1)‖² keeps the update's deviation in
//     line with the global model's own recent movement.
//
// Neither attack reads benign updates or real data, matching the paper's
// threat model (Section III-A).
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/vec"
)

// DFAConfig collects the hyper-parameters shared by the DFA attack family.
type DFAConfig struct {
	// Classes is L, the number of task classes.
	Classes int
	// ImgC and ImgSize describe the task's image shape (channels, side).
	ImgC, ImgSize int
	// SampleCount is |S|, the synthetic set size per round (paper: 50).
	SampleCount int
	// SynthesisEpochs is E, the per-round optimization epochs for the
	// filter layer / generator (paper: 5 for Fashion-MNIST, 10 otherwise).
	SynthesisEpochs int
	// ClassifierEpochs is the adversarial classifier's local epoch count
	// (matches benign clients' single epoch by default).
	ClassifierEpochs int
	// SynthesisLR is the learning rate of the synthesis optimization.
	SynthesisLR float64
	// ClassifierLR is the adversarial classifier's learning rate.
	ClassifierLR float64
	// BatchSize is the classifier-training minibatch size.
	BatchSize int
	// RegLambda weighs the distance-based regularization L_d; 0 disables it
	// (the Table IV ablation).
	RegLambda float64
	// Trained selects the full attack; false freezes the randomly
	// initialized synthesizer (the Table III "Static" ablation).
	Trained bool
	// PerturbStd adds small per-attacker noise to evade Sybil defenses
	// (Section III-A); 0 submits identical updates.
	PerturbStd float64
}

// Validate reports configuration errors and fills defaults.
func (c *DFAConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("core: Classes %d must be >= 2", c.Classes)
	case c.ImgC <= 0 || c.ImgSize <= 0:
		return fmt.Errorf("core: invalid image shape %dx%dx%d", c.ImgC, c.ImgSize, c.ImgSize)
	case c.SampleCount <= 0:
		return errors.New("core: SampleCount must be positive")
	case c.SynthesisEpochs <= 0:
		return errors.New("core: SynthesisEpochs must be positive")
	}
	if c.ClassifierEpochs <= 0 {
		c.ClassifierEpochs = 1
	}
	if c.SynthesisLR <= 0 {
		c.SynthesisLR = 0.01
	}
	if c.ClassifierLR <= 0 {
		c.ClassifierLR = 0.05
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	return nil
}

// trainAdversary performs step 2 of the framework: train a classifier from
// the global weights on the synthetic set with the distance-regularized
// loss, and return its weight vector.
func trainAdversary(ctx *fl.AttackContext, cfg DFAConfig, images *tensor.Tensor, labels []int) ([]float64, error) {
	model := ctx.NewModel(ctx.Rng)
	model.SetScratch(tensor.NewPool())
	if err := model.SetWeightVector(ctx.Global); err != nil {
		return nil, err
	}
	opt := nn.NewSGD(cfg.ClassifierLR, 0)
	n := images.Shape[0]
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for e := 0; e < cfg.ClassifierEpochs; e++ {
		ctx.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			xb, yb := gatherBatch(images, labels, order[start:end])
			model.ResetScratch()
			logits := model.Forward(xb, true)
			_, grad := nn.CrossEntropy(logits, yb)
			model.Backward(grad)
			if cfg.RegLambda > 0 {
				// ∂L_d/∂w = 2(w − w(t)); the second term of Eq. 3 is
				// constant in w and contributes no gradient.
				w := model.WeightVector()
				delta := vec.Sub(w, ctx.Global)
				for i := range delta {
					delta[i] *= 2 * cfg.RegLambda
				}
				if err := model.AddToGrads(delta); err != nil {
					return nil, err
				}
			}
			opt.Step(model)
		}
	}
	return model.WeightVector(), nil
}

// gatherBatch assembles the given sample indices of a [N, C, H, W] tensor
// into a fresh batch tensor plus the matching labels.
func gatherBatch(images *tensor.Tensor, labels []int, idx []int) (*tensor.Tensor, []int) {
	per := images.Len() / images.Shape[0]
	xb := tensor.New(len(idx), images.Shape[1], images.Shape[2], images.Shape[3])
	yb := make([]int, len(idx))
	for i, j := range idx {
		copy(xb.Data[i*per:(i+1)*per], images.Data[j*per:(j+1)*per])
		yb[i] = labels[j]
	}
	return xb, yb
}

// frozenModel loads the global weights into a fresh network used purely for
// forward/backward passes (its own parameters are never stepped).
func frozenModel(ctx *fl.AttackContext) (*nn.Network, error) {
	m := ctx.NewModel(rand.New(rand.NewSource(1)))
	if err := m.SetWeightVector(ctx.Global); err != nil {
		return nil, err
	}
	return m, nil
}

// replicate returns ctx.NumAttackers copies of v with optional Gaussian
// perturbation, mirroring the all-attackers-submit-the-same-update model.
func replicate(ctx *fl.AttackContext, v []float64, perturb float64) [][]float64 {
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		c := vec.Clone(v)
		if perturb > 0 {
			for j := range c {
				c[j] += ctx.Rng.NormFloat64() * perturb
			}
		}
		out[i] = c
	}
	return out
}
