package core

import (
	"errors"

	"repro/internal/dataset"
	"repro/internal/fl"
)

// RealData is the Fig. 8 comparison attack: instead of synthetic images, the
// adversary owns real task images (assigned under the same Dirichlet
// distribution as benign users) and pairs them with the uniformly chosen
// label Ỹ, training the adversarial classifier with the same
// distance-regularized loss as DFA. The paper uses it to show that the
// *synthetic* sets of DFA-R/DFA-G are more effective than real data, so
// acquiring data is usually not worth the overhead for the attacker.
type RealData struct {
	cfg   DFAConfig
	data  *dataset.Dataset
	shard []int
}

var _ fl.Attack = (*RealData)(nil)

// NewRealData constructs the real-data attack over the adversary's shard.
func NewRealData(cfg DFAConfig, data *dataset.Dataset, shard []int) (*RealData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if data == nil || len(shard) == 0 {
		return nil, errors.New("core: real-data attack requires a data shard")
	}
	return &RealData{cfg: cfg, data: data, shard: append([]int(nil), shard...)}, nil
}

// Name implements fl.Attack.
func (*RealData) Name() string { return "real-data" }

// Craft implements fl.Attack.
func (a *RealData) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	idx := a.shard
	if len(idx) > a.cfg.SampleCount {
		idx = idx[:a.cfg.SampleCount]
	}
	images, _ := a.data.Batch(idx)
	yTilde := ctx.Rng.Intn(a.cfg.Classes)
	labels := make([]int, len(idx))
	for i := range labels {
		labels[i] = yTilde
	}
	w, err := trainAdversary(ctx, a.cfg, images, labels)
	if err != nil {
		return nil, err
	}
	return replicate(ctx, w, a.cfg.PerturbStd), nil
}
