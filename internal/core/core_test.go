package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/vec"
)

// testTask bundles a small trained model and its dataset for attack tests.
type testTask struct {
	spec     dataset.Spec
	train    *dataset.Dataset
	test     *dataset.Dataset
	newModel func(rng *rand.Rand) *nn.Network
	global   []float64
}

// newTestTask generates the tiny dataset and pre-trains a model on it so the
// global model carries real signal — DFA's synthesis is guided by the global
// model, so a purely random model would make loss-trend tests vacuous.
func newTestTask(t *testing.T, pretrainEpochs int) *testTask {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 21)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	rng := rand.New(rand.NewSource(77))
	model := newModel(rng)
	opt := nn.NewSGD(0.05, 0.9)
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < pretrainEpochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += 16 {
			end := start + 16
			if end > len(idx) {
				end = len(idx)
			}
			x, labels := train.Batch(idx[start:end])
			nn.TrainBatch(model, opt, x, labels)
		}
	}
	return &testTask{
		spec:     spec,
		train:    train,
		test:     test,
		newModel: newModel,
		global:   model.WeightVector(),
	}
}

func (tt *testTask) ctx(rng *rand.Rand, attackers int) *fl.AttackContext {
	return &fl.AttackContext{
		Round:          0,
		Global:         tt.global,
		PrevGlobal:     tt.global,
		NumAttackers:   attackers,
		NumSelected:    10,
		TotalClients:   100,
		TotalAttackers: 20,
		NewModel:       tt.newModel,
		Rng:            rng,
	}
}

func (tt *testTask) dfaConfig(trained bool) DFAConfig {
	return DFAConfig{
		Classes:         tt.spec.Classes,
		ImgC:            tt.spec.Channels,
		ImgSize:         tt.spec.Size,
		SampleCount:     8,
		SynthesisEpochs: 5,
		SynthesisLR:     0.01,
		ClassifierLR:    0.05,
		BatchSize:       4,
		RegLambda:       1,
		Trained:         trained,
	}
}

func TestDFAConfigValidate(t *testing.T) {
	bad := []DFAConfig{
		{Classes: 1, ImgC: 1, ImgSize: 8, SampleCount: 4, SynthesisEpochs: 1},
		{Classes: 10, ImgC: 0, ImgSize: 8, SampleCount: 4, SynthesisEpochs: 1},
		{Classes: 10, ImgC: 1, ImgSize: 8, SampleCount: 0, SynthesisEpochs: 1},
		{Classes: 10, ImgC: 1, ImgSize: 8, SampleCount: 4, SynthesisEpochs: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	good := DFAConfig{Classes: 10, ImgC: 1, ImgSize: 8, SampleCount: 4, SynthesisEpochs: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.ClassifierEpochs != 1 || good.BatchSize != 16 || good.SynthesisLR <= 0 || good.ClassifierLR <= 0 {
		t.Fatalf("defaults not filled: %+v", good)
	}
}

func TestDFARCraftShapeAndEffect(t *testing.T) {
	tt := newTestTask(t, 4)
	a, err := NewDFAR(tt.dfaConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "dfa-r" {
		t.Fatalf("Name = %q", a.Name())
	}
	out, err := a.Craft(tt.ctx(rand.New(rand.NewSource(1)), 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d vectors, want 3", len(out))
	}
	for _, v := range out {
		if len(v) != len(tt.global) {
			t.Fatalf("vector length %d, want %d", len(v), len(tt.global))
		}
	}
	if vec.L2Dist(out[0], tt.global) == 0 {
		t.Fatal("DFA-R update should differ from the global model")
	}
}

func TestDFARSynthesisLossDecreases(t *testing.T) {
	tt := newTestTask(t, 6)
	a, err := NewDFAR(tt.dfaConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Craft(tt.ctx(rand.New(rand.NewSource(2)), 1)); err != nil {
		t.Fatal(err)
	}
	trace := a.LossTrace()
	if len(trace) != 1 {
		t.Fatalf("expected 1 round of losses, got %d", len(trace))
	}
	epochs := trace[0]
	if len(epochs) != 5 {
		t.Fatalf("expected 5 epoch losses, got %d", len(epochs))
	}
	if epochs[len(epochs)-1] >= epochs[0] {
		t.Fatalf("DFA-R synthesis loss should decrease: first %.4f, last %.4f", epochs[0], epochs[len(epochs)-1])
	}
	// The optimum of the objective is ln(L); the loss must stay above it.
	if epochs[len(epochs)-1] < math.Log(float64(tt.spec.Classes))-1e-6 {
		t.Fatalf("loss %v below theoretical optimum ln(L)=%v", epochs[len(epochs)-1], math.Log(float64(tt.spec.Classes)))
	}
}

func TestDFARStaticVariant(t *testing.T) {
	tt := newTestTask(t, 2)
	a, err := NewDFAR(tt.dfaConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "dfa-r-static" {
		t.Fatalf("Name = %q", a.Name())
	}
	out, err := a.Craft(tt.ctx(rand.New(rand.NewSource(3)), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d vectors", len(out))
	}
	if len(a.LossTrace()) != 0 {
		t.Fatal("static variant must not record synthesis losses")
	}
}

func TestDFAGCraftAndPersistentState(t *testing.T) {
	tt := newTestTask(t, 4)
	a, err := NewDFAG(tt.dfaConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "dfa-g" {
		t.Fatalf("Name = %q", a.Name())
	}
	if a.TargetClass() != -1 {
		t.Fatal("target class should be unset before the first round")
	}
	rng := rand.New(rand.NewSource(4))
	out, err := a.Craft(tt.ctx(rng, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d vectors", len(out))
	}
	y1 := a.TargetClass()
	if y1 < 0 || y1 >= tt.spec.Classes {
		t.Fatalf("target class %d out of range", y1)
	}
	// Second round: Ỹ never changes through the training procedure.
	if _, err := a.Craft(tt.ctx(rng, 2)); err != nil {
		t.Fatal(err)
	}
	if a.TargetClass() != y1 {
		t.Fatal("DFA-G target class must stay fixed across rounds")
	}
	if len(a.LossTrace()) != 2 {
		t.Fatalf("expected 2 rounds of losses, got %d", len(a.LossTrace()))
	}
}

func TestDFAGMaximizesObjective(t *testing.T) {
	tt := newTestTask(t, 6)
	cfg := tt.dfaConfig(true)
	cfg.SynthesisEpochs = 8
	a, err := NewDFAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Craft(tt.ctx(rand.New(rand.NewSource(5)), 1)); err != nil {
		t.Fatal(err)
	}
	epochs := a.LossTrace()[0]
	if epochs[len(epochs)-1] <= epochs[0] {
		t.Fatalf("DFA-G objective should increase (maximization): first %.4f, last %.4f",
			epochs[0], epochs[len(epochs)-1])
	}
}

// TestRegularizationImprovesStealth pins the purpose of Eq. 3: with L_d the
// adversarial update stays closer to the global model than without it.
func TestRegularizationImprovesStealth(t *testing.T) {
	tt := newTestTask(t, 4)
	dist := func(lambda float64) float64 {
		cfg := tt.dfaConfig(true)
		cfg.RegLambda = lambda
		a, err := NewDFAR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := a.Craft(tt.ctx(rand.New(rand.NewSource(6)), 1))
		if err != nil {
			t.Fatal(err)
		}
		return vec.L2Dist(out[0], tt.global)
	}
	with := dist(1)
	without := dist(0)
	if with >= without {
		t.Fatalf("L_d should shrink the deviation: with=%.5f without=%.5f", with, without)
	}
}

func TestRealDataAttack(t *testing.T) {
	tt := newTestTask(t, 2)
	cfg := tt.dfaConfig(true)
	shard := []int{0, 1, 2, 3, 4, 5}
	a, err := NewRealData(cfg, tt.train, shard)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "real-data" {
		t.Fatalf("Name = %q", a.Name())
	}
	out, err := a.Craft(tt.ctx(rand.New(rand.NewSource(7)), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || vec.L2Dist(out[0], tt.global) == 0 {
		t.Fatal("real-data attack should produce modified updates")
	}
	if _, err := NewRealData(cfg, nil, nil); err == nil {
		t.Fatal("expected error without data")
	}
}

func TestBalancedReference(t *testing.T) {
	_, test := dataset.Generate(dataset.TinySpec(), 9)
	ref, err := BalancedReference(test, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := ref.ClassCounts()
	for c, n := range counts {
		if n != 5 {
			t.Fatalf("class %d has %d reference samples, want 5", c, n)
		}
	}
	if _, err := BalancedReference(test, 10000); err == nil {
		t.Fatal("expected error for oversized per-class request")
	}
	if _, err := BalancedReference(test, 0); err == nil {
		t.Fatal("expected error for zero per-class request")
	}
}

func TestREFDScoresAndAggregation(t *testing.T) {
	tt := newTestTask(t, 6)
	ref, err := BalancedReference(tt.test, 8)
	if err != nil {
		t.Fatal(err)
	}
	refd, err := NewREFD(ref, tt.newModel, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if refd.Name() != "refd" {
		t.Fatalf("Name = %q", refd.Name())
	}

	// Honest update: the trained global model itself.
	honest := tt.global

	// Biased update: fine-tune the global model to predict class 0 for
	// everything (the DFA-G failure signature).
	biasedModel := tt.newModel(rand.New(rand.NewSource(8)))
	if err := biasedModel.SetWeightVector(tt.global); err != nil {
		t.Fatal(err)
	}
	opt := nn.NewSGD(0.1, 0)
	for e := 0; e < 20; e++ {
		x, labels := tt.train.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
		for i := range labels {
			labels[i] = 0
		}
		nn.TrainBatch(biasedModel, opt, x, labels)
	}
	biased := biasedModel.WeightVector()

	bh, vh, dh, err := refd.DScore(honest)
	if err != nil {
		t.Fatal(err)
	}
	bb, _, db, err := refd.DScore(biased)
	if err != nil {
		t.Fatal(err)
	}
	if bb >= bh {
		t.Fatalf("biased balance %v should be below honest %v", bb, bh)
	}
	if db >= dh {
		t.Fatalf("biased D-score %v should be below honest %v", db, dh)
	}
	if vh <= 0 || vh > 1 {
		t.Fatalf("confidence %v out of range", vh)
	}

	// Aggregation must reject the biased update (rejectX=1).
	updates := []fl.Update{
		{ClientID: 0, Weights: honest, NumSamples: 10},
		{ClientID: 1, Weights: vec.Clone(honest), NumSamples: 10},
		{ClientID: 2, Weights: biased, NumSamples: 10, Malicious: true},
	}
	_, sel, err := refd.Aggregate(nil, updates)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 2 {
		t.Fatalf("selected %d updates, want 2", len(sel.Accepted))
	}
	for _, idx := range sel.Accepted {
		if updates[idx].Malicious {
			t.Fatal("REFD failed to reject the biased update")
		}
	}
	if len(sel.Scores) != len(updates) || sel.ScoreName != "dscore" {
		t.Fatalf("REFD should report D-scores, got %v (%q)", sel.Scores, sel.ScoreName)
	}
}

func TestREFDConstructorErrors(t *testing.T) {
	_, test := dataset.Generate(dataset.TinySpec(), 9)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, 1, 8, 4)
	}
	if _, err := NewREFD(nil, newModel, 1, 1); err == nil {
		t.Fatal("expected error for nil reference")
	}
	if _, err := NewREFD(test, newModel, 0, 1); err == nil {
		t.Fatal("expected error for non-positive alpha")
	}
	if _, err := NewREFD(test, newModel, 1, -1); err == nil {
		t.Fatal("expected error for negative rejectX")
	}
}

func TestREFDKeepsAtLeastOneUpdate(t *testing.T) {
	tt := newTestTask(t, 2)
	ref, err := BalancedReference(tt.test, 4)
	if err != nil {
		t.Fatal(err)
	}
	refd, err := NewREFD(ref, tt.newModel, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	updates := []fl.Update{
		{ClientID: 0, Weights: tt.global, NumSamples: 5},
		{ClientID: 1, Weights: vec.Clone(tt.global), NumSamples: 5},
	}
	_, sel, err := refd.Aggregate(nil, updates)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Accepted) != 1 {
		t.Fatalf("selected %d, want 1 (rejectX clamped)", len(sel.Accepted))
	}
}

func TestREFDEmptyUpdates(t *testing.T) {
	tt := newTestTask(t, 1)
	ref, err := BalancedReference(tt.test, 4)
	if err != nil {
		t.Fatal(err)
	}
	refd, err := NewREFD(ref, tt.newModel, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := refd.Aggregate(nil, nil); err == nil {
		t.Fatal("expected error for empty updates")
	}
}

func TestPerturbStdProducesDistinctUpdates(t *testing.T) {
	tt := newTestTask(t, 2)
	cfg := tt.dfaConfig(true)
	cfg.PerturbStd = 1e-3
	a, err := NewDFAR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Craft(tt.ctx(rand.New(rand.NewSource(9)), 3))
	if err != nil {
		t.Fatal(err)
	}
	if vec.L2Dist(out[0], out[1]) == 0 {
		t.Fatal("perturbed attacker copies should differ")
	}
}
