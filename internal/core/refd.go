package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/vec"
)

// REFD is the paper's defense against data-free attacks (Section V): the
// server runs every received model on a small balanced reference dataset
// D_r and computes a D-score from two signals —
//
//   - the balance value B (Eq. 6): the inverse standard deviation of the
//     predicted-label histogram, low when the update biases predictions
//     toward one class (typical of DFA-G, LIE, Min-Max);
//   - the confidence value V (Eq. 7): the mean maximum class probability,
//     low when the update destroys prediction confidence (typical of DFA-R
//     and Fang).
//
// The two combine F_β-style (Eq. 8) and the X lowest-scoring updates are
// rejected; the rest are FedAvg-aggregated.
type REFD struct {
	ref      *dataset.Dataset
	newModel func(rng *rand.Rand) *nn.Network
	alpha    float64
	rejectX  int
	scratch  *nn.Network
	// helpers are the persistent parallel scorers of signalsAll, each with
	// its own scratch model and arena reused across rounds.
	helpers []*REFD
}

var _ fl.Aggregator = (*REFD)(nil)

// NewREFD builds the defense. ref must be a labelled reference set with a
// balanced class distribution (see BalancedReference); alpha weighs B
// against V (the paper uses 1); rejectX is the number of updates discarded
// per round (the paper uses 2, the server's assumed attacker count).
func NewREFD(ref *dataset.Dataset, newModel func(rng *rand.Rand) *nn.Network, alpha float64, rejectX int) (*REFD, error) {
	if ref == nil || ref.Len() == 0 {
		return nil, errors.New("core: REFD requires a non-empty reference dataset")
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("core: REFD alpha %v must be positive", alpha)
	}
	if rejectX < 0 {
		return nil, fmt.Errorf("core: REFD rejectX %d must be non-negative", rejectX)
	}
	return &REFD{ref: ref, newModel: newModel, alpha: alpha, rejectX: rejectX}, nil
}

// Name implements fl.Aggregator.
func (*REFD) Name() string { return "refd" }

// DScore computes the balance value, confidence value and combined D-score
// of a model given its weight vector, by inference over the reference set.
func (r *REFD) DScore(weights []float64) (b, v, d float64, err error) {
	b, v, err = r.signals(weights)
	if err != nil {
		return 0, 0, 0, err
	}
	return b, v, combineD(b, v, r.alpha), nil
}

// signals runs reference-set inference for one weight vector and returns
// the balance value B (Eq. 6) and confidence value V (Eq. 7).
func (r *REFD) signals(weights []float64) (b, v float64, err error) {
	if r.scratch == nil {
		r.scratch = r.newModel(rand.New(rand.NewSource(1)))
		r.scratch.SetScratch(tensor.NewPool())
	}
	if err := r.scratch.SetWeightVector(weights); err != nil {
		return 0, 0, err
	}
	counts := make([]float64, r.ref.Classes)
	confSum := 0.0
	n := r.ref.Len()
	const batch = 64
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _ := r.ref.Batch(idx)
		r.scratch.ResetScratch()
		probs := nn.Softmax(r.scratch.Forward(x, false))
		classes := probs.Shape[1]
		for bi := 0; bi < probs.Shape[0]; bi++ {
			row := probs.Data[bi*classes : (bi+1)*classes]
			best := 0
			for j, p := range row {
				if p > row[best] {
					best = j
				}
			}
			counts[best]++
			confSum += row[best]
		}
	}
	// Balance value (Eq. 6): inverse std of the label histogram; a
	// perfectly balanced histogram has std 0 and is assigned B = 1 by the
	// paper's case split.
	_, std := vec.MeanStdScalar(counts)
	if std == 0 {
		b = 1
	} else {
		b = 1 / std
	}
	// Confidence value (Eq. 7).
	v = confSum / float64(n)
	return b, v, nil
}

// combineD folds the two signals into the D-score (Eq. 8).
func combineD(b, v, alpha float64) float64 {
	if b == 0 && v == 0 {
		return 0
	}
	a2 := alpha * alpha
	return (1 + a2) * b * v / (a2*b + v)
}

// signalsAll computes the (B, V) signals of every update, spreading the
// reference-set inference over the kernel worker pool: each worker scores
// with its own scratch model and arena, so no layer state is shared. Both
// REFD and AdaptiveREFD aggregate through this one scoring path.
func (r *REFD) signalsAll(updates []fl.Update) (bs, vs []float64, err error) {
	bs = make([]float64, len(updates))
	vs = make([]float64, len(updates))
	workers := tensor.Workers()
	if workers > len(updates) {
		workers = len(updates)
	}
	if workers <= 1 {
		for i, u := range updates {
			bs[i], vs[i], err = r.signals(u.Weights)
			if err != nil {
				return nil, nil, err
			}
		}
		return bs, vs, nil
	}
	// Workers drain a shared counter within the global slot budget, keeping
	// the total compute goroutines within the -threads pin. Helper scorers
	// (with their scratch models and arenas) persist on the receiver, so
	// repeated rounds reuse them like the simulation's training workers.
	for len(r.helpers) < workers-1 {
		r.helpers = append(r.helpers, &REFD{ref: r.ref, newModel: r.newModel, alpha: r.alpha, rejectX: r.rejectX})
	}
	errs := make([]error, len(updates))
	var next atomic.Int64
	tensor.FanOut(workers, func(w int) {
		worker := r
		if w > 0 {
			worker = r.helpers[w-1]
		}
		for {
			i := int(next.Add(1)) - 1
			if i >= len(updates) {
				return
			}
			bs[i], vs[i], errs[i] = worker.signals(updates[i].Weights)
		}
	})
	for _, werr := range errs {
		if werr != nil {
			return nil, nil, werr
		}
	}
	return bs, vs, nil
}

// errRefdNoUpdates is shared by REFD and AdaptiveREFD.
var errRefdNoUpdates = errors.New("core: REFD has no updates to aggregate")

// Aggregate implements fl.Aggregator. The Selection carries the per-update
// D-scores (higher = more benign), the ROC input of the forensics
// subsystem. Each update's score is a pure function of its weights and the
// reference set — worker scheduling in signalsAll never reorders or
// perturbs the vector, so audit journals are bit-reproducible at any
// tensor worker count.
func (r *REFD) Aggregate(_ []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	if len(updates) == 0 {
		return nil, fl.Selection{}, errRefdNoUpdates
	}
	scores, err := r.scoreAll(updates)
	if err != nil {
		return nil, fl.Selection{}, err
	}
	order := make([]int, len(updates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	reject := r.rejectX
	if reject >= len(updates) {
		reject = len(updates) - 1 // always keep at least one update
	}
	selected := append([]int(nil), order[reject:]...)
	sort.Ints(selected)

	vs := make([][]float64, len(selected))
	weights := make([]float64, len(selected))
	for i, idx := range selected {
		vs[i] = updates[idx].Weights
		n := updates[idx].NumSamples
		if n <= 0 {
			n = 1
		}
		weights[i] = float64(n)
	}
	sel := fl.Selection{Accepted: selected, Scores: scores, ScoreName: "dscore"}
	return vec.WeightedMean(vs, weights), sel, nil
}

// scoreAll computes the D-score of every update via the shared parallel
// scoring path.
func (r *REFD) scoreAll(updates []fl.Update) ([]float64, error) {
	bs, vs, err := r.signalsAll(updates)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(updates))
	for i := range scores {
		scores[i] = combineD(bs[i], vs[i], r.alpha)
	}
	return scores, nil
}

// BalancedReference extracts a class-balanced labelled subset of perClass
// samples per class from ds, the reference-set shape REFD assumes ("the
// quantity of each class label is assumed to be balanced"). It returns an
// error when some class has fewer than perClass samples.
func BalancedReference(ds *dataset.Dataset, perClass int) (*dataset.Dataset, error) {
	if perClass <= 0 {
		return nil, fmt.Errorf("core: perClass %d must be positive", perClass)
	}
	var idx []int
	taken := make([]int, ds.Classes)
	for i, l := range ds.Labels {
		if taken[l] < perClass {
			idx = append(idx, i)
			taken[l]++
		}
	}
	for c, n := range taken {
		if n < perClass {
			return nil, fmt.Errorf("core: class %d has only %d samples, want %d", c, n, perClass)
		}
	}
	return ds.Subset(idx), nil
}
