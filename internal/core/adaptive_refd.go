package core

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/vec"
)

// AdaptiveREFD implements the future-work direction the paper sketches for
// REFD's α hyper-parameter ("It can also be adaptive and learned over
// epochs"): instead of fixing the balance-vs-confidence trade-off, the
// server re-estimates α every round from which of the two signals currently
// separates the update population more sharply.
//
// Intuition: when the round's updates disagree mostly in their *balance*
// values (a DFA-G/LIE-style attack biasing predictions), α should grow so B
// dominates the D-score; when they disagree mostly in *confidence* (a
// DFA-R/Fang-style attack), α should shrink so V dominates. The dispersion
// of each signal is measured by its coefficient of variation over the
// round's updates.
type AdaptiveREFD struct {
	inner *REFD
	// MinAlpha and MaxAlpha clamp the adapted value.
	MinAlpha, MaxAlpha float64
	// lastAlpha records the α used in the most recent round.
	lastAlpha float64
}

var _ fl.Aggregator = (*AdaptiveREFD)(nil)

// NewAdaptiveREFD builds the adaptive variant; parameters mirror NewREFD
// except that α is learned per round within [minAlpha, maxAlpha].
func NewAdaptiveREFD(ref *dataset.Dataset, newModel func(rng *rand.Rand) *nn.Network, rejectX int, minAlpha, maxAlpha float64) (*AdaptiveREFD, error) {
	inner, err := NewREFD(ref, newModel, 1, rejectX)
	if err != nil {
		return nil, err
	}
	if minAlpha <= 0 || maxAlpha < minAlpha {
		minAlpha, maxAlpha = 0.25, 4
	}
	return &AdaptiveREFD{inner: inner, MinAlpha: minAlpha, MaxAlpha: maxAlpha, lastAlpha: 1}, nil
}

// Name implements fl.Aggregator.
func (*AdaptiveREFD) Name() string { return "refd-adaptive" }

// Alpha returns the α used in the most recent round (1 before any round).
func (a *AdaptiveREFD) Alpha() float64 { return a.lastAlpha }

// Aggregate implements fl.Aggregator. Like REFD it reports the per-update
// D-scores (under the adapted α) as Selection.Scores.
func (a *AdaptiveREFD) Aggregate(global []float64, updates []fl.Update) ([]float64, fl.Selection, error) {
	if len(updates) == 0 {
		return nil, fl.Selection{}, errRefdNoUpdates
	}
	// First pass: collect both signals for every update, through the same
	// parallel scoring path REFD aggregates with.
	bs, vs, err := a.inner.signalsAll(updates)
	if err != nil {
		return nil, fl.Selection{}, err
	}
	// Adapt α from the relative dispersion (coefficient of variation) of
	// the two signals across this round's updates.
	cvB := coeffVar(bs)
	cvV := coeffVar(vs)
	alpha := a.lastAlpha
	switch {
	case cvB == 0 && cvV == 0:
		alpha = 1
	case cvV == 0:
		alpha = a.MaxAlpha
	case cvB == 0:
		alpha = a.MinAlpha
	default:
		alpha = clampF(math.Sqrt(cvB/cvV), a.MinAlpha, a.MaxAlpha)
	}
	a.lastAlpha = alpha

	// Second pass: score with the adapted α and reject the X lowest,
	// mirroring REFD.Aggregate.
	scores := make([]float64, len(updates))
	for i := range updates {
		scores[i] = combineD(bs[i], vs[i], alpha)
	}
	order := make([]int, len(updates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return scores[order[x]] < scores[order[y]] })
	reject := a.inner.rejectX
	if reject >= len(updates) {
		reject = len(updates) - 1
	}
	selected := append([]int(nil), order[reject:]...)
	sort.Ints(selected)

	chosen := make([][]float64, len(selected))
	weights := make([]float64, len(selected))
	for i, idx := range selected {
		chosen[i] = updates[idx].Weights
		n := updates[idx].NumSamples
		if n <= 0 {
			n = 1
		}
		weights[i] = float64(n)
	}
	sel := fl.Selection{Accepted: selected, Scores: scores, ScoreName: "dscore"}
	return vec.WeightedMean(chosen, weights), sel, nil
}

func coeffVar(xs []float64) float64 {
	mean, std := vec.MeanStdScalar(xs)
	if mean == 0 {
		return 0
	}
	return std / math.Abs(mean)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
