package core

import (
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DFAG is the generator variant of the data-free attack (Section III-D). A
// lightweight transposed-convolution generator G, trained interactively
// against the frozen global model across rounds, maps a fixed latent noise
// block Z to synthetic images that are confidently *not* of the fixed random
// class Ỹ (by maximizing the cross-entropy of the global model's prediction
// against Ỹ). The images, labelled Ỹ, then train the adversarial classifier
// — implicitly combining synthesis with label flipping.
type DFAG struct {
	cfg DFAConfig

	// Persistent adversary state: the generator and its fixed latent input
	// survive across rounds ("we use the same random seed over multiple
	// rounds so that the trained generator is able to consistently produce
	// synthetic data different from class Ỹ").
	gen         *nn.Network
	genOpt      *nn.SGD
	latent      *tensor.Tensor
	targetClass int

	lossTrace [][]float64
}

var _ fl.Attack = (*DFAG)(nil)

// NewDFAG constructs the attack; the config is validated and defaults are
// filled in.
func NewDFAG(cfg DFAConfig) (*DFAG, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DFAG{cfg: cfg, targetClass: -1}, nil
}

// Name implements fl.Attack.
func (a *DFAG) Name() string {
	if !a.cfg.Trained {
		return "dfa-g-static"
	}
	return "dfa-g"
}

// TargetClass returns the fixed flip class Ỹ, or −1 before the first round.
func (a *DFAG) TargetClass() int { return a.targetClass }

// LossTrace returns the per-round, per-epoch generator objective (the
// cross-entropy against Ỹ, which DFA-G *maximizes*), the series plotted in
// Fig. 7.
func (a *DFAG) LossTrace() [][]float64 {
	out := make([][]float64, len(a.lossTrace))
	for i, r := range a.lossTrace {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

func (a *DFAG) ensureState(ctx *fl.AttackContext) {
	if a.gen != nil {
		return
	}
	a.gen = nn.NewGenerator(ctx.Rng, a.cfg.ImgC, a.cfg.ImgSize)
	a.gen.SetScratch(tensor.NewPool())
	a.genOpt = nn.NewSGD(a.cfg.SynthesisLR, 0.9)
	c, h, w := nn.GeneratorLatentSize(a.cfg.ImgSize)
	a.latent = tensor.New(a.cfg.SampleCount, c, h, w)
	a.latent.FillNormal(ctx.Rng, 0, 1)
	a.targetClass = ctx.Rng.Intn(a.cfg.Classes)
}

// Craft implements fl.Attack.
func (a *DFAG) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	cfg := a.cfg
	a.ensureState(ctx)
	frozen, err := frozenModel(ctx)
	if err != nil {
		return nil, err
	}
	labels := make([]int, cfg.SampleCount)
	for i := range labels {
		labels[i] = a.targetClass
	}

	// The frozen model shares the generator's arena: both run in this
	// goroutine and their activations die together at each epoch reset.
	frozen.SetScratch(a.gen.Scratch())

	if cfg.Trained {
		epochLoss := make([]float64, cfg.SynthesisEpochs)
		for e := 0; e < cfg.SynthesisEpochs; e++ {
			a.gen.ResetScratch()
			s := a.gen.Forward(a.latent, true)
			logits := frozen.Forward(s, true)
			loss, grad := nn.CrossEntropy(logits, labels)
			// maxθ F(w(t), (S, Ỹ)): gradient *ascent* on the cross-entropy,
			// steering generated images away from class Ỹ.
			grad.ScaleInPlace(-1)
			ds := frozen.Backward(grad)
			frozen.ZeroGrads()
			a.gen.Backward(ds)
			a.genOpt.Step(a.gen)
			epochLoss[e] = loss
		}
		a.lossTrace = append(a.lossTrace, epochLoss)
	}

	a.gen.ResetScratch()
	images := a.gen.Forward(a.latent, false)
	w, err := trainAdversary(ctx, cfg, images, labels)
	if err != nil {
		return nil, err
	}
	return replicate(ctx, w, cfg.PerturbStd), nil
}
