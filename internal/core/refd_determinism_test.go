package core

// Audit-reproducibility satellite: REFD's exported score vector (the
// forensics ROC input) must be bit-identical at any tensor worker count —
// worker scheduling fans the reference-set inference out, but each
// update's (B, V) signals are a pure function of its weights.

import (
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/vec"
)

func refdScoreFixture(t *testing.T) (*testTask, []fl.Update) {
	t.Helper()
	tt := newTestTask(t, 2)
	rng := rand.New(rand.NewSource(5))
	var updates []fl.Update
	for i := 0; i < 8; i++ {
		w := vec.Clone(tt.global)
		for j := range w {
			w[j] += rng.NormFloat64() * 0.02
		}
		updates = append(updates, fl.Update{ClientID: i, Weights: w, NumSamples: 10})
	}
	return tt, updates
}

func refdScores(t *testing.T, tt *testTask, updates []fl.Update, workers int, adaptive bool) []float64 {
	t.Helper()
	prev := tensor.Workers()
	defer tensor.SetWorkers(prev)
	tensor.SetWorkers(workers)
	ref, err := BalancedReference(tt.test, 4)
	if err != nil {
		t.Fatal(err)
	}
	var agg fl.Aggregator
	if adaptive {
		agg, err = NewAdaptiveREFD(ref, tt.newModel, 2, 0.25, 4)
	} else {
		agg, err = NewREFD(ref, tt.newModel, 1, 2)
	}
	if err != nil {
		t.Fatal(err)
	}
	_, sel, err := agg.Aggregate(nil, updates)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Scores) != len(updates) || sel.ScoreName != "dscore" {
		t.Fatalf("missing D-scores: %d (%q)", len(sel.Scores), sel.ScoreName)
	}
	return sel.Scores
}

func TestREFDScoresWorkerInvariant(t *testing.T) {
	tt, updates := refdScoreFixture(t)
	for _, adaptive := range []bool{false, true} {
		one := refdScores(t, tt, updates, 1, adaptive)
		eight := refdScores(t, tt, updates, 8, adaptive)
		for i := range one {
			if one[i] != eight[i] {
				t.Fatalf("adaptive=%v: score %d differs across worker counts: %v vs %v",
					adaptive, i, one[i], eight[i])
			}
		}
	}
}
