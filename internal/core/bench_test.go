package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
)

func benchTask(b *testing.B) (*fl.AttackContext, DFAConfig, *dataset.Dataset) {
	b.Helper()
	spec := dataset.TinySpec()
	_, test := dataset.Generate(spec, 1)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	global := newModel(rand.New(rand.NewSource(2))).WeightVector()
	ctx := &fl.AttackContext{
		Global:       global,
		PrevGlobal:   global,
		NumAttackers: 2,
		NumSelected:  10,
		NewModel:     newModel,
		Rng:          rand.New(rand.NewSource(3)),
	}
	cfg := DFAConfig{
		Classes:         spec.Classes,
		ImgC:            spec.Channels,
		ImgSize:         spec.Size,
		SampleCount:     8,
		SynthesisEpochs: 3,
		Trained:         true,
	}
	return ctx, cfg, test
}

// BenchmarkDFARound measures one full DFA-R round: |S| filter-layer
// optimizations plus the adversarial classifier training.
func BenchmarkDFARound(b *testing.B) {
	ctx, cfg, _ := benchTask(b)
	a, err := NewDFAR(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Craft(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDFAGRound measures one full DFA-G round: generator training plus
// the adversarial classifier training.
func BenchmarkDFAGRound(b *testing.B) {
	ctx, cfg, _ := benchTask(b)
	a, err := NewDFAG(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Craft(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkREFDScore measures one D-score evaluation (inference of one
// client model over the reference set), the per-update cost of the defense.
func BenchmarkREFDScore(b *testing.B) {
	ctx, _, test := benchTask(b)
	ref, err := BalancedReference(test, 8)
	if err != nil {
		b.Fatal(err)
	}
	refd, err := NewREFD(ref, ctx.NewModel, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := refd.DScore(ctx.Global); err != nil {
			b.Fatal(err)
		}
	}
}
