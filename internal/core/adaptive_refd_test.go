package core

import (
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/vec"
)

func TestAdaptiveREFDConstructor(t *testing.T) {
	tt := newTestTask(t, 1)
	ref, err := BalancedReference(tt.test, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptiveREFD(ref, tt.newModel, 1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "refd-adaptive" {
		t.Fatalf("Name = %q", a.Name())
	}
	if a.Alpha() != 1 {
		t.Fatalf("initial alpha = %v, want 1", a.Alpha())
	}
	// Invalid bounds fall back to the defaults.
	b, err := NewAdaptiveREFD(ref, tt.newModel, 1, -1, -2)
	if err != nil {
		t.Fatal(err)
	}
	if b.MinAlpha != 0.25 || b.MaxAlpha != 4 {
		t.Fatalf("default bounds not applied: %v..%v", b.MinAlpha, b.MaxAlpha)
	}
	if _, err := NewAdaptiveREFD(nil, tt.newModel, 1, 0.5, 2); err == nil {
		t.Fatal("expected error for nil reference")
	}
}

func TestAdaptiveREFDRejectsBiasedUpdate(t *testing.T) {
	tt := newTestTask(t, 6)
	ref, err := BalancedReference(tt.test, 8)
	if err != nil {
		t.Fatal(err)
	}
	refd, err := NewAdaptiveREFD(ref, tt.newModel, 1, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}

	biasedModel := tt.newModel(rand.New(rand.NewSource(1))).Clone()
	if err := biasedModel.SetWeightVector(tt.global); err != nil {
		t.Fatal(err)
	}
	opt := nn.NewSGD(0.1, 0)
	for e := 0; e < 20; e++ {
		x, labels := tt.train.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
		for i := range labels {
			labels[i] = 0
		}
		nn.TrainBatch(biasedModel, opt, x, labels)
	}

	updates := []fl.Update{
		{ClientID: 0, Weights: tt.global, NumSamples: 10},
		{ClientID: 1, Weights: vec.Clone(tt.global), NumSamples: 10},
		{ClientID: 2, Weights: biasedModel.WeightVector(), NumSamples: 10, Malicious: true},
	}
	_, sel, err := refd.Aggregate(nil, updates)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range sel.Accepted {
		if updates[idx].Malicious {
			t.Fatal("adaptive REFD failed to reject the biased update")
		}
	}
	if len(sel.Scores) != len(updates) || sel.ScoreName != "dscore" {
		t.Fatalf("adaptive REFD should report D-scores, got %v (%q)", sel.Scores, sel.ScoreName)
	}
	// A biased attacker spreads the balance values, so α should move above
	// its initial 1 (B-dominated round) — or at minimum have been adapted.
	if refd.Alpha() == 1 {
		t.Log("alpha stayed at 1 (acceptable when dispersions tie)")
	}
	if refd.Alpha() < refd.MinAlpha || refd.Alpha() > refd.MaxAlpha {
		t.Fatalf("alpha %v escaped [%v, %v]", refd.Alpha(), refd.MinAlpha, refd.MaxAlpha)
	}
}

func TestAdaptiveREFDEmptyUpdates(t *testing.T) {
	tt := newTestTask(t, 1)
	ref, err := BalancedReference(tt.test, 4)
	if err != nil {
		t.Fatal(err)
	}
	refd, err := NewAdaptiveREFD(ref, tt.newModel, 1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := refd.Aggregate(nil, nil); err == nil {
		t.Fatal("expected error for empty updates")
	}
}

func TestCoeffVar(t *testing.T) {
	if got := coeffVar([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("coeffVar of constants = %v, want 0", got)
	}
	if got := coeffVar([]float64{0, 0}); got != 0 {
		t.Fatalf("coeffVar of zeros = %v, want 0", got)
	}
	if got := coeffVar([]float64{1, 3}); got <= 0 {
		t.Fatalf("coeffVar of spread values = %v, want > 0", got)
	}
}

func TestClampF(t *testing.T) {
	if clampF(5, 1, 3) != 3 || clampF(0, 1, 3) != 1 || clampF(2, 1, 3) != 2 {
		t.Fatal("clampF wrong")
	}
}
