//go:build !unix

package persist

import (
	"fmt"
	"os"
	"time"
)

// lockJournal guards the journal with an exclusive sidecar lock file on
// platforms without flock semantics. Unlike flock, the sidecar survives a
// crash: a stale lock makes the next open fail loudly (naming the file to
// delete) rather than risk two writers silently corrupting the store.
// Contention is reported as ErrLeaseHeld so callers can back off instead of
// treating it as corruption.
func lockJournal(path string, _ *os.File) (func(), error) {
	lockPath := path + ".lock"
	f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w: lock file %s exists (delete it if its owner crashed)", ErrLeaseHeld, lockPath)
		}
		return nil, fmt.Errorf("lock file %s: %w", lockPath, err)
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	_ = f.Close()
	return func() { _ = os.Remove(lockPath) }, nil
}

// flockFile emulates the shared journal's short-lived advisory lock with a
// spin on an exclusive sidecar. Shared and exclusive collapse to the same
// exclusive sidecar (no reader/writer distinction without flock); a stale
// sidecar from a crashed worker is waited out rather than repaired — the
// portable fallback trades liveness under crashes for safety.
func flockFile(_ *os.File, path string, _ bool) (func(), error) {
	lockPath := path + ".oplock"
	for {
		f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			_ = f.Close()
			return func() { _ = os.Remove(lockPath) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("persist: shared journal lock %s: %w", lockPath, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
