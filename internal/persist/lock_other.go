//go:build !unix

package persist

import (
	"fmt"
	"os"
)

// lockJournal guards the journal with an exclusive sidecar lock file on
// platforms without flock semantics. Unlike flock, the sidecar survives a
// crash: a stale lock makes the next open fail loudly (naming the file to
// delete) rather than risk two writers silently corrupting the store.
func lockJournal(path string, _ *os.File) (func(), error) {
	lockPath := path + ".lock"
	f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lock file %s exists (delete it if its owner crashed): %w", lockPath, err)
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	_ = f.Close()
	return func() { _ = os.Remove(lockPath) }, nil
}
