// Package persist stores and restores global-model checkpoints. The
// networked server can checkpoint the federation after every round, and a
// restarted server (or an offline evaluation tool) can resume from the
// saved weights — the minimum durability a deployable FL server needs.
package persist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// magic identifies checkpoint streams; version gates format evolution.
const (
	magic   = "FLCKPT"
	version = 1
)

// Checkpoint is a durable snapshot of the federation state.
type Checkpoint struct {
	// Round is the last completed round.
	Round int
	// Dataset and Model document which task/architecture the weights
	// belong to; Load-side validation prevents cross-architecture loads.
	Dataset string
	Model   string
	// Seed, MinClients and PerRound record the federation shape that
	// produced the weights: resuming under a different seed or population
	// would silently replay the wrong client-selection stream, so the
	// server validates them. All zero in checkpoints written before the
	// fields existed (MinClients is positive in any valid run).
	Seed       int64
	MinClients int
	PerRound   int
	// Weights is the flat global weight vector.
	Weights []float64
	// PrevWeights is the previous round's global weight vector w(t-1),
	// which the wire protocol hands to clients so data-free attackers can
	// estimate the benign update direction. Persisting it lets a resumed
	// round send the same PrevWeights an uninterrupted run would have.
	// Empty in checkpoints written before the field existed.
	PrevWeights []float64
	// Accuracy is the evaluation accuracy at checkpoint time (NaN-free;
	// use a negative value when unknown).
	Accuracy float64
	// MaxAccuracy is the best accuracy observed over the whole run up to
	// this checkpoint, so a resumed run reports the true acc_m even when
	// the peak predates the crash. Zero in checkpoints written before the
	// field existed; use a negative value when unknown.
	MaxAccuracy float64
}

// header precedes the gob payload.
type header struct {
	Magic   string
	Version int
}

// Write serializes the checkpoint to w.
func Write(w io.Writer, cp *Checkpoint) error {
	if cp == nil {
		return errors.New("persist: nil checkpoint")
	}
	if len(cp.Weights) == 0 {
		return errors.New("persist: checkpoint has no weights")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version}); err != nil {
		return fmt.Errorf("persist: header: %w", err)
	}
	if err := enc.Encode(cp); err != nil {
		return fmt.Errorf("persist: payload: %w", err)
	}
	return nil
}

// Read deserializes a checkpoint from r, validating magic and version.
func Read(r io.Reader) (*Checkpoint, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("persist: header: %w", err)
	}
	if h.Magic != magic {
		return nil, fmt.Errorf("persist: bad magic %q", h.Magic)
	}
	if h.Version != version {
		return nil, fmt.Errorf("persist: unsupported version %d", h.Version)
	}
	var cp Checkpoint
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("persist: payload: %w", err)
	}
	if len(cp.Weights) == 0 {
		return nil, errors.New("persist: checkpoint has no weights")
	}
	return &cp, nil
}

// Save writes the checkpoint atomically: to a temporary file in the target
// directory, then renamed over the destination, so a crash mid-write never
// corrupts the previous checkpoint.
func Save(path string, cp *Checkpoint) error {
	tmp, err := os.CreateTemp(dirOf(path), ".flckpt-*")
	if err != nil {
		return fmt.Errorf("persist: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		_ = os.Remove(tmpName) // no-op after successful rename
	}()
	if err := Write(tmp, cp); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: rename: %w", err)
	}
	return nil
}

// LoadFile reads a checkpoint from disk.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: open: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
