package persist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal is an append-only JSONL outcome store: one JSON object per line,
// each carrying a caller-chosen key and an opaque payload. It is the
// durability layer of the resumable experiment grid — a sweep appends every
// completed cell, and a restarted sweep replays the journal to skip work it
// already paid for. The format is deliberately crash-tolerant: a process
// killed mid-append leaves at most one truncated final line, which Open
// discards, so the journal never needs repair.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[string]json.RawMessage
	// streaming marks a write-only journal (OpenJournalStream): payloads
	// are not retained in memory and appends are not individually synced,
	// so an unbounded audit stream costs O(1) memory and no fsync stalls.
	streaming bool
	// appended counts lines written or replayed (Len in streaming mode,
	// where the entries map stays empty).
	appended int
	// off is the write offset after the last intact line; a failed append
	// truncates back to it so partial bytes never precede later entries
	// (mid-file corruption, unlike a torn tail, is unrecoverable).
	off int64
	// unlock releases the single-owner lock taken at open.
	unlock func()
}

// journalLine is the on-disk shape of one entry.
type journalLine struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// OpenJournal opens (creating if needed) the journal at path and replays
// its existing entries. Later lines win on duplicate keys. A truncated or
// corrupt final line — the signature of a crash mid-append — is dropped;
// corruption anywhere earlier is reported as an error.
func OpenJournal(path string) (*Journal, error) {
	return openJournal(path, false)
}

// OpenJournalStream opens the journal as a write-mostly audit stream: the
// same on-disk format and crash tolerance, but appended payloads are not
// retained in memory (Lookup reports every key absent) and appends are
// not individually fsynced — a torn tail on power loss is exactly the
// recoverable damage replay already handles. Use it for journals that
// grow with run length (the forensics audit stream), where OpenJournal's
// replay map would be an unbounded leak and a per-round fsync a stall.
func OpenJournalStream(path string) (*Journal, error) {
	return openJournal(path, true)
}

func openJournal(path string, streaming bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	// Two writers interleaving lines at overlapping offsets would corrupt
	// the store mid-file (unrecoverable, unlike a torn tail), so the
	// journal is single-owner: the lock is held until Close.
	unlock, err := lockJournal(path, f)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("persist: journal %s is in use by another process: %w", path, err)
	}
	j := &Journal{path: path, f: f, entries: make(map[string]json.RawMessage), streaming: streaming, unlock: unlock}
	if err := j.replay(); err != nil {
		unlock()
		_ = f.Close()
		return nil, err
	}
	return j, nil
}

// replay loads the journal into memory and positions the write offset after
// the last intact line.
func (j *Journal) replay() error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: journal seek: %w", err)
	}
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // outcomes carry timelines; lines can be large
	var goodBytes int64
	var pendingErr error
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if pendingErr != nil {
			// A corrupt line followed by more data is real damage, not a
			// torn final append.
			return pendingErr
		}
		if len(raw) == 0 {
			goodBytes += 1 // bare newline
			continue
		}
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil || line.Key == "" {
			pendingErr = fmt.Errorf("persist: journal %s line %d corrupt", j.path, lineNo)
			continue
		}
		if !j.streaming {
			j.entries[line.Key] = line.Payload
		}
		j.appended++
		goodBytes += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("persist: journal read: %w", err)
	}
	// pendingErr here means the damage was the final line: a crash mid-append.
	// Truncate it away so subsequent appends start on a clean boundary.
	if pendingErr != nil {
		if err := j.f.Truncate(goodBytes); err != nil {
			return fmt.Errorf("persist: journal truncate: %w", err)
		}
	}
	// A tear that ate exactly the trailing newline leaves a valid final line
	// shorter than our newline-inclusive count: terminate it in place.
	if st, err := j.f.Stat(); err == nil && goodBytes > st.Size() {
		if _, err := j.f.WriteAt([]byte{'\n'}, st.Size()); err != nil {
			return fmt.Errorf("persist: journal terminate: %w", err)
		}
	}
	if _, err := j.f.Seek(goodBytes, io.SeekStart); err != nil {
		return fmt.Errorf("persist: journal seek: %w", err)
	}
	j.off = goodBytes
	return nil
}

// Append durably records payload under key: the line is written and synced
// before Append returns, and the in-memory view is updated.
func (j *Journal) Append(key string, payload any) error {
	if key == "" {
		return errors.New("persist: journal key must not be empty")
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: journal payload: %w", err)
	}
	line, err := json.Marshal(journalLine{Key: key, Payload: raw})
	if err != nil {
		return fmt.Errorf("persist: journal line: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("persist: journal closed")
	}
	if _, err := j.f.Write(line); err != nil {
		// Roll back any partial bytes: a later successful append must land
		// on a clean line boundary, or replay would see unrecoverable
		// mid-file corruption instead of a torn (recoverable) tail.
		_ = j.f.Truncate(j.off)
		_, _ = j.f.Seek(j.off, io.SeekStart)
		return fmt.Errorf("persist: journal write: %w", err)
	}
	if !j.streaming {
		if err := j.f.Sync(); err != nil {
			_ = j.f.Truncate(j.off)
			_, _ = j.f.Seek(j.off, io.SeekStart)
			return fmt.Errorf("persist: journal sync: %w", err)
		}
	}
	j.off += int64(len(line))
	if !j.streaming {
		j.entries[key] = raw
	}
	j.appended++
	return nil
}

// Lookup returns the most recent payload recorded under key.
func (j *Journal) Lookup(key string, payload any) (bool, error) {
	j.mu.Lock()
	raw, ok := j.entries[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, payload); err != nil {
		return false, fmt.Errorf("persist: journal decode %q: %w", key, err)
	}
	return true, nil
}

// Len reports the number of distinct keys in the journal (in streaming
// mode, the number of lines written or replayed).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.streaming {
		return j.appended
	}
	return len(j.entries)
}

// Keys returns the distinct keys currently journaled, in no particular order.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	keys := make([]string, 0, len(j.entries))
	for k := range j.entries {
		keys = append(keys, k)
	}
	return keys
}

// Close releases the lock and the underlying file, syncing buffered
// stream appends first. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if j.streaming {
		err = j.f.Sync()
	}
	j.unlock()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
