package persist

import (
	"fmt"
	"path/filepath"
	"testing"
)

// The lease substrate is pure file I/O and flock round-trips — latency-bound
// coordination overhead, not compute. These benchmarks price the per-cell
// cost a distributed sweep pays on top of the science: one claim + release
// per cell, one Update transaction per recorded result, and the incremental
// replay a worker performs to adopt other workers' results.

func benchJournal(b *testing.B) *SharedJournal {
	b.Helper()
	j, err := OpenShared(filepath.Join(b.TempDir(), "bench.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	return j
}

type benchPayload struct {
	Cell  string  `json:"cell"`
	Value float64 `json:"value"`
}

// BenchmarkSharedUpdateAppend is the cost of recording one result cell: an
// EX-locked transaction that replays the tail, checks for a duplicate and
// appends one JSONL line with fsync semantics shared with the legacy
// journal.
func BenchmarkSharedUpdateAppend(b *testing.B) {
	j := benchJournal(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("cell-%d", i)
		err := j.Update(func(tx *Tx) error {
			var existing benchPayload
			if ok, err := tx.Lookup(key, &existing); err != nil || ok {
				return err
			}
			return tx.Append(key, benchPayload{Cell: key, Value: float64(i)})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaseClaimRelease is the per-cell coordination overhead of the
// distributed sweep: claim the lease, release it. Two EX-locked
// transactions, two appended lease records.
func BenchmarkLeaseClaimRelease(b *testing.B) {
	j := benchJournal(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("cell-%d", i)
		lease, err := j.TryClaim(key, "bench-owner", 0)
		if err != nil {
			b.Fatal(err)
		}
		if !lease.Held {
			b.Fatal("uncontended claim lost")
		}
		if err := j.Release(key, "bench-owner"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedRefresh prices the incremental tail replay a polling worker
// performs per scheduler pass over a store that is not growing — the steady
// state of a worker waiting on foreign leases.
func BenchmarkSharedRefresh(b *testing.B) {
	j := benchJournal(b)
	for i := 0; i < 512; i++ {
		if err := j.Append(fmt.Sprintf("cell-%d", i), benchPayload{Value: float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenSharedReplay prices a worker's cold start against a store
// another fleet already filled: open, full replay of 512 result lines plus
// their lease records, close.
func BenchmarkOpenSharedReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.jsonl")
	seed, err := OpenShared(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		key := fmt.Sprintf("cell-%d", i)
		if _, err := seed.TryClaim(key, "seed", 0); err != nil {
			b.Fatal(err)
		}
		if err := seed.Append(key, benchPayload{Value: float64(i)}); err != nil {
			b.Fatal(err)
		}
		if err := seed.Release(key, "seed"); err != nil {
			b.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := OpenShared(path)
		if err != nil {
			b.Fatal(err)
		}
		if j.Len() == 0 {
			b.Fatal("replay found nothing")
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
