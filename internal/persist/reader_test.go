package persist

// Read-only journal view tests: file-order iteration with every duplicate
// version preserved, torn-tail tolerance, and the mid-file-corruption
// rejection that keeps a dashboard replay from silently skipping history.

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadEntriesFileOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range []struct {
		k string
		v int
	}{{"a", 1}, {"b", 2}, {"a", 3}} {
		if err := j.Append(kv.k, kv.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadEntries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries, want 3 (duplicates preserved, unlike last-wins Open)", len(entries))
	}
	wantKeys := []string{"a", "b", "a"}
	wantPayloads := []string{"1", "2", "3"}
	for i, e := range entries {
		if e.Key != wantKeys[i] || string(e.Payload) != wantPayloads[i] {
			t.Fatalf("entry %d = %s:%s, want %s:%s", i, e.Key, e.Payload, wantKeys[i], wantPayloads[i])
		}
	}
}

func TestReadEntriesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	data := `{"key":"a","payload":1}` + "\n" + `{"key":"b","pay`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadEntries(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(entries) != 1 || entries[0].Key != "a" {
		t.Fatalf("entries = %+v, want just a", entries)
	}
}

func TestReadEntriesMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	data := `{"key":"a","payload":1}` + "\n" + `garbage` + "\n" + `{"key":"b","payload":2}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEntries(path); err == nil {
		t.Fatal("corruption followed by more data must be an error, not a skip")
	}
}

func TestReadEntriesMissingFile(t *testing.T) {
	if _, err := ReadEntries(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing journal should error")
	}
}
