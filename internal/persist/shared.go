package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrLeaseHeld reports that a journal (or a work-claiming lease inside one)
// is currently owned by another live owner. It is contention, not damage:
// callers distinguish it from corruption with errors.Is and retry with
// backoff instead of failing the sweep.
var ErrLeaseHeld = errors.New("persist: lease held by another owner")

// ErrLeaseLost reports that a lease this owner held was released or
// reclaimed by another owner (after the owner looked expired). The work is
// no longer exclusively ours; results must only be recorded through a
// presence-checked append so at most one copy lands.
var ErrLeaseLost = errors.New("persist: lease lost to another owner")

// SharedJournal is the multi-writer variant of Journal: the same
// append-only JSONL format and crash tolerance, but instead of one
// exclusive lock held from open to close, every operation takes a
// short-lived advisory file lock (shared for reads, exclusive for
// read-modify-append transactions). N processes can therefore drain one
// store concurrently — the work-claiming substrate of distributed sweeps.
//
// Consistency model: all mutations happen under the exclusive lock and
// start by replaying any lines other writers appended since this process
// last looked, so an Update transaction always sees the latest state —
// claims are linearizable. Plain Lookup reads the possibly stale local
// view; call Refresh to pull in other writers' appends.
//
// The on-disk format is byte-compatible with Journal: a file written by N
// workers reopens fine under OpenJournal (single-owner resume), and legacy
// single-owner journals open fine here.
type SharedJournal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[string]json.RawMessage
	// off is the byte offset after the last intact line this process has
	// replayed; refreshes scan forward from it.
	off int64
}

// OpenShared opens (creating if needed) the journal at path for
// multi-process use and replays its current contents.
func OpenShared(path string) (*SharedJournal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open shared journal: %w", err)
	}
	s := &SharedJournal{path: path, f: f, entries: make(map[string]json.RawMessage)}
	if err := s.Refresh(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

// Refresh replays lines other writers appended since the last look, under a
// shared lock. A torn tail (a writer crashed mid-append) is left in place —
// only an exclusive-lock mutation may repair it — and simply not consumed.
func (s *SharedJournal) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("persist: shared journal closed")
	}
	unlock, err := flockFile(s.f, s.path, false)
	if err != nil {
		return err
	}
	defer unlock()
	return s.replayLocked(false)
}

// replayLocked scans [s.off, EOF), applying intact lines to the view. With
// repair set (exclusive lock held) a torn tail is truncated away and a tail
// whose trailing newline was lost is terminated in place, exactly like the
// single-owner journal's recovery.
func (s *SharedJournal) replayLocked(repair bool) error {
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("persist: shared journal stat: %w", err)
	}
	size := st.Size()
	if size < s.off {
		// Another writer repaired a tear that our view had already consumed
		// past — impossible for intact lines (they are never rewritten), so
		// our offset was inside the torn tail. Rescan from scratch.
		s.off = 0
		s.entries = make(map[string]json.RawMessage)
	}
	if size == s.off {
		return nil
	}
	rd := bufio.NewReaderSize(io.NewSectionReader(s.f, s.off, size-s.off), 1<<20)
	good := s.off
	for {
		raw, err := rd.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return fmt.Errorf("persist: shared journal read: %w", err)
		}
		complete := len(raw) > 0 && raw[len(raw)-1] == '\n'
		line := bytes.TrimSuffix(raw, []byte("\n"))
		if len(line) > 0 {
			var jl journalLine
			if jerr := json.Unmarshal(line, &jl); jerr != nil || jl.Key == "" {
				// Damage. At the tail it is a torn append (recoverable);
				// anywhere earlier it is real corruption.
				if complete || rd.Buffered() > 0 {
					return fmt.Errorf("persist: shared journal %s corrupt at offset %d", s.path, good)
				}
				if repair {
					if terr := s.f.Truncate(good); terr != nil {
						return fmt.Errorf("persist: shared journal truncate: %w", terr)
					}
				}
				s.off = good
				return nil
			}
			if !complete {
				// A valid final line missing only its newline: the tear ate
				// exactly the terminator. Terminate it in place when allowed;
				// until then leave it unconsumed.
				if repair {
					if _, werr := s.f.WriteAt([]byte{'\n'}, size); werr != nil {
						return fmt.Errorf("persist: shared journal terminate: %w", werr)
					}
					s.entries[jl.Key] = jl.Payload
					s.off = size + 1
					return nil
				}
				s.off = good
				return nil
			}
			s.entries[jl.Key] = jl.Payload
		}
		if err == io.EOF {
			if complete || len(raw) == 0 {
				good += int64(len(raw))
			}
			break
		}
		good += int64(len(raw))
	}
	s.off = good
	return nil
}

// Lookup returns the most recent payload recorded under key in this
// process's view (see Refresh for picking up other writers' appends).
func (s *SharedJournal) Lookup(key string, payload any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, payload); err != nil {
		return false, fmt.Errorf("persist: shared journal decode %q: %w", key, err)
	}
	return true, nil
}

// Len reports the number of distinct keys in the current view.
func (s *SharedJournal) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Keys returns the distinct keys in the current view, in no particular order.
func (s *SharedJournal) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	return keys
}

// Tx is the view handed to an Update transaction: reads see the freshest
// state (the exclusive lock is held and the tail has been replayed), and
// appends are buffered until the transaction returns without error.
type Tx struct {
	s       *SharedJournal
	appends []journalLine
}

// Lookup returns the latest payload under key, including appends buffered
// earlier in the same transaction.
func (tx *Tx) Lookup(key string, payload any) (bool, error) {
	for i := len(tx.appends) - 1; i >= 0; i-- {
		if tx.appends[i].Key == key {
			if err := json.Unmarshal(tx.appends[i].Payload, payload); err != nil {
				return false, fmt.Errorf("persist: tx decode %q: %w", key, err)
			}
			return true, nil
		}
	}
	return tx.s.lookupLocked(key, payload)
}

func (s *SharedJournal) lookupLocked(key string, payload any) (bool, error) {
	raw, ok := s.entries[key]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, payload); err != nil {
		return false, fmt.Errorf("persist: shared journal decode %q: %w", key, err)
	}
	return true, nil
}

// Append buffers one entry; it becomes durable iff the transaction commits.
func (tx *Tx) Append(key string, payload any) error {
	if key == "" {
		return errors.New("persist: journal key must not be empty")
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: journal payload: %w", err)
	}
	tx.appends = append(tx.appends, journalLine{Key: key, Payload: raw})
	return nil
}

// Update runs fn as an atomic read-modify-append transaction: the exclusive
// file lock is taken, the tail replayed (repairing any torn append a
// crashed writer left), fn observes the latest state and buffers appends,
// and on success the appends are written and synced before the lock drops.
// Concurrent Updates from any number of processes are therefore
// linearizable — the basis of race-free work claiming.
func (s *SharedJournal) Update(fn func(tx *Tx) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("persist: shared journal closed")
	}
	unlock, err := flockFile(s.f, s.path, true)
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.replayLocked(true); err != nil {
		return err
	}
	tx := &Tx{s: s}
	if err := fn(tx); err != nil {
		return err
	}
	if len(tx.appends) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for _, jl := range tx.appends {
		line, err := json.Marshal(jl)
		if err != nil {
			return fmt.Errorf("persist: journal line: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := s.f.WriteAt(buf.Bytes(), s.off); err != nil {
		// Roll partial bytes back so a later append lands on a clean line
		// boundary; we hold the exclusive lock, so the truncate is safe.
		_ = s.f.Truncate(s.off)
		return fmt.Errorf("persist: shared journal write: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		_ = s.f.Truncate(s.off)
		return fmt.Errorf("persist: shared journal sync: %w", err)
	}
	s.off += int64(buf.Len())
	for _, jl := range tx.appends {
		s.entries[jl.Key] = jl.Payload
	}
	return nil
}

// Append durably records payload under key (a single-entry Update).
func (s *SharedJournal) Append(key string, payload any) error {
	return s.Update(func(tx *Tx) error { return tx.Append(key, payload) })
}

// Close releases the underlying file. No lock is held between operations,
// so Close never blocks on other processes.
func (s *SharedJournal) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
