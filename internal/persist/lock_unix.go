//go:build unix

package persist

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockJournal takes a non-blocking exclusive advisory flock on f, failing
// immediately when another process holds it. The kernel releases the lock
// when the descriptor closes — including on crash, so a dead owner never
// wedges the journal. The returned release is a no-op: closing f is the
// release. Contention surfaces as ErrLeaseHeld so callers can distinguish
// "another worker owns this store" (retry/backoff, or switch to the shared
// journal) from corruption.
func lockJournal(_ string, f *os.File) (func(), error) {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return nil, fmt.Errorf("%w: %v", ErrLeaseHeld, err)
		}
		return nil, err
	}
	return func() {}, nil
}

// flockFile takes a blocking advisory flock on f — shared for reads,
// exclusive for mutations — and returns its release. The shared journal
// holds these only for the duration of one operation, so N worker processes
// interleave rather than exclude each other.
func flockFile(f *os.File, _ string, exclusive bool) (func(), error) {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	if err := syscall.Flock(int(f.Fd()), how); err != nil {
		return nil, fmt.Errorf("persist: shared journal lock: %w", err)
	}
	return func() { _ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }, nil
}
