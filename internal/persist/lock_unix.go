//go:build unix

package persist

import (
	"os"
	"syscall"
)

// lockJournal takes a non-blocking exclusive advisory flock on f, failing
// immediately when another process holds it. The kernel releases the lock
// when the descriptor closes — including on crash, so a dead owner never
// wedges the journal. The returned release is a no-op: closing f is the
// release.
func lockJournal(_ string, f *os.File) (func(), error) {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return nil, err
	}
	return func() {}, nil
}
