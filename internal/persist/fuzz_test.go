package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecover throws arbitrary bytes at the journal's crash-recovery
// path and checks the durability contract survives them: Open never
// panics; when it accepts a file, the journal must be writable, and after
// a clean Close the file it leaves behind must reopen with the appended
// entry intact. In other words: whatever damage Open tolerated, it must
// have repaired — recovery is idempotent, never compounding.
func FuzzJournalRecover(f *testing.F) {
	line := func(key, payload string) []byte {
		return []byte(`{"key":"` + key + `","payload":` + payload + `}` + "\n")
	}
	valid := line("a", `{"x":1}`)
	f.Add([]byte{})
	f.Add([]byte("\n\n"))
	f.Add(valid)
	f.Add(bytes.Join([][]byte{line("a", `{"x":1}`), line("a", `{"x":2}`)}, nil))
	// Torn tail: crash mid-append after one good line.
	f.Add(append(append([]byte{}, valid...), []byte(`{"key":"b","pa`)...))
	// Tear that ate exactly the trailing newline.
	f.Add(bytes.TrimSuffix(valid, []byte("\n")))
	// Mid-file corruption: damage followed by more data (must error, not repair).
	f.Add(append([]byte("garbage\n"), valid...))
	// Entry with an empty key (corrupt by contract).
	f.Add(line("", `{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// The shared (multi-writer) journal reads the same format; its
		// recovery verdict must agree with the single-owner journal's on the
		// same bytes, and an accepted file must survive an Update round-trip.
		if s, serr := OpenShared(path); serr == nil {
			if err := s.Append("__fuzz_shared__", struct {
				N int `json:"n"`
			}{N: 7}); err != nil {
				t.Fatalf("shared append after successful open: %v", err)
			}
			var got struct {
				N int `json:"n"`
			}
			if ok, err := s.Lookup("__fuzz_shared__", &got); err != nil || !ok || got.N != 7 {
				t.Fatalf("shared probe: ok=%v err=%v got=%+v", ok, err, got)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("shared close: %v", err)
			}
		}
		j, err := OpenJournal(path)
		if err != nil {
			return // rejected as unrecoverable: a legal verdict for fuzz bytes
		}
		before := j.Len()
		probe := struct {
			N int `json:"n"`
		}{N: 42}
		if err := j.Append("__fuzz_probe__", probe); err != nil {
			t.Fatalf("append after successful open: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Recovery must have left a well-formed file: reopening can no
		// longer fail or lose the probe.
		j2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer j2.Close()
		var got struct {
			N int `json:"n"`
		}
		found, err := j2.Lookup("__fuzz_probe__", &got)
		if err != nil || !found || got.N != 42 {
			t.Fatalf("probe after reopen: found=%v err=%v got=%+v", found, err, got)
		}
		if j2.Len() < before {
			t.Fatalf("reopen lost entries: %d -> %d", before, j2.Len())
		}
	})
}
