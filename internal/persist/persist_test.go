package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sample() *Checkpoint {
	return &Checkpoint{
		Round:    7,
		Dataset:  "fashion-sim",
		Model:    "fashion-cnn",
		Weights:  []float64{0.5, -1.25, 3e-9, 42},
		Accuracy: 0.731,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Round != want.Round || got.Dataset != want.Dataset || got.Model != want.Model || got.Accuracy != want.Accuracy {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("weights length %d", len(got.Weights))
	}
	for i := range want.Weights {
		if got.Weights[i] != want.Weights[i] {
			t.Fatalf("weight %d = %v, want %v", i, got.Weights[i], want.Weights[i])
		}
	}
}

func TestWriteRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Fatal("expected error for nil checkpoint")
	}
	if err := Write(&buf, &Checkpoint{Round: 1}); err == nil {
		t.Fatal("expected error for empty weights")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected error for garbage stream")
	}
}

func TestReadRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a stream with a wrong magic via the same encoder types.
	bad := sample()
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the magic region.
	data := buf.Bytes()
	for i := range data {
		if data[i] == 'F' && i+5 < len(data) && data[i+1] == 'L' {
			data[i] = 'X'
			break
		}
	}
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("expected error for corrupted magic")
	}
}

func TestSaveLoadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "global.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 {
		t.Fatalf("round = %d", got.Round)
	}
	// Overwrite with a newer checkpoint: rename must replace atomically.
	newer := sample()
	newer.Round = 8
	if err := Save(path, newer); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 8 {
		t.Fatalf("after overwrite round = %d, want 8", got.Round)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestDirOf(t *testing.T) {
	if dirOf("/a/b/c.ckpt") != "/a/b" {
		t.Fatalf("dirOf = %q", dirOf("/a/b/c.ckpt"))
	}
	if dirOf("c.ckpt") != "." {
		t.Fatalf("dirOf = %q", dirOf("c.ckpt"))
	}
}
