package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type payload struct {
	Attack string   `json:"attack"`
	Acc    *float64 `json:"acc"`
}

func TestJournalAppendLookupReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	acc := 0.63
	if err := j.Append("a", payload{Attack: "lie", Acc: &acc}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("b", payload{Attack: "fang"}); err != nil {
		t.Fatal(err)
	}
	// Later writes win on duplicate keys.
	if err := j.Append("a", payload{Attack: "minmax", Acc: &acc}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("journal has %d keys, want 2", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("c", payload{}); err == nil {
		t.Fatal("append after close must fail")
	}

	re, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reopened journal has %d keys, want 2", re.Len())
	}
	var p payload
	ok, err := re.Lookup("a", &p)
	if err != nil || !ok {
		t.Fatalf("lookup a: ok=%v err=%v", ok, err)
	}
	if p.Attack != "minmax" || p.Acc == nil || *p.Acc != acc {
		t.Fatalf("last write should win: %+v", p)
	}
	if ok, _ := re.Lookup("zzz", &p); ok {
		t.Fatal("missing key should not resolve")
	}
	if got := re.Keys(); len(got) != 2 {
		t.Fatalf("Keys() returned %v", got)
	}
}

// TestJournalTornFinalLine: a crash mid-append leaves a truncated last
// line; reopening must drop it and keep every intact entry.
func TestJournalTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", payload{Attack: "lie"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("b", payload{Attack: "fang"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate the torn write: append half a line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c","payl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if re.Len() != 2 {
		t.Fatalf("recovered %d entries, want 2", re.Len())
	}
	// The journal must stay appendable on a clean line boundary.
	if err := re.Append("c", payload{Attack: "minsum"}); err != nil {
		t.Fatal(err)
	}
	re.Close()

	re2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 3 {
		t.Fatalf("post-recovery journal has %d entries, want 3", re2.Len())
	}
	var p payload
	if ok, _ := re2.Lookup("c", &p); !ok || p.Attack != "minsum" {
		t.Fatalf("entry appended after recovery lost: %+v", p)
	}
}

// TestJournalCorruptMiddleLine: damage that is not a torn tail is real
// corruption and must surface as an error, not silent data loss.
func TestJournalCorruptMiddleLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"key\":\"a\",\"payload\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt middle line must be an error")
	}
}

// TestJournalExclusiveLock: the journal is single-owner; a second opener
// in the same process family must be rejected while the first holds it.
func TestJournalExclusiveLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("second concurrent opener must be rejected")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after close must succeed: %v", err)
	}
	re.Close()
}

func TestJournalEmptyKeyRejected(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "run.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append("", payload{}); err == nil {
		t.Fatal("empty key must be rejected")
	}
}

// TestJournalConcurrentAppend: grid workers append concurrently; every
// entry must survive.
func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			if err := j.Append(key, payload{Attack: key}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()

	re, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 16 {
		t.Fatalf("concurrent journal has %d entries, want 16", re.Len())
	}
}

// TestJournalStreamMode pins the audit-stream variant: appends retain no
// payloads in memory (Lookup always misses, Len still counts), the
// on-disk format stays identical — a standard OpenJournal reads every
// line back — and reopening a stream journal appends after the existing
// tail.
func TestJournalStreamMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	j, err := OpenJournalStream(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(string(rune('a'+i)), payload{Attack: fmt.Sprintf("x%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	var p payload
	if ok, err := j.Lookup("a", &p); err != nil || ok {
		t.Fatalf("stream journal should not retain payloads: ok=%v err=%v", ok, err)
	}
	if j.Len() != 5 {
		t.Fatalf("stream Len = %d, want 5", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen in stream mode: replay counts but retains nothing, and the
	// next append lands after the tail.
	j2, err := OpenJournalStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 5 {
		t.Fatalf("reopened stream Len = %d, want 5", j2.Len())
	}
	if err := j2.Append("f", payload{Attack: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// The format is the standard journal's: a full reader sees all keys.
	re, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 6 {
		t.Fatalf("standard reader sees %d entries, want 6", re.Len())
	}
	if ok, err := re.Lookup("c", &p); err != nil || !ok || p.Attack != "x2" {
		t.Fatalf("entry c = %+v ok=%v err=%v", p, ok, err)
	}
}
