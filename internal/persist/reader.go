package persist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Entry is one journal line as seen by a read-only consumer.
type Entry struct {
	Key     string
	Payload json.RawMessage
}

// ReadEntries loads every intact line of the journal at path without
// taking the single-owner lock or mutating the file: the read-only view a
// replay or dashboard service needs over a journal some past (or even
// live) run produced. Lines appear in file order — for duplicate keys the
// caller sees every version, unlike Journal's last-wins map — and a torn
// final line is skipped exactly as Open would discard it, but corruption
// followed by more data is a real error.
func ReadEntries(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: read journal: %w", err)
	}
	defer f.Close()
	return readEntries(f, path)
}

func readEntries(r io.Reader, path string) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // audit lines carry full per-update records
	var out []Entry
	var pendingErr error
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if pendingErr != nil {
			// Damage followed by more data is mid-file corruption, which no
			// replay may silently skip.
			return nil, pendingErr
		}
		if len(raw) == 0 {
			continue
		}
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil || line.Key == "" {
			pendingErr = fmt.Errorf("persist: journal %s line %d corrupt", path, lineNo)
			continue
		}
		// Scanner reuses its buffer; the payload must own its bytes.
		out = append(out, Entry{Key: line.Key, Payload: append(json.RawMessage(nil), line.Payload...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("persist: journal read: %w", err)
	}
	// pendingErr still set here means the damage was the final line: the
	// torn tail of a crash mid-append, which replay tolerates.
	return out, nil
}
