package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type sharedPayload struct {
	N int `json:"n"`
}

// TestSharedJournalBasic checks append/lookup/refresh across two
// independently opened handles on one file — the in-process model of two
// worker processes (each handle owns its own file description, so the
// advisory locks exclude them like separate processes).
func TestSharedJournalBasic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	a, err := OpenShared(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenShared(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Append("k1", sharedPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	var got sharedPayload
	if ok, _ := b.Lookup("k1", &got); ok {
		t.Fatal("b sees k1 before Refresh")
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ok, err := b.Lookup("k1", &got); err != nil || !ok || got.N != 1 {
		t.Fatalf("b after refresh: ok=%v err=%v got=%+v", ok, err, got)
	}
	// Later lines win, across handles.
	if err := b.Append("k1", sharedPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Lookup("k1", &got); !ok || got.N != 2 {
		t.Fatalf("a after b's overwrite: got=%+v", got)
	}
}

// TestSharedJournalConcurrentAppends hammers one file from many goroutines
// across two handles and checks no line is lost or torn.
func TestSharedJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	handles := make([]*SharedJournal, 2)
	for i := range handles {
		h, err := OpenShared(path)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		handles[i] = h
	}
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := handles[w%2]
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d.%d", w, i)
				if err := h.Append(key, sharedPayload{N: i}); err != nil {
					t.Errorf("append %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// A fresh single-owner open must see every entry: format compatibility
	// with the legacy journal is part of the contract.
	for _, h := range handles {
		h.Close()
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 4*perWriter {
		t.Fatalf("lines lost: %d of %d", j.Len(), 4*perWriter)
	}
}

// TestSharedJournalTornTailRepair verifies a crashed writer's torn tail is
// skipped by readers and repaired by the next exclusive mutation.
func TestSharedJournalTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	s, err := OpenShared(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("good", sharedPayload{N: 7}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","pay`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenShared(path)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer s2.Close()
	var got sharedPayload
	if ok, _ := s2.Lookup("good", &got); !ok || got.N != 7 {
		t.Fatalf("intact line lost behind tear: %+v", got)
	}
	if ok, _ := s2.Lookup("torn", &got); ok {
		t.Fatal("torn line surfaced")
	}
	// The next mutation repairs the tear and lands cleanly after it.
	if err := s2.Append("after", sharedPayload{N: 8}); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("single-owner reopen after repair: %v", err)
	}
	defer j.Close()
	if ok, _ := j.Lookup("after", &got); !ok || got.N != 8 {
		t.Fatalf("post-repair append lost: %+v", got)
	}
	if j.Len() != 2 {
		t.Fatalf("want 2 entries after repair, got %d", j.Len())
	}
}

// TestLeaseClaimReleaseSteal exercises the full lease protocol between two
// owners: exclusive claim, contention, renewal visibility, release, and
// observation-based reclaim of a stale epoch.
func TestLeaseClaimReleaseSteal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	a, err := OpenShared(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenShared(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	la, err := a.TryClaim("cell", "alice", 0)
	if err != nil {
		t.Fatalf("initial claim: %v", err)
	}
	if la.Epoch != 1 || !la.Held {
		t.Fatalf("unexpected lease %+v", la)
	}
	// Contention: bob is refused and told the holder's state.
	lb, err := b.TryClaim("cell", "bob", 0)
	if !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("want ErrLeaseHeld, got %v", err)
	}
	if lb.Owner != "alice" || lb.Epoch != 1 {
		t.Fatalf("holder state %+v", lb)
	}
	// Renewal advances the epoch bob observes.
	if _, err := a.Renew("cell", "alice"); err != nil {
		t.Fatal(err)
	}
	if lb, err = b.TryClaim("cell", "bob", 1); !errors.Is(err, ErrLeaseHeld) || lb.Epoch != 2 {
		t.Fatalf("stale steal must fail after renewal: lease=%+v err=%v", lb, err)
	}
	// Reclaim: bob's staleness evidence now covers epoch 2.
	lb, err = b.TryClaim("cell", "bob", 2)
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	if lb.Owner != "bob" || lb.Epoch != 3 {
		t.Fatalf("reclaimed lease %+v", lb)
	}
	// Alice's renewal now fails typed — she lost the lease.
	if _, err := a.Renew("cell", "alice"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("want ErrLeaseLost, got %v", err)
	}
	// Alice's release is a harmless no-op; bob still holds.
	if err := a.Release("cell", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TryClaim("cell", "carol", 0); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("lease must survive a non-owner release: %v", err)
	}
	// Bob releases; the cell is free again.
	if err := b.Release("cell", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TryClaim("cell", "carol", 0); err != nil {
		t.Fatalf("claim after release: %v", err)
	}
}

// TestLeaseClaimRace runs many claimers for one key concurrently; exactly
// one may win.
func TestLeaseClaimRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	const claimers = 8
	wins := make(chan string, claimers)
	var wg sync.WaitGroup
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := OpenShared(path)
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Close()
			owner := fmt.Sprintf("w%d", i)
			if _, err := h.TryClaim("cell", owner, 0); err == nil {
				wins <- owner
			} else if !errors.Is(err, ErrLeaseHeld) {
				t.Errorf("claimer %s: %v", owner, err)
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("want exactly one winner, got %v", winners)
	}
}

// TestSingleOwnerLockContentionTyped checks that opening a single-owner
// journal someone else holds surfaces ErrLeaseHeld (so workers can back
// off) rather than an opaque failure.
func TestSingleOwnerLockContentionTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := OpenJournal(path); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("want ErrLeaseHeld on contended open, got %v", err)
	}
}

// TestSharedUpdateAtomicity: a transaction that errors must leave no bytes
// behind; one that appends multiple entries lands them together.
func TestSharedUpdateAtomicity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	s, err := OpenShared(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sentinel := errors.New("abort")
	err = s.Update(func(tx *Tx) error {
		if err := tx.Append("x", sharedPayload{N: 1}); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("aborted tx leaked entries")
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("aborted tx wrote %d bytes", st.Size())
	}
	err = s.Update(func(tx *Tx) error {
		if err := tx.Append("a", sharedPayload{N: 1}); err != nil {
			return err
		}
		var got sharedPayload
		if ok, err := tx.Lookup("a", &got); err != nil || !ok || got.N != 1 {
			return fmt.Errorf("tx-local visibility: ok=%v err=%v", ok, err)
		}
		return tx.Append("b", sharedPayload{N: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("want 2 entries, got %d", s.Len())
	}
}
