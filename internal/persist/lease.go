package persist

import (
	"fmt"
	"strings"
)

// Work-claiming leases over a SharedJournal. A lease is an ordinary journal
// entry under "lease|<key>", so the on-disk format, crash tolerance and
// fuzzed recovery path are exactly the journal's own; later lines win, so
// the latest lease line is the authoritative state.
//
// Epochs are wall-clock-free: a lease carries only a monotonic counter that
// the holder bumps on every renewal. Liveness is judged by observation, not
// by timestamps — a claimer that watches the same (owner, epoch) pair stand
// still across enough of its own polls concludes the holder is dead and
// reclaims at epoch+1. Two claimers can never both win: every claim is an
// exclusive-lock Update transaction that re-reads the tail first, so the
// second claimer sees the first's line and backs off with ErrLeaseHeld.
// No clock comparison ever crosses a process boundary.

// Lease is the journaled state of one work claim.
type Lease struct {
	// Owner identifies the claiming process (worker name).
	Owner string `json:"owner"`
	// Epoch increases on every claim, renewal and reclaim; a stalled epoch
	// is the (observational) death signal.
	Epoch uint64 `json:"epoch"`
	// Held is false once the owner released the lease.
	Held bool `json:"held"`
}

// leasePrefix namespaces lease entries away from result cells, so runKey
// hashing, baseline keys and legacy journals are untouched by the claiming
// substrate.
const leasePrefix = "lease|"

// LeaseKey returns the journal key of the lease guarding key.
func LeaseKey(key string) string { return leasePrefix + key }

// IsLeaseKey reports whether a journal key is a lease record.
func IsLeaseKey(key string) bool { return strings.HasPrefix(key, leasePrefix) }

// TryClaim attempts to acquire (or, for the current owner, renew) the lease
// guarding key. A lease held by another owner may be reclaimed only when
// its epoch is at most stealEpoch — the caller's staleness evidence, 0
// meaning "never steal". On contention the holder's lease is returned with
// ErrLeaseHeld so the caller can update its liveness observations.
func (s *SharedJournal) TryClaim(key, owner string, stealEpoch uint64) (Lease, error) {
	if owner == "" {
		return Lease{}, fmt.Errorf("persist: lease owner must not be empty")
	}
	var out Lease
	err := s.Update(func(tx *Tx) error {
		var cur Lease
		ok, err := tx.Lookup(LeaseKey(key), &cur)
		if err != nil {
			return err
		}
		switch {
		case !ok || !cur.Held: // free
		case cur.Owner == owner: // re-entrant claim renews
		case stealEpoch > 0 && cur.Epoch <= stealEpoch: // observed dead
		default:
			out = cur
			return ErrLeaseHeld
		}
		out = Lease{Owner: owner, Epoch: cur.Epoch + 1, Held: true}
		return tx.Append(LeaseKey(key), out)
	})
	return out, err
}

// Renew bumps the epoch of a lease this owner holds, proving liveness to
// observers. ErrLeaseLost reports that the lease was released or reclaimed.
func (s *SharedJournal) Renew(key, owner string) (Lease, error) {
	var out Lease
	err := s.Update(func(tx *Tx) error {
		var cur Lease
		ok, err := tx.Lookup(LeaseKey(key), &cur)
		if err != nil {
			return err
		}
		if !ok || !cur.Held || cur.Owner != owner {
			out = cur
			return ErrLeaseLost
		}
		out = Lease{Owner: owner, Epoch: cur.Epoch + 1, Held: true}
		return tx.Append(LeaseKey(key), out)
	})
	return out, err
}

// Release marks the lease free. Releasing a lease this owner no longer
// holds is a no-op (the reclaimer owns it now), so Release is safe to call
// unconditionally on completion paths.
func (s *SharedJournal) Release(key, owner string) error {
	return s.Update(func(tx *Tx) error {
		var cur Lease
		ok, err := tx.Lookup(LeaseKey(key), &cur)
		if err != nil {
			return err
		}
		if !ok || !cur.Held || cur.Owner != owner {
			return nil
		}
		return tx.Append(LeaseKey(key), Lease{Owner: owner, Epoch: cur.Epoch + 1, Held: false})
	})
}
