package codec

import (
	"fmt"
	"testing"

	"repro/internal/vec"
)

// benchWeights builds a synthetic round: a global model of dimension d and
// K client weight vectors that differ from it by small structured deltas.
func benchWeights(K, d int) (global []float64, ws [][]float64) {
	global = make([]float64, d)
	for i := range global {
		global[i] = 0.01 * float64(i%97)
	}
	ws = make([][]float64, K)
	for c := range ws {
		w := make([]float64, d)
		for i := range w {
			w[i] = global[i] + 0.001*float64((i+c)%31-15)
		}
		ws[c] = w
	}
	return global, ws
}

// BenchmarkRoundTransport measures one server round's transport + geometry
// cost per codec: client-side encode, wire serialization, server-side
// fail-closed decode, reconstruction against the global model, and the
// pairwise squared-distance geometry the Krum-family defenses consume —
// compressed-domain where the codec allows it, dense otherwise. The "off"
// variant is the legacy pipeline: dense float64 updates (8·d·K wire bytes,
// counted, not serialized — the legacy server does no transcoding) and the
// dense distance matrix. bytes/round reports the total update payload the
// round moves; the K=500/d=10k int8-top10-ef vs off pair is the
// acceptance cell (≥4× fewer bytes at latency parity).
func BenchmarkRoundTransport(b *testing.B) {
	codecs := []struct {
		name string
		spec Spec
	}{
		{"off", Spec{}},
		{"fp16", Spec{Quant: FP16}},
		{"int8", Spec{Quant: Int8}},
		{"int8-top10-ef", Spec{Quant: Int8, TopK: 0.1, EF: true}},
	}
	cells := []struct{ K, d int }{
		{50, 10000},
		{500, 10000},
		{50, 100000},
	}
	for _, cell := range cells {
		global, ws := benchWeights(cell.K, cell.d)
		for _, cdc := range codecs {
			b.Run(fmt.Sprintf("K%d_d%d_%s", cell.K, cell.d, cdc.name), func(b *testing.B) {
				enc := NewEncoder(cdc.spec)
				frames := make([]*Frame, cell.K)
				recs := make([][]float64, cell.K)
				roundBytes := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					roundBytes = 0
					if enc == nil {
						roundBytes = cell.K * 8 * cell.d
						_ = vec.SqDistMatrix(ws)
						continue
					}
					for c := range ws {
						wire := EncodeWire(enc.Encode(c, i, global, ws[c]))
						roundBytes += len(wire)
						df, err := DecodeWire(wire, cell.d)
						if err != nil {
							b.Fatal(err)
						}
						frames[c] = df
						recs[c] = df.Reconstruct(global)
					}
					if m := SqDistMatrix(frames); m == nil {
						_ = vec.SqDistMatrix(recs)
					}
				}
				b.ReportMetric(float64(roundBytes), "bytes/round")
			})
		}
	}
}

// BenchmarkEncode isolates the client-side cost of one update encode at the
// production point (int8, 10% top-k, error feedback).
func BenchmarkEncode(b *testing.B) {
	const d = 100000
	global, ws := benchWeights(1, d)
	enc := NewEncoder(Spec{Quant: Int8, TopK: 0.1, EF: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(0, i, global, ws[0])
	}
}

// BenchmarkSqDistMatrixSparse isolates the compressed-domain geometry for a
// 50-frame sparse round at d=100k.
func BenchmarkSqDistMatrixSparse(b *testing.B) {
	const K, d = 50, 100000
	global, ws := benchWeights(K, d)
	enc := NewEncoder(Spec{Quant: Int8, TopK: 0.1})
	frames := make([]*Frame, K)
	for c := range ws {
		frames[c] = enc.Encode(c, 0, global, ws[c])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if SqDistMatrix(frames) == nil {
			b.Fatal("sparse geometry fell back to dense")
		}
	}
}
