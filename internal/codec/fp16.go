package codec

import "math"

// IEEE 754 binary16 conversion. The codec defines fp16 encoding as the
// two-step float64→float32→float16 conversion with round-to-nearest-even at
// each step; the decoder's float16→float64 lift is exact, so values that
// are already representable in binary16 round-trip bit-identically (the
// property the wire re-encode of a decoded frame relies on). Finite values
// beyond the binary16 range saturate to ±65504 instead of overflowing to
// infinity, keeping reconstructed models finite.

// f64ToF16 converts v to binary16 bits.
func f64ToF16(v float64) uint16 {
	return f32ToF16(float32(v))
}

// f32ToF16 converts f to binary16 bits with round-to-nearest-even.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xFF) - 127 + 15
	man := b & 0x7FFFFF

	if b&0x7FFFFFFF == 0 {
		return sign // ±0
	}
	if b>>23&0xFF == 0xFF {
		if man != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // ±Inf
	}
	if exp >= 0x1F {
		return sign | 0x7BFF // saturate finite overflow to ±65504
	}
	if exp <= 0 {
		// Subnormal half (or underflow to zero).
		if exp < -10 {
			return sign
		}
		man |= 0x800000
		shift := uint32(14 - exp) // drop 13 + (1-exp) mantissa bits
		half := uint16(man >> shift)
		dropped := man & (1<<shift - 1)
		halfway := uint32(1) << (shift - 1)
		if dropped > halfway || (dropped == halfway && half&1 == 1) {
			half++ // may carry into the exponent: still a valid encoding
		}
		return sign | half
	}
	h := sign | uint16(exp)<<10 | uint16(man>>13)
	dropped := man & 0x1FFF
	if dropped > 0x1000 || (dropped == 0x1000 && h&1 == 1) {
		h++ // mantissa carry rolls into the exponent correctly
	}
	if h&0x7FFF >= 0x7C00 {
		return sign | 0x7BFF // rounding crossed into Inf: saturate
	}
	return h
}

// f16ToF64 lifts binary16 bits to float64 exactly.
func f16ToF64(h uint16) float64 {
	sign := 1.0
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1F)
	man := float64(h & 0x3FF)
	switch exp {
	case 0:
		return sign * math.Ldexp(man, -24)
	case 0x1F:
		if man != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	default:
		return sign * math.Ldexp(1024+man, exp-25)
	}
}
