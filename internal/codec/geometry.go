package codec

import (
	"sync"

	"repro/internal/tensor"
	"repro/internal/vec"
)

// Compressed-domain geometry: the Krum/Bulyan distance matrices computed
// directly on codec frames, without dequantizing every update to dense
// float64. Two exact paths exist:
//
//   - all frames dense int8: D_ij = A_i + A_j − 2·Σ_b s_i[b]·s_j[b]·⟨q_i,q_j⟩_b
//     where the per-block integer dots are exact int64 (tensor.Int8BlockDots,
//     SIMD and scalar bit-identical) and the scale combination runs in
//     ascending block order — worker-count invariant by construction;
//   - all frames sparse: each row's delta is scattered once into pooled
//     dense scratch and every partner frame takes a sparse·dense dot against
//     it (O(d + Σk) per row, cheaper than an O(k_i+k_j) merge re-walked per
//     pair), with norms precomputed per frame.
//
// Distances are over deltas; pairwise they equal weight-vector distances
// (the shared global model cancels), which defines the codec-on geometry.

// SqDistMatrix returns the pairwise squared-distance matrix of the frames'
// updates computed in the compressed domain, or nil when the frame set has
// no exact compressed-domain path — a missing frame, mixed layouts, or
// dense raw/fp16 frames, whose geometry is the ordinary dense
// vec.SqDistMatrix over the reconstructed vectors.
func SqDistMatrix(frames []*Frame) [][]float64 {
	n := len(frames)
	if n == 0 {
		return nil
	}
	first := frames[0]
	if first == nil {
		return nil
	}
	sparse := first.Idx != nil
	for _, f := range frames {
		if f == nil || f.Dim != first.Dim || (f.Idx != nil) != sparse || f.Spec.Quant != first.Spec.Quant {
			return nil
		}
	}
	if sparse {
		return sparseSqDist(frames)
	}
	if first.Spec.Quant == Int8 {
		return int8SqDist(frames)
	}
	return nil
}

// scratchPool hands out zeroed dense float64 scratch; users must re-zero
// the entries they touched before returning a buffer. Pointer-to-slice
// storage keeps Put allocation-free (same idiom as tensor's packBufs).
var scratchPool sync.Pool

func getScratch(dim int) *[]float64 {
	if p, ok := scratchPool.Get().(*[]float64); ok && len(*p) >= dim {
		return p
	}
	s := make([]float64, dim)
	return &s
}

func putScratch(p *[]float64) { scratchPool.Put(p) }

// sparseSqDist computes the matrix for all-sparse frames.
func sparseSqDist(frames []*Frame) [][]float64 {
	n := len(frames)
	dim := frames[0].Dim
	norms := make([]float64, n)
	tensor.ParallelFor(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			norms[i] = dot4(frames[i].Val, frames[i].Val)
		}
	})
	m := newSquare(n)
	// Row-parallel upper triangle: each row scatters its delta into dense
	// scratch once, then every later frame dots against it. Every (i,j)
	// value is a pure function of the two frames, so the row partition
	// cannot affect the result.
	tensor.ParallelFor(n, 1, func(lo, hi int) {
		scratch := getScratch(dim)
		defer putScratch(scratch)
		dense := (*scratch)[:dim]
		for i := lo; i < hi; i++ {
			fi := frames[i]
			for t, id := range fi.Idx {
				dense[id] = fi.Val[t]
			}
			for j := i + 1; j < n; j++ {
				fj := frames[j]
				d := norms[i] + norms[j] - 2*SparseDotDense(fj.Idx, fj.Val, dense)
				if d < 0 {
					d = 0 // FP cancellation below true 0; distances are nonneg
				}
				m[i][j] = d
				m[j][i] = d
			}
			for _, id := range fi.Idx {
				dense[id] = 0
			}
		}
	})
	return m
}

// dotsPool hands out per-pair int64 block-dot scratch.
var dotsPool sync.Pool

// int8SqDist computes the matrix for all-dense-int8 frames.
func int8SqDist(frames []*Frame) [][]float64 {
	n := len(frames)
	dim := frames[0].Dim
	blocks := dim / Block
	tail := dim - blocks*Block
	nb := blocks
	if tail > 0 {
		nb++
	}

	// Per-frame quantized norms A_i = Σ_b s_b²·⟨q,q⟩_b, ascending blocks.
	norms := make([]float64, n)
	tensor.ParallelFor(n, 2, func(lo, hi int) {
		dp := getDots(nb)
		defer dotsPool.Put(dp)
		dots := (*dp)[:nb]
		for i := lo; i < hi; i++ {
			f := frames[i]
			blockDots(f.Q, f.Q, blocks, tail, dots)
			s := 0.0
			for b := 0; b < nb; b++ {
				s += f.Scales[b] * f.Scales[b] * float64(dots[b])
			}
			norms[i] = s
		}
	})

	m := newSquare(n)
	vec.PairRange(n, func(i, j int) {
		dp := getDots(nb)
		defer dotsPool.Put(dp)
		dots := (*dp)[:nb]
		fi, fj := frames[i], frames[j]
		blockDots(fi.Q, fj.Q, blocks, tail, dots)
		cross := 0.0
		for b := 0; b < nb; b++ {
			cross += fi.Scales[b] * fj.Scales[b] * float64(dots[b])
		}
		d := norms[i] + norms[j] - 2*cross
		if d < 0 {
			d = 0
		}
		m[i][j] = d
		m[j][i] = d
	})
	return m
}

func getDots(nb int) *[]int64 {
	if p, ok := dotsPool.Get().(*[]int64); ok && cap(*p) >= nb {
		return p
	}
	d := make([]int64, nb)
	return &d
}

// blockDots fills dots with the exact per-block integer dot products,
// including the final partial block when tail > 0.
func blockDots(a, b []int8, blocks, tail int, dots []int64) {
	tensor.Int8BlockDots(a, b, dots[:blocks])
	if tail > 0 {
		lo := blocks * Block
		dots[blocks] = tensor.Int8Dot(a[lo:], b[lo:])
	}
}

// dot4 is a fixed-order four-chain dot product, the accumulation shape
// shared with SparseDotDense so norms and cross terms round identically.
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// SparseDotDense returns Σ_t val[t]·dense[idx[t]] — the sparse·dense inner
// product. Accumulation runs over positions in ascending order with four
// independent chains, so the result is a pure function of the operands
// (never of worker count or call site).
func SparseDotDense(idx []int32, val, dense []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(idx); i += 4 {
		s0 += val[i] * dense[idx[i]]
		s1 += val[i+1] * dense[idx[i+1]]
		s2 += val[i+2] * dense[idx[i+2]]
		s3 += val[i+3] * dense[idx[i+3]]
	}
	for ; i < len(idx); i++ {
		s0 += val[i] * dense[idx[i]]
	}
	return ((s0 + s1) + s2) + s3
}

// newSquare allocates an n×n matrix over one contiguous backing slice
// (mirrors vec's layout).
func newSquare(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}
