package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire layout of one codec frame (all integers little-endian):
//
//	[0]    magic 0xC6
//	[1]    version 0x01
//	[2]    kind (Raw/FP16/Int8)
//	[3]    flags: bit0 sparse, bit1 error-feedback
//	[4:8]  dim   uint32
//	[8:16] topk  float64 bits (0 when dense)
//	[16:20] k    uint32 — kept-coordinate count; 0 when dense
//	— sparse only — k × uint32 coordinate indices, strictly ascending < dim
//	— values, n = k (sparse) or dim (dense) —
//	  raw:  n × float64
//	  fp16: n × uint16 (binary16 bits)
//	  int8: uint32 nblocks (= ⌈n/256⌉), nblocks × float64 scales, n × int8
//
// The total length must be consumed exactly. Decode is fail-closed: every
// declared size is validated against the remaining byte count before any
// allocation, so a tiny hostile frame cannot trigger a large allocation —
// decode allocates O(len(data)) at most.

const (
	wireMagic   = 0xC6
	wireVersion = 0x01
	wireHeader  = 20

	flagSparse = 1 << 0
	flagEF     = 1 << 1
)

// WireSize returns the exact number of bytes EncodeWire produces for f
// without serializing it — the byte-accounting primitive for telemetry on
// simulated wires, where no real frame bytes ever exist.
func WireSize(f *Frame) int {
	n := f.quantLen()
	size := wireHeader + 4*len(f.Idx)
	switch f.Spec.Quant {
	case Raw:
		size += 8 * n
	case FP16:
		size += 2 * n
	case Int8:
		size += 4 + 8*len(f.Scales) + n
	}
	return size
}

// EncodeWire serializes the frame.
func EncodeWire(f *Frame) []byte {
	out := make([]byte, 0, WireSize(f))
	out = append(out, wireMagic, wireVersion, byte(f.Spec.Quant), 0)
	if f.Idx != nil {
		out[3] |= flagSparse
	}
	if f.Spec.EF {
		out[3] |= flagEF
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(f.Dim))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.Spec.TopK))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Idx)))
	for _, id := range f.Idx {
		out = binary.LittleEndian.AppendUint32(out, uint32(id))
	}
	switch f.Spec.Quant {
	case Raw:
		for _, v := range f.Val {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case FP16:
		for _, v := range f.Val {
			out = binary.LittleEndian.AppendUint16(out, f64ToF16(v))
		}
	case Int8:
		out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Scales)))
		for _, s := range f.Scales {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s))
		}
		for _, q := range f.Q {
			out = append(out, byte(q))
		}
	}
	return out
}

// DecodeWire parses and validates a frame. maxDim bounds the accepted model
// dimension (callers pass the session's known dimension). Errors are
// terminal: a frame that fails any check yields no partial state.
func DecodeWire(data []byte, maxDim int) (*Frame, error) {
	if len(data) < wireHeader {
		return nil, fmt.Errorf("codec: frame too short (%d bytes)", len(data))
	}
	if data[0] != wireMagic || data[1] != wireVersion {
		return nil, fmt.Errorf("codec: bad magic/version %#02x %#02x", data[0], data[1])
	}
	kind := Kind(data[2])
	switch kind {
	case Raw, FP16, Int8:
	default:
		return nil, fmt.Errorf("codec: unknown kind %d", data[2])
	}
	flags := data[3]
	if flags&^(flagSparse|flagEF) != 0 {
		return nil, fmt.Errorf("codec: unknown flags %#02x", flags)
	}
	dim64 := binary.LittleEndian.Uint32(data[4:8])
	topk := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
	k64 := binary.LittleEndian.Uint32(data[16:20])
	if dim64 == 0 || int64(dim64) > int64(maxDim) {
		return nil, fmt.Errorf("codec: dim %d out of (0,%d]", dim64, maxDim)
	}
	dim := int(dim64)
	if math.IsNaN(topk) || topk < 0 || topk >= 1 {
		return nil, fmt.Errorf("codec: topk %v out of [0,1)", topk)
	}
	sparse := flags&flagSparse != 0
	if sparse != (topk > 0) {
		return nil, fmt.Errorf("codec: sparse flag %v inconsistent with topk %v", sparse, topk)
	}
	k := int(k64)
	if sparse && (k == 0 || k > dim) {
		return nil, fmt.Errorf("codec: sparse count %d out of [1,%d]", k, dim)
	}
	if !sparse && k != 0 {
		return nil, fmt.Errorf("codec: dense frame with sparse count %d", k)
	}

	n := dim // stored value count
	if sparse {
		n = k
	}
	body := data[wireHeader:]
	need := 4 * k
	switch kind {
	case Raw:
		need += 8 * n
	case FP16:
		need += 2 * n
	case Int8:
		nb := (n + Block - 1) / Block
		need += 4 + 8*nb + n
	}
	if len(body) != need {
		return nil, fmt.Errorf("codec: frame body %d bytes, want %d", len(body), need)
	}

	f := &Frame{
		Spec: Spec{Quant: kind, TopK: topk, EF: flags&flagEF != 0},
		Dim:  dim,
	}
	if err := f.Spec.Validate(); err != nil {
		return nil, err
	}
	if sparse {
		f.Idx = make([]int32, k)
		prev := int32(-1)
		for t := 0; t < k; t++ {
			id64 := binary.LittleEndian.Uint32(body[4*t:])
			if int64(id64) >= int64(dim) {
				return nil, fmt.Errorf("codec: index %d out of range (dim %d)", id64, dim)
			}
			id := int32(id64)
			if id <= prev {
				return nil, fmt.Errorf("codec: indices not strictly ascending at %d", t)
			}
			f.Idx[t] = id
			prev = id
		}
		body = body[4*k:]
	}

	switch kind {
	case Raw:
		f.Val = make([]float64, n)
		for i := range f.Val {
			v := math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("codec: non-finite value at %d", i)
			}
			f.Val[i] = v
		}
	case FP16:
		f.Val = make([]float64, n)
		for i := range f.Val {
			v := f16ToF64(binary.LittleEndian.Uint16(body[2*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("codec: non-finite fp16 value at %d", i)
			}
			f.Val[i] = v
		}
	case Int8:
		nb := (n + Block - 1) / Block
		if got := binary.LittleEndian.Uint32(body[:4]); int64(got) != int64(nb) {
			return nil, fmt.Errorf("codec: scale block count %d, want %d", got, nb)
		}
		body = body[4:]
		f.Scales = make([]float64, nb)
		for b := range f.Scales {
			s := math.Float64frombits(binary.LittleEndian.Uint64(body[8*b:]))
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				return nil, fmt.Errorf("codec: bad scale %v at block %d", s, b)
			}
			f.Scales[b] = s
		}
		body = body[8*nb:]
		f.Q = make([]int8, n)
		for i := range f.Q {
			f.Q[i] = int8(body[i])
		}
		if sparse {
			f.Val = make([]float64, n)
			for i := range f.Val {
				f.Val[i] = f.Scales[i/Block] * float64(f.Q[i])
			}
		}
	}
	return f, nil
}
