package codec

import (
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func testFrames(tb testing.TB) []*Frame {
	tb.Helper()
	rng := rand.New(rand.NewSource(17))
	dim := 2*Block + 57
	global := make([]float64, dim)
	weights := make([]float64, dim)
	for i := range weights {
		global[i] = rng.NormFloat64()
		weights[i] = global[i] + 0.05*rng.NormFloat64()
	}
	var frames []*Frame
	for _, spec := range []Spec{
		{Quant: Raw},
		{Quant: FP16},
		{Quant: Int8},
		{Quant: Raw, TopK: 0.1},
		{Quant: FP16, TopK: 0.25, EF: true},
		{Quant: Int8, TopK: 0.5},
	} {
		frames = append(frames, NewEncoder(spec).Encode(4, 2, global, weights))
	}
	return frames
}

func TestWireRoundTrip(t *testing.T) {
	for _, f := range testFrames(t) {
		data := EncodeWire(f)
		got, err := DecodeWire(data, f.Dim)
		if err != nil {
			t.Fatalf("spec %q: decode: %v", f.Spec, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("spec %q: round trip mismatch\n got %+v\nwant %+v", f.Spec, got, f)
		}
		// Byte-level stability: re-encode of the decoded frame is identical.
		if again := EncodeWire(got); !reflect.DeepEqual(again, data) {
			t.Fatalf("spec %q: re-encode differs", f.Spec)
		}
	}
}

func TestWireCompressionRatio(t *testing.T) {
	for _, f := range testFrames(t) {
		raw := 8 * f.Dim
		got := len(EncodeWire(f))
		var want float64
		switch {
		case f.Spec.Quant == Raw && f.Idx == nil:
			want = 1.05 // dense raw: no reduction expected
		case f.Idx != nil:
			// Sparse: (4 + valbytes)·k plus header; require strictly
			// smaller than dense at these keep fractions.
			want = 1.0
		case f.Spec.Quant == FP16:
			want = 0.3
		case f.Spec.Quant == Int8:
			want = 0.15
		}
		if float64(got) > want*float64(raw) {
			t.Fatalf("spec %q: %d wire bytes vs %d dense (> %.2f×)", f.Spec, got, raw, want)
		}
	}
}

// mutate returns data with one region overwritten, for fail-closed probes.
func put32(data []byte, off int, v uint32) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

func TestDecodeWireFailClosed(t *testing.T) {
	sparseInt8 := NewEncoder(Spec{Quant: Int8, TopK: 0.1}).
		Encode(1, 1, make([]float64, 4*Block), filled(4*Block, 0.3))
	good := EncodeWire(sparseInt8)
	denseInt8 := EncodeWire(NewEncoder(Spec{Quant: Int8}).
		Encode(1, 1, make([]float64, Block+9), filled(Block+9, 0.2)))

	cases := map[string][]byte{
		"empty":             {},
		"short header":      good[:10],
		"bad magic":         append([]byte{0x00}, good[1:]...),
		"bad version":       append([]byte{wireMagic, 0xFF}, good[2:]...),
		"bad kind":          append([]byte{wireMagic, wireVersion, 99}, good[3:]...),
		"bad flags":         append([]byte{wireMagic, wireVersion, good[2], 0x80}, good[4:]...),
		"zero dim":          put32(good, 4, 0),
		"huge dim":          put32(good, 4, 1<<31-1),
		"zero-length k":     put32(good, 16, 0),     // sparse with no coords
		"k beyond dim":      put32(good, 16, 1<<30), // allocation probe
		"oob index":         put32(good, wireHeader, 1e9),
		"descending index":  put32(good, wireHeader+4, 0),
		"truncated indices": good[:wireHeader+5],
		"truncated scales":  denseInt8[:len(denseInt8)-Block-9-4],
		"truncated values":  good[:len(good)-3],
		"trailing bytes":    append(append([]byte(nil), good...), 1, 2, 3),
		"zero blocks":       put32(denseInt8, wireHeader, 0),
	}
	for name, data := range cases {
		if f, err := DecodeWire(data, 1<<20); err == nil {
			t.Fatalf("%s: decode accepted (%+v)", name, f)
		}
	}
	// NaN scale: find the scales region of the dense int8 frame.
	nanScale := append([]byte(nil), denseInt8...)
	binary.LittleEndian.PutUint64(nanScale[wireHeader+4:], math.Float64bits(math.NaN()))
	if _, err := DecodeWire(nanScale, 1<<20); err == nil {
		t.Fatal("NaN scale: decode accepted")
	}
	// maxDim enforcement: the session's dimension bounds what decodes.
	if _, err := DecodeWire(good, sparseInt8.Dim-1); err == nil {
		t.Fatal("decode accepted a frame beyond maxDim")
	}
}

func filled(n int, amp float64) []float64 {
	rng := rand.New(rand.NewSource(23))
	out := make([]float64, n)
	for i := range out {
		out[i] = amp * rng.NormFloat64()
	}
	return out
}

// FuzzDecodeWire drives the frame decoder with arbitrary bytes: it must
// fail closed — no panics, no allocation driven by unvalidated declared
// sizes — and anything it accepts must re-encode to the same bytes.
func FuzzDecodeWire(f *testing.F) {
	for _, fr := range testFrames(f) {
		f.Add(EncodeWire(fr))
	}
	sparse := EncodeWire(NewEncoder(Spec{Quant: Int8, TopK: 0.1}).
		Encode(0, 0, make([]float64, 2*Block), filled(2*Block, 1)))
	f.Add(put32(sparse, 16, 0))             // zero-length sparse frame
	f.Add(put32(sparse, wireHeader, 1<<29)) // out-of-range index
	f.Add(sparse[:len(sparse)-10])          // truncated int8 payload
	f.Add([]byte{wireMagic, wireVersion})   // bare header stub
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeWire(data, 1<<16)
		if err != nil {
			return
		}
		if fr.Dim <= 0 || fr.Dim > 1<<16 {
			t.Fatalf("accepted dim %d beyond maxDim", fr.Dim)
		}
		if again := EncodeWire(fr); !reflect.DeepEqual(again, data) {
			t.Fatalf("accepted frame does not re-encode canonically")
		}
	})
}
