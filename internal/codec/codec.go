// Package codec compresses federated-learning model updates for wire
// transport and compressed-domain aggregation.
//
// A client's round product — the weight vector w_i(t+1), equivalently the
// delta Δ_i = w_i − g against the broadcast global model g — is 8·d bytes of
// float64. At cross-device scale (PR 4's million-client populations served
// over flnet sockets) the bytes dominate the round, not the FLOPs. This
// package provides the three standard lossy reductions studied alongside
// the paper family's attacks and defenses:
//
//   - fp16 quantization: round-to-nearest-even half precision, 4× smaller;
//   - int8 stochastic quantization: one scale per 256-element block
//     (maxabs/127), stochastic rounding driven by a per-(client,round)
//     SplitMix64 stream, 8× smaller;
//   - top-k sparsification: keep the k = ⌈TopK·d⌉ largest-magnitude
//     coordinates as (index, value) pairs, optionally with a client-side
//     error-feedback residual that re-injects dropped mass next round.
//
// The "raw" kind is the lossless control: dense raw frames carry the weight
// vector verbatim, so a raw-codec run is bit-identical to a codec-off run
// end to end.
//
// Determinism contract: encoding is a pure function of (spec, client,
// round, global, weights, residual) — the stochastic-rounding stream is
// keyed by (clientID, round) and consumed in ascending coordinate order —
// and the geometry kernels accumulate in fixed block/index order, so every
// result is bit-identical at any worker count.
package codec

import (
	"fmt"
	"math"
	"strconv"
)

// Kind names a quantization family.
type Kind uint8

const (
	// Off disables the codec entirely: updates travel as dense float64.
	Off Kind = iota
	// Raw keeps float64 values (lossless; with top-k, only the selection
	// loses information).
	Raw
	// FP16 rounds values to IEEE half precision (round-to-nearest-even).
	FP16
	// Int8 quantizes values to int8 with one float64 scale per
	// tensor.Int8Block-element block, using stochastic rounding.
	Int8
)

func (k Kind) String() string {
	switch k {
	case Off:
		return "none"
	case Raw:
		return "raw"
	case FP16:
		return "fp16"
	case Int8:
		return "int8"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Spec is a complete codec configuration. Its String form is the canonical
// negotiation token exchanged at the flnet join handshake; two specs are
// compatible iff their strings are equal.
type Spec struct {
	// Quant selects the quantization family; Off disables the codec.
	Quant Kind
	// TopK, when positive, keeps only the ⌈TopK·d⌉ largest-magnitude
	// delta coordinates per update. Must lie in [0, 1).
	TopK float64
	// EF enables the client-side error-feedback residual: the part of the
	// delta the lossy encoding dropped is added back before encoding the
	// next round's delta. Requires a lossy setting.
	EF bool
}

// Enabled reports whether the codec is active at all.
func (s Spec) Enabled() bool { return s.Quant != Off }

// Lossy reports whether encoding can change update values: any
// quantization below float64, or any sparsification.
func (s Spec) Lossy() bool {
	return s.Quant == FP16 || s.Quant == Int8 || s.TopK > 0
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	switch s.Quant {
	case Off, Raw, FP16, Int8:
	default:
		return fmt.Errorf("codec: unknown quantization kind %d", s.Quant)
	}
	if s.TopK != 0 || s.EF {
		if !s.Enabled() {
			return fmt.Errorf("codec: topk/ef require an enabled codec")
		}
	}
	if s.TopK < 0 || s.TopK >= 1 || math.IsNaN(s.TopK) {
		return fmt.Errorf("codec: topk=%v out of [0,1)", s.TopK)
	}
	if s.EF && !s.Lossy() {
		return fmt.Errorf("codec: error feedback requires a lossy setting (raw dense has no residual)")
	}
	return nil
}

// String renders the canonical spec token: "" for Off, else
// "<kind>[,topk=<frac>][,ef]".
func (s Spec) String() string {
	if !s.Enabled() {
		return ""
	}
	out := s.Quant.String()
	if s.TopK > 0 {
		out += fmt.Sprintf(",topk=%g", s.TopK)
	}
	if s.EF {
		out += ",ef"
	}
	return out
}

// ParseSpec parses a spec token as produced by String. "" and "none" give
// the disabled spec.
func ParseSpec(str string) (Spec, error) {
	var s Spec
	if str == "" || str == "none" {
		return s, nil
	}
	rest := str
	for i, part := range splitComma(rest) {
		switch {
		case i == 0:
			switch part {
			case "raw":
				s.Quant = Raw
			case "fp16":
				s.Quant = FP16
			case "int8":
				s.Quant = Int8
			default:
				return Spec{}, fmt.Errorf("codec: unknown kind %q in spec %q", part, str)
			}
		case part == "ef":
			s.EF = true
		case len(part) > 5 && part[:5] == "topk=":
			v, err := parseFloat(part[5:])
			if err != nil {
				return Spec{}, fmt.Errorf("codec: bad topk in spec %q: %v", str, err)
			}
			s.TopK = v
		default:
			return Spec{}, fmt.Errorf("codec: unknown option %q in spec %q", part, str)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func splitComma(s string) []string {
	var parts []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return parts
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// mix64 is the SplitMix64 finalizer used across the reproduction for
// deterministic per-entity streams (see internal/population). The codec
// keys its stochastic-rounding draws with it so the same (client, round)
// always replays the same rounding decisions, in any process.
func mix64raw(a, b uint64) uint64 {
	x := a ^ (b+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// streamQuant tags the codec's rounding streams so they cannot collide with
// the engine's selection/attack/participation streams.
const streamQuant = 0xC0DEC

// roundStream yields the uniform [0,1) draws of one (client, round) encode:
// a SplitMix64 sequence whose state is keyed by both identifiers. Draws are
// consumed in ascending position order over the quantized array.
type roundStream struct{ x uint64 }

func newRoundStream(clientID, round int) *roundStream {
	seed := mix64raw(uint64(clientID)*0x9E3779B97F4A7C15^uint64(round), streamQuant)
	return &roundStream{x: seed}
}

func (r *roundStream) next() float64 {
	r.x += 0x9E3779B97F4A7C15
	z := mix64raw(r.x, streamQuant)
	return float64(z>>11) * (1.0 / (1 << 53))
}
