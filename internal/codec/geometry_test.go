package codec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tensor"
	"repro/internal/vec"
)

// encodeRound builds one round of frames plus the dense deltas they encode.
func encodeRound(tb testing.TB, spec Spec, n, dim int) (frames []*Frame, deltas [][]float64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(29))
	global := make([]float64, dim)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	enc := NewEncoder(spec)
	for c := 0; c < n; c++ {
		weights := make([]float64, dim)
		for i := range weights {
			weights[i] = global[i] + 0.05*rng.NormFloat64()
		}
		f := enc.Encode(c, 1, global, weights)
		frames = append(frames, f)
		delta := make([]float64, dim)
		if f.IsDelta() {
			f.AddDelta(delta)
		} else {
			for i := range delta {
				delta[i] = f.Val[i] - global[i]
			}
		}
		deltas = append(deltas, delta)
	}
	return frames, deltas
}

func TestSqDistMatrixMatchesDense(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"dense-int8", Spec{Quant: Int8}},
		{"sparse-raw", Spec{Quant: Raw, TopK: 0.2}},
		{"sparse-int8", Spec{Quant: Int8, TopK: 0.3}},
		{"sparse-fp16", Spec{Quant: FP16, TopK: 0.1, EF: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			frames, deltas := encodeRound(t, tc.spec, 9, 2*Block+77)
			got := SqDistMatrix(frames)
			if got == nil {
				t.Fatal("no compressed-domain path for a homogeneous frame set")
			}
			want := vec.SqDistMatrix(deltas)
			for i := range want {
				for j := range want[i] {
					d := math.Abs(got[i][j] - want[i][j])
					if d > 1e-9*(1+want[i][j]) {
						t.Fatalf("D[%d][%d] = %v, dense reference %v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

func TestSqDistMatrixWorkerInvariance(t *testing.T) {
	defer tensor.SetWorkers(0)
	for _, spec := range []Spec{{Quant: Int8}, {Quant: Raw, TopK: 0.15}} {
		frames, _ := encodeRound(t, spec, 11, 3*Block+5)
		tensor.SetWorkers(1)
		serial := SqDistMatrix(frames)
		for _, w := range []int{2, 5, 8} {
			tensor.SetWorkers(w)
			if got := SqDistMatrix(frames); !reflect.DeepEqual(got, serial) {
				t.Fatalf("spec %q: workers=%d differs from serial", spec, w)
			}
		}
	}
}

func TestSqDistMatrixFallbacks(t *testing.T) {
	densef, _ := encodeRound(t, Spec{Quant: FP16}, 3, Block)
	if SqDistMatrix(densef) != nil {
		t.Fatal("dense fp16 has no exact compressed path; want nil")
	}
	raw, _ := encodeRound(t, Spec{Quant: Raw}, 3, Block)
	if SqDistMatrix(raw) != nil {
		t.Fatal("dense raw carries weights; want nil (dense geometry)")
	}
	sparse, _ := encodeRound(t, Spec{Quant: Raw, TopK: 0.2}, 3, Block)
	if SqDistMatrix(append(sparse, nil)) != nil {
		t.Fatal("missing frame; want nil")
	}
	mixed := append(append([]*Frame{}, sparse[:2]...), densef[0])
	if SqDistMatrix(mixed) != nil {
		t.Fatal("mixed sparse/dense; want nil")
	}
	if SqDistMatrix(nil) != nil {
		t.Fatal("empty set; want nil")
	}
}

func TestSparseDotDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dense := make([]float64, 500)
	for i := range dense {
		dense[i] = rng.NormFloat64()
	}
	for _, k := range []int{0, 1, 3, 17, 100} {
		idx := make([]int32, k)
		val := make([]float64, k)
		seen := map[int32]bool{}
		for t2 := range idx {
			id := int32(rng.Intn(len(dense)))
			for seen[id] {
				id = int32(rng.Intn(len(dense)))
			}
			seen[id] = true
			idx[t2] = id
			val[t2] = rng.NormFloat64()
		}
		want := 0.0
		for t2 := range idx {
			want += val[t2] * dense[idx[t2]]
		}
		got := SparseDotDense(idx, val, dense)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("k=%d: SparseDotDense = %v, want %v", k, got, want)
		}
	}
}
