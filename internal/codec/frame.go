package codec

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/tensor"
)

// Block is the int8 quantization block length: one float64 scale factor per
// Block consecutive elements of the quantized array. It equals the tensor
// kernel family's block so the quantized-domain geometry maps 1:1 onto
// Int8BlockDots calls.
const Block = tensor.Int8Block

// Frame is one client's compressed round update.
//
// Every frame except the dense raw one represents the delta Δ = w − g
// against the round's global model; the dense raw frame carries the weight
// vector w itself, verbatim, so that the lossless "raw" codec reconstructs
// clients' updates bit-identically to an uncompressed run (g + (w−g) would
// re-round and break that equivalence).
type Frame struct {
	// Spec is the codec configuration that produced the frame.
	Spec Spec
	// Dim is the full model dimension.
	Dim int
	// Idx, when non-nil, lists the kept coordinates in strictly ascending
	// order (top-k sparsification); nil means dense.
	Idx []int32
	// Val holds the frame's float64 values: the dequantized delta at each
	// kept coordinate for sparse frames, the full delta for dense fp16
	// frames, the full weight vector for dense raw frames. It is nil for
	// dense int8 frames, whose storage is Q+Scales alone.
	Val []float64
	// Q and Scales are the int8 storage: quantized values and one scale
	// per Block elements of the quantized array (Q[i] decodes to
	// Scales[i/Block]*Q[i]). Nil for raw and fp16 frames.
	Q      []int8
	Scales []float64
}

// IsDelta reports whether the frame's values are a delta against the global
// model (true for everything except dense raw frames, which carry weights).
func (f *Frame) IsDelta() bool {
	return f.Spec.Quant != Raw || f.Idx != nil
}

// quantLen is the number of stored values (k for sparse, Dim for dense).
func (f *Frame) quantLen() int {
	if f.Idx != nil {
		return len(f.Idx)
	}
	return f.Dim
}

// Reconstruct returns the dense weight vector the frame encodes, given the
// round's global model. The result is freshly allocated.
func (f *Frame) Reconstruct(global []float64) []float64 {
	if len(global) != f.Dim {
		panic(fmt.Sprintf("codec: Reconstruct dim %d against global of %d", f.Dim, len(global)))
	}
	if !f.IsDelta() {
		out := make([]float64, f.Dim)
		copy(out, f.Val)
		return out
	}
	out := make([]float64, f.Dim)
	copy(out, global)
	f.AddDelta(out)
	return out
}

// AddDelta adds the frame's delta into dst in place. It panics on dense raw
// frames, which carry no delta. Sparse frames touch only their k kept
// coordinates, so accumulating a client history (FoolsGold) costs O(k)
// instead of O(d).
func (f *Frame) AddDelta(dst []float64) {
	if !f.IsDelta() {
		panic("codec: AddDelta on a dense raw frame (carries weights, not a delta)")
	}
	if len(dst) != f.Dim {
		panic(fmt.Sprintf("codec: AddDelta dim %d into %d", f.Dim, len(dst)))
	}
	if f.Idx != nil {
		for t, id := range f.Idx {
			dst[id] += f.Val[t]
		}
		return
	}
	if f.Spec.Quant == Int8 {
		for i := range dst {
			dst[i] += f.Scales[i/Block] * float64(f.Q[i])
		}
		return
	}
	for i := range dst {
		dst[i] += f.Val[i]
	}
}

// Encoder compresses per-client round updates under one Spec. When the spec
// enables error feedback the encoder carries each client's residual across
// rounds, so it must be reused for the whole run; without EF it is
// stateless. Encode is not safe for concurrent use.
type Encoder struct {
	spec Spec
	res  map[int][]float64
}

// NewEncoder returns an encoder for the spec, or nil for a disabled spec.
// It panics on an invalid spec; validate user input first.
func NewEncoder(spec Spec) *Encoder {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if !spec.Enabled() {
		return nil
	}
	e := &Encoder{spec: spec}
	if spec.EF {
		e.res = make(map[int][]float64)
	}
	return e
}

// Spec returns the encoder's configuration.
func (e *Encoder) Spec() Spec { return e.spec }

// Encode compresses one client's round update (weights trained from
// global). Deterministic: the int8 rounding stream is keyed by (clientID,
// round) and consumed in ascending position order, and top-k selection
// breaks magnitude ties by lower index.
func (e *Encoder) Encode(clientID, round int, global, weights []float64) *Frame {
	dim := len(global)
	if len(weights) != dim {
		panic(fmt.Sprintf("codec: Encode weights dim %d vs global %d", len(weights), dim))
	}
	if e.spec.Quant == Raw && e.spec.TopK == 0 {
		// Lossless dense control: ship the weights verbatim.
		val := make([]float64, dim)
		copy(val, weights)
		return &Frame{Spec: e.spec, Dim: dim, Val: val}
	}

	delta := make([]float64, dim)
	for i := range delta {
		delta[i] = weights[i] - global[i]
	}
	if e.spec.EF {
		if r := e.res[clientID]; r != nil {
			for i := range delta {
				delta[i] += r[i]
			}
		}
	}

	f := &Frame{Spec: e.spec, Dim: dim}
	vals := delta
	if e.spec.TopK > 0 {
		f.Idx = topKIndices(delta, e.spec.TopK)
		vals = make([]float64, len(f.Idx))
		for t, id := range f.Idx {
			vals[t] = delta[id]
		}
	}

	switch e.spec.Quant {
	case Raw:
		f.Val = vals // sparse raw: vals is already a fresh gather
	case FP16:
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = f16ToF64(f64ToF16(v))
		}
		f.Val = out
	case Int8:
		f.Q, f.Scales = quantizeInt8(vals, newRoundStream(clientID, round))
		if f.Idx != nil {
			// Sparse int8 keeps the dequantized values alongside Q so the
			// merge geometry and AddDelta stay O(k) float operations.
			out := make([]float64, len(vals))
			for i := range out {
				out[i] = f.Scales[i/Block] * float64(f.Q[i])
			}
			f.Val = out
		}
	}

	if e.spec.EF {
		// Residual = what the frame failed to carry. Reuse delta in place:
		// subtract the encoded delta at every stored coordinate.
		if f.Idx != nil {
			for t, id := range f.Idx {
				delta[id] -= f.Val[t]
			}
		} else if f.Spec.Quant == Int8 {
			for i := range delta {
				delta[i] -= f.Scales[i/Block] * float64(f.Q[i])
			}
		} else {
			for i := range delta {
				delta[i] -= f.Val[i]
			}
		}
		e.res[clientID] = delta
	}
	return f
}

// topKIndices returns the ⌈frac·d⌉ largest-|v| coordinate indices in
// ascending index order. Magnitude ties break toward the lower index, so
// the selection is a pure function of the delta. The (|v| desc, index asc)
// ranking is a total order, so the kept set is unique and any selection
// algorithm yields it; a k-bounded min-heap does so in O(d log k) instead
// of sorting all d coordinates.
func topKIndices(delta []float64, frac float64) []int32 {
	d := len(delta)
	k := int(math.Ceil(frac * float64(d)))
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	abs := make([]float64, d)
	for i, v := range delta {
		abs[i] = math.Abs(v)
	}
	// The kept set is exactly: every coordinate whose magnitude strictly
	// exceeds the k-th largest, plus the lowest-index coordinates at that
	// threshold until k are chosen. Selecting the threshold value first
	// (O(d) expected) and then collecting in two sequential passes is
	// cache-friendly and allocation-light.
	t := kthLargest(abs, k)
	idx := make([]int32, 0, k)
	for i, a := range abs {
		if a > t {
			idx = append(idx, int32(i))
		}
	}
	for i, need := 0, k-len(idx); need > 0; i++ {
		if abs[i] == t {
			idx = append(idx, int32(i))
			need--
		}
	}
	slices.Sort(idx)
	return idx
}

// kthLargest returns the k-th largest value of vals (1 ≤ k ≤ len(vals))
// without reordering the input: Hoare-partition quickselect with
// median-of-three pivots on a scratch copy. Deterministic, and the selected
// value is algorithm-independent, so any future rewrite keeps results
// bit-identical.
func kthLargest(vals []float64, k int) float64 {
	v := make([]float64, len(vals))
	copy(v, vals)
	target := len(v) - k // ascending rank
	lo, hi := 0, len(v)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid] < v[lo] {
			v[mid], v[lo] = v[lo], v[mid]
		}
		if v[hi] < v[lo] {
			v[hi], v[lo] = v[lo], v[hi]
		}
		if v[hi] < v[mid] {
			v[hi], v[mid] = v[mid], v[hi]
		}
		pivot := v[mid]
		i, j := lo, hi
		for i <= j {
			for v[i] < pivot {
				i++
			}
			for v[j] > pivot {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j
		case target >= i:
			lo = i
		default:
			return v[target]
		}
	}
	return v[target]
}

// quantizeInt8 quantizes vals with one scale per Block elements:
// scale = maxabs/127, q = stochastic-round(v/scale) clamped to ±127. Every
// element consumes exactly one draw from the stream, in ascending order.
func quantizeInt8(vals []float64, rs *roundStream) (q []int8, scales []float64) {
	n := len(vals)
	nb := (n + Block - 1) / Block
	q = make([]int8, n)
	scales = make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo, hi := b*Block, (b+1)*Block
		if hi > n {
			hi = n
		}
		maxabs := 0.0
		for _, v := range vals[lo:hi] {
			if a := math.Abs(v); a > maxabs {
				maxabs = a
			}
		}
		if maxabs == 0 {
			// All-zero block: scale 0, still consume the draws so stream
			// positions stay aligned with element positions.
			for i := lo; i < hi; i++ {
				rs.next()
			}
			continue
		}
		scale := maxabs / 127
		scales[b] = scale
		for i := lo; i < hi; i++ {
			x := vals[i] / scale
			f := math.Floor(x)
			if x-f > rs.next() {
				f++
			}
			if f > 127 {
				f = 127
			} else if f < -127 {
				f = -127
			}
			q[i] = int8(f)
		}
	}
	return q, scales
}
