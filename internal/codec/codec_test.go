package codec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestSpecStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Quant: Raw},
		{Quant: FP16},
		{Quant: Int8},
		{Quant: Raw, TopK: 0.1},
		{Quant: Int8, TopK: 0.05, EF: true},
		{Quant: FP16, EF: true},
	}
	for _, s := range specs {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", s.String(), got, s)
		}
	}
	if s, err := ParseSpec("none"); err != nil || s.Enabled() {
		t.Fatalf("ParseSpec(none) = %+v, %v", s, err)
	}
	for _, bad := range []string{"zstd", "int8,topk=1.5", "int8,wat", "raw,ef", "topk=0.1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{TopK: 0.1},                 // topk without codec
		{EF: true},                  // ef without codec
		{Quant: Raw, EF: true},      // ef without loss
		{Quant: Int8, TopK: 1.0},    // topk out of range
		{Quant: Int8, TopK: -0.1},   // negative
		{Quant: Kind(9), TopK: 0.1}, // unknown kind
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted", s)
		}
	}
	if err := (Spec{Quant: Int8, TopK: 0.1, EF: true}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestFP16RoundTrip(t *testing.T) {
	// Exactly representable values round-trip bit-identically.
	for _, v := range []float64{0, 1, -1, 0.5, 65504, -65504, 0.0009765625} {
		h := f64ToF16(v)
		if got := f16ToF64(h); got != v {
			t.Fatalf("fp16 round trip of representable %v: got %v", v, got)
		}
		if h2 := f64ToF16(f16ToF64(h)); h2 != h {
			t.Fatalf("fp16 re-encode of %v: bits %#04x -> %#04x", v, h, h2)
		}
	}
	// Relative error bound 2^-11 for normal-range values; saturation.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(9)-4))
		got := f16ToF64(f64ToF16(v))
		if math.Abs(v) >= 6.2e-5 && math.Abs(v) <= 65504 {
			if math.Abs(got-v) > math.Abs(v)*math.Pow(2, -11) {
				t.Fatalf("fp16(%v) = %v: error beyond 2^-11 relative", v, got)
			}
		}
	}
	if got := f16ToF64(f64ToF16(1e6)); got != 65504 {
		t.Fatalf("fp16 overflow saturates to 65504, got %v", got)
	}
	if got := f16ToF64(f64ToF16(-1e6)); got != -65504 {
		t.Fatalf("fp16 negative overflow saturates to -65504, got %v", got)
	}
}

func TestQuantizeInt8Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 3*Block+17)
	for i := range vals {
		vals[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(5)-2))
	}
	// One all-zero block in the middle.
	for i := Block; i < 2*Block; i++ {
		vals[i] = 0
	}
	q, scales := quantizeInt8(vals, newRoundStream(3, 9))
	if len(scales) != 4 {
		t.Fatalf("scales = %d blocks, want 4", len(scales))
	}
	if scales[1] != 0 {
		t.Fatalf("zero block scale = %v, want 0", scales[1])
	}
	for i, v := range vals {
		dq := scales[i/Block] * float64(q[i])
		if err := math.Abs(dq - v); err > scales[i/Block]+1e-300 {
			t.Fatalf("elem %d: |dq-v| = %v beyond one quantization step %v", i, err, scales[i/Block])
		}
		if q[i] > 127 || q[i] < -127 {
			t.Fatalf("elem %d: q = %d outside ±127", i, q[i])
		}
	}
	// Deterministic replay: same (client, round) stream, same output.
	q2, scales2 := quantizeInt8(vals, newRoundStream(3, 9))
	if !reflect.DeepEqual(q, q2) || !reflect.DeepEqual(scales, scales2) {
		t.Fatal("quantizeInt8 not deterministic for a fixed stream key")
	}
	// Different round: different rounding decisions somewhere.
	q3, _ := quantizeInt8(vals, newRoundStream(3, 10))
	if reflect.DeepEqual(q, q3) {
		t.Fatal("distinct rounds produced identical stochastic rounding")
	}
}

func TestEncoderRawDenseBitIdentical(t *testing.T) {
	enc := NewEncoder(Spec{Quant: Raw})
	global := []float64{1, 2, 3, 4}
	weights := []float64{1.1, 1.9, 3.00000001, -4}
	f := enc.Encode(0, 0, global, weights)
	if f.IsDelta() {
		t.Fatal("dense raw frame must carry weights, not a delta")
	}
	got := f.Reconstruct(global)
	if !reflect.DeepEqual(got, weights) {
		t.Fatalf("raw reconstruct = %v, want bit-identical %v", got, weights)
	}
}

func TestEncoderTopK(t *testing.T) {
	enc := NewEncoder(Spec{Quant: Raw, TopK: 0.25})
	dim := 40
	global := make([]float64, dim)
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = float64(i%7) * 0.1
	}
	f := enc.Encode(1, 2, global, weights)
	if want := 10; len(f.Idx) != want { // ceil(0.25*40)
		t.Fatalf("kept %d coordinates, want %d", len(f.Idx), want)
	}
	for t2 := 1; t2 < len(f.Idx); t2++ {
		if f.Idx[t2] <= f.Idx[t2-1] {
			t.Fatal("indices not strictly ascending")
		}
	}
	// All kept values must be the largest magnitudes (0.6 here).
	for t2, id := range f.Idx {
		if f.Val[t2] != weights[id] {
			t.Fatalf("kept value %v at %d, want %v", f.Val[t2], id, weights[id])
		}
		if math.Abs(weights[id]) < 0.5 { // top-10 of 40 coords = the 0.6s and 0.5s
			t.Fatalf("kept coordinate %d with |v|=%v, not among the largest", id, math.Abs(weights[id]))
		}
	}
	// Reconstruct: kept coords exact, dropped coords equal global.
	rec := f.Reconstruct(global)
	kept := map[int32]bool{}
	for _, id := range f.Idx {
		kept[id] = true
	}
	for i := range rec {
		want := global[i]
		if kept[int32(i)] {
			want = weights[i]
		}
		if rec[i] != want {
			t.Fatalf("rec[%d] = %v, want %v", i, rec[i], want)
		}
	}
}

func TestErrorFeedbackCarriesDroppedMass(t *testing.T) {
	spec := Spec{Quant: Raw, TopK: 0.1, EF: true}
	enc := NewEncoder(spec)
	dim := 20
	global := make([]float64, dim)
	// Client persistently pushes coordinate 5 a little and coordinate 9 a
	// lot; with k=2 only 9 (and the next largest) survive round one.
	weights := make([]float64, dim)
	weights[9] = 1.0
	weights[5] = 0.1
	weights[3] = 0.2
	f1 := enc.Encode(0, 0, global, weights)
	dropped5 := true
	for _, id := range f1.Idx {
		if id == 5 {
			dropped5 = false
		}
	}
	if !dropped5 {
		t.Skip("coordinate 5 unexpectedly kept; test premise void")
	}
	// Round two: client submits no new movement; the residual alone must
	// resurface coordinate 5's mass.
	f2 := enc.Encode(0, 1, global, global)
	found := false
	for t2, id := range f2.Idx {
		if id == 5 && f2.Val[t2] == 0.1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("round-2 frame %v / %v does not carry coordinate 5's residual", f2.Idx, f2.Val)
	}
}

func TestEncoderDeterministicAcrossEncoders(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dim := 2*Block + 31
	global := make([]float64, dim)
	weights := make([]float64, dim)
	for i := range weights {
		global[i] = rng.NormFloat64()
		weights[i] = global[i] + 0.01*rng.NormFloat64()
	}
	for _, spec := range []Spec{
		{Quant: Int8},
		{Quant: Int8, TopK: 0.1},
		{Quant: FP16, TopK: 0.2, EF: true},
	} {
		a := NewEncoder(spec).Encode(7, 3, global, weights)
		b := NewEncoder(spec).Encode(7, 3, global, weights)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %q: two fresh encoders disagree", spec)
		}
		// AddDelta and Reconstruct agree exactly.
		rec := a.Reconstruct(global)
		alt := make([]float64, dim)
		copy(alt, global)
		a.AddDelta(alt)
		if !reflect.DeepEqual(rec, alt) {
			t.Fatalf("spec %q: Reconstruct and AddDelta disagree", spec)
		}
	}
}

func TestInt8DenseReconstructError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dim := 4 * Block
	global := make([]float64, dim)
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = 0.02 * rng.NormFloat64()
	}
	f := NewEncoder(Spec{Quant: Int8}).Encode(0, 0, global, weights)
	rec := f.Reconstruct(global)
	for i := range rec {
		step := f.Scales[i/Block]
		if math.Abs(rec[i]-weights[i]) > step {
			t.Fatalf("coord %d: error %v beyond one step %v", i, rec[i]-weights[i], step)
		}
	}
}
