package flnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
)

// Trainer produces the client's update for a round — the client-side
// counterpart of fl.Attack/fl.BenignClient, spanning both honest and
// adversarial behaviour.
type Trainer interface {
	// Train receives the round's global and previous-global weights and
	// returns the local weights plus the reported sample count.
	Train(round int, global, prevGlobal []float64) (weights []float64, numSamples int, err error)
}

// BenignTrainer runs honest local SGD on a private shard (Eq. 1).
type BenignTrainer struct {
	client *fl.BenignClient
}

var _ Trainer = (*BenignTrainer)(nil)

// NewBenignTrainer builds the honest behaviour over data[shard].
func NewBenignTrainer(data *dataset.Dataset, shard []int, newModel func(rng *rand.Rand) *nn.Network, lr float64, localEpochs, batchSize int, rng *rand.Rand) *BenignTrainer {
	return &BenignTrainer{
		client: fl.NewBenignClient(0, data, shard, newModel(rng), lr, localEpochs, batchSize, rng),
	}
}

// Train implements Trainer.
func (t *BenignTrainer) Train(_ int, global, _ []float64) ([]float64, int, error) {
	u, err := t.client.Train(global)
	if err != nil {
		return nil, 0, err
	}
	return u.Weights, u.NumSamples, nil
}

// AttackTrainer adapts any fl.Attack (including the data-free DFA variants)
// to the networked client loop. Each networked attacker crafts one update
// per request, with exactly the knowledge the wire gives it: the global
// model, the previous global model, and nothing else.
type AttackTrainer struct {
	attack     fl.Attack
	newModel   func(rng *rand.Rand) *nn.Network
	rng        *rand.Rand
	numSamples int
}

var _ Trainer = (*AttackTrainer)(nil)

// NewAttackTrainer wraps an attack; numSamples is the plausible n_i the
// adversary reports.
func NewAttackTrainer(attack fl.Attack, newModel func(rng *rand.Rand) *nn.Network, rng *rand.Rand, numSamples int) *AttackTrainer {
	return &AttackTrainer{attack: attack, newModel: newModel, rng: rng, numSamples: numSamples}
}

// Train implements Trainer.
func (t *AttackTrainer) Train(round int, global, prevGlobal []float64) ([]float64, int, error) {
	ctx := &fl.AttackContext{
		Round:        round,
		Global:       global,
		PrevGlobal:   prevGlobal,
		NumAttackers: 1,
		NumSelected:  1,
		NewModel:     t.newModel,
		Rng:          t.rng,
	}
	vecs, err := t.attack.Craft(ctx)
	if err != nil {
		return nil, 0, err
	}
	if len(vecs) != 1 {
		return nil, 0, fmt.Errorf("flnet: attack returned %d vectors, want 1", len(vecs))
	}
	return vecs[0], t.numSamples, nil
}

// CodecRejectedError is the typed join failure returned when the server
// refuses the client's requested codec at the handshake, before any round
// runs.
type CodecRejectedError struct {
	// Codec is the spec token the client requested.
	Codec string
	// Reason is the server's explanation.
	Reason string
}

func (e *CodecRejectedError) Error() string {
	return fmt.Sprintf("flnet: join rejected: codec %q: %s", e.Codec, e.Reason)
}

// JoinRejectedError is the typed join failure for non-codec rejections on a
// multi-tenant host: unknown federation, a full pending-join queue
// (RejectAdmission — retry after a backoff), or a federation past its join
// phase (RejectClosed).
type JoinRejectedError struct {
	// Federation is the ID the client asked for.
	Federation string
	// Code is the machine-readable rejection class (Reject* constants).
	Code string
	// Reason is the server's explanation.
	Reason string
}

func (e *JoinRejectedError) Error() string {
	return fmt.Sprintf("flnet: join rejected: federation %q: %s: %s", e.Federation, e.Code, e.Reason)
}

// Client is one networked federation participant.
type Client struct {
	conn    *Conn
	trainer Trainer
	enc     *codec.Encoder
	// ID is the server-assigned identity, valid after Join.
	ID int
}

// Dial connects to the server and performs the join handshake with no
// codec (legacy dense updates).
func Dial(addr string, trainer Trainer, timeout time.Duration) (*Client, error) {
	return DialCodec(addr, trainer, timeout, codec.Spec{})
}

// DialCodec connects to the server and negotiates the given update codec at
// the join handshake. A server that does not serve the codec replies with a
// rejection before round start, surfaced as *CodecRejectedError.
func DialCodec(addr string, trainer Trainer, timeout time.Duration, spec codec.Spec) (*Client, error) {
	return DialFederation(addr, "", trainer, timeout, spec)
}

// DialFederation connects to a (possibly multi-tenant) host and joins the
// named federation, negotiating the given update codec at the handshake. An
// empty federation joins a single-tenant server, or the sole federation of
// a host — exactly what a legacy client's handshake asks for. Codec
// refusals surface as *CodecRejectedError; every other typed rejection
// (unknown federation, admission control, closed) as *JoinRejectedError.
func DialFederation(addr, federation string, trainer Trainer, timeout time.Duration, spec codec.Spec) (*Client, error) {
	if trainer == nil {
		return nil, errors.New("flnet: trainer must not be nil")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("flnet: dial %s: %w", addr, err)
	}
	conn := NewConn(raw, timeout)
	if err := conn.Send(&Envelope{Type: MsgJoin, Codec: spec.String(), Federation: federation}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	ack, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("flnet: join ack: %w", err)
	}
	if ack.Type == MsgJoinReject {
		_ = conn.Close()
		// Legacy servers predate RejectCode; the only rejection they could
		// produce was a codec refusal.
		if ack.RejectCode == "" || ack.RejectCode == RejectCodec {
			return nil, &CodecRejectedError{Codec: spec.String(), Reason: ack.Err}
		}
		return nil, &JoinRejectedError{Federation: federation, Code: ack.RejectCode, Reason: ack.Err}
	}
	if ack.Type != MsgJoinAck {
		_ = conn.Close()
		return nil, errProtocol(MsgJoinAck, ack)
	}
	return &Client{conn: conn, trainer: trainer, enc: codec.NewEncoder(spec), ID: ack.ClientID}, nil
}

// Run serves training requests until the server sends Done (returning the
// final global weights) or the connection fails.
func (c *Client) Run() ([]float64, error) {
	defer func() { _ = c.conn.Close() }()
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("flnet: client %d: %w", c.ID, err)
		}
		switch msg.Type {
		case MsgDone:
			return msg.Weights, nil
		case MsgTrainRequest:
			weights, n, err := c.trainer.Train(msg.Round, msg.Weights, msg.PrevWeights)
			if err != nil {
				return nil, fmt.Errorf("flnet: client %d train: %w", c.ID, err)
			}
			resp := &Envelope{
				Type:       MsgUpdate,
				Round:      msg.Round,
				ClientID:   c.ID,
				NumSamples: n,
			}
			if c.enc != nil {
				// Compressed session: ship the codec frame instead of the
				// dense vector. The rounding stream is keyed by the
				// server-assigned ID and the round, so a re-run of the
				// same federation encodes identically.
				frame := c.enc.Encode(c.ID, msg.Round, msg.Weights, weights)
				resp.Frame = codec.EncodeWire(frame)
			} else {
				resp.Weights = weights
			}
			if err := c.conn.Send(resp); err != nil {
				return nil, fmt.Errorf("flnet: client %d reply: %w", c.ID, err)
			}
		default:
			return nil, fmt.Errorf("flnet: client %d: unexpected %s", c.ID, msg.Type)
		}
	}
}
