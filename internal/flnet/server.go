package flnet

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/persist"
)

// ServerConfig configures the networked federation server.
type ServerConfig struct {
	// MinClients is the population size the server waits for before
	// training starts (the paper's N).
	MinClients int
	// PerRound is K, the number of clients selected per round.
	PerRound int
	// Rounds is the number of federated rounds.
	Rounds int
	// RoundTimeout bounds the wait for a selected client's update; clients
	// that miss it are treated as offline for the round (cross-device FL
	// explicitly tolerates stragglers).
	RoundTimeout time.Duration
	// HandshakeTimeout bounds each join handshake (the first Recv/Send on a
	// freshly accepted connection), so a half-open or garbage connection
	// cannot hold the join phase for a full RoundTimeout. 0 defaults to 5s.
	HandshakeTimeout time.Duration
	// AcceptTimeout, when positive, bounds the whole join phase: if
	// MinClients have not completed the handshake within it, Serve fails
	// instead of waiting forever. Requires a deadline-capable listener
	// (TCP/Unix); 0 preserves the legacy wait-forever behaviour.
	AcceptTimeout time.Duration
	// EvalLimit caps test samples per evaluation (0 = all).
	EvalLimit int
	// Seed drives client selection and model initialization.
	Seed int64
	// CheckpointPath, when non-empty, atomically persists the global model
	// after every round so a restarted server can resume from disk: Serve
	// loads and validates an existing checkpoint at start and continues
	// from the round after the one it records.
	CheckpointPath string
	// DatasetName and ModelName annotate checkpoints for load-side
	// validation.
	DatasetName, ModelName string
	// Scenario selects the engine's participation and aggregation axes
	// (client sampler, simulated churn, server optimizer, sync/async). The
	// zero value reproduces the legacy synchronous uniform round loop
	// bit-exactly. Simulated churn composes with the real RoundTimeout:
	// clients the model drops are never contacted, while real stragglers
	// are dropped by the socket deadline as before.
	Scenario fl.Scenario
	// Observer, when non-nil, receives every aggregation decision — the
	// forensics audit hook. Over sockets the server has no ground-truth
	// Malicious flags, so detection metrics reduce to decision auditing
	// unless the caller knows the deployment's adversaries.
	Observer fl.AggregationObserver
	// Codec is the canonical codec spec token (codec.Spec.String) the
	// server supports. A joining client must request either "" (legacy
	// uncompressed updates, always accepted) or exactly this token; any
	// other request is rejected at the handshake with MsgJoinReject,
	// before round start. Compression is client-side: the server decodes
	// frames, it never fabricates them.
	Codec string
}

// Validate reports configuration errors.
func (c *ServerConfig) Validate() error {
	switch {
	case c.MinClients <= 0:
		return errors.New("flnet: MinClients must be positive")
	case c.PerRound <= 0 || c.PerRound > c.MinClients:
		return fmt.Errorf("flnet: PerRound %d out of range (1..%d)", c.PerRound, c.MinClients)
	case c.Rounds <= 0:
		return errors.New("flnet: Rounds must be positive")
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if spec, err := codec.ParseSpec(c.Codec); err != nil {
		return fmt.Errorf("flnet: codec: %w", err)
	} else if c.Codec != "" && c.Codec != spec.String() {
		return fmt.Errorf("flnet: codec %q is not canonical (want %q)", c.Codec, spec.String())
	}
	return c.Scenario.Validate()
}

// RoundReport describes one networked round.
type RoundReport struct {
	// Round is the round index.
	Round int
	// Selected is the number of clients the sampler picked.
	Selected int
	// Dropped and Straggled count the simulated participation losses (the
	// engine's churn model); clients lost to the real RoundTimeout show up
	// only as a lower Responded.
	Dropped, Straggled int
	// Responded is the number of selected clients that returned an update
	// before the deadline.
	Responded int
	// Aggregations is the number of server aggregations applied (async
	// buffer flushes; 0 or 1 in sync mode).
	Aggregations int
	// Accuracy is the post-aggregation test accuracy.
	Accuracy float64
}

// ServerResult summarizes a networked training run.
type ServerResult struct {
	// Rounds holds the per-round reports.
	Rounds []RoundReport
	// MaxAccuracy and FinalAccuracy mirror the simulator's metrics.
	MaxAccuracy, FinalAccuracy float64
	// FinalWeights is the final global weight vector.
	FinalWeights []float64
}

// session is one connected client.
type session struct {
	id   int
	conn *Conn
	// spec is the codec the client negotiated at join ("" = legacy dense
	// updates). The server enforces it per update: a compressed session
	// must send frames of exactly this spec, a legacy one plain weights.
	spec codec.Spec
}

// Server drives federated training over real connections.
type Server struct {
	cfg      ServerConfig
	agg      fl.Aggregator
	newModel func(rng *rand.Rand) *nn.Network
	test     *dataset.Dataset
	// eval reuses its worker clones and scratch arenas across the
	// per-round evaluations.
	eval *fl.Evaluator
}

// NewServer builds a server with the given aggregation rule, model
// architecture and evaluation set.
func NewServer(cfg ServerConfig, agg fl.Aggregator, newModel func(rng *rand.Rand) *nn.Network, test *dataset.Dataset) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if agg == nil {
		return nil, errors.New("flnet: aggregator must not be nil")
	}
	s := &Server{cfg: cfg, agg: agg, newModel: newModel, test: test}
	if test != nil {
		s.eval = fl.NewEvaluator(test, cfg.EvalLimit)
	}
	return s, nil
}

// Serve accepts MinClients clients on lis, runs the configured rounds, and
// returns the result. The listener is not closed; the caller owns it.
func (s *Server) Serve(lis net.Listener) (*ServerResult, error) {
	// Resolve the starting state before any client joins, so an
	// incompatible checkpoint fails fast instead of after the handshakes.
	global := s.newModel(rand.New(rand.NewSource(s.cfg.Seed)))
	weights := global.WeightVector()
	startRound := 0
	resumeMax, resumeFinal := 0.0, -1.0
	var resumePrev []float64
	if cp, err := s.loadCheckpoint(len(weights)); err != nil {
		return nil, err
	} else if cp != nil {
		weights = cp.Weights
		resumePrev = cp.PrevWeights // w(t-1); empty in pre-field checkpoints
		startRound = cp.Round + 1
		// Restore the pre-crash metrics so acc_m covers the whole run even
		// when its peak predates the restart (older checkpoints lack
		// MaxAccuracy; the last round's accuracy is the best floor then).
		for _, v := range []float64{cp.MaxAccuracy, cp.Accuracy} {
			if !math.IsNaN(v) && v > resumeMax {
				resumeMax = v
			}
		}
		resumeFinal = cp.Accuracy
	}

	if startRound > 0 && s.cfg.Scenario.Async != nil {
		return nil, errors.New("flnet: checkpoint resume is not supported in async mode (in-flight updates are not checkpointed)")
	}

	sessions, err := s.acceptClients(lis)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, cl := range sessions {
			_ = cl.conn.Close()
		}
	}()

	// The first resumed round must hand clients the same w(t-1) an
	// uninterrupted run would have; only a fresh start uses prev == w(0).
	prev := append([]float64(nil), weights...)
	if len(resumePrev) == len(weights) && startRound > 0 {
		prev = resumePrev
	}

	eng := &fl.Engine{
		TotalClients: len(sessions),
		PerRound:     s.cfg.PerRound,
		Rounds:       s.cfg.Rounds,
		StartRound:   startRound,
		EvalEvery:    1,
		Seed:         s.cfg.Seed,
		Scenario:     s.cfg.Scenario,
		Transport:    &netTransport{server: s, sessions: sessions},
		Aggregator:   s.agg,
		Observer:     s.cfg.Observer,
		InitialMax:   resumeMax,
		InitialPrev:  prev,
	}
	if s.test != nil {
		eng.Evaluate = func(w []float64) (float64, error) {
			if err := global.SetWeightVector(w); err != nil {
				return 0, err
			}
			return s.eval.Accuracy(global, true), nil
		}
	}
	if s.cfg.CheckpointPath != "" {
		eng.OnRound = func(stats fl.RoundStats, w, p []float64, maxAcc float64) error {
			cp := &persist.Checkpoint{
				Round:       stats.Round,
				Dataset:     s.cfg.DatasetName,
				Model:       s.cfg.ModelName,
				Seed:        s.cfg.Seed,
				MinClients:  s.cfg.MinClients,
				PerRound:    s.cfg.PerRound,
				Weights:     w,
				PrevWeights: p,
				Accuracy:    stats.Accuracy,
				MaxAccuracy: maxAcc,
			}
			if err := persist.Save(s.cfg.CheckpointPath, cp); err != nil {
				return fmt.Errorf("flnet: round %d checkpoint: %w", stats.Round, err)
			}
			return nil
		}
	}

	engRes, finalWeights, err := eng.Run(weights)
	if err != nil {
		return nil, fmt.Errorf("flnet: %w", err)
	}
	res := &ServerResult{
		MaxAccuracy:   engRes.MaxAccuracy,
		FinalAccuracy: engRes.FinalAccuracy,
		FinalWeights:  finalWeights,
	}
	// A run that evaluated nothing (no test set, or zero remaining rounds)
	// keeps the checkpoint's pre-crash accuracy as its final metric.
	if math.IsNaN(res.FinalAccuracy) && resumeFinal >= 0 {
		res.FinalAccuracy = resumeFinal
	}
	for _, st := range engRes.Rounds {
		res.Rounds = append(res.Rounds, RoundReport{
			Round:        st.Round,
			Selected:     st.Selected,
			Dropped:      st.Dropped,
			Straggled:    st.Straggled,
			Responded:    st.Responded,
			Aggregations: st.Aggregations,
			Accuracy:     st.Accuracy,
		})
	}

	// Graceful shutdown: hand every client the final model.
	final := &Envelope{Type: MsgDone, Weights: finalWeights}
	for _, cl := range sessions {
		_ = cl.conn.Send(final) // best effort; client may have vanished
	}
	return res, nil
}

// netTransport exposes the socket round-trip as an engine Transport: the
// engine's responder set is contacted concurrently, and clients that miss
// the RoundTimeout are simply absent from the returned updates.
type netTransport struct {
	server   *Server
	sessions []*session
}

// Collect implements fl.Transport.
func (t *netTransport) Collect(round int, ids []int, global, prev []float64) ([]fl.Update, error) {
	return t.server.collectRound(t.sessions, ids, round, global, prev), nil
}

// loadCheckpoint restores the latest checkpoint from CheckpointPath, if one
// exists, validating that it belongs to this server's task and architecture
// before handing its weights to the round loop. A missing file means a
// fresh start; a present-but-incompatible one is an error, because silently
// training from mismatched weights would corrupt the federation.
func (s *Server) loadCheckpoint(wantLen int) (*persist.Checkpoint, error) {
	if s.cfg.CheckpointPath == "" {
		return nil, nil
	}
	cp, err := persist.LoadFile(s.cfg.CheckpointPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("flnet: resume: %w", err)
	}
	if s.cfg.DatasetName != "" && cp.Dataset != "" && cp.Dataset != s.cfg.DatasetName {
		return nil, fmt.Errorf("flnet: resume: checkpoint dataset %q, server dataset %q", cp.Dataset, s.cfg.DatasetName)
	}
	if s.cfg.ModelName != "" && cp.Model != "" && cp.Model != s.cfg.ModelName {
		return nil, fmt.Errorf("flnet: resume: checkpoint model %q, server model %q", cp.Model, s.cfg.ModelName)
	}
	if len(cp.Weights) != wantLen {
		return nil, fmt.Errorf("flnet: resume: checkpoint has %d weights, model has %d", len(cp.Weights), wantLen)
	}
	if len(cp.PrevWeights) != 0 && len(cp.PrevWeights) != wantLen {
		return nil, fmt.Errorf("flnet: resume: checkpoint has %d prev weights, model has %d", len(cp.PrevWeights), wantLen)
	}
	// MinClients > 0 marks a checkpoint that records the federation shape;
	// a different seed or population would make the selection-stream
	// replay produce a silent hybrid of two runs.
	if cp.MinClients > 0 {
		switch {
		case cp.Seed != s.cfg.Seed:
			return nil, fmt.Errorf("flnet: resume: checkpoint seed %d, server seed %d", cp.Seed, s.cfg.Seed)
		case cp.MinClients != s.cfg.MinClients:
			return nil, fmt.Errorf("flnet: resume: checkpoint population %d, server %d", cp.MinClients, s.cfg.MinClients)
		case cp.PerRound != s.cfg.PerRound:
			return nil, fmt.Errorf("flnet: resume: checkpoint selects %d per round, server %d", cp.PerRound, s.cfg.PerRound)
		}
	}
	if cp.Round < 0 || cp.Round >= s.cfg.Rounds {
		return nil, fmt.Errorf("flnet: resume: checkpoint round %d outside 0..%d", cp.Round, s.cfg.Rounds-1)
	}
	return cp, nil
}

// acceptClients performs the join handshake for MinClients connections.
// Each handshake runs under HandshakeTimeout, so a half-open or garbage
// connection cannot hold the join phase for a full RoundTimeout, and the
// whole phase is bounded by AcceptTimeout when configured.
func (s *Server) acceptClients(lis net.Listener) ([]*session, error) {
	var deadline time.Time
	if s.cfg.AcceptTimeout > 0 {
		deadline = time.Now().Add(s.cfg.AcceptTimeout)
		if d, ok := lis.(interface{ SetDeadline(time.Time) error }); ok {
			if err := d.SetDeadline(deadline); err == nil {
				defer func() { _ = d.SetDeadline(time.Time{}) }()
			}
		}
	}
	timedOut := func(n int) error {
		return fmt.Errorf("flnet: accept: join phase timed out after %v with %d/%d clients",
			s.cfg.AcceptTimeout, n, s.cfg.MinClients)
	}
	sessions := make([]*session, 0, s.cfg.MinClients)
	for len(sessions) < s.cfg.MinClients {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, timedOut(len(sessions))
		}
		raw, err := lis.Accept()
		if err != nil {
			var ne net.Error
			if !deadline.IsZero() && errors.As(err, &ne) && ne.Timeout() {
				return nil, timedOut(len(sessions))
			}
			return nil, fmt.Errorf("flnet: accept: %w", err)
		}
		conn := NewConn(raw, s.cfg.HandshakeTimeout)
		hello, err := conn.Recv()
		if err != nil {
			_ = conn.Close()
			continue // a scanner, half-open dial or silent peer; keep waiting
		}
		if hello.Type != MsgJoin {
			_ = conn.Close()
			continue
		}
		// Codec negotiation: a client is served iff it requests no codec
		// (legacy dense updates) or exactly the server's codec. Anything
		// else is rejected here, with a typed reason, before round start —
		// a mismatched client must never burn rounds as a permanent
		// straggler. Rejected connections do not count toward MinClients.
		if hello.Codec != "" && hello.Codec != s.cfg.Codec {
			_ = conn.Send(&Envelope{
				Type: MsgJoinReject,
				Err:  fmt.Sprintf("codec %q not supported (server: %q)", hello.Codec, s.cfg.Codec),
			})
			_ = conn.Close()
			continue
		}
		spec, err := codec.ParseSpec(hello.Codec)
		if err != nil {
			_ = conn.Send(&Envelope{Type: MsgJoinReject, Err: err.Error()})
			_ = conn.Close()
			continue
		}
		id := len(sessions)
		if err := conn.Send(&Envelope{Type: MsgJoinAck, ClientID: id, Codec: hello.Codec}); err != nil {
			_ = conn.Close()
			continue
		}
		// The session survives the handshake: switch to the round deadline.
		conn.Timeout = s.cfg.RoundTimeout
		sessions = append(sessions, &session{id: id, conn: conn, spec: spec})
	}
	return sessions, nil
}

// collectRound sends TrainRequests to the selected sessions concurrently
// and gathers the updates that arrive before the deadline.
func (s *Server) collectRound(sessions []*session, selected []int, round int, weights, prev []float64) []fl.Update {
	type reply struct {
		update fl.Update
		ok     bool
	}
	replies := make(chan reply, len(selected))
	var wg sync.WaitGroup
	for _, idx := range selected {
		cl := sessions[idx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &Envelope{
				Type:        MsgTrainRequest,
				Round:       round,
				ClientID:    cl.id,
				Weights:     weights,
				PrevWeights: prev,
			}
			if err := cl.conn.Send(req); err != nil {
				replies <- reply{}
				return
			}
			resp, err := cl.conn.Recv()
			if err != nil || resp.Type != MsgUpdate || resp.Round != round {
				replies <- reply{}
				return
			}
			u := fl.Update{ClientID: cl.id, NumSamples: resp.NumSamples}
			if cl.spec.Enabled() {
				// A compressed session must deliver a frame of exactly the
				// negotiated spec; anything else fails closed and the
				// client is treated as a straggler for the round.
				frame, err := codec.DecodeWire(resp.Frame, len(weights))
				if err != nil || frame.Dim != len(weights) || frame.Spec != cl.spec {
					replies <- reply{}
					return
				}
				u.Frame = frame
				u.Weights = frame.Reconstruct(weights)
			} else {
				if len(resp.Weights) != len(weights) {
					replies <- reply{}
					return
				}
				u.Weights = resp.Weights
			}
			replies <- reply{update: u, ok: true}
		}()
	}
	wg.Wait()
	close(replies)
	var updates []fl.Update
	for r := range replies {
		if r.ok {
			updates = append(updates, r.update)
		}
	}
	return updates
}
