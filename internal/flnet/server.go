package flnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/persist"
)

// ServerConfig configures the networked federation server.
type ServerConfig struct {
	// MinClients is the population size the server waits for before
	// training starts (the paper's N).
	MinClients int
	// PerRound is K, the number of clients selected per round.
	PerRound int
	// Rounds is the number of federated rounds.
	Rounds int
	// RoundTimeout bounds the wait for a selected client's update; clients
	// that miss it are treated as offline for the round (cross-device FL
	// explicitly tolerates stragglers).
	RoundTimeout time.Duration
	// EvalLimit caps test samples per evaluation (0 = all).
	EvalLimit int
	// Seed drives client selection and model initialization.
	Seed int64
	// CheckpointPath, when non-empty, atomically persists the global model
	// after every round so a restarted server can resume from disk.
	CheckpointPath string
	// DatasetName and ModelName annotate checkpoints for load-side
	// validation.
	DatasetName, ModelName string
}

// Validate reports configuration errors.
func (c *ServerConfig) Validate() error {
	switch {
	case c.MinClients <= 0:
		return errors.New("flnet: MinClients must be positive")
	case c.PerRound <= 0 || c.PerRound > c.MinClients:
		return fmt.Errorf("flnet: PerRound %d out of range (1..%d)", c.PerRound, c.MinClients)
	case c.Rounds <= 0:
		return errors.New("flnet: Rounds must be positive")
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	return nil
}

// RoundReport describes one networked round.
type RoundReport struct {
	// Round is the round index.
	Round int
	// Responded is the number of selected clients that returned an update
	// before the deadline.
	Responded int
	// Accuracy is the post-aggregation test accuracy.
	Accuracy float64
}

// ServerResult summarizes a networked training run.
type ServerResult struct {
	// Rounds holds the per-round reports.
	Rounds []RoundReport
	// MaxAccuracy and FinalAccuracy mirror the simulator's metrics.
	MaxAccuracy, FinalAccuracy float64
	// FinalWeights is the final global weight vector.
	FinalWeights []float64
}

// session is one connected client.
type session struct {
	id   int
	conn *Conn
}

// Server drives federated training over real connections.
type Server struct {
	cfg      ServerConfig
	agg      fl.Aggregator
	newModel func(rng *rand.Rand) *nn.Network
	test     *dataset.Dataset
}

// NewServer builds a server with the given aggregation rule, model
// architecture and evaluation set.
func NewServer(cfg ServerConfig, agg fl.Aggregator, newModel func(rng *rand.Rand) *nn.Network, test *dataset.Dataset) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if agg == nil {
		return nil, errors.New("flnet: aggregator must not be nil")
	}
	return &Server{cfg: cfg, agg: agg, newModel: newModel, test: test}, nil
}

// Serve accepts MinClients clients on lis, runs the configured rounds, and
// returns the result. The listener is not closed; the caller owns it.
func (s *Server) Serve(lis net.Listener) (*ServerResult, error) {
	sessions, err := s.acceptClients(lis)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, cl := range sessions {
			_ = cl.conn.Close()
		}
	}()

	global := s.newModel(rand.New(rand.NewSource(s.cfg.Seed)))
	weights := global.WeightVector()
	prev := append([]float64(nil), weights...)
	selRng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5DEECE66D))
	res := &ServerResult{FinalAccuracy: math.NaN()}

	for round := 0; round < s.cfg.Rounds; round++ {
		perm := selRng.Perm(len(sessions))[:s.cfg.PerRound]
		updates := s.collectRound(sessions, perm, round, weights, prev)
		report := RoundReport{Round: round, Responded: len(updates), Accuracy: math.NaN()}
		if len(updates) > 0 {
			newWeights, _, err := s.agg.Aggregate(weights, updates)
			if err != nil {
				return nil, fmt.Errorf("flnet: round %d: %w", round, err)
			}
			if len(newWeights) != len(weights) {
				return nil, fmt.Errorf("flnet: round %d: aggregate length %d, want %d", round, len(newWeights), len(weights))
			}
			prev = weights
			weights = newWeights
		}
		if s.test != nil {
			if err := global.SetWeightVector(weights); err != nil {
				return nil, err
			}
			acc := fl.Evaluate(global, s.test, s.cfg.EvalLimit, true)
			report.Accuracy = acc
			if acc > res.MaxAccuracy {
				res.MaxAccuracy = acc
			}
			res.FinalAccuracy = acc
		}
		res.Rounds = append(res.Rounds, report)
		if s.cfg.CheckpointPath != "" {
			cp := &persist.Checkpoint{
				Round:    round,
				Dataset:  s.cfg.DatasetName,
				Model:    s.cfg.ModelName,
				Weights:  weights,
				Accuracy: report.Accuracy,
			}
			if err := persist.Save(s.cfg.CheckpointPath, cp); err != nil {
				return nil, fmt.Errorf("flnet: round %d checkpoint: %w", round, err)
			}
		}
	}

	// Graceful shutdown: hand every client the final model.
	final := &Envelope{Type: MsgDone, Weights: weights}
	for _, cl := range sessions {
		_ = cl.conn.Send(final) // best effort; client may have vanished
	}
	res.FinalWeights = weights
	return res, nil
}

// acceptClients performs the join handshake for MinClients connections.
func (s *Server) acceptClients(lis net.Listener) ([]*session, error) {
	sessions := make([]*session, 0, s.cfg.MinClients)
	for len(sessions) < s.cfg.MinClients {
		raw, err := lis.Accept()
		if err != nil {
			return nil, fmt.Errorf("flnet: accept: %w", err)
		}
		conn := NewConn(raw, s.cfg.RoundTimeout)
		hello, err := conn.Recv()
		if err != nil {
			_ = conn.Close()
			continue // a scanner or broken dial; keep waiting
		}
		if hello.Type != MsgJoin {
			_ = conn.Close()
			continue
		}
		id := len(sessions)
		if err := conn.Send(&Envelope{Type: MsgJoinAck, ClientID: id}); err != nil {
			_ = conn.Close()
			continue
		}
		sessions = append(sessions, &session{id: id, conn: conn})
	}
	return sessions, nil
}

// collectRound sends TrainRequests to the selected sessions concurrently
// and gathers the updates that arrive before the deadline.
func (s *Server) collectRound(sessions []*session, selected []int, round int, weights, prev []float64) []fl.Update {
	type reply struct {
		update fl.Update
		ok     bool
	}
	replies := make(chan reply, len(selected))
	var wg sync.WaitGroup
	for _, idx := range selected {
		cl := sessions[idx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &Envelope{
				Type:        MsgTrainRequest,
				Round:       round,
				ClientID:    cl.id,
				Weights:     weights,
				PrevWeights: prev,
			}
			if err := cl.conn.Send(req); err != nil {
				replies <- reply{}
				return
			}
			resp, err := cl.conn.Recv()
			if err != nil || resp.Type != MsgUpdate || resp.Round != round || len(resp.Weights) != len(weights) {
				replies <- reply{}
				return
			}
			replies <- reply{
				update: fl.Update{
					ClientID:   cl.id,
					Weights:    resp.Weights,
					NumSamples: resp.NumSamples,
				},
				ok: true,
			}
		}()
	}
	wg.Wait()
	close(replies)
	var updates []fl.Update
	for r := range replies {
		if r.ok {
			updates = append(updates, r.update)
		}
	}
	return updates
}
