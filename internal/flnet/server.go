package flnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// ServerConfig configures one federation (whether served single-tenant by
// Server or multiplexed with others by Host).
type ServerConfig struct {
	// MinClients is the population size the server waits for before
	// training starts (the paper's N).
	MinClients int
	// PerRound is K, the number of clients selected per round.
	PerRound int
	// Rounds is the number of federated rounds.
	Rounds int
	// RoundTimeout bounds the wait for a selected client's update; clients
	// that miss it are treated as offline for the round (cross-device FL
	// explicitly tolerates stragglers).
	RoundTimeout time.Duration
	// HandshakeTimeout bounds each join handshake (the first Recv/Send on a
	// freshly accepted connection), so a half-open or garbage connection
	// cannot hold the join phase for a full RoundTimeout. 0 defaults to 5s.
	HandshakeTimeout time.Duration
	// AcceptTimeout, when positive, bounds the whole join phase: if
	// MinClients have not completed the handshake within it, Serve (or
	// Federation.Run) fails instead of waiting forever. Single-tenant Serve
	// requires a deadline-capable listener (TCP/Unix); 0 preserves the
	// legacy wait-forever behaviour.
	AcceptTimeout time.Duration
	// PendingJoins bounds the queue of handshakes awaiting admission on a
	// multi-tenant host — the admission control for join storms: joins
	// beyond the bound are rejected immediately with RejectAdmission (the
	// client may retry) instead of accumulating unbounded half-open state.
	// 0 defaults to max(MinClients, 16). Single-tenant Serve admits inline
	// off the accept loop and never queues.
	PendingJoins int
	// EvalLimit caps test samples per evaluation (0 = all).
	EvalLimit int
	// Seed drives client selection and model initialization.
	Seed int64
	// CheckpointPath, when non-empty, atomically persists the global model
	// after every round so a restarted server can resume from disk: Serve
	// loads and validates an existing checkpoint at start and continues
	// from the round after the one it records. Co-hosted federations must
	// use distinct paths.
	CheckpointPath string
	// DatasetName and ModelName annotate checkpoints for load-side
	// validation.
	DatasetName, ModelName string
	// Scenario selects the engine's participation and aggregation axes
	// (client sampler, simulated churn, server optimizer, sync/async). The
	// zero value reproduces the legacy synchronous uniform round loop
	// bit-exactly. Simulated churn composes with the real RoundTimeout:
	// clients the model drops are never contacted, while real stragglers
	// are dropped by the socket deadline as before.
	Scenario fl.Scenario
	// Observer, when non-nil, receives every aggregation decision — the
	// forensics audit hook. Over sockets the server has no ground-truth
	// Malicious flags, so detection metrics reduce to decision auditing
	// unless the caller knows the deployment's adversaries.
	Observer fl.AggregationObserver
	// Codec is the canonical codec spec token (codec.Spec.String) the
	// server supports. A joining client must request either "" (legacy
	// uncompressed updates, always accepted) or exactly this token; any
	// other request is rejected at the handshake with MsgJoinReject,
	// before round start. Compression is client-side: the server decodes
	// frames, it never fabricates them.
	Codec string
	// Metrics, when non-nil, registers this federation's instruments —
	// rounds, phases, codec bytes, joins, admission-queue depth and wait,
	// drains — on the shared registry, labelled federation="<id>" so
	// co-hosted tenants stay distinguishable on one /metrics endpoint.
	// Pure observation: fixed-seed runs are bit-identical with or without.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records the federation's spans (rounds, phases,
	// join handshakes, queue waits, drain marks) for post-run export.
	Tracer *telemetry.Tracer
}

// Validate reports configuration errors.
func (c *ServerConfig) Validate() error {
	switch {
	case c.MinClients <= 0:
		return errors.New("flnet: MinClients must be positive")
	case c.PerRound <= 0 || c.PerRound > c.MinClients:
		return fmt.Errorf("flnet: PerRound %d out of range (1..%d)", c.PerRound, c.MinClients)
	case c.Rounds <= 0:
		return errors.New("flnet: Rounds must be positive")
	case c.PendingJoins < 0:
		return errors.New("flnet: PendingJoins must not be negative")
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if spec, err := codec.ParseSpec(c.Codec); err != nil {
		return fmt.Errorf("flnet: codec: %w", err)
	} else if c.Codec != "" && c.Codec != spec.String() {
		return fmt.Errorf("flnet: codec %q is not canonical (want %q)", c.Codec, spec.String())
	}
	return c.Scenario.Validate()
}

// RoundReport describes one networked round.
type RoundReport struct {
	// Round is the round index.
	Round int
	// Selected is the number of clients the sampler picked.
	Selected int
	// Dropped and Straggled count the simulated participation losses (the
	// engine's churn model); clients lost to the real RoundTimeout show up
	// only as a lower Responded.
	Dropped, Straggled int
	// Responded is the number of selected clients that returned an update
	// before the deadline.
	Responded int
	// Aggregations is the number of server aggregations applied (async
	// buffer flushes; 0 or 1 in sync mode).
	Aggregations int
	// Accuracy is the post-aggregation test accuracy.
	Accuracy float64
}

// ServerResult summarizes a networked training run.
type ServerResult struct {
	// Rounds holds the per-round reports.
	Rounds []RoundReport
	// MaxAccuracy and FinalAccuracy mirror the simulator's metrics.
	MaxAccuracy, FinalAccuracy float64
	// FinalWeights is the final global weight vector.
	FinalWeights []float64
}

// session is one connected client.
type session struct {
	id   int
	conn *Conn
	// spec is the codec the client negotiated at join ("" = legacy dense
	// updates). The server enforces it per update: a compressed session
	// must send frames of exactly this spec, a legacy one plain weights.
	spec codec.Spec
}

// Server drives federated training over real connections: the single-tenant
// deployment, owning one anonymous Federation and the accept loop that
// fills it. Multi-tenant deployments build Federations directly and
// multiplex them with a Host.
type Server struct {
	cfg ServerConfig
	fed *Federation
}

// NewServer builds a server with the given aggregation rule, model
// architecture and evaluation set.
func NewServer(cfg ServerConfig, agg fl.Aggregator, newModel func(rng *rand.Rand) *nn.Network, test *dataset.Dataset) (*Server, error) {
	fed, err := NewFederation("", cfg, agg, newModel, test)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: fed.cfg, fed: fed}, nil
}

// Serve accepts MinClients clients on lis, runs the configured rounds, and
// returns the result. The listener is not closed; the caller owns it.
func (s *Server) Serve(lis net.Listener) (*ServerResult, error) {
	// Resolve the starting state before any client joins, so an
	// incompatible checkpoint fails fast instead of after the handshakes.
	st, err := s.fed.prepare()
	if err != nil {
		return nil, err
	}
	if err := s.acceptClients(lis); err != nil {
		return nil, err
	}
	return s.fed.runEngine(st)
}

// acceptClients performs the join handshake for MinClients connections.
// Each handshake runs under HandshakeTimeout, so a half-open or garbage
// connection cannot hold the join phase for a full RoundTimeout, and the
// whole phase is bounded by AcceptTimeout when configured.
func (s *Server) acceptClients(lis net.Listener) error {
	var deadline time.Time
	if s.cfg.AcceptTimeout > 0 {
		//lint:allow telemetryclock accept deadline feeds the OS listener, not results
		deadline = time.Now().Add(s.cfg.AcceptTimeout)
		if d, ok := lis.(interface{ SetDeadline(time.Time) error }); ok {
			if err := d.SetDeadline(deadline); err == nil {
				defer func() { _ = d.SetDeadline(time.Time{}) }()
			}
		}
	}
	timedOut := func(n int) error {
		return fmt.Errorf("flnet: accept: join phase timed out after %v with %d/%d clients",
			s.cfg.AcceptTimeout, n, s.cfg.MinClients)
	}
	for s.fed.memberCount() < s.cfg.MinClients {
		//lint:allow telemetryclock join-phase wall deadline gates accepts, not results
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return timedOut(s.fed.memberCount())
		}
		raw, err := lis.Accept()
		if err != nil {
			var ne net.Error
			if !deadline.IsZero() && errors.As(err, &ne) && ne.Timeout() {
				return timedOut(s.fed.memberCount())
			}
			return fmt.Errorf("flnet: accept: %w", err)
		}
		conn := NewConn(raw, s.cfg.HandshakeTimeout)
		hello, err := conn.Recv()
		if err != nil || hello.Type != MsgJoin {
			_ = conn.Close() // a scanner, half-open dial or silent peer
			continue
		}
		// Admission (federation identity, codec negotiation, JoinAck) is the
		// federation's own; rejected connections do not count toward
		// MinClients.
		s.fed.admit(conn, hello)
	}
	return nil
}
