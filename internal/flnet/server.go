package flnet

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/persist"
)

// ServerConfig configures the networked federation server.
type ServerConfig struct {
	// MinClients is the population size the server waits for before
	// training starts (the paper's N).
	MinClients int
	// PerRound is K, the number of clients selected per round.
	PerRound int
	// Rounds is the number of federated rounds.
	Rounds int
	// RoundTimeout bounds the wait for a selected client's update; clients
	// that miss it are treated as offline for the round (cross-device FL
	// explicitly tolerates stragglers).
	RoundTimeout time.Duration
	// EvalLimit caps test samples per evaluation (0 = all).
	EvalLimit int
	// Seed drives client selection and model initialization.
	Seed int64
	// CheckpointPath, when non-empty, atomically persists the global model
	// after every round so a restarted server can resume from disk: Serve
	// loads and validates an existing checkpoint at start and continues
	// from the round after the one it records.
	CheckpointPath string
	// DatasetName and ModelName annotate checkpoints for load-side
	// validation.
	DatasetName, ModelName string
}

// Validate reports configuration errors.
func (c *ServerConfig) Validate() error {
	switch {
	case c.MinClients <= 0:
		return errors.New("flnet: MinClients must be positive")
	case c.PerRound <= 0 || c.PerRound > c.MinClients:
		return fmt.Errorf("flnet: PerRound %d out of range (1..%d)", c.PerRound, c.MinClients)
	case c.Rounds <= 0:
		return errors.New("flnet: Rounds must be positive")
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	return nil
}

// RoundReport describes one networked round.
type RoundReport struct {
	// Round is the round index.
	Round int
	// Responded is the number of selected clients that returned an update
	// before the deadline.
	Responded int
	// Accuracy is the post-aggregation test accuracy.
	Accuracy float64
}

// ServerResult summarizes a networked training run.
type ServerResult struct {
	// Rounds holds the per-round reports.
	Rounds []RoundReport
	// MaxAccuracy and FinalAccuracy mirror the simulator's metrics.
	MaxAccuracy, FinalAccuracy float64
	// FinalWeights is the final global weight vector.
	FinalWeights []float64
}

// session is one connected client.
type session struct {
	id   int
	conn *Conn
}

// Server drives federated training over real connections.
type Server struct {
	cfg      ServerConfig
	agg      fl.Aggregator
	newModel func(rng *rand.Rand) *nn.Network
	test     *dataset.Dataset
	// eval reuses its worker clones and scratch arenas across the
	// per-round evaluations.
	eval *fl.Evaluator
}

// NewServer builds a server with the given aggregation rule, model
// architecture and evaluation set.
func NewServer(cfg ServerConfig, agg fl.Aggregator, newModel func(rng *rand.Rand) *nn.Network, test *dataset.Dataset) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if agg == nil {
		return nil, errors.New("flnet: aggregator must not be nil")
	}
	s := &Server{cfg: cfg, agg: agg, newModel: newModel, test: test}
	if test != nil {
		s.eval = fl.NewEvaluator(test, cfg.EvalLimit)
	}
	return s, nil
}

// Serve accepts MinClients clients on lis, runs the configured rounds, and
// returns the result. The listener is not closed; the caller owns it.
func (s *Server) Serve(lis net.Listener) (*ServerResult, error) {
	// Resolve the starting state before any client joins, so an
	// incompatible checkpoint fails fast instead of after the handshakes.
	global := s.newModel(rand.New(rand.NewSource(s.cfg.Seed)))
	weights := global.WeightVector()
	startRound := 0
	resumeMax, resumeFinal := 0.0, -1.0
	var resumePrev []float64
	if cp, err := s.loadCheckpoint(len(weights)); err != nil {
		return nil, err
	} else if cp != nil {
		weights = cp.Weights
		resumePrev = cp.PrevWeights // w(t-1); empty in pre-field checkpoints
		startRound = cp.Round + 1
		// Restore the pre-crash metrics so acc_m covers the whole run even
		// when its peak predates the restart (older checkpoints lack
		// MaxAccuracy; the last round's accuracy is the best floor then).
		for _, v := range []float64{cp.MaxAccuracy, cp.Accuracy} {
			if !math.IsNaN(v) && v > resumeMax {
				resumeMax = v
			}
		}
		resumeFinal = cp.Accuracy
	}

	sessions, err := s.acceptClients(lis)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, cl := range sessions {
			_ = cl.conn.Close()
		}
	}()

	// The first resumed round must hand clients the same w(t-1) an
	// uninterrupted run would have; only a fresh start uses prev == w(0).
	prev := append([]float64(nil), weights...)
	if len(resumePrev) == len(weights) && startRound > 0 {
		prev = resumePrev
	}
	selRng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5DEECE66D))
	// Replay the selection stream consumed before the checkpoint so a
	// resumed run selects the same clients per round as an uninterrupted
	// one with the same seed.
	for r := 0; r < startRound; r++ {
		selRng.Perm(len(sessions))
	}
	res := &ServerResult{FinalAccuracy: math.NaN(), MaxAccuracy: resumeMax}
	if resumeFinal >= 0 {
		res.FinalAccuracy = resumeFinal
	}

	for round := startRound; round < s.cfg.Rounds; round++ {
		perm := selRng.Perm(len(sessions))[:s.cfg.PerRound]
		updates := s.collectRound(sessions, perm, round, weights, prev)
		report := RoundReport{Round: round, Responded: len(updates), Accuracy: math.NaN()}
		if len(updates) > 0 {
			newWeights, _, err := s.agg.Aggregate(weights, updates)
			if err != nil {
				return nil, fmt.Errorf("flnet: round %d: %w", round, err)
			}
			if len(newWeights) != len(weights) {
				return nil, fmt.Errorf("flnet: round %d: aggregate length %d, want %d", round, len(newWeights), len(weights))
			}
			prev = weights
			weights = newWeights
		}
		if s.test != nil {
			if err := global.SetWeightVector(weights); err != nil {
				return nil, err
			}
			acc := s.eval.Accuracy(global, true)
			report.Accuracy = acc
			if acc > res.MaxAccuracy {
				res.MaxAccuracy = acc
			}
			res.FinalAccuracy = acc
		}
		res.Rounds = append(res.Rounds, report)
		if s.cfg.CheckpointPath != "" {
			cp := &persist.Checkpoint{
				Round:       round,
				Dataset:     s.cfg.DatasetName,
				Model:       s.cfg.ModelName,
				Seed:        s.cfg.Seed,
				MinClients:  s.cfg.MinClients,
				PerRound:    s.cfg.PerRound,
				Weights:     weights,
				PrevWeights: prev,
				Accuracy:    report.Accuracy,
				MaxAccuracy: res.MaxAccuracy,
			}
			if err := persist.Save(s.cfg.CheckpointPath, cp); err != nil {
				return nil, fmt.Errorf("flnet: round %d checkpoint: %w", round, err)
			}
		}
	}

	// Graceful shutdown: hand every client the final model.
	final := &Envelope{Type: MsgDone, Weights: weights}
	for _, cl := range sessions {
		_ = cl.conn.Send(final) // best effort; client may have vanished
	}
	res.FinalWeights = weights
	return res, nil
}

// loadCheckpoint restores the latest checkpoint from CheckpointPath, if one
// exists, validating that it belongs to this server's task and architecture
// before handing its weights to the round loop. A missing file means a
// fresh start; a present-but-incompatible one is an error, because silently
// training from mismatched weights would corrupt the federation.
func (s *Server) loadCheckpoint(wantLen int) (*persist.Checkpoint, error) {
	if s.cfg.CheckpointPath == "" {
		return nil, nil
	}
	cp, err := persist.LoadFile(s.cfg.CheckpointPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("flnet: resume: %w", err)
	}
	if s.cfg.DatasetName != "" && cp.Dataset != "" && cp.Dataset != s.cfg.DatasetName {
		return nil, fmt.Errorf("flnet: resume: checkpoint dataset %q, server dataset %q", cp.Dataset, s.cfg.DatasetName)
	}
	if s.cfg.ModelName != "" && cp.Model != "" && cp.Model != s.cfg.ModelName {
		return nil, fmt.Errorf("flnet: resume: checkpoint model %q, server model %q", cp.Model, s.cfg.ModelName)
	}
	if len(cp.Weights) != wantLen {
		return nil, fmt.Errorf("flnet: resume: checkpoint has %d weights, model has %d", len(cp.Weights), wantLen)
	}
	if len(cp.PrevWeights) != 0 && len(cp.PrevWeights) != wantLen {
		return nil, fmt.Errorf("flnet: resume: checkpoint has %d prev weights, model has %d", len(cp.PrevWeights), wantLen)
	}
	// MinClients > 0 marks a checkpoint that records the federation shape;
	// a different seed or population would make the selection-stream
	// replay produce a silent hybrid of two runs.
	if cp.MinClients > 0 {
		switch {
		case cp.Seed != s.cfg.Seed:
			return nil, fmt.Errorf("flnet: resume: checkpoint seed %d, server seed %d", cp.Seed, s.cfg.Seed)
		case cp.MinClients != s.cfg.MinClients:
			return nil, fmt.Errorf("flnet: resume: checkpoint population %d, server %d", cp.MinClients, s.cfg.MinClients)
		case cp.PerRound != s.cfg.PerRound:
			return nil, fmt.Errorf("flnet: resume: checkpoint selects %d per round, server %d", cp.PerRound, s.cfg.PerRound)
		}
	}
	if cp.Round < 0 || cp.Round >= s.cfg.Rounds {
		return nil, fmt.Errorf("flnet: resume: checkpoint round %d outside 0..%d", cp.Round, s.cfg.Rounds-1)
	}
	return cp, nil
}

// acceptClients performs the join handshake for MinClients connections.
func (s *Server) acceptClients(lis net.Listener) ([]*session, error) {
	sessions := make([]*session, 0, s.cfg.MinClients)
	for len(sessions) < s.cfg.MinClients {
		raw, err := lis.Accept()
		if err != nil {
			return nil, fmt.Errorf("flnet: accept: %w", err)
		}
		conn := NewConn(raw, s.cfg.RoundTimeout)
		hello, err := conn.Recv()
		if err != nil {
			_ = conn.Close()
			continue // a scanner or broken dial; keep waiting
		}
		if hello.Type != MsgJoin {
			_ = conn.Close()
			continue
		}
		id := len(sessions)
		if err := conn.Send(&Envelope{Type: MsgJoinAck, ClientID: id}); err != nil {
			_ = conn.Close()
			continue
		}
		sessions = append(sessions, &session{id: id, conn: conn})
	}
	return sessions, nil
}

// collectRound sends TrainRequests to the selected sessions concurrently
// and gathers the updates that arrive before the deadline.
func (s *Server) collectRound(sessions []*session, selected []int, round int, weights, prev []float64) []fl.Update {
	type reply struct {
		update fl.Update
		ok     bool
	}
	replies := make(chan reply, len(selected))
	var wg sync.WaitGroup
	for _, idx := range selected {
		cl := sessions[idx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &Envelope{
				Type:        MsgTrainRequest,
				Round:       round,
				ClientID:    cl.id,
				Weights:     weights,
				PrevWeights: prev,
			}
			if err := cl.conn.Send(req); err != nil {
				replies <- reply{}
				return
			}
			resp, err := cl.conn.Recv()
			if err != nil || resp.Type != MsgUpdate || resp.Round != round || len(resp.Weights) != len(weights) {
				replies <- reply{}
				return
			}
			replies <- reply{
				update: fl.Update{
					ClientID:   cl.id,
					Weights:    resp.Weights,
					NumSamples: resp.NumSamples,
				},
				ok: true,
			}
		}()
	}
	wg.Wait()
	close(replies)
	var updates []fl.Update
	for r := range replies {
		if r.ok {
			updates = append(updates, r.update)
		}
	}
	return updates
}
