package flnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/nn"
)

// BenchmarkHostedFederations runs N complete federations (tiny dataset,
// 2 clients each, 3 rounds, FedAvg) concurrently on one Host and one
// listener, clients included, and reports wall-clock per iteration plus a
// derived rounds/s throughput. Training is COMPUTE-BOUND: on a single-CPU
// machine N co-hosted tenants necessarily take ~N times the wall-clock of
// one, and the interesting number is the per-round cost the multiplexing
// layer adds on top — compare ns/op at tenants=1 against a plain Server
// (BenchmarkSingleTenantServer) and divide ns/op by tenants for the
// co-hosting overhead.
func BenchmarkHostedFederations(b *testing.B) {
	for _, tenants := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			const rounds = 3
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var tns []tenant
				for t := 0; t < tenants; t++ {
					tns = append(tns, tenant{
						id: fmt.Sprintf("bench-%d", t),
						cfg: ServerConfig{
							MinClients: 2, PerRound: 2, Rounds: rounds,
							RoundTimeout: 10 * time.Second, Seed: int64(t + 1),
						},
						agg:     defense.FedAvg{},
						genSeed: int64(40 + t),
					})
				}
				lis, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				host := NewHost()
				feds := make([]*Federation, tenants)
				data := make([]struct {
					train    *dataset.Dataset
					newModel func(rng *rand.Rand) *nn.Network
					shards   [][]int
				}, tenants)
				for t, tn := range tns {
					train, test, newModel, shards := tenantData(b, tn)
					fed, err := NewFederation(tn.id, tn.cfg, tn.agg, newModel, test)
					if err != nil {
						b.Fatal(err)
					}
					if err := host.Add(fed); err != nil {
						b.Fatal(err)
					}
					feds[t] = fed
					data[t].train, data[t].newModel, data[t].shards = train, newModel, shards
				}
				go func() { _ = host.Serve(lis) }()
				b.StartTimer()

				var wg sync.WaitGroup
				errs := make([]error, tenants)
				for t, fed := range feds {
					wg.Add(1)
					go func(t int, fed *Federation) {
						defer wg.Done()
						_, errs[t] = fed.Run()
					}(t, fed)
				}
				for t, tn := range tns {
					cw := runTenantClients(b, lis.Addr().String(), tn, data[t].train, data[t].newModel, data[t].shards)
					defer cw.Wait()
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				lis.Close()
			}
			b.ReportMetric(float64(rounds*tenants)*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}

// BenchmarkSingleTenantServer is the pre-multi-tenant baseline: the same
// single federation served by the plain Server (inline accept loop, no
// admission queue). The delta against BenchmarkHostedFederations/tenants=1
// is the cost of the Host routing layer.
func BenchmarkSingleTenantServer(b *testing.B) {
	const rounds = 3
	tn := tenant{
		cfg: ServerConfig{
			MinClients: 2, PerRound: 2, Rounds: rounds,
			RoundTimeout: 10 * time.Second, Seed: 1,
		},
		agg:     defense.FedAvg{},
		genSeed: 40,
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		train, test, newModel, shards := tenantData(b, tn)
		srv, err := NewServer(tn.cfg, tn.agg, newModel, test)
		if err != nil {
			b.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		done := make(chan error, 1)
		go func() {
			_, err := srv.Serve(lis)
			done <- err
		}()
		cw := runTenantClients(b, lis.Addr().String(), tn, train, newModel, shards)
		cw.Wait()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		lis.Close()
	}
	b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}
