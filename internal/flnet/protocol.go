// Package flnet is the networked deployment of the federated-learning
// system: a TCP server that drives the paper's round loop (select clients,
// broadcast the global model, collect updates, robust-aggregate) and client
// processes — benign trainers or attack adversaries — that speak a
// length-prefixed gob protocol. The in-process simulator (internal/fl) and
// this package share the Aggregator/Attack interfaces, so every defense and
// attack of the reproduction also runs over a real network boundary.
package flnet

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// MsgType discriminates protocol envelopes.
type MsgType int

// Protocol message types. A session is: client sends Join; server replies
// JoinAck; then for every round the server sends TrainRequest to the
// selected clients, which reply with Update; the server ends the session
// with Done carrying the final global weights.
const (
	MsgJoin MsgType = iota + 1
	MsgJoinAck
	MsgTrainRequest
	MsgUpdate
	MsgDone
	// MsgJoinReject closes the handshake before round start when the
	// server cannot serve the client; Err carries the reason and RejectCode
	// (when set) a machine-readable class.
	MsgJoinReject
)

// Typed join-rejection codes carried in Envelope.RejectCode. Legacy servers
// send none (the field decodes empty), which clients treat as RejectCodec —
// the only rejection the pre-federation protocol could produce.
const (
	// RejectCodec: the requested update codec is not served.
	RejectCodec = "codec"
	// RejectUnknownFederation: no federation with the requested ID exists on
	// this host.
	RejectUnknownFederation = "unknown-federation"
	// RejectAdmission: the federation's pending-join queue is full (a join
	// storm); the client may retry after a backoff.
	RejectAdmission = "admission"
	// RejectClosed: the federation is full, training, or draining — it will
	// not admit members again.
	RejectClosed = "closed"
)

// String returns the message-type name.
func (t MsgType) String() string {
	switch t {
	case MsgJoin:
		return "join"
	case MsgJoinAck:
		return "joinack"
	case MsgTrainRequest:
		return "trainrequest"
	case MsgUpdate:
		return "update"
	case MsgDone:
		return "done"
	case MsgJoinReject:
		return "joinreject"
	default:
		return fmt.Sprintf("msgtype(%d)", int(t))
	}
}

// Envelope is the single wire message of the protocol; fields are used
// depending on Type.
type Envelope struct {
	// Type discriminates the message.
	Type MsgType
	// Round is the round index of TrainRequest/Update messages.
	Round int
	// ClientID is assigned by the server in JoinAck and echoed in Update.
	ClientID int
	// Weights carries the global model (TrainRequest, Done) or the local
	// update (Update).
	Weights []float64
	// PrevWeights carries w(t−1) in TrainRequest so data-free attackers can
	// evaluate their distance regularization, exactly the information a
	// real client would have retained from the previous round.
	PrevWeights []float64
	// NumSamples is the client's reported n_i in Update messages.
	NumSamples int
	// Codec is the canonical codec spec token (codec.Spec.String) the
	// client requests in Join and the server confirms in JoinAck. Empty
	// means uncompressed — every legacy client is a valid "" negotiation.
	Codec string
	// Frame carries the compressed update (codec wire format) in Update
	// messages when a codec was negotiated; Weights is then left empty.
	Frame []byte
	// Err carries the rejection reason in JoinReject.
	Err string
	// Federation names the federation the client wants to join (Join
	// messages on a multi-tenant host). Empty joins the host's sole
	// federation — which is how every legacy client decodes, so old binaries
	// keep working against single-tenant hosts.
	Federation string
	// RejectCode is the machine-readable rejection class in JoinReject
	// (see the Reject* constants); empty from legacy servers.
	RejectCode string
}

// maxFrameSize bounds a frame to guard against corrupted length prefixes.
const maxFrameSize = 64 << 20 // 64 MiB

// Conn wraps a net.Conn with length-prefixed gob framing and deadline
// handling. It is not safe for concurrent use.
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// Timeout bounds each read or write; 0 means no deadline.
	Timeout time.Duration

	wbuf lengthPrefixWriter
	rbuf lengthPrefixReader
}

// NewConn wraps a network connection.
func NewConn(raw net.Conn, timeout time.Duration) *Conn {
	c := &Conn{raw: raw, Timeout: timeout}
	c.wbuf.raw = raw
	c.rbuf.raw = raw
	c.enc = gob.NewEncoder(&c.wbuf)
	c.dec = gob.NewDecoder(&c.rbuf)
	return c
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// Send writes one envelope.
func (c *Conn) Send(e *Envelope) error {
	if c.Timeout > 0 {
		//lint:allow telemetryclock socket write deadline feeds the OS, not results
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
			return err
		}
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("flnet: send %s: %w", e.Type, err)
	}
	return nil
}

// Recv reads one envelope.
func (c *Conn) Recv() (*Envelope, error) {
	if c.Timeout > 0 {
		//lint:allow telemetryclock socket read deadline feeds the OS, not results
		if err := c.raw.SetReadDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, err
		}
	}
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

// lengthPrefixWriter frames every gob segment with a uint32 length so the
// reader can validate frame sizes before decoding.
type lengthPrefixWriter struct {
	raw io.Writer
}

func (w *lengthPrefixWriter) Write(p []byte) (int, error) {
	if len(p) > maxFrameSize {
		return 0, fmt.Errorf("flnet: frame of %d bytes exceeds limit", len(p))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := w.raw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.raw.Write(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// lengthPrefixReader reassembles the frames written by lengthPrefixWriter.
type lengthPrefixReader struct {
	raw     io.Reader
	pending []byte
}

func (r *lengthPrefixReader) Read(p []byte) (int, error) {
	if len(r.pending) == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(r.raw, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameSize {
			return 0, fmt.Errorf("flnet: invalid frame length %d", n)
		}
		r.pending = make([]byte, n)
		if _, err := io.ReadFull(r.raw, r.pending); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.pending)
	r.pending = r.pending[n:]
	return n, nil
}

// errProtocol reports an unexpected message.
func errProtocol(want MsgType, got *Envelope) error {
	return fmt.Errorf("flnet: expected %s, got %s", want, got.Type)
}

// ErrSessionClosed is returned by client loops when the server finished the
// training and closed the session cleanly.
var ErrSessionClosed = errors.New("flnet: session closed")
