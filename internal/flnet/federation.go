package flnet

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/persist"
	"repro/internal/telemetry"
)

// Federation owns the per-tenant round state of one federated training run:
// the engine configuration, aggregation rule, codec negotiation, checkpoint
// path, evaluator and member sessions. A single-tenant Server wraps exactly
// one Federation; a multi-tenant Host multiplexes several over one listener,
// routed by the join handshake's Federation field. Heavy tensor math from
// all federations in one process drains through the shared process-global
// worker pool (internal/tensor), so co-hosted tenants share one compute
// budget instead of oversubscribing the machine.
type Federation struct {
	id       string
	cfg      ServerConfig
	agg      fl.Aggregator
	newModel func(rng *rand.Rand) *nn.Network
	test     *dataset.Dataset
	// eval reuses its worker clones and scratch arenas across the
	// per-round evaluations.
	eval *fl.Evaluator

	mu       sync.Mutex
	sessions []*session
	full     bool
	// filled is closed once MinClients members are admitted.
	filled chan struct{}
	// pending is the bounded admission queue for host-routed joins; Offer
	// rejects (typed) rather than blocking when it is full.
	pending chan pendingJoin
	// draining requests a graceful stop at the next round boundary.
	draining atomic.Bool
	// tel carries the federation's optional instruments (nil = disabled).
	tel *fedTelemetry
}

// pendingJoin is one handshake awaiting admission.
type pendingJoin struct {
	conn  *Conn
	hello *Envelope
	// enqueuedNs timestamps the queue entry for the wait histogram
	// (monotonic, telemetry.Nanos; 0 when telemetry is disabled).
	enqueuedNs int64
}

// NewFederation builds a federation with the given identity, configuration,
// aggregation rule, model architecture and evaluation set. The ID names the
// federation in join handshakes; a single-tenant Server uses "".
func NewFederation(id string, cfg ServerConfig, agg fl.Aggregator, newModel func(rng *rand.Rand) *nn.Network, test *dataset.Dataset) (*Federation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if agg == nil {
		return nil, errors.New("flnet: aggregator must not be nil")
	}
	queue := cfg.PendingJoins
	if queue <= 0 {
		queue = cfg.MinClients
		if queue < 16 {
			queue = 16
		}
	}
	f := &Federation{
		id:       id,
		cfg:      cfg,
		agg:      agg,
		newModel: newModel,
		test:     test,
		filled:   make(chan struct{}),
		pending:  make(chan pendingJoin, queue),
		tel:      newFedTelemetry(cfg, id),
	}
	if test != nil {
		f.eval = fl.NewEvaluator(test, cfg.EvalLimit)
	}
	return f, nil
}

// ID returns the federation's join-handshake identity.
func (f *Federation) ID() string { return f.id }

// Drain requests a graceful stop: the engine finishes the round in flight,
// keeps every completed result, and hands members the final model exactly as
// a naturally finished run would. Safe to call from any goroutine, more than
// once, and before or during Run.
func (f *Federation) Drain() {
	if !f.draining.Swap(true) {
		f.tel.drained()
	}
}

// reject sends a typed join rejection and closes the connection.
func reject(conn *Conn, code, reason string) {
	_ = conn.Send(&Envelope{Type: MsgJoinReject, RejectCode: code, Err: reason})
	_ = conn.Close()
}

// admit runs the join handshake for one connection whose MsgJoin hello has
// been read: federation identity, admission state, codec negotiation. It
// sends JoinAck or a typed JoinReject itself and reports whether the
// connection became a member.
func (f *Federation) admit(conn *Conn, hello *Envelope) bool {
	sp := f.tel.handshake()
	ok := f.doAdmit(conn, hello)
	sp.End()
	f.tel.admitted(ok)
	return ok
}

func (f *Federation) doAdmit(conn *Conn, hello *Envelope) bool {
	// A named join must match; an empty one is the legacy protocol and
	// always targets this federation (the host routed it here).
	if hello.Federation != "" && hello.Federation != f.id {
		reject(conn, RejectUnknownFederation, fmt.Sprintf("no federation %q here (serving %q)", hello.Federation, f.id))
		return false
	}
	// Codec negotiation: a client is served iff it requests no codec
	// (legacy dense updates) or exactly the federation's codec. Anything
	// else is rejected here, with a typed reason, before round start —
	// a mismatched client must never burn rounds as a permanent
	// straggler. Rejected connections do not count toward MinClients.
	if hello.Codec != "" && hello.Codec != f.cfg.Codec {
		reject(conn, RejectCodec, fmt.Sprintf("codec %q not supported (federation: %q)", hello.Codec, f.cfg.Codec))
		return false
	}
	spec, err := codec.ParseSpec(hello.Codec)
	if err != nil {
		reject(conn, RejectCodec, err.Error())
		return false
	}

	f.mu.Lock()
	if f.full || f.draining.Load() {
		f.mu.Unlock()
		reject(conn, RejectClosed, fmt.Sprintf("federation %q is not admitting members", f.id))
		return false
	}
	id := len(f.sessions)
	if err := conn.Send(&Envelope{Type: MsgJoinAck, ClientID: id, Codec: hello.Codec, Federation: f.id}); err != nil {
		f.mu.Unlock()
		_ = conn.Close()
		return false
	}
	// The session survives the handshake: switch to the round deadline.
	conn.Timeout = f.cfg.RoundTimeout
	f.sessions = append(f.sessions, &session{id: id, conn: conn, spec: spec})
	if len(f.sessions) == f.cfg.MinClients {
		f.full = true
		close(f.filled)
	}
	f.mu.Unlock()
	return true
}

// memberCount reports the number of admitted sessions.
func (f *Federation) memberCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sessions)
}

// Offer hands a host-routed handshake to the federation's bounded admission
// queue. A full queue (join storm) or a federation past its join phase
// rejects immediately with a typed code instead of accumulating unbounded
// half-open state; Run admits queued joins in arrival order.
func (f *Federation) Offer(conn *Conn, hello *Envelope) {
	f.mu.Lock()
	closed := f.full || f.draining.Load()
	f.mu.Unlock()
	if closed {
		reject(conn, RejectClosed, fmt.Sprintf("federation %q is not admitting members", f.id))
		return
	}
	j := pendingJoin{conn: conn, hello: hello, enqueuedNs: f.tel.enqueueNanos()}
	select {
	case f.pending <- j:
	default:
		f.tel.unqueued() // never entered the queue: depth back down, no wait sample
		f.tel.admitted(false)
		reject(conn, RejectAdmission, fmt.Sprintf("federation %q join queue is full; retry later", f.id))
	}
}

// rejectQueued drains the pending queue, rejecting every waiting handshake.
func (f *Federation) rejectQueued() {
	for {
		select {
		case j := <-f.pending:
			f.tel.dequeued(j.enqueuedNs)
			f.tel.admitted(false)
			reject(j.conn, RejectClosed, fmt.Sprintf("federation %q is not admitting members", f.id))
		default:
			return
		}
	}
}

// startState is the resolved initial condition of the round loop: fresh
// weights or a validated checkpoint.
type startState struct {
	weights, prev []float64
	startRound    int
	resumeMax     float64
	resumeFinal   float64
	global        *nn.Network
}

// prepare resolves the starting state before any client joins, so an
// incompatible checkpoint fails fast instead of after the handshakes.
func (f *Federation) prepare() (*startState, error) {
	global := f.newModel(rand.New(rand.NewSource(f.cfg.Seed)))
	st := &startState{
		global:      global,
		weights:     global.WeightVector(),
		resumeFinal: -1.0,
	}
	cp, err := f.loadCheckpoint(len(st.weights))
	if err != nil {
		return nil, err
	}
	if cp != nil {
		st.weights = cp.Weights
		st.startRound = cp.Round + 1
		// Restore the pre-crash metrics so acc_m covers the whole run even
		// when its peak predates the restart (older checkpoints lack
		// MaxAccuracy; the last round's accuracy is the best floor then).
		for _, v := range []float64{cp.MaxAccuracy, cp.Accuracy} {
			if !math.IsNaN(v) && v > st.resumeMax {
				st.resumeMax = v
			}
		}
		st.resumeFinal = cp.Accuracy
		// The first resumed round must hand clients the same w(t-1) an
		// uninterrupted run would have; only a fresh start uses prev == w(0).
		if len(cp.PrevWeights) == len(st.weights) {
			st.prev = cp.PrevWeights
		}
	}
	if st.startRound > 0 && f.cfg.Scenario.Async != nil {
		return nil, errors.New("flnet: checkpoint resume is not supported in async mode (in-flight updates are not checkpointed)")
	}
	if st.prev == nil || st.startRound == 0 {
		st.prev = append([]float64(nil), st.weights...)
	}
	return st, nil
}

// Run waits for the federation to fill (admitting host-routed joins from the
// pending queue, bounded by AcceptTimeout when configured), runs the
// configured rounds, and returns the result. Call it once, after
// registering the federation with a Host (or use Server for the
// single-tenant accept loop).
func (f *Federation) Run() (*ServerResult, error) {
	st, err := f.prepare()
	if err != nil {
		return nil, err
	}
	var timeout <-chan time.Time
	if f.cfg.AcceptTimeout > 0 {
		timer := time.NewTimer(f.cfg.AcceptTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
joining:
	for {
		select {
		case <-f.filled:
			break joining
		case j := <-f.pending:
			f.tel.dequeued(j.enqueuedNs)
			f.admit(j.conn, j.hello)
		case <-timeout:
			return nil, fmt.Errorf("flnet: federation %q: join phase timed out after %v with %d/%d clients",
				f.id, f.cfg.AcceptTimeout, f.memberCount(), f.cfg.MinClients)
		}
	}
	f.rejectQueued()
	defer f.rejectQueued()
	return f.runEngine(st)
}

// runEngine drives the shared fl.Engine over the admitted sessions and
// broadcasts the final model.
func (f *Federation) runEngine(st *startState) (*ServerResult, error) {
	f.mu.Lock()
	sessions := append([]*session(nil), f.sessions...)
	f.mu.Unlock()
	defer func() {
		for _, cl := range sessions {
			_ = cl.conn.Close()
		}
	}()

	eng := &fl.Engine{
		TotalClients: len(sessions),
		PerRound:     f.cfg.PerRound,
		Rounds:       f.cfg.Rounds,
		StartRound:   st.startRound,
		EvalEvery:    1,
		Seed:         f.cfg.Seed,
		Scenario:     f.cfg.Scenario,
		Transport:    &netTransport{fed: f, sessions: sessions},
		Aggregator:   f.agg,
		Observer:     f.cfg.Observer,
		InitialMax:   st.resumeMax,
		InitialPrev:  st.prev,
		Halt:         f.draining.Load,
		Telemetry:    f.tel.engineTelemetry(),
	}
	if f.test != nil {
		eng.Evaluate = func(w []float64) (float64, error) {
			if err := st.global.SetWeightVector(w); err != nil {
				return 0, err
			}
			return f.eval.Accuracy(st.global, true), nil
		}
	}
	if f.cfg.CheckpointPath != "" {
		eng.OnRound = func(stats fl.RoundStats, w, p []float64, maxAcc float64) error {
			cp := &persist.Checkpoint{
				Round:       stats.Round,
				Dataset:     f.cfg.DatasetName,
				Model:       f.cfg.ModelName,
				Seed:        f.cfg.Seed,
				MinClients:  f.cfg.MinClients,
				PerRound:    f.cfg.PerRound,
				Weights:     w,
				PrevWeights: p,
				Accuracy:    stats.Accuracy,
				MaxAccuracy: maxAcc,
			}
			if err := persist.Save(f.cfg.CheckpointPath, cp); err != nil {
				return fmt.Errorf("flnet: round %d checkpoint: %w", stats.Round, err)
			}
			return nil
		}
	}

	engRes, finalWeights, err := eng.Run(st.weights)
	if err != nil {
		return nil, fmt.Errorf("flnet: %w", err)
	}
	res := &ServerResult{
		MaxAccuracy:   engRes.MaxAccuracy,
		FinalAccuracy: engRes.FinalAccuracy,
		FinalWeights:  finalWeights,
	}
	// A run that evaluated nothing (no test set, or zero remaining rounds)
	// keeps the checkpoint's pre-crash accuracy as its final metric.
	if math.IsNaN(res.FinalAccuracy) && st.resumeFinal >= 0 {
		res.FinalAccuracy = st.resumeFinal
	}
	for _, stx := range engRes.Rounds {
		res.Rounds = append(res.Rounds, RoundReport{
			Round:        stx.Round,
			Selected:     stx.Selected,
			Dropped:      stx.Dropped,
			Straggled:    stx.Straggled,
			Responded:    stx.Responded,
			Aggregations: stx.Aggregations,
			Accuracy:     stx.Accuracy,
		})
	}

	// Graceful shutdown: hand every client the final model.
	final := &Envelope{Type: MsgDone, Weights: finalWeights}
	for _, cl := range sessions {
		_ = cl.conn.Send(final) // best effort; client may have vanished
	}
	return res, nil
}

// loadCheckpoint restores the latest checkpoint from CheckpointPath, if one
// exists, validating that it belongs to this federation's task and
// architecture before handing its weights to the round loop. A missing file
// means a fresh start; a present-but-incompatible one is an error, because
// silently training from mismatched weights would corrupt the federation.
func (f *Federation) loadCheckpoint(wantLen int) (*persist.Checkpoint, error) {
	if f.cfg.CheckpointPath == "" {
		return nil, nil
	}
	cp, err := persist.LoadFile(f.cfg.CheckpointPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("flnet: resume: %w", err)
	}
	if f.cfg.DatasetName != "" && cp.Dataset != "" && cp.Dataset != f.cfg.DatasetName {
		return nil, fmt.Errorf("flnet: resume: checkpoint dataset %q, server dataset %q", cp.Dataset, f.cfg.DatasetName)
	}
	if f.cfg.ModelName != "" && cp.Model != "" && cp.Model != f.cfg.ModelName {
		return nil, fmt.Errorf("flnet: resume: checkpoint model %q, server model %q", cp.Model, f.cfg.ModelName)
	}
	if len(cp.Weights) != wantLen {
		return nil, fmt.Errorf("flnet: resume: checkpoint has %d weights, model has %d", len(cp.Weights), wantLen)
	}
	if len(cp.PrevWeights) != 0 && len(cp.PrevWeights) != wantLen {
		return nil, fmt.Errorf("flnet: resume: checkpoint has %d prev weights, model has %d", len(cp.PrevWeights), wantLen)
	}
	// MinClients > 0 marks a checkpoint that records the federation shape;
	// a different seed or population would make the selection-stream
	// replay produce a silent hybrid of two runs.
	if cp.MinClients > 0 {
		switch {
		case cp.Seed != f.cfg.Seed:
			return nil, fmt.Errorf("flnet: resume: checkpoint seed %d, server seed %d", cp.Seed, f.cfg.Seed)
		case cp.MinClients != f.cfg.MinClients:
			return nil, fmt.Errorf("flnet: resume: checkpoint population %d, server %d", cp.MinClients, f.cfg.MinClients)
		case cp.PerRound != f.cfg.PerRound:
			return nil, fmt.Errorf("flnet: resume: checkpoint selects %d per round, server %d", cp.PerRound, f.cfg.PerRound)
		}
	}
	if cp.Round < 0 || cp.Round >= f.cfg.Rounds {
		return nil, fmt.Errorf("flnet: resume: checkpoint round %d outside 0..%d", cp.Round, f.cfg.Rounds-1)
	}
	return cp, nil
}

// collectRound sends TrainRequests to the selected sessions concurrently
// and gathers the updates that arrive before the deadline. Replies are
// returned in selection order, not arrival order — the same contract as the
// in-process simulator's transport — so aggregation sees a deterministic
// update sequence regardless of scheduling (floating-point summation is
// order-sensitive; arrival order would make co-tenant load leak into this
// federation's bits).
func (f *Federation) collectRound(sessions []*session, selected []int, round int, weights, prev []float64) []fl.Update {
	type reply struct {
		update fl.Update
		ok     bool
	}
	replies := make([]reply, len(selected))
	var wg sync.WaitGroup
	for slot, idx := range selected {
		cl := sessions[idx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &Envelope{
				Type:        MsgTrainRequest,
				Round:       round,
				ClientID:    cl.id,
				Weights:     weights,
				PrevWeights: prev,
			}
			if err := cl.conn.Send(req); err != nil {
				return
			}
			resp, err := cl.conn.Recv()
			if err != nil || resp.Type != MsgUpdate || resp.Round != round {
				return
			}
			u := fl.Update{ClientID: cl.id, NumSamples: resp.NumSamples}
			if cl.spec.Enabled() {
				// A compressed session must deliver a frame of exactly the
				// negotiated spec; anything else fails closed and the
				// client is treated as a straggler for the round.
				frame, err := codec.DecodeWire(resp.Frame, len(weights))
				if err != nil || frame.Dim != len(weights) || frame.Spec != cl.spec {
					return
				}
				f.tel.bytesIn(len(resp.Frame))
				u.Frame = frame
				u.Weights = frame.Reconstruct(weights)
			} else {
				if len(resp.Weights) != len(weights) {
					return
				}
				f.tel.bytesIn(8 * len(resp.Weights))
				u.Weights = resp.Weights
			}
			replies[slot] = reply{update: u, ok: true}
		}()
	}
	wg.Wait()
	var updates []fl.Update
	for _, r := range replies {
		if r.ok {
			updates = append(updates, r.update)
		}
	}
	return updates
}

// netTransport exposes the socket round-trip as an engine Transport: the
// engine's responder set is contacted concurrently, and clients that miss
// the RoundTimeout are simply absent from the returned updates.
type netTransport struct {
	fed      *Federation
	sessions []*session
}

// Collect implements fl.Transport.
func (t *netTransport) Collect(round int, ids []int, global, prev []float64) ([]fl.Update, error) {
	return t.fed.collectRound(t.sessions, ids, round, global, prev), nil
}

// Host multiplexes several federations over one listener: every accepted
// connection's join handshake is read once, routed to the federation the
// hello names, and admitted through that federation's bounded queue. The
// federations' round loops run independently (each via Federation.Run);
// only the accept path and the process-wide tensor worker pool are shared.
type Host struct {
	// HandshakeTimeout bounds the hello read on each accepted connection
	// (0 = 5s), so a silent peer cannot wedge the shared accept path.
	HandshakeTimeout time.Duration
	// Tracer, when non-nil, records one hello-read-and-route span per
	// accepted connection on the "host" track, so slow or silent peers on
	// the shared accept path are visible in the trace.
	Tracer *telemetry.Tracer

	mu   sync.Mutex
	feds map[string]*Federation
	sole *Federation // set iff exactly one federation is registered
}

// NewHost returns an empty host.
func NewHost() *Host {
	return &Host{feds: make(map[string]*Federation)}
}

// Add registers a federation under its ID. IDs must be unique; a host with
// exactly one federation also serves legacy clients whose hello names no
// federation at all.
func (h *Host) Add(f *Federation) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.feds[f.id]; dup {
		return fmt.Errorf("flnet: duplicate federation %q", f.id)
	}
	h.feds[f.id] = f
	if len(h.feds) == 1 {
		h.sole = f
	} else {
		h.sole = nil
	}
	return nil
}

// route resolves the federation a hello targets: the named one, or the sole
// registered federation when the hello is anonymous (legacy client).
func (h *Host) route(name string) *Federation {
	h.mu.Lock()
	defer h.mu.Unlock()
	if f, ok := h.feds[name]; ok {
		return f
	}
	if name == "" {
		return h.sole
	}
	return nil
}

// Serve accepts and routes connections until the listener closes. Each
// handshake is read in its own goroutine under HandshakeTimeout, so a slow
// peer stalls neither the accept loop nor the other federations. The
// listener is not closed; the caller owns it and ends Serve by closing it.
func (h *Host) Serve(lis net.Listener) error {
	hsTimeout := h.HandshakeTimeout
	if hsTimeout <= 0 {
		hsTimeout = 5 * time.Second
	}
	hostTrack := h.Tracer.Track("host")
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("flnet: host accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := h.Tracer.Start(hostTrack, "accept-handshake")
			conn := NewConn(raw, hsTimeout)
			hello, err := conn.Recv()
			if err != nil || hello.Type != MsgJoin {
				_ = conn.Close() // a scanner, half-open dial or silent peer
				sp.End()
				return
			}
			fed := h.route(hello.Federation)
			if fed == nil {
				reject(conn, RejectUnknownFederation, fmt.Sprintf("no federation %q on this host", hello.Federation))
				sp.End()
				return
			}
			fed.Offer(conn, hello)
			sp.End()
		}()
	}
}
