package flnet

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/nn"
)

func pipeConns(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	return NewConn(a, 2*time.Second), NewConn(b, 2*time.Second)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	client, server := pipeConns(t)
	defer client.Close()
	defer server.Close()

	sent := &Envelope{
		Type:        MsgTrainRequest,
		Round:       4,
		ClientID:    7,
		Weights:     []float64{1, 2, 3},
		PrevWeights: []float64{0, 1, 2},
		NumSamples:  50,
	}
	done := make(chan error, 1)
	go func() { done <- client.Send(sent) }()
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Type != sent.Type || got.Round != 4 || got.ClientID != 7 || got.NumSamples != 50 {
		t.Fatalf("envelope fields lost: %+v", got)
	}
	for i, w := range sent.Weights {
		if got.Weights[i] != w {
			t.Fatal("weights corrupted in transit")
		}
	}
	for i, w := range sent.PrevWeights {
		if got.PrevWeights[i] != w {
			t.Fatal("prev weights corrupted in transit")
		}
	}
}

func TestMultipleEnvelopesSameConn(t *testing.T) {
	client, server := pipeConns(t)
	defer client.Close()
	defer server.Close()

	go func() {
		for i := 0; i < 5; i++ {
			_ = client.Send(&Envelope{Type: MsgUpdate, Round: i, Weights: []float64{float64(i)}})
		}
	}()
	for i := 0; i < 5; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Round != i || got.Weights[0] != float64(i) {
			t.Fatalf("message %d corrupted: %+v", i, got)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	tests := map[MsgType]string{
		MsgJoin:         "join",
		MsgJoinAck:      "joinack",
		MsgTrainRequest: "trainrequest",
		MsgUpdate:       "update",
		MsgDone:         "done",
		MsgType(99):     "msgtype(99)",
	}
	for mt, want := range tests {
		if got := mt.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(mt), got, want)
		}
	}
}

func TestServerConfigValidate(t *testing.T) {
	good := ServerConfig{MinClients: 4, PerRound: 2, Rounds: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.RoundTimeout == 0 {
		t.Fatal("Validate should default RoundTimeout")
	}
	bad := []ServerConfig{
		{MinClients: 0, PerRound: 1, Rounds: 1},
		{MinClients: 2, PerRound: 0, Rounds: 1},
		{MinClients: 2, PerRound: 3, Rounds: 1},
		{MinClients: 2, PerRound: 1, Rounds: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

// TestEndToEndTraining runs a real federation over loopback TCP: 6 benign
// clients, 2 data-free attackers, an mKrum server — and verifies the global
// model learns and every participant receives the final weights.
func TestEndToEndTraining(t *testing.T) {
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 5)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	shards := dataset.PartitionIID(rand.New(rand.NewSource(1)), train.Len(), 6)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	srv, err := NewServer(ServerConfig{
		MinClients:   8,
		PerRound:     4,
		Rounds:       6,
		RoundTimeout: 10 * time.Second,
		Seed:         3,
	}, defense.MultiKrum{F: 1}, newModel, test)
	if err != nil {
		t.Fatal(err)
	}

	type serveOut struct {
		res *ServerResult
		err error
	}
	serverDone := make(chan serveOut, 1)
	go func() {
		res, err := srv.Serve(lis)
		serverDone <- serveOut{res, err}
	}()

	var wg sync.WaitGroup
	finals := make([][]float64, 8)
	errs := make([]error, 8)
	addr := lis.Addr().String()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			var trainer Trainer
			if i < 6 {
				trainer = NewBenignTrainer(train, shards[i], newModel, 0.05, 1, 8, rng)
			} else {
				dfa, err := core.NewDFAR(core.DFAConfig{
					Classes:         spec.Classes,
					ImgC:            spec.Channels,
					ImgSize:         spec.Size,
					SampleCount:     4,
					SynthesisEpochs: 2,
					Trained:         true,
				})
				if err != nil {
					errs[i] = err
					return
				}
				trainer = NewAttackTrainer(dfa, newModel, rng, 40)
			}
			client, err := Dial(addr, trainer, 10*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			finals[i], errs[i] = client.Run()
		}(i)
	}
	wg.Wait()
	out := <-serverDone
	if out.err != nil {
		t.Fatalf("server: %v", out.err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if len(out.res.Rounds) != 6 {
		t.Fatalf("server ran %d rounds, want 6", len(out.res.Rounds))
	}
	for _, rr := range out.res.Rounds {
		if rr.Responded == 0 {
			t.Fatalf("round %d had no responders", rr.Round)
		}
	}
	if out.res.MaxAccuracy < 0.4 {
		t.Fatalf("networked federation failed to learn: max accuracy %.3f", out.res.MaxAccuracy)
	}
	// Every client must hold the exact final global model.
	for i, fw := range finals {
		if len(fw) != len(out.res.FinalWeights) {
			t.Fatalf("client %d final weights length %d", i, len(fw))
		}
		for j := range fw {
			if fw[j] != out.res.FinalWeights[j] {
				t.Fatalf("client %d final weights diverge at %d", i, j)
			}
		}
	}
}

// TestStragglerToleration verifies that a client missing the round deadline
// does not wedge the server.
func TestStragglerToleration(t *testing.T) {
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 6)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	shards := dataset.PartitionIID(rand.New(rand.NewSource(2)), train.Len(), 3)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	srv, err := NewServer(ServerConfig{
		MinClients:   3,
		PerRound:     3,
		Rounds:       2,
		RoundTimeout: 500 * time.Millisecond,
		Seed:         4,
	}, defense.FedAvg{}, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	var srvRes *ServerResult
	go func() {
		res, err := srv.Serve(lis)
		srvRes = res
		serverDone <- err
	}()

	addr := lis.Addr().String()
	var wg sync.WaitGroup
	// Two healthy clients.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + i)))
			trainer := NewBenignTrainer(train, shards[i], newModel, 0.05, 1, 8, rng)
			client, err := Dial(addr, trainer, 5*time.Second)
			if err != nil {
				return
			}
			_, _ = client.Run() // may fail when the server moves on; fine
		}(i)
	}
	// One straggler that joins but never answers training requests.
	wg.Add(1)
	go func() {
		defer wg.Done()
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		conn := NewConn(raw, 5*time.Second)
		defer conn.Close()
		if err := conn.Send(&Envelope{Type: MsgJoin}); err != nil {
			return
		}
		if _, err := conn.Recv(); err != nil {
			return
		}
		time.Sleep(3 * time.Second) // stay silent past every deadline
	}()

	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server wedged on straggler")
	}
	wg.Wait()
	if len(srvRes.Rounds) != 2 {
		t.Fatalf("server ran %d rounds, want 2", len(srvRes.Rounds))
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil, time.Second); err == nil {
		t.Fatal("expected error for nil trainer")
	}
	if _, err := Dial("127.0.0.1:0", &BenignTrainer{}, 200*time.Millisecond); err == nil {
		t.Fatal("expected dial error for unroutable address")
	}
}

func TestServerRejectsBadHandshake(t *testing.T) {
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 7)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	shards := dataset.PartitionIID(rand.New(rand.NewSource(3)), train.Len(), 1)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srv, err := NewServer(ServerConfig{
		MinClients:   1,
		PerRound:     1,
		Rounds:       1,
		RoundTimeout: 2 * time.Second,
		Seed:         5,
	}, defense.FedAvg{}, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(lis)
		serverDone <- err
	}()

	addr := lis.Addr().String()
	// A bogus connection that speaks the wrong first message: the server
	// must drop it and keep accepting.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bogus := NewConn(raw, time.Second)
	_ = bogus.Send(&Envelope{Type: MsgUpdate})
	_ = bogus.Close()

	// A real client arrives afterwards and completes the session.
	rng := rand.New(rand.NewSource(9))
	trainer := NewBenignTrainer(train, shards[0], newModel, 0.05, 1, 8, rng)
	client, err := Dial(addr, trainer, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
}

func TestAttackTrainerWrongCount(t *testing.T) {
	spec := dataset.TinySpec()
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	at := NewAttackTrainer(badCountAttack{}, newModel, rand.New(rand.NewSource(1)), 10)
	global := newModel(rand.New(rand.NewSource(2))).WeightVector()
	if _, _, err := at.Train(0, global, global); err == nil {
		t.Fatal("expected error for multi-vector attack response")
	}
}

type badCountAttack struct{}

func (badCountAttack) Name() string { return "badcount" }

func (badCountAttack) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	return [][]float64{ctx.Global, ctx.Global}, nil
}
