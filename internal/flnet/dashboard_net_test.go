package flnet

// Dashboard-over-sockets regression: the acceptance contract's second
// transport. A networked federation with the forensics endpoint served and
// actively hammered — SSE subscriber attached, JSON polled — must produce
// results bit-identical to the same fixed-seed federation with no observer
// at all.

import (
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/defense"
	"repro/internal/forensics"
)

func TestDashboardObservationBitExactOverSockets(t *testing.T) {
	tn := tenant{
		id: "dash",
		cfg: ServerConfig{
			MinClients:   2,
			PerRound:     2,
			Rounds:       3,
			RoundTimeout: 10 * time.Second,
			Seed:         9,
		},
		agg:     defense.FedAvg{},
		genSeed: 41,
		spec:    codec.Spec{},
	}
	baseline := runDedicated(t, tn)

	// Second run: same seeds, but every aggregation is observed, served,
	// streamed and polled while the rounds execute.
	col, err := forensics.NewCollector(forensics.Options{Defense: "fedavg", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	httpAddr, shutdownHTTP, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	for _, path := range []string{"/forensics/metrics", "/forensics/rounds?since=0"} {
		hammer.Add(1)
		go func(path string) {
			defer hammer.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + httpAddr + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(path)
	}
	hammer.Add(1)
	go func() { // persistent SSE subscriber for the whole run
		defer hammer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + httpAddr + "/forensics/stream")
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body) // drains until shutdown cancels
			resp.Body.Close()
		}
	}()

	train, test, newModel, shards := tenantData(t, tn)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	cfg := tn.cfg
	cfg.Observer = col
	srv, err := NewServer(cfg, tn.agg, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Serve(lis)
		done <- out{res, err}
	}()
	anon := tn
	anon.id = ""
	wg := runTenantClients(t, lis.Addr().String(), anon, train, newModel, shards)
	wg.Wait()
	o := <-done
	if o.err != nil {
		t.Fatalf("observed server: %v", o.err)
	}
	close(stop)
	if err := shutdownHTTP(); err != nil {
		t.Fatalf("forensics endpoint shutdown: %v", err)
	}
	hammer.Wait()

	sameResult(t, "dashboard observation", baseline, o.res)
	if s := col.Summary(); s.Aggregations != tn.cfg.Rounds {
		t.Fatalf("collector audited %d aggregations, want %d", s.Aggregations, tn.cfg.Rounds)
	}
	if got := col.Subscribers(); got != 0 {
		t.Fatalf("subscriber leak after shutdown: %d", got)
	}
}
