package flnet

import "repro/internal/telemetry"

// fedTelemetry bundles one federation's host-side instruments: the shared
// engine telemetry (rounds, phases, codec bytes) plus the membership
// surface — join handshakes, admission-queue depth and wait, drain
// requests. All methods are nil-safe, so the un-instrumented path costs one
// nil check, and every instrument is labelled federation="<id>" so
// co-hosted tenants stay distinguishable on one registry. Pure observation:
// nothing here touches the round loop's RNG streams or update ordering.
type fedTelemetry struct {
	engine *telemetry.EngineTelemetry
	tracer *telemetry.Tracer
	track  int32

	joins      *telemetry.Counter
	rejects    *telemetry.Counter
	queueDepth *telemetry.Gauge
	queueWait  *telemetry.Histogram
	drains     *telemetry.Counter
}

// newFedTelemetry registers one federation's instruments from its config;
// nil when the config attaches neither a registry nor a tracer.
func newFedTelemetry(cfg ServerConfig, id string) *fedTelemetry {
	reg, tr := cfg.Metrics, cfg.Tracer
	if reg == nil && tr == nil {
		return nil
	}
	var labels []telemetry.Label
	track := "engine"
	if id != "" {
		labels = []telemetry.Label{{Key: "federation", Value: id}}
		track = "federation/" + id
	}
	return &fedTelemetry{
		engine: telemetry.NewEngineTelemetry(reg, tr, id),
		tracer: tr,
		track:  tr.Track(track),
		joins: reg.Counter("flnet_joins_total",
			"Join handshakes admitted as members.", labels...),
		rejects: reg.Counter("flnet_join_rejects_total",
			"Join handshakes rejected (identity, codec, closed, queue full) or failed.", labels...),
		queueDepth: reg.Gauge("flnet_pending_joins",
			"Handshakes currently waiting in the admission queue.", labels...),
		queueWait: reg.Histogram("flnet_join_queue_wait_seconds",
			"Time a handshake waited in the admission queue before being served.", labels...),
		drains: reg.Counter("flnet_drains_total",
			"Graceful drain requests.", labels...),
	}
}

// engineTelemetry returns the engine instrument set (nil when disabled).
func (t *fedTelemetry) engineTelemetry() *telemetry.EngineTelemetry {
	if t == nil {
		return nil
	}
	return t.engine
}

// handshake opens the span covering one join handshake.
func (t *fedTelemetry) handshake() telemetry.Span {
	if t == nil {
		return telemetry.Span{}
	}
	return t.tracer.Start(t.track, "join-handshake")
}

// admitted counts a handshake outcome.
func (t *fedTelemetry) admitted(ok bool) {
	if t == nil {
		return
	}
	if ok {
		t.joins.Inc()
	} else {
		t.rejects.Inc()
	}
}

// enqueueNanos timestamps an admission-queue entry (0 when disabled).
func (t *fedTelemetry) enqueueNanos() int64 {
	if t == nil {
		return 0
	}
	t.queueDepth.Add(1)
	return telemetry.Nanos()
}

// unqueued rebalances the depth gauge for an entry that never made it into
// the queue (the bounded send lost the race to a join storm).
func (t *fedTelemetry) unqueued() {
	if t != nil {
		t.queueDepth.Add(-1)
	}
}

// dequeued records one queue exit: depth down, wait observed, and the wait
// emitted as a queue-wait span so trace rows show admission latency.
func (t *fedTelemetry) dequeued(enqueuedNs int64) {
	if t == nil {
		return
	}
	t.queueDepth.Add(-1)
	wait := telemetry.Nanos() - enqueuedNs
	t.queueWait.ObserveNanos(wait)
	t.tracer.Emit(t.track, "queue-wait", enqueuedNs, wait)
}

// drained counts a graceful drain request and marks it on the trace row.
func (t *fedTelemetry) drained() {
	if t == nil {
		return
	}
	t.drains.Inc()
	t.tracer.Emit(t.track, "drain-requested", telemetry.Nanos(), 0)
}

// bytesIn counts real update wire bytes received (codec frame length, or
// 8 bytes per coordinate for legacy dense updates). Safe from the
// concurrent per-session collect goroutines — counters are atomic.
func (t *fedTelemetry) bytesIn(n int) {
	if t != nil {
		t.engine.AddBytesIn(n)
	}
}
