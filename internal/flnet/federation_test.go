package flnet

import (
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/nn"
)

// tenant describes one federation fixture of a multi-tenant test: its own
// dataset, population, defense and codec.
type tenant struct {
	id      string
	cfg     ServerConfig
	agg     fl.Aggregator
	genSeed int64
	spec    codec.Spec
}

// tenantData builds the tenant's dataset, model factory and IID shards.
func tenantData(t testing.TB, tn tenant) (*dataset.Dataset, *dataset.Dataset, func(rng *rand.Rand) *nn.Network, [][]int) {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, tn.genSeed)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	shards := dataset.PartitionIID(rand.New(rand.NewSource(tn.genSeed+1)), train.Len(), tn.cfg.MinClients)
	return train, test, newModel, shards
}

// runTenantClients joins the tenant's benign clients sequentially (so
// server-assigned IDs, and therefore shards and codec rounding streams, are
// deterministic) and runs them to completion concurrently.
func runTenantClients(t testing.TB, addr string, tn tenant, train *dataset.Dataset, newModel func(rng *rand.Rand) *nn.Network, shards [][]int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < tn.cfg.MinClients; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		trainer := NewBenignTrainer(train, shards[i], newModel, 0.05, 1, 8, rng)
		client, err := DialFederation(addr, tn.id, trainer, 10*time.Second, tn.spec)
		if err != nil {
			t.Fatalf("tenant %q client %d: %v", tn.id, i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Run(); err != nil {
				t.Errorf("tenant %q client: %v", tn.id, err)
			}
		}()
	}
	return &wg
}

// runDedicated runs the tenant alone on its own Server and listener — the
// isolation baseline.
func runDedicated(t *testing.T, tn tenant) *ServerResult {
	t.Helper()
	train, test, newModel, shards := tenantData(t, tn)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srv, err := NewServer(tn.cfg, tn.agg, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Serve(lis)
		done <- out{res, err}
	}()
	// Dedicated servers know no federation IDs; join anonymously like a
	// legacy client.
	anon := tn
	anon.id = ""
	wg := runTenantClients(t, lis.Addr().String(), anon, train, newModel, shards)
	wg.Wait()
	o := <-done
	if o.err != nil {
		t.Fatalf("tenant %q dedicated: %v", tn.id, o.err)
	}
	return o.res
}

// sameResult asserts two server results are bit-identical: metrics, round
// reports and the full final weight vector.
func sameResult(t *testing.T, label string, a, b *ServerResult) {
	t.Helper()
	if a.MaxAccuracy != b.MaxAccuracy || a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("%s: accuracy diverges: max %v vs %v, final %v vs %v",
			label, a.MaxAccuracy, b.MaxAccuracy, a.FinalAccuracy, b.FinalAccuracy)
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: %d vs %d rounds", label, len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("%s: round %d diverges: %+v vs %+v", label, i, a.Rounds[i], b.Rounds[i])
		}
	}
	if len(a.FinalWeights) != len(b.FinalWeights) {
		t.Fatalf("%s: final weights length %d vs %d", label, len(a.FinalWeights), len(b.FinalWeights))
	}
	for i := range a.FinalWeights {
		if a.FinalWeights[i] != b.FinalWeights[i] {
			t.Fatalf("%s: final weights diverge at %d", label, i)
		}
	}
}

// testTenants returns the two-tenant fixture: different datasets, defenses,
// codecs, populations and seeds — nothing shared but the process.
func testTenants() []tenant {
	return []tenant{
		{
			id: "alpha",
			cfg: ServerConfig{
				MinClients: 3, PerRound: 2, Rounds: 3,
				RoundTimeout: 10 * time.Second, Seed: 5,
			},
			agg:     defense.MultiKrum{F: 1},
			genSeed: 11,
		},
		{
			id: "beta",
			cfg: ServerConfig{
				MinClients: 2, PerRound: 2, Rounds: 4,
				RoundTimeout: 10 * time.Second, Seed: 9,
				Codec: "fp16",
			},
			agg:     defense.FedAvg{},
			genSeed: 23,
			spec:    codec.Spec{Quant: codec.FP16},
		},
	}
}

// TestMultiTenantIsolationBitExact: two federations with different
// defenses, codecs, seeds and populations share one Host and one listener;
// each must produce results bit-identical to running alone on a dedicated
// server. Cross-tenant interference of any kind — routed messages, RNG
// streams, session state — would break the equality.
func TestMultiTenantIsolationBitExact(t *testing.T) {
	tenants := testTenants()
	dedicated := make([]*ServerResult, len(tenants))
	for i, tn := range tenants {
		dedicated[i] = runDedicated(t, tn)
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	host := NewHost()
	feds := make([]*Federation, len(tenants))
	type fedData struct {
		train    *dataset.Dataset
		newModel func(rng *rand.Rand) *nn.Network
		shards   [][]int
	}
	data := make([]fedData, len(tenants))
	for i, tn := range tenants {
		train, test, newModel, shards := tenantData(t, tn)
		fed, err := NewFederation(tn.id, tn.cfg, tn.agg, newModel, test)
		if err != nil {
			t.Fatal(err)
		}
		if err := host.Add(fed); err != nil {
			t.Fatal(err)
		}
		feds[i] = fed
		data[i] = fedData{train: train, newModel: newModel, shards: shards}
	}
	go func() { _ = host.Serve(lis) }()

	type out struct {
		res *ServerResult
		err error
	}
	done := make([]chan out, len(tenants))
	for i, fed := range feds {
		done[i] = make(chan out, 1)
		go func(i int, fed *Federation) {
			res, err := fed.Run()
			done[i] <- out{res, err}
		}(i, fed)
	}
	var wgs []*sync.WaitGroup
	for i, tn := range tenants {
		wgs = append(wgs, runTenantClients(t, lis.Addr().String(), tn, data[i].train, data[i].newModel, data[i].shards))
	}
	for _, wg := range wgs {
		wg.Wait()
	}
	for i, tn := range tenants {
		o := <-done[i]
		if o.err != nil {
			t.Fatalf("tenant %q hosted: %v", tn.id, o.err)
		}
		sameResult(t, "tenant "+tn.id, dedicated[i], o.res)
	}
}

// TestMultiTenantCheckpointResume: one federation resumes from a checkpoint
// while another trains on the same host; the resumed run must be
// bit-identical to a dedicated resume.
func TestMultiTenantCheckpointResume(t *testing.T) {
	mkTenant := func(ckpt string, rounds int) tenant {
		return tenant{
			id: "resume",
			cfg: ServerConfig{
				MinClients: 2, PerRound: 2, Rounds: rounds,
				RoundTimeout:   10 * time.Second,
				Seed:           6,
				CheckpointPath: ckpt,
				DatasetName:    dataset.TinySpec().Name,
				ModelName:      "fashion-cnn",
			},
			agg:     defense.FedAvg{},
			genSeed: 31,
		}
	}

	// Dedicated baseline: 2 rounds, crash, resume to 4.
	ckptA := filepath.Join(t.TempDir(), "a.ckpt")
	runDedicated(t, mkTenant(ckptA, 2))
	wantResumed := runDedicated(t, mkTenant(ckptA, 4))

	// Hosted: same first life, then resume on a host that is concurrently
	// training another federation.
	ckptB := filepath.Join(t.TempDir(), "b.ckpt")
	runDedicated(t, mkTenant(ckptB, 2))

	resumeTn := mkTenant(ckptB, 4)
	trainTn := testTenants()[0] // "alpha", mkrum, training from scratch

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	host := NewHost()
	var feds []*Federation
	type tData struct {
		train    *dataset.Dataset
		newModel func(rng *rand.Rand) *nn.Network
		shards   [][]int
	}
	var data []tData
	for _, tn := range []tenant{resumeTn, trainTn} {
		train, test, newModel, shards := tenantData(t, tn)
		fed, err := NewFederation(tn.id, tn.cfg, tn.agg, newModel, test)
		if err != nil {
			t.Fatal(err)
		}
		if err := host.Add(fed); err != nil {
			t.Fatal(err)
		}
		feds = append(feds, fed)
		data = append(data, tData{train, newModel, shards})
	}
	go func() { _ = host.Serve(lis) }()

	type out struct {
		res *ServerResult
		err error
	}
	done := make([]chan out, len(feds))
	for i, fed := range feds {
		done[i] = make(chan out, 1)
		go func(i int, fed *Federation) {
			res, err := fed.Run()
			done[i] <- out{res, err}
		}(i, fed)
	}
	var wgs []*sync.WaitGroup
	for i, tn := range []tenant{resumeTn, trainTn} {
		wgs = append(wgs, runTenantClients(t, lis.Addr().String(), tn, data[i].train, data[i].newModel, data[i].shards))
	}
	for _, wg := range wgs {
		wg.Wait()
	}
	for i := range feds {
		if o := <-done[i]; o.err != nil {
			t.Fatalf("fed %d: %v", i, o.err)
		} else if i == 0 {
			// The resumed federation continues at round 2 and matches the
			// dedicated resume bit-for-bit despite the co-tenant's training.
			if len(o.res.Rounds) == 0 || o.res.Rounds[0].Round != 2 {
				t.Fatalf("hosted resume restarted from %+v, want round 2", o.res.Rounds)
			}
			sameResult(t, "hosted resume", wantResumed, o.res)
		}
	}
}

// TestAdmissionControlJoinStorm: joins beyond the bounded pending queue are
// rejected immediately with RejectAdmission while the federation is not yet
// draining its queue.
func TestAdmissionControlJoinStorm(t *testing.T) {
	spec := dataset.TinySpec()
	_, test := dataset.Generate(spec, 3)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	fed, err := NewFederation("storm", ServerConfig{
		MinClients: 2, PerRound: 1, Rounds: 1,
		RoundTimeout: 5 * time.Second,
		PendingJoins: 1,
	}, defense.FedAvg{}, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost()
	if err := host.Add(fed); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = host.Serve(lis) }()
	addr := lis.Addr().String()

	// The federation's Run is intentionally not started: its queue (cap 1)
	// never drains, so the first join parks and the second must bounce.
	stub := &stubTrainer{}
	first := make(chan error, 1)
	go func() {
		_, err := DialFederation(addr, "storm", stub, 2*time.Second, codec.Spec{})
		first <- err
	}()
	// Wait until the first join occupies the queue.
	deadline := time.Now().Add(2 * time.Second)
	for len(fed.pending) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(fed.pending) == 0 {
		t.Fatal("first join never reached the pending queue")
	}

	_, err = DialFederation(addr, "storm", stub, 2*time.Second, codec.Spec{})
	var jr *JoinRejectedError
	if !errors.As(err, &jr) || jr.Code != RejectAdmission {
		t.Fatalf("second join: want RejectAdmission, got %v", err)
	}
	// The parked first join eventually times out client-side; it must not
	// have been rejected (it is queued, not refused).
	if err := <-first; err == nil {
		t.Fatal("parked join unexpectedly completed with no admitter running")
	} else if errors.As(err, &jr) {
		t.Fatalf("parked join was rejected (%v), want queued until timeout", err)
	}
}

// TestUnknownFederationRejected: naming a federation the host does not
// serve, or joining anonymously when the host serves several, is a typed
// rejection before any round state is touched.
func TestUnknownFederationRejected(t *testing.T) {
	spec := dataset.TinySpec()
	_, test := dataset.Generate(spec, 3)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	cfg := ServerConfig{MinClients: 2, PerRound: 1, Rounds: 1, RoundTimeout: 5 * time.Second}
	host := NewHost()
	for _, id := range []string{"a", "b"} {
		fed, err := NewFederation(id, cfg, defense.FedAvg{}, newModel, test)
		if err != nil {
			t.Fatal(err)
		}
		if err := host.Add(fed); err != nil {
			t.Fatal(err)
		}
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = host.Serve(lis) }()

	stub := &stubTrainer{}
	for _, name := range []string{"nope", ""} {
		_, err := DialFederation(lis.Addr().String(), name, stub, 2*time.Second, codec.Spec{})
		var jr *JoinRejectedError
		if !errors.As(err, &jr) || jr.Code != RejectUnknownFederation {
			t.Fatalf("federation %q: want RejectUnknownFederation, got %v", name, err)
		}
	}
}

// stubTrainer satisfies Trainer for handshake-only tests.
type stubTrainer struct{}

func (s *stubTrainer) Train(_ int, global, _ []float64) ([]float64, int, error) {
	return global, 1, nil
}

// drainObserver triggers a federation drain after the first aggregation.
type drainObserver struct {
	fed  *Federation
	once sync.Once
}

func (d *drainObserver) ObserveAggregation(int, []float64, []fl.Update, fl.Selection) {
	d.once.Do(d.fed.Drain)
}

// TestFederationGracefulDrain: draining mid-run stops at the next round
// boundary, keeps the completed rounds, and still hands every member the
// final model.
func TestFederationGracefulDrain(t *testing.T) {
	tn := tenant{
		id: "drainee",
		cfg: ServerConfig{
			MinClients: 2, PerRound: 2, Rounds: 50, // would run long undrained
			RoundTimeout: 10 * time.Second, Seed: 4,
		},
		agg:     defense.FedAvg{},
		genSeed: 17,
	}
	train, test, newModel, shards := tenantData(t, tn)
	fed, err := NewFederation(tn.id, tn.cfg, tn.agg, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	obs := &drainObserver{fed: fed}
	fed.cfg.Observer = obs
	host := NewHost()
	if err := host.Add(fed); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = host.Serve(lis) }()

	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := fed.Run()
		done <- out{res, err}
	}()
	wg := runTenantClients(t, lis.Addr().String(), tn, train, newModel, shards)
	wg.Wait()
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if n := len(o.res.Rounds); n == 0 || n >= 50 {
		t.Fatalf("drained federation ran %d rounds, want a small positive count", n)
	}
	if len(o.res.FinalWeights) == 0 {
		t.Fatal("drained federation returned no final model")
	}
}
