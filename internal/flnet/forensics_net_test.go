package flnet

// Forensics-over-sockets regression: the audit observer must see every
// aggregation of a networked run, including all-filtered and
// zero-responder rounds (the satellite's "both transports" contract).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/forensics"
	"repro/internal/vec"
)

// rejectAllNet reports a known-but-empty selection and keeps the global.
type rejectAllNet struct{}

func (rejectAllNet) Name() string { return "rejectall" }

func (rejectAllNet) Aggregate(global []float64, _ []fl.Update) ([]float64, fl.Selection, error) {
	return vec.Clone(global), fl.Selection{Accepted: []int{}}, nil
}

func TestAllFilteredRoundsAuditedOverSockets(t *testing.T) {
	f := newNetFixture(t, 31, 2)
	lis := f.listen(t)
	col, err := forensics.NewCollector(forensics.Options{Defense: "rejectall"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		MinClients:   2,
		PerRound:     2,
		Rounds:       2,
		RoundTimeout: 10 * time.Second,
		Seed:         3,
		Observer:     col,
	}, rejectAllNet{}, f.newModel, f.test)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Serve(lis)
		done <- out{res, err}
	}()
	addr := lis.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.runBenign(addr, i, int64(50+i))
		}(i)
	}
	var o out
	select {
	case o = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("all-filtered federation wedged")
	}
	wg.Wait()
	if o.err != nil {
		t.Fatalf("server: %v", o.err)
	}
	if len(o.res.Rounds) != 2 {
		t.Fatalf("server ran %d rounds, want 2", len(o.res.Rounds))
	}
	s := col.Summary()
	if s.Aggregations != 2 || s.ZeroSelectionRounds != 2 {
		t.Fatalf("audited %d aggregations, %d zero-selection; want 2/2", s.Aggregations, s.ZeroSelectionRounds)
	}
	// Over sockets there is no ground truth: every rejection is a benign
	// false positive, and the rates must be defined (no division by zero).
	if s.Confusion.FP == 0 || s.Confusion.TP != 0 {
		t.Fatalf("socket confusion = %+v", s.Confusion)
	}
	if s.FPR != 1 {
		t.Fatalf("FPR = %v, want 1 for an all-filtered benign federation", s.FPR)
	}
}

// TestZeroResponderRoundsAuditedOverSockets: a federation whose only client
// never answers must still produce one zero-selection audit entry per
// round over the real socket transport.
func TestZeroResponderRoundsAuditedOverSockets(t *testing.T) {
	f := newNetFixture(t, 32, 1)
	lis := f.listen(t)
	col, err := forensics.NewCollector(forensics.Options{Defense: "fedavg"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		MinClients:   1,
		PerRound:     1,
		Rounds:       2,
		RoundTimeout: 300 * time.Millisecond,
		Seed:         4,
		Observer:     col,
	}, defense.FedAvg{}, f.newModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(lis)
		done <- err
	}()
	go joinSilent(t, lis.Addr().String(), 2*time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("zero-responder federation wedged")
	}
	s := col.Summary()
	if s.Aggregations != 2 || s.ZeroSelectionRounds != 2 {
		t.Fatalf("audited %d aggregations, %d zero-selection; want 2/2", s.Aggregations, s.ZeroSelectionRounds)
	}
	if s.Updates != 0 {
		t.Fatalf("zero-responder rounds carried %d updates", s.Updates)
	}
}
