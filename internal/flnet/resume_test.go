package flnet

import (
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/nn"
	"repro/internal/persist"
)

// runCheckpointedFederation runs a 2-client federation for the given total
// round budget against a shared checkpoint path and returns the result.
func runCheckpointedFederation(t *testing.T, ckpt string, rounds int) *ServerResult {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 11)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	shards := dataset.PartitionIID(rand.New(rand.NewSource(8)), train.Len(), 2)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	srv, err := NewServer(ServerConfig{
		MinClients:     2,
		PerRound:       2,
		Rounds:         rounds,
		RoundTimeout:   10 * time.Second,
		Seed:           6,
		CheckpointPath: ckpt,
		DatasetName:    spec.Name,
		ModelName:      "fashion-cnn",
	}, defense.FedAvg{}, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	type serveOut struct {
		res *ServerResult
		err error
	}
	serverDone := make(chan serveOut, 1)
	go func() {
		res, err := srv.Serve(lis)
		serverDone <- serveOut{res, err}
	}()

	addr := lis.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(20 + i)))
			trainer := NewBenignTrainer(train, shards[i], newModel, 0.05, 1, 8, rng)
			client, err := Dial(addr, trainer, 10*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := client.Run(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	out := <-serverDone
	if out.err != nil {
		t.Fatalf("server: %v", out.err)
	}
	return out.res
}

// TestServerResumesFromCheckpoint kills-and-restarts a checkpointed server:
// the restarted server must continue at the round after the checkpoint, not
// from round zero with fresh weights.
func TestServerResumesFromCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "federation.ckpt")

	// First life: rounds 0 and 1, checkpointing each.
	res1 := runCheckpointedFederation(t, ckpt, 2)
	if len(res1.Rounds) != 2 || res1.Rounds[0].Round != 0 {
		t.Fatalf("first run rounds: %+v", res1.Rounds)
	}

	// Restart with the same round budget: the checkpoint says everything is
	// done, so the server runs zero rounds and redistributes the
	// checkpointed weights untouched.
	res2 := runCheckpointedFederation(t, ckpt, 2)
	if len(res2.Rounds) != 0 {
		t.Fatalf("fully-checkpointed server re-ran %d rounds", len(res2.Rounds))
	}
	if res2.MaxAccuracy != res1.MaxAccuracy {
		t.Fatalf("resumed MaxAccuracy %.4f, want pre-crash %.4f", res2.MaxAccuracy, res1.MaxAccuracy)
	}
	if len(res2.FinalWeights) != len(res1.FinalWeights) {
		t.Fatal("resumed weights length diverges")
	}
	for i := range res2.FinalWeights {
		if res2.FinalWeights[i] != res1.FinalWeights[i] {
			t.Fatalf("resumed weights diverge from checkpoint at %d", i)
		}
	}

	// Restart with a larger budget: training continues at round 2.
	res3 := runCheckpointedFederation(t, ckpt, 4)
	if len(res3.Rounds) != 2 {
		t.Fatalf("resumed server ran %d rounds, want the 2 remaining", len(res3.Rounds))
	}
	if res3.Rounds[0].Round != 2 || res3.Rounds[1].Round != 3 {
		t.Fatalf("resumed rounds %d,%d, want 2,3", res3.Rounds[0].Round, res3.Rounds[1].Round)
	}
}

// TestServerRejectsMismatchedCheckpoint: resuming across a different task
// or architecture must fail before any client joins.
func TestServerRejectsMismatchedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := dataset.TinySpec()
	_, test := dataset.Generate(spec, 12)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	wantLen := len(newModel(rand.New(rand.NewSource(1))).WeightVector())

	cases := []struct {
		name string
		cp   persist.Checkpoint
	}{
		{"dataset", persist.Checkpoint{Round: 0, Dataset: "cifar-sim", Model: "fashion-cnn", Weights: make([]float64, wantLen), Accuracy: -1}},
		{"model", persist.Checkpoint{Round: 0, Dataset: spec.Name, Model: "deep-cnn", Weights: make([]float64, wantLen), Accuracy: -1}},
		{"weights", persist.Checkpoint{Round: 0, Dataset: spec.Name, Model: "fashion-cnn", Weights: make([]float64, wantLen+1), Accuracy: -1}},
		{"round", persist.Checkpoint{Round: 9, Dataset: spec.Name, Model: "fashion-cnn", Weights: make([]float64, wantLen), Accuracy: -1}},
		{"prev-weights", persist.Checkpoint{Round: 0, Dataset: spec.Name, Model: "fashion-cnn", Weights: make([]float64, wantLen), PrevWeights: make([]float64, 3), Accuracy: -1}},
		{"seed", persist.Checkpoint{Round: 0, Dataset: spec.Name, Model: "fashion-cnn", Seed: 99, MinClients: 1, PerRound: 1, Weights: make([]float64, wantLen), Accuracy: -1}},
		{"population", persist.Checkpoint{Round: 0, Dataset: spec.Name, Model: "fashion-cnn", Seed: 6, MinClients: 5, PerRound: 1, Weights: make([]float64, wantLen), Accuracy: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ckpt := filepath.Join(dir, tc.name+".ckpt")
			cp := tc.cp
			for i := range cp.Weights {
				cp.Weights[i] = 0.01
			}
			if err := persist.Save(ckpt, &cp); err != nil {
				t.Fatal(err)
			}
			srv, err := NewServer(ServerConfig{
				MinClients:     1,
				PerRound:       1,
				Rounds:         2,
				RoundTimeout:   time.Second,
				Seed:           6,
				CheckpointPath: ckpt,
				DatasetName:    spec.Name,
				ModelName:      "fashion-cnn",
			}, defense.FedAvg{}, newModel, test)
			if err != nil {
				t.Fatal(err)
			}
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer lis.Close()
			if _, err := srv.Serve(lis); err == nil {
				t.Fatal("mismatched checkpoint must fail fast")
			}
		})
	}
}
