package flnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/nn"
)

// runCodecFederation runs a small benign federation over loopback TCP with
// the given server codec token and one client per spec. Clients join
// sequentially so server-assigned IDs (and therefore shards and rounding
// streams) are deterministic across runs — the raw-vs-legacy bit-identity
// test below depends on it.
func runCodecFederation(t *testing.T, serverCodec string, clientSpecs []codec.Spec, rounds int) *ServerResult {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 11)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	n := len(clientSpecs)
	shards := dataset.PartitionIID(rand.New(rand.NewSource(1)), train.Len(), n)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srv, err := NewServer(ServerConfig{
		MinClients:   n,
		PerRound:     n,
		Rounds:       rounds,
		RoundTimeout: 10 * time.Second,
		Seed:         7,
		Codec:        serverCodec,
	}, defense.MultiKrum{F: 1}, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	type serveOut struct {
		res *ServerResult
		err error
	}
	serverDone := make(chan serveOut, 1)
	go func() {
		res, err := srv.Serve(lis)
		serverDone <- serveOut{res, err}
	}()

	addr := lis.Addr().String()
	clients := make([]*Client, n)
	for i, cs := range clientSpecs {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		trainer := NewBenignTrainer(train, shards[i], newModel, 0.05, 1, 8, rng)
		client, err := DialCodec(addr, trainer, 10*time.Second, cs)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if client.ID != i {
			t.Fatalf("client %d assigned ID %d; sequential joins must get sequential IDs", i, client.ID)
		}
		clients[i] = client
	}

	finals := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, client := range clients {
		wg.Add(1)
		go func(i int, client *Client) {
			defer wg.Done()
			finals[i], errs[i] = client.Run()
		}(i, client)
	}
	wg.Wait()
	out := <-serverDone
	if out.err != nil {
		t.Fatalf("server: %v", out.err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if len(out.res.Rounds) != rounds {
		t.Fatalf("server ran %d rounds, want %d", len(out.res.Rounds), rounds)
	}
	for _, rr := range out.res.Rounds {
		if rr.Responded != rr.Selected {
			t.Fatalf("round %d: %d/%d responded — codec session dropped updates", rr.Round, rr.Responded, rr.Selected)
		}
	}
	for i, fw := range finals {
		if len(fw) != len(out.res.FinalWeights) {
			t.Fatalf("client %d final weights length %d", i, len(fw))
		}
		for j := range fw {
			if fw[j] != out.res.FinalWeights[j] {
				t.Fatalf("client %d final weights diverge at %d", i, j)
			}
		}
	}
	return out.res
}

// TestCodecSessionEndToEnd runs a lossy int8+top-k+EF federation over real
// sockets: every update travels as a codec frame, the mKrum server
// aggregates from reconstructions, and no round drops a client.
func TestCodecSessionEndToEnd(t *testing.T) {
	cs := codec.Spec{Quant: codec.Int8, TopK: 0.25, EF: true}
	specs := []codec.Spec{cs, cs, cs, cs}
	runCodecFederation(t, cs.String(), specs, 3)
}

// TestCodecRawMatchesLegacyBitExact: the raw codec is the lossless control —
// a federation that ships raw frames must finish with weights bit-identical
// to the same federation shipping legacy dense envelopes.
func TestCodecRawMatchesLegacyBitExact(t *testing.T) {
	legacy := runCodecFederation(t, "", make([]codec.Spec, 3), 2)
	raw := runCodecFederation(t, "raw",
		[]codec.Spec{{Quant: codec.Raw}, {Quant: codec.Raw}, {Quant: codec.Raw}}, 2)
	if len(legacy.FinalWeights) != len(raw.FinalWeights) {
		t.Fatalf("weight length mismatch: %d vs %d", len(legacy.FinalWeights), len(raw.FinalWeights))
	}
	for i := range legacy.FinalWeights {
		if legacy.FinalWeights[i] != raw.FinalWeights[i] {
			t.Fatalf("raw codec diverged from legacy at weight %d: %g vs %g",
				i, raw.FinalWeights[i], legacy.FinalWeights[i])
		}
	}
}

// TestCodecMixedLegacyAndCompressed: a legacy client ("" negotiation) is
// always served, even by a codec-enabled server; the round then mixes dense
// and frame-carrying updates and the defense falls back to dense geometry.
func TestCodecMixedLegacyAndCompressed(t *testing.T) {
	cs := codec.Spec{Quant: codec.FP16}
	runCodecFederation(t, cs.String(), []codec.Spec{{}, cs, cs}, 2)
}

// TestCodecNegotiationReject is the handshake satellite: a client whose
// codec the server does not serve is rejected with a typed error before any
// round starts, the rejected connection does not consume a MinClients slot,
// and compatible clients that follow complete the session normally.
func TestCodecNegotiationReject(t *testing.T) {
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, 13)
	newModel := func(rng *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
	}
	shards := dataset.PartitionIID(rand.New(rand.NewSource(2)), train.Len(), 2)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srv, err := NewServer(ServerConfig{
		MinClients:   2,
		PerRound:     2,
		Rounds:       1,
		RoundTimeout: 10 * time.Second,
		Seed:         9,
		Codec:        "int8",
	}, defense.FedAvg{}, newModel, test)
	if err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(lis)
		serverDone <- err
	}()

	addr := lis.Addr().String()
	mk := func(i int) Trainer {
		rng := rand.New(rand.NewSource(int64(40 + i)))
		return NewBenignTrainer(train, shards[i], newModel, 0.05, 1, 8, rng)
	}

	// A client requesting a codec the server does not serve must get the
	// typed rejection, not a hang or a generic protocol error.
	_, err = DialCodec(addr, mk(0), 5*time.Second, codec.Spec{Quant: codec.FP16})
	var rej *CodecRejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("mismatched codec: got %v, want *CodecRejectedError", err)
	}
	if rej.Codec != "fp16" || rej.Reason == "" {
		t.Fatalf("rejection lacks context: %+v", rej)
	}

	// The rejection must not have consumed a join slot: a legacy client and
	// a matching-codec client now fill MinClients and the session completes.
	var wg sync.WaitGroup
	var runErrs [2]error
	for i, cs := range []codec.Spec{{}, {Quant: codec.Int8}} {
		client, err := DialCodec(addr, mk(i), 10*time.Second, cs)
		if err != nil {
			t.Fatalf("compatible client %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, client *Client) {
			defer wg.Done()
			_, runErrs[i] = client.Run()
		}(i, client)
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	for i, err := range runErrs {
		if err != nil {
			t.Fatalf("client %d run: %v", i, err)
		}
	}
}

// TestDialCodecValidatesSpec: an invalid spec fails client-side, before any
// connection is attempted.
func TestDialCodecValidatesSpec(t *testing.T) {
	_, err := DialCodec("127.0.0.1:1", &BenignTrainer{}, time.Second, codec.Spec{Quant: codec.Raw, EF: true})
	if err == nil {
		t.Fatal("expected validation error for EF on a lossless codec")
	}
}
