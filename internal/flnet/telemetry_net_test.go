package flnet

import (
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// TestTelemetryOnOffBitIdenticalOverSockets locks in the telemetry
// discipline on the socket transport, under co-hosting and concurrency in
// one go: two federations share one Host, one metrics registry and one
// tracer (so span emission is exercised concurrently — the CI -race leg
// runs this test), and each must still produce results bit-identical to
// its dedicated, telemetry-free baseline. The shared registry must come
// out with per-federation labelled series.
func TestTelemetryOnOffBitIdenticalOverSockets(t *testing.T) {
	tenants := testTenants()
	dedicated := make([]*ServerResult, len(tenants))
	for i, tn := range tenants {
		dedicated[i] = runDedicated(t, tn) // telemetry off: the reference
	}

	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(0)
	telemetry.SetDistanceHook(reg, tr)
	defer telemetry.ClearDistanceHook()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	host := NewHost()
	host.Tracer = tr
	feds := make([]*Federation, len(tenants))
	type fedData struct {
		train    *dataset.Dataset
		newModel func(rng *rand.Rand) *nn.Network
		shards   [][]int
	}
	data := make([]fedData, len(tenants))
	for i, tn := range tenants {
		tn.cfg.Metrics = reg
		tn.cfg.Tracer = tr
		train, test, newModel, shards := tenantData(t, tn)
		fed, err := NewFederation(tn.id, tn.cfg, tn.agg, newModel, test)
		if err != nil {
			t.Fatal(err)
		}
		if err := host.Add(fed); err != nil {
			t.Fatal(err)
		}
		feds[i] = fed
		data[i] = fedData{train: train, newModel: newModel, shards: shards}
	}
	go func() { _ = host.Serve(lis) }()

	type out struct {
		res *ServerResult
		err error
	}
	done := make([]chan out, len(tenants))
	for i, fed := range feds {
		done[i] = make(chan out, 1)
		go func(i int, fed *Federation) {
			res, err := fed.Run()
			done[i] <- out{res, err}
		}(i, fed)
	}
	var wgs []*sync.WaitGroup
	for i, tn := range tenants {
		wgs = append(wgs, runTenantClients(t, lis.Addr().String(), tn, data[i].train, data[i].newModel, data[i].shards))
	}
	for _, wg := range wgs {
		wg.Wait()
	}
	for i, tn := range tenants {
		o := <-done[i]
		if o.err != nil {
			t.Fatalf("tenant %q hosted: %v", tn.id, o.err)
		}
		sameResult(t, "tenant "+tn.id+" with telemetry", dedicated[i], o.res)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	metrics := b.String()
	for _, want := range []string{
		`fl_rounds_total{federation="alpha"} 3`,
		`fl_rounds_total{federation="beta"} 4`,
		`flnet_joins_total{federation="alpha"} 3`,
		`flnet_joins_total{federation="beta"} 2`,
		`flnet_pending_joins{federation="alpha"} 0`,
		`fl_phase_seconds_count{federation="beta",phase="aggregate"} 4`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %q in shared registry:\n%s", want, metrics)
		}
	}
	// The fp16 tenant's updates arrive as codec frames; the legacy tenant's
	// as dense weights. Both must have been byte-accounted.
	for _, fed := range []string{"alpha", "beta"} {
		if strings.Contains(metrics, `fl_codec_bytes_in_total{federation="`+fed+`"} 0`) {
			t.Errorf("federation %s received no accounted bytes:\n%s", fed, metrics)
		}
	}
	if tr.Len() == 0 {
		t.Error("tracer buffered no spans")
	}
}
